//===- runtime/EventLoop.h - Virtual-time event loop ------------*- C++ -*-===//
//
// Part of the WebRacer reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic single-threaded event loop over a virtual clock. Tasks
/// are ordered by (time, sequence number); equal-time tasks run in FIFO
/// order. The paper's "environmental asynchrony" (network bandwidth, CPU
/// speed, user timing; Sec. 2.1) shows up here as the scheduled times of
/// network completions, timer expiries, and user actions - all derived
/// from one seed, so executions are replayable.
///
//===----------------------------------------------------------------------===//

#ifndef WEBRACER_RUNTIME_EVENTLOOP_H
#define WEBRACER_RUNTIME_EVENTLOOP_H

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

namespace wr::rt {

/// Virtual time in microseconds.
using VirtualTime = uint64_t;

/// A deterministic task queue with a virtual clock.
class EventLoop {
public:
  using TaskFn = std::function<void()>;
  using TaskId = uint64_t;

  /// Current virtual time.
  VirtualTime now() const { return Now; }

  /// Schedules \p Fn to run at absolute time \p When (clamped to now).
  TaskId scheduleAt(VirtualTime When, TaskFn Fn);

  /// Schedules \p Fn after \p Delay microseconds.
  TaskId scheduleAfter(VirtualTime Delay, TaskFn Fn) {
    return scheduleAt(Now + Delay, std::move(Fn));
  }

  /// Cancels a scheduled task; true if it had not run yet.
  bool cancel(TaskId Id);

  /// Runs tasks until the queue is empty. Returns the number executed.
  size_t runUntilIdle();

  /// Runs at most one task; false if the queue was empty.
  bool runOne();

  /// Pending (not yet run, not cancelled) task count.
  size_t pendingTasks() const;

  /// Scheduled time of the next task (may be a cancelled one), or
  /// UINT64_MAX when the queue is empty. Lets drivers stop *before*
  /// the clock jumps past a point of interest.
  VirtualTime nextTaskTime() const {
    return Queue.empty() ? ~static_cast<VirtualTime>(0) : Queue.top().When;
  }

  /// Total tasks executed.
  uint64_t executedTasks() const { return Executed; }

  /// Hard cap on tasks per runUntilIdle, guarding against accidental
  /// infinite reschedule loops (e.g. an interval that never stops in a
  /// generated site). 0 disables the cap.
  void setTaskLimit(uint64_t Limit) { TaskLimit = Limit; }

private:
  struct Task {
    VirtualTime When;
    uint64_t Seq;
    TaskId Id;
    TaskFn Fn;
  };
  struct TaskOrder {
    bool operator()(const Task &A, const Task &B) const {
      if (A.When != B.When)
        return A.When > B.When; // Min-heap.
      return A.Seq > B.Seq;
    }
  };

  std::priority_queue<Task, std::vector<Task>, TaskOrder> Queue;
  std::unordered_set<TaskId> Cancelled;
  std::unordered_set<TaskId> Finished;
  VirtualTime Now = 0;
  uint64_t NextSeq = 0;
  TaskId NextId = 1;
  uint64_t Executed = 0;
  uint64_t TaskLimit = 2'000'000;
};

} // namespace wr::rt

#endif // WEBRACER_RUNTIME_EVENTLOOP_H

//===- runtime/Browser.cpp - The simulated browser engine -------------------===//

#include "runtime/Browser.h"

#include "runtime/Bindings.h"
#include "js/StdLib.h"
#include "support/Format.h"
#include "support/StringUtils.h"

#include <algorithm>

using namespace wr;
using namespace wr::rt;

// ---------------------------------------------------------------------------
// Window
// ---------------------------------------------------------------------------

Window::Window(Browser &B, DocumentId Id, Window *Parent, Element *FrameElem)
    : B(B), Doc(std::make_unique<Document>(Id, B.NextNodeId)),
      ParentWindow(Parent), FrameElem(FrameElem) {}

// ---------------------------------------------------------------------------
// Construction
// ---------------------------------------------------------------------------

Browser::Browser(BrowserOptions Options)
    : Opts(Options), Net(Loop, Options.Seed ^ 0x9e3779b9u) {
  GlobalEnv = Heap.allocEnv(nullptr);
  Interp = std::make_unique<js::Interpreter>(Heap, GlobalEnv);
  Interp->setHooks(this);
  Interp->setStepBudget(Opts.StepBudget);
  js::installStdLib(*Interp, Opts.Seed ^ 0xc0ffee);
  Heap.addRootProvider(this);
  installBindings(*this);
}

Browser::~Browser() { Heap.removeRootProvider(this); }

// ---------------------------------------------------------------------------
// Operations
// ---------------------------------------------------------------------------

OpId Browser::newOperation(Operation Meta,
                           std::vector<std::pair<OpId, HbRule>> Preds) {
  OpId Op = Hb.addOperation(Meta);
  Sinks.onOperationCreated(Op, Hb.operation(Op));
  for (const auto &[Pred, Rule] : Preds) {
    if (Pred == InvalidOpId || Pred == Op)
      continue;
    Hb.addEdge(Pred, Op, Rule);
    Sinks.onHbEdge(Pred, Op, Rule);
  }
  return Op;
}

/// Which observability phase an operation's work bills to.
static obs::Phase phaseOf(OperationKind K) {
  switch (K) {
  case OperationKind::Bootstrap:
  case OperationKind::ParseElement:
    return obs::Phase::Parse;
  case OperationKind::ExecuteScript:
  case OperationKind::TimeoutCallback:
  case OperationKind::IntervalCallback:
  case OperationKind::ScriptSlice:
    return obs::Phase::Script;
  case OperationKind::EventHandler:
  case OperationKind::DispatchBegin:
  case OperationKind::DispatchEnd:
  case OperationKind::UserAction:
    return obs::Phase::Dispatch;
  }
  return obs::Phase::Script;
}

void Browser::beginOperation(OpId Op) {
  obs::Phase Ph = phaseOf(Hb.operation(Op).Kind);
  if (OpStack.empty()) {
    // Attribute the virtual-time advance since the last outermost
    // operation to the phase now observing it (deterministic: depends
    // only on the schedule, never on wall time).
    VirtualTime Now = Loop.now();
    if (Now > VirtualMark) {
      Phases.addVirtual(Ph, Now - VirtualMark);
      VirtualMark = Now;
    }
  }
  TimingStack.push_back({std::chrono::steady_clock::now(), 0, Ph});
  OpStack.push_back(Op);
  CrashFlagStack.push_back(false);
  Interp->resetSteps();
  Sinks.onOperationBegin(Op);
}

bool Browser::endOperation() {
  assert(!OpStack.empty() && "unbalanced endOperation");
  OpId Op = OpStack.back();
  bool Crashed = CrashFlagStack.back();
  OpStack.pop_back();
  CrashFlagStack.pop_back();
  TimingFrame Frame = TimingStack.back();
  TimingStack.pop_back();
  uint64_t Nanos = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - Frame.Start)
          .count());
  // Self time: nested operations already billed their share.
  Phases.addWall(Frame.Ph,
                 Nanos > Frame.ChildNanos ? Nanos - Frame.ChildNanos : 0);
  if (!TimingStack.empty())
    TimingStack.back().ChildNanos += Nanos;
  Sinks.onOperationEnd(Op, Crashed);
  ++OpsRun;
  if (OpStack.empty())
    Heap.maybeCollect(); // Only at operation boundaries (GC contract).
  return Crashed;
}

void Browser::noteCrash(const std::string &Message) {
  if (!CrashFlagStack.empty())
    CrashFlagStack.back() = true;
  Crashes.push_back(Message);
}

// ---------------------------------------------------------------------------
// Memory accesses
// ---------------------------------------------------------------------------

void Browser::recordAccessId(AccessKind Kind, AccessOrigin Origin, LocId Loc,
                             std::string Detail) {
  OpId Op = currentOp();
  if (Op == InvalidOpId)
    return; // Host bookkeeping outside any operation.
  Access A;
  A.Kind = Kind;
  A.Origin = Origin;
  A.Op = Op;
  A.Loc = Loc;
  A.Detail = std::move(Detail);
  Sinks.onMemoryAccess(A);
}

void Browser::recordAccess(AccessKind Kind, AccessOrigin Origin,
                           const Location &Loc, std::string Detail) {
  if (currentOp() == InvalidOpId)
    return; // Host bookkeeping outside any operation; don't intern.
  LocId Id = announceIntern([&] { return Interner.intern(Loc); });
  recordAccessId(Kind, Origin, Id, std::move(Detail));
}

void Browser::recordVarAccess(AccessKind Kind, AccessOrigin Origin,
                              ContainerId Container, std::string_view Name,
                              std::string Detail) {
  if (currentOp() == InvalidOpId)
    return;
  LocId Id = announceIntern([&] { return Interner.internVar(Container, Name); });
  recordAccessId(Kind, Origin, Id, std::move(Detail));
}

void Browser::recordHandlerAccess(AccessKind Kind, AccessOrigin Origin,
                                  NodeId Target, ContainerId TargetObject,
                                  std::string_view EventType,
                                  uint64_t HandlerId, std::string Detail) {
  if (currentOp() == InvalidOpId)
    return;
  LocId Id = announceIntern([&] {
    return Interner.internHandler(Target, TargetObject, EventType, HandlerId);
  });
  recordAccessId(Kind, Origin, Id, std::move(Detail));
}

void Browser::onVarRead(js::Env *Scope, std::string_view Name,
                        AccessOrigin Origin) {
  recordVarAccess(AccessKind::Read, Origin, Scope->containerId(), Name);
}

void Browser::onVarWrite(js::Env *Scope, std::string_view Name,
                         AccessOrigin Origin) {
  recordVarAccess(AccessKind::Write, Origin, Scope->containerId(), Name);
}

void Browser::onPropRead(js::Object *Obj, std::string_view Name,
                         AccessOrigin Origin) {
  recordVarAccess(AccessKind::Read, Origin, Obj->containerId(), Name);
}

void Browser::onPropWrite(js::Object *Obj, std::string_view Name,
                          AccessOrigin Origin) {
  recordVarAccess(AccessKind::Write, Origin, Obj->containerId(), Name);
}

// ---------------------------------------------------------------------------
// Wrappers
// ---------------------------------------------------------------------------

js::Object *Browser::wrapperFor(Node *N) {
  if (!N)
    return nullptr;
  auto It = Wrappers.find(N->id());
  if (It != Wrappers.end())
    return It->second;
  js::Object *W = Heap.allocObject();
  switch (N->kind()) {
  case NodeKind::Document:
    W->setHostClass(documentHostClass());
    break;
  case NodeKind::Element:
    W->setHostClass(elementHostClass());
    break;
  case NodeKind::Text:
    W->setHostClass(textHostClass());
    break;
  }
  W->setDomNode(N->id());
  W->setHostPtr(N);
  W->setHostInt(reinterpret_cast<uint64_t>(this));
  Wrappers[N->id()] = W;
  registerNode(N);
  return W;
}

Node *Browser::nodeFor(js::Object *Wrapper) const {
  if (!Wrapper || Wrapper->domNode() == InvalidNodeId)
    return nullptr;
  return static_cast<Node *>(Wrapper->hostPtr());
}

Window *Browser::windowForDocument(DocumentId Doc) {
  for (const auto &W : Windows)
    if (W->documentId() == Doc)
      return W.get();
  return nullptr;
}

Window *Browser::windowForObject(js::Object *O) {
  for (const auto &W : Windows)
    if (W->windowObject() == O || W->documentObject() == O)
      return W.get();
  return nullptr;
}

OpId Browser::creationOpOf(NodeId N) const {
  auto It = CreatedBy.find(N);
  return It == CreatedBy.end() ? InvalidOpId : It->second;
}

void Browser::recordElementInsertion(const std::vector<Element *> &Affected,
                                     bool Inserted) {
  AccessOrigin Origin =
      Inserted ? AccessOrigin::ElemInsert : AccessOrigin::ElemRemove;
  bool InOp = currentOp() != InvalidOpId;
  for (Element *E : Affected) {
    DocumentId Doc = E->ownerDocument()->documentId();
    auto ElemWrite = [&](ElemKeyKind K, NodeId N, std::string_view Key,
                         std::string Detail = std::string()) {
      if (!InOp)
        return;
      LocId Id =
          announceIntern([&] { return Interner.internElem(Doc, K, N, Key); });
      recordAccessId(AccessKind::Write, Origin, Id, std::move(Detail));
    };
    // The element's identity location.
    ElemWrite(ElemKeyKind::ByNode, E->id(), "", "<" + E->tagName() + ">");
    // Id- and tag-keyed locations collide with string lookups (this is
    // what makes a failed getElementById race with later insertion).
    std::string Id = E->idAttr();
    if (!Id.empty())
      ElemWrite(ElemKeyKind::ById, InvalidNodeId, Id, "#" + Id);
    std::string NameAttr = E->getAttribute("name");
    if (!NameAttr.empty())
      ElemWrite(ElemKeyKind::ByName, InvalidNodeId, NameAttr);
    ElemWrite(ElemKeyKind::ByTag, InvalidNodeId, E->tagName());
    // Sec. 4.1 "additional cases": parentNode / childNodes writes.
    recordVarAccess(AccessKind::Write, Origin, domContainer(E->id()),
                    "parentNode");
    if (Node *P = E->parent())
      recordVarAccess(AccessKind::Write, Origin, domContainer(P->id()),
                      strFormat("childNodes[%d]", P->indexOf(E)));
    registerNode(E);
    if (Inserted && !CreatedBy.count(E->id()) &&
        currentOp() != InvalidOpId)
      CreatedBy[E->id()] = currentOp();
  }
}

void Browser::recordLookup(DocumentId Doc, ElemKeyKind Kind,
                           std::string Key) {
  if (currentOp() == InvalidOpId)
    return;
  LocId Id = announceIntern(
      [&] { return Interner.internElem(Doc, Kind, InvalidNodeId, Key); });
  recordAccessId(AccessKind::Read, AccessOrigin::ElemLookup, Id);
}

// ---------------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------------

std::string Browser::dispatchKeyOf(TargetKey Target,
                                   const std::string &Type) const {
  return strFormat("%u/%llu/%s", Target.Node,
                   static_cast<unsigned long long>(Target.Object),
                   Type.c_str());
}

void Browser::addListener(TargetKey Target, const std::string &Type,
                          js::Value Handler, bool Capture) {
  js::Object *F = Handler.objectOrNull();
  uint64_t HandlerId = F ? F->handlerIdentity() : 0;
  ListenerRecord Rec;
  Rec.Handler = std::move(Handler);
  Rec.HandlerId = HandlerId;
  Rec.Capture = Capture;
  ListenerMap[dispatchKeyOf(Target, Type)].Listeners.push_back(
      std::move(Rec));
  recordHandlerAccess(AccessKind::Write, AccessOrigin::HandlerInstall,
                      Target.Node, Target.Object, Type, HandlerId,
                      "addEventListener(" + Type + ")");
}

void Browser::removeListener(TargetKey Target, const std::string &Type,
                             js::Value Handler) {
  auto It = ListenerMap.find(dispatchKeyOf(Target, Type));
  if (It == ListenerMap.end())
    return;
  js::Object *F = Handler.objectOrNull();
  auto &Listeners = It->second.Listeners;
  for (size_t I = 0; I < Listeners.size(); ++I) {
    if (Listeners[I].Handler.objectOrNull() == F) {
      recordHandlerAccess(AccessKind::Write, AccessOrigin::HandlerRemove,
                          Target.Node, Target.Object, Type,
                          Listeners[I].HandlerId,
                          "removeEventListener(" + Type + ")");
      Listeners.erase(Listeners.begin() + static_cast<ptrdiff_t>(I));
      return;
    }
  }
}

void Browser::setSlotHandler(TargetKey Target, const std::string &Type,
                             js::Value Handler) {
  TargetListeners &TL = ListenerMap[dispatchKeyOf(Target, Type)];
  TL.Slot = std::move(Handler);
  TL.SlotIsAttrSource = false;
  TL.AttrSource.clear();
  recordHandlerAccess(AccessKind::Write, AccessOrigin::HandlerInstall,
                      Target.Node, Target.Object, Type, 0,
                      "on" + Type + " = ...");
}

void Browser::setSlotHandlerSource(TargetKey Target, const std::string &Type,
                                   std::string Source) {
  TargetListeners &TL = ListenerMap[dispatchKeyOf(Target, Type)];
  TL.Slot = js::Value();
  TL.SlotIsAttrSource = true;
  TL.AttrSource = std::move(Source);
  recordHandlerAccess(AccessKind::Write, AccessOrigin::HandlerInstall,
                      Target.Node, Target.Object, Type, 0,
                      "attr on" + Type);
}

js::Value Browser::slotHandler(TargetKey Target, const std::string &Type) {
  auto It = ListenerMap.find(dispatchKeyOf(Target, Type));
  if (It == ListenerMap.end())
    return js::Value::null();
  if (It->second.SlotIsAttrSource)
    return js::Value(It->second.AttrSource);
  return It->second.Slot;
}

bool Browser::hasRegisteredHandler(TargetKey Target,
                                   const std::string &Type) const {
  auto It = ListenerMap.find(dispatchKeyOf(Target, Type));
  if (It == ListenerMap.end())
    return false;
  const TargetListeners &TL = It->second;
  if (TL.SlotIsAttrSource && !TL.AttrSource.empty())
    return true;
  if (js::Object *F = TL.Slot.objectOrNull(); F && F->isCallable())
    return true;
  return !TL.Listeners.empty();
}

int Browser::dispatchCount(TargetKey Target, const std::string &Type) const {
  auto It = DispatchCountByKey.find(dispatchKeyOf(Target, Type));
  return It == DispatchCountByKey.end() ? 0 : It->second;
}

/// Does this event type propagate through ancestors (bubble)?
static bool eventBubbles(const std::string &Type) {
  static const char *const Bubbling[] = {
      "click",     "dblclick", "mousedown", "mouseup",  "mouseover",
      "mouseout",  "mousemove", "keydown",  "keyup",    "keypress",
      "input",     "change"};
  for (const char *T : Bubbling)
    if (Type == T)
      return true;
  return false;
}

OpId Browser::runHandlerOp(TargetKey Target, js::Object *CurrentTargetObj,
                           const std::string &Type, js::Value Handler,
                           uint64_t HandlerId, OpId Pred, OpTrigger Trigger,
                           int DispatchIndex) {
  Operation Meta;
  Meta.Kind = OperationKind::EventHandler;
  Meta.Subject = Target.Node;
  Meta.EventType = Type;
  Meta.DispatchIndex = DispatchIndex;
  Meta.Trigger = Trigger.Kind;
  Meta.TriggerKey = Trigger.Key;
  Meta.Label = strFormat("handler %s on node%u", Type.c_str(), Target.Node);
  OpId Op = newOperation(Meta, {{Pred, HbRule::RA_DispatchChain}});
  runOperation(Op, [&] {
    // Reading the handler location (Sec. 4.3 read accesses).
    TargetKey CurrentKey;
    if (Node *N = nodeFor(CurrentTargetObj))
      CurrentKey.Node = N->id();
    else if (CurrentTargetObj)
      CurrentKey.Object = CurrentTargetObj->containerId();
    ExecutedHandlerKeys.insert(dispatchKeyOf(CurrentKey, Type));
    recordHandlerAccess(AccessKind::Read, AccessOrigin::HandlerFire,
                        CurrentKey.Node, CurrentKey.Object, Type, HandlerId);
    js::Value ThisV =
        CurrentTargetObj ? js::Value(CurrentTargetObj) : js::Value::null();
    if (Handler.isString()) {
      runScriptSource(Handler.asString(),
                      strFormat("on%s@node%u", Type.c_str(), Target.Node),
                      ThisV);
    } else if (Handler.isObject() && Handler.asObject()->isCallable()) {
      // Build a minimal event object.
      js::Object *Event = Heap.allocObject();
      Event->setOwnProperty("type", js::Value(Type));
      if (js::Object *TargetObj =
              Target.Node != InvalidNodeId
                  ? Wrappers.count(Target.Node) ? Wrappers[Target.Node]
                                                : nullptr
                  : nullptr)
        Event->setOwnProperty("target", js::Value(TargetObj));
      invokeHandler(Handler, ThisV, {js::Value(Event)});
    }
  });
  return Op;
}

std::pair<OpId, OpId>
Browser::dispatchEvent(TargetKey Target, const std::string &Type,
                       std::vector<std::pair<OpId, HbRule>> ExtraBeginPreds,
                       OpTrigger Trigger) {
  std::string Key = dispatchKeyOf(Target, Type);
  int Index = DispatchCountByKey[Key]++;

  // Appendix A inline-dispatch splitting: remember the interrupted op.
  OpId InlineCaller = currentOp();

  std::vector<std::pair<OpId, HbRule>> BeginPreds = std::move(
      ExtraBeginPreds);
  if (Target.Node != InvalidNodeId) {
    if (OpId Create = creationOpOf(Target.Node); Create != InvalidOpId)
      BeginPreds.push_back({Create, HbRule::R8_TargetCreated});
  }
  if (auto It = LastDispatchEnd.find(Key); It != LastDispatchEnd.end())
    BeginPreds.push_back({It->second, HbRule::R9_DispatchOrder});
  if (InlineCaller != InvalidOpId)
    BeginPreds.push_back({InlineCaller, HbRule::RA_InlineSplit});

  Operation BeginMeta;
  BeginMeta.Kind = OperationKind::DispatchBegin;
  BeginMeta.Subject = Target.Node;
  BeginMeta.EventType = Type;
  BeginMeta.DispatchIndex = Index;
  BeginMeta.Trigger = Trigger.Kind;
  BeginMeta.TriggerKey = Trigger.Key;
  BeginMeta.Label = strFormat("disp%d(%s, node%u)", Index, Type.c_str(),
                              Target.Node);
  OpId Begin = newOperation(BeginMeta, std::move(BeginPreds));
  runOperation(Begin, [&] {
    // The browser reads the on<type> slot when dispatching - this read is
    // not explicit in any script (Sec. 2.5, Fig. 5).
    recordHandlerAccess(AccessKind::Read, AccessOrigin::HandlerFire,
                        Target.Node, Target.Object, Type, 0);
  });

  // Build the propagation path (capture -> at-target -> bubble).
  Node *TargetNode =
      Target.Node != InvalidNodeId ? nodeById(Target.Node) : nullptr;

  struct Stop {
    js::Object *CurrentTarget;
    TargetKey Key;
  };
  std::vector<Stop> CapturePath; // Top-down, excluding target.
  js::Object *TargetObj = nullptr;
  Window *TargetWindow = nullptr;
  if (TargetNode) {
    TargetObj = wrapperFor(TargetNode);
    TargetWindow =
        windowForDocument(TargetNode->ownerDocument()->documentId());
    std::vector<Node *> Ancestors;
    for (Node *Walk = TargetNode->parent(); Walk; Walk = Walk->parent())
      Ancestors.push_back(Walk);
    std::reverse(Ancestors.begin(), Ancestors.end()); // Top-down.
    if (TargetWindow)
      CapturePath.push_back(
          {TargetWindow->windowObject(),
           TargetKey{InvalidNodeId,
                     TargetWindow->windowObject()->containerId()}});
    for (Node *A : Ancestors)
      CapturePath.push_back({wrapperFor(A), TargetKey{A->id(), 0}});
  } else if (Target.Object != 0) {
    // Non-node target (window, XHR): find the object.
    for (const auto &W : Windows) {
      if (W->windowObject()->containerId() == Target.Object)
        TargetObj = W->windowObject();
      if (W->documentObject()->containerId() == Target.Object)
        TargetObj = W->documentObject();
    }
    if (!TargetObj)
      for (const js::Value &V : PinnedValues)
        if (js::Object *O = V.objectOrNull())
          if (O->containerId() == Target.Object)
            TargetObj = O;
  }

  // Collect the handler executions, in phase order.
  struct PlannedHandler {
    js::Object *CurrentTarget;
    TargetKey CurrentKey;
    js::Value Handler;
    uint64_t HandlerId;
  };
  std::vector<PlannedHandler> Plan;
  auto PlanListeners = [&](const TargetKey &K, js::Object *CurrentTarget,
                           bool CaptureOnly, bool BubbleOnly) {
    auto It = ListenerMap.find(dispatchKeyOf(K, Type));
    if (It == ListenerMap.end())
      return;
    // Slot handler first (at-target and bubble phases only).
    if (!CaptureOnly) {
      if (It->second.SlotIsAttrSource)
        Plan.push_back({CurrentTarget, K,
                        js::Value(It->second.AttrSource), 0});
      else if (It->second.Slot.isObject() &&
               It->second.Slot.asObject()->isCallable())
        Plan.push_back({CurrentTarget, K, It->second.Slot, 0});
    }
    for (const ListenerRecord &L : It->second.Listeners) {
      if (CaptureOnly && !L.Capture)
        continue;
      if (BubbleOnly && L.Capture)
        continue;
      Plan.push_back({CurrentTarget, K, L.Handler, L.HandlerId});
    }
  };

  for (const Stop &S : CapturePath)
    PlanListeners(S.Key, S.CurrentTarget, /*CaptureOnly=*/true,
                  /*BubbleOnly=*/false);
  PlanListeners(Target, TargetObj, /*CaptureOnly=*/false,
                /*BubbleOnly=*/false);
  if (eventBubbles(Type))
    for (size_t I = CapturePath.size(); I > 0; --I)
      PlanListeners(CapturePath[I - 1].Key, CapturePath[I - 1].CurrentTarget,
                    /*CaptureOnly=*/false, /*BubbleOnly=*/true);

  OpId Prev = Begin;
  for (const PlannedHandler &H : Plan)
    Prev = runHandlerOp(H.CurrentKey, H.CurrentTarget, Type, H.Handler,
                        H.HandlerId, Prev, Trigger, Index);

  // Default action: clicking a javascript: link runs its href.
  if (Type == "click" && TargetNode) {
    for (Node *Walk = TargetNode; Walk; Walk = Walk->parent()) {
      Element *E = dyn_cast<Element>(Walk);
      if (!E || E->tagName() != "a")
        continue;
      std::string Href = E->getAttribute("href");
      if (startsWithIgnoreCase(Href, "javascript:")) {
        Prev = runHandlerOp(TargetKey{E->id(), 0}, wrapperFor(E), Type,
                            js::Value(Href.substr(11)), 0, Prev, Trigger,
                            Index);
      }
      break;
    }
  }

  Operation EndMeta;
  EndMeta.Kind = OperationKind::DispatchEnd;
  EndMeta.Subject = Target.Node;
  EndMeta.EventType = Type;
  EndMeta.DispatchIndex = Index;
  EndMeta.Label = strFormat("disp%d(%s) end", Index, Type.c_str());
  OpId End = newOperation(EndMeta, {{Prev, HbRule::RA_DispatchChain}});
  runOperation(End, [] {});
  LastDispatchEnd[Key] = End;
  Sinks.onEventDispatch(Target.Node, Target.Object, Type, Index, Begin,
                        End);

  // Appendix A: resume the interrupted operation as a fresh slice ordered
  // after the inline dispatch.
  if (InlineCaller != InvalidOpId) {
    Operation SliceMeta;
    SliceMeta.Kind = OperationKind::ScriptSlice;
    SliceMeta.Label =
        strFormat("slice after disp(%s) of op %u", Type.c_str(),
                  InlineCaller);
    OpId Slice = newOperation(
        SliceMeta, {{InlineCaller, HbRule::RA_InlineSplit},
                    {End, HbRule::RA_InlineSplit}});
    Sinks.onOperationEnd(InlineCaller, false);
    OpStack.back() = Slice;
    Sinks.onOperationBegin(Slice);
  }
  return {Begin, End};
}

// ---------------------------------------------------------------------------
// Timers (rules 16/17)
// ---------------------------------------------------------------------------

/// Logical location of one timer's registration slot (for clear* races).
static EventHandlerLoc timerLoc(uint64_t TimerId) {
  return EventHandlerLoc{InvalidNodeId, TimerContainerBit | TimerId,
                         "timer", 0};
}

uint64_t Browser::setTimeout(js::Value Callback, VirtualTime DelayMs) {
  uint64_t Id = NextTimerId++;
  TimerRecord Rec;
  Rec.Id = Id;
  Rec.Callback = std::move(Callback);
  Rec.Delay = DelayMs;
  Rec.Interval = false;
  Rec.CreatorOp = currentOp();
  Timers[Id] = Rec;
  if (Opts.InstrumentTimerClears)
    recordAccess(AccessKind::Write, AccessOrigin::HandlerInstall,
                 timerLoc(Id), "setTimeout");
  Timers[Id].Task = Loop.scheduleAfter(DelayMs * 1000, [this, Id] {
    auto It = Timers.find(Id);
    if (It == Timers.end() || It->second.Cancelled)
      return;
    TimerRecord Rec = It->second;
    Operation Meta;
    Meta.Kind = OperationKind::TimeoutCallback;
    Meta.Trigger = TriggerKind::Timer;
    Meta.TriggerKey = strFormat("timer:%llu",
                                static_cast<unsigned long long>(Id));
    Meta.Label = strFormat("cb(timer %llu, %llums)",
                           static_cast<unsigned long long>(Id),
                           static_cast<unsigned long long>(Rec.Delay));
    OpId Op = newOperation(Meta,
                           {{Rec.CreatorOp, HbRule::R16_SetTimeout}});
    runOperation(Op, [&] {
      if (Opts.InstrumentTimerClears)
        recordAccess(AccessKind::Read, AccessOrigin::HandlerFire,
                     timerLoc(Id), "timer fired");
      if (Rec.Callback.isString())
        runScriptSource(Rec.Callback.asString(), Meta.TriggerKey);
      else
        invokeHandler(Rec.Callback, js::Value(), {});
    });
    Timers.erase(Id);
  });
  return Id;
}

uint64_t Browser::setInterval(js::Value Callback, VirtualTime DelayMs) {
  uint64_t Id = NextTimerId++;
  TimerRecord Rec;
  Rec.Id = Id;
  Rec.Callback = std::move(Callback);
  Rec.Delay = DelayMs == 0 ? 1 : DelayMs;
  Rec.Interval = true;
  Rec.CreatorOp = currentOp();
  Timers[Id] = Rec;

  // Self-rescheduling firing function.
  struct Fire {
    Browser *B;
    uint64_t Id;
    void operator()() const {
      auto It = B->Timers.find(Id);
      if (It == B->Timers.end() || It->second.Cancelled)
        return;
      TimerRecord &Rec = It->second;
      Operation Meta;
      Meta.Kind = OperationKind::IntervalCallback;
      Meta.DispatchIndex = Rec.Index;
      Meta.Trigger = TriggerKind::Timer;
      Meta.TriggerKey = strFormat("interval:%llu",
                                  static_cast<unsigned long long>(Id));
      Meta.Label = strFormat("cb%d(interval %llu)", Rec.Index,
                             static_cast<unsigned long long>(Id));
      // Rule 17: creator -> cb0; cb_i -> cb_{i+1}.
      std::vector<std::pair<OpId, HbRule>> Preds;
      if (Rec.Index == 0)
        Preds.push_back({Rec.CreatorOp, HbRule::R17_SetInterval});
      else
        Preds.push_back({Rec.LastCallbackOp, HbRule::R17_SetInterval});
      OpId Op = B->newOperation(Meta, std::move(Preds));
      js::Value Callback = Rec.Callback;
      B->runOperation(Op, [&] {
        if (B->Opts.InstrumentTimerClears)
          B->recordAccess(AccessKind::Read, AccessOrigin::HandlerFire,
                          timerLoc(Id), "interval fired");
        if (Callback.isString())
          B->runScriptSource(Callback.asString(), Meta.TriggerKey);
        else
          B->invokeHandler(Callback, js::Value(), {});
      });
      // Re-find: the callback may have cleared the interval.
      auto It2 = B->Timers.find(Id);
      if (It2 == B->Timers.end() || It2->second.Cancelled) {
        B->Timers.erase(Id);
        return;
      }
      It2->second.LastCallbackOp = Op;
      It2->second.Index++;
      It2->second.Task =
          B->Loop.scheduleAfter(It2->second.Delay * 1000, Fire{B, Id});
    }
  };
  Timers[Id].Task = Loop.scheduleAfter(Rec.Delay * 1000, Fire{this, Id});
  return Id;
}

void Browser::clearTimer(uint64_t TimerId) {
  if (TimerId == 0 || TimerId >= NextTimerId)
    return; // Never a real timer; clearTimeout(garbage) is a no-op.
  // The clear is a write on the timer's slot even when the callback has
  // already fired - that is exactly the racing case (Sec. 7).
  if (Opts.InstrumentTimerClears)
    recordAccess(AccessKind::Write, AccessOrigin::HandlerRemove,
                 timerLoc(TimerId), "clearTimeout/clearInterval");
  auto It = Timers.find(TimerId);
  if (It == Timers.end())
    return;
  It->second.Cancelled = true;
  Loop.cancel(It->second.Task);
}

// ---------------------------------------------------------------------------
// XHR (rule 10)
// ---------------------------------------------------------------------------

void Browser::xhrSend(js::Object *Xhr) {
  pinValue(js::Value(Xhr));
  const js::Value *UrlV = Xhr->findOwnProperty("__url");
  std::string Url = UrlV && UrlV->isString() ? UrlV->asString() : "";
  OpId SendOp = currentOp();
  Net.fetch(Url, [this, Xhr, SendOp, Url](const FetchResult &R) {
    std::vector<std::pair<OpId, HbRule>> Preds;
    if (Opts.EnableAjaxHbEdges && SendOp != InvalidOpId)
      Preds.push_back({SendOp, HbRule::R10_AjaxSend});
    OpTrigger Trigger{TriggerKind::Network, Url};
    // State updates happen as part of the dispatch; handlers observe
    // readyState 4.
    Xhr->setOwnProperty("readyState", js::Value(4.0));
    Xhr->setOwnProperty("status", js::Value(R.Ok ? 200.0 : 404.0));
    Xhr->setOwnProperty("responseText", js::Value(R.Body));
    dispatchEvent(TargetKey{InvalidNodeId, Xhr->containerId()},
                  "readystatechange", std::move(Preds), Trigger);
  });
}

// ---------------------------------------------------------------------------
// Script execution
// ---------------------------------------------------------------------------

const js::Program *Browser::compile(const std::string &Source,
                                    const std::string &OriginTag) {
  auto Cached = CompileCache.find(Source);
  if (Cached != CompileCache.end())
    return Cached->second;
  js::ParseResult R = js::Parser::parseProgram(Source);
  if (!R.ok()) {
    std::string Message =
        strFormat("%s: syntax error: %s", OriginTag.c_str(),
                  R.Diags.empty() ? "?" : R.Diags[0].Message.c_str());
    ParseErrors.push_back(Message);
    CompileCache[Source] = nullptr;
    return nullptr;
  }
  CompiledScripts.push_back(std::move(R.Ast));
  const js::Program *P = CompiledScripts.back().get();
  CompileCache[Source] = P;
  return P;
}

void Browser::runScriptSource(const std::string &Source,
                              const std::string &OriginTag,
                              js::Value ThisV) {
  const js::Program *P = compile(Source, OriginTag);
  if (!P)
    return;
  js::Completion C = Interp->runProgramWithThis(*P, std::move(ThisV));
  if (C.isThrow())
    noteCrash(strFormat("%s: uncaught %s", OriginTag.c_str(),
                        js::toDisplayString(C.V).c_str()));
}

void Browser::invokeHandler(js::Value Handler, js::Value ThisV,
                            std::vector<js::Value> Args) {
  js::Completion C =
      Interp->callFunction(std::move(Handler), std::move(ThisV),
                           std::move(Args));
  if (C.isThrow())
    noteCrash(strFormat("handler: uncaught %s",
                        js::toDisplayString(C.V).c_str()));
}

// ---------------------------------------------------------------------------
// Page loading
// ---------------------------------------------------------------------------

Window *Browser::createWindow(Window *Parent, Element *FrameElem) {
  Windows.push_back(
      std::make_unique<Window>(*this, NextDocId++, Parent, FrameElem));
  Window *W = Windows.back().get();
  installWindowObjects(*this, *W);
  if (!Parent) {
    // Main window: its objects become the JS globals.
    GlobalEnv->define("window", js::Value(W->windowObject()));
    GlobalEnv->define("document", js::Value(W->documentObject()));
    Interp->setGlobalThis(js::Value(W->windowObject()));
  }
  return W;
}

void Browser::loadPage(const std::string &Url) {
  assert(Windows.empty() && "loadPage must be called once per browser");
  Operation Meta;
  Meta.Kind = OperationKind::Bootstrap;
  Meta.Label = "load " + Url;
  BootstrapOp = newOperation(Meta, {});
  Window *W = createWindow(nullptr, nullptr);
  W->ParseChainTail = BootstrapOp;
  startWindowLoad(*W, Url);
}

void Browser::startWindowLoad(Window &W, const std::string &Url) {
  Net.fetch(Url, [this, &W](const FetchResult &R) {
    W.Parser = std::make_unique<html::HtmlParser>(
        W.document(), R.Ok ? R.Body : std::string());
    pumpParser(W);
  });
}

void Browser::pumpParser(Window &W) {
  while (!W.ParserSuspended) {
    html::ParseStep Step = W.Parser->pump();
    switch (Step.StepKind) {
    case html::ParseStep::Kind::ElementOpened: {
      Operation Meta;
      Meta.Kind = OperationKind::ParseElement;
      Meta.Doc = W.documentId();
      Meta.Subject = Step.Elem->id();
      std::string Id = Step.Elem->idAttr();
      Meta.Label = "parse <" + Step.Elem->tagName() +
                   (Id.empty() ? "" : "#" + Id) + ">";
      // Rule 1a chain (or rule 6 from the iframe's parse op for the first
      // element of a nested document).
      OpId Op = newOperation(
          Meta, {{W.ParseChainTail,
                  W.ParentWindow && W.ParseChainTail ==
                                        creationOpOf(W.FrameElem->id())
                      ? HbRule::R6_FrameCreate
                      : HbRule::R1a_ParseOrder}});
      W.ParseChainTail = Op;
      Element *E = Step.Elem;
      runOperation(Op, [&] { handleParsedElement(W, E, Op); });
      break;
    }
    case html::ParseStep::Kind::ScriptComplete:
      handleScriptComplete(W, Step.Elem, std::move(Step.Text));
      break;
    case html::ParseStep::Kind::ElementClosed:
    case html::ParseStep::Kind::TextAdded:
      break;
    case html::ParseStep::Kind::Finished:
      onStaticParsingDone(W);
      return;
    }
    // With a per-step cost, yield to the event loop between steps so
    // asynchronous work (timers, arrivals, user actions in replay)
    // interleaves with parsing.
    if (Opts.ParseStepCost > 0 && !W.ParserSuspended) {
      Loop.scheduleAfter(Opts.ParseStepCost,
                         [this, &W] { pumpParser(W); });
      return;
    }
  }
}

void Browser::handleParsedElement(Window &W, Element *E, OpId ParseOp) {
  CreatedBy[E->id()] = ParseOp;
  registerNode(E);
  recordElementInsertion({E}, /*Inserted=*/true);

  // Event-handler content attributes (Sec. 4.3 write accesses).
  for (const Attribute &A : E->attributes()) {
    if (!startsWith(A.Name, "on") || A.Name.size() <= 2)
      continue;
    std::string Type = A.Name.substr(2);
    // <body onload=...> registers on the window (classic HTML semantics).
    TargetKey Key{E->id(), 0};
    if (E == W.document().body() && (Type == "load" || Type == "unload"))
      Key = TargetKey{InvalidNodeId, W.windowObject()->containerId()};
    TargetListeners &TL = ListenerMap[dispatchKeyOf(Key, Type)];
    TL.SlotIsAttrSource = true;
    TL.AttrSource = A.Value;
    recordHandlerAccess(AccessKind::Write, AccessOrigin::HandlerInstall,
                        Key.Node, Key.Object, Type, 0, "attr on" + Type);
  }

  // Form fields: the value attribute initializes the field's value.
  if (E->tagName() == "input" || E->tagName() == "textarea") {
    if (E->hasAttribute("value")) {
      E->setFormValue(E->getAttribute("value"));
      recordVarAccess(AccessKind::Write, AccessOrigin::FormFieldWrite,
                      domContainer(E->id()), "value", "value attribute");
    }
  }

  if (E->tagName() == "img" && E->hasAttribute("src"))
    startImageLoad(W, E, ParseOp);
  if (E->tagName() == "iframe")
    startFrameLoad(W, E, ParseOp);
}

void Browser::executeScriptElement(
    Window &W, Element *Script, const std::string &Body,
    std::vector<std::pair<OpId, HbRule>> Preds, OpTrigger Trigger) {
  Operation Meta;
  Meta.Kind = OperationKind::ExecuteScript;
  Meta.Doc = W.documentId();
  Meta.Subject = Script->id();
  std::string Src = Script->getAttribute("src");
  Meta.Label = "exe <script" + (Src.empty() ? "" : " src=" + Src) + ">";
  Meta.Trigger = Trigger.Kind;
  Meta.TriggerKey = Trigger.Key;
  OpId Op = newOperation(Meta, std::move(Preds));
  runOperation(Op, [&] {
    runScriptSource(Body, Meta.Label);
  });
  // Record for rule 3 consumers.
  LastScriptExeOp = Op;
}

void Browser::fireElementLoad(Window &W, Element *E, OpId ExeOp,
                              OpTrigger Trigger) {
  std::vector<std::pair<OpId, HbRule>> Preds;
  if (ExeOp != InvalidOpId)
    Preds.push_back({ExeOp, HbRule::R3_ExeBeforeLoad});
  auto [Begin, End] =
      dispatchEvent(TargetKey{E->id(), 0}, "load", std::move(Preds),
                    Trigger);
  (void)Begin;
  if (!W.LoadFired)
    W.ElemLoadEnds.push_back(End);
  LastElemLoadEnd = End;
}

void Browser::handleScriptComplete(Window &W, Element *Script,
                                   std::string InlineBody) {
  html::ScriptKind Kind = html::classifyScript(Script);
  OpId CreateOp = creationOpOf(Script->id());
  std::string Src = Script->getAttribute("src");

  switch (Kind) {
  case html::ScriptKind::Inline: {
    executeScriptElement(W, Script, InlineBody,
                         {{CreateOp, HbRule::R2_CreateBeforeExe},
                          {W.ParseChainTail, HbRule::R1b_InlineScript}},
                         OpTrigger());
    // Rule 1b: the inline exe precedes the next parse.
    W.ParseChainTail = LastScriptExeOp;
    return;
  }
  case html::ScriptKind::SyncExternal: {
    W.ParserSuspended = true;
    Net.fetch(Src, [this, &W, Script, CreateOp,
                    Src](const FetchResult &R) {
      if (R.Ok) {
        OpTrigger Trigger{TriggerKind::Network, Src};
        executeScriptElement(W, Script, R.Body,
                             {{CreateOp, HbRule::R2_CreateBeforeExe},
                              {W.ParseChainTail,
                               HbRule::R1a_ParseOrder}},
                             Trigger);
        fireElementLoad(W, Script, LastScriptExeOp, Trigger);
        // Rule 1c: ld(sync script) precedes the next parse.
        W.ParseChainTail = LastElemLoadEnd;
      }
      W.ParserSuspended = false;
      pumpParser(W);
    });
    return;
  }
  case html::ScriptKind::AsyncExternal: {
    if (!W.LoadFired)
      ++W.PendingLoads;
    Net.fetch(Src, [this, &W, Script, CreateOp,
                    Src](const FetchResult &R) {
      if (R.Ok) {
        OpTrigger Trigger{TriggerKind::Network, Src};
        executeScriptElement(W, Script, R.Body,
                             {{CreateOp, HbRule::R2_CreateBeforeExe}},
                             Trigger);
        fireElementLoad(W, Script, LastScriptExeOp, Trigger);
      }
      notePendingLoadDone(W);
    });
    return;
  }
  case html::ScriptKind::DeferredExternal: {
    if (!W.LoadFired)
      ++W.PendingLoads;
    W.Deferred.push_back({Script, false, false, ""});
    size_t Index = W.Deferred.size() - 1;
    Net.fetch(Src, [this, &W, Index](const FetchResult &R) {
      W.Deferred[Index].Arrived = true;
      W.Deferred[Index].Body = R.Ok ? R.Body : std::string();
      tryRunDeferred(W);
    });
    return;
  }
  }
}

void Browser::startImageLoad(Window &W, Element *Img, OpId CreateOp) {
  (void)CreateOp;
  if (Img->hasAttribute("__load_started"))
    return; // One load per image element.
  Img->setAttribute("__load_started", "1");
  bool Blocks = !W.LoadFired;
  if (Blocks)
    ++W.PendingLoads;
  std::string Src = Img->getAttribute("src");
  Net.fetch(Src, [this, &W, Img, Src, Blocks](const FetchResult &R) {
    OpTrigger Trigger{TriggerKind::Network, Src};
    if (R.Ok) {
      fireElementLoad(W, Img, InvalidOpId, Trigger);
    } else {
      dispatchEvent(TargetKey{Img->id(), 0}, "error", {}, Trigger);
    }
    if (Blocks)
      notePendingLoadDone(W);
  });
}

void Browser::startFrameLoad(Window &W, Element *Frame, OpId CreateOp) {
  if (!W.LoadFired)
    ++W.PendingLoads;
  Window *Nested = createWindow(&W, Frame);
  // Rule 6: create(I) happens-before every create(E) in the nested
  // document; the nested parse chain starts at the iframe's parse op.
  Nested->ParseChainTail = CreateOp;
  std::string Src = Frame->getAttribute("src");
  startWindowLoad(*Nested, Src);
}

void Browser::onStaticParsingDone(Window &W) {
  W.ParsingDone = true;
  tryRunDeferred(W);
}

void Browser::tryRunDeferred(Window &W) {
  if (!W.ParsingDone || W.DclFired)
    return;
  bool First = true;
  for (auto &D : W.Deferred) {
    if (D.Executed) {
      First = false;
      continue;
    }
    if (!D.Arrived)
      return; // Rule 5: deferred scripts run in syntactic order.
    OpTrigger Trigger{TriggerKind::Network, D.Elem->getAttribute("src")};
    executeScriptElement(
        W, D.Elem, D.Body,
        {{creationOpOf(D.Elem->id()), HbRule::R2_CreateBeforeExe},
         {W.ParseChainTail, First ? HbRule::R4_CreateBeforeDefer
                                  : HbRule::R5_DeferOrder}},
        Trigger);
    fireElementLoad(W, D.Elem, LastScriptExeOp, Trigger);
    W.ParseChainTail = LastElemLoadEnd;
    D.Executed = true;
    First = false;
    notePendingLoadDone(W);
    if (W.DclFired)
      return; // A deferred script may have forced quiescence changes.
  }
  fireDomContentLoaded(W);
}

void Browser::fireDomContentLoaded(Window &W) {
  if (W.DclFired)
    return;
  W.DclFired = true;
  // Rules 12/13/14 arrive through the parse/execute chain tail.
  auto [Begin, End] = dispatchEvent(
      TargetKey{W.document().id(), 0}, "DOMContentLoaded",
      {{W.ParseChainTail, HbRule::R12_ParseBeforeDcl}});
  (void)Begin;
  W.DclEndOp = End;
  tryFireWindowLoad(W);
}

void Browser::notePendingLoadDone(Window &W) {
  if (W.PendingLoads > 0)
    --W.PendingLoads;
  tryFireWindowLoad(W);
}

void Browser::tryFireWindowLoad(Window &W) {
  if (!W.DclFired || W.LoadFired || W.PendingLoads > 0)
    return;
  W.LoadFired = true;
  std::vector<std::pair<OpId, HbRule>> Preds;
  Preds.push_back({W.DclEndOp, HbRule::R11_DclBeforeLoad});
  for (OpId E : W.ElemLoadEnds) // Rule 15.
    Preds.push_back({E, HbRule::R15_ElemLoadBeforeWindowLoad});
  auto [Begin, End] = dispatchEvent(
      TargetKey{InvalidNodeId, W.windowObject()->containerId()}, "load",
      std::move(Preds));
  (void)Begin;
  W.LoadEndOp = End;

  if (W.ParentWindow && W.FrameElem) {
    // Rule 7: ld(nested window) happens-before ld(iframe element).
    Window &Parent = *W.ParentWindow;
    std::vector<std::pair<OpId, HbRule>> FramePreds = {
        {End, HbRule::R7_FrameLoad}};
    auto [FB, FE] = dispatchEvent(TargetKey{W.FrameElem->id(), 0}, "load",
                                  std::move(FramePreds));
    (void)FB;
    if (!Parent.LoadFired)
      Parent.ElemLoadEnds.push_back(FE);
    notePendingLoadDone(Parent);
  }
}

// ---------------------------------------------------------------------------
// Dynamic insertion (script-inserted scripts/images/iframes)
// ---------------------------------------------------------------------------

void Browser::handleDynamicInsertion(Window &W, Element *E) {
  if (E->tagName() == "script") {
    std::string Src = E->getAttribute("src");
    if (!Src.empty()) {
      // External script-inserted scripts load and run asynchronously
      // (Sec. 3.1); only rules 2 and 15 order them.
      OpId CreateOp = creationOpOf(E->id());
      if (!W.LoadFired)
        ++W.PendingLoads;
      Net.fetch(Src, [this, &W, E, CreateOp, Src](const FetchResult &R) {
        if (R.Ok) {
          OpTrigger Trigger{TriggerKind::Network, Src};
          executeScriptElement(W, E, R.Body,
                               {{CreateOp, HbRule::R2_CreateBeforeExe}},
                               Trigger);
          fireElementLoad(W, E, LastScriptExeOp, Trigger);
        }
        notePendingLoadDone(W);
      });
    } else {
      // Script-inserted inline scripts run synchronously, not as a new
      // operation (Sec. 3.3, rule 2 note).
      std::string Body;
      for (Node *Child : E->children())
        if (const Text *T = dyn_cast<Text>(Child))
          Body += T->data();
      if (!Body.empty())
        runScriptSource(Body, "inserted inline script");
    }
    return;
  }
  if (E->tagName() == "img" && E->hasAttribute("src")) {
    startImageLoad(W, E, creationOpOf(E->id()));
    return;
  }
  if (E->tagName() == "iframe") {
    startFrameLoad(W, E, creationOpOf(E->id()));
    return;
  }
}

// ---------------------------------------------------------------------------
// User simulation
// ---------------------------------------------------------------------------

void Browser::userClick(Element *Target) {
  OpTrigger Trigger{TriggerKind::User,
                    strFormat("click@node%u", Target->id())};
  dispatchEvent(TargetKey{Target->id(), 0}, "click", {}, Trigger);
}

void Browser::userEvent(Element *Target, const std::string &Type) {
  OpTrigger Trigger{TriggerKind::User,
                    strFormat("%s@node%u", Type.c_str(), Target->id())};
  dispatchEvent(TargetKey{Target->id(), 0}, Type, {}, Trigger);
}

void Browser::userType(Element *Target, const std::string &Text) {
  OpTrigger Trigger{TriggerKind::User,
                    strFormat("type@node%u", Target->id())};
  dispatchEvent(TargetKey{Target->id(), 0}, "focus", {}, Trigger);
  dispatchEvent(TargetKey{Target->id(), 0}, "keydown", {}, Trigger);

  // The typed text becomes a write of the field's value (the paper's
  // input-mirror handler makes exactly this access visible, Sec. 5.2.2).
  Operation Meta;
  Meta.Kind = OperationKind::UserAction;
  Meta.Subject = Target->id();
  Meta.Trigger = TriggerKind::User;
  Meta.TriggerKey = Trigger.Key;
  Meta.Label = strFormat("user types into node%u", Target->id());
  OpId Op = newOperation(Meta, {});
  runOperation(Op, [&] {
    recordVarAccess(AccessKind::Write, AccessOrigin::UserInput,
                    domContainer(Target->id()), "value",
                    "user typed \"" + Text + "\"");
    Target->setFormValue(Text);
  });

  dispatchEvent(TargetKey{Target->id(), 0}, "input", {}, Trigger);
  dispatchEvent(TargetKey{Target->id(), 0}, "keyup", {}, Trigger);
}

// ---------------------------------------------------------------------------
// GC roots
// ---------------------------------------------------------------------------

void Browser::traceRoots(js::GcTracer &T) {
  T.trace(GlobalEnv);
  for (const auto &[NodeId, Wrapper] : Wrappers)
    T.trace(Wrapper);
  for (const auto &W : Windows) {
    T.trace(W->windowObject());
    T.trace(W->documentObject());
  }
  for (const auto &[Key, TL] : ListenerMap) {
    T.trace(TL.Slot);
    for (const ListenerRecord &L : TL.Listeners)
      T.trace(L.Handler);
  }
  for (const auto &[Id, Timer] : Timers)
    T.trace(Timer.Callback);
  for (const js::Value &V : PinnedValues)
    T.trace(V);
}

//===- runtime/Browser.h - The simulated browser engine ---------*- C++ -*-===//
//
// Part of the WebRacer reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The simulated browser: windows/documents, the page-load pipeline that
/// interleaves HTML parsing with script execution, event dispatch with
/// capture/target/bubble phases, timers, XHR, and (simulated) user
/// actions. While executing it builds the paper's happens-before relation
/// (every rule of Sec. 3.3 plus the Appendix A refinements) and streams
/// operations, HB edges, and logical memory accesses to the registered
/// instrumentation sinks.
///
/// One Browser owns one JS heap and one global scope; same-origin frames
/// share the global scope (matching the paper's Fig. 1, where scripts in
/// sibling iframes race on one variable x) while each window keeps its own
/// document and its own load event (rule 7).
///
//===----------------------------------------------------------------------===//

#ifndef WEBRACER_RUNTIME_BROWSER_H
#define WEBRACER_RUNTIME_BROWSER_H

#include "dom/Dom.h"
#include "hb/HbGraph.h"
#include "html/HtmlParser.h"
#include "instr/Instrumentation.h"
#include "js/Heap.h"
#include "js/Interpreter.h"
#include "js/Parser.h"
#include "mem/LocationInterner.h"
#include "obs/PhaseTimer.h"
#include "runtime/EventLoop.h"
#include "runtime/Network.h"

#include <chrono>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace wr::rt {

class Browser;

/// Tuning knobs for a browser instance.
struct BrowserOptions {
  uint64_t Seed = 1;

  /// Add rule-10 edges for AJAX requests. The paper's implementation did
  /// not (Sec. 7 limitations); ours does by default. Turning this off
  /// reproduces WebRacer's over-reporting on AJAX-heavy pages.
  bool EnableAjaxHbEdges = true;

  /// Install the `this.value := this.value` input-mirror handler on every
  /// text box (Sec. 5.2.2), making user typing visible as a value write.
  bool AutoInputMirror = false;

  /// Per-operation JS step budget (0 = unlimited).
  uint64_t StepBudget = 5'000'000;

  /// Default latency for resources fetched relative to a site (used by
  /// the corpus driver when registering resources).
  VirtualTime DefaultLatency = 1000;

  /// Virtual cost of one parser step (microseconds). When nonzero, each
  /// parse step runs as its own event-loop task, so timers, network
  /// completions, and user actions interleave with parsing - the
  /// partial-page-rendering window the paper's races live in (Sec. 2.1).
  /// Zero parses each document in a single task.
  VirtualTime ParseStepCost = 20;

  /// Instrument clearTimeout/clearInterval as writes to a per-timer
  /// logical location that callback execution reads. The paper lists the
  /// missing instrumentation as a limitation (Sec. 7: clear* "may race
  /// with the execution of handlers installed via setTimeout and
  /// setInterval"); we close it, with this switch for paper-fidelity
  /// comparisons.
  bool InstrumentTimerClears = true;
};

/// Container-id namespace for per-timer logical locations (bit 61 set).
inline constexpr ContainerId TimerContainerBit = 1ull << 61;

/// One event listener registration.
struct ListenerRecord {
  js::Value Handler;
  uint64_t HandlerId = 0;
  bool Capture = false;
};

/// Identifies an event target: a DOM node, or a non-node JS object
/// (window, XMLHttpRequest).
struct TargetKey {
  NodeId Node = InvalidNodeId;
  ContainerId Object = 0;

  bool operator==(const TargetKey &O) const = default;
};

struct TargetKeyHash {
  size_t operator()(const TargetKey &K) const {
    return std::hash<uint64_t>()((static_cast<uint64_t>(K.Node) << 32) ^
                                 K.Object);
  }
};

/// A browsing context: a window with its document and load state.
class Window {
public:
  Window(Browser &B, DocumentId Id, Window *Parent, Element *FrameElem);

  Document &document() { return *Doc; }
  const Document &document() const { return *Doc; }
  DocumentId documentId() const { return Doc->documentId(); }
  Window *parent() const { return ParentWindow; }
  Element *frameElement() const { return FrameElem; }
  js::Object *windowObject() const { return WindowObj; }
  js::Object *documentObject() const { return DocumentObj; }

  bool parsingDone() const { return ParsingDone; }
  bool dclFired() const { return DclFired; }
  bool loadFired() const { return LoadFired; }

  /// Host-setup API used by installWindowObjects.
  void setWindowObject(js::Object *O) { WindowObj = O; }
  void setDocumentObject(js::Object *O) { DocumentObj = O; }

private:
  friend class Browser;

  Browser &B;
  std::unique_ptr<Document> Doc;
  Window *ParentWindow;
  Element *FrameElem;
  js::Object *WindowObj = nullptr;
  js::Object *DocumentObj = nullptr;

  // Page-load pipeline state.
  std::unique_ptr<html::HtmlParser> Parser;
  bool ParsingDone = false;
  bool ParserSuspended = false;
  bool DclFired = false;
  bool LoadFired = false;
  int PendingLoads = 0; ///< Resources that delay the window load event.

  /// Tail of the synchronous parse/execute chain (rule 1 edges hang off
  /// this; DCL chains from it per rules 12-14).
  OpId ParseChainTail = InvalidOpId;
  /// Next-parse predecessors (exe of inline script, ld-end of sync
  /// script).
  std::vector<OpId> NextParsePreds;

  struct DeferredScript {
    Element *Elem = nullptr;
    bool Arrived = false;
    bool Executed = false;
    std::string Body;
  };
  std::vector<DeferredScript> Deferred;

  OpId DclEndOp = InvalidOpId;
  OpId LoadEndOp = InvalidOpId;
  /// ld(E)-end anchors collected for rule 15.
  std::vector<OpId> ElemLoadEnds;
};

/// A race-relevant trigger for the current operation (used by the replay
/// classifier to perturb schedules).
struct OpTrigger {
  TriggerKind Kind = TriggerKind::None;
  std::string Key;
};

/// The browser engine.
class Browser final : public js::RootProvider, public js::JsHooks {
public:
  explicit Browser(BrowserOptions Opts = BrowserOptions());
  ~Browser() override;

  Browser(const Browser &) = delete;
  Browser &operator=(const Browser &) = delete;

  // -- Subsystems ------------------------------------------------------------

  EventLoop &loop() { return Loop; }
  NetworkSimulator &network() { return Net; }
  HbGraph &hb() { return Hb; }
  js::Heap &heap() { return Heap; }
  js::Interpreter &interp() { return *Interp; }
  const BrowserOptions &options() const { return Opts; }

  /// Registers an instrumentation sink (race detector, trace recorder).
  void addSink(InstrumentationSink *Sink) { Sinks.addSink(Sink); }

  // -- Page loading -----------------------------------------------------------

  /// Starts loading \p Url (its HTML must be registered in the network)
  /// into a fresh main window. Returns immediately; drive with
  /// runToQuiescence().
  void loadPage(const std::string &Url);

  /// Runs the event loop until no tasks remain.
  void runToQuiescence() { Loop.runUntilIdle(); }

  Window *mainWindow() { return Windows.empty() ? nullptr
                                                : Windows.front().get(); }
  const std::vector<std::unique_ptr<Window>> &windows() const {
    return Windows;
  }

  // -- User simulation ---------------------------------------------------------

  /// Simulates a user click on \p Target at the current virtual time
  /// (dispatched immediately as a user operation).
  void userClick(Element *Target);

  /// Simulates the user typing \p Text into a text field: dispatches
  /// focus, keydown, input (mutating the field per the input-mirror
  /// model), keyup.
  void userType(Element *Target, const std::string &Text);

  /// Dispatches an arbitrary user event (mouseover, blur, ...).
  void userEvent(Element *Target, const std::string &Type);

  // -- Operations (Sec. 3.2) ---------------------------------------------------

  /// Creates an operation with happens-before edges from \p Preds and
  /// notifies sinks. Does not start it.
  OpId newOperation(Operation Meta,
                    std::vector<std::pair<OpId, HbRule>> Preds);

  /// Runs \p Body attributed to operation \p Op. Returns true if the
  /// operation crashed (uncaught JS exception). Nestable (inline event
  /// dispatch).
  template <typename Fn> bool runOperation(OpId Op, Fn &&Body) {
    beginOperation(Op);
    std::forward<Fn>(Body)();
    return endOperation();
  }

  /// Currently executing operation (InvalidOpId between tasks).
  OpId currentOp() const {
    return OpStack.empty() ? InvalidOpId : OpStack.back();
  }

  /// Marks the current operation crashed (uncaught exception observed).
  void noteCrash(const std::string &Message);

  /// Messages from uncaught exceptions, in order.
  const std::vector<std::string> &crashLog() const { return Crashes; }

  /// alert() messages, in order.
  const std::vector<std::string> &alerts() const { return Alerts; }
  void recordAlert(std::string Message) {
    Alerts.push_back(std::move(Message));
  }

  /// console.log lines.
  const std::vector<std::string> &consoleLog() const { return Console; }
  void recordConsole(std::string Line) {
    Console.push_back(std::move(Line));
  }

  // -- Memory accesses ----------------------------------------------------------

  /// The browser's location interner: every access the sinks see carries
  /// an id from this table. Ids are announced to sinks via
  /// onLocationInterned before their first use.
  const LocationInterner &interner() const { return Interner; }

  /// Records a logical memory access attributed to the current operation
  /// (generic path: interns \p Loc first).
  void recordAccess(AccessKind Kind, AccessOrigin Origin, const Location &Loc,
                    std::string Detail = std::string());

  /// Hot-path variant for (container, name) variable/property locations:
  /// interns without constructing a Location (or copying the name) when
  /// the location was seen before. DOM node properties use
  /// domContainer(N) as the container.
  void recordVarAccess(AccessKind Kind, AccessOrigin Origin,
                       ContainerId Container, std::string_view Name,
                       std::string Detail = std::string());

  /// Records an access to an already-interned location.
  void recordAccessId(AccessKind Kind, AccessOrigin Origin, LocId Loc,
                      std::string Detail = std::string());

  /// Hot-path variant for event-handler locations (Sec. 4.3 triples).
  void recordHandlerAccess(AccessKind Kind, AccessOrigin Origin, NodeId Target,
                           ContainerId TargetObject, std::string_view EventType,
                           uint64_t HandlerId,
                           std::string Detail = std::string());

  /// JsHooks implementation (variable/property accesses from MiniJS).
  void onVarRead(js::Env *Scope, std::string_view Name,
                 AccessOrigin Origin) override;
  void onVarWrite(js::Env *Scope, std::string_view Name,
                  AccessOrigin Origin) override;
  void onPropRead(js::Object *Obj, std::string_view Name,
                  AccessOrigin Origin) override;
  void onPropWrite(js::Object *Obj, std::string_view Name,
                   AccessOrigin Origin) override;

  /// Synthetic container id for host-modeled DOM node properties
  /// (value, parentNode, ...), stable across wrapper lifetimes.
  static ContainerId domContainer(NodeId N) { return domContainerId(N); }

  // -- DOM/JS integration --------------------------------------------------------

  /// The JS wrapper for a DOM node (created on demand, cached, GC-rooted
  /// while the browser lives).
  js::Object *wrapperFor(Node *N);

  /// The node behind a wrapper (null if not a wrapper).
  Node *nodeFor(js::Object *Wrapper) const;

  /// Window owning \p Doc.
  Window *windowForDocument(DocumentId Doc);

  /// Window whose windowObject/documentObject is \p O (null otherwise).
  Window *windowForObject(js::Object *O);

  /// Records the HtmlElemLoc writes for elements that just entered or
  /// left a document (Sec. 4.2), plus the parentNode/childNodes JSVar
  /// writes of Sec. 4.1.
  void recordElementInsertion(const std::vector<Element *> &Affected,
                              bool Inserted);

  /// Records a lookup read (getElementById & friends).
  void recordLookup(DocumentId Doc, ElemKeyKind Kind, std::string Key);

  /// The operation that created (inserted) a node, for rule 8.
  OpId creationOpOf(NodeId N) const;

  /// Registers a node in the id registry (done automatically by
  /// wrapperFor and element insertion).
  void registerNode(Node *N) { NodesById[N->id()] = N; }

  /// Node lookup by id (null if never registered).
  Node *nodeById(NodeId Id) const {
    auto It = NodesById.find(Id);
    return It == NodesById.end() ? nullptr : It->second;
  }

  /// Called by bindings when a script inserts new elements (dynamic
  /// scripts/images/iframes need load handling).
  void handleDynamicInsertion(Window &W, Element *E);

  // -- Events -------------------------------------------------------------------

  /// Registers a listener (addEventListener).
  void addListener(TargetKey Target, const std::string &Type,
                   js::Value Handler, bool Capture);

  /// Removes a listener (removeEventListener).
  void removeListener(TargetKey Target, const std::string &Type,
                      js::Value Handler);

  /// Sets the on<type> property/content-attribute slot (HandlerId 0).
  void setSlotHandler(TargetKey Target, const std::string &Type,
                      js::Value Handler);

  /// Sets the slot from handler source text (content attribute form).
  void setSlotHandlerSource(TargetKey Target, const std::string &Type,
                            std::string Source);

  /// Reads the slot handler (for el.onclick reads).
  js::Value slotHandler(TargetKey Target, const std::string &Type);

  /// Dispatches event \p Type on \p Target. \p ExtraBeginPreds are
  /// rule-specific edges into the dispatch-begin anchor (rule 3, 7, 10,
  /// 11, 15, ...). \p Trigger attributes the dispatch for replay.
  /// Returns the {begin, end} anchor operations.
  std::pair<OpId, OpId>
  dispatchEvent(TargetKey Target, const std::string &Type,
                std::vector<std::pair<OpId, HbRule>> ExtraBeginPreds,
                OpTrigger Trigger = OpTrigger());

  /// Dispatch count so far for (target, type); the single-dispatch filter
  /// uses this.
  int dispatchCount(TargetKey Target, const std::string &Type) const;

  /// True if any handler (slot or listener) is registered for
  /// (target, type). The automatic explorer uses this to decide which
  /// events to generate.
  bool hasRegisteredHandler(TargetKey Target,
                            const std::string &Type) const;

  /// True if any handler for (target, type) actually executed during this
  /// run. The harm classifier uses installed-but-never-ran as evidence
  /// that a dispatch race lost a handler (Sec. 6.3's event-dispatch
  /// criterion).
  bool anyHandlerExecuted(TargetKey Target, const std::string &Type) const {
    return ExecutedHandlerKeys.count(dispatchKeyOf(Target, Type)) != 0;
  }

  /// All (target, type) pairs dispatched, with counts.
  const std::unordered_map<std::string, int> &dispatchCounts() const {
    return DispatchCountByKey;
  }

  // -- Timers ---------------------------------------------------------------------

  /// setTimeout. \p Callback is a function value or source string.
  uint64_t setTimeout(js::Value Callback, VirtualTime DelayMs);
  /// setInterval.
  uint64_t setInterval(js::Value Callback, VirtualTime DelayMs);
  void clearTimer(uint64_t TimerId);

  // -- XHR ---------------------------------------------------------------------

  /// Issues an XHR send for \p Xhr (its "url" own property holds the
  /// target). Called from the XHR host class.
  void xhrSend(js::Object *Xhr);

  // -- Script execution -----------------------------------------------------------

  /// Parses and caches a script; returns null on syntax errors (recorded
  /// in parseErrorLog).
  const js::Program *compile(const std::string &Source,
                             const std::string &OriginTag);

  /// Runs JS source in the global scope inside the current operation,
  /// recording a crash on uncaught exceptions.
  void runScriptSource(const std::string &Source,
                       const std::string &OriginTag,
                       js::Value ThisV = js::Value());

  /// Invokes a JS function value inside the current operation.
  void invokeHandler(js::Value Handler, js::Value ThisV,
                     std::vector<js::Value> Args);

  const std::vector<std::string> &parseErrorLog() const {
    return ParseErrors;
  }

  // -- GC root provider ------------------------------------------------------------

  void traceRoots(js::GcTracer &T) override;

  /// Statistics.
  uint64_t numOperationsRun() const { return OpsRun; }

  /// Per-phase wall/virtual time accumulated while running operations.
  /// Wall time is attributed to the phase of the innermost operation
  /// (self time, not inclusive); virtual-time deltas are attributed to
  /// the phase of the operation observing them, which keeps the virtual
  /// figures deterministic.
  const obs::PhaseStats &phaseStats() const { return Phases; }
  obs::PhaseStats &phaseStats() { return Phases; }

private:
  friend class Window;

  // Page-load pipeline.
  Window *createWindow(Window *Parent, Element *FrameElem);
  void startWindowLoad(Window &W, const std::string &Url);
  void pumpParser(Window &W);
  void handleParsedElement(Window &W, Element *E, OpId ParseOp);
  void handleScriptComplete(Window &W, Element *Script,
                            std::string InlineBody);
  void startImageLoad(Window &W, Element *Img, OpId CreateOp);
  void startFrameLoad(Window &W, Element *Frame, OpId CreateOp);
  void onStaticParsingDone(Window &W);
  void tryRunDeferred(Window &W);
  void fireDomContentLoaded(Window &W);
  void tryFireWindowLoad(Window &W);
  void notePendingLoadDone(Window &W);

  /// Executes one script element body in a fresh exe operation.
  void executeScriptElement(Window &W, Element *Script,
                            const std::string &Body,
                            std::vector<std::pair<OpId, HbRule>> Preds,
                            OpTrigger Trigger);

  /// Fires the load event for an element (rule 3 edge from \p ExeOp when
  /// the element is a script). Collects rule-15 anchors.
  void fireElementLoad(Window &W, Element *E, OpId ExeOp,
                       OpTrigger Trigger);

  void beginOperation(OpId Op);
  bool endOperation();

  /// Runs one handler value (function or attr source) as an EventHandler
  /// operation; returns the op id.
  OpId runHandlerOp(TargetKey Target, js::Object *CurrentTargetObj,
                    const std::string &Type, js::Value Handler,
                    uint64_t HandlerId, OpId Pred, OpTrigger Trigger,
                    int DispatchIndex);

  std::string dispatchKeyOf(TargetKey Target, const std::string &Type) const;

  /// Runs \p Fn (an interner call returning a LocId) and announces the id
  /// to sinks if the call created it.
  template <typename InternFn> LocId announceIntern(InternFn &&Fn) {
    size_t Before = Interner.size();
    LocId Id = Fn();
    if (Interner.size() != Before)
      Sinks.onLocationInterned(Id, Interner.resolve(Id));
    return Id;
  }

  js::Value wrapperValue(Node *N) {
    js::Object *W = wrapperFor(N);
    return W ? js::Value(W) : js::Value::null();
  }

  BrowserOptions Opts;
  EventLoop Loop;
  NetworkSimulator Net;
  HbGraph Hb;
  js::Heap Heap;
  js::Env *GlobalEnv = nullptr;
  std::unique_ptr<js::Interpreter> Interp;
  MultiSink Sinks;
  LocationInterner Interner;

  std::vector<std::unique_ptr<Window>> Windows;
  DocumentId NextDocId = 1;
  uint32_t NextNodeId = 1;

  std::vector<OpId> OpStack;
  std::vector<bool> CrashFlagStack;
  /// One frame per nested operation: when it started, wall time spent in
  /// nested operations (subtracted for self time), and its phase.
  struct TimingFrame {
    std::chrono::steady_clock::time_point Start;
    uint64_t ChildNanos = 0;
    obs::Phase Ph = obs::Phase::Script;
  };
  std::vector<TimingFrame> TimingStack;
  obs::PhaseStats Phases;
  /// Virtual time already attributed to a phase (advance observed at the
  /// next outermost operation begin).
  VirtualTime VirtualMark = 0;
  uint64_t OpsRun = 0;
  OpId BootstrapOp = InvalidOpId;
  OpId LastScriptExeOp = InvalidOpId;
  OpId LastElemLoadEnd = InvalidOpId;

  // Wrappers and creation tracking.
  std::unordered_map<NodeId, js::Object *> Wrappers;
  std::unordered_map<NodeId, Node *> NodesById;
  std::unordered_map<NodeId, OpId> CreatedBy;

  // Event listeners: key = target/type string.
  struct TargetListeners {
    std::vector<ListenerRecord> Listeners;
    js::Value Slot; ///< on<type> property / content attribute handler.
    bool SlotIsAttrSource = false;
    std::string AttrSource;
  };
  std::unordered_map<std::string, TargetListeners> ListenerMap;
  std::unordered_map<std::string, int> DispatchCountByKey;
  std::unordered_map<std::string, OpId> LastDispatchEnd;
  std::unordered_set<std::string> ExecutedHandlerKeys;

  // Timers.
  struct TimerRecord {
    uint64_t Id = 0;
    js::Value Callback;
    VirtualTime Delay = 0;
    bool Interval = false;
    bool Cancelled = false;
    OpId CreatorOp = InvalidOpId;
    OpId LastCallbackOp = InvalidOpId;
    int Index = 0;
    EventLoop::TaskId Task = 0;
  };
  std::unordered_map<uint64_t, TimerRecord> Timers;
  uint64_t NextTimerId = 1;

  // Compiled scripts (ASTs must outlive function values).
  std::vector<std::unique_ptr<js::Program>> CompiledScripts;
  std::unordered_map<std::string, const js::Program *> CompileCache;
  std::vector<std::string> ParseErrors;

  std::vector<std::string> Alerts;
  std::vector<std::string> Console;
  std::vector<std::string> Crashes;

  // Values that must survive GC: pending timer callbacks and listener
  // handlers are traced via the structures above; this pins transient
  // host-held values (XHR objects in flight, ...).
  std::vector<js::Value> PinnedValues;

public:
  /// Pins a value for the browser's lifetime (host bookkeeping).
  void pinValue(js::Value V) { PinnedValues.push_back(std::move(V)); }
};

/// Installs the browser-level JS bindings (document/window/element host
/// classes, setTimeout, XMLHttpRequest, alert, ...) into the browser's
/// global scope. Defined in Bindings.cpp; called by the Browser
/// constructor.
void installBindings(Browser &B);

/// Creates the window/document host objects for \p W. Called whenever a
/// window is created.
void installWindowObjects(Browser &B, Window &W);

} // namespace wr::rt

#endif // WEBRACER_RUNTIME_BROWSER_H

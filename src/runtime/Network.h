//===- runtime/Network.h - Simulated network --------------------*- C++ -*-===//
//
// Part of the WebRacer reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A network simulator: resources are registered under URLs with either a
/// fixed latency or a seeded random latency range. Fetch completions are
/// delivered as event-loop tasks, which is the primary source of the
/// nondeterministic orderings that cause web races (Sec. 2.1: "variation
/// in network bandwidth").
///
/// The replay-based harmfulness classifier perturbs schedules through
/// latency overrides, flipping the arrival order of targeted resources.
///
//===----------------------------------------------------------------------===//

#ifndef WEBRACER_RUNTIME_NETWORK_H
#define WEBRACER_RUNTIME_NETWORK_H

#include "runtime/EventLoop.h"
#include "support/Rng.h"

#include <functional>
#include <string>
#include <unordered_map>

namespace wr::rt {

/// Outcome of a fetch.
struct FetchResult {
  bool Ok = false;
  std::string Body;
  std::string Url;
};

/// The simulated network.
class NetworkSimulator {
public:
  NetworkSimulator(EventLoop &Loop, uint64_t Seed)
      : Loop(Loop), LatencyRng(Seed) {}

  /// Registers a resource with a fixed latency (microseconds).
  void addResource(std::string Url, std::string Body,
                   VirtualTime Latency = 1000);

  /// Registers a resource whose latency is sampled uniformly from
  /// [MinLatency, MaxLatency] at each fetch.
  void addResourceWithJitter(std::string Url, std::string Body,
                             VirtualTime MinLatency, VirtualTime MaxLatency);

  /// Removes a resource; subsequent fetches fail.
  void removeResource(const std::string &Url);

  bool hasResource(const std::string &Url) const;

  /// Body of a registered resource ("" if missing); test helper.
  std::string resourceBody(const std::string &Url) const;

  /// Starts an asynchronous fetch; \p Done runs as an event-loop task
  /// after the resource's latency (or after ErrorLatency for a missing
  /// resource, with Ok=false).
  void fetch(const std::string &Url,
             std::function<void(const FetchResult &)> Done);

  /// Forces the next fetches of \p Url to complete with latency \p L.
  /// Used by the schedule explorer; cleared by clearOverrides().
  void overrideLatency(const std::string &Url, VirtualTime L);
  void clearOverrides();

  /// Number of fetches issued.
  uint64_t fetchCount() const { return Fetches; }

private:
  struct Resource {
    std::string Body;
    VirtualTime MinLatency = 1000;
    VirtualTime MaxLatency = 1000;
  };

  VirtualTime latencyFor(const std::string &Url, const Resource *R);

  EventLoop &Loop;
  Rng LatencyRng;
  std::unordered_map<std::string, Resource> Resources;
  std::unordered_map<std::string, VirtualTime> Overrides;
  VirtualTime ErrorLatency = 500;
  uint64_t Fetches = 0;
};

} // namespace wr::rt

#endif // WEBRACER_RUNTIME_NETWORK_H

//===- runtime/Network.cpp - Simulated network -------------------------------===//

#include "runtime/Network.h"

using namespace wr;
using namespace wr::rt;

void NetworkSimulator::addResource(std::string Url, std::string Body,
                                   VirtualTime Latency) {
  Resources[std::move(Url)] = Resource{std::move(Body), Latency, Latency};
}

void NetworkSimulator::addResourceWithJitter(std::string Url,
                                             std::string Body,
                                             VirtualTime MinLatency,
                                             VirtualTime MaxLatency) {
  if (MaxLatency < MinLatency)
    MaxLatency = MinLatency;
  Resources[std::move(Url)] =
      Resource{std::move(Body), MinLatency, MaxLatency};
}

void NetworkSimulator::removeResource(const std::string &Url) {
  Resources.erase(Url);
}

bool NetworkSimulator::hasResource(const std::string &Url) const {
  return Resources.count(Url) != 0;
}

std::string NetworkSimulator::resourceBody(const std::string &Url) const {
  auto It = Resources.find(Url);
  return It == Resources.end() ? std::string() : It->second.Body;
}

VirtualTime NetworkSimulator::latencyFor(const std::string &Url,
                                         const Resource *R) {
  auto Ov = Overrides.find(Url);
  if (Ov != Overrides.end())
    return Ov->second;
  if (!R)
    return ErrorLatency;
  if (R->MinLatency == R->MaxLatency)
    return R->MinLatency;
  return static_cast<VirtualTime>(LatencyRng.nextInRange(
      static_cast<int64_t>(R->MinLatency),
      static_cast<int64_t>(R->MaxLatency)));
}

void NetworkSimulator::fetch(const std::string &Url,
                             std::function<void(const FetchResult &)> Done) {
  ++Fetches;
  auto It = Resources.find(Url);
  const Resource *R = It == Resources.end() ? nullptr : &It->second;
  FetchResult Result;
  Result.Url = Url;
  if (R) {
    Result.Ok = true;
    Result.Body = R->Body;
  }
  VirtualTime L = latencyFor(Url, R);
  Loop.scheduleAfter(L, [Done = std::move(Done),
                         Result = std::move(Result)]() { Done(Result); });
}

void NetworkSimulator::overrideLatency(const std::string &Url,
                                       VirtualTime L) {
  Overrides[Url] = L;
}

void NetworkSimulator::clearOverrides() { Overrides.clear(); }

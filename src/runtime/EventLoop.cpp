//===- runtime/EventLoop.cpp - Virtual-time event loop ----------------------===//

#include "runtime/EventLoop.h"

#include <algorithm>

using namespace wr;
using namespace wr::rt;

EventLoop::TaskId EventLoop::scheduleAt(VirtualTime When, TaskFn Fn) {
  Task T;
  T.When = std::max(When, Now);
  T.Seq = NextSeq++;
  T.Id = NextId++;
  T.Fn = std::move(Fn);
  Queue.push(std::move(T));
  return NextId - 1;
}

bool EventLoop::cancel(TaskId Id) {
  if (Id == 0 || Id >= NextId)
    return false;
  if (Cancelled.count(Id) || Finished.count(Id))
    return false;
  Cancelled.insert(Id);
  return true;
}

bool EventLoop::runOne() {
  while (!Queue.empty()) {
    Task T = Queue.top();
    Queue.pop();
    if (Cancelled.count(T.Id)) {
      Finished.insert(T.Id);
      continue;
    }
    Finished.insert(T.Id);
    Now = std::max(Now, T.When);
    ++Executed;
    T.Fn();
    return true;
  }
  return false;
}

size_t EventLoop::runUntilIdle() {
  size_t Count = 0;
  while (runOne()) {
    ++Count;
    if (TaskLimit != 0 && Count >= TaskLimit)
      break;
  }
  return Count;
}

size_t EventLoop::pendingTasks() const {
  size_t Pending = Queue.size();
  for (TaskId Id : Cancelled)
    if (!Finished.count(Id))
      --Pending;
  return Pending;
}

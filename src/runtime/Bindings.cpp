//===- runtime/Bindings.cpp - DOM/BOM host classes ---------------------------===//

#include "runtime/Bindings.h"

#include "runtime/Browser.h"
#include "support/Format.h"
#include "support/StringUtils.h"

#include <cctype>
#include <cmath>

using namespace wr;
using namespace wr::rt;
using js::Completion;
using js::HostClass;
using js::Interpreter;
using js::Object;
using js::Value;

namespace {

Browser &browserOf(Object *Self) {
  return *reinterpret_cast<Browser *>(Self->hostInt());
}

Value arg(const std::vector<Value> &Args, size_t I) {
  return I < Args.size() ? Args[I] : Value();
}

/// Allocates a host method bound to nothing; it recovers its receiver
/// from ThisV at call time.
Value method(Interpreter &I, const char *Name, js::HostFn Fn) {
  return Value(I.heap().allocHostFunction(std::move(Fn), Name));
}

Element *elementOf(Browser &B, const Value &V) {
  Object *O = V.objectOrNull();
  if (!O)
    return nullptr;
  return dyn_cast<Element>(B.nodeFor(O));
}

Element *selfElement(Interpreter &, Object *Self) {
  Browser &B = browserOf(Self);
  return dyn_cast<Element>(B.nodeFor(Self));
}

/// Parses a style="a: b; c: d" attribute into hidden __style_* attributes
/// the style object reads/writes.
void ensureStyleParsed(Element *E) {
  if (E->hasAttribute("__style_parsed"))
    return;
  E->setAttribute("__style_parsed", "1");
  for (const std::string &Decl : split(E->getAttribute("style"), ';')) {
    size_t Colon = Decl.find(':');
    if (Colon == std::string::npos)
      continue;
    std::string Prop(trim(std::string_view(Decl).substr(0, Colon)));
    std::string Val(trim(std::string_view(Decl).substr(Colon + 1)));
    if (!Prop.empty())
      E->setAttribute("__style_" + toLower(Prop), Val);
  }
}

/// Serializes an element's children (innerHTML getter).
void serializeChildren(const Node *N, std::string &Out) {
  for (const Node *Child : N->children()) {
    if (const Text *T = dyn_cast<Text>(Child)) {
      Out += T->data();
      continue;
    }
    const Element *E = cast<Element>(Child);
    Out += "<" + E->tagName();
    for (const Attribute &A : E->attributes()) {
      if (startsWith(A.Name, "__style_"))
        continue;
      Out += " " + A.Name + "=\"" + A.Value + "\"";
    }
    Out += ">";
    if (!E->isVoidTag()) {
      serializeChildren(E, Out);
      Out += "</" + E->tagName() + ">";
    }
  }
}

/// Shared implementation of appendChild/insertBefore on any node wrapper.
Completion insertChildImpl(Interpreter &I, Object *Self,
                           const Value &ChildV, const Value &RefV,
                           bool HasRef) {
  Browser &B = browserOf(Self);
  Node *Parent = B.nodeFor(Self);
  Node *Child = ChildV.isObject() ? B.nodeFor(ChildV.asObject()) : nullptr;
  if (!Parent || !Child)
    return I.throwError("TypeError", "parameter is not a Node");
  Node *Ref = nullptr;
  if (HasRef && !RefV.isNullish()) {
    Ref = RefV.isObject() ? B.nodeFor(RefV.asObject()) : nullptr;
    if (!Ref)
      return I.throwError("TypeError", "reference is not a Node");
  }
  Document *Doc = Parent->ownerDocument()
                      ? Parent->ownerDocument()
                      : dyn_cast<Document>(Parent);
  if (!Doc)
    return I.throwError("TypeError", "node has no document");
  MutationResult R = Doc->insertBefore(Parent, Child, Ref);
  if (!R.Ok)
    return I.throwError("HierarchyRequestError", R.Error);
  B.recordElementInsertion(R.AffectedElements, /*Inserted=*/true);
  if (Child->inDocument()) {
    Window *W = B.windowForDocument(Doc->documentId());
    if (W)
      for (Element *E : R.AffectedElements)
        B.handleDynamicInsertion(*W, E);
  }
  return Completion::normal(ChildV);
}

// ---------------------------------------------------------------------------
// Element host class
// ---------------------------------------------------------------------------

class ElementClass final : public HostClass {
public:
  const char *name() const override { return "HTMLElement"; }

  bool hostGet(Interpreter &I, Object *Self, const std::string &Name,
               Value &Out) override {
    Browser &B = browserOf(Self);
    Element *E = selfElement(I, Self);
    if (!E)
      return false;
    NodeId N = E->id();
    DocumentId D = E->ownerDocument()->documentId();

    // --- State properties -------------------------------------------------
    if (Name == "value") {
      B.recordVarAccess(AccessKind::Read, AccessOrigin::FormFieldRead,
                        Browser::domContainer(N), "value");
      Out = Value(E->formValue());
      return true;
    }
    if (Name == "checked") {
      B.recordVarAccess(AccessKind::Read, AccessOrigin::FormFieldRead,
                        Browser::domContainer(N), "checked");
      Out = Value(E->isChecked());
      return true;
    }
    if (Name == "id") {
      Out = Value(E->idAttr());
      return true;
    }
    if (Name == "tagName" || Name == "nodeName") {
      std::string Tag = E->tagName();
      for (char &C : Tag)
        C = static_cast<char>(std::toupper(static_cast<unsigned char>(C)));
      Out = Value(Tag);
      return true;
    }
    if (Name == "parentNode" || Name == "parentElement") {
      B.recordVarAccess(AccessKind::Read, AccessOrigin::Plain,
                        Browser::domContainer(N), "parentNode");
      Node *P = E->parent();
      Out = P ? Value(B.wrapperFor(P)) : Value::null();
      return true;
    }
    if (Name == "childNodes" || Name == "children") {
      B.recordVarAccess(AccessKind::Read, AccessOrigin::Plain,
                        Browser::domContainer(N), "childNodes");
      Object *Arr = I.heap().allocArray();
      for (Node *Child : E->children()) {
        if (Name == "children" && !isa<Element>(Child))
          continue;
        Arr->elements().push_back(Value(B.wrapperFor(Child)));
      }
      Out = Value(Arr);
      return true;
    }
    if (Name == "firstChild" || Name == "lastChild") {
      B.recordVarAccess(AccessKind::Read, AccessOrigin::Plain,
                        Browser::domContainer(N), "childNodes");
      const auto &Kids = E->children();
      if (Kids.empty())
        Out = Value::null();
      else
        Out = Value(
            B.wrapperFor(Name == "firstChild" ? Kids.front() : Kids.back()));
      return true;
    }
    if (Name == "style") {
      ensureStyleParsed(E);
      // One style object per element, cached as a hidden own property.
      if (Value *Cached = Self->findOwnProperty("__styleobj")) {
        Out = *Cached;
        return true;
      }
      Object *Style = I.heap().allocObject();
      Style->setHostClass(styleHostClass());
      Style->setHostInt(Self->hostInt());
      Style->setHostPtr(E);
      Style->setDomNode(N);
      Self->setOwnProperty("__styleobj", Value(Style));
      Out = Value(Style);
      return true;
    }
    if (Name == "innerHTML") {
      B.recordAccess(AccessKind::Read, AccessOrigin::ElemLookup,
                     HtmlElemLoc{D, ElemKeyKind::ByNode, N, ""});
      std::string Html;
      serializeChildren(E, Html);
      Out = Value(std::move(Html));
      return true;
    }
    if (Name == "src" || Name == "href" || Name == "name" ||
        Name == "type" || Name == "title" || Name == "alt" ||
        Name == "rel" || Name == "action" || Name == "method") {
      B.recordVarAccess(AccessKind::Read, AccessOrigin::Plain,
                        Browser::domContainer(N), Name);
      Out = Value(E->getAttribute(Name));
      return true;
    }
    if (Name == "className") {
      Out = Value(E->getAttribute("class"));
      return true;
    }
    if (Name == "disabled") {
      Out = Value(E->hasAttribute("disabled"));
      return true;
    }
    if (Name == "ownerDocument") {
      Out = Value(B.wrapperFor(E->ownerDocument()));
      return true;
    }
    if (Name == "offsetWidth" || Name == "offsetHeight" ||
        Name == "clientWidth" || Name == "clientHeight" ||
        Name == "scrollTop" || Name == "scrollLeft") {
      Out = Value(0.0);
      return true;
    }
    if (Name == "complete") { // img.complete
      Out = Value(true);
      return true;
    }
    // on<type> handler slots (Sec. 4.3).
    if (startsWith(Name, "on") && Name.size() > 2) {
      std::string Type = Name.substr(2);
      B.recordHandlerAccess(AccessKind::Read, AccessOrigin::Plain, N, 0,
                            Type, 0);
      Out = B.slotHandler(TargetKey{N, 0}, Type);
      return true;
    }

    // --- Methods -----------------------------------------------------------
    if (Name == "getAttribute") {
      Out = method(I, "getAttribute",
                   [](Interpreter &In, Value ThisV,
                      std::vector<Value> &A) -> Completion {
                     Object *Obj = ThisV.objectOrNull();
                     Element *El =
                         Obj ? selfElement(In, Obj) : nullptr;
                     if (!El)
                       return In.throwError("TypeError", "not an element");
                     std::string AttrName = In.toStringValue(arg(A, 0));
                     if (!El->hasAttribute(AttrName))
                       return Completion::normal(Value::null());
                     return Completion::normal(
                         Value(El->getAttribute(AttrName)));
                   });
      return true;
    }
    if (Name == "setAttribute") {
      Out = method(I, "setAttribute",
                   [](Interpreter &In, Value ThisV,
                      std::vector<Value> &A) -> Completion {
                     Object *Obj = ThisV.objectOrNull();
                     Element *El = Obj ? selfElement(In, Obj) : nullptr;
                     if (!El)
                       return In.throwError("TypeError", "not an element");
                     Browser &B2 = browserOf(Obj);
                     std::string AttrName =
                         toLower(In.toStringValue(arg(A, 0)));
                     std::string AttrValue = In.toStringValue(arg(A, 1));
                     if (startsWith(AttrName, "on") &&
                         AttrName.size() > 2) {
                       // Installing a handler via attribute.
                       B2.setSlotHandlerSource(TargetKey{El->id(), 0},
                                               AttrName.substr(2),
                                               AttrValue);
                       return Completion::normal();
                     }
                     if (AttrName == "value" &&
                         (El->tagName() == "input" ||
                          El->tagName() == "textarea")) {
                       B2.recordVarAccess(
                           AccessKind::Write,
                           AccessOrigin::FormFieldWrite,
                           Browser::domContainer(El->id()), "value");
                       El->setFormValue(AttrValue);
                     }
                     B2.recordVarAccess(
                         AccessKind::Write, AccessOrigin::Plain,
                         Browser::domContainer(El->id()), AttrName);
                     El->setAttribute(AttrName, AttrValue);
                     return Completion::normal();
                   });
      return true;
    }
    if (Name == "removeAttribute") {
      Out = method(I, "removeAttribute",
                   [](Interpreter &In, Value ThisV,
                      std::vector<Value> &A) -> Completion {
                     Object *Obj = ThisV.objectOrNull();
                     Element *El = Obj ? selfElement(In, Obj) : nullptr;
                     if (!El)
                       return In.throwError("TypeError", "not an element");
                     Browser &B2 = browserOf(Obj);
                     std::string AttrName =
                         toLower(In.toStringValue(arg(A, 0)));
                     B2.recordVarAccess(
                         AccessKind::Write, AccessOrigin::Plain,
                         Browser::domContainer(El->id()), AttrName);
                     El->removeAttribute(AttrName);
                     return Completion::normal();
                   });
      return true;
    }
    if (Name == "appendChild") {
      Out = method(I, "appendChild",
                   [](Interpreter &In, Value ThisV,
                      std::vector<Value> &A) -> Completion {
                     Object *Obj = ThisV.objectOrNull();
                     if (!Obj)
                       return In.throwError("TypeError", "not a node");
                     return insertChildImpl(In, Obj, arg(A, 0), Value(),
                                            /*HasRef=*/false);
                   });
      return true;
    }
    if (Name == "insertBefore") {
      Out = method(I, "insertBefore",
                   [](Interpreter &In, Value ThisV,
                      std::vector<Value> &A) -> Completion {
                     Object *Obj = ThisV.objectOrNull();
                     if (!Obj)
                       return In.throwError("TypeError", "not a node");
                     return insertChildImpl(In, Obj, arg(A, 0), arg(A, 1),
                                            /*HasRef=*/true);
                   });
      return true;
    }
    if (Name == "removeChild") {
      Out = method(
          I, "removeChild",
          [](Interpreter &In, Value ThisV,
             std::vector<Value> &A) -> Completion {
            Object *Obj = ThisV.objectOrNull();
            if (!Obj)
              return In.throwError("TypeError", "not a node");
            Browser &B2 = browserOf(Obj);
            Node *Parent = B2.nodeFor(Obj);
            Node *Child = arg(A, 0).isObject()
                              ? B2.nodeFor(arg(A, 0).asObject())
                              : nullptr;
            if (!Parent || !Child)
              return In.throwError("TypeError",
                                   "parameter is not a Node");
            MutationResult R =
                Parent->ownerDocument()->removeChild(Parent, Child);
            if (!R.Ok)
              return In.throwError("NotFoundError", R.Error);
            B2.recordElementInsertion(R.AffectedElements,
                                      /*Inserted=*/false);
            return Completion::normal(arg(A, 0));
          });
      return true;
    }
    if (Name == "addEventListener" || Name == "removeEventListener") {
      bool Add = Name == "addEventListener";
      Out = method(
          I, Name.c_str(),
          [Add](Interpreter &In, Value ThisV,
                std::vector<Value> &A) -> Completion {
            Object *Obj = ThisV.objectOrNull();
            if (!Obj)
              return In.throwError("TypeError", "not an event target");
            Browser &B2 = browserOf(Obj);
            Node *NodePtr = B2.nodeFor(Obj);
            TargetKey Key = NodePtr
                                ? TargetKey{NodePtr->id(), 0}
                                : TargetKey{InvalidNodeId,
                                            Obj->containerId()};
            std::string Type = In.toStringValue(arg(A, 0));
            bool Capture = Interpreter::toBoolean(arg(A, 2));
            if (Add)
              B2.addListener(Key, Type, arg(A, 1), Capture);
            else
              B2.removeListener(Key, Type, arg(A, 1));
            return Completion::normal();
          });
      return true;
    }
    if (Name == "click" || Name == "focus" || Name == "blur") {
      std::string Type = Name == "click" ? "click"
                         : Name == "focus" ? "focus"
                                           : "blur";
      Out = method(I, Name.c_str(),
                   [Type](Interpreter &In, Value ThisV,
                          std::vector<Value> &) -> Completion {
                     Object *Obj = ThisV.objectOrNull();
                     Element *El = Obj ? selfElement(In, Obj) : nullptr;
                     if (!El)
                       return In.throwError("TypeError", "not an element");
                     // Inline event dispatch (Appendix A splitting).
                     browserOf(Obj).dispatchEvent(TargetKey{El->id(), 0},
                                                  Type, {});
                     return Completion::normal();
                   });
      return true;
    }
    if (Name == "getElementsByTagName") {
      Out = method(
          I, "getElementsByTagName",
          [](Interpreter &In, Value ThisV,
             std::vector<Value> &A) -> Completion {
            Object *Obj = ThisV.objectOrNull();
            Element *El = Obj ? selfElement(In, Obj) : nullptr;
            if (!El)
              return In.throwError("TypeError", "not an element");
            Browser &B2 = browserOf(Obj);
            std::string Tag = toLower(In.toStringValue(arg(A, 0)));
            B2.recordLookup(El->ownerDocument()->documentId(),
                            ElemKeyKind::ByTag, Tag);
            Object *Arr = In.heap().allocArray();
            // Scoped to the subtree.
            std::vector<Element *> All =
                El->ownerDocument()->getElementsByTagName(Tag);
            for (Element *Found : All) {
              for (Node *Walk = Found; Walk; Walk = Walk->parent()) {
                if (Walk == El && Found != El) {
                  Arr->elements().push_back(Value(B2.wrapperFor(Found)));
                  break;
                }
              }
            }
            return Completion::normal(Value(Arr));
          });
      return true;
    }
    if (Name == "hasChildNodes") {
      Out = method(I, "hasChildNodes",
                   [](Interpreter &In, Value ThisV,
                      std::vector<Value> &) -> Completion {
                     Object *Obj = ThisV.objectOrNull();
                     Node *NodePtr =
                         Obj ? browserOf(Obj).nodeFor(Obj) : nullptr;
                     if (!NodePtr)
                       return In.throwError("TypeError", "not a node");
                     return Completion::normal(
                         Value(!NodePtr->children().empty()));
                   });
      return true;
    }
    return false; // Expando properties use the generic instrumented path.
  }

  bool hostSet(Interpreter &I, Object *Self, const std::string &Name,
               const Value &V) override {
    Browser &B = browserOf(Self);
    Element *E = selfElement(I, Self);
    if (!E)
      return false;
    NodeId N = E->id();

    if (Name == "value") {
      B.recordVarAccess(AccessKind::Write, AccessOrigin::FormFieldWrite,
                        Browser::domContainer(N), "value",
                        "script wrote value");
      E->setFormValue(I.toStringValue(V));
      return true;
    }
    if (Name == "checked") {
      B.recordVarAccess(AccessKind::Write, AccessOrigin::FormFieldWrite,
                        Browser::domContainer(N), "checked");
      E->setChecked(Interpreter::toBoolean(V));
      return true;
    }
    if (Name == "id") {
      std::string NewId = I.toStringValue(V);
      B.recordVarAccess(AccessKind::Write, AccessOrigin::Plain,
                        Browser::domContainer(N), "id");
      if (E->inDocument()) {
        DocumentId D = E->ownerDocument()->documentId();
        std::string Old = E->idAttr();
        if (!Old.empty())
          B.recordAccess(AccessKind::Write, AccessOrigin::ElemRemove,
                         HtmlElemLoc{D, ElemKeyKind::ById, InvalidNodeId,
                                     Old});
        if (!NewId.empty())
          B.recordAccess(AccessKind::Write, AccessOrigin::ElemInsert,
                         HtmlElemLoc{D, ElemKeyKind::ById, InvalidNodeId,
                                     NewId});
      }
      E->setAttribute("id", NewId);
      return true;
    }
    if (Name == "src") {
      B.recordVarAccess(AccessKind::Write, AccessOrigin::Plain,
                        Browser::domContainer(N), "src");
      E->setAttribute("src", I.toStringValue(V));
      if (E->tagName() == "img") {
        // Setting img.src starts the load even when detached (the classic
        // Image-preload idiom the Gomez monitor watches).
        Window *W =
            B.windowForDocument(E->ownerDocument()->documentId());
        if (W)
          B.handleDynamicInsertion(*W, E);
      }
      return true;
    }
    if (Name == "href" || Name == "className" || Name == "title" ||
        Name == "alt" || Name == "name" || Name == "type") {
      B.recordVarAccess(AccessKind::Write, AccessOrigin::Plain,
                        Browser::domContainer(N), Name);
      E->setAttribute(Name == "className" ? "class" : Name,
                      I.toStringValue(V));
      return true;
    }
    if (Name == "disabled") {
      if (Interpreter::toBoolean(V))
        E->setAttribute("disabled", "");
      else
        E->removeAttribute("disabled");
      return true;
    }
    if (Name == "innerHTML") {
      DocumentId D = E->ownerDocument()->documentId();
      B.recordAccess(AccessKind::Write, AccessOrigin::ElemInsert,
                     HtmlElemLoc{D, ElemKeyKind::ByNode, N, ""},
                     "innerHTML");
      Document *Doc = E->ownerDocument();
      // Remove existing children.
      while (!E->children().empty()) {
        MutationResult R = Doc->removeChild(E, E->children().back());
        B.recordElementInsertion(R.AffectedElements, /*Inserted=*/false);
      }
      std::vector<Element *> Opened = html::HtmlParser::parseFragment(
          *Doc, E, I.toStringValue(V));
      B.recordElementInsertion(Opened, /*Inserted=*/true);
      if (E->inDocument())
        if (Window *W = B.windowForDocument(D))
          for (Element *Inserted : Opened)
            B.handleDynamicInsertion(*W, Inserted);
      return true;
    }
    if (startsWith(Name, "on") && Name.size() > 2) {
      B.setSlotHandler(TargetKey{N, 0}, Name.substr(2), V);
      return true;
    }
    return false;
  }
};

// ---------------------------------------------------------------------------
// Style host class
// ---------------------------------------------------------------------------

class StyleClass final : public HostClass {
public:
  const char *name() const override { return "CSSStyleDeclaration"; }

  bool hostGet(Interpreter &, Object *Self, const std::string &Name,
               Value &Out) override {
    Browser &B = browserOf(Self);
    Element *E = static_cast<Element *>(Self->hostPtr());
    if (startsWith(Name, "__"))
      return false;
    B.recordVarAccess(AccessKind::Read, AccessOrigin::Plain,
                      Browser::domContainer(E->id()), "style." + Name);
    Out = Value(E->getAttribute("__style_" + toLower(Name)));
    return true;
  }

  bool hostSet(Interpreter &I, Object *Self, const std::string &Name,
               const Value &V) override {
    Browser &B = browserOf(Self);
    Element *E = static_cast<Element *>(Self->hostPtr());
    if (startsWith(Name, "__"))
      return false;
    B.recordVarAccess(AccessKind::Write, AccessOrigin::Plain,
                      Browser::domContainer(E->id()), "style." + Name);
    E->setAttribute("__style_" + toLower(Name), I.toStringValue(V));
    return true;
  }
};

// ---------------------------------------------------------------------------
// Text node host class
// ---------------------------------------------------------------------------

class TextClass final : public HostClass {
public:
  const char *name() const override { return "Text"; }

  bool hostGet(Interpreter &, Object *Self, const std::string &Name,
               Value &Out) override {
    Browser &B = browserOf(Self);
    Text *T = dyn_cast<Text>(B.nodeFor(Self));
    if (!T)
      return false;
    if (Name == "data" || Name == "nodeValue" || Name == "textContent") {
      Out = Value(T->data());
      return true;
    }
    if (Name == "parentNode") {
      Node *P = T->parent();
      Out = P ? Value(B.wrapperFor(P)) : Value::null();
      return true;
    }
    return false;
  }

  bool hostSet(Interpreter &I, Object *Self, const std::string &Name,
               const Value &V) override {
    Browser &B = browserOf(Self);
    Text *T = dyn_cast<Text>(B.nodeFor(Self));
    if (!T)
      return false;
    if (Name == "data" || Name == "nodeValue" || Name == "textContent") {
      T->setData(I.toStringValue(V));
      return true;
    }
    return false;
  }
};

// ---------------------------------------------------------------------------
// Document host class
// ---------------------------------------------------------------------------

class DocumentClass final : public HostClass {
public:
  const char *name() const override { return "HTMLDocument"; }

  bool hostGet(Interpreter &I, Object *Self, const std::string &Name,
               Value &Out) override {
    Browser &B = browserOf(Self);
    Document *Doc = dyn_cast<Document>(B.nodeFor(Self));
    if (!Doc)
      return false;
    DocumentId D = Doc->documentId();

    if (Name == "body") {
      Out = Value(B.wrapperFor(Doc->body()));
      return true;
    }
    if (Name == "head") {
      Out = Value(B.wrapperFor(Doc->head()));
      return true;
    }
    if (Name == "documentElement") {
      Out = Value(B.wrapperFor(Doc->documentElement()));
      return true;
    }
    if (Name == "readyState") {
      Window *W = B.windowForDocument(D);
      const char *State = "loading";
      if (W && W->loadFired())
        State = "complete";
      else if (W && W->dclFired())
        State = "interactive";
      else if (W && W->parsingDone())
        State = "interactive";
      Out = Value(State);
      return true;
    }
    if (Name == "forms" || Name == "images" || Name == "links" ||
        Name == "anchors" || Name == "scripts") {
      std::string Tag = Name == "forms"    ? "form"
                        : Name == "images" ? "img"
                        : Name == "scripts" ? "script"
                                            : "a";
      B.recordLookup(D, ElemKeyKind::ByTag, Tag);
      Object *Arr = I.heap().allocArray();
      for (Element *E : Doc->getElementsByTagName(Tag))
        Arr->elements().push_back(Value(B.wrapperFor(E)));
      Out = Value(Arr);
      return true;
    }
    if (Name == "childNodes") {
      Object *Arr = I.heap().allocArray();
      for (Node *Child : Doc->children())
        Arr->elements().push_back(Value(B.wrapperFor(Child)));
      Out = Value(Arr);
      return true;
    }
    if (startsWith(Name, "on") && Name.size() > 2) {
      std::string Type = Name.substr(2);
      B.recordHandlerAccess(AccessKind::Read, AccessOrigin::Plain, Doc->id(),
                            0, Type, 0);
      Out = B.slotHandler(TargetKey{Doc->id(), 0}, Type);
      return true;
    }
    if (Name == "getElementById") {
      Out = method(
          I, "getElementById",
          [](Interpreter &In, Value ThisV,
             std::vector<Value> &A) -> Completion {
            Object *Obj = ThisV.objectOrNull();
            Document *Doc2 =
                Obj ? dyn_cast<Document>(browserOf(Obj).nodeFor(Obj))
                    : nullptr;
            if (!Doc2)
              return In.throwError("TypeError", "not a document");
            Browser &B2 = browserOf(Obj);
            std::string Id = In.toStringValue(arg(A, 0));
            B2.recordLookup(Doc2->documentId(), ElemKeyKind::ById, Id);
            Element *Found = Doc2->getElementById(Id);
            if (!Found)
              return Completion::normal(Value::null());
            // The lookup read is keyed by the id string so that both the
            // found and not-found cases collide with the element's
            // insertion write on the same logical location.
            return Completion::normal(Value(B2.wrapperFor(Found)));
          });
      return true;
    }
    if (Name == "getElementsByTagName" || Name == "getElementsByName") {
      bool ByTag = Name == "getElementsByTagName";
      Out = method(
          I, Name.c_str(),
          [ByTag](Interpreter &In, Value ThisV,
                  std::vector<Value> &A) -> Completion {
            Object *Obj = ThisV.objectOrNull();
            Document *Doc2 =
                Obj ? dyn_cast<Document>(browserOf(Obj).nodeFor(Obj))
                    : nullptr;
            if (!Doc2)
              return In.throwError("TypeError", "not a document");
            Browser &B2 = browserOf(Obj);
            std::string Key = In.toStringValue(arg(A, 0));
            B2.recordLookup(Doc2->documentId(),
                            ByTag ? ElemKeyKind::ByTag
                                  : ElemKeyKind::ByName,
                            ByTag ? toLower(Key) : Key);
            Object *Arr = In.heap().allocArray();
            std::vector<Element *> Found =
                ByTag ? Doc2->getElementsByTagName(Key)
                      : Doc2->getElementsByName(Key);
            for (Element *E : Found)
              Arr->elements().push_back(Value(B2.wrapperFor(E)));
            return Completion::normal(Value(Arr));
          });
      return true;
    }
    if (Name == "createElement" || Name == "createTextNode") {
      bool IsElement = Name == "createElement";
      Out = method(
          I, Name.c_str(),
          [IsElement](Interpreter &In, Value ThisV,
                      std::vector<Value> &A) -> Completion {
            Object *Obj = ThisV.objectOrNull();
            Document *Doc2 =
                Obj ? dyn_cast<Document>(browserOf(Obj).nodeFor(Obj))
                    : nullptr;
            if (!Doc2)
              return In.throwError("TypeError", "not a document");
            Browser &B2 = browserOf(Obj);
            Node *Fresh =
                IsElement
                    ? static_cast<Node *>(
                          Doc2->createElement(In.toStringValue(arg(A, 0))))
                    : static_cast<Node *>(Doc2->createTextNode(
                          In.toStringValue(arg(A, 0))));
            return Completion::normal(Value(B2.wrapperFor(Fresh)));
          });
      return true;
    }
    if (Name == "addEventListener" || Name == "removeEventListener") {
      bool Add = Name == "addEventListener";
      Out = method(
          I, Name.c_str(),
          [Add](Interpreter &In, Value ThisV,
                std::vector<Value> &A) -> Completion {
            Object *Obj = ThisV.objectOrNull();
            if (!Obj)
              return In.throwError("TypeError", "not an event target");
            Browser &B2 = browserOf(Obj);
            Node *NodePtr = B2.nodeFor(Obj);
            TargetKey Key{NodePtr ? NodePtr->id() : InvalidNodeId,
                          NodePtr ? 0 : Obj->containerId()};
            std::string Type = In.toStringValue(arg(A, 0));
            if (Add)
              B2.addListener(Key, Type, arg(A, 1),
                             Interpreter::toBoolean(arg(A, 2)));
            else
              B2.removeListener(Key, Type, arg(A, 1));
            return Completion::normal();
          });
      return true;
    }
    if (Name == "write" || Name == "writeln") {
      // Simplified document.write: the markup is parsed and appended to
      // the body (not at the parser's insertion point); inserted scripts
      // and images behave like dynamic insertions.
      Out = method(
          I, Name.c_str(),
          [](Interpreter &In, Value ThisV,
             std::vector<Value> &A) -> Completion {
            Object *Obj = ThisV.objectOrNull();
            Document *Doc2 =
                Obj ? dyn_cast<Document>(browserOf(Obj).nodeFor(Obj))
                    : nullptr;
            if (!Doc2)
              return In.throwError("TypeError", "not a document");
            Browser &B2 = browserOf(Obj);
            std::vector<Element *> Opened =
                html::HtmlParser::parseFragment(
                    *Doc2, Doc2->body(), In.toStringValue(arg(A, 0)));
            B2.recordElementInsertion(Opened, /*Inserted=*/true);
            if (Window *W = B2.windowForDocument(Doc2->documentId()))
              for (Element *E : Opened)
                B2.handleDynamicInsertion(*W, E);
            return Completion::normal();
          });
      return true;
    }
    return false;
  }

  bool hostSet(Interpreter &, Object *Self, const std::string &Name,
               const Value &V) override {
    Browser &B = browserOf(Self);
    Document *Doc = dyn_cast<Document>(B.nodeFor(Self));
    if (!Doc)
      return false;
    if (startsWith(Name, "on") && Name.size() > 2) {
      B.setSlotHandler(TargetKey{Doc->id(), 0}, Name.substr(2), V);
      return true;
    }
    return false;
  }
};

// ---------------------------------------------------------------------------
// Window host class
// ---------------------------------------------------------------------------

class WindowClass final : public HostClass {
public:
  const char *name() const override { return "Window"; }

  bool hostGet(Interpreter &I, Object *Self, const std::string &Name,
               Value &Out) override {
    Browser &B = browserOf(Self);
    Window *W = B.windowForObject(Self);
    if (!W)
      return false;
    if (Name == "document") {
      Out = Value(W->documentObject());
      return true;
    }
    if (Name == "window" || Name == "self" || Name == "top") {
      Out = Value(Name == "top" && W->parent()
                      ? W->parent()->windowObject()
                      : W->windowObject());
      return true;
    }
    if (Name == "parent") {
      Out = Value(W->parent() ? W->parent()->windowObject()
                              : W->windowObject());
      return true;
    }
    if (Name == "frameElement") {
      Out = W->frameElement() ? Value(B.wrapperFor(W->frameElement()))
                              : Value::null();
      return true;
    }
    if (startsWith(Name, "on") && Name.size() > 2) {
      std::string Type = Name.substr(2);
      B.recordHandlerAccess(AccessKind::Read, AccessOrigin::Plain,
                            InvalidNodeId, Self->containerId(), Type, 0);
      Out = B.slotHandler(TargetKey{InvalidNodeId, Self->containerId()},
                          Type);
      return true;
    }
    if (Name == "addEventListener" || Name == "removeEventListener") {
      bool Add = Name == "addEventListener";
      Out = method(
          I, Name.c_str(),
          [Add](Interpreter &In, Value ThisV,
                std::vector<Value> &A) -> Completion {
            Object *Obj = ThisV.objectOrNull();
            if (!Obj)
              return In.throwError("TypeError", "not an event target");
            Browser &B2 = browserOf(Obj);
            TargetKey Key{InvalidNodeId, Obj->containerId()};
            std::string Type = In.toStringValue(arg(A, 0));
            if (Add)
              B2.addListener(Key, Type, arg(A, 1),
                             Interpreter::toBoolean(arg(A, 2)));
            else
              B2.removeListener(Key, Type, arg(A, 1));
            return Completion::normal();
          });
      return true;
    }
    return false;
  }

  bool hostSet(Interpreter &, Object *Self, const std::string &Name,
               const Value &V) override {
    Browser &B = browserOf(Self);
    if (startsWith(Name, "on") && Name.size() > 2) {
      B.setSlotHandler(TargetKey{InvalidNodeId, Self->containerId()},
                       Name.substr(2), V);
      return true;
    }
    return false;
  }
};

// ---------------------------------------------------------------------------
// XMLHttpRequest host class
// ---------------------------------------------------------------------------

class XhrClass final : public HostClass {
public:
  const char *name() const override { return "XMLHttpRequest"; }

  bool hostGet(Interpreter &I, Object *Self, const std::string &Name,
               Value &Out) override {
    Browser &B = browserOf(Self);
    if (Name == "onreadystatechange" || Name == "onload" ||
        Name == "onerror") {
      std::string Type = Name.substr(2);
      B.recordHandlerAccess(AccessKind::Read, AccessOrigin::Plain,
                            InvalidNodeId, Self->containerId(), Type, 0);
      Out = B.slotHandler(TargetKey{InvalidNodeId, Self->containerId()},
                          Type);
      return true;
    }
    if (Name == "open") {
      Out = method(I, "open",
                   [](Interpreter &In, Value ThisV,
                      std::vector<Value> &A) -> Completion {
                     Object *Obj = ThisV.objectOrNull();
                     if (!Obj)
                       return In.throwError("TypeError", "not an XHR");
                     Obj->setOwnProperty("__url",
                                         Value(In.toStringValue(
                                             arg(A, 1))));
                     Obj->setOwnProperty("readyState", Value(1.0));
                     return Completion::normal();
                   });
      return true;
    }
    if (Name == "send") {
      Out = method(I, "send",
                   [](Interpreter &In, Value ThisV,
                      std::vector<Value> &) -> Completion {
                     Object *Obj = ThisV.objectOrNull();
                     if (!Obj)
                       return In.throwError("TypeError", "not an XHR");
                     browserOf(Obj).xhrSend(Obj);
                     return Completion::normal();
                   });
      return true;
    }
    if (Name == "setRequestHeader" || Name == "abort") {
      Out = method(I, Name.c_str(),
                   [](Interpreter &, Value, std::vector<Value> &) {
                     return Completion::normal();
                   });
      return true;
    }
    if (Name == "addEventListener") {
      Out = method(
          I, "addEventListener",
          [](Interpreter &In, Value ThisV,
             std::vector<Value> &A) -> Completion {
            Object *Obj = ThisV.objectOrNull();
            if (!Obj)
              return In.throwError("TypeError", "not an XHR");
            browserOf(Obj).addListener(
                TargetKey{InvalidNodeId, Obj->containerId()},
                In.toStringValue(arg(A, 0)), arg(A, 1), false);
            return Completion::normal();
          });
      return true;
    }
    return false; // readyState/status/responseText: generic storage.
  }

  bool hostSet(Interpreter &, Object *Self, const std::string &Name,
               const Value &V) override {
    Browser &B = browserOf(Self);
    if (Name == "onreadystatechange" || Name == "onload" ||
        Name == "onerror") {
      B.setSlotHandler(TargetKey{InvalidNodeId, Self->containerId()},
                       Name.substr(2), V);
      return true;
    }
    return false;
  }
};

ElementClass ElementClassInstance;
DocumentClass DocumentClassInstance;
WindowClass WindowClassInstance;
XhrClass XhrClassInstance;
StyleClass StyleClassInstance;
TextClass TextClassInstance;

} // namespace

const HostClass *wr::rt::elementHostClass() { return &ElementClassInstance; }
const HostClass *wr::rt::documentHostClass() {
  return &DocumentClassInstance;
}
const HostClass *wr::rt::windowHostClass() { return &WindowClassInstance; }
const HostClass *wr::rt::xhrHostClass() { return &XhrClassInstance; }
const HostClass *wr::rt::styleHostClass() { return &StyleClassInstance; }
const HostClass *wr::rt::textHostClass() { return &TextClassInstance; }

// ---------------------------------------------------------------------------
// Global bindings
// ---------------------------------------------------------------------------

void wr::rt::installWindowObjects(Browser &B, Window &W) {
  Object *WindowObj = B.heap().allocObject();
  WindowObj->setHostClass(windowHostClass());
  WindowObj->setHostInt(reinterpret_cast<uint64_t>(&B));
  W.setWindowObject(WindowObj);
  Object *DocumentObj = B.wrapperFor(&W.document());
  W.setDocumentObject(DocumentObj);
}

void wr::rt::installBindings(Browser &B) {
  js::Env *G = B.interp().globalEnv();
  js::Heap &H = B.heap();
  Browser *BP = &B;

  auto DefineFn = [&](const char *Name, js::HostFn Fn) {
    G->define(Name, Value(H.allocHostFunction(std::move(Fn), Name)));
  };

  DefineFn("setTimeout",
           [BP](Interpreter &In, Value, std::vector<Value> &A) {
             double Delay = In.toNumber(arg(A, 1));
             if (std::isnan(Delay) || Delay < 0)
               Delay = 0;
             uint64_t Id = BP->setTimeout(
                 arg(A, 0), static_cast<VirtualTime>(Delay));
             return Completion::normal(Value(static_cast<double>(Id)));
           });
  DefineFn("setInterval",
           [BP](Interpreter &In, Value, std::vector<Value> &A) {
             double Delay = In.toNumber(arg(A, 1));
             if (std::isnan(Delay) || Delay < 0)
               Delay = 0;
             uint64_t Id = BP->setInterval(
                 arg(A, 0), static_cast<VirtualTime>(Delay));
             return Completion::normal(Value(static_cast<double>(Id)));
           });
  DefineFn("clearTimeout",
           [BP](Interpreter &In, Value, std::vector<Value> &A) {
             BP->clearTimer(
                 static_cast<uint64_t>(In.toNumber(arg(A, 0))));
             return Completion::normal();
           });
  DefineFn("clearInterval",
           [BP](Interpreter &In, Value, std::vector<Value> &A) {
             BP->clearTimer(
                 static_cast<uint64_t>(In.toNumber(arg(A, 0))));
             return Completion::normal();
           });
  DefineFn("alert", [BP](Interpreter &In, Value, std::vector<Value> &A) {
    BP->recordAlert(In.toStringValue(arg(A, 0)));
    return Completion::normal();
  });
  DefineFn("confirm", [](Interpreter &, Value, std::vector<Value> &) {
    return Completion::normal(Value(true));
  });
  DefineFn("XMLHttpRequest",
           [BP](Interpreter &In, Value, std::vector<Value> &) {
             Object *Xhr = In.heap().allocObject();
             Xhr->setHostClass(xhrHostClass());
             Xhr->setHostInt(reinterpret_cast<uint64_t>(BP));
             Xhr->setOwnProperty("readyState", Value(0.0));
             return Completion::normal(Value(Xhr));
           });
  DefineFn("Image", [BP](Interpreter &, Value, std::vector<Value> &) {
    Window *Main = BP->mainWindow();
    if (!Main)
      return Completion::normal(Value::null());
    Element *Img = Main->document().createElement("img");
    return Completion::normal(Value(BP->wrapperFor(Img)));
  });
  // eval: parse and run in the global scope, synchronously, inside the
  // current operation. The paper singles out eval as a construct that
  // defeats static analysis but that a dynamic detector simply observes
  // (Sec. 1) - accesses made by eval'd code flow through the same hooks.
  DefineFn("eval", [BP](Interpreter &In, Value, std::vector<Value> &A) {
    Value Code = arg(A, 0);
    if (!Code.isString())
      return Completion::normal(Code);
    const js::Program *P =
        BP->compile(Code.asString(), "eval");
    if (!P)
      return In.throwError("SyntaxError", "eval: invalid program");
    return In.runProgram(*P);
  });

  // Date: virtual-clock backed so monitor-style scripts (the Gomez
  // pattern measures image load times) behave deterministically.
  DefineFn("Date", [BP](Interpreter &In, Value, std::vector<Value> &) {
    Object *D = In.heap().allocObject();
    double NowMs = static_cast<double>(BP->loop().now()) / 1000.0;
    D->setOwnProperty("__ms", Value(NowMs));
    D->setOwnProperty(
        "getTime",
        Value(In.heap().allocHostFunction(
            [](Interpreter &In2, Value ThisV, std::vector<Value> &) {
              Object *Self = ThisV.objectOrNull();
              const Value *Ms =
                  Self ? Self->findOwnProperty("__ms") : nullptr;
              return Completion::normal(Ms ? *Ms : Value(0.0));
            },
            "getTime")));
    return Completion::normal(Value(D));
  });
  // Date.now as a property of the Date constructor.
  if (Value *DateCtor = G->findOwn("Date"))
    if (Object *DateObj = DateCtor->objectOrNull())
      DateObj->setOwnProperty(
          "now", Value(H.allocHostFunction(
                     [BP](Interpreter &, Value, std::vector<Value> &) {
                       return Completion::normal(Value(
                           static_cast<double>(BP->loop().now()) /
                           1000.0));
                     },
                     "now")));

  DefineFn("encodeURIComponent",
           [](Interpreter &In, Value, std::vector<Value> &A) {
             return Completion::normal(
                 Value(In.toStringValue(arg(A, 0))));
           });
  DefineFn("decodeURIComponent",
           [](Interpreter &In, Value, std::vector<Value> &A) {
             return Completion::normal(
                 Value(In.toStringValue(arg(A, 0))));
           });

  // console.log / warn / error.
  Object *Console = H.allocObject();
  auto LogFn = [BP](Interpreter &In, Value, std::vector<Value> &A) {
    std::string Line;
    for (size_t I = 0; I < A.size(); ++I) {
      if (I != 0)
        Line += ' ';
      Line += In.toStringValue(A[I]);
    }
    BP->recordConsole(std::move(Line));
    return Completion::normal();
  };
  Console->setOwnProperty("log", Value(H.allocHostFunction(LogFn, "log")));
  Console->setOwnProperty("warn",
                          Value(H.allocHostFunction(LogFn, "warn")));
  Console->setOwnProperty("error",
                          Value(H.allocHostFunction(LogFn, "error")));
  G->define("console", Value(Console));
}

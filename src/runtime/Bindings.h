//===- runtime/Bindings.h - DOM/BOM host classes ----------------*- C++ -*-===//
//
// Part of the WebRacer reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Host classes wiring MiniJS objects to the browser: element wrappers,
/// document, window, XMLHttpRequest, and the style sub-object. Each class
/// intercepts the state properties it models and instruments them with
/// the appropriate logical locations (HtmlElemLoc for lookups/mutations,
/// JSVar-on-DOM-node for value/parentNode/..., EventHandlerLoc for on*
/// slots), per the paper's Section 4.
///
//===----------------------------------------------------------------------===//

#ifndef WEBRACER_RUNTIME_BINDINGS_H
#define WEBRACER_RUNTIME_BINDINGS_H

#include "js/Value.h"

namespace wr::rt {

class Browser;

/// Host class singletons (one per binding type).
const js::HostClass *elementHostClass();
const js::HostClass *documentHostClass();
const js::HostClass *windowHostClass();
const js::HostClass *xhrHostClass();
const js::HostClass *styleHostClass();
const js::HostClass *textHostClass();

} // namespace wr::rt

#endif // WEBRACER_RUNTIME_BINDINGS_H

//===- explore/Explorer.cpp - Automatic exploration ---------------------------===//

#include "explore/Explorer.h"

#include "support/StringUtils.h"

#include <algorithm>

using namespace wr;
using namespace wr::explore;
using rt::TargetKey;

const std::vector<std::string> &Explorer::autoEventTypes() {
  // The exact list from Sec. 5.2.2.
  static const std::vector<std::string> Types = {
      "mouseover", "mousemove", "mouseout", "mouseup", "mousedown",
      "keydown",   "keyup",     "keypress", "change",  "input",
      "focus",     "blur"};
  return Types;
}

void Explorer::dispatchHandlerEvents(ExploreStats &Stats) {
  // Deterministic order: tree order per window, event types in the fixed
  // list order. We also honor click handlers registered on non-link
  // elements (the paper's harmful function races hung off hover/click
  // handlers).
  std::vector<std::string> Types = autoEventTypes();
  Types.push_back("click");
  auto IsRepeatable = [](const std::string &T) {
    return startsWith(T, "mouse") || startsWith(T, "key") || T == "click";
  };
  for (const auto &W : B.windows()) {
    std::vector<Element *> Elements = W->document().allElements();
    for (Element *E : Elements) {
      for (const std::string &Type : Types) {
        if (Stats.EventsDispatched >= Opts.MaxEvents)
          return;
        if (!B.hasRegisteredHandler(TargetKey{E->id(), 0}, Type))
          continue;
        int Repeats =
            IsRepeatable(Type) ? std::max(1, Opts.MultiDispatchRepeats) : 1;
        for (int I = 0; I < Repeats; ++I)
          B.userEvent(E, Type);
        ++Stats.EventsDispatched;
      }
    }
  }
}

void Explorer::clickJavascriptLinks(ExploreStats &Stats) {
  for (const auto &W : B.windows()) {
    for (Element *E : W->document().getElementsByTagName("a")) {
      if (Stats.EventsDispatched >= Opts.MaxEvents)
        return;
      if (!startsWithIgnoreCase(E->getAttribute("href"), "javascript:"))
        continue;
      B.userClick(E);
      ++Stats.LinksClicked;
      ++Stats.EventsDispatched;
    }
  }
}

void Explorer::typeIntoTextBoxes(ExploreStats &Stats) {
  for (const auto &W : B.windows()) {
    std::vector<Element *> Boxes = W->document().getElementsByTagName(
        "input");
    std::vector<Element *> Areas = W->document().getElementsByTagName(
        "textarea");
    Boxes.insert(Boxes.end(), Areas.begin(), Areas.end());
    for (Element *E : Boxes) {
      if (Stats.EventsDispatched >= Opts.MaxEvents)
        return;
      if (E->tagName() == "input") {
        std::string Type = toLower(E->getAttribute("type"));
        if (!Type.empty() && Type != "text" && Type != "search" &&
            Type != "email" && Type != "password")
          continue;
      }
      B.userType(E, Opts.TypedText);
      ++Stats.BoxesTyped;
      ++Stats.EventsDispatched;
    }
  }
}

ExploreStats Explorer::run() {
  ExploreStats Stats;
  // Let the page finish loading first: all automatic dispatch happens
  // after the window load event (Sec. 5.2.2).
  B.runToQuiescence();
  if (Opts.DispatchHandlerEvents)
    dispatchHandlerEvents(Stats);
  if (Opts.ClickJavascriptLinks)
    clickJavascriptLinks(Stats);
  if (Opts.TypeIntoTextBoxes)
    typeIntoTextBoxes(Stats);
  // Exploration can schedule timers and network work.
  B.runToQuiescence();
  return Stats;
}

//===- explore/Explorer.h - Automatic exploration ---------------*- C++ -*-===//
//
// Part of the WebRacer reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Automatic exploration (paper Sec. 5.2.2): after the window load event,
/// systematically dispatch user-style events for which the page
/// registered handlers, click links with javascript: protocols, and
/// simulate typing into every text box. This exposes races whose second
/// access only happens under user interaction (the harmful function races
/// of Sec. 6.3 were all found this way).
///
//===----------------------------------------------------------------------===//

#ifndef WEBRACER_EXPLORE_EXPLORER_H
#define WEBRACER_EXPLORE_EXPLORER_H

#include "runtime/Browser.h"

#include <cstddef>
#include <string>
#include <vector>

namespace wr::explore {

/// Exploration knobs.
struct ExploreOptions {
  /// Dispatch the paper's auto-event list on elements with handlers.
  bool DispatchHandlerEvents = true;
  /// Click every <a href="javascript:..."> link.
  bool ClickJavascriptLinks = true;
  /// Simulate typing into all text boxes and textareas.
  bool TypeIntoTextBoxes = true;
  /// Text typed into boxes.
  std::string TypedText = "webracer";
  /// Cap on generated events (defense against enormous pages).
  size_t MaxEvents = 4096;
  /// How many times to dispatch inherently repeatable events (mouse,
  /// key, click). Real interaction fires these repeatedly; dispatching
  /// them more than once lets the single-dispatch filter (Sec. 5.3) tell
  /// them apart from one-shot events like load.
  int MultiDispatchRepeats = 2;
};

/// Exploration statistics.
struct ExploreStats {
  size_t EventsDispatched = 0;
  size_t LinksClicked = 0;
  size_t BoxesTyped = 0;
};

/// Drives automatic exploration over a loaded browser.
class Explorer {
public:
  Explorer(rt::Browser &B, ExploreOptions Opts = ExploreOptions())
      : B(B), Opts(Opts) {}

  /// The auto-dispatched event types (paper Sec. 5.2.2 list).
  static const std::vector<std::string> &autoEventTypes();

  /// Runs the page to quiescence, performs exploration, and runs to
  /// quiescence again (exploration may schedule timers/XHRs).
  ExploreStats run();

private:
  void dispatchHandlerEvents(ExploreStats &Stats);
  void clickJavascriptLinks(ExploreStats &Stats);
  void typeIntoTextBoxes(ExploreStats &Stats);

  rt::Browser &B;
  ExploreOptions Opts;
};

} // namespace wr::explore

#endif // WEBRACER_EXPLORE_EXPLORER_H

//===- hb/HbGraph.h - The happens-before relation ---------------*- C++ -*-===//
//
// Part of the WebRacer reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The happens-before relation of the paper's Section 3.3, represented as a
/// DAG over operations with rule-tagged edges.
///
/// Two reachability strategies are provided:
///
///  * DfsMemo: the paper's implementation strategy - "the race detector
///    represents the happens-before relation rather directly as a graph
///    structure" with repeated traversals (Sec. 5.2.1). We add a memo table,
///    which is sound because the builder only ever adds edges *to the most
///    recently created operation*: once both endpoints of a query exist, no
///    later edge can create a new path between them (every edge goes from a
///    lower OpId to a higher OpId, so a new path through a fresh operation
///    would have to descend back below it). The memo is epoch-clearable:
///    resetQueryState() invalidates every entry in O(1) without releasing
///    the table's buckets, so a graph reused across replay configurations
///    does not rehash from scratch.
///
///  * VectorClock: the chain-decomposition vector-clock representation the
///    paper names as future work (and which the follow-up EventRacer system
///    adopted). Operations are greedily packed into chains; each operation
///    carries a clock of per-chain watermarks; reachability is an O(1)
///    clock lookup. Clocks live in one contiguous arena (a uint32_t pool
///    plus a small per-op record) and are shared copy-on-write: an
///    operation that merely extends its predecessor's chain aliases the
///    predecessor's clock slab and overrides one slot, and a
///    multi-predecessor merge only materializes a new slab when some
///    predecessor's watermarks are not already dominated by the base. See
///    DESIGN.md "Near-linear HB index" for why sharing is sound under the
///    edges-only-target-the-newest-op builder contract.
///
/// `bench/ablation_hb_repr` compares the two; `bench/hb_scaling` pins the
/// build-cost and clock-memory behavior at growing operation counts.
///
//===----------------------------------------------------------------------===//

#ifndef WEBRACER_HB_HBGRAPH_H
#define WEBRACER_HB_HBGRAPH_H

#include "hb/Operation.h"
#include "support/InlineVec.h"

#include <array>
#include <cassert>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace wr {

/// Which paper rule justified an edge; kept on every edge for debugging and
/// for explaining race reports.
enum class HbRule : uint8_t {
  R1a_ParseOrder,       ///< parse(E1) -> parse(E2), syntactic order.
  R1b_InlineScript,     ///< exe(inline E1) -> parse(E2).
  R1c_SyncScriptLoad,   ///< ld(sync E1) -> parse(E2).
  R2_CreateBeforeExe,   ///< create(E) -> exe(E).
  R3_ExeBeforeLoad,     ///< exe(E) -> ld(E).
  R4_CreateBeforeDefer, ///< create(E) -> exe(deferred S).
  R5_DeferOrder,        ///< ld(E1) -> exe(E2) for consecutive defers.
  R6_FrameCreate,       ///< create(iframe) -> create(nested element).
  R7_FrameLoad,         ///< ld(nested window) -> ld(iframe).
  R8_TargetCreated,     ///< create(T) -> disp_i(e, T).
  R9_DispatchOrder,     ///< disp_j(e,T) -> disp_i(e,T), j < i.
  R10_AjaxSend,         ///< send() -> disp_0(readystatechange, xhr).
  R11_DclBeforeLoad,    ///< dcl(D) -> ld(W).
  R12_ParseBeforeDcl,   ///< parse(E) -> dcl(D).
  R13_InlineBeforeDcl,  ///< exe(static inline E) -> dcl(D).
  R14_ScriptLoadBeforeDcl, ///< ld(sync/defer E) -> dcl(D).
  R15_ElemLoadBeforeWindowLoad, ///< ld(E) -> ld(W).
  R16_SetTimeout,       ///< caller -> cb(B).
  R17_SetInterval,      ///< caller -> cb_0; cb_i -> cb_{i+1}.
  RA_DispatchChain,     ///< begin -> h1 -> ... -> hn -> end within one
                        ///< dispatch (Appendix A phase ordering).
  RA_InlineSplit,       ///< A[0:k) -> B -> A[k+1:) for inline dispatch.
  RProgram,             ///< Generic program-order edge (bootstrap chains).
};

/// Renders a rule tag.
const char *toString(HbRule Rule);

/// Three-valued verdict of one combined ordering query between two
/// distinct, valid operations.
enum class Ordering : uint8_t {
  Before,     ///< A happens-before B.
  After,      ///< B happens-before A.
  Concurrent, ///< Unordered either way.
};

/// Renders an ordering verdict.
const char *toString(Ordering O);

/// Number of HbRule enumerators (dense, starting at 0); sized for
/// per-rule counter arrays.
inline constexpr size_t NumHbRules =
    static_cast<size_t>(HbRule::RProgram) + 1;

/// The vector-clock index's compact name for one operation: its chain and
/// 1-based position within that chain. This is the FastTrack/VerifiedFT
/// "epoch" the race detector stores per location slot: the op holding
/// epoch (c, p) happens-before B iff B's watermark for chain c is >= p -
/// one clock probe, no pair-cache entry. Pos 0 never names a real
/// operation (positions are 1-based), so a default ClockEpoch is the
/// "no epoch recorded" sentinel.
struct ClockEpoch {
  uint32_t Chain = 0;
  uint32_t Pos = 0;

  /// The epoch as one word ((Chain << 32) | Pos). The sampling layer's
  /// per-pair strategy keys its hash on this instead of raw OpIds:
  /// chain assignment is deterministic for a fixed seed, so pair keys
  /// survive OpId renumbering between a recording and its replay.
  uint64_t packed() const {
    return (static_cast<uint64_t>(Chain) << 32) | Pos;
  }
};

/// The happens-before DAG. Operations are created through `addOperation`
/// and edges through `addEdge`; the builder contract is that every edge
/// points from a lower OpId to a higher OpId (asserted), i.e., edges are
/// only added while the target operation is being created.
class HbGraph {
public:
  /// Adjacency list storage: inline room for the common degree (one chain
  /// predecessor plus one cross edge) before touching the heap.
  using OpList = InlineVec<OpId, 2>;

  /// One rule-tagged in-edge (trivially copyable, unlike std::pair).
  struct InEdge {
    OpId From;
    HbRule Rule;
  };
  using InEdgeList = InlineVec<InEdge, 2>;

  HbGraph();

  /// Creates a new operation and returns its id. Ids are dense and start
  /// at 1 (0 is the ⊥ sentinel).
  OpId addOperation(Operation Op);

  /// Pre-sizes the per-operation tables for \p ExpectedOps operations, so
  /// large pages do not pay repeated vector growth in addOperation.
  void reserveOperations(size_t ExpectedOps);

  /// Adds the edge From -> To justified by \p Rule. Requires From < To and
  /// both valid. Duplicate edges are ignored.
  void addEdge(OpId From, OpId To, HbRule Rule);

  /// Number of operations created so far.
  size_t numOperations() const { return Ops.size(); }

  /// Number of (deduplicated) edges.
  size_t numEdges() const { return EdgeCount; }

  /// Deduplicated edges justified by \p Rule (the Tables 1-3 per-rule
  /// evaluation columns). When the same edge is requested twice under
  /// different rules, only the first request counts - matching numEdges.
  uint64_t numEdges(HbRule Rule) const {
    return EdgesByRule[static_cast<size_t>(Rule)];
  }

  /// Per-rule edge counters indexed by HbRule value.
  const std::array<uint64_t, NumHbRules> &edgesByRule() const {
    return EdgesByRule;
  }

  /// DFS reachability queries answered from the memo table (the paper's
  /// Sec. 5.2.1 memoization win, now observable without recompiling).
  uint64_t memoHits() const { return MemoHits; }

  /// Operation metadata. \p Op must be valid.
  const Operation &operation(OpId Op) const {
    assert(Op != InvalidOpId && Op <= Ops.size() && "invalid OpId");
    return Ops[Op - 1];
  }

  /// Mutable access (the runtime patches trigger info as it learns it).
  Operation &operation(OpId Op) {
    assert(Op != InvalidOpId && Op <= Ops.size() && "invalid OpId");
    return Ops[Op - 1];
  }

  /// Direct successors of \p Op.
  const OpList &successors(OpId Op) const {
    assert(Op != InvalidOpId && Op <= Ops.size() && "invalid OpId");
    return Succ[Op - 1];
  }

  /// Direct predecessors of \p Op.
  const OpList &predecessors(OpId Op) const {
    assert(Op != InvalidOpId && Op <= Ops.size() && "invalid OpId");
    return Pred[Op - 1];
  }

  /// True iff A happens-before B in the transitive closure (A != B).
  /// Dispatches to the configured strategy.
  bool happensBefore(OpId A, OpId B) const {
    return UseVectorClocks ? reachesVectorClock(A, B) : reachesDfs(A, B);
  }

  /// Combined ordering query. Requires A != B, both valid. Issues at
  /// most one reachability probe: edges strictly ascend, so only the
  /// lower-id side can possibly reach the higher-id side, and both
  /// strategies answer the impossible direction without touching any
  /// counter - the probe count (and thus chc_queries, dfs_visits,
  /// memo hits) is byte-identical to the former double-probe CHC.
  Ordering ordering(OpId A, OpId B) const {
    assert(A != InvalidOpId && B != InvalidOpId && A != B &&
           "ordering() requires two distinct valid operations");
    if (A < B)
      return happensBefore(A, B) ? Ordering::Before : Ordering::Concurrent;
    return happensBefore(B, A) ? Ordering::After : Ordering::Concurrent;
  }

  /// Can-Happen-Concurrently (Sec. 5.1): both valid and unordered.
  bool canHappenConcurrently(OpId A, OpId B) const {
    if (A == InvalidOpId || B == InvalidOpId || A == B)
      return false;
    return ordering(A, B) == Ordering::Concurrent;
  }

  /// Memoized-DFS reachability (the paper's graph strategy).
  bool reachesDfs(OpId A, OpId B) const;

  /// Chain-decomposition vector-clock reachability.
  bool reachesVectorClock(OpId A, OpId B) const;

  /// Selects the strategy used by happensBefore().
  void setUseVectorClocks(bool Use) { UseVectorClocks = Use; }
  bool usesVectorClocks() const { return UseVectorClocks; }

  /// Invalidates the DFS memo table in O(1) by bumping its epoch: the
  /// bucket array survives, so a graph reused across replay
  /// configurations pays no rehash when its cached answers are discarded.
  void resetQueryState();

  /// Number of chains the vector-clock index currently uses.
  size_t numChains() const { return ChainTails.size(); }

  /// Chain the vector-clock index assigned to \p Op (0-based), building
  /// the index up to \p Op if needed.
  uint32_t chainOf(OpId Op) const;

  /// 1-based position of \p Op within chainOf(Op).
  uint32_t chainPositionOf(OpId Op) const;

  /// The watermark \p Op holds for \p Chain: the position of the latest
  /// operation of that chain that happens-before \p Op (its own position
  /// on its own chain); 0 when no operation of the chain is ordered
  /// before \p Op. Builds the index up to \p Op if needed.
  uint32_t clockWatermark(OpId Op, uint32_t Chain) const;

  /// The (chain, position) epoch of \p Op, building the index up to
  /// \p Op if needed. epochOf(A) together with epochOrdered() answers
  /// exactly the same question as reachesVectorClock(A, B).
  ClockEpoch epochOf(OpId Op) const {
    assert(Op != InvalidOpId && Op <= Ops.size() && "invalid OpId");
    ensureClocks(Op);
    const ClockRep &R = ClockReps[Op - 1];
    return {R.DeltaChain, R.DeltaPos};
  }

  /// True iff the operation holding epoch (\p Chain, \p Pos) happens-
  /// before \p Op: one clockEntryAt probe, no pair-cache entry. Correct
  /// for any id relation between the epoch's owner and \p Op - chain
  /// positions grow with operation id along a chain, so the watermark of
  /// an older op can never reach a newer op's position.
  bool epochOrdered(uint32_t Chain, uint32_t Pos, OpId Op) const {
    assert(Op != InvalidOpId && Op <= Ops.size() && "invalid OpId");
    assert(Pos != 0 && "epoch positions are 1-based");
    ensureClocks(Op);
    return clockEntryAt(Op - 1, Chain) >= Pos;
  }
  bool epochOrdered(ClockEpoch E, OpId Op) const {
    return epochOrdered(E.Chain, E.Pos, Op);
  }

  /// Bytes the vector-clock index currently holds: the shared watermark
  /// arena, the fixed per-operation clock records, and the per-chain tail
  /// table (so the memory gates in bench/hb_scaling measure the honest
  /// total, not just the slabs).
  uint64_t clockBytes() const {
    return ClockPool.size() * sizeof(uint32_t) +
           ClockReps.size() * sizeof(ClockRep) +
           ChainTails.size() * sizeof(OpId);
  }

  /// Bytes the same index would hold if every operation materialized its
  /// own full watermark vector (one std::vector<uint32_t> plus a chain
  /// assignment per op, and the same chain-tail table) - the pre-arena
  /// representation; the baseline of bench/hb_scaling's memory-reduction
  /// gate.
  uint64_t fullCopyClockBytes() const;

  /// Operations whose clock aliases their predecessor's slab (or needed
  /// no slab at all) instead of materializing a copy.
  uint64_t sharedClocks() const { return SharedClocks; }

  /// Multi-predecessor merges that had to materialize a new slab because
  /// some predecessor watermark was not dominated by the base clock.
  uint64_t clockMerges() const { return ClockMerges; }

  /// Returns the rule that justifies a direct edge From -> To, if any.
  /// Useful for explaining why two accesses are ordered.
  bool findDirectEdgeRule(OpId From, OpId To, HbRule &RuleOut) const;

  /// Returns one A -> ... -> B path (operation ids, inclusive) if A
  /// happens-before B, else an empty vector. For report explanations.
  std::vector<OpId> explainPath(OpId A, OpId B) const;

  /// Total DFS node visits performed so far (for the representation
  /// ablation bench).
  uint64_t dfsVisitCount() const { return DfsVisits; }

private:
  /// One operation's clock: a base slab of per-chain watermarks in
  /// ClockPool (shared with the predecessor in the copy-on-write case)
  /// plus a one-slot delta for the operation's own chain. The effective
  /// watermark of chain c is DeltaPos if c == DeltaChain, else
  /// ClockPool[Offset + c] if c < Len, else 0.
  struct ClockRep {
    uint32_t Offset = 0;     ///< Base slab start in ClockPool.
    uint32_t Len = 0;        ///< Base slab length (chains covered).
    uint32_t DeltaChain = 0; ///< The op's own chain (override slot).
    uint32_t DeltaPos = 0;   ///< 1-based position within DeltaChain.
  };

  void buildClock(OpId Op) const;
  void ensureClocks(OpId Op) const;

  /// Effective watermark of \p Chain in the clock of op index \p Idx0
  /// (0-based).
  uint32_t clockEntryAt(uint32_t Idx0, uint32_t Chain) const {
    const ClockRep &R = ClockReps[Idx0];
    if (Chain == R.DeltaChain)
      return R.DeltaPos;
    return Chain < R.Len ? ClockPool[R.Offset + Chain] : 0;
  }

  /// Chains covered by the clock of op index \p Idx0.
  uint32_t clockLenAt(uint32_t Idx0) const {
    const ClockRep &R = ClockReps[Idx0];
    return R.Len > R.DeltaChain + 1 ? R.Len : R.DeltaChain + 1;
  }

  std::vector<Operation> Ops;
  std::vector<OpList> Succ;
  std::vector<OpList> Pred;
  std::vector<InEdgeList> InEdgeRules;
  size_t EdgeCount = 0;
  std::array<uint64_t, NumHbRules> EdgesByRule{};

  // DFS memo: key = (A << 32 | B), value = (epoch << 1 | reachable). An
  // entry is live only when its epoch matches MemoEpoch, so
  // resetQueryState() invalidates everything by bumping the epoch. The
  // key packing gives each endpoint exactly half of the 64-bit key, so
  // OpId must stay at most 32 bits wide; widening OpId requires a new
  // key scheme here.
  static_assert(sizeof(OpId) * 8 <= 32,
                "ReachMemo packs two OpIds into one uint64_t key");
  mutable std::unordered_map<uint64_t, uint64_t> ReachMemo;
  mutable uint64_t MemoEpoch = 0;
  mutable std::vector<uint32_t> VisitEpoch;
  mutable uint32_t CurrentEpoch = 0;
  mutable uint64_t DfsVisits = 0;
  mutable uint64_t MemoHits = 0;

  // Vector clocks: one contiguous watermark arena plus a fixed-size
  // record per operation (built lazily in id order).
  mutable std::vector<uint32_t> ClockPool;
  mutable std::vector<ClockRep> ClockReps;
  mutable std::vector<OpId> ChainTails; ///< Last op of each chain.
  mutable uint64_t SharedClocks = 0;
  mutable uint64_t ClockMerges = 0;

  /// Matches the session default (every engine but HbDfs uses clocks),
  /// so a bare graph and a session-built one answer happensBefore() the
  /// same way.
  bool UseVectorClocks = true;
};

} // namespace wr

#endif // WEBRACER_HB_HBGRAPH_H

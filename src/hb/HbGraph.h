//===- hb/HbGraph.h - The happens-before relation ---------------*- C++ -*-===//
//
// Part of the WebRacer reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The happens-before relation of the paper's Section 3.3, represented as a
/// DAG over operations with rule-tagged edges.
///
/// Two reachability strategies are provided:
///
///  * DfsMemo: the paper's implementation strategy - "the race detector
///    represents the happens-before relation rather directly as a graph
///    structure" with repeated traversals (Sec. 5.2.1). We add a memo table,
///    which is sound because the builder only ever adds edges *to the most
///    recently created operation*: once both endpoints of a query exist, no
///    later edge can create a new path between them (every edge goes from a
///    lower OpId to a higher OpId, so a new path through a fresh operation
///    would have to descend back below it).
///
///  * VectorClock: the chain-decomposition vector-clock representation the
///    paper names as future work (and which the follow-up EventRacer system
///    adopted). Operations are greedily packed into chains; each operation
///    carries a clock of per-chain watermarks; reachability is an O(1)
///    clock lookup.
///
/// `bench/ablation_hb_repr` compares the two.
///
//===----------------------------------------------------------------------===//

#ifndef WEBRACER_HB_HBGRAPH_H
#define WEBRACER_HB_HBGRAPH_H

#include "hb/Operation.h"

#include <array>
#include <cassert>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace wr {

/// Which paper rule justified an edge; kept on every edge for debugging and
/// for explaining race reports.
enum class HbRule : uint8_t {
  R1a_ParseOrder,       ///< parse(E1) -> parse(E2), syntactic order.
  R1b_InlineScript,     ///< exe(inline E1) -> parse(E2).
  R1c_SyncScriptLoad,   ///< ld(sync E1) -> parse(E2).
  R2_CreateBeforeExe,   ///< create(E) -> exe(E).
  R3_ExeBeforeLoad,     ///< exe(E) -> ld(E).
  R4_CreateBeforeDefer, ///< create(E) -> exe(deferred S).
  R5_DeferOrder,        ///< ld(E1) -> exe(E2) for consecutive defers.
  R6_FrameCreate,       ///< create(iframe) -> create(nested element).
  R7_FrameLoad,         ///< ld(nested window) -> ld(iframe).
  R8_TargetCreated,     ///< create(T) -> disp_i(e, T).
  R9_DispatchOrder,     ///< disp_j(e,T) -> disp_i(e,T), j < i.
  R10_AjaxSend,         ///< send() -> disp_0(readystatechange, xhr).
  R11_DclBeforeLoad,    ///< dcl(D) -> ld(W).
  R12_ParseBeforeDcl,   ///< parse(E) -> dcl(D).
  R13_InlineBeforeDcl,  ///< exe(static inline E) -> dcl(D).
  R14_ScriptLoadBeforeDcl, ///< ld(sync/defer E) -> dcl(D).
  R15_ElemLoadBeforeWindowLoad, ///< ld(E) -> ld(W).
  R16_SetTimeout,       ///< caller -> cb(B).
  R17_SetInterval,      ///< caller -> cb_0; cb_i -> cb_{i+1}.
  RA_DispatchChain,     ///< begin -> h1 -> ... -> hn -> end within one
                        ///< dispatch (Appendix A phase ordering).
  RA_InlineSplit,       ///< A[0:k) -> B -> A[k+1:) for inline dispatch.
  RProgram,             ///< Generic program-order edge (bootstrap chains).
};

/// Renders a rule tag.
const char *toString(HbRule Rule);

/// Number of HbRule enumerators (dense, starting at 0); sized for
/// per-rule counter arrays.
inline constexpr size_t NumHbRules =
    static_cast<size_t>(HbRule::RProgram) + 1;

/// The happens-before DAG. Operations are created through `addOperation`
/// and edges through `addEdge`; the builder contract is that every edge
/// points from a lower OpId to a higher OpId (asserted), i.e., edges are
/// only added while the target operation is being created.
class HbGraph {
public:
  HbGraph();

  /// Creates a new operation and returns its id. Ids are dense and start
  /// at 1 (0 is the ⊥ sentinel).
  OpId addOperation(Operation Op);

  /// Adds the edge From -> To justified by \p Rule. Requires From < To and
  /// both valid. Duplicate edges are ignored.
  void addEdge(OpId From, OpId To, HbRule Rule);

  /// Number of operations created so far.
  size_t numOperations() const { return Ops.size(); }

  /// Number of (deduplicated) edges.
  size_t numEdges() const { return EdgeCount; }

  /// Deduplicated edges justified by \p Rule (the Tables 1-3 per-rule
  /// evaluation columns). When the same edge is requested twice under
  /// different rules, only the first request counts - matching numEdges.
  uint64_t numEdges(HbRule Rule) const {
    return EdgesByRule[static_cast<size_t>(Rule)];
  }

  /// Per-rule edge counters indexed by HbRule value.
  const std::array<uint64_t, NumHbRules> &edgesByRule() const {
    return EdgesByRule;
  }

  /// DFS reachability queries answered from the memo table (the paper's
  /// Sec. 5.2.1 memoization win, now observable without recompiling).
  uint64_t memoHits() const { return MemoHits; }

  /// Operation metadata. \p Op must be valid.
  const Operation &operation(OpId Op) const {
    assert(Op != InvalidOpId && Op <= Ops.size() && "invalid OpId");
    return Ops[Op - 1];
  }

  /// Mutable access (the runtime patches trigger info as it learns it).
  Operation &operation(OpId Op) {
    assert(Op != InvalidOpId && Op <= Ops.size() && "invalid OpId");
    return Ops[Op - 1];
  }

  /// Direct successors of \p Op.
  const std::vector<OpId> &successors(OpId Op) const {
    assert(Op != InvalidOpId && Op <= Ops.size() && "invalid OpId");
    return Succ[Op - 1];
  }

  /// Direct predecessors of \p Op.
  const std::vector<OpId> &predecessors(OpId Op) const {
    assert(Op != InvalidOpId && Op <= Ops.size() && "invalid OpId");
    return Pred[Op - 1];
  }

  /// True iff A happens-before B in the transitive closure (A != B).
  /// Dispatches to the configured strategy.
  bool happensBefore(OpId A, OpId B) const {
    return UseVectorClocks ? reachesVectorClock(A, B) : reachesDfs(A, B);
  }

  /// Can-Happen-Concurrently (Sec. 5.1): both valid and unordered.
  bool canHappenConcurrently(OpId A, OpId B) const {
    if (A == InvalidOpId || B == InvalidOpId || A == B)
      return false;
    return !happensBefore(A, B) && !happensBefore(B, A);
  }

  /// Memoized-DFS reachability (the paper's graph strategy).
  bool reachesDfs(OpId A, OpId B) const;

  /// Chain-decomposition vector-clock reachability.
  bool reachesVectorClock(OpId A, OpId B) const;

  /// Selects the strategy used by happensBefore().
  void setUseVectorClocks(bool Use) { UseVectorClocks = Use; }
  bool usesVectorClocks() const { return UseVectorClocks; }

  /// Number of chains the vector-clock index currently uses.
  size_t numChains() const { return ChainTails.size(); }

  /// Returns the rule that justifies a direct edge From -> To, if any.
  /// Useful for explaining why two accesses are ordered.
  bool findDirectEdgeRule(OpId From, OpId To, HbRule &RuleOut) const;

  /// Returns one A -> ... -> B path (operation ids, inclusive) if A
  /// happens-before B, else an empty vector. For report explanations.
  std::vector<OpId> explainPath(OpId A, OpId B) const;

  /// Total DFS node visits performed so far (for the representation
  /// ablation bench).
  uint64_t dfsVisitCount() const { return DfsVisits; }

private:
  struct ClockEntry {
    uint32_t Chain = 0;
    uint32_t Pos = 0; ///< 1-based position within the chain.
  };

  void buildClock(OpId Op);

  std::vector<Operation> Ops;
  std::vector<std::vector<OpId>> Succ;
  std::vector<std::vector<OpId>> Pred;
  std::vector<std::vector<std::pair<OpId, HbRule>>> InEdgeRules;
  size_t EdgeCount = 0;
  std::array<uint64_t, NumHbRules> EdgesByRule{};

  // DFS memo: key = (A << 32 | B), value = reachable. The packing gives
  // each endpoint exactly half of the 64-bit key, so OpId must stay at
  // most 32 bits wide; widening OpId requires a new key scheme here.
  static_assert(sizeof(OpId) * 8 <= 32,
                "ReachMemo packs two OpIds into one uint64_t key");
  mutable std::unordered_map<uint64_t, bool> ReachMemo;
  mutable std::vector<uint32_t> VisitEpoch;
  mutable uint32_t CurrentEpoch = 0;
  mutable uint64_t DfsVisits = 0;
  mutable uint64_t MemoHits = 0;

  // Vector clocks: per-op chain assignment and clock (per-chain watermark).
  std::vector<ClockEntry> Where;
  std::vector<std::vector<uint32_t>> Clocks;
  std::vector<OpId> ChainTails; ///< Last op of each chain.

  bool UseVectorClocks = false;
};

} // namespace wr

#endif // WEBRACER_HB_HBGRAPH_H

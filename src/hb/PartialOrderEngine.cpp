//===- hb/PartialOrderEngine.cpp - Pluggable ordering oracles --------------===//

#include "hb/PartialOrderEngine.h"

#include <cstring>

using namespace wr;

const char *wr::toString(EngineKind Kind) {
  switch (Kind) {
  case EngineKind::Hb:
    return "hb";
  case EngineKind::HbDfs:
    return "hb-dfs";
  case EngineKind::Shb:
    return "shb";
  case EngineKind::Wcp:
    return "wcp";
  }
  return "unknown";
}

bool wr::parseEngineKind(const char *Name, EngineKind &Out) {
  for (EngineKind K : {EngineKind::Hb, EngineKind::HbDfs, EngineKind::Shb,
                       EngineKind::Wcp}) {
    if (std::strcmp(Name, toString(K)) == 0) {
      Out = K;
      return true;
    }
  }
  return false;
}

//===- hb/HbGraph.cpp - The happens-before relation ------------------------===//

#include "hb/HbGraph.h"

#include "support/Watermarks.h"

#include <algorithm>

using namespace wr;

const char *wr::toString(HbRule Rule) {
  switch (Rule) {
  case HbRule::R1a_ParseOrder:
    return "rule 1a (parse order)";
  case HbRule::R1b_InlineScript:
    return "rule 1b (inline script before next parse)";
  case HbRule::R1c_SyncScriptLoad:
    return "rule 1c (sync script load before next parse)";
  case HbRule::R2_CreateBeforeExe:
    return "rule 2 (create before exe)";
  case HbRule::R3_ExeBeforeLoad:
    return "rule 3 (exe before load)";
  case HbRule::R4_CreateBeforeDefer:
    return "rule 4 (create before deferred exe)";
  case HbRule::R5_DeferOrder:
    return "rule 5 (deferred script order)";
  case HbRule::R6_FrameCreate:
    return "rule 6 (frame before nested create)";
  case HbRule::R7_FrameLoad:
    return "rule 7 (nested window load before iframe load)";
  case HbRule::R8_TargetCreated:
    return "rule 8 (target created before dispatch)";
  case HbRule::R9_DispatchOrder:
    return "rule 9 (dispatch order)";
  case HbRule::R10_AjaxSend:
    return "rule 10 (send before readystatechange)";
  case HbRule::R11_DclBeforeLoad:
    return "rule 11 (DOMContentLoaded before window load)";
  case HbRule::R12_ParseBeforeDcl:
    return "rule 12 (parse before DOMContentLoaded)";
  case HbRule::R13_InlineBeforeDcl:
    return "rule 13 (inline exe before DOMContentLoaded)";
  case HbRule::R14_ScriptLoadBeforeDcl:
    return "rule 14 (script load before DOMContentLoaded)";
  case HbRule::R15_ElemLoadBeforeWindowLoad:
    return "rule 15 (element load before window load)";
  case HbRule::R16_SetTimeout:
    return "rule 16 (setTimeout)";
  case HbRule::R17_SetInterval:
    return "rule 17 (setInterval)";
  case HbRule::RA_DispatchChain:
    return "appendix (dispatch handler chain)";
  case HbRule::RA_InlineSplit:
    return "appendix (inline dispatch split)";
  case HbRule::RProgram:
    return "program order";
  }
  return "unknown rule";
}

const char *wr::toString(Ordering O) {
  switch (O) {
  case Ordering::Before:
    return "before";
  case Ordering::After:
    return "after";
  case Ordering::Concurrent:
    return "concurrent";
  }
  return "unknown";
}

HbGraph::HbGraph() = default;

OpId HbGraph::addOperation(Operation Op) {
  Ops.push_back(std::move(Op));
  Succ.emplace_back();
  Pred.emplace_back();
  InEdgeRules.emplace_back();
  VisitEpoch.push_back(0);
  return static_cast<OpId>(Ops.size());
}

void HbGraph::reserveOperations(size_t ExpectedOps) {
  if (ExpectedOps <= Ops.size())
    return;
  Ops.reserve(ExpectedOps);
  Succ.reserve(ExpectedOps);
  Pred.reserve(ExpectedOps);
  InEdgeRules.reserve(ExpectedOps);
  VisitEpoch.reserve(ExpectedOps);
  ClockReps.reserve(ExpectedOps);
}

void HbGraph::addEdge(OpId From, OpId To, HbRule Rule) {
  assert(From != InvalidOpId && To != InvalidOpId && "invalid endpoint");
  assert(From <= Ops.size() && To <= Ops.size() && "unknown operation");
  assert(From < To &&
         "HB edges must point from an older to a newer operation");
  assert(ClockReps.size() < To && "in-edges must precede clock finalization");
  auto &Out = Succ[From - 1];
  if (std::find(Out.begin(), Out.end(), To) != Out.end())
    return; // Duplicate edge.
  Out.push_back(To);
  Pred[To - 1].push_back(From);
  InEdgeRules[To - 1].push_back({From, Rule});
  ++EdgeCount;
  ++EdgesByRule[static_cast<size_t>(Rule)];
}

bool HbGraph::reachesDfs(OpId A, OpId B) const {
  assert(A != InvalidOpId && B != InvalidOpId && "invalid OpId");
  if (A >= B)
    return false; // Edges strictly ascend, so no path can descend.
  uint64_t Key = (static_cast<uint64_t>(A) << 32) | B;
  auto Memo = ReachMemo.find(Key);
  if (Memo != ReachMemo.end() && (Memo->second >> 1) == MemoEpoch) {
    ++MemoHits;
    return Memo->second & 1;
  }

  // Iterative DFS restricted to ids in (A, B]; edges ascend so anything
  // above B can never reach back down to it.
  ++CurrentEpoch;
  bool Found = false;
  std::vector<OpId> Stack;
  Stack.push_back(A);
  VisitEpoch[A - 1] = CurrentEpoch;
  while (!Stack.empty() && !Found) {
    OpId Cur = Stack.back();
    Stack.pop_back();
    ++DfsVisits;
    for (OpId Next : Succ[Cur - 1]) {
      if (Next == B) {
        Found = true;
        break;
      }
      if (Next > B || VisitEpoch[Next - 1] == CurrentEpoch)
        continue;
      VisitEpoch[Next - 1] = CurrentEpoch;
      Stack.push_back(Next);
    }
  }
  ReachMemo.insert_or_assign(Key, (MemoEpoch << 1) | (Found ? 1 : 0));
  return Found;
}

void HbGraph::resetQueryState() {
  // Epoch bump instead of ReachMemo.clear(): stale entries die at lookup
  // and get overwritten in place, so the hash table keeps its buckets.
  ++MemoEpoch;
}

void HbGraph::buildClock(OpId Op) const {
  // Clocks are built strictly in id order; predecessors are always lower
  // ids, so their clocks already exist.
  assert(ClockReps.size() + 1 == Op && "clocks must be built in order");
  const OpList &Preds = Pred[Op - 1];

  // Greedy chain packing (unchanged from the eager-copy representation,
  // so chain assignment - and therefore numChains() and every report
  // that mentions it - is bit-identical): the first predecessor in edge
  // order that is still the tail of its chain donates its chain.
  uint32_t PickedChain = UINT32_MAX;
  uint32_t PickedPos = 0;
  const ClockRep *Base = nullptr; ///< Clock the new op extends, if any.
  for (OpId P : Preds) {
    const ClockRep &PR = ClockReps[P - 1];
    if (ChainTails[PR.DeltaChain] == P) {
      PickedChain = PR.DeltaChain;
      PickedPos = PR.DeltaPos + 1;
      Base = &PR;
      break;
    }
  }
  if (PickedChain == UINT32_MAX) {
    PickedChain = static_cast<uint32_t>(ChainTails.size());
    PickedPos = 1;
    ChainTails.push_back(Op);
  } else {
    ChainTails[PickedChain] = Op;
  }

  ClockRep R;
  R.DeltaChain = PickedChain;
  R.DeltaPos = PickedPos;

  // Copy-on-write: when the op extends a predecessor's chain, the
  // predecessor's own delta slot is the very slot the new op overrides,
  // so aliasing the predecessor's base slab plus the new delta *is* the
  // merged clock - as long as every other predecessor's watermarks are
  // already dominated by it. Sharing is sound because the builder only
  // adds edges to the newest operation: a finalized slab can never gain
  // entries later, so an alias can never observe a mutation.
  // Does predecessor \p PR's effective clock stay pointwise within the
  // aliased clock (base slab R.Offset / R.Len), ignoring the picked
  // chain's column? A rep's effective clock is its base slab with the
  // delta slot overriding (and always >=) the base entry at DeltaChain,
  // so the check splits into the delta slot plus a wide pointwise compare
  // of the contiguous base slabs (support/Watermarks.h, two watermarks
  // per uint64 step) with the two special columns carved out. The picked
  // chain needs no check: no watermark can exceed its tail's position,
  // which PickedPos exceeds by one.
  auto aliasDominates = [&](const ClockRep &PR, const ClockRep &R) {
    if (PR.DeltaChain != PickedChain) {
      uint32_t Ours =
          PR.DeltaChain < R.Len ? ClockPool[R.Offset + PR.DeltaChain] : 0;
      if (PR.DeltaPos > Ours)
        return false;
    }
    // Base-slab columns [Begin, End): pointwise <= the aliased slab where
    // both cover the chain, zero where only PR does.
    auto baseDominated = [&](uint32_t Begin, uint32_t End) {
      if (Begin >= End)
        return true;
      const uint32_t *Theirs = ClockPool.data() + PR.Offset;
      uint32_t Mid = std::min(End, R.Len);
      if (Begin < Mid &&
          !support::watermarksDominated(
              Theirs + Begin, ClockPool.data() + R.Offset + Begin,
              Mid - Begin))
        return false;
      uint32_t ZBegin = std::max(Begin, Mid);
      return ZBegin >= End ||
             support::watermarksAllZero(Theirs + ZBegin, End - ZBegin);
    };
    uint32_t S1 = std::min(PR.DeltaChain, PickedChain);
    uint32_t S2 = std::max(PR.DeltaChain, PickedChain);
    return baseDominated(0, std::min(S1, PR.Len)) &&
           baseDominated(std::min(S1 + 1, PR.Len), std::min(S2, PR.Len)) &&
           baseDominated(std::min(S2 + 1, PR.Len), PR.Len);
  };

  bool CanAlias = Base != nullptr || Preds.empty();
  if (Base != nullptr) {
    R.Offset = Base->Offset;
    R.Len = Base->Len;
    for (OpId P : Preds) {
      const ClockRep &PR = ClockReps[P - 1];
      if (&PR == Base)
        continue;
      if (!aliasDominates(PR, R)) {
        CanAlias = false;
        break;
      }
    }
  }

  if (CanAlias) {
    ++SharedClocks;
  } else {
    // Materialize the merge: max over every predecessor's effective
    // clock, written as a fresh slab at the end of the arena. The fresh
    // slab is disjoint from every finalized slab, so the wide join's
    // no-overlap requirement holds.
    ++ClockMerges;
    uint32_t Len = 0;
    for (OpId P : Preds)
      Len = std::max(Len, clockLenAt(P - 1));
    uint32_t Offset = static_cast<uint32_t>(ClockPool.size());
    ClockPool.resize(ClockPool.size() + Len, 0);
    for (OpId P : Preds) {
      const ClockRep &PR = ClockReps[P - 1];
      support::watermarksJoinMax(ClockPool.data() + Offset,
                                 ClockPool.data() + PR.Offset, PR.Len);
      // The delta slot always dominates its own base entry, so a max
      // lands the override.
      uint32_t &Slot = ClockPool[Offset + PR.DeltaChain];
      if (PR.DeltaPos > Slot)
        Slot = PR.DeltaPos;
    }
    R.Offset = Offset;
    R.Len = Len;
  }

  ClockReps.push_back(R);
}

void HbGraph::ensureClocks(OpId Op) const {
  while (ClockReps.size() < Op)
    buildClock(static_cast<OpId>(ClockReps.size() + 1));
}

bool HbGraph::reachesVectorClock(OpId A, OpId B) const {
  assert(A != InvalidOpId && B != InvalidOpId && "invalid OpId");
  if (A >= B)
    return false;
  // Lazily extend the clock index up to B. Safe because all in-edges of an
  // operation are added before any query can mention it as an endpoint.
  ensureClocks(B);
  const ClockRep &RA = ClockReps[A - 1];
  return clockEntryAt(B - 1, RA.DeltaChain) >= RA.DeltaPos;
}

uint32_t HbGraph::chainOf(OpId Op) const {
  assert(Op != InvalidOpId && Op <= Ops.size() && "invalid OpId");
  ensureClocks(Op);
  return ClockReps[Op - 1].DeltaChain;
}

uint32_t HbGraph::chainPositionOf(OpId Op) const {
  assert(Op != InvalidOpId && Op <= Ops.size() && "invalid OpId");
  ensureClocks(Op);
  return ClockReps[Op - 1].DeltaPos;
}

uint32_t HbGraph::clockWatermark(OpId Op, uint32_t Chain) const {
  assert(Op != InvalidOpId && Op <= Ops.size() && "invalid OpId");
  ensureClocks(Op);
  return clockEntryAt(Op - 1, Chain);
}

uint64_t HbGraph::fullCopyClockBytes() const {
  // Model the eager representation this index replaced: per op, one
  // std::vector<uint32_t> (header + one heap word per covered chain) and
  // one (chain, pos) assignment record.
  uint64_t Words = 0;
  for (uint32_t I = 0; I < ClockReps.size(); ++I)
    Words += clockLenAt(I);
  return Words * sizeof(uint32_t) +
         ClockReps.size() *
             (sizeof(std::vector<uint32_t>) + 2 * sizeof(uint32_t)) +
         ChainTails.size() * sizeof(OpId);
}

bool HbGraph::findDirectEdgeRule(OpId From, OpId To, HbRule &RuleOut) const {
  if (To == InvalidOpId || To > Ops.size())
    return false;
  for (const auto &[Pred, Rule] : InEdgeRules[To - 1]) {
    if (Pred == From) {
      RuleOut = Rule;
      return true;
    }
  }
  return false;
}

std::vector<OpId> HbGraph::explainPath(OpId A, OpId B) const {
  std::vector<OpId> Path;
  if (A == InvalidOpId || B == InvalidOpId || A >= B)
    return Path;
  // BFS from A recording parents, restricted to ids <= B.
  std::vector<OpId> Parent(Ops.size() + 1, InvalidOpId);
  std::vector<OpId> Queue;
  Queue.push_back(A);
  Parent[A] = A;
  for (size_t Head = 0; Head < Queue.size(); ++Head) {
    OpId Cur = Queue[Head];
    for (OpId Next : Succ[Cur - 1]) {
      if (Next > B || Parent[Next] != InvalidOpId)
        continue;
      Parent[Next] = Cur;
      if (Next == B) {
        // Reconstruct.
        for (OpId Walk = B; Walk != A; Walk = Parent[Walk])
          Path.push_back(Walk);
        Path.push_back(A);
        std::reverse(Path.begin(), Path.end());
        return Path;
      }
      Queue.push_back(Next);
    }
  }
  return Path;
}

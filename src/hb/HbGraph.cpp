//===- hb/HbGraph.cpp - The happens-before relation ------------------------===//

#include "hb/HbGraph.h"

#include <algorithm>

using namespace wr;

const char *wr::toString(HbRule Rule) {
  switch (Rule) {
  case HbRule::R1a_ParseOrder:
    return "rule 1a (parse order)";
  case HbRule::R1b_InlineScript:
    return "rule 1b (inline script before next parse)";
  case HbRule::R1c_SyncScriptLoad:
    return "rule 1c (sync script load before next parse)";
  case HbRule::R2_CreateBeforeExe:
    return "rule 2 (create before exe)";
  case HbRule::R3_ExeBeforeLoad:
    return "rule 3 (exe before load)";
  case HbRule::R4_CreateBeforeDefer:
    return "rule 4 (create before deferred exe)";
  case HbRule::R5_DeferOrder:
    return "rule 5 (deferred script order)";
  case HbRule::R6_FrameCreate:
    return "rule 6 (frame before nested create)";
  case HbRule::R7_FrameLoad:
    return "rule 7 (nested window load before iframe load)";
  case HbRule::R8_TargetCreated:
    return "rule 8 (target created before dispatch)";
  case HbRule::R9_DispatchOrder:
    return "rule 9 (dispatch order)";
  case HbRule::R10_AjaxSend:
    return "rule 10 (send before readystatechange)";
  case HbRule::R11_DclBeforeLoad:
    return "rule 11 (DOMContentLoaded before window load)";
  case HbRule::R12_ParseBeforeDcl:
    return "rule 12 (parse before DOMContentLoaded)";
  case HbRule::R13_InlineBeforeDcl:
    return "rule 13 (inline exe before DOMContentLoaded)";
  case HbRule::R14_ScriptLoadBeforeDcl:
    return "rule 14 (script load before DOMContentLoaded)";
  case HbRule::R15_ElemLoadBeforeWindowLoad:
    return "rule 15 (element load before window load)";
  case HbRule::R16_SetTimeout:
    return "rule 16 (setTimeout)";
  case HbRule::R17_SetInterval:
    return "rule 17 (setInterval)";
  case HbRule::RA_DispatchChain:
    return "appendix (dispatch handler chain)";
  case HbRule::RA_InlineSplit:
    return "appendix (inline dispatch split)";
  case HbRule::RProgram:
    return "program order";
  }
  return "unknown rule";
}

HbGraph::HbGraph() = default;

OpId HbGraph::addOperation(Operation Op) {
  Ops.push_back(std::move(Op));
  Succ.emplace_back();
  Pred.emplace_back();
  InEdgeRules.emplace_back();
  VisitEpoch.push_back(0);
  return static_cast<OpId>(Ops.size());
}

void HbGraph::addEdge(OpId From, OpId To, HbRule Rule) {
  assert(From != InvalidOpId && To != InvalidOpId && "invalid endpoint");
  assert(From <= Ops.size() && To <= Ops.size() && "unknown operation");
  assert(From < To &&
         "HB edges must point from an older to a newer operation");
  assert(Clocks.size() < To && "in-edges must precede clock finalization");
  auto &Out = Succ[From - 1];
  if (std::find(Out.begin(), Out.end(), To) != Out.end())
    return; // Duplicate edge.
  Out.push_back(To);
  Pred[To - 1].push_back(From);
  InEdgeRules[To - 1].emplace_back(From, Rule);
  ++EdgeCount;
  ++EdgesByRule[static_cast<size_t>(Rule)];
}

bool HbGraph::reachesDfs(OpId A, OpId B) const {
  assert(A != InvalidOpId && B != InvalidOpId && "invalid OpId");
  if (A >= B)
    return false; // Edges strictly ascend, so no path can descend.
  uint64_t Key = (static_cast<uint64_t>(A) << 32) | B;
  auto Memo = ReachMemo.find(Key);
  if (Memo != ReachMemo.end()) {
    ++MemoHits;
    return Memo->second;
  }

  // Iterative DFS restricted to ids in (A, B]; edges ascend so anything
  // above B can never reach back down to it.
  ++CurrentEpoch;
  bool Found = false;
  std::vector<OpId> Stack;
  Stack.push_back(A);
  VisitEpoch[A - 1] = CurrentEpoch;
  while (!Stack.empty() && !Found) {
    OpId Cur = Stack.back();
    Stack.pop_back();
    ++DfsVisits;
    for (OpId Next : Succ[Cur - 1]) {
      if (Next == B) {
        Found = true;
        break;
      }
      if (Next > B || VisitEpoch[Next - 1] == CurrentEpoch)
        continue;
      VisitEpoch[Next - 1] = CurrentEpoch;
      Stack.push_back(Next);
    }
  }
  ReachMemo.emplace(Key, Found);
  return Found;
}

void HbGraph::buildClock(OpId Op) {
  // Clocks are built strictly in id order; predecessors are always lower
  // ids, so their clocks already exist.
  assert(Clocks.size() + 1 == Op && "clocks must be built in order");
  std::vector<uint32_t> Clock;
  uint32_t PickedChain = UINT32_MAX;
  uint32_t PickedPos = 0;
  for (OpId P : Pred[Op - 1]) {
    const std::vector<uint32_t> &PClock = Clocks[P - 1];
    if (PClock.size() > Clock.size())
      Clock.resize(PClock.size(), 0);
    for (size_t I = 0; I < PClock.size(); ++I)
      Clock[I] = std::max(Clock[I], PClock[I]);
    // Greedy chain packing: extend a predecessor that is still the tail of
    // its chain.
    if (PickedChain == UINT32_MAX && ChainTails[Where[P - 1].Chain] == P) {
      PickedChain = Where[P - 1].Chain;
      PickedPos = Where[P - 1].Pos + 1;
    }
  }
  if (PickedChain == UINT32_MAX) {
    PickedChain = static_cast<uint32_t>(ChainTails.size());
    PickedPos = 1;
    ChainTails.push_back(Op);
  } else {
    ChainTails[PickedChain] = Op;
  }
  if (Clock.size() <= PickedChain)
    Clock.resize(PickedChain + 1, 0);
  Clock[PickedChain] = PickedPos;
  Where.push_back({PickedChain, PickedPos});
  Clocks.push_back(std::move(Clock));
}

bool HbGraph::reachesVectorClock(OpId A, OpId B) const {
  assert(A != InvalidOpId && B != InvalidOpId && "invalid OpId");
  if (A >= B)
    return false;
  // Lazily extend the clock index up to B. Safe because all in-edges of an
  // operation are added before any query can mention it as an endpoint.
  auto *Self = const_cast<HbGraph *>(this);
  while (Self->Clocks.size() < B)
    Self->buildClock(static_cast<OpId>(Self->Clocks.size() + 1));
  const ClockEntry &EntryA = Where[A - 1];
  const std::vector<uint32_t> &ClockB = Clocks[B - 1];
  if (EntryA.Chain >= ClockB.size())
    return false;
  return ClockB[EntryA.Chain] >= EntryA.Pos;
}

bool HbGraph::findDirectEdgeRule(OpId From, OpId To, HbRule &RuleOut) const {
  if (To == InvalidOpId || To > Ops.size())
    return false;
  for (const auto &[Pred, Rule] : InEdgeRules[To - 1]) {
    if (Pred == From) {
      RuleOut = Rule;
      return true;
    }
  }
  return false;
}

std::vector<OpId> HbGraph::explainPath(OpId A, OpId B) const {
  std::vector<OpId> Path;
  if (A == InvalidOpId || B == InvalidOpId || A >= B)
    return Path;
  // BFS from A recording parents, restricted to ids <= B.
  std::vector<OpId> Parent(Ops.size() + 1, InvalidOpId);
  std::vector<OpId> Queue;
  Queue.push_back(A);
  Parent[A] = A;
  for (size_t Head = 0; Head < Queue.size(); ++Head) {
    OpId Cur = Queue[Head];
    for (OpId Next : Succ[Cur - 1]) {
      if (Next > B || Parent[Next] != InvalidOpId)
        continue;
      Parent[Next] = Cur;
      if (Next == B) {
        // Reconstruct.
        for (OpId Walk = B; Walk != A; Walk = Parent[Walk])
          Path.push_back(Walk);
        Path.push_back(A);
        std::reverse(Path.begin(), Path.end());
        return Path;
      }
      Queue.push_back(Next);
    }
  }
  return Path;
}

//===- hb/PartialOrderEngine.h - Pluggable ordering oracles -----*- C++ -*-===//
//
// Part of the WebRacer reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The partial-order oracle the race detector consumes, extracted behind
/// an engine interface so the observed happens-before relation (HbGraph)
/// is just one of several orders a recorded trace can be analyzed under:
///
///  * Hb / HbDfs - the paper's happens-before relation, answered by the
///    existing HbGraph (vector clocks or memoized DFS). Verdicts between
///    existing operations are immutable, so they may be cached.
///  * Shb / Wcp (PredictiveEngine.h) - weaker/stronger orders for race
///    *prediction* over replayed traces; their verdicts evolve as the
///    trace streams by, so caching is forbidden (cacheableVerdicts()).
///
/// Engines receive the replayed trace through the three hook methods
/// (operation creation, rule-tagged HB edges, memory accesses) plus an
/// optional primeAccess() pre-pass; all hooks default to no-ops so the
/// graph-backed engine stays a thin adapter.
///
//===----------------------------------------------------------------------===//

#ifndef WEBRACER_HB_PARTIALORDERENGINE_H
#define WEBRACER_HB_PARTIALORDERENGINE_H

#include "hb/HbGraph.h"
#include "mem/Location.h"

namespace wr {

/// Which partial order a detector or prediction pass runs over.
enum class EngineKind : uint8_t {
  Hb,    ///< Observed happens-before, vector-clock strategy (default).
  HbDfs, ///< Observed happens-before, memoized-DFS strategy.
  Shb,   ///< Schedulable-HB: HB plus write-read edges (SHB paper).
  Wcp,   ///< Weak-causally-precedes adaptation: SHB minus dispatch-order
         ///< edges between non-conflicting operations.
};

/// Renders an engine kind as its CLI spelling (hb, hb-dfs, shb, wcp).
const char *toString(EngineKind Kind);

/// Parses a CLI engine name; returns false (leaving \p Out untouched) on
/// an unknown spelling.
bool parseEngineKind(const char *Name, EngineKind &Out);

/// Abstract ordering oracle over trace operations.
class PartialOrderEngine {
public:
  virtual ~PartialOrderEngine() = default;

  virtual EngineKind kind() const = 0;

  /// Combined ordering verdict; requires A != B, both valid.
  virtual Ordering ordering(OpId A, OpId B) const = 0;

  /// True iff A precedes B in this engine's partial order.
  bool happensBefore(OpId A, OpId B) const {
    return ordering(A, B) == Ordering::Before;
  }

  /// CHC under this order: both valid, distinct, unordered.
  bool concurrent(OpId A, OpId B) const {
    if (A == InvalidOpId || B == InvalidOpId || A == B)
      return false;
    return ordering(A, B) == Ordering::Concurrent;
  }

  /// True when a verdict between two existing operations can never
  /// change, so detector-side epoch/pair caches are sound. Predictive
  /// engines grow clocks as accesses stream by and must return false.
  virtual bool cacheableVerdicts() const { return true; }

  /// True when this engine can name operations by (chain, position)
  /// epochs and answer epoch-ordering probes with one O(1) clock lookup
  /// (the vector-clock HbGraph strategy). The detector then stores one
  /// epoch per location slot and answers every ordering question through
  /// epochOrdered() - no pair-cache entry, no generic concurrent() call.
  virtual bool supportsEpochQueries() const { return false; }

  /// The epoch of \p Op. Only meaningful when supportsEpochQueries();
  /// the default returns the Pos == 0 "no epoch" sentinel.
  virtual ClockEpoch epochOf(OpId Op) const {
    (void)Op;
    return {};
  }

  /// True iff the operation holding epoch (\p Chain, \p Pos) precedes
  /// \p Op in this engine's order. Only meaningful when
  /// supportsEpochQueries().
  virtual bool epochOrdered(uint32_t Chain, uint32_t Pos, OpId Op) const {
    (void)Chain;
    (void)Pos;
    (void)Op;
    return false;
  }

  /// Trace-stream hooks (defaults: no-op). Drivers feed every replayed
  /// event through these in trace order.
  virtual void onOperationCreated(OpId Op, const Operation &Meta) {
    (void)Op;
    (void)Meta;
  }
  virtual void onHbEdge(OpId From, OpId To, HbRule Rule) {
    (void)From;
    (void)To;
    (void)Rule;
  }
  virtual void onMemoryAccess(const Access &A) { (void)A; }

  /// Optional pre-pass: called once per access, before any other hook,
  /// for engines that need both endpoints' access sets to classify an
  /// edge (WCP's conflict test). Default: no-op.
  virtual void primeAccess(OpId Op, LocId Loc, AccessKind Kind) {
    (void)Op;
    (void)Loc;
    (void)Kind;
  }
};

/// The observed-HB engine: a thin adapter over an existing HbGraph. The
/// graph is built by the browser or the replay driver; this engine only
/// answers queries, so all hooks stay no-ops.
class HbEngine final : public PartialOrderEngine {
public:
  explicit HbEngine(const HbGraph &Hb) : Hb(Hb) {}

  EngineKind kind() const override {
    return Hb.usesVectorClocks() ? EngineKind::Hb : EngineKind::HbDfs;
  }

  Ordering ordering(OpId A, OpId B) const override {
    return Hb.ordering(A, B);
  }

  /// Epoch queries are available exactly when the graph answers
  /// happensBefore() from its clock index (checked per call: tests and
  /// benches flip the strategy on a live graph).
  bool supportsEpochQueries() const override {
    return Hb.usesVectorClocks();
  }

  ClockEpoch epochOf(OpId Op) const override { return Hb.epochOf(Op); }

  bool epochOrdered(uint32_t Chain, uint32_t Pos, OpId Op) const override {
    return Hb.epochOrdered(Chain, Pos, Op);
  }

  const HbGraph &graph() const { return Hb; }

private:
  const HbGraph &Hb;
};

} // namespace wr

#endif // WEBRACER_HB_PARTIALORDERENGINE_H

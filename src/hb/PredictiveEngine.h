//===- hb/PredictiveEngine.h - SHB / WCP predictive orders ------*- C++ -*-===//
//
// Part of the WebRacer reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Predictive partial-order engines that run over a replayed trace's
/// event stream and answer ordering queries from their own incremental
/// vector clocks (independent of HbGraph's arena index):
///
///  * ShbEngine - schedulable happens-before ("What Happens-After the
///    First Race?"): the observed HB edges plus a write-read edge from
///    the last writer of a location to each subsequent reader, carried
///    as a last-write clock that readers join. Race checks posed
///    *before* the reader's join (the driver's check-then-update
///    discipline) make every SHB-concurrent conflicting pair a race in
///    some feasible schedule, so races past the first reported one
///    become sound predictions instead of noise.
///
///  * WcpEngine - a weak-causally-precedes adaptation ("Dynamic Race
///    Prediction in Linear Time") for the web model, where the unit of
///    atomicity is the dispatched operation rather than a lock region:
///    SHB minus the dispatch-order edges (rules 9 and 17) between
///    operations that do not conflict (no common location with a write
///    on either side). Dropping those edges models reordering two
///    same-target dispatches that never touch common state; the
///    resulting order is weaker than SHB, so WCP's predictions are a
///    superset of SHB's by construction. Creation causality survives
///    the weakening: rule 17's caller -> cb_0 edge is never dropped,
///    and dropping a cb_i -> cb_{i+1} chain edge substitutes the
///    interval's creation edge, so no callback floats free of its
///    registration. Unlike SHB, a WCP-concurrent pair is an aggressive
///    candidate, not a guaranteed feasible race (the dropped rules are
///    real platform guarantees; see DESIGN.md).
///
/// Because clocks grow as accesses stream by (a reader's clock gains the
/// last writer's), verdicts between existing operations are mutable:
/// cacheableVerdicts() is false and drivers must not memoize.
///
//===----------------------------------------------------------------------===//

#ifndef WEBRACER_HB_PREDICTIVEENGINE_H
#define WEBRACER_HB_PREDICTIVEENGINE_H

#include "hb/PartialOrderEngine.h"

#include <unordered_map>
#include <vector>

namespace wr {

/// Shared incremental vector-clock machinery for the predictive orders.
/// Operations are greedily packed into chains exactly like HbGraph's
/// index (first predecessor, in edge order, that is still its chain's
/// tail donates the chain); each operation carries a full per-chain
/// watermark vector, finalized lazily in id order when the first access
/// with an equal-or-higher operation id arrives. That is sound for the
/// same reason HbGraph's lazy index is: the builder contract guarantees
/// every in-edge of an operation precedes the first access that could
/// query it (HbGraph asserts this during recording).
class PredictiveEngine : public PartialOrderEngine {
public:
  Ordering ordering(OpId A, OpId B) const override;
  bool cacheableVerdicts() const override { return false; }

  void onOperationCreated(OpId Op, const Operation &Meta) override;
  void onHbEdge(OpId From, OpId To, HbRule Rule) override;
  void onMemoryAccess(const Access &A) override;

  /// Chains the incremental index uses so far.
  size_t numChains() const { return ChainTails.size(); }

  /// HB edges this engine's order dropped (WCP's weakening; 0 for SHB).
  uint64_t droppedEdges() const { return DroppedEdges; }

protected:
  /// Engine-specific edge filter; returning false excludes the edge from
  /// this order (counted in droppedEdges()).
  virtual bool keepEdge(OpId From, OpId To, HbRule Rule) {
    (void)From;
    (void)To;
    (void)Rule;
    return true;
  }

private:
  struct OpClock {
    uint32_t Chain = 0;
    uint32_t Pos = 0; ///< 1-based position within Chain; 0 = unfinalized.
    std::vector<uint32_t> Clock;
  };

  /// Builds clocks for every unfinalized operation with id <= Op, in id
  /// order (HB edges ascend, so predecessors are always finalized
  /// first). Const because queries finalize lazily - the driver's
  /// check-then-update discipline asks about an access's operation
  /// before the access reaches onMemoryAccess - which is sound for the
  /// same builder-contract reason as HbGraph's lazy index: every
  /// in-edge of an operation precedes its first access.
  void finalizeThrough(OpId Op) const;
  static void joinInto(std::vector<uint32_t> &Dst,
                       const std::vector<uint32_t> &Src);

  mutable std::vector<OpClock> Clocks;       ///< Indexed Op - 1.
  std::vector<std::vector<OpId>> Preds;      ///< Kept in-edges, edge order.
  mutable std::vector<OpId> ChainTails;
  std::unordered_map<LocId, std::vector<uint32_t>> LastWriteClock;
  mutable OpId Finalized = 0; ///< Clocks built for all ops <= Finalized.
  uint64_t DroppedEdges = 0;
};

/// SHB: every observed edge kept, write-read edges via last-write joins.
class ShbEngine final : public PredictiveEngine {
public:
  EngineKind kind() const override { return EngineKind::Shb; }
};

/// WCP adaptation: SHB minus dispatch-order edges (rules 9/17) between
/// non-conflicting operations. Needs the primeAccess() pre-pass so both
/// endpoints' access sets exist when an edge is classified.
class WcpEngine final : public PredictiveEngine {
public:
  EngineKind kind() const override { return EngineKind::Wcp; }

  void onOperationCreated(OpId Op, const Operation &Meta) override;
  void onHbEdge(OpId From, OpId To, HbRule Rule) override;
  void primeAccess(OpId Op, LocId Loc, AccessKind Kind) override;

protected:
  bool keepEdge(OpId From, OpId To, HbRule Rule) override;

private:
  bool conflicting(OpId A, OpId B) const;
  bool isIntervalCb(OpId Op) const {
    return Op <= IntervalCb.size() && IntervalCb[Op - 1];
  }

  /// Per-operation access footprint: LocId -> mask (1 = read, 2 = write).
  std::vector<std::unordered_map<LocId, uint8_t>> Footprint;
  /// Which operations are interval callbacks (rule 17's cb_i): only the
  /// cb_i -> cb_{i+1} chain edges are droppable, never caller -> cb_0.
  std::vector<uint8_t> IntervalCb;
  /// Registration operation of each interval callback, carried down the
  /// rule-17 chain; substituted when a chain edge is dropped.
  std::unordered_map<OpId, OpId> IntervalCreator;
};

} // namespace wr

#endif // WEBRACER_HB_PREDICTIVEENGINE_H

//===- hb/Operation.h - Atomic operations of a web execution ----*- C++ -*-===//
//
// Part of the WebRacer reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Operations per the paper's Section 3.2. A web page execution consists of
/// atomic operations: parsing an HTML element, executing a script, running a
/// timer callback, or executing an event handler. Each operation gets a
/// unique OpId; the happens-before relation is a binary relation on OpIds.
///
/// Two auxiliary operation kinds materialize the paper's *sets* of
/// operations: every event dispatch is bracketed by DispatchBegin /
/// DispatchEnd anchor operations that perform no memory accesses. A rule of
/// the form `X -> disp_i(e,T)` becomes an edge X -> begin-anchor; a rule
/// `disp_i(e,T) -> Y` becomes end-anchor -> Y. Handler operations are
/// chained begin -> h1 -> ... -> hn -> end, which also realizes the
/// Appendix A phase-ordering rule (handlers of one dispatch execute in a
/// fixed phase/target order).
///
//===----------------------------------------------------------------------===//

#ifndef WEBRACER_HB_OPERATION_H
#define WEBRACER_HB_OPERATION_H

#include "mem/Location.h"

#include <cstdint>
#include <string>

namespace wr {

/// Identifier of an operation. 0 is the ⊥ sentinel used by the detector's
/// LastRead/LastWrite maps before any access occurred.
using OpId = uint32_t;

inline constexpr OpId InvalidOpId = 0;

/// The kinds of atomic operations (Sec. 3.2), plus dispatch anchors and
/// script slices (Appendix A inline-dispatch splitting).
enum class OperationKind : uint8_t {
  Bootstrap,        ///< Pseudo-operation that starts a page load.
  ParseElement,     ///< parse(E): parsing one static HTML element.
  ExecuteScript,    ///< exe(E): running the code of a script element.
  TimeoutCallback,  ///< cb(E): a setTimeout callback.
  IntervalCallback, ///< cbi(E): the i-th setInterval callback.
  EventHandler,     ///< One handler execution within a dispatch.
  DispatchBegin,    ///< Anchor before the handlers of one event dispatch.
  DispatchEnd,      ///< Anchor after the handlers of one event dispatch.
  ScriptSlice,      ///< A[i:j) slice of an operation interrupted by an
                    ///< inline event dispatch (Appendix A).
  UserAction,       ///< Anchor for a simulated user action.
};

/// What caused this operation to be schedulable; used by the replay-based
/// harmfulness classifier to perturb schedules.
enum class TriggerKind : uint8_t {
  None,    ///< Synchronous (parser-driven, or nested in another op).
  Network, ///< A network resource completion.
  Timer,   ///< A setTimeout/setInterval expiry.
  User,    ///< A (simulated) user action.
};

/// Metadata about one operation. The happens-before relation itself lives
/// in HbGraph; this is the per-operation record used for reports and
/// classification.
struct Operation {
  OperationKind Kind = OperationKind::Bootstrap;
  DocumentId Doc = 0;      ///< Owning document (0 if none).
  NodeId Subject = InvalidNodeId; ///< The element parsed / script run /
                                  ///< dispatch target, when applicable.
  std::string EventType;   ///< For dispatch anchors and handlers.
  int32_t DispatchIndex = -1; ///< i of disp_i, when applicable.
  std::string Label;       ///< Human-readable description.
  TriggerKind Trigger = TriggerKind::None;
  std::string TriggerKey;  ///< URL / timer id / user action id.
};

/// Renders an operation kind name.
const char *toString(OperationKind Kind);

} // namespace wr

#endif // WEBRACER_HB_OPERATION_H

//===- hb/Operation.cpp - Atomic operations of a web execution ------------===//

#include "hb/Operation.h"

using namespace wr;

const char *wr::toString(OperationKind Kind) {
  switch (Kind) {
  case OperationKind::Bootstrap:
    return "bootstrap";
  case OperationKind::ParseElement:
    return "parse";
  case OperationKind::ExecuteScript:
    return "exe";
  case OperationKind::TimeoutCallback:
    return "cb";
  case OperationKind::IntervalCallback:
    return "cbi";
  case OperationKind::EventHandler:
    return "handler";
  case OperationKind::DispatchBegin:
    return "dispatch-begin";
  case OperationKind::DispatchEnd:
    return "dispatch-end";
  case OperationKind::ScriptSlice:
    return "slice";
  case OperationKind::UserAction:
    return "user";
  }
  return "unknown";
}

//===- hb/PredictiveEngine.cpp - SHB / WCP predictive orders ---------------===//

#include "hb/PredictiveEngine.h"

#include "support/Watermarks.h"

#include <algorithm>
#include <cassert>

using namespace wr;

void PredictiveEngine::onOperationCreated(OpId Op, const Operation &Meta) {
  (void)Op;
  (void)Meta;
  assert(Op == Clocks.size() + 1 && "operations must arrive in id order");
  Clocks.emplace_back();
  Preds.emplace_back();
}

void PredictiveEngine::onHbEdge(OpId From, OpId To, HbRule Rule) {
  assert(From != InvalidOpId && To != InvalidOpId && From < To &&
         "HB edges must point from an older to a newer operation");
  assert(To <= Clocks.size() && "edge targets an unknown operation");
  assert(Finalized < To && "in-edges must precede clock finalization");
  if (!keepEdge(From, To, Rule)) {
    ++DroppedEdges;
    return;
  }
  std::vector<OpId> &In = Preds[To - 1];
  if (std::find(In.begin(), In.end(), From) == In.end())
    In.push_back(From);
}

void PredictiveEngine::joinInto(std::vector<uint32_t> &Dst,
                                const std::vector<uint32_t> &Src) {
  if (&Dst == &Src)
    return; // Self-join is a no-op (and would violate no-overlap).
  if (Src.size() > Dst.size())
    Dst.resize(Src.size(), 0);
  support::watermarksJoinMax(Dst.data(), Src.data(), Src.size());
}

void PredictiveEngine::finalizeThrough(OpId Op) const {
  assert(Op <= Clocks.size() && "access names an unknown operation");
  for (OpId Cur = Finalized + 1; Cur <= Op; ++Cur) {
    OpClock &C = Clocks[Cur - 1];
    // Greedy chain packing, mirroring HbGraph: the first predecessor (in
    // edge order) that is still its chain's tail donates its chain.
    uint32_t Chain = static_cast<uint32_t>(ChainTails.size());
    uint32_t Pos = 1;
    for (OpId P : Preds[Cur - 1]) {
      const OpClock &PC = Clocks[P - 1];
      if (ChainTails[PC.Chain] == P) {
        Chain = PC.Chain;
        Pos = PC.Pos + 1;
        break;
      }
    }
    if (Chain == ChainTails.size())
      ChainTails.push_back(Cur);
    else
      ChainTails[Chain] = Cur;
    C.Chain = Chain;
    C.Pos = Pos;
    for (OpId P : Preds[Cur - 1])
      joinInto(C.Clock, Clocks[P - 1].Clock);
    if (C.Clock.size() <= Chain)
      C.Clock.resize(Chain + 1, 0);
    C.Clock[Chain] = Pos;
  }
  Finalized = std::max(Finalized, Op);
}

void PredictiveEngine::onMemoryAccess(const Access &A) {
  assert(A.Op != InvalidOpId && "access without an operation");
  finalizeThrough(A.Op);
  OpClock &C = Clocks[A.Op - 1];
  if (A.Kind == AccessKind::Read) {
    // Write-read edge: the reader observes the last writer's value, so
    // in every schedule this order admits, that write stays before this
    // read - join the last-write clock.
    auto It = LastWriteClock.find(A.Loc);
    if (It != LastWriteClock.end())
      joinInto(C.Clock, It->second);
    return;
  }
  LastWriteClock[A.Loc] = C.Clock;
}

Ordering PredictiveEngine::ordering(OpId A, OpId B) const {
  assert(A != InvalidOpId && B != InvalidOpId && A != B &&
         "ordering() requires two distinct valid operations");
  // The driver asks about an access's operation before that access
  // reaches onMemoryAccess (check-then-update), so queries finalize
  // lazily, exactly like HbGraph's clock index.
  finalizeThrough(std::max(A, B));
  // Write-read joins can order a higher id before a lower one (an op
  // created later may run earlier), so unlike HbGraph both directions
  // must be probed. Both cannot hold: trace order is acyclic.
  const OpClock &CA = Clocks[A - 1];
  const OpClock &CB = Clocks[B - 1];
  if (CA.Chain < CB.Clock.size() && CB.Clock[CA.Chain] >= CA.Pos)
    return Ordering::Before;
  if (CB.Chain < CA.Clock.size() && CA.Clock[CB.Chain] >= CB.Pos)
    return Ordering::After;
  return Ordering::Concurrent;
}

void WcpEngine::primeAccess(OpId Op, LocId Loc, AccessKind Kind) {
  assert(Op != InvalidOpId && "access without an operation");
  if (Op > Footprint.size())
    Footprint.resize(Op);
  Footprint[Op - 1][Loc] |= Kind == AccessKind::Write ? 2 : 1;
}

bool WcpEngine::conflicting(OpId A, OpId B) const {
  if (A > Footprint.size() || B > Footprint.size())
    return false;
  const auto &FA = Footprint[A - 1];
  const auto &FB = Footprint[B - 1];
  const auto &Small = FA.size() <= FB.size() ? FA : FB;
  const auto &Large = FA.size() <= FB.size() ? FB : FA;
  for (const auto &[Loc, Mask] : Small) {
    auto It = Large.find(Loc);
    if (It != Large.end() && (Mask | It->second) & 2)
      return true;
  }
  return false;
}

void WcpEngine::onOperationCreated(OpId Op, const Operation &Meta) {
  PredictiveEngine::onOperationCreated(Op, Meta);
  IntervalCb.push_back(Meta.Kind == OperationKind::IntervalCallback);
}

void WcpEngine::onHbEdge(OpId From, OpId To, HbRule Rule) {
  if (Rule != HbRule::R17_SetInterval) {
    PredictiveEngine::onHbEdge(From, To, Rule);
    return;
  }
  // Carry the registration op down the rule-17 chain: caller -> cb_0
  // names it directly, cb_i -> cb_{i+1} inherits cb_i's.
  OpId Creator = From;
  if (isIntervalCb(From)) {
    auto It = IntervalCreator.find(From);
    Creator = It != IntervalCreator.end() ? It->second : InvalidOpId;
  }
  if (Creator != InvalidOpId)
    IntervalCreator[To] = Creator;
  uint64_t Before = droppedEdges();
  PredictiveEngine::onHbEdge(From, To, Rule);
  // A dropped chain edge models reordering the two callbacks, not
  // detaching the later one from its registration - substitute the
  // creation edge (keepEdge always keeps it: Creator is no interval
  // callback).
  if (droppedEdges() != Before && Creator != InvalidOpId && Creator != From)
    PredictiveEngine::onHbEdge(Creator, To, HbRule::R17_SetInterval);
}

bool WcpEngine::keepEdge(OpId From, OpId To, HbRule Rule) {
  if (Rule == HbRule::R9_DispatchOrder)
    return conflicting(From, To);
  // Rule 17: only the cb_i -> cb_{i+1} chain edges weaken; the
  // caller -> cb_0 creation edge is causal and always kept.
  if (Rule == HbRule::R17_SetInterval && isIntervalCb(From))
    return conflicting(From, To);
  return true;
}

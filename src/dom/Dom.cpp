//===- dom/Dom.cpp - DOM tree ----------------------------------------------===//

#include "dom/Dom.h"

#include "support/StringUtils.h"

#include <algorithm>

using namespace wr;

Node::~Node() = default;

int Node::indexOf(const Node *Child) const {
  for (size_t I = 0; I < Children.size(); ++I)
    if (Children[I] == Child)
      return static_cast<int>(I);
  return -1;
}

bool Element::hasAttribute(std::string_view Name) const {
  std::string Lower = toLower(Name);
  for (const Attribute &A : Attrs)
    if (A.Name == Lower)
      return true;
  return false;
}

std::string Element::getAttribute(std::string_view Name) const {
  std::string Lower = toLower(Name);
  for (const Attribute &A : Attrs)
    if (A.Name == Lower)
      return A.Value;
  return std::string();
}

void Element::setAttribute(std::string_view Name, std::string_view Value) {
  std::string Lower = toLower(Name);
  for (Attribute &A : Attrs) {
    if (A.Name == Lower) {
      A.Value = std::string(Value);
      return;
    }
  }
  Attrs.push_back({std::move(Lower), std::string(Value)});
}

void Element::removeAttribute(std::string_view Name) {
  std::string Lower = toLower(Name);
  Attrs.erase(std::remove_if(Attrs.begin(), Attrs.end(),
                             [&](const Attribute &A) {
                               return A.Name == Lower;
                             }),
              Attrs.end());
}

bool Element::isVoidTag() const {
  static const char *const VoidTags[] = {
      "area", "base", "br",    "col",   "embed",  "hr",    "img",
      "input", "link", "meta", "param", "source", "track", "wbr"};
  for (const char *T : VoidTags)
    if (Tag == T)
      return true;
  return false;
}

Document::Document(DocumentId Doc, uint32_t &NextNodeIdRef)
    : Node(NodeKind::Document, NextNodeIdRef++, nullptr), DocId(Doc),
      NextNodeId(NextNodeIdRef) {
  Owner = this; // A document is its own owner.
  // Synthesize the html/head/body skeleton so scripts can always reach
  // document.body even on fragments.
  Root = createElement("html");
  Head = createElement("head");
  Body = createElement("body");
  InDoc = true;
  std::vector<Element *> Ignored;
  Children.push_back(Root);
  Root->Parent = this;
  setInDocumentRecursive(Root, true, Ignored);
  Root->Children.push_back(Head);
  Head->Parent = Root;
  setInDocumentRecursive(Head, true, Ignored);
  Root->Children.push_back(Body);
  Body->Parent = Root;
  setInDocumentRecursive(Body, true, Ignored);
}

Document::~Document() = default;

Element *Document::createElement(std::string_view Tag) {
  auto *E = new Element(NextNodeId++, this, toLower(Tag));
  OwnedNodes.emplace_back(E);
  return E;
}

Text *Document::createTextNode(std::string_view Data) {
  auto *T = new Text(NextNodeId++, this, std::string(Data));
  OwnedNodes.emplace_back(T);
  return T;
}

Element *Document::getElementById(std::string_view Id) const {
  if (Id.empty())
    return nullptr;
  std::vector<Element *> All = allElements();
  for (Element *E : All)
    if (E->getAttribute("id") == Id)
      return E;
  return nullptr;
}

std::vector<Element *>
Document::getElementsByTagName(std::string_view Tag) const {
  std::string Lower = toLower(Tag);
  std::vector<Element *> Result;
  for (Element *E : allElements())
    if (Lower == "*" || E->tagName() == Lower)
      Result.push_back(E);
  return Result;
}

std::vector<Element *>
Document::getElementsByName(std::string_view Name) const {
  std::vector<Element *> Result;
  for (Element *E : allElements())
    if (E->getAttribute("name") == Name)
      Result.push_back(E);
  return Result;
}

std::vector<Element *> Document::allElements() const {
  std::vector<Element *> Result;
  collectElements(this, Result);
  return Result;
}

void Document::collectElements(const Node *N,
                               std::vector<Element *> &Out) const {
  for (Node *Child : N->children()) {
    if (auto *E = dyn_cast<Element>(Child))
      Out.push_back(E);
    collectElements(Child, Out);
  }
}

void Document::setInDocumentRecursive(Node *N, bool In,
                                      std::vector<Element *> &Affected) {
  if (N->InDoc != In) {
    N->InDoc = In;
    if (auto *E = dyn_cast<Element>(N))
      Affected.push_back(E);
  }
  for (Node *Child : N->Children)
    setInDocumentRecursive(Child, In, Affected);
}

bool Document::isAncestorOrSelf(const Node *MaybeAncestor,
                                const Node *N) const {
  for (const Node *Walk = N; Walk; Walk = Walk->parent())
    if (Walk == MaybeAncestor)
      return true;
  return false;
}

MutationResult Document::insertBefore(Node *Parent, Node *Child, Node *Ref) {
  MutationResult Result;
  if (!Parent || !Child) {
    Result.Ok = false;
    Result.Error = "null node in insertBefore";
    return Result;
  }
  if (isAncestorOrSelf(Child, Parent)) {
    Result.Ok = false;
    Result.Error = "cannot insert a node under itself";
    return Result;
  }
  // Detach from the old parent first (moving an element, Sec. 7 notes this
  // is debatable as a race; we follow the paper and treat the re-insertion
  // as a write).
  if (Node *OldParent = Child->Parent) {
    auto &Siblings = OldParent->Children;
    Siblings.erase(std::remove(Siblings.begin(), Siblings.end(), Child),
                   Siblings.end());
    Child->Parent = nullptr;
  }
  auto &Kids = Parent->Children;
  if (Ref) {
    auto It = std::find(Kids.begin(), Kids.end(), Ref);
    if (It == Kids.end()) {
      Result.Ok = false;
      Result.Error = "reference node is not a child";
      return Result;
    }
    Kids.insert(It, Child);
  } else {
    Kids.push_back(Child);
  }
  Child->Parent = Parent;
  setInDocumentRecursive(Child, Parent->InDoc, Result.AffectedElements);
  // Even when the subtree was already attached (a move), report the moved
  // element itself so the caller can model the write.
  if (Result.AffectedElements.empty())
    if (auto *E = dyn_cast<Element>(Child))
      Result.AffectedElements.push_back(E);
  return Result;
}

MutationResult Document::appendChild(Node *Parent, Node *Child) {
  return insertBefore(Parent, Child, nullptr);
}

MutationResult Document::removeChild(Node *Parent, Node *Child) {
  MutationResult Result;
  if (!Parent || !Child || Child->Parent != Parent) {
    Result.Ok = false;
    Result.Error = "node is not a child of parent";
    return Result;
  }
  auto &Kids = Parent->Children;
  Kids.erase(std::remove(Kids.begin(), Kids.end(), Child), Kids.end());
  Child->Parent = nullptr;
  setInDocumentRecursive(Child, false, Result.AffectedElements);
  if (Result.AffectedElements.empty())
    if (auto *E = dyn_cast<Element>(Child))
      Result.AffectedElements.push_back(E);
  return Result;
}

//===- dom/Dom.h - DOM tree ---------------------------------------*- C++ -*-===//
//
// Part of the WebRacer reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A DOM tree: documents, elements, text nodes, attributes, and the
/// mutation API (appendChild / insertBefore / removeChild). This substrate
/// replaces WebKit's DOM for the purposes of the paper's logical
/// HTML-element locations (Sec. 4.2): inserting or removing an element is a
/// write of that element; lookups read it.
///
/// The DOM layer is analysis-free: the runtime's JS bindings instrument
/// accesses around these primitives.
///
//===----------------------------------------------------------------------===//

#ifndef WEBRACER_DOM_DOM_H
#define WEBRACER_DOM_DOM_H

#include "mem/Location.h"

#include <cassert>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace wr {

class Document;
class Element;

/// Discriminator for the Node hierarchy (LLVM-style RTTI via classof).
enum class NodeKind : uint8_t { Document, Element, Text };

/// Base class of all DOM nodes.
class Node {
public:
  virtual ~Node();

  NodeKind kind() const { return Kind; }
  NodeId id() const { return Id; }
  Document *ownerDocument() const { return Owner; }
  Node *parent() const { return Parent; }
  const std::vector<Node *> &children() const { return Children; }

  /// True once the node is attached under its document's root. HTML races
  /// (Sec. 2.3) are exactly accesses racing with this flag flipping.
  bool inDocument() const { return InDoc; }

  /// True if the node was created by the HTML parser (a *static* element in
  /// the paper's terminology) rather than by script.
  bool isStatic() const { return Static; }
  void setStatic(bool S) { Static = S; }

  /// Index of \p Child within our child list; -1 if absent.
  int indexOf(const Node *Child) const;

protected:
  Node(NodeKind K, NodeId Id, Document *Owner)
      : Kind(K), Id(Id), Owner(Owner) {}

private:
  friend class Document;

  NodeKind Kind;
  NodeId Id;
  Document *Owner;
  Node *Parent = nullptr;
  std::vector<Node *> Children;
  bool InDoc = false;
  bool Static = false;
};

/// A text node.
class Text final : public Node {
public:
  static bool classof(const Node *N) { return N->kind() == NodeKind::Text; }

  const std::string &data() const { return Data; }
  void setData(std::string D) { Data = std::move(D); }

private:
  friend class Document;
  Text(NodeId Id, Document *Owner, std::string D)
      : Node(NodeKind::Text, Id, Owner), Data(std::move(D)) {}

  std::string Data;
};

/// One attribute, order-preserving.
struct Attribute {
  std::string Name; ///< Lowercased.
  std::string Value;
};

/// An element node.
class Element final : public Node {
public:
  static bool classof(const Node *N) {
    return N->kind() == NodeKind::Element;
  }

  const std::string &tagName() const { return Tag; }

  bool hasAttribute(std::string_view Name) const;
  /// Returns the attribute value or "" if absent.
  std::string getAttribute(std::string_view Name) const;
  void setAttribute(std::string_view Name, std::string_view Value);
  void removeAttribute(std::string_view Name);
  const std::vector<Attribute> &attributes() const { return Attrs; }

  /// The element's id attribute ("" if none).
  std::string idAttr() const { return getAttribute("id"); }

  /// Form-field state (input/textarea): the user-visible value. Mirrors
  /// the DOM `value` IDL attribute the paper's Fig. 2 race is about.
  const std::string &formValue() const { return FormValue; }
  void setFormValue(std::string V) { FormValue = std::move(V); }
  bool isChecked() const { return Checked; }
  void setChecked(bool C) { Checked = C; }

  /// True for tags that never have children (<img>, <input>, <br>, ...).
  bool isVoidTag() const;

private:
  friend class Document;
  Element(NodeId Id, Document *Owner, std::string Tag)
      : Node(NodeKind::Element, Id, Owner), Tag(std::move(Tag)) {}

  std::string Tag; ///< Lowercased.
  std::vector<Attribute> Attrs;
  std::string FormValue;
  bool Checked = false;
};

/// Result of a mutation: the set of elements whose in-document status
/// changed (the mutated node and its descendants), in tree order. The
/// runtime turns each into an HtmlElemLoc write (Sec. 4.2: dynamic
/// insertion of an element also inserts all of its children).
struct MutationResult {
  std::vector<Element *> AffectedElements;
  bool Ok = true;
  std::string Error;
};

/// A document: owns its nodes and provides lookups and mutations.
class Document final : public Node {
public:
  static bool classof(const Node *N) {
    return N->kind() == NodeKind::Document;
  }

  /// Creates a document. \p Doc is its stable id; \p NextNodeId is a shared
  /// counter so node ids are unique across all documents of one browser.
  Document(DocumentId Doc, uint32_t &NextNodeId);
  ~Document() override;

  DocumentId documentId() const { return DocId; }

  /// The synthetic root <html> element (always present, in-document).
  Element *documentElement() const { return Root; }
  /// The <body> element (always present).
  Element *body() const { return Body; }
  /// The <head> element (always present).
  Element *head() const { return Head; }

  /// Node factories. Created nodes are owned by the document and start
  /// detached (not in the document).
  Element *createElement(std::string_view Tag);
  Text *createTextNode(std::string_view Data);

  /// First in-document element with the given id, in tree order.
  Element *getElementById(std::string_view Id) const;
  /// All in-document elements with the given tag, in tree order. "*"
  /// matches every element.
  std::vector<Element *> getElementsByTagName(std::string_view Tag) const;
  /// All in-document elements whose name attribute matches.
  std::vector<Element *> getElementsByName(std::string_view Name) const;

  /// Appends \p Child as last child of \p Parent (moving it if attached
  /// elsewhere).
  MutationResult appendChild(Node *Parent, Node *Child);
  /// Inserts \p Child before \p Ref under \p Parent (\p Ref null = append).
  MutationResult insertBefore(Node *Parent, Node *Child, Node *Ref);
  /// Detaches \p Child from \p Parent.
  MutationResult removeChild(Node *Parent, Node *Child);

  /// All in-document elements in tree order.
  std::vector<Element *> allElements() const;

  /// Total nodes created in this document.
  size_t numNodes() const { return OwnedNodes.size(); }

private:
  void collectElements(const Node *N, std::vector<Element *> &Out) const;
  static void setInDocumentRecursive(Node *N, bool In,
                                     std::vector<Element *> &Affected);
  bool isAncestorOrSelf(const Node *MaybeAncestor, const Node *N) const;

  DocumentId DocId;
  uint32_t &NextNodeId;
  std::vector<std::unique_ptr<Node>> OwnedNodes;
  Element *Root = nullptr;
  Element *Head = nullptr;
  Element *Body = nullptr;
};

/// LLVM-style isa/cast helpers for the small Node hierarchy.
template <typename T> bool isa(const Node *N) { return T::classof(N); }

template <typename T> T *cast(Node *N) {
  assert(N && T::classof(N) && "cast to wrong node kind");
  return static_cast<T *>(N);
}

template <typename T> const T *cast(const Node *N) {
  assert(N && T::classof(N) && "cast to wrong node kind");
  return static_cast<const T *>(N);
}

template <typename T> T *dyn_cast(Node *N) {
  return (N && T::classof(N)) ? static_cast<T *>(N) : nullptr;
}

template <typename T> const T *dyn_cast(const Node *N) {
  return (N && T::classof(N)) ? static_cast<const T *>(N) : nullptr;
}

} // namespace wr

#endif // WEBRACER_DOM_DOM_H

//===- html/Tokenizer.cpp - HTML tokenizer ----------------------------------===//

#include "html/Tokenizer.h"

#include "support/StringUtils.h"

#include <cctype>

using namespace wr;
using namespace wr::html;

std::string HtmlToken::attr(std::string_view Name) const {
  std::string Lower = toLower(Name);
  for (const auto &[AttrName, AttrValue] : Attrs)
    if (AttrName == Lower)
      return AttrValue;
  return std::string();
}

bool HtmlToken::hasAttr(std::string_view Name) const {
  std::string Lower = toLower(Name);
  for (const auto &[AttrName, AttrValue] : Attrs)
    if (AttrName == Lower)
      return true;
  return false;
}

Tokenizer::Tokenizer(std::string Source) : Source(std::move(Source)) {}

char Tokenizer::peek(size_t Ahead) const {
  return Pos + Ahead < Source.size() ? Source[Pos + Ahead] : '\0';
}

void Tokenizer::advance(size_t N) { Pos = std::min(Pos + N, Source.size()); }

bool Tokenizer::startsWithAt(std::string_view Prefix) const {
  if (Pos + Prefix.size() > Source.size())
    return false;
  for (size_t I = 0; I < Prefix.size(); ++I) {
    char C = static_cast<char>(
        std::tolower(static_cast<unsigned char>(Source[Pos + I])));
    if (C != Prefix[I])
      return false;
  }
  return true;
}

HtmlToken Tokenizer::lexRawText() {
  // Scan for </endtag (case-insensitive).
  std::string Close = "</" + RawTextEndTag;
  size_t Start = Pos;
  while (Pos < Source.size()) {
    if (peek() == '<' && startsWithAt(Close)) {
      // Must be followed by whitespace, '>', or '/'.
      char After = Pos + Close.size() < Source.size()
                       ? Source[Pos + Close.size()]
                       : '>';
      if (isHtmlSpace(After) || After == '>' || After == '/')
        break;
    }
    advance();
  }
  RawTextEndTag.clear();
  HtmlToken T;
  T.TokKind = HtmlToken::Kind::Text;
  T.Text = Source.substr(Start, Pos - Start);
  return T;
}

HtmlToken Tokenizer::lexComment() {
  advance(4); // <!--
  size_t Start = Pos;
  size_t End = Source.find("-->", Pos);
  HtmlToken T;
  T.TokKind = HtmlToken::Kind::Comment;
  if (End == std::string::npos) {
    T.Text = Source.substr(Start);
    Pos = Source.size();
  } else {
    T.Text = Source.substr(Start, End - Start);
    Pos = End + 3;
  }
  return T;
}

HtmlToken Tokenizer::lexTag() {
  HtmlToken T;
  advance(); // <
  bool IsEnd = peek() == '/';
  if (IsEnd)
    advance();
  T.TokKind = IsEnd ? HtmlToken::Kind::EndTag : HtmlToken::Kind::StartTag;

  // Tag name.
  size_t NameStart = Pos;
  while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '-' ||
         peek() == '_' || peek() == ':')
    advance();
  T.Name = toLower(std::string_view(Source).substr(NameStart,
                                                   Pos - NameStart));

  // Attributes.
  for (;;) {
    while (isHtmlSpace(peek()))
      advance();
    char C = peek();
    if (C == '\0') {
      break;
    }
    if (C == '>') {
      advance();
      break;
    }
    if (C == '/' && peek(1) == '>') {
      T.SelfClosing = true;
      advance(2);
      break;
    }
    if (C == '/') {
      advance();
      continue;
    }
    // Attribute name.
    size_t AttrStart = Pos;
    while (peek() != '\0' && !isHtmlSpace(peek()) && peek() != '=' &&
           peek() != '>' && peek() != '/')
      advance();
    std::string Name = toLower(
        std::string_view(Source).substr(AttrStart, Pos - AttrStart));
    if (Name.empty()) {
      advance(); // Garbage byte; skip.
      continue;
    }
    while (isHtmlSpace(peek()))
      advance();
    std::string ValueStr;
    if (peek() == '=') {
      advance();
      while (isHtmlSpace(peek()))
        advance();
      char Quote = peek();
      if (Quote == '"' || Quote == '\'') {
        advance();
        size_t ValueStart = Pos;
        while (peek() != '\0' && peek() != Quote)
          advance();
        ValueStr = Source.substr(ValueStart, Pos - ValueStart);
        if (peek() == Quote)
          advance();
      } else {
        size_t ValueStart = Pos;
        while (peek() != '\0' && !isHtmlSpace(peek()) && peek() != '>')
          advance();
        ValueStr = Source.substr(ValueStart, Pos - ValueStart);
      }
    }
    T.Attrs.emplace_back(std::move(Name), std::move(ValueStr));
  }

  // Raw-text elements swallow their content verbatim.
  if (T.TokKind == HtmlToken::Kind::StartTag && !T.SelfClosing &&
      (T.Name == "script" || T.Name == "style"))
    RawTextEndTag = T.Name;
  return T;
}

HtmlToken Tokenizer::next() {
  if (!RawTextEndTag.empty())
    return lexRawText();
  if (Pos >= Source.size()) {
    HtmlToken T;
    T.TokKind = HtmlToken::Kind::Eof;
    return T;
  }
  if (peek() == '<') {
    if (startsWithAt("<!--"))
      return lexComment();
    if (peek(1) == '!') {
      // Doctype or bogus declaration: skip to '>'.
      size_t End = Source.find('>', Pos);
      HtmlToken T;
      T.TokKind = HtmlToken::Kind::Doctype;
      if (End == std::string::npos) {
        Pos = Source.size();
      } else {
        T.Text = Source.substr(Pos + 2, End - Pos - 2);
        Pos = End + 1;
      }
      return T;
    }
    if (std::isalpha(static_cast<unsigned char>(peek(1))) ||
        (peek(1) == '/' &&
         std::isalpha(static_cast<unsigned char>(peek(2)))))
      return lexTag();
    // Literal '<' in text.
  }
  size_t Start = Pos;
  while (Pos < Source.size()) {
    if (peek() == '<' &&
        (startsWithAt("<!--") || peek(1) == '!' ||
         std::isalpha(static_cast<unsigned char>(peek(1))) ||
         (peek(1) == '/' &&
          std::isalpha(static_cast<unsigned char>(peek(2))))))
      break;
    advance();
  }
  HtmlToken T;
  T.TokKind = HtmlToken::Kind::Text;
  T.Text = Source.substr(Start, Pos - Start);
  return T;
}

std::vector<HtmlToken> Tokenizer::tokenizeAll(std::string Source) {
  Tokenizer Tok(std::move(Source));
  std::vector<HtmlToken> Tokens;
  for (;;) {
    Tokens.push_back(Tok.next());
    if (Tokens.back().TokKind == HtmlToken::Kind::Eof)
      break;
  }
  return Tokens;
}

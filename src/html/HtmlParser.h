//===- html/HtmlParser.h - Incremental HTML tree builder --------*- C++ -*-===//
//
// Part of the WebRacer reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An *incremental* HTML parser: the page loader pumps it one step at a
/// time, interleaving parsing with script execution exactly as browsers do
/// during page load (the root cause of the partial-page-rendering races in
/// the paper's Sec. 2.1). Each ElementOpened step corresponds to one
/// parse(E) operation; elements are inserted at their opening tag, so the
/// paper's "E1 precedes E2" syntactic order equals step order.
///
//===----------------------------------------------------------------------===//

#ifndef WEBRACER_HTML_HTMLPARSER_H
#define WEBRACER_HTML_HTMLPARSER_H

#include "dom/Dom.h"
#include "html/Tokenizer.h"

#include <string>
#include <vector>

namespace wr::html {

/// The script flavors of Sec. 3.1. Asynchronous/deferred scripts must be
/// external; a script with a body and a src keeps the src (browser
/// behavior).
enum class ScriptKind : uint8_t {
  Inline,
  SyncExternal,
  AsyncExternal,
  DeferredExternal,
};

/// Classifies a <script> element from its attributes.
ScriptKind classifyScript(const Element *Script);

/// One parser pump result.
struct ParseStep {
  enum class Kind : uint8_t {
    /// A new element was created and inserted (its opening tag was
    /// consumed). This is the parse(E) operation.
    ElementOpened,
    /// A <script> element completed (its content, if inline, is in Text).
    /// The loader must now execute or schedule it per its ScriptKind.
    ScriptComplete,
    /// An element's end tag was consumed.
    ElementClosed,
    /// Text content was appended (no operation of its own).
    TextAdded,
    /// Input exhausted.
    Finished,
  };

  Kind StepKind = Kind::Finished;
  Element *Elem = nullptr;
  std::string Text; ///< Inline script source for ScriptComplete.
};

/// Streaming tree builder over one document (or fragment).
class HtmlParser {
public:
  /// Parses \p Source into \p Doc, inserting under \p Root (defaults to
  /// the document body). \p MarkStatic tags created elements as static
  /// (parser-created); fragment parsing via innerHTML passes false.
  HtmlParser(Document &Doc, std::string Source, Node *Root = nullptr,
             bool MarkStatic = true);

  /// Consumes input until it can report the next interesting step.
  ParseStep pump();

  /// True once pump() returned Finished.
  bool finished() const { return Done; }

  /// Convenience: parses a complete fragment synchronously, ignoring
  /// scripts' execution (used by innerHTML). Returns the elements opened,
  /// in order.
  static std::vector<Element *> parseFragment(Document &Doc, Node *Root,
                                              std::string Source);

private:
  Node *insertionPoint();

  Document &Doc;
  Tokenizer Tok;
  std::vector<Element *> OpenStack;
  Node *Root;
  bool MarkStatic;
  bool Done = false;
  Element *PendingScript = nullptr; ///< Open <script> awaiting its body.
  std::string PendingScriptText;
};

} // namespace wr::html

#endif // WEBRACER_HTML_HTMLPARSER_H

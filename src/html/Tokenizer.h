//===- html/Tokenizer.h - HTML tokenizer ------------------------*- C++ -*-===//
//
// Part of the WebRacer reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A forgiving HTML tokenizer: start/end tags with quoted, unquoted, and
/// bare attributes, text, comments, and doctype. Raw-text elements
/// (<script>, <style>) capture their content verbatim until the matching
/// close tag, which is what lets inline scripts contain '<'.
///
//===----------------------------------------------------------------------===//

#ifndef WEBRACER_HTML_TOKENIZER_H
#define WEBRACER_HTML_TOKENIZER_H

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace wr::html {

/// One HTML token.
struct HtmlToken {
  enum class Kind : uint8_t {
    StartTag,
    EndTag,
    Text,
    Comment,
    Doctype,
    Eof,
  };

  Kind TokKind = Kind::Eof;
  std::string Name; ///< Lowercased tag name.
  std::vector<std::pair<std::string, std::string>> Attrs; ///< Lowercased
                                                          ///< names.
  std::string Text;       ///< Text/comment payload; raw text for script.
  bool SelfClosing = false;

  /// First attribute value by (lowercased) name; "" if missing.
  std::string attr(std::string_view Name) const;
  bool hasAttr(std::string_view Name) const;
};

/// Streaming HTML tokenizer.
class Tokenizer {
public:
  explicit Tokenizer(std::string Source);

  /// Returns the next token. After a <script>/<style> start tag the
  /// tokenizer automatically switches to raw-text mode and the following
  /// Text token carries everything up to the matching end tag.
  HtmlToken next();

  /// Tokenizes everything (testing helper).
  static std::vector<HtmlToken> tokenizeAll(std::string Source);

private:
  char peek(size_t Ahead = 0) const;
  void advance(size_t N = 1);
  bool startsWithAt(std::string_view Prefix) const;
  HtmlToken lexTag();
  HtmlToken lexComment();
  HtmlToken lexRawText();

  std::string Source;
  size_t Pos = 0;
  std::string RawTextEndTag; ///< Non-empty while in raw-text mode.
};

} // namespace wr::html

#endif // WEBRACER_HTML_TOKENIZER_H

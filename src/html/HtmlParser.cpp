//===- html/HtmlParser.cpp - Incremental HTML tree builder ------------------===//

#include "html/HtmlParser.h"

#include "support/StringUtils.h"

using namespace wr;
using namespace wr::html;

ScriptKind wr::html::classifyScript(const Element *Script) {
  bool External = Script->hasAttribute("src") &&
                  !Script->getAttribute("src").empty();
  if (!External)
    return ScriptKind::Inline;
  auto IsTruthy = [&](const char *Name) {
    if (!Script->hasAttribute(Name))
      return false;
    std::string V = toLower(Script->getAttribute(Name));
    return V != "false" && V != "0" && V != "off";
  };
  // A script cannot be both async and defer; async wins (HTML5).
  if (IsTruthy("async"))
    return ScriptKind::AsyncExternal;
  if (IsTruthy("defer"))
    return ScriptKind::DeferredExternal;
  return ScriptKind::SyncExternal;
}

HtmlParser::HtmlParser(Document &Doc, std::string Source, Node *Root,
                       bool MarkStatic)
    : Doc(Doc), Tok(std::move(Source)), Root(Root ? Root : Doc.body()),
      MarkStatic(MarkStatic) {}

Node *HtmlParser::insertionPoint() {
  return OpenStack.empty() ? Root : OpenStack.back();
}

ParseStep HtmlParser::pump() {
  ParseStep Step;
  if (Done) {
    Step.StepKind = ParseStep::Kind::Finished;
    return Step;
  }
  for (;;) {
    HtmlToken T = Tok.next();
    switch (T.TokKind) {
    case HtmlToken::Kind::Eof:
      Done = true;
      if (PendingScript) {
        // Unterminated script: complete it with what we have.
        Step.StepKind = ParseStep::Kind::ScriptComplete;
        Step.Elem = PendingScript;
        Step.Text = PendingScriptText;
        if (!PendingScriptText.empty()) {
          Text *Body = Doc.createTextNode(PendingScriptText);
          Body->setStatic(MarkStatic);
          Doc.appendChild(PendingScript, Body);
        }
        PendingScriptText.clear();
        PendingScript = nullptr;
        return Step;
      }
      Step.StepKind = ParseStep::Kind::Finished;
      return Step;

    case HtmlToken::Kind::Comment:
    case HtmlToken::Kind::Doctype:
      continue;

    case HtmlToken::Kind::Text: {
      if (PendingScript) {
        PendingScriptText += T.Text;
        continue;
      }
      std::string_view Trimmed = trim(T.Text);
      if (Trimmed.empty())
        continue;
      Text *TextNode = Doc.createTextNode(T.Text);
      TextNode->setStatic(MarkStatic);
      Doc.appendChild(insertionPoint(), TextNode);
      Step.StepKind = ParseStep::Kind::TextAdded;
      Step.Text = std::string(Trimmed);
      return Step;
    }

    case HtmlToken::Kind::StartTag: {
      // html/head/body map onto the synthesized skeleton. head/body are
      // reported as ElementOpened so the loader sees their attributes
      // (e.g. <body onload=...>), but they are already inserted.
      if (T.Name == "html" || T.Name == "head" || T.Name == "body") {
        Element *Skeleton = T.Name == "html"   ? Doc.documentElement()
                            : T.Name == "head" ? Doc.head()
                                               : Doc.body();
        for (const auto &[Name, ValueStr] : T.Attrs)
          Skeleton->setAttribute(Name, ValueStr);
        if (T.Name == "head" || T.Name == "body") {
          OpenStack.clear();
          OpenStack.push_back(Skeleton);
          Step.StepKind = ParseStep::Kind::ElementOpened;
          Step.Elem = Skeleton;
          return Step;
        }
        continue;
      }
      Element *E = Doc.createElement(T.Name);
      E->setStatic(MarkStatic);
      for (const auto &[Name, ValueStr] : T.Attrs)
        E->setAttribute(Name, ValueStr);
      Doc.appendChild(insertionPoint(), E);
      bool IsVoid = E->isVoidTag() || T.SelfClosing;
      if (!IsVoid)
        OpenStack.push_back(E);
      if (T.Name == "script" && !IsVoid) {
        PendingScript = E;
        PendingScriptText.clear();
      }
      Step.StepKind = ParseStep::Kind::ElementOpened;
      Step.Elem = E;
      return Step;
    }

    case HtmlToken::Kind::EndTag: {
      if (T.Name == "html" || T.Name == "head" || T.Name == "body") {
        if (T.Name == "head") {
          OpenStack.clear();
          OpenStack.push_back(Doc.body());
        } else {
          OpenStack.clear();
        }
        continue;
      }
      // Pop to the matching open element (forgiving recovery).
      Element *Closed = nullptr;
      for (size_t I = OpenStack.size(); I > 0; --I) {
        if (OpenStack[I - 1]->tagName() == T.Name) {
          Closed = OpenStack[I - 1];
          OpenStack.resize(I - 1);
          break;
        }
      }
      if (!Closed)
        continue; // Stray end tag.
      if (Closed == PendingScript) {
        Step.StepKind = ParseStep::Kind::ScriptComplete;
        Step.Elem = PendingScript;
        Step.Text = PendingScriptText;
        // Keep the source as a child Text node so the element is
        // self-describing (innerHTML, dynamic re-execution).
        if (!PendingScriptText.empty()) {
          Text *Body = Doc.createTextNode(PendingScriptText);
          Body->setStatic(MarkStatic);
          Doc.appendChild(PendingScript, Body);
        }
        PendingScriptText.clear();
        PendingScript = nullptr;
        return Step;
      }
      Step.StepKind = ParseStep::Kind::ElementClosed;
      Step.Elem = Closed;
      return Step;
    }
    }
  }
}

std::vector<Element *> HtmlParser::parseFragment(Document &Doc, Node *Root,
                                                 std::string Source) {
  HtmlParser P(Doc, std::move(Source), Root, /*MarkStatic=*/false);
  std::vector<Element *> Opened;
  for (;;) {
    ParseStep Step = P.pump();
    if (Step.StepKind == ParseStep::Kind::Finished)
      break;
    if (Step.StepKind == ParseStep::Kind::ElementOpened)
      Opened.push_back(Step.Elem);
  }
  return Opened;
}

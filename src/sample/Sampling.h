//===- sample/Sampling.h - Access-stream sampling layer ---------*- C++ -*-===//
//
// Part of the WebRacer reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The production-overhead sampling layer: a per-access gate in front of
/// the race detector that decides which accesses the detector sees. The
/// paper's Sec. 6 bottleneck is instrumentation overhead (~500x on heavy
/// JavaScript); at fleet scale the question becomes what recall survives
/// when only a fraction of the access stream can be observed
/// ("Dynamic Race Detection with O(1) Samples", PAPERS.md).
///
/// Three strategies:
///
///  * PerLocation - a deterministic hash of the LocId against the rate:
///    a location is entirely in or entirely out, so kept locations see
///    their exact full access history (reader sets and prior-read flags
///    stay exact) and expected recall tracks the rate. The baseline of
///    the frontier.
///  * PerPair - samples the (prior-writer, current-op) pair space, the
///    RPT idea: every pair of a location's access stream gets an
///    independent chance, so hot locations cannot monopolize the budget.
///    Under an epoch-capable oracle the pair is keyed on the two
///    operations' (chain, pos) clock epochs (ClockEpoch::packed()),
///    making keys stable across OpId numbering; otherwise raw OpIds.
///  * Adaptive - cold-region biasing: a location's first ColdAccesses
///    accesses always pass, a location whose read state inflated or
///    which raced gets a HotBudget-access window (decaying per access),
///    and everything else falls back to a rate-biased coin from the
///    sampler's own RNG stream.
///
/// Determinism: the sampler draws randomness only from its own
/// Rng::fork() stream seeded by SamplingOptions::Seed - never from the
/// browser's generator - so site generation and schedules are
/// byte-identical with sampling on or off, and a fixed seed replays the
/// exact drop pattern. Rate 1.0 disables the layer entirely (the
/// detector never constructs a sampler), so full-rate runs are
/// byte-identical to unsampled ones, reports included.
///
/// Soundness: the happens-before graph is built from the full operation
/// and edge stream - sampling gates only the *access* stream - so every
/// race the detector reports is still a genuinely concurrent pair.
/// Sampling can only drop observations (and can shift which witness pair
/// the single-slot algorithm stores); it never invents a race.
///
//===----------------------------------------------------------------------===//

#ifndef WEBRACER_SAMPLE_SAMPLING_H
#define WEBRACER_SAMPLE_SAMPLING_H

#include "hb/HbGraph.h"
#include "mem/Location.h"
#include "support/Rng.h"

#include <cstdint>
#include <vector>

namespace wr::sample {

/// The pluggable sampling strategies (CLI spellings in toString()).
enum class SamplingStrategy : uint8_t { PerLocation, PerPair, Adaptive };

const char *toString(SamplingStrategy S);

/// Parses a CLI spelling; false (leaving \p Out untouched) when \p Name
/// names no strategy.
bool parseSamplingStrategy(const char *Name, SamplingStrategy &Out);

/// Configuration of the sampling layer, threaded through DetectorOptions
/// (and hence SessionOptions / ReplayOptions) and the --sample-* flags.
struct SamplingOptions {
  SamplingStrategy Strategy = SamplingStrategy::Adaptive;
  /// Fraction of the access stream the detector sees, in [0, 1]. 1.0
  /// means the layer is off (enabled() is false, no sampler exists).
  double Rate = 1.0;
  /// Seed of the sampler's private RNG stream (corpus runs mix the
  /// per-site seed in, drawn in corpus order, so reports stay identical
  /// at any --jobs count).
  uint64_t Seed = 1;
  /// Adaptive: a location's first ColdAccesses accesses always pass.
  uint32_t ColdAccesses = 4;
  /// Adaptive: accesses granted by one inflation/race heat event.
  uint32_t HotBudget = 64;

  bool enabled() const { return Rate < 1.0; }
};

/// Every decision the sampler made, by access kind and by the reason an
/// access passed; feeds the wr_sampling report group so attrition is
/// never silent. Invariants: Seen* == Sampled* + Dropped* per kind, and
/// the pass-reason counters sum to SampledReads + SampledWrites.
struct SamplerCounters {
  uint64_t SeenReads = 0;
  uint64_t SeenWrites = 0;
  uint64_t SampledReads = 0;
  uint64_t SampledWrites = 0;
  uint64_t DroppedReads = 0;
  uint64_t DroppedWrites = 0;
  // Pass reasons (which rule admitted a sampled access).
  uint64_t LocationPass = 0; ///< Per-location: the LocId hash passed.
  uint64_t PairPass = 0;     ///< Per-pair: the pair hash passed (or no prior).
  uint64_t ColdPass = 0;     ///< Adaptive: within the first-K cold window.
  uint64_t HotPass = 0;      ///< Adaptive: a hot location's budget passed it.
  uint64_t RngPass = 0;      ///< Adaptive: the background coin passed it.
  uint64_t HotLocations = 0; ///< Adaptive: locations ever marked hot.
};

/// The per-access gate. Owned by RaceDetector when sampling is enabled;
/// the detector consults shouldSample() before any per-access work and
/// feeds heat back through noteInflation()/noteRace().
class AccessSampler {
public:
  explicit AccessSampler(const SamplingOptions &Opts);

  /// Decides whether the detector processes \p A and counts the outcome.
  /// \p PriorWriteOp / \p PriorWriteEpoch describe the operation stored
  /// in the location's last-write slot (InvalidOpId / default epoch when
  /// none); \p CurEpoch is the current op's epoch under an epoch-capable
  /// oracle (default-constructed sentinel otherwise). Only the per-pair
  /// strategy reads them.
  bool shouldSample(const Access &A, OpId PriorWriteOp,
                    ClockEpoch PriorWriteEpoch, ClockEpoch CurEpoch);

  /// Heat feedback: \p Loc's read state inflated (concurrent readers).
  void noteInflation(LocId Loc) { markHot(Loc); }

  /// Heat feedback: \p Loc raced.
  void noteRace(LocId Loc) { markHot(Loc); }

  const SamplerCounters &counters() const { return Counters; }
  const SamplingOptions &options() const { return Opts; }

  /// Structural bytes of the sampler's per-location heat table.
  uint64_t samplerBytes() const;

private:
  /// Per-location adaptive state (indexed by LocId, grown on demand).
  struct LocHeat {
    uint32_t Seen = 0;   ///< Accesses seen, saturating at ColdAccesses.
    uint32_t Budget = 0; ///< Remaining hot-window accesses.
    bool EverHot = false;
  };

  bool decide(const Access &A, OpId PriorWriteOp, ClockEpoch PriorWriteEpoch,
              ClockEpoch CurEpoch);
  LocHeat &heat(LocId Id);
  void markHot(LocId Loc);
  /// Maps a 64-bit hash onto [0, 1) and compares against the rate (the
  /// same 53-bit mapping Rng::nextDouble uses, so a rate of 1.0 would
  /// pass everything and 0.0 nothing).
  bool hashPasses(uint64_t H) const;

  SamplingOptions Opts;
  Rng Stream; ///< The sampler's private stream (adaptive's coin).
  std::vector<LocHeat> Heat;
  SamplerCounters Counters;
};

} // namespace wr::sample

#endif // WEBRACER_SAMPLE_SAMPLING_H

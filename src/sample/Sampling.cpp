//===- sample/Sampling.cpp - Access-stream sampling layer ----------------------===//

#include "sample/Sampling.h"

#include <cstring>

using namespace wr;
using namespace wr::sample;

const char *wr::sample::toString(SamplingStrategy S) {
  switch (S) {
  case SamplingStrategy::PerLocation:
    return "per-location";
  case SamplingStrategy::PerPair:
    return "per-pair";
  case SamplingStrategy::Adaptive:
    return "adaptive";
  }
  return "unknown";
}

bool wr::sample::parseSamplingStrategy(const char *Name,
                                       SamplingStrategy &Out) {
  if (std::strcmp(Name, "per-location") == 0) {
    Out = SamplingStrategy::PerLocation;
    return true;
  }
  if (std::strcmp(Name, "per-pair") == 0) {
    Out = SamplingStrategy::PerPair;
    return true;
  }
  if (std::strcmp(Name, "adaptive") == 0) {
    Out = SamplingStrategy::Adaptive;
    return true;
  }
  return false;
}

namespace {

/// splitmix64 finalizer: the stateless hash behind the per-location and
/// per-pair decisions (the same mixer Rng::reseed uses, so hash quality
/// matches the stream).
uint64_t mix64(uint64_t X) {
  X += 0x9e3779b97f4a7c15ull;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ull;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebull;
  return X ^ (X >> 31);
}

} // namespace

AccessSampler::AccessSampler(const SamplingOptions &Opts)
    // fork() the seeded generator rather than using it directly, so the
    // sampler's stream is decorrelated from any other consumer of the
    // same seed (the browser seeds its subsystems the same way).
    : Opts(Opts), Stream(Rng(Opts.Seed).fork()) {}

bool AccessSampler::hashPasses(uint64_t H) const {
  // 53-bit mantissa mapping onto [0, 1), exactly Rng::nextDouble's.
  return static_cast<double>(H >> 11) * 0x1.0p-53 < Opts.Rate;
}

AccessSampler::LocHeat &AccessSampler::heat(LocId Id) {
  if (Id >= Heat.size())
    Heat.resize(Id + 1);
  return Heat[Id];
}

void AccessSampler::markHot(LocId Loc) {
  LocHeat &H = heat(Loc);
  H.Budget = Opts.HotBudget;
  if (!H.EverHot) {
    H.EverHot = true;
    ++Counters.HotLocations;
  }
}

bool AccessSampler::decide(const Access &A, OpId PriorWriteOp,
                           ClockEpoch PriorWriteEpoch, ClockEpoch CurEpoch) {
  switch (Opts.Strategy) {
  case SamplingStrategy::PerLocation: {
    // One hash per location: the whole location is in or out, so a kept
    // location's slot history is exactly the unsampled one.
    if (!hashPasses(mix64(Opts.Seed ^ (0x1000193ull * A.Loc))))
      return false;
    ++Counters.LocationPass;
    return true;
  }
  case SamplingStrategy::PerPair: {
    // No prior writer stored: nothing to pair against; the access must
    // pass or no slot ever fills and no pair ever forms.
    if (PriorWriteOp == InvalidOpId) {
      ++Counters.PairPass;
      return true;
    }
    // Key the pair on clock epochs when the oracle recorded them (stable
    // across OpId numbering - the epoch-aware hook of the hb layer),
    // falling back to raw operation ids otherwise.
    uint64_t K1, K2;
    if (PriorWriteEpoch.Pos != 0 && CurEpoch.Pos != 0) {
      K1 = PriorWriteEpoch.packed();
      K2 = CurEpoch.packed();
    } else {
      K1 = PriorWriteOp;
      K2 = A.Op;
    }
    if (!hashPasses(mix64(mix64(Opts.Seed ^ K1) ^ K2)))
      return false;
    ++Counters.PairPass;
    return true;
  }
  case SamplingStrategy::Adaptive: {
    LocHeat &H = heat(A.Loc);
    if (H.Seen < Opts.ColdAccesses) {
      ++H.Seen;
      ++Counters.ColdPass;
      return true;
    }
    if (H.Budget > 0) {
      --H.Budget;
      ++Counters.HotPass;
      return true;
    }
    if (Stream.nextDouble() < Opts.Rate) {
      ++Counters.RngPass;
      return true;
    }
    return false;
  }
  }
  return true;
}

bool AccessSampler::shouldSample(const Access &A, OpId PriorWriteOp,
                                 ClockEpoch PriorWriteEpoch,
                                 ClockEpoch CurEpoch) {
  bool IsRead = A.Kind == AccessKind::Read;
  (IsRead ? Counters.SeenReads : Counters.SeenWrites) += 1;
  bool Keep = decide(A, PriorWriteOp, PriorWriteEpoch, CurEpoch);
  if (Keep)
    (IsRead ? Counters.SampledReads : Counters.SampledWrites) += 1;
  else
    (IsRead ? Counters.DroppedReads : Counters.DroppedWrites) += 1;
  return Keep;
}

uint64_t AccessSampler::samplerBytes() const {
  return Heat.capacity() * sizeof(LocHeat);
}

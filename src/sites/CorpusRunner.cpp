//===- sites/CorpusRunner.cpp - Run WebRacer over a corpus ---------------------===//

#include "sites/CorpusRunner.h"

#include <algorithm>
#include <atomic>
#include <thread>

using namespace wr;
using namespace wr::sites;
using wr::detect::RaceKind;

SiteRunStats wr::sites::runSite(const GeneratedSite &Site,
                                const webracer::SessionOptions &Base,
                                uint64_t SiteSeed) {
  webracer::SessionOptions Opts = Base;
  Opts.Browser.Seed = SiteSeed;
  // Give each site its own sampling stream, keyed off the pre-drawn site
  // seed: seeds are drawn in corpus order before any site runs, so the
  // drop pattern (and hence every report byte) is identical at any
  // --jobs count.
  if (Opts.Detector.Sampling.enabled())
    Opts.Detector.Sampling.Seed ^= SiteSeed;
  // Corpus pages run a few hundred operations; pre-size the HB tables so
  // every site skips the doubling-growth phase of addOperation.
  if (Opts.ExpectedOperations == 0)
    Opts.ExpectedOperations = 512;
  webracer::Session S(Opts);
  S.network().addResource(Site.IndexUrl, Site.Html, 10);
  for (const SiteResource &R : Site.Resources)
    S.network().addResourceWithJitter(R.Url, R.Body, R.MinLatencyUs,
                                      R.MaxLatencyUs);
  webracer::SessionResult Result = S.run(Site.IndexUrl);

  SiteRunStats Stats;
  Stats.Name = Site.Name;
  Stats.Raw = detect::tally(Result.RawRaces);
  Stats.Filtered = detect::tally(Result.FilteredRaces);
  Stats.Expected = Site.Expected;

  // Static side of the corpus cross-check: analyze the same bytes
  // without executing, then score predictions against the raw dynamic
  // races (mapped while the session's browser is still alive).
  analysis::StaticAnalysis Static =
      analysis::analyzePage(Site.Html, [&Site](const std::string &Url)
                                -> std::optional<std::string> {
        for (const SiteResource &R : Site.Resources)
          if (R.Url == Url)
            return R.Body;
        return std::nullopt;
      });
  std::vector<analysis::MappedDynamicRace> Mapped =
      analysis::mapDynamicRaces(Result.RawRaces, S.browser());
  Stats.Static = analysis::tallyPrecision(Static.Races, Mapped,
                                          /*Confirmed=*/nullptr,
                                          /*Refuted=*/nullptr);

  // Sign the kept races now, while the session's HB graph is still
  // alive - the signature is the only race identity that survives the
  // browser (and is stable across seeds and job counts).
  Stats.Signatures.reserve(Result.FilteredRaces.size());
  for (const detect::Race &R : Result.FilteredRaces)
    Stats.Signatures.push_back(
        triage::computeSignature(R, S.browser().hb()));
  Stats.SuppressionHits = std::move(Result.SuppressionHits);

  Stats.Stats = std::move(Result.Stats);
  Stats.FilteredRaces = std::move(Result.FilteredRaces);
  return Stats;
}

CorpusStats wr::sites::runCorpus(const std::vector<GeneratedSite> &Corpus,
                                 const webracer::SessionOptions &Base,
                                 uint64_t Seed, unsigned Jobs) {
  CorpusStats Stats;
  // Seeds are drawn in corpus order regardless of job count, so site i
  // always gets the seed the serial run would give it.
  Rng SeedGen(Seed);
  std::vector<uint64_t> Seeds;
  Seeds.reserve(Corpus.size());
  for (size_t I = 0; I < Corpus.size(); ++I)
    Seeds.push_back(SeedGen.next());

  if (Jobs == 0)
    Jobs = std::max(1u, std::thread::hardware_concurrency());
  Jobs = static_cast<unsigned>(
      std::min<size_t>(Jobs, std::max<size_t>(Corpus.size(), 1)));

  if (Jobs <= 1) {
    for (size_t I = 0; I < Corpus.size(); ++I)
      Stats.Sites.push_back(runSite(Corpus[I], Base, Seeds[I]));
    return Stats;
  }

  // Thread-pool mode: workers claim sites through an atomic counter and
  // write into pre-sized corpus-order slots, so aggregation never depends
  // on completion order.
  Stats.Sites.resize(Corpus.size());
  std::atomic<size_t> Next{0};
  auto Worker = [&] {
    for (size_t I = Next.fetch_add(1, std::memory_order_relaxed);
         I < Corpus.size();
         I = Next.fetch_add(1, std::memory_order_relaxed))
      Stats.Sites[I] = runSite(Corpus[I], Base, Seeds[I]);
  };
  std::vector<std::thread> Pool;
  Pool.reserve(Jobs);
  for (unsigned T = 0; T < Jobs; ++T)
    Pool.emplace_back(Worker);
  for (std::thread &T : Pool)
    T.join();
  return Stats;
}

static CorpusStats::Distribution
distributionOf(std::vector<size_t> Counts) {
  CorpusStats::Distribution D;
  if (Counts.empty())
    return D;
  std::sort(Counts.begin(), Counts.end());
  double Sum = 0;
  for (size_t C : Counts)
    Sum += static_cast<double>(C);
  D.Mean = Sum / static_cast<double>(Counts.size());
  size_t N = Counts.size();
  D.Median = (N % 2 == 1)
                 ? static_cast<double>(Counts[N / 2])
                 : (static_cast<double>(Counts[N / 2 - 1]) +
                    static_cast<double>(Counts[N / 2])) /
                       2.0;
  D.Max = Counts.back();
  return D;
}

CorpusStats::Distribution
CorpusStats::rawDistribution(RaceKind Kind) const {
  std::vector<size_t> Counts;
  Counts.reserve(Sites.size());
  for (const SiteRunStats &S : Sites)
    Counts.push_back(S.Raw[Kind]);
  return distributionOf(std::move(Counts));
}

CorpusStats::Distribution CorpusStats::rawTotalDistribution() const {
  std::vector<size_t> Counts;
  Counts.reserve(Sites.size());
  for (const SiteRunStats &S : Sites)
    Counts.push_back(S.Raw.total());
  return distributionOf(std::move(Counts));
}

detect::RaceTally CorpusStats::filteredTotals() const {
  detect::RaceTally T;
  for (const SiteRunStats &S : Sites) {
    T.Variable += S.Filtered.Variable;
    T.Html += S.Filtered.Html;
    T.Function += S.Filtered.Function;
    T.EventDispatch += S.Filtered.EventDispatch;
  }
  return T;
}

analysis::StaticPrecision CorpusStats::staticTotals() const {
  analysis::StaticPrecision T;
  for (const SiteRunStats &S : Sites)
    T.merge(S.Static);
  return T;
}

obs::RunStats CorpusStats::aggregate() const {
  obs::RunStats Total;
  for (const SiteRunStats &S : Sites)
    Total.merge(S.Stats);
  return Total;
}

std::vector<uint64_t> CorpusStats::suppressionHits() const {
  std::vector<uint64_t> Total;
  for (const SiteRunStats &S : Sites) {
    if (S.SuppressionHits.size() > Total.size())
      Total.resize(S.SuppressionHits.size(), 0);
    for (size_t I = 0; I < S.SuppressionHits.size(); ++I)
      Total[I] += S.SuppressionHits[I];
  }
  return Total;
}

//===- sites/CorpusRunner.cpp - Run WebRacer over a corpus ---------------------===//

#include "sites/CorpusRunner.h"

#include <algorithm>

using namespace wr;
using namespace wr::sites;
using wr::detect::RaceKind;

SiteRunStats wr::sites::runSite(const GeneratedSite &Site,
                                const webracer::SessionOptions &Base,
                                uint64_t SiteSeed) {
  webracer::SessionOptions Opts = Base;
  Opts.Browser.Seed = SiteSeed;
  webracer::Session S(Opts);
  S.network().addResource(Site.IndexUrl, Site.Html, 10);
  for (const SiteResource &R : Site.Resources)
    S.network().addResourceWithJitter(R.Url, R.Body, R.MinLatencyUs,
                                      R.MaxLatencyUs);
  webracer::SessionResult Result = S.run(Site.IndexUrl);

  SiteRunStats Stats;
  Stats.Name = Site.Name;
  Stats.Raw = detect::tally(Result.RawRaces);
  Stats.Filtered = detect::tally(Result.FilteredRaces);
  Stats.Expected = Site.Expected;
  Stats.Operations = Result.Operations;
  Stats.HbEdges = Result.HbEdges;
  Stats.Crashes = Result.Crashes.size();
  Stats.FilteredRaces = std::move(Result.FilteredRaces);
  return Stats;
}

CorpusStats wr::sites::runCorpus(const std::vector<GeneratedSite> &Corpus,
                                 const webracer::SessionOptions &Base,
                                 uint64_t Seed) {
  CorpusStats Stats;
  Rng SeedGen(Seed);
  for (const GeneratedSite &Site : Corpus)
    Stats.Sites.push_back(runSite(Site, Base, SeedGen.next()));
  return Stats;
}

static CorpusStats::Distribution
distributionOf(std::vector<size_t> Counts) {
  CorpusStats::Distribution D;
  if (Counts.empty())
    return D;
  std::sort(Counts.begin(), Counts.end());
  double Sum = 0;
  for (size_t C : Counts)
    Sum += static_cast<double>(C);
  D.Mean = Sum / static_cast<double>(Counts.size());
  size_t N = Counts.size();
  D.Median = (N % 2 == 1)
                 ? static_cast<double>(Counts[N / 2])
                 : (static_cast<double>(Counts[N / 2 - 1]) +
                    static_cast<double>(Counts[N / 2])) /
                       2.0;
  D.Max = Counts.back();
  return D;
}

CorpusStats::Distribution
CorpusStats::rawDistribution(RaceKind Kind) const {
  std::vector<size_t> Counts;
  Counts.reserve(Sites.size());
  for (const SiteRunStats &S : Sites)
    Counts.push_back(S.Raw[Kind]);
  return distributionOf(std::move(Counts));
}

CorpusStats::Distribution CorpusStats::rawTotalDistribution() const {
  std::vector<size_t> Counts;
  Counts.reserve(Sites.size());
  for (const SiteRunStats &S : Sites)
    Counts.push_back(S.Raw.total());
  return distributionOf(std::move(Counts));
}

detect::RaceTally CorpusStats::filteredTotals() const {
  detect::RaceTally T;
  for (const SiteRunStats &S : Sites) {
    T.Variable += S.Filtered.Variable;
    T.Html += S.Filtered.Html;
    T.Function += S.Filtered.Function;
    T.EventDispatch += S.Filtered.EventDispatch;
  }
  return T;
}

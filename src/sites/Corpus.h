//===- sites/Corpus.h - The Fortune-100 corpus ------------------*- C++ -*-===//
//
// Part of the WebRacer reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generates the synthetic Fortune-100 corpus behind the evaluation.
/// Sites named in the paper's Table 2 get pattern mixes matching their
/// reported filtered race counts (with harmfulness assigned per the
/// paper's per-type discussion in Sec. 6.3); every site also gets a
/// seeded amount of benign background noise (delayed-loading variable
/// races and hover-menu event races) calibrated to Table 1's raw
/// mean/median/max.
///
//===----------------------------------------------------------------------===//

#ifndef WEBRACER_SITES_CORPUS_H
#define WEBRACER_SITES_CORPUS_H

#include "sites/Patterns.h"
#include "support/Rng.h"

#include <string>
#include <vector>

namespace wr::sites {

/// A fully generated site: the page, its resources, and its ground-truth
/// expectations.
struct GeneratedSite {
  std::string Name;
  std::string IndexUrl; ///< "<name>/index.html".
  std::string Html;
  std::vector<SiteResource> Resources;
  ExpectedRaces Expected;
};

/// Declarative site description.
struct SiteSpec {
  std::string Name;
  std::vector<PatternInstance> Patterns;
};

/// Instantiates one site from its spec.
GeneratedSite buildSite(const SiteSpec &Spec);

/// The Table 2 rows: per-site filtered counts (harmful in parens in the
/// paper). Used both to build the corpus and to check reproduction.
struct Table2Row {
  const char *Name;
  int Html, HtmlHarmful;
  int Function, FunctionHarmful;
  int Variable, VariableHarmful;
  int Dispatch, DispatchHarmful;
};

/// All 41 rows of the paper's Table 2.
const std::vector<Table2Row> &table2Rows();

/// Builds the full 100-site corpus: the Table 2 sites plus fillers, all
/// with seeded background noise.
std::vector<GeneratedSite> buildFortune100Corpus(uint64_t Seed);

/// Builds the spec for one Table 2 row (noise counts supplied by the
/// caller).
SiteSpec specForRow(const Table2Row &Row, int VariableNoise,
                    int DispatchNoise);

/// Samples a background-noise count from the heavy-tailed distribution
/// calibrated to Table 1 (mean ~22, median ~5.5).
int sampleNoiseCount(Rng &R);

} // namespace wr::sites

#endif // WEBRACER_SITES_CORPUS_H

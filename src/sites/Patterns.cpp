//===- sites/Patterns.cpp - Race-pattern templates -----------------------------===//

#include "sites/Patterns.h"

#include "support/Format.h"

using namespace wr;
using namespace wr::sites;

const char *wr::sites::toString(PatternKind Kind) {
  switch (Kind) {
  case PatternKind::HtmlLookupHarmful:
    return "html-lookup-harmful";
  case PatternKind::HtmlPollingBenign:
    return "html-polling-benign";
  case PatternKind::FunctionCallHarmful:
    return "function-call-harmful";
  case PatternKind::FunctionCallGuarded:
    return "function-call-guarded";
  case PatternKind::FormValueHarmful:
    return "form-value-harmful";
  case PatternKind::FormValueGuarded:
    return "form-value-guarded";
  case PatternKind::FormValueReadBenign:
    return "form-value-read-benign";
  case PatternKind::GomezMonitorHarmful:
    return "gomez-monitor-harmful";
  case PatternKind::DelayedSingleBenign:
    return "delayed-single-benign";
  case PatternKind::VariableNoiseBenign:
    return "variable-noise-benign";
  case PatternKind::HoverMenuNoiseBenign:
    return "hover-menu-noise-benign";
  case PatternKind::DeadGuardBenign:
    return "dead-guard-benign";
  case PatternKind::PostFirstRaceBenign:
    return "post-first-race-benign";
  case PatternKind::IntervalSkipBenign:
    return "interval-skip-benign";
  }
  return "unknown";
}

ExpectedRaces &ExpectedRaces::operator+=(const ExpectedRaces &O) {
  Html += O.Html;
  HtmlHarmful += O.HtmlHarmful;
  Function += O.Function;
  FunctionHarmful += O.FunctionHarmful;
  Variable += O.Variable;
  VariableHarmful += O.VariableHarmful;
  EventDispatch += O.EventDispatch;
  EventDispatchHarmful += O.EventDispatchHarmful;
  RawOnlyVariable += O.RawOnlyVariable;
  RawOnlyEventDispatch += O.RawOnlyEventDispatch;
  return *this;
}

std::string SiteBuilder::resource(const std::string &Name,
                                  const std::string &Content,
                                  uint64_t MinLatencyUs,
                                  uint64_t MaxLatencyUs) {
  std::string Url = SiteName + "/" + Name;
  Resources.push_back({Url, Content, MinLatencyUs, MaxLatencyUs});
  return Url;
}

namespace {

// Fig. 3 (Valero): a javascript: link that dereferences a not-yet-parsed
// div. One harmful HTML race per instance.
void emitHtmlLookupHarmful(SiteBuilder &S) {
  std::string Id = S.freshSuffix();
  S.html(strFormat(
      "<script>"
      "function show%s() {"
      "  var v = document.getElementById('dw%s');"
      "  v.style.display = 'block';"
      "}"
      "</script>"
      "<a id=\"send%s\" href=\"javascript:show%s()\">Send Email</a>"
      "<p>interstitial content</p>"
      "<div id=\"dw%s\" style=\"display:none\">email form</div>",
      Id.c_str(), Id.c_str(), Id.c_str(), Id.c_str(), Id.c_str()));
  S.expected().Html += 1;
  S.expected().HtmlHarmful += 1;
}

// The Ford addPopUp pattern (Sec. 6.3): polling for a sentinel node via
// setTimeout, then mutating Count-1 other nodes. Count benign HTML races.
void emitHtmlPollingBenign(SiteBuilder &S, int Count) {
  if (Count < 1)
    return;
  std::string Id = S.freshSuffix();
  int MenuNodes = Count - 1;
  std::string Mutations;
  std::string Divs;
  for (int I = 0; I < MenuNodes; ++I) {
    Mutations += strFormat(
        "document.getElementById('menu%s_%d').style.display = 'block';",
        Id.c_str(), I);
    Divs += strFormat(
        "<div id=\"menu%s_%d\" style=\"display:none\"></div>", Id.c_str(),
        I);
  }
  S.html(strFormat(
      "<script>"
      "function addPopUp%s() {"
      "  if (document.getElementById('last%s') != null) {"
      "    %s"
      "  } else { setTimeout(addPopUp%s, 250); }"
      "}"
      "setTimeout(addPopUp%s, 250);"
      "</script>"
      "%s"
      "<div id=\"last%s\"></div>",
      Id.c_str(), Id.c_str(), Mutations.c_str(), Id.c_str(), Id.c_str(),
      Divs.c_str(), Id.c_str()));
  S.expected().Html += Count;
}

// A hover handler calling a function defined by a late async script
// (Sec. 6.3's harmful function races were attached to hover/click).
void emitFunctionCall(SiteBuilder &S, bool Guarded) {
  std::string Id = S.freshSuffix();
  std::string Handler =
      Guarded ? strFormat("if (typeof doWork%s == 'function') doWork%s();",
                          Id.c_str(), Id.c_str())
              : strFormat("doWork%s();", Id.c_str());
  std::string Url = S.resource(
      strFormat("late%s.js", Id.c_str()),
      strFormat("function doWork%s() { window.done%s = true; }", Id.c_str(),
                Id.c_str()));
  S.html(strFormat(
      "<div id=\"hot%s\" onmouseover=\"%s\">hover me</div>"
      "<script src=\"%s\" async=\"true\"></script>",
      Id.c_str(), Handler.c_str(), Url.c_str()));
  S.expected().Function += 1;
  if (!Guarded)
    S.expected().FunctionHarmful += 1;
}

// Fig. 2 (Southwest): a script unconditionally overwriting a text box the
// user may already have typed into. One harmful variable race.
void emitFormValueHarmful(SiteBuilder &S) {
  std::string Id = S.freshSuffix();
  S.html(strFormat(
      "<input type=\"text\" id=\"box%s\" />"
      "<script>document.getElementById('box%s').value ="
      " 'City of Departure';</script>",
      Id.c_str(), Id.c_str()));
  S.expected().Variable += 1;
  S.expected().VariableHarmful += 1;
}

// Same, but the write is guarded by a read of the field in the same
// operation; removed by the Sec. 5.3 refinement.
void emitFormValueGuarded(SiteBuilder &S) {
  std::string Id = S.freshSuffix();
  S.html(strFormat(
      "<input type=\"text\" id=\"box%s\" />"
      "<script>"
      "var f%s = document.getElementById('box%s');"
      "if (f%s.value == '') { f%s.value = 'hint'; }"
      "</script>",
      Id.c_str(), Id.c_str(), Id.c_str(), Id.c_str(), Id.c_str()));
  S.expected().RawOnlyVariable += 1;
}

// A script that merely reads the box (analytics-style): the race survives
// the form filter but cannot destroy input - benign.
void emitFormValueReadBenign(SiteBuilder &S) {
  std::string Id = S.freshSuffix();
  S.html(strFormat(
      "<input type=\"text\" id=\"box%s\" />"
      "<script>window.snapshot%s ="
      " document.getElementById('box%s').value;</script>",
      Id.c_str(), Id.c_str(), Id.c_str()));
  S.expected().Variable += 1;
}

// The Gomez performance monitor (Sec. 6.3): poll document.images every
// 10ms and attach onload handlers; every monitored image is a harmful
// single-dispatch event race.
void emitGomezMonitor(SiteBuilder &S, int Count) {
  if (Count < 1)
    return;
  std::string Id = S.freshSuffix();
  std::string Imgs;
  for (int I = 0; I < Count; ++I) {
    std::string Url = S.resource(strFormat("img%s_%d.png", Id.c_str(), I),
                                 "PNG", 200, 4000);
    Imgs += strFormat("<img id=\"gm%s_%d\" src=\"%s\" />", Id.c_str(), I,
                      Url.c_str());
  }
  S.html(strFormat(
      "%s"
      "<script>"
      "var seen%s = {};"
      "var polls%s = 0;"
      "var iv%s = setInterval(function() {"
      "  polls%s++;"
      "  var imgs = document.images;"
      "  for (var i = 0; i < imgs.length; i++) {"
      "    var im = imgs[i];"
      "    if (!seen%s[im.id]) {"
      "      seen%s[im.id] = true;"
      "      im.onload = function() { window.gomez%s = true; };"
      "    }"
      "  }"
      "  if (polls%s > 12) clearInterval(iv%s);"
      "}, 10);"
      "</script>",
      Imgs.c_str(), Id.c_str(), Id.c_str(), Id.c_str(), Id.c_str(),
      Id.c_str(), Id.c_str(), Id.c_str(), Id.c_str(), Id.c_str()));
  S.expected().EventDispatch += Count;
  S.expected().EventDispatchHarmful += Count;
}

// A delayed script attaching onload to an image: single-dispatch race,
// but the functionality is optional by design - benign.
void emitDelayedSingleBenign(SiteBuilder &S) {
  std::string Id = S.freshSuffix();
  std::string ImgUrl =
      S.resource(strFormat("pic%s.png", Id.c_str()), "PNG", 200, 4000);
  std::string JsUrl = S.resource(
      strFormat("attach%s.js", Id.c_str()),
      strFormat("document.getElementById('ds%s').onload ="
                " function() { window.dsLoaded%s = true; };",
                Id.c_str(), Id.c_str()));
  S.html(strFormat(
      "<img id=\"ds%s\" src=\"%s\" />"
      "<script src=\"%s\" async=\"true\"></script>",
      Id.c_str(), ImgUrl.c_str(), JsUrl.c_str()));
  S.expected().EventDispatch += 1;
}

// Two async scripts synchronizing via typeof-guarded globals: Count
// benign variable races, all removed by the form filter (the dominant
// source of raw variable reports, Sec. 6.2).
void emitVariableNoise(SiteBuilder &S, int Count) {
  if (Count < 1)
    return;
  std::string Id = S.freshSuffix();
  std::string Writes;
  std::string Reads;
  for (int I = 0; I < Count; ++I) {
    Writes += strFormat("cfg%s_%d = %d;", Id.c_str(), I, I);
    Reads += strFormat(
        "total%s += (typeof cfg%s_%d != 'undefined') ? cfg%s_%d : 0;",
        Id.c_str(), Id.c_str(), I, Id.c_str(), I);
  }
  std::string WriterUrl =
      S.resource(strFormat("cfga%s.js", Id.c_str()), Writes, 200, 5000);
  std::string ReaderUrl = S.resource(
      strFormat("cfgb%s.js", Id.c_str()),
      strFormat("var total%s = 0; %s window.cfgTotal%s = total%s;",
                Id.c_str(), Reads.c_str(), Id.c_str(), Id.c_str()),
      200, 5000);
  S.html(strFormat(
      "<script src=\"%s\" async=\"true\"></script>"
      "<script src=\"%s\" async=\"true\"></script>",
      WriterUrl.c_str(), ReaderUrl.c_str()));
  S.expected().RawOnlyVariable += Count;
}

// A delayed script attaching hover menus: Count benign event-dispatch
// races, removed by the single-dispatch filter under repeated interaction
// (the deliberate delayed-functionality pattern of Sec. 6.2).
void emitHoverMenuNoise(SiteBuilder &S, int Count) {
  if (Count < 1)
    return;
  std::string Id = S.freshSuffix();
  std::string Divs;
  std::string Attach;
  for (int I = 0; I < Count; ++I) {
    Divs += strFormat("<div id=\"hm%s_%d\">item</div>", Id.c_str(), I);
    Attach += strFormat(
        "document.getElementById('hm%s_%d').onmouseover ="
        " function() { window.hovered%s = true; };",
        Id.c_str(), I, Id.c_str());
  }
  std::string Url =
      S.resource(strFormat("menu%s.js", Id.c_str()), Attach, 200, 5000);
  S.html(strFormat("%s<script src=\"%s\" async=\"true\"></script>",
                   Divs.c_str(), Url.c_str()));
  S.expected().RawOnlyEventDispatch += Count;
}

// Two unordered timers touching a shared global under a feature flag
// nobody sets: the static analyzer predicts a variable race on the
// global (guarded on both sides), while dynamically neither body ever
// runs - no race of any kind. Contributes nothing to the expected
// counts; it exists so bench/static_precision has a corpus-wide supply
// of guard-refutable false positives.
void emitDeadGuardBenign(SiteBuilder &S) {
  std::string Id = S.freshSuffix();
  S.html(strFormat(
      "<script>"
      "setTimeout(function() {"
      "  if (window.retryMode%s) { window.fbq%s = 1; }"
      "}, 5);"
      "setTimeout(function() {"
      "  if (window.retryMode%s) { window.seen%s = window.fbq%s; }"
      "}, 7);"
      "</script>",
      Id.c_str(), Id.c_str(), Id.c_str(), Id.c_str(), Id.c_str()));
}

// Three unordered timers on one global: two typeof-guarded readers (5ms,
// 7ms) and one writer (11ms). The one-per-location detector's read slot
// only remembers the second reader when the write arrives, so exactly one
// raw variable race - (second reader, writer) - is observed, while
// (first reader, writer) is an equally feasible race no observed run
// reports. The corpus's post-first-race seed: the SHB/WCP passes must
// match the observed pair and predict the hidden one
// (bench/race_prediction). Fully timer-driven, so it adds no resources
// and perturbs no existing pattern's schedule.
void emitPostFirstRaceBenign(SiteBuilder &S) {
  std::string Id = S.freshSuffix();
  S.html(strFormat(
      "<script>"
      "setTimeout(function() {"
      "  window.pfrA%s = (typeof pfr%s != 'undefined') ? pfr%s : 0;"
      "}, 5);"
      "setTimeout(function() {"
      "  window.pfrB%s = (typeof pfr%s != 'undefined') ? pfr%s : 0;"
      "}, 7);"
      "setTimeout(function() { pfr%s = 1; }, 11);"
      "</script>",
      Id.c_str(), Id.c_str(), Id.c_str(), Id.c_str(), Id.c_str(),
      Id.c_str(), Id.c_str()));
  S.expected().RawOnlyVariable += 1;
}

// A 3ms setInterval racing two one-shot timers (4ms, 8ms) that flag its
// phases: tick 0 writes a handoff global, tick 1 only reads the phase
// flags (no conflicting state), tick 2 consumes the handoff and clears
// the interval. Observed: two raw variable races (each phase flag's
// write vs a tick's guarded read), both filtered. The rule-17 chain
// orders the handoff write before its read under HB and SHB, but the
// WCP weakening drops the non-conflicting tick0 -> tick1 edge, leaving
// (tick 0, tick 2) concurrent - the WCP-vs-SHB delta seed
// (bench/race_prediction).
void emitIntervalSkipBenign(SiteBuilder &S) {
  std::string Id = S.freshSuffix();
  S.html(strFormat(
      "<script>"
      "setTimeout(function() { ivra%s = 1; }, 4);"
      "setTimeout(function() { ivrb%s = 1; }, 8);"
      "var iv%s = setInterval(function() {"
      "  if (typeof ivra%s == 'undefined') { ivh%s = 1; }"
      "  else if (typeof ivrb%s != 'undefined') {"
      "    window.ivlast%s = (typeof ivh%s != 'undefined') ? ivh%s : 0;"
      "    clearInterval(iv%s);"
      "  }"
      "}, 3);"
      "</script>",
      Id.c_str(), Id.c_str(), Id.c_str(), Id.c_str(), Id.c_str(),
      Id.c_str(), Id.c_str(), Id.c_str(), Id.c_str(), Id.c_str()));
  S.expected().RawOnlyVariable += 2;
}

} // namespace

void wr::sites::emitPattern(SiteBuilder &Site,
                            const PatternInstance &Instance) {
  switch (Instance.Kind) {
  case PatternKind::HtmlLookupHarmful:
    for (int I = 0; I < Instance.Count; ++I)
      emitHtmlLookupHarmful(Site);
    return;
  case PatternKind::HtmlPollingBenign:
    emitHtmlPollingBenign(Site, Instance.Count);
    return;
  case PatternKind::FunctionCallHarmful:
    for (int I = 0; I < Instance.Count; ++I)
      emitFunctionCall(Site, /*Guarded=*/false);
    return;
  case PatternKind::FunctionCallGuarded:
    for (int I = 0; I < Instance.Count; ++I)
      emitFunctionCall(Site, /*Guarded=*/true);
    return;
  case PatternKind::FormValueHarmful:
    for (int I = 0; I < Instance.Count; ++I)
      emitFormValueHarmful(Site);
    return;
  case PatternKind::FormValueGuarded:
    for (int I = 0; I < Instance.Count; ++I)
      emitFormValueGuarded(Site);
    return;
  case PatternKind::FormValueReadBenign:
    for (int I = 0; I < Instance.Count; ++I)
      emitFormValueReadBenign(Site);
    return;
  case PatternKind::GomezMonitorHarmful:
    emitGomezMonitor(Site, Instance.Count);
    return;
  case PatternKind::DelayedSingleBenign:
    for (int I = 0; I < Instance.Count; ++I)
      emitDelayedSingleBenign(Site);
    return;
  case PatternKind::VariableNoiseBenign:
    emitVariableNoise(Site, Instance.Count);
    return;
  case PatternKind::HoverMenuNoiseBenign:
    emitHoverMenuNoise(Site, Instance.Count);
    return;
  case PatternKind::DeadGuardBenign:
    for (int I = 0; I < Instance.Count; ++I)
      emitDeadGuardBenign(Site);
    return;
  case PatternKind::PostFirstRaceBenign:
    for (int I = 0; I < Instance.Count; ++I)
      emitPostFirstRaceBenign(Site);
    return;
  case PatternKind::IntervalSkipBenign:
    for (int I = 0; I < Instance.Count; ++I)
      emitIntervalSkipBenign(Site);
    return;
  }
}

//===- sites/Patterns.h - Race-pattern templates ----------------*- C++ -*-===//
//
// Part of the WebRacer reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parameterized generators for the race patterns the paper observed on
/// Fortune-100 home pages (Sections 2 and 6.3). Each pattern knows how
/// many filtered races of which kind it produces and whether they are
/// harmful, giving the corpus ground truth to calibrate Tables 1 and 2
/// against.
///
/// Patterns:
///  * HtmlLookupHarmful       - Fig. 3 (Valero): a javascript: link whose
///                              handler dereferences a late div.
///  * HtmlPollingBenign       - the Ford addPopUp pattern: setTimeout
///                              polling for a sentinel node, then mutating
///                              k-1 others (k benign HTML races).
///  * FunctionCallHarmful     - a hover handler calling a function defined
///                              by a late async script (Sec. 6.3).
///  * FunctionCallGuarded     - same with a typeof guard (benign).
///  * FormValueHarmful        - Fig. 2 (Southwest): script overwrites a
///                              search box unconditionally.
///  * FormValueGuarded        - the write is guarded by a read (filtered
///                              out by the Sec. 5.3 refinement).
///  * FormValueReadBenign     - script only reads the box (race survives
///                              the filter but cannot lose input).
///  * GomezMonitorHarmful     - the Gomez image-load monitor: setInterval
///                              attaching onload to images (n harmful
///                              single-dispatch races).
///  * DelayedSingleBenign     - delayed script attaching onload to an
///                              image (single-dispatch, benign: optional
///                              functionality).
///  * VariableNoiseBenign     - delayed-script config variables guarded by
///                              typeof polling (n benign variable races,
///                              removed by the form filter).
///  * HoverMenuNoiseBenign    - delayed script attaching hover menus (n
///                              benign event-dispatch races, removed by
///                              the single-dispatch filter under repeated
///                              interaction).
///  * DeadGuardBenign         - two timers touching a shared global, both
///                              under a feature flag that is never set:
///                              statically a guarded-both-sides variable
///                              race, dynamically nothing ever runs. The
///                              canonical guard-analysis-refutable false
///                              positive (bench/static_precision).
///  * PostFirstRaceBenign     - two guarded timer reads racing one timer
///                              write of the same global: the one-per-
///                              location detector reports only the first
///                              pair, the second is visible only to the
///                              predictive SHB/WCP passes. The corpus's
///                              post-first-race seed (bench/race_prediction).
///  * IntervalSkipBenign      - a setInterval whose middle tick touches no
///                              conflicting state: under the WCP weakening
///                              the tick-chain edge drops, predicting a
///                              race between the first and third ticks
///                              that SHB still orders. The WCP-vs-SHB
///                              delta seed (bench/race_prediction).
///
//===----------------------------------------------------------------------===//

#ifndef WEBRACER_SITES_PATTERNS_H
#define WEBRACER_SITES_PATTERNS_H

#include <cstdint>
#include <string>
#include <vector>

namespace wr::sites {

/// Pattern identifiers.
enum class PatternKind : uint8_t {
  HtmlLookupHarmful,
  HtmlPollingBenign,
  FunctionCallHarmful,
  FunctionCallGuarded,
  FormValueHarmful,
  FormValueGuarded,
  FormValueReadBenign,
  GomezMonitorHarmful,
  DelayedSingleBenign,
  VariableNoiseBenign,
  HoverMenuNoiseBenign,
  DeadGuardBenign,
  PostFirstRaceBenign,
  IntervalSkipBenign,
};

const char *toString(PatternKind Kind);

/// One pattern instantiation. \c Count scales patterns that generate
/// multiple races (polling nodes, monitored images, noise variables).
struct PatternInstance {
  PatternKind Kind;
  int Count = 1;
};

/// Expected filtered races contributed by a pattern mix, by kind.
struct ExpectedRaces {
  int Html = 0, HtmlHarmful = 0;
  int Function = 0, FunctionHarmful = 0;
  int Variable = 0, VariableHarmful = 0;
  int EventDispatch = 0, EventDispatchHarmful = 0;
  /// Raw-only races (removed by the filters).
  int RawOnlyVariable = 0;
  int RawOnlyEventDispatch = 0;

  ExpectedRaces &operator+=(const ExpectedRaces &O);
};

/// An external resource of a generated site.
struct SiteResource {
  std::string Url;
  std::string Body;
  uint64_t MinLatencyUs = 500;
  uint64_t MaxLatencyUs = 3000;
};

/// Accumulates a site while patterns emit into it.
class SiteBuilder {
public:
  explicit SiteBuilder(std::string SiteName)
      : SiteName(std::move(SiteName)) {}

  /// Appends HTML to the page body.
  void html(const std::string &Fragment) { Body += Fragment; }

  /// Registers an external resource (url is prefixed with the site name
  /// so sites never collide).
  std::string resource(const std::string &Name, const std::string &Content,
                       uint64_t MinLatencyUs = 500,
                       uint64_t MaxLatencyUs = 3000);

  /// A unique symbol suffix for this site ("_p<N>").
  std::string freshSuffix() { return "_p" + std::to_string(NextId++); }

  ExpectedRaces &expected() { return Expect; }

  const std::string &name() const { return SiteName; }
  const std::string &body() const { return Body; }
  const std::vector<SiteResource> &resources() const { return Resources; }

private:
  std::string SiteName;
  std::string Body;
  std::vector<SiteResource> Resources;
  ExpectedRaces Expect;
  int NextId = 0;
};

/// Emits \p Instance into \p Site, updating its expectations.
void emitPattern(SiteBuilder &Site, const PatternInstance &Instance);

} // namespace wr::sites

#endif // WEBRACER_SITES_PATTERNS_H

//===- sites/CorpusReport.h - Machine-readable corpus reports ---*- C++ -*-===//
//
// Part of the WebRacer reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builds the stable JSON report for a corpus run: the schema-1 envelope,
/// one row per site (name + deterministic stats), the corpus-order
/// aggregate, the Table 1 raw-count distributions, and the Table 2
/// filtered totals. Per-site seeds are drawn in corpus order and results
/// land in corpus-order slots, so the document is byte-identical for any
/// --jobs count.
///
//===----------------------------------------------------------------------===//

#ifndef WEBRACER_SITES_CORPUSREPORT_H
#define WEBRACER_SITES_CORPUSREPORT_H

#include "obs/Json.h"
#include "obs/Reporter.h"
#include "sites/CorpusRunner.h"

#include <string>

namespace wr::sites {

/// The full report document for one corpus run. \p IncludeTiming adds a
/// wall-clock section (nondeterministic; leave off for byte-stable
/// output).
obs::Json buildCorpusReport(const std::string &Name,
                            const CorpusStats &Stats,
                            bool IncludeTiming = false);

} // namespace wr::sites

#endif // WEBRACER_SITES_CORPUSREPORT_H

//===- sites/CorpusReport.cpp - Machine-readable corpus reports --------------===//

#include "sites/CorpusReport.h"

#include <algorithm>
#include <unordered_map>

using namespace wr;
using namespace wr::sites;

static obs::Json distributionToJson(const CorpusStats::Distribution &D) {
  obs::Json O = obs::Json::object();
  O.set("mean", D.Mean);
  O.set("median", D.Median);
  O.set("max", static_cast<uint64_t>(D.Max));
  return O;
}

obs::Json wr::sites::buildCorpusReport(const std::string &Name,
                                       const CorpusStats &Stats,
                                       bool IncludeTiming) {
  obs::Json Doc = obs::makeReportEnvelope("corpus", Name);

  obs::Json Sites = obs::Json::array();
  for (const SiteRunStats &S : Stats.Sites) {
    obs::Json Row = obs::Json::object();
    Row.set("name", S.Name);
    Row.set("static_precision", S.Static.toJson());
    Row.set("stats", S.Stats.toJson());
    Sites.push(std::move(Row));
  }
  Doc.set("sites", std::move(Sites));

  Doc.set("aggregate", Stats.aggregate().toJson());

  // Table 1: raw-count distributions across sites, per kind and total.
  obs::Json Distributions = obs::Json::object();
  Distributions.set(
      "html", distributionToJson(
                  Stats.rawDistribution(detect::RaceKind::Html)));
  Distributions.set(
      "function", distributionToJson(
                      Stats.rawDistribution(detect::RaceKind::Function)));
  Distributions.set(
      "variable", distributionToJson(
                      Stats.rawDistribution(detect::RaceKind::Variable)));
  Distributions.set("event_dispatch",
                    distributionToJson(Stats.rawDistribution(
                        detect::RaceKind::EventDispatch)));
  Distributions.set("all",
                    distributionToJson(Stats.rawTotalDistribution()));
  Doc.set("raw_distributions", std::move(Distributions));

  Doc.set("filtered_totals", Stats.filteredTotals().toJson());

  // Static-analyzer cross-check, per guard class (ISSUE 6 precision
  // accounting; diff_baseline.py tracks the headline counters).
  Doc.set("static_precision", Stats.staticTotals().toJson());

  // Triage: corpus-wide dedup of the kept races by structural signature.
  // Deterministic for any job count - sites are walked in corpus order
  // and the rank is (occurrences desc, signature text asc).
  {
    struct Group {
      const triage::RaceSignature *Sig = nullptr;
      std::string Text;
      uint64_t Occurrences = 0;
      uint64_t SiteCount = 0;
      std::string FirstSite;
    };
    std::vector<Group> Groups;
    std::unordered_map<std::string, size_t> Index;
    for (const SiteRunStats &S : Stats.Sites) {
      std::vector<size_t> TouchedThisSite;
      for (const triage::RaceSignature &Sig : S.Signatures) {
        std::string Text = Sig.text();
        auto [It, Inserted] = Index.try_emplace(Text, Groups.size());
        if (Inserted) {
          Groups.push_back(
              {&Sig, std::move(Text), 0, 0, S.Name});
        }
        Group &G = Groups[It->second];
        ++G.Occurrences;
        if (std::find(TouchedThisSite.begin(), TouchedThisSite.end(),
                      It->second) == TouchedThisSite.end()) {
          TouchedThisSite.push_back(It->second);
          ++G.SiteCount;
        }
      }
    }
    std::stable_sort(Groups.begin(), Groups.end(),
                     [](const Group &A, const Group &B) {
                       if (A.Occurrences != B.Occurrences)
                         return A.Occurrences > B.Occurrences;
                       return A.Text < B.Text;
                     });
    uint64_t Occurrences = 0;
    obs::Json GroupArr = obs::Json::array();
    for (const Group &G : Groups) {
      Occurrences += G.Occurrences;
      obs::Json Row = obs::Json::object();
      Row.set("id", G.Sig->id());
      Row.set("kind", G.Sig->Kind);
      Row.set("location", G.Sig->Location);
      Row.set("access", G.Sig->Access);
      Row.set("context", G.Sig->Context);
      Row.set("occurrences", G.Occurrences);
      Row.set("sites", G.SiteCount);
      Row.set("first_site", G.FirstSite);
      GroupArr.push(std::move(Row));
    }
    obs::Json Triage = obs::Json::object();
    Triage.set("signatures", static_cast<uint64_t>(Groups.size()));
    Triage.set("occurrences", Occurrences);
    Triage.set("groups", std::move(GroupArr));
    Doc.set("triage", std::move(Triage));
  }

  if (IncludeTiming) {
    obs::Json Timing = obs::Json::object();
    Timing.set("phases_wall_ms", Stats.aggregate().Phases.wallJson());
    Doc.set("timing", std::move(Timing));
  }
  return Doc;
}

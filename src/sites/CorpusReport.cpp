//===- sites/CorpusReport.cpp - Machine-readable corpus reports --------------===//

#include "sites/CorpusReport.h"

using namespace wr;
using namespace wr::sites;

static obs::Json distributionToJson(const CorpusStats::Distribution &D) {
  obs::Json O = obs::Json::object();
  O.set("mean", D.Mean);
  O.set("median", D.Median);
  O.set("max", static_cast<uint64_t>(D.Max));
  return O;
}

obs::Json wr::sites::buildCorpusReport(const std::string &Name,
                                       const CorpusStats &Stats,
                                       bool IncludeTiming) {
  obs::Json Doc = obs::makeReportEnvelope("corpus", Name);

  obs::Json Sites = obs::Json::array();
  for (const SiteRunStats &S : Stats.Sites) {
    obs::Json Row = obs::Json::object();
    Row.set("name", S.Name);
    Row.set("static_precision", S.Static.toJson());
    Row.set("stats", S.Stats.toJson());
    Sites.push(std::move(Row));
  }
  Doc.set("sites", std::move(Sites));

  Doc.set("aggregate", Stats.aggregate().toJson());

  // Table 1: raw-count distributions across sites, per kind and total.
  obs::Json Distributions = obs::Json::object();
  Distributions.set(
      "html", distributionToJson(
                  Stats.rawDistribution(detect::RaceKind::Html)));
  Distributions.set(
      "function", distributionToJson(
                      Stats.rawDistribution(detect::RaceKind::Function)));
  Distributions.set(
      "variable", distributionToJson(
                      Stats.rawDistribution(detect::RaceKind::Variable)));
  Distributions.set("event_dispatch",
                    distributionToJson(Stats.rawDistribution(
                        detect::RaceKind::EventDispatch)));
  Distributions.set("all",
                    distributionToJson(Stats.rawTotalDistribution()));
  Doc.set("raw_distributions", std::move(Distributions));

  Doc.set("filtered_totals", Stats.filteredTotals().toJson());

  // Static-analyzer cross-check, per guard class (ISSUE 6 precision
  // accounting; diff_baseline.py tracks the headline counters).
  Doc.set("static_precision", Stats.staticTotals().toJson());

  if (IncludeTiming) {
    obs::Json Timing = obs::Json::object();
    Timing.set("phases_wall_ms", Stats.aggregate().Phases.wallJson());
    Doc.set("timing", std::move(Timing));
  }
  return Doc;
}

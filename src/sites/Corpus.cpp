//===- sites/Corpus.cpp - The Fortune-100 corpus --------------------------------===//

#include "sites/Corpus.h"

using namespace wr;
using namespace wr::sites;

const std::vector<Table2Row> &wr::sites::table2Rows() {
  // Paper Table 2, verbatim: filtered races with harmful counts.
  static const std::vector<Table2Row> Rows = {
      //                      html      func      var       disp
      {"Allstate",            6, 6,     2, 0,     0, 0,     0, 0},
      {"AmericanExpress",     41, 1,    0, 0,     0, 0,     0, 0},
      {"BankOfAmerica",       4, 0,     1, 1,     0, 0,     0, 0},
      {"BestBuy",             0, 0,     2, 0,     0, 0,     0, 0},
      {"CiscoSystems",        0, 0,     1, 0,     0, 0,     0, 0},
      {"Citigroup",           3, 0,     3, 2,     0, 0,     1, 0},
      {"Comcast",             0, 0,     6, 1,     0, 0,     0, 0},
      {"ConocoPhillips",      0, 0,     2, 1,     0, 0,     0, 0},
      {"Costco",              3, 3,     0, 0,     0, 0,     0, 0},
      {"FedEx",               1, 0,     0, 0,     0, 0,     0, 0},
      {"Ford",                112, 0,   0, 0,     0, 0,     0, 0},
      {"GeneralDynamics",     0, 0,     1, 0,     0, 0,     0, 0},
      {"GeneralMotors",       0, 0,     1, 0,     0, 0,     0, 0},
      {"HartfordFinancial",   1, 1,     0, 0,     0, 0,     0, 0},
      {"HomeDepot",           0, 0,     1, 0,     0, 0,     0, 0},
      {"Humana",              0, 0,     0, 0,     0, 0,     13, 13},
      {"IBM",                 16, 0,    0, 0,     1, 1,     0, 0},
      {"Intel",               0, 0,     3, 0,     0, 0,     0, 0},
      {"JPMorganChase",       3, 3,     5, 0,     0, 0,     0, 0},
      {"JohnsonControls",     1, 1,     0, 0,     1, 0,     0, 0},
      {"Kroger",              1, 0,     0, 0,     0, 0,     0, 0},
      {"LibertyMutual",       0, 0,     4, 0,     0, 0,     1, 0},
      {"Lowes",               1, 0,     0, 0,     0, 0,     0, 0},
      {"Macys",               0, 0,     0, 0,     1, 1,     0, 0},
      {"MassMutual",          1, 0,     0, 0,     0, 0,     0, 0},
      {"MerrillLynch",        1, 1,     0, 0,     0, 0,     0, 0},
      {"MetLife",             0, 0,     0, 0,     0, 0,     35, 35},
      {"MorganStanley",       1, 1,     0, 0,     0, 0,     0, 0},
      {"Motorola",            1, 0,     0, 0,     0, 0,     1, 0},
      {"NewsCorporation",     1, 0,     0, 0,     0, 0,     0, 0},
      {"Safeway",             0, 0,     0, 0,     1, 1,     0, 0},
      {"Sunoco",              11, 11,   0, 0,     0, 0,     0, 0},
      {"Target",              2, 2,     0, 0,     1, 1,     0, 0},
      {"UnitedHealthGroup",   0, 0,     0, 0,     0, 0,     1, 0},
      {"UnitedTechnologies",  2, 1,     0, 0,     0, 0,     0, 0},
      {"ValeroEnergy",        5, 1,     4, 1,     2, 0,     0, 0},
      {"Verizon",             0, 0,     1, 1,     0, 0,     0, 0},
      {"WalMart",             0, 0,     0, 0,     1, 1,     0, 0},
      {"Walgreens",           0, 0,     0, 0,     0, 0,     35, 35},
      {"WaltDisney",          1, 0,     0, 0,     0, 0,     0, 0},
      {"WellsFargo",          0, 0,     0, 0,     0, 0,     4, 0},
  };
  return Rows;
}

SiteSpec wr::sites::specForRow(const Table2Row &Row, int VariableNoise,
                               int DispatchNoise) {
  SiteSpec Spec;
  Spec.Name = Row.Name;
  // HTML: harmful lookup races + one polling pattern for the benign rest.
  if (Row.HtmlHarmful > 0)
    Spec.Patterns.push_back(
        {PatternKind::HtmlLookupHarmful, Row.HtmlHarmful});
  if (Row.Html - Row.HtmlHarmful > 0)
    Spec.Patterns.push_back(
        {PatternKind::HtmlPollingBenign, Row.Html - Row.HtmlHarmful});
  // Function.
  if (Row.FunctionHarmful > 0)
    Spec.Patterns.push_back(
        {PatternKind::FunctionCallHarmful, Row.FunctionHarmful});
  if (Row.Function - Row.FunctionHarmful > 0)
    Spec.Patterns.push_back({PatternKind::FunctionCallGuarded,
                             Row.Function - Row.FunctionHarmful});
  // Variable (form races).
  if (Row.VariableHarmful > 0)
    Spec.Patterns.push_back(
        {PatternKind::FormValueHarmful, Row.VariableHarmful});
  if (Row.Variable - Row.VariableHarmful > 0)
    Spec.Patterns.push_back({PatternKind::FormValueReadBenign,
                             Row.Variable - Row.VariableHarmful});
  // Event dispatch.
  if (Row.DispatchHarmful > 0)
    Spec.Patterns.push_back(
        {PatternKind::GomezMonitorHarmful, Row.DispatchHarmful});
  if (Row.Dispatch - Row.DispatchHarmful > 0)
    Spec.Patterns.push_back({PatternKind::DelayedSingleBenign,
                             Row.Dispatch - Row.DispatchHarmful});
  // Background noise (filtered out; drives Table 1's raw counts).
  if (VariableNoise > 0)
    Spec.Patterns.push_back(
        {PatternKind::VariableNoiseBenign, VariableNoise});
  if (DispatchNoise > 0)
    Spec.Patterns.push_back(
        {PatternKind::HoverMenuNoiseBenign, DispatchNoise});
  // Every site carries one dead-guard pattern: a guard-refutable static
  // false positive that never races dynamically (bench/static_precision).
  // Appended last, with no RNG draw, so the corpus layout above is
  // byte-for-byte what it was without it.
  Spec.Patterns.push_back({PatternKind::DeadGuardBenign, 1});
  // ... and the two prediction seeds (bench/race_prediction): a hidden
  // post-first race only SHB/WCP report, and an interval whose skipped
  // middle tick only the WCP weakening reorders. Both are pure timer
  // patterns - no resources, no RNG draw - so everything above them
  // keeps its exact layout and schedule.
  Spec.Patterns.push_back({PatternKind::PostFirstRaceBenign, 1});
  Spec.Patterns.push_back({PatternKind::IntervalSkipBenign, 1});
  return Spec;
}

GeneratedSite wr::sites::buildSite(const SiteSpec &Spec) {
  SiteBuilder Builder(Spec.Name);
  Builder.html("<h1>" + Spec.Name + "</h1>");
  for (const PatternInstance &P : Spec.Patterns)
    emitPattern(Builder, P);
  GeneratedSite Site;
  Site.Name = Spec.Name;
  Site.IndexUrl = Spec.Name + "/index.html";
  Site.Html = Builder.body();
  Site.Resources = Builder.resources();
  Site.Expected = Builder.expected();
  return Site;
}

int wr::sites::sampleNoiseCount(Rng &R) {
  double P = R.nextDouble();
  if (P < 0.30)
    return static_cast<int>(R.nextInRange(0, 2));
  if (P < 0.60)
    return static_cast<int>(R.nextInRange(3, 8));
  if (P < 0.85)
    return static_cast<int>(R.nextInRange(9, 40));
  if (P < 0.97)
    return static_cast<int>(R.nextInRange(41, 120));
  return static_cast<int>(R.nextInRange(121, 190));
}

std::vector<GeneratedSite>
wr::sites::buildFortune100Corpus(uint64_t Seed) {
  // Filler company names to reach 100 sites (plausible Fortune-100-style
  // names; their pages carry only background noise).
  static const char *const Fillers[] = {
      "ExxonMobil",    "Chevron",        "GeneralElectric",
      "ConAgra",       "Boeing",         "Caterpillar",
      "DowChemical",   "PepsiCo",        "KraftFoods",
      "Honeywell",     "Alcoa",          "Goodyear",
      "UPS",           "Aetna",          "Cigna",
      "TravelersCos",  "Prudential",     "RaytheonCo",
      "LockheedMartin","NorthropGrumman","Deere",
      "DuPont",        "EmersonElectric","GeneralMills",
      "KimberlyClark", "Nike",           "ColgatePalmolive",
      "Sysco",         "TysonFoods",     "Archer",
      "Progressive",   "AbbottLabs",     "Merck",
      "Pfizer",        "JohnsonJohnson", "Amgen",
      "BristolMyers",  "EliLilly",       "UnitedParcel",
      "Oracle",        "HewlettPackard", "Dell",
      "Apple",         "Microsoft",      "Google",
      "Amazon",        "TimeWarner",     "DirecTV",
      "Qualcomm",      "TexasInstruments","AppliedMaterials",
      "Halliburton",   "Schlumberger",   "BakerHughes",
      "Murphy",        "Hess",           "Tesoro",
      "PhillipsPete",  "DukeEnergy",     "Exelon"};

  Rng R(Seed);
  std::vector<GeneratedSite> Corpus;
  std::vector<SiteSpec> Specs;
  for (const Table2Row &Row : table2Rows())
    Specs.push_back(
        specForRow(Row, sampleNoiseCount(R), sampleNoiseCount(R)));
  size_t FillerIndex = 0;
  while (Specs.size() < 100 && FillerIndex < std::size(Fillers)) {
    Table2Row Empty = {Fillers[FillerIndex++], 0, 0, 0, 0, 0, 0, 0, 0};
    Specs.push_back(
        specForRow(Empty, sampleNoiseCount(R), sampleNoiseCount(R)));
  }
  // Pin the Table 1 maxima: one site gets the largest variable noise
  // (raw max 269) and one the largest event-dispatch noise (raw max 198).
  for (SiteSpec &Spec : Specs) {
    if (Spec.Name == std::string("Apple"))
      for (PatternInstance &P : Spec.Patterns) {
        if (P.Kind == PatternKind::VariableNoiseBenign)
          P.Count = 269;
      }
    if (Spec.Name == std::string("Microsoft"))
      for (PatternInstance &P : Spec.Patterns) {
        if (P.Kind == PatternKind::HoverMenuNoiseBenign)
          P.Count = 198;
      }
  }
  Corpus.reserve(Specs.size());
  for (const SiteSpec &Spec : Specs)
    Corpus.push_back(buildSite(Spec));
  return Corpus;
}

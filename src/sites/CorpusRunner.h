//===- sites/CorpusRunner.h - Run WebRacer over a corpus --------*- C++ -*-===//
//
// Part of the WebRacer reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drives a WebRacer session over every site of a corpus and aggregates
/// the per-type race statistics the paper reports: Table 1 (raw
/// mean/median/max per type) and Table 2 (per-site filtered counts).
///
//===----------------------------------------------------------------------===//

#ifndef WEBRACER_SITES_CORPUSRUNNER_H
#define WEBRACER_SITES_CORPUSRUNNER_H

#include "analysis/CrossCheck.h"
#include "detect/Report.h"
#include "obs/RunStats.h"
#include "sites/Corpus.h"
#include "triage/Signature.h"
#include "webracer/Session.h"

#include <string>
#include <vector>

namespace wr::sites {

/// Results for one site.
struct SiteRunStats {
  std::string Name;
  detect::RaceTally Raw;
  detect::RaceTally Filtered;
  ExpectedRaces Expected;
  /// The site's full statistics record (operations, HB edges, crashes,
  /// per-rule counts, attrition, ...).
  obs::RunStats Stats;
  /// Filtered races kept for harmfulness analysis.
  std::vector<detect::Race> FilteredRaces;
  /// Structural signature of each kept race, parallel to FilteredRaces
  /// (computed while the site's browser - and so its HB graph - was
  /// alive; the corpus report deduplicates on these).
  std::vector<triage::RaceSignature> Signatures;
  /// Per-suppression-entry hit counts when the base options carried a
  /// suppression file (empty otherwise); merged corpus-wide for the
  /// unmatched-suppression warnings.
  std::vector<uint64_t> SuppressionHits;
  /// Static-analyzer precision against this site's raw dynamic races,
  /// per guard class (the cross-check, run corpus-wide).
  analysis::StaticPrecision Static;
};

/// Aggregate over the corpus.
struct CorpusStats {
  std::vector<SiteRunStats> Sites;

  struct Distribution {
    double Mean = 0;
    double Median = 0;
    size_t Max = 0;
  };

  /// Raw-count distribution for one race kind across sites (Table 1).
  Distribution rawDistribution(detect::RaceKind Kind) const;
  /// Raw-count distribution for the per-site totals (Table 1 "All").
  Distribution rawTotalDistribution() const;

  /// Sum of filtered counts by kind (Table 2 totals row).
  detect::RaceTally filteredTotals() const;

  /// Corpus-wide static precision tallies (sum of per-site Static).
  analysis::StaticPrecision staticTotals() const;

  /// Corpus-order merge of every site's statistics record. Deterministic
  /// for any job count: sites land in corpus-order slots before merging.
  obs::RunStats aggregate() const;

  /// Element-wise sum of the sites' per-suppression-entry hit counts
  /// (empty when no site carried any).
  std::vector<uint64_t> suppressionHits() const;
};

/// Runs one site through a session built from \p Base (a fresh browser
/// per site, seeded per-site for independent jitter).
SiteRunStats runSite(const GeneratedSite &Site,
                     const webracer::SessionOptions &Base,
                     uint64_t SiteSeed);

/// Runs the whole corpus. \p Jobs > 1 runs sites on a thread pool: each
/// site is a self-contained session (own browser, heap, and HB graph), so
/// the pool shares no mutable state beyond the claim counter. Per-site
/// seeds are drawn from \p Seed in corpus order *before* any site runs
/// and results land in corpus-order slots, so the aggregate is identical
/// for every job count (and to the serial run). \p Jobs == 0 uses the
/// hardware concurrency.
CorpusStats runCorpus(const std::vector<GeneratedSite> &Corpus,
                      const webracer::SessionOptions &Base, uint64_t Seed,
                      unsigned Jobs = 1);

} // namespace wr::sites

#endif // WEBRACER_SITES_CORPUSRUNNER_H

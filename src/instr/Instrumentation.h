//===- instr/Instrumentation.h - Browser instrumentation hooks --*- C++ -*-===//
//
// Part of the WebRacer reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The instrumentation interface between the simulated browser engine and
/// analysis tools. The paper (Sec. 5.2.1) argues browsers should expose "a
/// well-defined, standard instrumentation interface ... that analysis tools
/// like WebRacer could be built upon"; this is ours.
///
/// The runtime invokes a sink at every operation boundary, happens-before
/// edge, and logical memory access. The race detector is one sink; a trace
/// recorder is another. The framework is detector-agnostic (Sec. 5.2: "our
/// framework is flexible and allows us to plug in any dynamic race
/// detector").
///
//===----------------------------------------------------------------------===//

#ifndef WEBRACER_INSTR_INSTRUMENTATION_H
#define WEBRACER_INSTR_INSTRUMENTATION_H

#include "hb/HbGraph.h"
#include "mem/Location.h"

#include <memory>
#include <string>
#include <vector>

namespace wr {

/// Callbacks delivered by the engine while a page executes. Default
/// implementations do nothing so sinks override only what they need.
class InstrumentationSink {
public:
  virtual ~InstrumentationSink();

  /// A new operation was created (it may not have started running yet).
  virtual void onOperationCreated(OpId Op, const Operation &Meta) {
    (void)Op;
    (void)Meta;
  }

  /// \p Op became the currently executing operation.
  virtual void onOperationBegin(OpId Op) { (void)Op; }

  /// \p Op finished executing. \p Crashed is true if the operation was
  /// terminated by an uncaught JS exception (the "hidden crashes" of
  /// Sec. 2.3).
  virtual void onOperationEnd(OpId Op, bool Crashed) {
    (void)Op;
    (void)Crashed;
  }

  /// A happens-before edge was added.
  virtual void onHbEdge(OpId From, OpId To, HbRule Rule) {
    (void)From;
    (void)To;
    (void)Rule;
  }

  /// A new logical location was interned: \p Id will name \p Loc in every
  /// subsequent onMemoryAccess. Fired once per distinct location, in id
  /// order, before the first access that uses the id, so sinks attached
  /// from session start can mirror the engine's interner exactly.
  virtual void onLocationInterned(LocId Id, const Location &Loc) {
    (void)Id;
    (void)Loc;
  }

  /// A logical memory access occurred.
  virtual void onMemoryAccess(const Access &A) { (void)A; }

  /// An event was dispatched (anchor ids delimit its handler operations).
  /// \p TargetObject carries the JS identity for non-node targets (window,
  /// XHR objects) so offline consumers can key dispatch counts exactly the
  /// way the engine does.
  virtual void onEventDispatch(NodeId Target, ContainerId TargetObject,
                               const std::string &EventType,
                               int32_t DispatchIndex, OpId Begin, OpId End) {
    (void)Target;
    (void)TargetObject;
    (void)EventType;
    (void)DispatchIndex;
    (void)Begin;
    (void)End;
  }
};

/// Fans callbacks out to several sinks in registration order.
class MultiSink final : public InstrumentationSink {
public:
  void addSink(InstrumentationSink *Sink) { Sinks.push_back(Sink); }
  void clear() { Sinks.clear(); }

  void onOperationCreated(OpId Op, const Operation &Meta) override;
  void onOperationBegin(OpId Op) override;
  void onOperationEnd(OpId Op, bool Crashed) override;
  void onHbEdge(OpId From, OpId To, HbRule Rule) override;
  void onLocationInterned(LocId Id, const Location &Loc) override;
  void onMemoryAccess(const Access &A) override;
  void onEventDispatch(NodeId Target, ContainerId TargetObject,
                       const std::string &EventType, int32_t DispatchIndex,
                       OpId Begin, OpId End) override;

private:
  std::vector<InstrumentationSink *> Sinks;
};

} // namespace wr

#endif // WEBRACER_INSTR_INSTRUMENTATION_H

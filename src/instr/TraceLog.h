//===- instr/TraceLog.h - Replayable instrumentation trace ------*- C++ -*-===//
//
// Part of the WebRacer reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The recorded execution trace as a first-class artifact. A TraceLog is an
/// append-only stream of every instrumentation callback - operations with
/// their full metadata, rule-tagged happens-before edges, logical memory
/// accesses, and event dispatches - carrying enough payload that the
/// happens-before graph and any detector run can be reconstructed without
/// the browser (see detect/TraceReplay.h). Predictive race-detection
/// systems treat the trace, not the live execution, as the unit the
/// analysis consumes; recording once and replaying detector or filter
/// variants avoids re-executing the page per configuration.
///
/// Traces round-trip through a compact binary format (varint-coded, with a
/// magic/version header) so they can be written to disk by one process and
/// analyzed by another (`webracer-cli --record` / `--replay`).
///
/// Formats: WRT2 (current) opens with a location string table - every
/// distinct logical location once, in id order - and access records carry
/// the varint LocId; WRT1 (legacy) inlined the full location into every
/// access record. serialize() always writes WRT2; deserialize() accepts
/// both, re-interning WRT1's inline locations in stream order (which is
/// first-touch order, so the ids match the online run's).
///
//===----------------------------------------------------------------------===//

#ifndef WEBRACER_INSTR_TRACELOG_H
#define WEBRACER_INSTR_TRACELOG_H

#include "instr/Instrumentation.h"
#include "mem/LocationInterner.h"

#include <cstdint>
#include <string>
#include <vector>

namespace wr {

/// One record of the instrumentation stream. Unlike a debug log line, an
/// event keeps the complete payload of its callback (the whole Operation
/// for creations, the whole Access for memory events) so that replay loses
/// nothing the online run saw.
struct TraceEvent {
  enum class Kind : uint8_t {
    OpCreated,
    OpBegin,
    OpEnd,
    HbEdge,
    MemAccess,
    Dispatch,
  };

  Kind K = Kind::OpBegin;
  /// Created/begun/ended op; edge source; dispatch begin anchor.
  OpId Op = InvalidOpId;
  /// Edge target; dispatch end anchor.
  OpId Op2 = InvalidOpId;
  HbRule Rule = HbRule::RProgram; ///< HbEdge only.
  bool Crashed = false;           ///< OpEnd only.
  Operation Meta;                 ///< OpCreated only.
  Access Mem;                     ///< MemAccess only.
  NodeId Target = InvalidNodeId;  ///< Dispatch only.
  ContainerId TargetObject = 0;   ///< Dispatch only (non-node targets).
  std::string EventType;          ///< Dispatch only.
  int32_t DispatchIndex = -1;     ///< Dispatch only.
};

/// The append-only record stream. Attach to a Browser as an
/// instrumentation sink to record online; deserialize to analyze offline.
class TraceLog final : public InstrumentationSink {
public:
  using EventKind = TraceEvent::Kind;

  void onOperationCreated(OpId Op, const Operation &Meta) override;
  void onOperationBegin(OpId Op) override;
  void onOperationEnd(OpId Op, bool Crashed) override;
  void onHbEdge(OpId From, OpId To, HbRule Rule) override;
  void onLocationInterned(LocId Id, const Location &Loc) override;
  void onMemoryAccess(const Access &A) override;
  void onEventDispatch(NodeId Target, ContainerId TargetObject,
                       const std::string &EventType, int32_t DispatchIndex,
                       OpId Begin, OpId End) override;

  /// The trace's own location table: mirrors the engine's interner while
  /// recording (the sink must be attached from session start, before any
  /// location is interned), or is rebuilt from the WRT2 string table /
  /// WRT1 inline locations when deserializing. Access events' LocIds
  /// resolve against this.
  const LocationInterner &interner() const { return Interner; }
  LocationInterner &interner() { return Interner; }

  const std::vector<TraceEvent> &events() const { return Events; }
  size_t size() const { return Events.size(); }
  bool empty() const { return Events.empty(); }
  void clear() {
    Events.clear();
    Interner.clear();
    Source.clear();
  }

  /// Where this trace came from (a file path for deserialized traces, a
  /// page URL for live recordings) - provenance the triage layer carries
  /// into first-witness attributions. In-memory only: the WRT formats do
  /// not encode it, so serialized traces stay byte-compatible.
  void setSource(std::string S) { Source = std::move(S); }
  const std::string &source() const { return Source; }

  /// Counts events of one kind.
  size_t count(EventKind Kind) const;

  /// Renders the whole trace, one event per line (debugging).
  std::string toString() const;

  /// Encodes the trace into the current (WRT2) binary format: location
  /// string table first, then events referencing it by id.
  std::string serialize() const;

  /// Encodes the trace in the legacy WRT1 layout (inline locations, no
  /// table). Kept so compatibility tooling and tests can produce traces
  /// older readers understand; every access's LocId must resolve in the
  /// trace's interner.
  std::string serializeLegacyWrt1() const;

  /// Decodes \p Bytes (WRT2 or legacy WRT1) into \p Out. Returns false
  /// (and sets \p Error when given) on a bad header, truncation,
  /// out-of-range enum values, a corrupt location table, or an access
  /// referencing a location id the table does not define; \p Out is left
  /// cleared on failure.
  static bool deserialize(const std::string &Bytes, TraceLog &Out,
                          std::string *Error = nullptr);

private:
  std::vector<TraceEvent> Events;
  LocationInterner Interner;
  std::string Source;
};

} // namespace wr

#endif // WEBRACER_INSTR_TRACELOG_H

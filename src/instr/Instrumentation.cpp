//===- instr/Instrumentation.cpp - Browser instrumentation hooks ----------===//

#include "instr/Instrumentation.h"

using namespace wr;

InstrumentationSink::~InstrumentationSink() = default;

void MultiSink::onOperationCreated(OpId Op, const Operation &Meta) {
  for (InstrumentationSink *Sink : Sinks)
    Sink->onOperationCreated(Op, Meta);
}

void MultiSink::onOperationBegin(OpId Op) {
  for (InstrumentationSink *Sink : Sinks)
    Sink->onOperationBegin(Op);
}

void MultiSink::onOperationEnd(OpId Op, bool Crashed) {
  for (InstrumentationSink *Sink : Sinks)
    Sink->onOperationEnd(Op, Crashed);
}

void MultiSink::onHbEdge(OpId From, OpId To, HbRule Rule) {
  for (InstrumentationSink *Sink : Sinks)
    Sink->onHbEdge(From, To, Rule);
}

void MultiSink::onLocationInterned(LocId Id, const Location &Loc) {
  for (InstrumentationSink *Sink : Sinks)
    Sink->onLocationInterned(Id, Loc);
}

void MultiSink::onMemoryAccess(const Access &A) {
  for (InstrumentationSink *Sink : Sinks)
    Sink->onMemoryAccess(A);
}

void MultiSink::onEventDispatch(NodeId Target, ContainerId TargetObject,
                                const std::string &EventType,
                                int32_t DispatchIndex, OpId Begin, OpId End) {
  for (InstrumentationSink *Sink : Sinks)
    Sink->onEventDispatch(Target, TargetObject, EventType, DispatchIndex,
                          Begin, End);
}

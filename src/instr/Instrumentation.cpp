//===- instr/Instrumentation.cpp - Browser instrumentation hooks ----------===//

#include "instr/Instrumentation.h"

#include "support/Format.h"

using namespace wr;

InstrumentationSink::~InstrumentationSink() = default;

void MultiSink::onOperationCreated(OpId Op, const Operation &Meta) {
  for (InstrumentationSink *Sink : Sinks)
    Sink->onOperationCreated(Op, Meta);
}

void MultiSink::onOperationBegin(OpId Op) {
  for (InstrumentationSink *Sink : Sinks)
    Sink->onOperationBegin(Op);
}

void MultiSink::onOperationEnd(OpId Op, bool Crashed) {
  for (InstrumentationSink *Sink : Sinks)
    Sink->onOperationEnd(Op, Crashed);
}

void MultiSink::onHbEdge(OpId From, OpId To, HbRule Rule) {
  for (InstrumentationSink *Sink : Sinks)
    Sink->onHbEdge(From, To, Rule);
}

void MultiSink::onMemoryAccess(const Access &A) {
  for (InstrumentationSink *Sink : Sinks)
    Sink->onMemoryAccess(A);
}

void MultiSink::onEventDispatch(NodeId Target, const std::string &EventType,
                                int32_t DispatchIndex, OpId Begin, OpId End) {
  for (InstrumentationSink *Sink : Sinks)
    Sink->onEventDispatch(Target, EventType, DispatchIndex, Begin, End);
}

void TraceRecorder::onOperationCreated(OpId Op, const Operation &Meta) {
  Event E;
  E.Kind = EventKind::OpCreated;
  E.Op = Op;
  E.Text = strFormat("%s %s", wr::toString(Meta.Kind), Meta.Label.c_str());
  Events.push_back(std::move(E));
}

void TraceRecorder::onOperationBegin(OpId Op) {
  Event E;
  E.Kind = EventKind::OpBegin;
  E.Op = Op;
  Events.push_back(std::move(E));
}

void TraceRecorder::onOperationEnd(OpId Op, bool Crashed) {
  Event E;
  E.Kind = EventKind::OpEnd;
  E.Op = Op;
  E.Crashed = Crashed;
  Events.push_back(std::move(E));
}

void TraceRecorder::onHbEdge(OpId From, OpId To, HbRule Rule) {
  Event E;
  E.Kind = EventKind::HbEdge;
  E.Op = From;
  E.Op2 = To;
  E.Rule = Rule;
  Events.push_back(std::move(E));
}

void TraceRecorder::onMemoryAccess(const Access &A) {
  Event E;
  E.Kind = EventKind::MemAccess;
  E.Op = A.Op;
  E.Mem = A;
  Events.push_back(std::move(E));
}

void TraceRecorder::onEventDispatch(NodeId Target,
                                    const std::string &EventType,
                                    int32_t DispatchIndex, OpId Begin,
                                    OpId End) {
  Event E;
  E.Kind = EventKind::Dispatch;
  E.Op = Begin;
  E.Op2 = End;
  E.Text = strFormat("disp%d(%s, node%u)", DispatchIndex, EventType.c_str(),
                     Target);
  Events.push_back(std::move(E));
}

std::string TraceRecorder::toString() const {
  std::string Out;
  for (const Event &E : Events) {
    switch (E.Kind) {
    case EventKind::OpCreated:
      Out += strFormat("op %u created: %s\n", E.Op, E.Text.c_str());
      break;
    case EventKind::OpBegin:
      Out += strFormat("op %u begin\n", E.Op);
      break;
    case EventKind::OpEnd:
      Out += strFormat("op %u end%s\n", E.Op, E.Crashed ? " (crashed)" : "");
      break;
    case EventKind::HbEdge:
      Out += strFormat("hb %u -> %u  [%s]\n", E.Op, E.Op2,
                       wr::toString(E.Rule));
      break;
    case EventKind::MemAccess:
      Out += strFormat("op %u %s %s  [%s] %s\n", E.Op,
                       wr::toString(E.Mem.Kind),
                       wr::toString(E.Mem.Loc).c_str(),
                       wr::toString(E.Mem.Origin), E.Mem.Detail.c_str());
      break;
    case EventKind::Dispatch:
      Out += strFormat("dispatch %s ops [%u..%u]\n", E.Text.c_str(), E.Op,
                       E.Op2);
      break;
    }
  }
  return Out;
}

size_t TraceRecorder::count(EventKind Kind) const {
  size_t N = 0;
  for (const Event &E : Events)
    if (E.Kind == Kind)
      ++N;
  return N;
}

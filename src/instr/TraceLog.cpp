//===- instr/TraceLog.cpp - Replayable instrumentation trace ---------------===//

#include "instr/TraceLog.h"

#include "support/Format.h"

#include <cassert>
#include <climits>
#include <cstring>
#include <limits>

using namespace wr;

// ---------------------------------------------------------------------------
// Recording
// ---------------------------------------------------------------------------

void TraceLog::onOperationCreated(OpId Op, const Operation &Meta) {
  TraceEvent E;
  E.K = EventKind::OpCreated;
  E.Op = Op;
  E.Meta = Meta;
  Events.push_back(std::move(E));
}

void TraceLog::onOperationBegin(OpId Op) {
  TraceEvent E;
  E.K = EventKind::OpBegin;
  E.Op = Op;
  Events.push_back(std::move(E));
}

void TraceLog::onOperationEnd(OpId Op, bool Crashed) {
  TraceEvent E;
  E.K = EventKind::OpEnd;
  E.Op = Op;
  E.Crashed = Crashed;
  Events.push_back(std::move(E));
}

void TraceLog::onHbEdge(OpId From, OpId To, HbRule Rule) {
  TraceEvent E;
  E.K = EventKind::HbEdge;
  E.Op = From;
  E.Op2 = To;
  E.Rule = Rule;
  Events.push_back(std::move(E));
}

void TraceLog::onLocationInterned(LocId Id, const Location &Loc) {
  LocId Got = Interner.intern(Loc);
  (void)Got;
  (void)Id;
  assert(Got == Id &&
         "trace interner out of sync (sink attached mid-session?)");
}

void TraceLog::onMemoryAccess(const Access &A) {
  TraceEvent E;
  E.K = EventKind::MemAccess;
  E.Op = A.Op;
  E.Mem = A;
  Events.push_back(std::move(E));
}

void TraceLog::onEventDispatch(NodeId Target, ContainerId TargetObject,
                               const std::string &EventType,
                               int32_t DispatchIndex, OpId Begin, OpId End) {
  TraceEvent E;
  E.K = EventKind::Dispatch;
  E.Op = Begin;
  E.Op2 = End;
  E.Target = Target;
  E.TargetObject = TargetObject;
  E.EventType = EventType;
  E.DispatchIndex = DispatchIndex;
  Events.push_back(std::move(E));
}

size_t TraceLog::count(EventKind Kind) const {
  size_t N = 0;
  for (const TraceEvent &E : Events)
    if (E.K == Kind)
      ++N;
  return N;
}

std::string TraceLog::toString() const {
  std::string Out;
  for (const TraceEvent &E : Events) {
    switch (E.K) {
    case EventKind::OpCreated:
      Out += strFormat("op %u created: %s %s\n", E.Op,
                       wr::toString(E.Meta.Kind), E.Meta.Label.c_str());
      break;
    case EventKind::OpBegin:
      Out += strFormat("op %u begin\n", E.Op);
      break;
    case EventKind::OpEnd:
      Out += strFormat("op %u end%s\n", E.Op, E.Crashed ? " (crashed)" : "");
      break;
    case EventKind::HbEdge:
      Out += strFormat("hb %u -> %u  [%s]\n", E.Op, E.Op2,
                       wr::toString(E.Rule));
      break;
    case EventKind::MemAccess: {
      std::string LocStr = Interner.contains(E.Mem.Loc)
                               ? wr::toString(Interner.resolve(E.Mem.Loc))
                               : strFormat("loc#%u", E.Mem.Loc);
      Out += strFormat("op %u %s %s  [%s] %s\n", E.Op,
                       wr::toString(E.Mem.Kind), LocStr.c_str(),
                       wr::toString(E.Mem.Origin), E.Mem.Detail.c_str());
      break;
    }
    case EventKind::Dispatch:
      Out += strFormat("dispatch disp%d(%s, node%u) ops [%u..%u]\n",
                       E.DispatchIndex, E.EventType.c_str(), E.Target, E.Op,
                       E.Op2);
      break;
    }
  }
  return Out;
}

// ---------------------------------------------------------------------------
// Binary serialization
// ---------------------------------------------------------------------------
//
// Layout (WRT2, current): "WRT2" magic, a varint location count followed
// by that many location records (the string table, in LocId order), then
// a varint event count and one record per event: a kind byte followed by
// kind-specific payload. Access records name their location by varint
// LocId into the table. All integers are LEB128 varints; signed values
// are zigzag-coded; strings are a varint length plus raw bytes.
//
// Layout (WRT1, legacy): same, minus the location table; each access
// record inlines its full location instead of an id. Decoding re-interns
// the inline locations in stream order, which reproduces the online ids.

namespace {

constexpr char MagicV2[4] = {'W', 'R', 'T', '2'};
constexpr char MagicV1[4] = {'W', 'R', 'T', '1'};

void putVar(std::string &Out, uint64_t V) {
  while (V >= 0x80) {
    Out.push_back(static_cast<char>((V & 0x7f) | 0x80));
    V >>= 7;
  }
  Out.push_back(static_cast<char>(V));
}

void putZig(std::string &Out, int64_t V) {
  putVar(Out, (static_cast<uint64_t>(V) << 1) ^
                  static_cast<uint64_t>(V >> 63));
}

void putU8(std::string &Out, uint8_t V) {
  Out.push_back(static_cast<char>(V));
}

void putStr(std::string &Out, const std::string &S) {
  putVar(Out, S.size());
  Out += S;
}

void putLocation(std::string &Out, const Location &Loc) {
  putU8(Out, static_cast<uint8_t>(Loc.index()));
  if (const auto *V = std::get_if<JSVarLoc>(&Loc)) {
    putVar(Out, V->Container);
    putStr(Out, V->Name);
  } else if (const auto *H = std::get_if<HtmlElemLoc>(&Loc)) {
    putVar(Out, H->Doc);
    putU8(Out, static_cast<uint8_t>(H->Kind));
    putVar(Out, H->Node);
    putStr(Out, H->Key);
  } else {
    const auto &E = std::get<EventHandlerLoc>(Loc);
    putVar(Out, E.Target);
    putVar(Out, E.TargetObject);
    putStr(Out, E.EventType);
    putVar(Out, E.HandlerId);
  }
}

/// WRT2 access record: the location is a varint id into the table.
void putAccess(std::string &Out, const Access &A) {
  putU8(Out, static_cast<uint8_t>(A.Kind));
  putU8(Out, static_cast<uint8_t>(A.Origin));
  putVar(Out, A.Op);
  putVar(Out, A.Loc);
  putStr(Out, A.Detail);
}

/// WRT1 access record: the full location is inlined.
void putAccessLegacy(std::string &Out, const Access &A,
                     const LocationInterner &Interner) {
  putU8(Out, static_cast<uint8_t>(A.Kind));
  putU8(Out, static_cast<uint8_t>(A.Origin));
  putVar(Out, A.Op);
  assert(Interner.contains(A.Loc) &&
         "legacy serialization needs a resolvable location id");
  putLocation(Out, Interner.resolve(A.Loc));
  putStr(Out, A.Detail);
}

void putOperation(std::string &Out, const Operation &Op) {
  putU8(Out, static_cast<uint8_t>(Op.Kind));
  putVar(Out, Op.Doc);
  putVar(Out, Op.Subject);
  putStr(Out, Op.EventType);
  putZig(Out, Op.DispatchIndex);
  putStr(Out, Op.Label);
  putU8(Out, static_cast<uint8_t>(Op.Trigger));
  putStr(Out, Op.TriggerKey);
}

/// Bounds-checked reader over the serialized bytes. Every get* returns
/// false on truncation; enum reads additionally range-check the value.
class Reader {
public:
  Reader(const std::string &Bytes, size_t Start) : Data(Bytes), Pos(Start) {}

  bool atEnd() const { return Pos == Data.size(); }

  bool getVar(uint64_t &V) {
    V = 0;
    for (int Shift = 0; Shift < 64; Shift += 7) {
      if (Pos >= Data.size())
        return fail("truncated varint");
      uint8_t B = static_cast<uint8_t>(Data[Pos++]);
      V |= static_cast<uint64_t>(B & 0x7f) << Shift;
      if (!(B & 0x80))
        return true;
    }
    return fail("overlong varint");
  }

  bool getZig(int64_t &V) {
    uint64_t Raw;
    if (!getVar(Raw))
      return false;
    V = static_cast<int64_t>(Raw >> 1) ^ -static_cast<int64_t>(Raw & 1);
    return true;
  }

  template <typename T> bool getNarrow(T &V, const char *What) {
    uint64_t Raw;
    if (!getVar(Raw))
      return false;
    if (Raw > std::numeric_limits<T>::max())
      return fail(What);
    V = static_cast<T>(Raw);
    return true;
  }

  template <typename E> bool getEnum(E &V, uint8_t Max, const char *What) {
    if (Pos >= Data.size())
      return fail("truncated enum");
    uint8_t Raw = static_cast<uint8_t>(Data[Pos++]);
    if (Raw > Max)
      return fail(What);
    V = static_cast<E>(Raw);
    return true;
  }

  bool getBool(bool &V) {
    if (Pos >= Data.size())
      return fail("truncated bool");
    uint8_t Raw = static_cast<uint8_t>(Data[Pos++]);
    if (Raw > 1)
      return fail("bad bool");
    V = Raw != 0;
    return true;
  }

  bool getStr(std::string &S) {
    uint64_t Len;
    if (!getVar(Len))
      return false;
    if (Len > Data.size() - Pos)
      return fail("truncated string");
    S.assign(Data, Pos, static_cast<size_t>(Len));
    Pos += static_cast<size_t>(Len);
    return true;
  }

  bool getLocation(Location &Loc) {
    uint8_t Tag;
    if (Pos >= Data.size())
      return fail("truncated location tag");
    Tag = static_cast<uint8_t>(Data[Pos++]);
    switch (Tag) {
    case 0: {
      JSVarLoc V;
      if (!getVar(V.Container) || !getStr(V.Name))
        return false;
      Loc = std::move(V);
      return true;
    }
    case 1: {
      HtmlElemLoc H;
      if (!getNarrow(H.Doc, "bad document id") ||
          !getEnum(H.Kind, static_cast<uint8_t>(ElemKeyKind::ByTag),
                   "bad elem key kind") ||
          !getNarrow(H.Node, "bad node id") || !getStr(H.Key))
        return false;
      Loc = std::move(H);
      return true;
    }
    case 2: {
      EventHandlerLoc E;
      if (!getNarrow(E.Target, "bad node id") || !getVar(E.TargetObject) ||
          !getStr(E.EventType) || !getVar(E.HandlerId))
        return false;
      Loc = std::move(E);
      return true;
    }
    default:
      return fail("bad location tag");
    }
  }

  /// \p V2 selects the location encoding: a varint id into \p Interner's
  /// already-decoded table (range-checked), or a WRT1 inline location
  /// that gets interned on the fly.
  bool getAccess(Access &A, LocationInterner &Interner, bool V2) {
    if (!getEnum(A.Kind, static_cast<uint8_t>(AccessKind::Write),
                 "bad access kind") ||
        !getEnum(A.Origin, static_cast<uint8_t>(AccessOrigin::HandlerFire),
                 "bad access origin") ||
        !getNarrow(A.Op, "bad op id"))
      return false;
    if (V2) {
      uint32_t Id;
      if (!getNarrow(Id, "bad location id"))
        return false;
      if (Id >= Interner.size())
        return fail("location id out of range");
      A.Loc = Id;
    } else {
      Location Loc;
      if (!getLocation(Loc))
        return false;
      A.Loc = Interner.intern(Loc);
    }
    return getStr(A.Detail);
  }

  bool getOperation(Operation &Op) {
    int64_t DispatchIndex = 0;
    if (!getEnum(Op.Kind, static_cast<uint8_t>(OperationKind::UserAction),
                 "bad operation kind") ||
        !getNarrow(Op.Doc, "bad document id") ||
        !getNarrow(Op.Subject, "bad node id") || !getStr(Op.EventType) ||
        !getZig(DispatchIndex) || !getStr(Op.Label) ||
        !getEnum(Op.Trigger, static_cast<uint8_t>(TriggerKind::User),
                 "bad trigger kind") ||
        !getStr(Op.TriggerKey))
      return false;
    if (DispatchIndex < INT32_MIN || DispatchIndex > INT32_MAX)
      return fail("bad dispatch index");
    Op.DispatchIndex = static_cast<int32_t>(DispatchIndex);
    return true;
  }

  bool fail(const char *Message) {
    if (ErrorMessage.empty())
      ErrorMessage = strFormat("%s at offset %zu", Message, Pos);
    return false;
  }

  const std::string &error() const { return ErrorMessage; }

private:
  const std::string &Data;
  size_t Pos;
  std::string ErrorMessage;
};

} // namespace

namespace {

/// Everything after the magic + optional location table is shared between
/// the two formats, modulo how an access names its location.
template <typename AccessFn>
void putEvents(std::string &Out, const std::vector<TraceEvent> &Events,
               AccessFn PutAccess) {
  putVar(Out, Events.size());
  for (const TraceEvent &E : Events) {
    putU8(Out, static_cast<uint8_t>(E.K));
    switch (E.K) {
    case TraceEvent::Kind::OpCreated:
      putVar(Out, E.Op);
      putOperation(Out, E.Meta);
      break;
    case TraceEvent::Kind::OpBegin:
      putVar(Out, E.Op);
      break;
    case TraceEvent::Kind::OpEnd:
      putVar(Out, E.Op);
      putU8(Out, E.Crashed ? 1 : 0);
      break;
    case TraceEvent::Kind::HbEdge:
      putVar(Out, E.Op);
      putVar(Out, E.Op2);
      putU8(Out, static_cast<uint8_t>(E.Rule));
      break;
    case TraceEvent::Kind::MemAccess:
      PutAccess(Out, E.Mem);
      break;
    case TraceEvent::Kind::Dispatch:
      putVar(Out, E.Target);
      putVar(Out, E.TargetObject);
      putStr(Out, E.EventType);
      putZig(Out, E.DispatchIndex);
      putVar(Out, E.Op);
      putVar(Out, E.Op2);
      break;
    }
  }
}

} // namespace

std::string TraceLog::serialize() const {
  std::string Out;
  Out.append(MagicV2, sizeof(MagicV2));
  putVar(Out, Interner.size());
  for (LocId Id = 0; Id < Interner.size(); ++Id)
    putLocation(Out, Interner.resolve(Id));
  putEvents(Out, Events,
            [](std::string &Buf, const Access &A) { putAccess(Buf, A); });
  return Out;
}

std::string TraceLog::serializeLegacyWrt1() const {
  std::string Out;
  Out.append(MagicV1, sizeof(MagicV1));
  putEvents(Out, Events, [this](std::string &Buf, const Access &A) {
    putAccessLegacy(Buf, A, Interner);
  });
  return Out;
}

bool TraceLog::deserialize(const std::string &Bytes, TraceLog &Out,
                           std::string *Error) {
  Out.clear();
  auto Fail = [&](const std::string &Message) {
    Out.clear();
    if (Error)
      *Error = Message;
    return false;
  };
  bool V2 = false;
  if (Bytes.size() >= sizeof(MagicV2) &&
      std::memcmp(Bytes.data(), MagicV2, sizeof(MagicV2)) == 0)
    V2 = true;
  else if (Bytes.size() < sizeof(MagicV1) ||
           std::memcmp(Bytes.data(), MagicV1, sizeof(MagicV1)) != 0)
    return Fail("not a WebRacer trace (bad magic)");
  Reader R(Bytes, sizeof(MagicV2));
  if (V2) {
    // The location string table, in LocId order.
    uint64_t LocCount;
    if (!R.getVar(LocCount))
      return Fail(R.error());
    for (uint64_t I = 0; I < LocCount; ++I) {
      Location Loc;
      if (!R.getLocation(Loc))
        return Fail(R.error());
      if (Out.Interner.intern(Loc) != I)
        return Fail("duplicate location in string table");
    }
  }
  uint64_t Count;
  if (!R.getVar(Count))
    return Fail(R.error());
  Out.Events.reserve(static_cast<size_t>(Count));
  for (uint64_t I = 0; I < Count; ++I) {
    TraceEvent E;
    if (!R.getEnum(E.K, static_cast<uint8_t>(EventKind::Dispatch),
                   "bad event kind"))
      return Fail(R.error());
    bool Ok = true;
    switch (E.K) {
    case EventKind::OpCreated:
      Ok = R.getNarrow(E.Op, "bad op id") && R.getOperation(E.Meta);
      break;
    case EventKind::OpBegin:
      Ok = R.getNarrow(E.Op, "bad op id");
      break;
    case EventKind::OpEnd:
      Ok = R.getNarrow(E.Op, "bad op id") && R.getBool(E.Crashed);
      break;
    case EventKind::HbEdge:
      Ok = R.getNarrow(E.Op, "bad op id") &&
           R.getNarrow(E.Op2, "bad op id") &&
           R.getEnum(E.Rule, static_cast<uint8_t>(HbRule::RProgram),
                     "bad hb rule");
      break;
    case EventKind::MemAccess:
      Ok = R.getAccess(E.Mem, Out.Interner, V2);
      if (Ok)
        E.Op = E.Mem.Op;
      break;
    case EventKind::Dispatch:
      int64_t DispatchIndex;
      Ok = R.getNarrow(E.Target, "bad node id") &&
           R.getVar(E.TargetObject) && R.getStr(E.EventType) &&
           R.getZig(DispatchIndex) && R.getNarrow(E.Op, "bad op id") &&
           R.getNarrow(E.Op2, "bad op id");
      if (Ok) {
        if (DispatchIndex < INT32_MIN || DispatchIndex > INT32_MAX)
          return Fail("bad dispatch index");
        E.DispatchIndex = static_cast<int32_t>(DispatchIndex);
      }
      break;
    }
    if (!Ok)
      return Fail(R.error());
    Out.Events.push_back(std::move(E));
  }
  if (!R.atEnd())
    return Fail("trailing bytes after last event");
  return true;
}

//===- triage/Batch.cpp - Deduplicating batch trace ingest --------------------===//

#include "triage/Batch.h"

#include "detect/Report.h"
#include "obs/Reporter.h"
#include "support/Format.h"

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <unordered_map>

using namespace wr;
using namespace wr::triage;

bool wr::triage::listTraceFiles(const std::string &Dir,
                                std::vector<std::string> &Out,
                                std::string &Error) {
  Out.clear();
  std::error_code Ec;
  std::filesystem::directory_iterator It(Dir, Ec);
  if (Ec) {
    Error = strFormat("cannot read trace directory '%s': %s", Dir.c_str(),
                      Ec.message().c_str());
    return false;
  }
  for (const auto &Entry : It) {
    if (!Entry.is_regular_file(Ec) || Ec)
      continue;
    std::string Path = Entry.path().string();
    if (Entry.path().extension() == ".wrt")
      Out.push_back(std::move(Path));
  }
  // Directory iteration order is filesystem-dependent; the sorted list is
  // the canonical input order every job count shares.
  std::sort(Out.begin(), Out.end());
  return true;
}

TraceIngest wr::triage::ingestTraceFile(const std::string &Path,
                                        const BatchOptions &Opts) {
  TraceIngest In;
  In.Path = Path;
  if (Opts.Suppressions)
    In.SuppressionHits.resize(Opts.Suppressions->entries().size(), 0);

  std::ifstream File(Path, std::ios::binary);
  if (!File) {
    In.Error = "cannot open trace file";
    return In;
  }
  std::ostringstream Buf;
  Buf << File.rdbuf();
  TraceLog Log;
  std::string DecodeError;
  if (!TraceLog::deserialize(Buf.str(), Log, &DecodeError)) {
    In.Error = DecodeError;
    return In;
  }
  Log.setSource(Path);

  detect::ReplayResult Result = detect::replayTrace(Log, Opts.Replay);
  In.Ok = true;
  In.Stats = std::move(Result.Stats);

  // Sign the kept observed races; suppression drops are counted, never
  // silent - they land in this trace's FilterAttrition (and so in every
  // merged aggregate downstream).
  auto Suppressed = [&](const RaceSignature &Sig) {
    if (!Opts.Suppressions)
      return false;
    int Idx = Opts.Suppressions->matchIndex(Sig);
    if (Idx < 0)
      return false;
    ++In.SuppressionHits[static_cast<size_t>(Idx)];
    ++In.Suppressed;
    return true;
  };

  std::vector<detect::Race> KeptRaces;
  KeptRaces.reserve(Result.FilteredRaces.size());
  for (const detect::Race &R : Result.FilteredRaces) {
    RaceSignature Sig = computeSignature(R, Result.Hb);
    if (Suppressed(Sig))
      continue;
    In.Kept.push_back({std::move(Sig), toString(R.Loc)});
    KeptRaces.push_back(R);
  }
  if (size_t Dropped = Result.FilteredRaces.size() - KeptRaces.size()) {
    In.Stats.Attrition.Suppressed += Dropped;
    In.Stats.Attrition.Kept -=
        std::min<uint64_t>(Dropped, In.Stats.Attrition.Kept);
    In.Stats.Filtered = detect::tally(KeptRaces);
  }

  // Predicted-only findings get the same signature/suppression treatment;
  // their drops stay out of FilterAttrition (they never entered the
  // filter pipeline's input) and reconcile through the triage section.
  for (const detect::PredictionResult &P : Result.Predictions) {
    for (const detect::PredictedRace &PR : P.Races) {
      if (PR.Verdict != detect::PredictionVerdict::Predicted)
        continue;
      RaceSignature Sig = computeSignature(PR.R, Result.Hb);
      if (Suppressed(Sig))
        continue;
      In.Predicted.push_back({std::move(Sig), toString(PR.R.Loc)});
    }
  }
  return In;
}

BatchResult wr::triage::runBatch(const std::vector<std::string> &Paths,
                                 const BatchOptions &Opts) {
  BatchResult R;
  R.Traces.resize(Paths.size());

  unsigned Jobs = Opts.Jobs;
  if (Jobs == 0)
    Jobs = std::max(1u, std::thread::hardware_concurrency());
  Jobs = static_cast<unsigned>(
      std::min<size_t>(Jobs, std::max<size_t>(Paths.size(), 1)));

  if (Jobs <= 1) {
    for (size_t I = 0; I < Paths.size(); ++I)
      R.Traces[I] = ingestTraceFile(Paths[I], Opts);
  } else {
    // CorpusRunner's pool discipline: workers claim input indices through
    // an atomic counter and write into input-order slots; no shared
    // aggregate is touched until the sequential merge below.
    std::atomic<size_t> Next{0};
    auto Worker = [&] {
      for (size_t I = Next.fetch_add(1, std::memory_order_relaxed);
           I < Paths.size();
           I = Next.fetch_add(1, std::memory_order_relaxed))
        R.Traces[I] = ingestTraceFile(Paths[I], Opts);
    };
    std::vector<std::thread> Pool;
    Pool.reserve(Jobs);
    for (unsigned T = 0; T < Jobs; ++T)
      Pool.emplace_back(Worker);
    for (std::thread &T : Pool)
      T.join();
  }

  // Sequential merge in input order: group assignment, first-witness
  // provenance, and every counter are independent of completion order.
  if (Opts.Suppressions)
    R.SuppressionHits.resize(Opts.Suppressions->entries().size(), 0);
  std::unordered_map<std::string, size_t> GroupIndex;
  auto GroupFor = [&](const WitnessRace &W, const std::string &Path) {
    std::string Key = W.Sig.text();
    auto It = GroupIndex.find(Key);
    if (It == GroupIndex.end()) {
      It = GroupIndex.emplace(std::move(Key), R.Groups.size()).first;
      SignatureGroup G;
      G.Sig = W.Sig;
      G.FirstWitness = Path;
      G.ExampleLocation = W.Location;
      R.Groups.push_back(std::move(G));
    }
    return It->second;
  };

  for (const TraceIngest &In : R.Traces) {
    if (!In.Ok) {
      ++R.TracesFailed;
      continue;
    }
    ++R.TracesOk;
    R.Aggregate.merge(In.Stats);
    R.TotalSuppressed += In.Suppressed;
    for (size_t I = 0; I < In.SuppressionHits.size(); ++I)
      R.SuppressionHits[I] += In.SuppressionHits[I];

    std::vector<bool> SeenThisTrace(R.Groups.size(), false);
    auto Touch = [&](size_t Idx) {
      if (Idx >= SeenThisTrace.size())
        SeenThisTrace.resize(Idx + 1, false);
      if (!SeenThisTrace[Idx]) {
        SeenThisTrace[Idx] = true;
        ++R.Groups[Idx].Traces;
      }
    };
    for (const WitnessRace &W : In.Kept) {
      size_t Idx = GroupFor(W, In.Path);
      ++R.Groups[Idx].Occurrences;
      ++R.TotalKept;
      Touch(Idx);
    }
    for (const WitnessRace &W : In.Predicted) {
      size_t Idx = GroupFor(W, In.Path);
      ++R.Groups[Idx].PredictedOccurrences;
      ++R.TotalPredicted;
      Touch(Idx);
    }
  }

  // Rank: most frequent first, signature text as the deterministic
  // tiebreak. stable_sort keeps first-seen order irrelevant.
  std::stable_sort(R.Groups.begin(), R.Groups.end(),
                   [](const SignatureGroup &A, const SignatureGroup &B) {
                     uint64_t Ta = A.Occurrences + A.PredictedOccurrences;
                     uint64_t Tb = B.Occurrences + B.PredictedOccurrences;
                     if (Ta != Tb)
                       return Ta > Tb;
                     return A.Sig.text() < B.Sig.text();
                   });

  if (Opts.Suppressions) {
    const auto &Entries = Opts.Suppressions->entries();
    for (size_t I = 0; I < Entries.size(); ++I)
      if (R.SuppressionHits[I] == 0)
        R.UnmatchedSuppressions.push_back(Entries[I].Name);
  }
  return R;
}

obs::Json wr::triage::buildBatchReport(const std::string &Name,
                                       const BatchResult &R) {
  obs::Json Doc = obs::makeReportEnvelope("batch", Name);

  obs::Json Traces = obs::Json::object();
  Traces.set("total", static_cast<uint64_t>(R.Traces.size()));
  Traces.set("ok", R.TracesOk);
  Traces.set("failed", R.TracesFailed);
  Doc.set("traces", std::move(Traces));

  if (R.TracesFailed) {
    obs::Json Errors = obs::Json::array();
    for (const TraceIngest &In : R.Traces) {
      if (In.Ok)
        continue;
      obs::Json Row = obs::Json::object();
      Row.set("path", In.Path);
      Row.set("error", In.Error);
      Errors.push(std::move(Row));
    }
    Doc.set("errors", std::move(Errors));
  }

  Doc.set("aggregate", R.Aggregate.toJson());

  obs::Json Triage = obs::Json::object();
  Triage.set("signatures", static_cast<uint64_t>(R.Groups.size()));
  Triage.set("occurrences", R.TotalKept);
  if (R.TotalPredicted)
    Triage.set("predicted_occurrences", R.TotalPredicted);
  Triage.set("suppressed", R.TotalSuppressed);
  if (!R.SuppressionHits.empty()) {
    obs::Json Hits = obs::Json::array();
    for (uint64_t H : R.SuppressionHits)
      Hits.push(H);
    Triage.set("suppression_hits", std::move(Hits));
  }
  if (!R.UnmatchedSuppressions.empty()) {
    obs::Json Unmatched = obs::Json::array();
    for (const std::string &N : R.UnmatchedSuppressions)
      Unmatched.push(N);
    Triage.set("unmatched_suppressions", std::move(Unmatched));
  }

  obs::Json Groups = obs::Json::array();
  for (const SignatureGroup &G : R.Groups) {
    obs::Json Row = obs::Json::object();
    Row.set("id", G.Sig.id());
    Row.set("kind", G.Sig.Kind);
    Row.set("location", G.Sig.Location);
    Row.set("access", G.Sig.Access);
    Row.set("context", G.Sig.Context);
    Row.set("occurrences", G.Occurrences);
    if (G.PredictedOccurrences)
      Row.set("predicted_occurrences", G.PredictedOccurrences);
    Row.set("traces", G.Traces);
    Row.set("first_witness", G.FirstWitness);
    Row.set("example", G.ExampleLocation);
    Groups.push(std::move(Row));
  }
  Triage.set("groups", std::move(Groups));
  Doc.set("triage", std::move(Triage));
  return Doc;
}

//===- triage/Signature.h - Stable structural race signatures --*- C++ -*-===//
//
// Part of the WebRacer reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The stable structural identity of a race report, the unit the triage
/// engine deduplicates, counts, and suppresses on - the analogue of
/// Valgrind's canonicalized error contexts. At fleet scale the same
/// Southwest-form race arrives from millions of traces; everything that
/// varies across those traces (operation ids, node ids, container ids,
/// dispatch indices, seed-dependent symbol uniquifiers, WRT1-vs-WRT2
/// encoding) must cancel out of the signature, and everything structural
/// (race kind, the shape of the location, how each endpoint accessed it,
/// the causal happens-before rules that made the endpoints schedulable)
/// must survive.
///
/// A signature has four components, each a short stable string, so
/// suppression files can wildcard them independently:
///
///  * Kind     - the Sec. 2 race taxonomy ("variable", "html",
///               "function", "event-dispatch").
///  * Location - the location's structural pattern: variant kind plus its
///               stable key with runtime ids elided and decimal runs in
///               source-level names folded to '#' (the corpus's "_p<N>"
///               uniquifiers, menu item indices, ...).
///  * Access   - both endpoints' access shape, canonically ordered so the
///               OpId numbering (and hence which endpoint the detector
///               stored first) is irrelevant: read/write, access origin,
///               operation kind, and trigger kind.
///  * Context  - per endpoint, the *causal* happens-before rules on the
///               endpoint operation's in-edges (create-before-exe,
///               setTimeout, dispatch-chain, ...). Order-only rules
///               (parse order, dispatch order, the load barriers) are
///               excluded: they encode where an operation landed in one
///               schedule, not what kind of operation it is, and vary
///               with network jitter.
///
/// text() renders "Kind|Location|Access|Context"; hash()/id() derive a
/// stable 64-bit FNV-1a fingerprint for compact cross-trace keys.
///
//===----------------------------------------------------------------------===//

#ifndef WEBRACER_TRIAGE_SIGNATURE_H
#define WEBRACER_TRIAGE_SIGNATURE_H

#include "detect/RaceDetector.h"
#include "hb/HbGraph.h"

#include <string>
#include <string_view>

namespace wr::triage {

/// The canonical structural identity of one race report. Equal
/// signatures identify "the same race" across seeds, traces, trace
/// encodings, and partial-order engines.
struct RaceSignature {
  std::string Kind;     ///< Race taxonomy name.
  std::string Location; ///< Structural location pattern.
  std::string Access;   ///< Canonically ordered endpoint shapes.
  std::string Context;  ///< Causal HB-rule context per endpoint.

  /// The canonical one-line rendering: "Kind|Location|Access|Context".
  std::string text() const;

  /// Stable FNV-1a fingerprint of text() (no platform-dependent
  /// std::hash; the same signature hashes identically everywhere).
  uint64_t hash() const;

  /// The fingerprint as a fixed-width hex id for reports ("sig-...").
  std::string id() const;

  bool operator==(const RaceSignature &O) const = default;
};

/// Folds every maximal decimal-digit run in \p Name to '#': the corpus
/// generators uniquify symbols per site ("dw_p3", "menu_p3_0"), and the
/// same source pattern must sign identically at every site layout.
std::string normalizeSourcePattern(std::string_view Name);

/// Computes the signature of \p R. \p Hb must be the graph that owns the
/// race's operation ids (the browser's online, the replay's offline).
RaceSignature computeSignature(const detect::Race &R, const HbGraph &Hb);

} // namespace wr::triage

#endif // WEBRACER_TRIAGE_SIGNATURE_H

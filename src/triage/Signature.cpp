//===- triage/Signature.cpp - Stable structural race signatures ---------------===//

#include "triage/Signature.h"

#include "support/Format.h"

#include <algorithm>
#include <vector>

using namespace wr;
using namespace wr::triage;

std::string wr::triage::normalizeSourcePattern(std::string_view Name) {
  std::string Out;
  Out.reserve(Name.size());
  bool InDigits = false;
  for (char C : Name) {
    if (C >= '0' && C <= '9') {
      if (!InDigits)
        Out += '#';
      InDigits = true;
      continue;
    }
    InDigits = false;
    Out += C;
  }
  return Out;
}

namespace {

/// The structural location pattern: variant kind plus the stable key.
/// Runtime identities (node ids, container ids, document ids, handler
/// ids) are elided - they are assigned in execution order and differ per
/// seed - while source-level names survive with digit runs folded.
std::string locationPattern(const Location &Loc) {
  if (const auto *Var = std::get_if<JSVarLoc>(&Loc)) {
    const char *Scope = Var->Container == 0          ? "global"
                        : isDomContainer(Var->Container) ? "dom"
                                                         : "obj";
    return strFormat("var %s.%s", Scope,
                     normalizeSourcePattern(Var->Name).c_str());
  }
  if (const auto *Elem = std::get_if<HtmlElemLoc>(&Loc)) {
    switch (Elem->Kind) {
    case ElemKeyKind::ByNode:
      return "elem node";
    case ElemKeyKind::ById:
      return strFormat("elem #%s",
                       normalizeSourcePattern(Elem->Key).c_str());
    case ElemKeyKind::ByName:
      return strFormat("elem name=%s",
                       normalizeSourcePattern(Elem->Key).c_str());
    case ElemKeyKind::ByTag:
      return strFormat("elem <%s>",
                       normalizeSourcePattern(Elem->Key).c_str());
    }
    return "elem ?";
  }
  const auto &Handler = std::get<EventHandlerLoc>(Loc);
  // The handler slot class matters (the on-property slot collides on
  // overwrite, addEventListener handlers do not); the handler identity
  // and target node are run-local.
  return strFormat("handler (%s, %s)", Handler.EventType.c_str(),
                   Handler.HandlerId == 0 ? "slot" : "listener");
}

const char *triggerTag(TriggerKind Kind) {
  switch (Kind) {
  case TriggerKind::None:
    return "sync";
  case TriggerKind::Network:
    return "net";
  case TriggerKind::Timer:
    return "timer";
  case TriggerKind::User:
    return "user";
  }
  return "?";
}

/// Causal in-edge rules only: how the operation came to exist and be
/// schedulable. Order-only rules (parse order, dispatch order, the
/// DCL/load barriers, generic program order) describe one schedule's
/// accident of placement and vary with seed jitter, so they are not part
/// of the structural identity.
const char *causalTag(HbRule Rule) {
  switch (Rule) {
  case HbRule::R2_CreateBeforeExe:
    return "create-exe";
  case HbRule::R4_CreateBeforeDefer:
    return "create-defer";
  case HbRule::R8_TargetCreated:
    return "target-created";
  case HbRule::R10_AjaxSend:
    return "ajax";
  case HbRule::R16_SetTimeout:
    return "timeout";
  case HbRule::R17_SetInterval:
    return "interval";
  case HbRule::RA_DispatchChain:
    return "dispatch-chain";
  case HbRule::RA_InlineSplit:
    return "inline-split";
  default:
    return nullptr;
  }
}

/// The causal HB-rule context of \p Op: the deduplicated causal tags of
/// its in-edges, in enum order (deterministic regardless of the order
/// edges were added in). "-" when none qualify.
std::string contextOf(OpId Op, const HbGraph &Hb) {
  bool Seen[NumHbRules] = {};
  for (OpId Pred : Hb.predecessors(Op)) {
    HbRule Rule;
    if (Hb.findDirectEdgeRule(Pred, Op, Rule))
      Seen[static_cast<size_t>(Rule)] = true;
  }
  std::string Out;
  for (size_t I = 0; I < NumHbRules; ++I) {
    if (!Seen[I])
      continue;
    const char *Tag = causalTag(static_cast<HbRule>(I));
    if (!Tag)
      continue;
    if (!Out.empty())
      Out += '+';
    Out += Tag;
  }
  return Out.empty() ? "-" : Out;
}

/// One endpoint's engine-independent shape: read/write, why the access
/// happened, and what kind of operation (with what trigger) performed it.
std::string endpointShape(const Access &A, const HbGraph &Hb) {
  const Operation &Op = Hb.operation(A.Op);
  return strFormat("%s:%s:%s:%s", A.Kind == AccessKind::Write ? "w" : "r",
                   wr::toString(A.Origin), wr::toString(Op.Kind),
                   triggerTag(Op.Trigger));
}

} // namespace

std::string RaceSignature::text() const {
  std::string Out;
  Out.reserve(Kind.size() + Location.size() + Access.size() +
              Context.size() + 3);
  Out += Kind;
  Out += '|';
  Out += Location;
  Out += '|';
  Out += Access;
  Out += '|';
  Out += Context;
  return Out;
}

uint64_t RaceSignature::hash() const {
  // FNV-1a, fixed offset/prime: the fingerprint must be identical across
  // platforms and standard libraries (it lands in reports).
  uint64_t H = 1469598103934665603ull;
  for (char C : text()) {
    H ^= static_cast<unsigned char>(C);
    H *= 1099511628211ull;
  }
  return H;
}

std::string RaceSignature::id() const {
  return strFormat("sig-%016llx", static_cast<unsigned long long>(hash()));
}

RaceSignature wr::triage::computeSignature(const detect::Race &R,
                                           const HbGraph &Hb) {
  RaceSignature Sig;
  Sig.Kind = detect::toString(R.Kind);
  Sig.Location = locationPattern(R.Loc);
  // Canonical endpoint order: sort the (shape, context) pairs so the
  // signature does not depend on which endpoint the detector stored in
  // its slot first (an artifact of OpId numbering and schedule).
  std::pair<std::string, std::string> A{endpointShape(R.First, Hb),
                                        contextOf(R.First.Op, Hb)};
  std::pair<std::string, std::string> B{endpointShape(R.Second, Hb),
                                        contextOf(R.Second.Op, Hb)};
  if (B < A)
    std::swap(A, B);
  Sig.Access = A.first + " + " + B.first;
  Sig.Context = A.second + " + " + B.second;
  return Sig;
}

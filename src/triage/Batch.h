//===- triage/Batch.h - Deduplicating batch trace ingest --------*- C++ -*-===//
//
// Part of the WebRacer reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fleet-ingest mode: consume a directory of recorded WRT traces,
/// replay each through the offline detection pipeline, and collapse the
/// per-trace race reports into one ranked, deduplicated report keyed by
/// structural signature (triage/Signature.h). This is the ROADMAP's
/// "same Southwest-form race from 10^6 user traces must become one
/// actionable report" item.
///
/// Determinism: trace files are sorted by path before any work starts,
/// per-trace results land in input-order slots (the CorpusRunner thread
/// -pool discipline - workers claim indices through an atomic counter and
/// never touch shared aggregates), and the merge walks the slots
/// sequentially. Group rank is (occurrences desc, signature text asc).
/// The emitted report is therefore byte-identical at any --jobs count.
///
/// Attrition is never silent: unreadable traces are reported per path,
/// suppression drops land in each trace's (and the aggregate's)
/// FilterAttrition, per-entry suppression hit counts are merged, and
/// entries that matched nothing across the whole batch are listed as
/// unmatched.
///
//===----------------------------------------------------------------------===//

#ifndef WEBRACER_TRIAGE_BATCH_H
#define WEBRACER_TRIAGE_BATCH_H

#include "detect/TraceReplay.h"
#include "obs/Json.h"
#include "obs/RunStats.h"
#include "triage/Signature.h"
#include "triage/Suppression.h"

#include <string>
#include <vector>

namespace wr::triage {

/// Configuration for one batch run.
struct BatchOptions {
  /// Worker threads; 0 uses the hardware concurrency. The report is
  /// byte-identical for every value.
  unsigned Jobs = 1;
  /// Per-trace replay configuration (engine, prediction, detector mode).
  detect::ReplayOptions Replay;
  /// Optional suppressions; applied to observed and predicted races
  /// alike. Must outlive the run.
  const SuppressionFile *Suppressions = nullptr;
};

/// One kept race's evidence for the merge: its signature plus the
/// human-readable location of the concrete witness.
struct WitnessRace {
  RaceSignature Sig;
  std::string Location;
};

/// What one trace file contributed.
struct TraceIngest {
  std::string Path;
  bool Ok = false;
  std::string Error; ///< Read/decode failure diagnostic when !Ok.
  obs::RunStats Stats;
  std::vector<WitnessRace> Kept;      ///< Post-filter, post-suppression.
  std::vector<WitnessRace> Predicted; ///< Predicted-only findings.
  uint64_t Suppressed = 0;            ///< Observed + predicted drops.
  std::vector<uint64_t> SuppressionHits; ///< Per suppression entry.
};

/// One deduplicated signature across the batch.
struct SignatureGroup {
  RaceSignature Sig;
  uint64_t Occurrences = 0;          ///< Kept observed races collapsing here.
  uint64_t PredictedOccurrences = 0; ///< Predicted-only findings.
  uint64_t Traces = 0;               ///< Distinct traces contributing.
  std::string FirstWitness;          ///< Path of the first contributing trace.
  std::string ExampleLocation;       ///< Concrete location at that witness.
};

/// Everything a batch run produced.
struct BatchResult {
  std::vector<TraceIngest> Traces; ///< Input order (sorted by path).
  std::vector<SignatureGroup> Groups; ///< Ranked.
  obs::RunStats Aggregate;            ///< Merge of every Ok trace's stats.
  uint64_t TracesOk = 0;
  uint64_t TracesFailed = 0;
  uint64_t TotalKept = 0;       ///< == sum of Groups[i].Occurrences.
  uint64_t TotalPredicted = 0;  ///< == sum of PredictedOccurrences.
  uint64_t TotalSuppressed = 0;
  std::vector<uint64_t> SuppressionHits;        ///< Merged per entry.
  std::vector<std::string> UnmatchedSuppressions; ///< Zero-hit entry names.
};

/// Lists the .wrt files directly inside \p Dir, sorted by path. Returns
/// false with \p Error set when \p Dir is not a readable directory.
bool listTraceFiles(const std::string &Dir, std::vector<std::string> &Out,
                    std::string &Error);

/// Ingests one trace file: read, decode, replay, filter, sign, suppress.
TraceIngest ingestTraceFile(const std::string &Path,
                            const BatchOptions &Opts);

/// Runs the full batch over \p Paths (processed in the given order; sort
/// first for path-independent output - listTraceFiles already does).
BatchResult runBatch(const std::vector<std::string> &Paths,
                     const BatchOptions &Opts);

/// The deterministic schema-1 report document (kind "batch").
obs::Json buildBatchReport(const std::string &Name, const BatchResult &R);

} // namespace wr::triage

#endif // WEBRACER_TRIAGE_BATCH_H

//===- triage/Suppression.h - Race suppression files ------------*- C++ -*-===//
//
// Part of the WebRacer reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// User suppression files for race reports, modeled on Valgrind's: a
/// suppression names a signature pattern, and every race whose signature
/// matches is dropped from the report - but never silently. Suppressed
/// counts land in the run's FilterAttrition (RunStats), per-entry hit
/// counts let batch reports show what each suppression absorbed, and
/// entries that matched nothing produce warnings so stale suppressions
/// are noticed rather than rotting.
///
/// The file format is line-oriented blocks:
///
///     # comment
///     {
///       name: ignore the menu warm-up race
///       kind: variable
///       location: var global.menu*
///       access: *
///       context: *
///     }
///
/// Each field matches the corresponding RaceSignature component with `*`
/// (any run) and `?` (any one char) wildcards; omitted fields default to
/// `*`, so a suppression can be as coarse as "every html race" or as
/// precise as one full signature. `name` is required and purely
/// descriptive.
///
//===----------------------------------------------------------------------===//

#ifndef WEBRACER_TRIAGE_SUPPRESSION_H
#define WEBRACER_TRIAGE_SUPPRESSION_H

#include "detect/Filters.h"
#include "triage/Signature.h"

#include <string>
#include <string_view>
#include <vector>

namespace wr::triage {

/// One suppression entry: a named pattern over the four signature
/// components. An empty-pattern field never matches; the parser defaults
/// omitted fields to "*".
struct Suppression {
  std::string Name;
  std::string Kind = "*";
  std::string Location = "*";
  std::string Access = "*";
  std::string Context = "*";

  /// True when every component pattern matches \p Sig.
  bool matches(const RaceSignature &Sig) const;

  bool operator==(const Suppression &O) const = default;
};

/// Glob match with `*` (any run, including empty) and `?` (any single
/// character); all other characters literal.
bool globMatch(std::string_view Pattern, std::string_view Text);

/// A parsed suppression file: an ordered list of entries (first match
/// wins for hit attribution).
class SuppressionFile {
public:
  /// Parses the block grammar above. On error, returns false and sets
  /// \p Error to a "line N: ..." diagnostic; \p Out is left unspecified.
  static bool parse(std::string_view Text, SuppressionFile &Out,
                    std::string &Error);

  /// Reads and parses \p Path. Unreadable files report through \p Error.
  static bool load(const std::string &Path, SuppressionFile &Out,
                   std::string &Error);

  /// The canonical rendering: one block per entry, every field explicit,
  /// fields in name/kind/location/access/context order. parse() of the
  /// result reproduces the entries exactly (round-trip stable).
  std::string serialize() const;

  /// Index of the first entry matching \p Sig, or -1.
  int matchIndex(const RaceSignature &Sig) const;

  void add(Suppression S) { Entries.push_back(std::move(S)); }
  const std::vector<Suppression> &entries() const { return Entries; }
  bool empty() const { return Entries.empty(); }

private:
  std::vector<Suppression> Entries;
};

/// Drops every race in \p Races whose signature (computed against \p Hb)
/// matches an entry of \p File, returning the survivors in order.
///
/// Attrition is never silent: with \p Counts non-null, the drop count is
/// added to Counts->Suppressed and removed from Counts->Kept (the races
/// handed in are the filter pipeline's kept set). With \p Hits non-null,
/// it is resized to File.entries().size() and each drop increments the
/// first matching entry's slot - callers merge these deterministically
/// across traces and warn on entries whose total stays zero.
std::vector<detect::Race>
applySuppressions(const std::vector<detect::Race> &Races, const HbGraph &Hb,
                  const SuppressionFile &File,
                  detect::FilterCounts *Counts = nullptr,
                  std::vector<uint64_t> *Hits = nullptr);

} // namespace wr::triage

#endif // WEBRACER_TRIAGE_SUPPRESSION_H

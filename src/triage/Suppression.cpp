//===- triage/Suppression.cpp - Race suppression files ------------------------===//

#include "triage/Suppression.h"

#include "support/Format.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <fstream>
#include <sstream>

using namespace wr;
using namespace wr::triage;

bool wr::triage::globMatch(std::string_view Pattern, std::string_view Text) {
  // Iterative two-pointer match with one backtrack point per '*' - the
  // classic linear-ish algorithm; patterns here are short.
  size_t P = 0, T = 0;
  size_t StarP = std::string_view::npos, StarT = 0;
  while (T < Text.size()) {
    if (P < Pattern.size() &&
        (Pattern[P] == '?' || Pattern[P] == Text[T])) {
      ++P;
      ++T;
      continue;
    }
    if (P < Pattern.size() && Pattern[P] == '*') {
      StarP = P++;
      StarT = T;
      continue;
    }
    if (StarP != std::string_view::npos) {
      P = StarP + 1;
      T = ++StarT;
      continue;
    }
    return false;
  }
  while (P < Pattern.size() && Pattern[P] == '*')
    ++P;
  return P == Pattern.size();
}

bool Suppression::matches(const RaceSignature &Sig) const {
  return globMatch(Kind, Sig.Kind) && globMatch(Location, Sig.Location) &&
         globMatch(Access, Sig.Access) && globMatch(Context, Sig.Context);
}

bool SuppressionFile::parse(std::string_view Text, SuppressionFile &Out,
                            std::string &Error) {
  Out.Entries.clear();
  Error.clear();

  bool InBlock = false;
  bool HaveName = false;
  Suppression Current;
  size_t LineNo = 0;

  size_t Pos = 0;
  while (Pos <= Text.size()) {
    size_t Eol = Text.find('\n', Pos);
    if (Eol == std::string_view::npos)
      Eol = Text.size();
    std::string_view Line = trim(Text.substr(Pos, Eol - Pos));
    Pos = Eol + 1;
    ++LineNo;

    if (Line.empty() || Line.front() == '#')
      continue;

    if (Line == "{") {
      if (InBlock) {
        Error = strFormat("line %zu: nested '{'", LineNo);
        return false;
      }
      InBlock = true;
      HaveName = false;
      Current = Suppression();
      continue;
    }
    if (Line == "}") {
      if (!InBlock) {
        Error = strFormat("line %zu: '}' outside a suppression block",
                          LineNo);
        return false;
      }
      if (!HaveName) {
        Error = strFormat("line %zu: suppression block has no 'name:'",
                          LineNo);
        return false;
      }
      Out.Entries.push_back(std::move(Current));
      InBlock = false;
      continue;
    }
    if (!InBlock) {
      Error = strFormat("line %zu: expected '{', got '%s'", LineNo,
                        std::string(Line).c_str());
      return false;
    }

    size_t Colon = Line.find(':');
    if (Colon == std::string_view::npos) {
      Error = strFormat("line %zu: expected 'key: value'", LineNo);
      return false;
    }
    std::string_view Key = trim(Line.substr(0, Colon));
    std::string Value(trim(Line.substr(Colon + 1)));
    if (Key == "name") {
      if (Value.empty()) {
        Error = strFormat("line %zu: empty suppression name", LineNo);
        return false;
      }
      Current.Name = std::move(Value);
      HaveName = true;
    } else if (Key == "kind") {
      Current.Kind = std::move(Value);
    } else if (Key == "location") {
      Current.Location = std::move(Value);
    } else if (Key == "access") {
      Current.Access = std::move(Value);
    } else if (Key == "context") {
      Current.Context = std::move(Value);
    } else {
      Error = strFormat("line %zu: unknown suppression key '%s'", LineNo,
                        std::string(Key).c_str());
      return false;
    }
  }

  if (InBlock) {
    Error = strFormat("line %zu: unterminated suppression block", LineNo);
    return false;
  }
  return true;
}

bool SuppressionFile::load(const std::string &Path, SuppressionFile &Out,
                           std::string &Error) {
  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    Error = strFormat("cannot open suppression file '%s'", Path.c_str());
    return false;
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();
  if (!SuppressionFile::parse(Buf.str(), Out, Error)) {
    Error = Path + ": " + Error;
    return false;
  }
  return true;
}

std::string SuppressionFile::serialize() const {
  std::string Out;
  for (const Suppression &S : Entries) {
    if (!Out.empty())
      Out += '\n';
    Out += "{\n";
    Out += "  name: " + S.Name + "\n";
    Out += "  kind: " + S.Kind + "\n";
    Out += "  location: " + S.Location + "\n";
    Out += "  access: " + S.Access + "\n";
    Out += "  context: " + S.Context + "\n";
    Out += "}\n";
  }
  return Out;
}

int SuppressionFile::matchIndex(const RaceSignature &Sig) const {
  for (size_t I = 0; I < Entries.size(); ++I)
    if (Entries[I].matches(Sig))
      return static_cast<int>(I);
  return -1;
}

std::vector<detect::Race>
wr::triage::applySuppressions(const std::vector<detect::Race> &Races,
                              const HbGraph &Hb, const SuppressionFile &File,
                              detect::FilterCounts *Counts,
                              std::vector<uint64_t> *Hits) {
  if (Hits)
    Hits->resize(File.entries().size(), 0);
  std::vector<detect::Race> Kept;
  if (File.empty())
    return Races;
  Kept.reserve(Races.size());
  size_t Dropped = 0;
  for (const detect::Race &R : Races) {
    int Idx = File.matchIndex(computeSignature(R, Hb));
    if (Idx < 0) {
      Kept.push_back(R);
      continue;
    }
    ++Dropped;
    if (Hits)
      ++(*Hits)[static_cast<size_t>(Idx)];
  }
  if (Counts && Dropped) {
    Counts->Suppressed += Dropped;
    // The input was the pipeline's kept set; keep the invariant
    // Input == drops + Kept intact.
    Counts->Kept -= std::min(Dropped, Counts->Kept);
  }
  return Kept;
}

//===- analysis/Scenarios.cpp - Shared figure pages for validation ----------===//

#include "analysis/Scenarios.h"

using namespace wr::analysis;

ResourceResolver PageSpec::resolver() const {
  // Copy the tables so the resolver outlives the spec if needed.
  std::vector<PageResource> Res = Resources;
  std::string Entry = EntryUrl;
  std::string EntryHtml = Html;
  return [Res = std::move(Res), Entry = std::move(Entry),
          EntryHtml =
              std::move(EntryHtml)](const std::string &Url)
             -> std::optional<std::string> {
    if (Url == Entry)
      return EntryHtml;
    for (const PageResource &R : Res)
      if (R.Url == Url)
        return R.Content;
    return std::nullopt;
  };
}

std::vector<PageSpec> wr::analysis::figurePages() {
  std::vector<PageSpec> Pages;

  // Fig. 1: two sibling frames race on the shared global x.
  {
    PageSpec P;
    P.Name = "fig1";
    P.EntryUrl = "index.html";
    P.Html = "<script>x = 1;</script>"
             "<iframe src=\"a.html\"></iframe>"
             "<iframe src=\"b.html\"></iframe>";
    P.Resources.push_back({"a.html", "<script>x = 2;</script>", 2000});
    P.Resources.push_back({"b.html", "<script>alert(x);</script>", 3000});
    Pages.push_back(std::move(P));
  }

  // Fig. 2: a hint script races with user typing on the form field.
  {
    PageSpec P;
    P.Name = "fig2";
    P.EntryUrl = "index.html";
    P.Html = "<input type=\"text\" id=\"depart\" />"
             "<script src=\"hint2.js\"></script>";
    P.Resources.push_back(
        {"hint2.js",
         "document.getElementById('depart').value = 'City of Departure';",
         3000});
    Pages.push_back(std::move(P));
  }

  // Fig. 3: a javascript: link clicked while the slow analytics script
  // still holds parsing open looks up an element parsed later.
  {
    PageSpec P;
    P.Name = "fig3";
    P.EntryUrl = "index.html";
    P.Html = "<script>"
             "function show(emailTo) {"
             "  var v = document.getElementById('dw');"
             "  v.style.display = 'block';"
             "}"
             "</script>"
             "<a id=\"send\" href=\"javascript:show('x@x.com')\">Send "
             "Email</a>"
             "<script src=\"analytics.js\"></script>"
             "<div id=\"dw\" style=\"display:none\">email form</div>";
    P.Resources.push_back({"analytics.js", "var q = 1;", 4000});
    Pages.push_back(std::move(P));
  }

  // Fig. 4: the iframe's onload timer calls a function a later script
  // declares.
  {
    PageSpec P;
    P.Name = "fig4";
    P.EntryUrl = "index.html";
    P.Html = "<iframe id=\"i\" src=\"sub.html\""
             " onload=\"setTimeout(doNextStep, 20)\"></iframe>"
             "<script src=\"mid.js\"></script>"
             "<script>function doNextStep() { window.stepDone = true; }"
             "</script>";
    P.Resources.push_back({"sub.html", "<p>sub</p>", 1000});
    P.Resources.push_back({"mid.js", "var mid = 1;", 3000});
    Pages.push_back(std::move(P));
  }

  // Fig. 5: a script installs the iframe's load handler; the frame may
  // finish loading first.
  {
    PageSpec P;
    P.Name = "fig5";
    P.EntryUrl = "index.html";
    P.Html = "<iframe id=\"i\" src=\"a.html\"></iframe>"
             "<p>padding</p><p>more padding</p>"
             "<script>document.getElementById('i').onload ="
             " function() { window.frameLoaded = true; };</script>";
    P.Resources.push_back({"a.html", "<p>nested</p>", 2000});
    Pages.push_back(std::move(P));
  }

  return Pages;
}

PageSpec wr::analysis::falsePositivePage() {
  PageSpec P;
  P.Name = "false-positive";
  P.EntryUrl = "index.html";
  P.Html = "<script async src=\"a1.js\"></script>"
           "<script async src=\"a2.js\"></script>";
  // The guard never holds, so phantom is never written at runtime. The
  // effect set records the write with its guard, and the bare read in
  // a2.js keeps the prediction GuardedOneSide: refuted dynamically,
  // not statically.
  P.Resources.push_back(
      {"a1.js", "if (window.neverSet) { phantom = 1; }", 2000});
  P.Resources.push_back({"a2.js", "var seen = phantom;", 1000});
  return P;
}

//===- analysis/StaticHb.cpp - Static must-happens-before graph -------------===//

#include "analysis/StaticHb.h"

#include <vector>

using namespace wr::analysis;

const char *wr::analysis::toString(SourceKind Kind) {
  switch (Kind) {
  case SourceKind::Parse:
    return "parse";
  case SourceKind::SyncScript:
    return "script";
  case SourceKind::DeferScript:
    return "defer";
  case SourceKind::AsyncScript:
    return "async";
  case SourceKind::TimerCallback:
    return "timeout";
  case SourceKind::IntervalCallback:
    return "interval";
  case SourceKind::XhrCallback:
    return "xhr";
  case SourceKind::EventDispatch:
    return "dispatch";
  case SourceKind::UserInput:
    return "user-input";
  }
  return "unknown";
}

uint32_t StaticHbGraph::addSource(SourceKind Kind, std::string Label) {
  uint32_t Id = static_cast<uint32_t>(Sources.size());
  EffectSource S;
  S.Id = Id;
  S.Kind = Kind;
  S.Label = std::move(Label);
  Sources.push_back(std::move(S));
  Succ.emplace_back();
  return Id;
}

void StaticHbGraph::addEdge(uint32_t From, uint32_t To) {
  if (From == InvalidSource || To == InvalidSource || From == To)
    return;
  for (uint32_t Existing : Succ[From])
    if (Existing == To)
      return;
  Succ[From].push_back(To);
  ++Edges;
}

bool StaticHbGraph::reaches(uint32_t From, uint32_t To) const {
  if (From == InvalidSource || To == InvalidSource)
    return false;
  if (From == To)
    return true;
  // Graphs are page-sized (tens of sources); an explicit DFS per query
  // is fast enough and keeps the structure mutation-friendly.
  std::vector<uint8_t> Seen(Sources.size(), 0);
  std::vector<uint32_t> Stack{From};
  Seen[From] = 1;
  while (!Stack.empty()) {
    uint32_t Cur = Stack.back();
    Stack.pop_back();
    for (uint32_t Next : Succ[Cur]) {
      if (Next == To)
        return true;
      if (!Seen[Next]) {
        Seen[Next] = 1;
        Stack.push_back(Next);
      }
    }
  }
  return false;
}

std::string StaticHbGraph::toString() const {
  std::string Out;
  for (const EffectSource &S : Sources) {
    Out += "#" + std::to_string(S.Id) + " [" +
           wr::analysis::toString(S.Kind) + "] " + S.Label;
    Out += "\n";
    for (const Effect &E : S.Effects.Effects) {
      Out += "    ";
      Out += wr::toString(E.Kind);
      Out += " ";
      Out += wr::analysis::toString(E.Loc);
      Out += " (";
      Out += wr::toString(E.Origin);
      Out += ")\n";
    }
  }
  Out += "edges:";
  for (uint32_t From = 0; From < Sources.size(); ++From)
    for (uint32_t To : Succ[From])
      Out += " " + std::to_string(From) + "->" + std::to_string(To);
  Out += "\n";
  return Out;
}

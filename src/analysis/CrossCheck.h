//===- analysis/CrossCheck.h - Static vs dynamic validation -----*- C++ -*-===//
//
// Part of the WebRacer reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The cross-validation harness: runs the ahead-of-time static analyzer
/// and the dynamic detector (a full Session with automatic exploration)
/// over the same page, maps the dynamic races into static-location space,
/// and reports precision (what fraction of predictions some run
/// confirmed) and recall (what fraction of dynamically observed races the
/// analyzer predicted).
///
/// Dynamic races are compared against the detector's *raw* reports: the
/// Sec. 5.3 filters are reporting refinements, not soundness statements,
/// and the static analyzer should be measured against everything the
/// dynamic semantics can produce.
///
//===----------------------------------------------------------------------===//

#ifndef WEBRACER_ANALYSIS_CROSSCHECK_H
#define WEBRACER_ANALYSIS_CROSSCHECK_H

#include "analysis/Scenarios.h"
#include "obs/Json.h"
#include "webracer/Session.h"

#include <string>
#include <vector>

namespace wr::analysis {

/// Options for one cross-check run.
struct CrossCheckOptions {
  webracer::SessionOptions Session; ///< AutoExplore defaults to on.
  /// Compare against FilteredRaces instead of RawRaces.
  bool UseFilteredRaces = false;
};

/// One dynamically observed race mapped into static-location space.
struct MappedDynamicRace {
  detect::RaceKind Kind = detect::RaceKind::Variable;
  StaticLoc Loc;       ///< Name may be empty when unmappable.
  std::string Dynamic; ///< Rendering of the dynamic location.
  bool Predicted = false;
};

/// Maps dynamic race reports into static-location space. \p B must be
/// the browser the races were observed in (node identities resolve
/// against it), so call this while the session is still alive.
std::vector<MappedDynamicRace>
mapDynamicRaces(const std::vector<detect::Race> &Races, rt::Browser &B);

/// Confirmed/refuted counters for one guard class.
struct GuardClassCounts {
  uint64_t Predicted = 0;
  uint64_t Confirmed = 0;
  uint64_t Refuted = 0;
};

/// Precision accounting per guard class: how predictions fared against
/// the dynamic run, split by how much the code statically defends
/// against them. RefutedByGuards is the headline: predictions that are
/// guarded on both sides *and* never showed up dynamically - false
/// positives the guard analysis explains away.
struct StaticPrecision {
  uint64_t Predicted = 0;
  uint64_t Confirmed = 0;
  uint64_t Refuted = 0;
  uint64_t RefutedByGuards = 0;
  /// Indexed by GuardClass.
  GuardClassCounts ByClass[3];

  void add(const PredictedRace &P, bool WasConfirmed);
  void merge(const StaticPrecision &O);
  obs::Json toJson() const;
};

/// Matches \p Predictions against \p Dynamic: marks each mapped race
/// Predicted when some prediction aliases it, appends each prediction
/// to \p Confirmed or \p Refuted (either may be null), and returns the
/// per-guard-class tallies.
StaticPrecision tallyPrecision(const std::vector<PredictedRace> &Predictions,
                               std::vector<MappedDynamicRace> &Dynamic,
                               std::vector<PredictedRace> *Confirmed,
                               std::vector<PredictedRace> *Refuted);

/// Everything one page's cross-check produced.
struct CrossCheckResult {
  std::string Name;
  StaticAnalysis Static;
  webracer::SessionResult Dynamic;
  /// The compared dynamic races (raw or filtered per options), mapped.
  std::vector<MappedDynamicRace> DynamicRaces;
  /// Predictions at least one dynamic race confirmed.
  std::vector<PredictedRace> Confirmed;
  /// Predictions no dynamic race matched (potential false positives).
  std::vector<PredictedRace> Refuted;
  /// Per-guard-class precision accounting for this page.
  StaticPrecision Precision;

  size_t predictedCount() const { return Static.Races.size(); }
  size_t confirmedCount() const { return Confirmed.size(); }
  size_t dynamicCount() const { return DynamicRaces.size(); }
  size_t missedCount() const;

  /// confirmed / predicted; 1.0 when nothing was predicted.
  double precision() const;
  /// (dynamic - missed) / dynamic; 1.0 when nothing was observed.
  double recall() const;
};

/// Runs both analyses over \p Page and matches the reports.
CrossCheckResult crossCheck(const PageSpec &Page,
                            const CrossCheckOptions &Opts =
                                CrossCheckOptions());

/// Multi-line per-page report: predictions with their verdicts, dynamic
/// races with their mapping, and the precision/recall summary.
std::string formatReport(const CrossCheckResult &R);

/// One aligned table, a row per page plus a totals row.
std::string formatTable(const std::vector<CrossCheckResult> &Results);

/// The schema-1 report document for a set of cross-check results: one
/// row per page (counts, precision/recall, per-prediction verdicts) plus
/// the totals the table's last row shows.
obs::Json
buildCrossCheckReport(const std::vector<CrossCheckResult> &Results);

} // namespace wr::analysis

#endif // WEBRACER_ANALYSIS_CROSSCHECK_H

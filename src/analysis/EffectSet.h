//===- analysis/EffectSet.h - Static effect sets for MiniJS -----*- C++ -*-===//
//
// Part of the WebRacer reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The effect-set pass of the static race analyzer: for one script or
/// handler body it computes, without executing anything, the set of
/// logical locations the code may read or write. Locations are *static*
/// counterparts of the paper's Section 4 logical locations, named by
/// strings instead of runtime identities:
///
///  * Var(name)            - a global variable / window property; a write
///                           performed by hoisting a function declaration
///                           keeps the FunctionDecl origin so predicted
///                           races classify as function races.
///  * FormField(id)        - the value/checked state of the form field
///                           with the given DOM id (resolved through
///                           getElementById aliases).
///  * Elem(key)            - an HTML element named by id (getElementById,
///                           id-keyed insertion) or name attribute.
///  * Handler(target,type) - the (element, event, slot) handler location;
///                           target is a DOM id, "window", "document", or
///                           "" when unresolvable.
///
/// Besides plain effects the pass records *callback registrations*
/// (setTimeout/setInterval bodies, XHR send, event-handler installs):
/// each carries its own EffectSet and becomes a separate effect source in
/// the static must-happens-before approximation (StaticHb.h), since the
/// callback runs in its own operation.
///
/// The pass is interprocedural by flattening: calling a function declared
/// anywhere on the page inlines that function's effects into the caller
/// (cycle-guarded), matching the paper's observation that races flow
/// through helper functions (Fig. 3's show()).
///
/// The pass is *flow-sensitive*: each body is lowered to a CFG (Cfg.h)
/// and every effect is tagged with the branch conditions dominating it
/// (its GuardSet, Guards.h) - the static counterpart of the paper's
/// ad-hoc-synchronization filter. Effects dominated by a literally
/// false condition are dropped, as are global reads that every path
/// definitely writes first within the same atomic operation (the write
/// alone carries the race).
///
//===----------------------------------------------------------------------===//

#ifndef WEBRACER_ANALYSIS_EFFECTSET_H
#define WEBRACER_ANALYSIS_EFFECTSET_H

#include "analysis/Guards.h"
#include "detect/RaceDetector.h"
#include "js/Ast.h"
#include "mem/Location.h"

#include <string>
#include <unordered_map>
#include <vector>

namespace wr::analysis {

/// The families of static locations (see file comment).
enum class StaticLocKind : uint8_t { Var, FormField, Elem, Handler };

const char *toString(StaticLocKind Kind);

/// A statically named logical location.
struct StaticLoc {
  StaticLocKind Kind = StaticLocKind::Var;
  /// Variable name, form-field id, element key, or handler target.
  std::string Name;
  /// Event type; Handler locations only.
  std::string EventType;

  bool operator==(const StaticLoc &O) const = default;
};

/// Renders e.g. `var x`, `field #depart`, `elem #dw`,
/// `handler (#i, load)`.
std::string toString(const StaticLoc &Loc);

struct StaticLocHash {
  size_t operator()(const StaticLoc &Loc) const;
};

/// One static effect: a may-read or may-write of a static location. The
/// AccessOrigin reuses the dynamic taxonomy so race classification and
/// the report filters speak one language.
struct Effect {
  AccessKind Kind = AccessKind::Read;
  AccessOrigin Origin = AccessOrigin::Plain;
  StaticLoc Loc;
  /// Branch conditions that dominated the access. When the same access
  /// occurs on several paths, EffectSet::add keeps the intersection -
  /// only conditions that guard *every* occurrence count as defenses.
  GuardSet Guards;
  /// True if the read is itself part of evaluating a branch condition
  /// (`if (loaded) ...` reads `loaded`). Such a read *is* the defense,
  /// so guard classification counts the side as guarded.
  bool SyncRead = false;

  /// Same access identity, ignoring the per-path guard facts.
  bool sameAccess(const Effect &O) const {
    return Kind == O.Kind && Origin == O.Origin && Loc == O.Loc;
  }
};

struct CallbackReg;

/// The effects of one code body (script, handler, or callback).
struct EffectSet {
  /// Deduplicated may-read/may-write effects, in first-occurrence order.
  std::vector<Effect> Effects;
  /// Callbacks registered by this body; each runs as its own source.
  std::vector<CallbackReg> Callbacks;

  /// Records \p E. If the same access is already present, the two are
  /// merged: guards intersect (a defense must hold on every path) and
  /// SyncRead survives only if both occurrences were condition reads.
  void add(Effect E);

  /// Unions \p G into every effect's guards and every callback
  /// registration's guards (one level; StaticAnalyzer pushes guards
  /// down the callback tree as it materializes sources).
  void addGuards(const GuardSet &G);

  /// True if an effect with the given shape is present (test helper;
  /// EventType is compared only for Handler locations).
  bool has(AccessKind Kind, StaticLocKind LocKind, const std::string &Name,
           const std::string &EventType = std::string()) const;

  /// The first effect with the given shape, or null (test helper with
  /// the same matching rules as has()).
  const Effect *find(AccessKind Kind, StaticLocKind LocKind,
                     const std::string &Name,
                     const std::string &EventType = std::string()) const;
};

/// Why a callback will eventually run; determines how StaticHb anchors
/// the derived source.
enum class CallbackKind : uint8_t {
  Timeout,      ///< setTimeout body (HB rule 16 from the registrar).
  Interval,     ///< setInterval body (rule 17).
  XhrDispatch,  ///< readystatechange dispatch after send() (rule 10).
  EventHandler, ///< Handler installed for (target, event); runs at
                ///< dispatch, which is NOT ordered after the install.
};

/// One registered callback with its own effects.
struct CallbackReg {
  CallbackKind Kind = CallbackKind::Timeout;
  std::string TargetId;  ///< EventHandler: DOM id / "window" / "document".
  std::string EventType; ///< EventHandler and XhrDispatch.
  /// Guards dominating the registration site: the callback can only
  /// fire if they held when the registering code ran, so they dominate
  /// every effect of the body too.
  GuardSet Guards;
  EffectSet Body;
};

/// Named functions visible to a page: declaration name to literal. One
/// table is shared across all scripts of a page so cross-script calls
/// resolve (a handler calling a function a later script declares is
/// exactly the paper's function-race shape).
using FunctionTable =
    std::unordered_map<std::string, const js::FunctionLiteral *>;

/// Collects top-level (hoisted) function declarations of \p P into
/// \p Out, descending into blocks and control flow like the
/// interpreter's hoisting pass.
void collectDeclaredFunctions(const js::Program &P, FunctionTable &Out);

/// Computes the effect set of a script or handler body. Top-level var
/// declarations and function declarations are treated as global writes,
/// matching MiniJS scoping of top-level code.
EffectSet computeEffects(const js::Program &P, const FunctionTable &Fns);

/// Mirrors the dynamic detector's classification for a racing pair of
/// static effects on \p Loc (RaceDetector::classify).
detect::RaceKind classifyStaticRace(const Effect &A, const Effect &B);

/// May the two static locations name the same dynamic location? Exact
/// for Var/FormField/Elem; Handler targets match wildcards (an empty
/// target means "could not resolve", which may alias anything of the
/// same event type).
bool locationsMayAlias(const StaticLoc &A, const StaticLoc &B);

} // namespace wr::analysis

#endif // WEBRACER_ANALYSIS_EFFECTSET_H

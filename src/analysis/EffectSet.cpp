//===- analysis/EffectSet.cpp - Static effect sets for MiniJS ---------------===//

#include "analysis/EffectSet.h"

#include "analysis/Dataflow.h"
#include "js/AstVisitor.h"
#include "js/Parser.h"

#include <memory>
#include <unordered_set>

using namespace wr;
using namespace wr::analysis;
using namespace wr::js;

const char *wr::analysis::toString(StaticLocKind Kind) {
  switch (Kind) {
  case StaticLocKind::Var:
    return "var";
  case StaticLocKind::FormField:
    return "field";
  case StaticLocKind::Elem:
    return "elem";
  case StaticLocKind::Handler:
    return "handler";
  }
  return "unknown";
}

std::string wr::analysis::toString(const StaticLoc &Loc) {
  switch (Loc.Kind) {
  case StaticLocKind::Var:
    return "var " + Loc.Name;
  case StaticLocKind::FormField:
    return "field #" + Loc.Name;
  case StaticLocKind::Elem:
    return "elem #" + Loc.Name;
  case StaticLocKind::Handler:
    return "handler (" + (Loc.Name.empty() ? "?" : Loc.Name) + ", " +
           Loc.EventType + ")";
  }
  return "?";
}

size_t StaticLocHash::operator()(const StaticLoc &Loc) const {
  size_t H = std::hash<std::string>()(Loc.Name);
  H ^= std::hash<std::string>()(Loc.EventType) + 0x9e3779b9 + (H << 6);
  return H ^ (static_cast<size_t>(Loc.Kind) << 1);
}

void EffectSet::add(Effect E) {
  for (Effect &Existing : Effects) {
    if (!Existing.sameAccess(E))
      continue;
    // The access happens on several paths: a defense only counts if it
    // holds on all of them.
    Existing.Guards.intersectWith(E.Guards);
    Existing.SyncRead = Existing.SyncRead && E.SyncRead;
    return;
  }
  Effects.push_back(std::move(E));
}

void EffectSet::addGuards(const GuardSet &G) {
  if (G.empty())
    return;
  for (Effect &E : Effects)
    E.Guards.addAll(G);
  for (CallbackReg &Reg : Callbacks)
    Reg.Guards.addAll(G);
}

const Effect *EffectSet::find(AccessKind Kind, StaticLocKind LocKind,
                              const std::string &Name,
                              const std::string &EventType) const {
  for (const Effect &E : Effects) {
    if (E.Kind != Kind || E.Loc.Kind != LocKind || E.Loc.Name != Name)
      continue;
    if (LocKind == StaticLocKind::Handler && E.Loc.EventType != EventType)
      continue;
    return &E;
  }
  return nullptr;
}

bool EffectSet::has(AccessKind Kind, StaticLocKind LocKind,
                    const std::string &Name,
                    const std::string &EventType) const {
  return find(Kind, LocKind, Name, EventType) != nullptr;
}

bool wr::analysis::locationsMayAlias(const StaticLoc &A,
                                     const StaticLoc &B) {
  if (A.Kind != B.Kind)
    return false;
  if (A.Kind == StaticLocKind::Handler)
    return A.EventType == B.EventType &&
           (A.Name == B.Name || A.Name.empty() || B.Name.empty());
  return A.Name == B.Name;
}

detect::RaceKind wr::analysis::classifyStaticRace(const Effect &A,
                                                  const Effect &B) {
  if (A.Loc.Kind == StaticLocKind::Handler)
    return detect::RaceKind::EventDispatch;
  if (A.Loc.Kind == StaticLocKind::Elem)
    return detect::RaceKind::Html;
  if (A.Origin == AccessOrigin::FunctionDecl ||
      B.Origin == AccessOrigin::FunctionDecl)
    return detect::RaceKind::Function;
  return detect::RaceKind::Variable;
}

// ---------------------------------------------------------------------------
// Hoisted declaration collection
// ---------------------------------------------------------------------------

namespace {

/// Walks statements the way Interpreter::hoistDeclarations does: function
/// declarations are visible from anywhere in the enclosing body, even
/// inside blocks and control flow (but not inside nested functions).
void collectHoisted(const Stmt *S,
                    std::vector<const FunctionDecl *> &Fns,
                    std::vector<std::string> &Vars) {
  if (!S)
    return;
  switch (S->kind()) {
  case AstKind::FunctionDecl:
    Fns.push_back(cast<FunctionDecl>(S));
    return;
  case AstKind::VarDecl:
    for (const VarDecl::Declarator &D : cast<VarDecl>(S)->Decls)
      Vars.push_back(D.Name);
    return;
  case AstKind::Block:
    for (const StmtPtr &Child : cast<Block>(S)->Stmts)
      collectHoisted(Child.get(), Fns, Vars);
    return;
  case AstKind::If: {
    const auto *I = cast<If>(S);
    collectHoisted(I->Then.get(), Fns, Vars);
    collectHoisted(I->Else.get(), Fns, Vars);
    return;
  }
  case AstKind::While:
    collectHoisted(cast<While>(S)->Body.get(), Fns, Vars);
    return;
  case AstKind::DoWhile:
    collectHoisted(cast<DoWhile>(S)->Body.get(), Fns, Vars);
    return;
  case AstKind::For: {
    const auto *F = cast<For>(S);
    collectHoisted(F->Init.get(), Fns, Vars);
    collectHoisted(F->Body.get(), Fns, Vars);
    return;
  }
  case AstKind::ForIn: {
    const auto *F = cast<ForIn>(S);
    if (F->DeclaresVar)
      Vars.push_back(F->Var);
    collectHoisted(F->Body.get(), Fns, Vars);
    return;
  }
  case AstKind::Switch:
    for (const Switch::CaseClause &C : cast<Switch>(S)->Cases)
      for (const StmtPtr &Child : C.Body)
        collectHoisted(Child.get(), Fns, Vars);
    return;
  case AstKind::Try: {
    const auto *T = cast<Try>(S);
    collectHoisted(T->Body.get(), Fns, Vars);
    collectHoisted(T->Catch.get(), Fns, Vars);
    collectHoisted(T->Finally.get(), Fns, Vars);
    return;
  }
  default:
    return;
  }
}

} // namespace

void wr::analysis::collectDeclaredFunctions(const Program &P,
                                            FunctionTable &Out) {
  std::vector<const FunctionDecl *> Fns;
  std::vector<std::string> Vars;
  for (const StmtPtr &S : P.Body)
    collectHoisted(S.get(), Fns, Vars);
  for (const FunctionDecl *F : Fns)
    Out[F->Fn.Name] = &F->Fn;
}

// ---------------------------------------------------------------------------
// The effect visitor
// ---------------------------------------------------------------------------

namespace {

/// What an expression's base statically resolves to, for member-access
/// modeling.
enum class BaseKind : uint8_t { None, DomId, Window, Document, Xhr };

struct ResolvedBase {
  BaseKind Kind = BaseKind::None;
  std::string Id; ///< DomId only.
};

class EffectVisitor final : public ConstAstVisitor {
public:
  EffectVisitor(const FunctionTable &Fns, EffectSet &Out,
                std::unordered_set<std::string> &FlattenStack)
      : Fns(Fns), Out(Out), FlattenStack(FlattenStack) {
    // Script top level: scope 0 is the global scope (no local names).
    Scopes.push_back({});
  }

  /// Runs over a whole script/handler body.
  void run(const Program &P) {
    Bodies.push_back({std::make_unique<FlowInfo>(P), {}});
    hoistInto(P.Body, /*Global=*/true);
    for (const StmtPtr &S : P.Body)
      walkStmt(S.get());
    Bodies.pop_back();
  }

  /// Runs over a called function's body, flattening its effects into the
  /// same sink with a fresh local scope. The caller's guards at the
  /// call site dominate everything the callee does.
  void runFunction(const FunctionLiteral &Fn) {
    GuardSet SavedInherited = Inherited;
    Inherited = currentGuards();
    Scopes.push_back({});
    Bodies.push_back({std::make_unique<FlowInfo>(Fn), {}});
    for (const std::string &Param : Fn.Params)
      Scopes.back().Locals.insert(Param);
    if (Fn.Body) {
      hoistInto(Fn.Body->Stmts, /*Global=*/false);
      for (const StmtPtr &S : Fn.Body->Stmts)
        walkStmt(S.get());
    }
    Bodies.pop_back();
    Scopes.pop_back();
    Inherited = std::move(SavedInherited);
  }

private:
  /// Per-body flow context: the dataflow facts and the stack of
  /// statements currently being walked (top = the anchor for effects).
  struct BodyCtx {
    std::unique_ptr<FlowInfo> Flow;
    std::vector<const Stmt *> StmtStack;
  };
  struct Scope {
    std::unordered_set<std::string> Locals;
    /// name -> DOM id, for `var f = document.getElementById('x')`.
    std::unordered_map<std::string, std::string> DomAliases;
    /// Names bound to `new XMLHttpRequest()`.
    std::unordered_set<std::string> XhrAliases;
    /// Names bound to function literals (var f = function(){...}).
    std::unordered_map<std::string, const FunctionLiteral *> FnAliases;
  };

  // -- Scope helpers ---------------------------------------------------------

  bool atScriptTopLevel() const { return Scopes.size() == 1; }

  bool isLocal(const std::string &Name) const {
    // Scope 0 is the global scope; names there are globals.
    for (size_t I = Scopes.size(); I > 1; --I)
      if (Scopes[I - 1].Locals.count(Name))
        return true;
    return false;
  }

  void declare(const std::string &Name) {
    if (!atScriptTopLevel())
      Scopes.back().Locals.insert(Name);
  }

  void hoistInto(const std::vector<StmtPtr> &Body, bool Global) {
    std::vector<const FunctionDecl *> HoistedFns;
    std::vector<std::string> HoistedVars;
    for (const StmtPtr &S : Body)
      collectHoisted(S.get(), HoistedFns, HoistedVars);
    for (const std::string &Name : HoistedVars)
      if (!Global)
        Scopes.back().Locals.insert(Name);
    for (const FunctionDecl *F : HoistedFns) {
      Scopes.back().FnAliases[F->Fn.Name] = &F->Fn;
      if (Global) {
        // Hoisting a top-level declaration writes the global (this is
        // the write side of every function race). It happens at
        // operation entry, before any branch, so only inherited guards
        // apply.
        emit(AccessKind::Write, AccessOrigin::FunctionDecl,
             {StaticLocKind::Var, F->Fn.Name, ""});
      } else {
        Scopes.back().Locals.insert(F->Fn.Name);
      }
    }
  }

  const FunctionLiteral *lookupFunction(const std::string &Name) const {
    for (size_t I = Scopes.size(); I > 0; --I) {
      auto It = Scopes[I - 1].FnAliases.find(Name);
      if (It != Scopes[I - 1].FnAliases.end())
        return It->second;
    }
    auto It = Fns.find(Name);
    return It == Fns.end() ? nullptr : It->second;
  }

  std::string lookupDomAlias(const std::string &Name) const {
    for (size_t I = Scopes.size(); I > 0; --I) {
      auto It = Scopes[I - 1].DomAliases.find(Name);
      if (It != Scopes[I - 1].DomAliases.end())
        return It->second;
    }
    return std::string();
  }

  bool isXhrAlias(const std::string &Name) const {
    for (size_t I = Scopes.size(); I > 0; --I)
      if (Scopes[I - 1].XhrAliases.count(Name))
        return true;
    return false;
  }

  // -- Guard context ---------------------------------------------------------

  /// The guards dominating the current program point: guards inherited
  /// from the flattening call site, guards the dataflow engine proved
  /// for the statement being walked, and guards of enclosing
  /// conditional-expression arms.
  GuardSet currentGuards() const {
    GuardSet G = Inherited;
    if (!Bodies.empty() && Bodies.back().Flow &&
        !Bodies.back().StmtStack.empty())
      G.addAll(Bodies.back().Flow->guardsAt(Bodies.back().StmtStack.back()));
    for (const Guard &Arm : ExprGuardStack)
      G.add(Arm);
    return G;
  }

  void pushStmt(const Stmt *S) {
    if (!Bodies.empty())
      Bodies.back().StmtStack.push_back(S);
  }

  void popStmt() {
    if (!Bodies.empty() && !Bodies.back().StmtStack.empty())
      Bodies.back().StmtStack.pop_back();
  }

  /// Walks a branch-condition expression: reads inside it are the
  /// defense itself (SyncRead), not an unprotected access.
  void walkGuardExpr(const Expr *E) {
    ++GuardExprDepth;
    walkExpr(E);
    --GuardExprDepth;
  }

  /// Walks one arm of a conditional expression under the classified
  /// guard of its condition.
  void walkGuardedArm(const Expr *Cond, bool WhenTrue, const Expr *Arm) {
    std::optional<Guard> G = classifyGuard(Cond, WhenTrue);
    if (G)
      ExprGuardStack.push_back(*G);
    walkExpr(Arm);
    if (G)
      ExprGuardStack.pop_back();
  }

  // -- Emission helpers ------------------------------------------------------

  /// Central effect sink: attaches the dominating guards, drops
  /// statically dead effects (a literally-false guard means the code
  /// cannot run), and drops unexposed global reads (every path wrote
  /// the variable first within this same atomic operation, so the
  /// write alone carries the race).
  void emit(AccessKind Kind, AccessOrigin Origin, StaticLoc Loc) {
    Effect E;
    E.Kind = Kind;
    E.Origin = Origin;
    E.Loc = std::move(Loc);
    E.Guards = currentGuards();
    if (E.Guards.hasConstFalse())
      return;
    if (Kind == AccessKind::Read) {
      E.SyncRead = GuardExprDepth > 0;
      if (E.Loc.Kind == StaticLocKind::Var && !Bodies.empty() &&
          Bodies.back().Flow && !Bodies.back().StmtStack.empty() &&
          Bodies.back().Flow->definitelyWrittenBefore(
              Bodies.back().StmtStack.back(), E.Loc.Name))
        return;
    }
    Out.add(std::move(E));
  }

  /// Host-provided names whose reads are ambient, not racy globals.
  static bool isBuiltinName(const std::string &Name) {
    static const std::unordered_set<std::string> Builtins = {
        "window",        "document",      "alert",      "setTimeout",
        "setInterval",   "clearTimeout",  "clearInterval",
        "XMLHttpRequest", "console",      "Math",       "JSON",
        "parseInt",      "parseFloat",    "isNaN",      "String",
        "Number",        "Boolean",       "Array",      "Object",
        "Date",          "undefined",     "NaN",        "Infinity"};
    return Builtins.count(Name) != 0;
  }

  void readVar(const std::string &Name, AccessOrigin Origin) {
    if (isLocal(Name) || isBuiltinName(Name))
      return;
    emit(AccessKind::Read, Origin, {StaticLocKind::Var, Name, ""});
  }

  void writeVar(const std::string &Name, AccessOrigin Origin) {
    if (isLocal(Name))
      return;
    emit(AccessKind::Write, Origin, {StaticLocKind::Var, Name, ""});
  }

  // -- Static value resolution -----------------------------------------------

  /// `document.getElementById('lit')`?
  static const StringLit *asGetElementByIdCall(const Expr *E) {
    const auto *C = dyn_cast<Call>(E);
    if (!C || C->Args.empty())
      return nullptr;
    const auto *M = dyn_cast<Member>(C->Callee.get());
    if (!M || M->Name != "getElementById")
      return nullptr;
    return dyn_cast<StringLit>(C->Args[0].get());
  }

  static bool isNewXhr(const Expr *E) {
    const auto *N = dyn_cast<New>(E);
    if (!N)
      return false;
    const auto *Callee = dyn_cast<Ident>(N->Callee.get());
    return Callee && Callee->Name == "XMLHttpRequest";
  }

  ResolvedBase resolveBase(const Expr *E) {
    if (const StringLit *IdLit = asGetElementByIdCall(E))
      return {BaseKind::DomId, IdLit->V};
    if (const auto *I = dyn_cast<Ident>(E)) {
      if (I->Name == "window")
        return {BaseKind::Window, ""};
      if (I->Name == "document")
        return {BaseKind::Document, ""};
      if (isXhrAlias(I->Name))
        return {BaseKind::Xhr, ""};
      std::string Alias = lookupDomAlias(I->Name);
      if (!Alias.empty())
        return {BaseKind::DomId, Alias};
    }
    if (const auto *T = dyn_cast<ThisExpr>(E)) {
      (void)T;
      return {BaseKind::None, ""};
    }
    return {BaseKind::None, ""};
  }

  /// Walks \p E for its reads and returns what it resolves to. The
  /// getElementById pattern is consumed here (emitting the Elem lookup
  /// read) so callers can alias the result.
  ResolvedBase evalValue(const Expr *E) {
    if (!E)
      return {};
    if (const StringLit *IdLit = asGetElementByIdCall(E)) {
      emit(AccessKind::Read, AccessOrigin::ElemLookup,
           {StaticLocKind::Elem, IdLit->V, ""});
      return {BaseKind::DomId, IdLit->V};
    }
    ResolvedBase R = resolveBase(E);
    if (const auto *I = dyn_cast<Ident>(E)) {
      // Even an alias reference reads the (possibly global) binding.
      readVar(I->Name, AccessOrigin::Plain);
      return R;
    }
    walkExpr(E);
    return R;
  }

  /// The callback effects of a handler-ish value: a function expression,
  /// a named function reference, or handler source text.
  EffectSet callbackBody(const Expr *Value) {
    EffectSet Body;
    if (!Value)
      return Body;
    if (const auto *FE = dyn_cast<FunctionExpr>(Value)) {
      EffectVisitor Sub(Fns, Body, FlattenStack);
      Sub.runFunction(FE->Fn);
      return Body;
    }
    if (const auto *I = dyn_cast<Ident>(Value)) {
      // Referencing the handler reads the variable now...
      readVar(I->Name, AccessOrigin::Plain);
      // ...the fire re-resolves the name (the Fig. 4 read side)...
      if (!isLocal(I->Name) && !isBuiltinName(I->Name)) {
        Effect Fire;
        Fire.Kind = AccessKind::Read;
        Fire.Origin = AccessOrigin::FunctionCall;
        Fire.Loc = {StaticLocKind::Var, I->Name, ""};
        Body.add(std::move(Fire));
      }
      // ...and running it has the function's effects.
      if (const FunctionLiteral *Fn = lookupFunction(I->Name)) {
        if (FlattenStack.insert(I->Name).second) {
          EffectVisitor Sub(Fns, Body, FlattenStack);
          Sub.runFunction(*Fn);
          FlattenStack.erase(I->Name);
        }
      }
      return Body;
    }
    if (const auto *S = dyn_cast<StringLit>(Value)) {
      // setTimeout("source", ...) form.
      js::ParseResult PR = js::Parser::parseProgram(S->V);
      if (PR.Ast) {
        EffectVisitor Sub(Fns, Body, FlattenStack);
        Sub.run(*PR.Ast);
      }
      return Body;
    }
    walkExpr(Value);
    return Body;
  }

  // -- Member-access modeling ------------------------------------------------

  static bool isFormValueProp(const std::string &Name) {
    return Name == "value" || Name == "checked";
  }

  static bool isEventSlot(const std::string &Name) {
    return Name.size() > 2 && Name.compare(0, 2, "on") == 0;
  }

  void memberRead(const Member &M) {
    ResolvedBase Base = evalValue(M.Base.get());
    switch (Base.Kind) {
    case BaseKind::DomId:
      if (isFormValueProp(M.Name)) {
        emit(AccessKind::Read, AccessOrigin::FormFieldRead,
             {StaticLocKind::FormField, Base.Id, ""});
      } else if (isEventSlot(M.Name)) {
        emit(AccessKind::Read, AccessOrigin::Plain,
             {StaticLocKind::Handler, Base.Id, M.Name.substr(2)});
      }
      return;
    case BaseKind::Window:
    case BaseKind::Document:
      if (isEventSlot(M.Name)) {
        emit(AccessKind::Read, AccessOrigin::Plain,
             {StaticLocKind::Handler,
              Base.Kind == BaseKind::Window ? "window" : "document",
              M.Name.substr(2)});
      } else if (Base.Kind == BaseKind::Window) {
        // window.x aliases the global x.
        readVar(M.Name, AccessOrigin::Plain);
      }
      return;
    case BaseKind::Xhr:
    case BaseKind::None:
      return;
    }
  }

  void memberWrite(const Member &M, const Expr *Value, bool CompoundRead) {
    ResolvedBase Base = evalValue(M.Base.get());
    std::string Target;
    switch (Base.Kind) {
    case BaseKind::DomId:
      if (isFormValueProp(M.Name)) {
        if (CompoundRead)
          emit(AccessKind::Read, AccessOrigin::FormFieldRead,
               {StaticLocKind::FormField, Base.Id, ""});
        evalValue(Value);
        emit(AccessKind::Write, AccessOrigin::FormFieldWrite,
             {StaticLocKind::FormField, Base.Id, ""});
        return;
      }
      Target = Base.Id;
      break;
    case BaseKind::Window:
      Target = "window";
      break;
    case BaseKind::Document:
      Target = "document";
      break;
    case BaseKind::Xhr:
      Target = "";
      break;
    case BaseKind::None:
      if (isEventSlot(M.Name)) {
        // Unresolvable element reference (collection member, loop
        // variable): record a wildcard install - it may alias any
        // target's slot for this event type.
        break;
      }
      evalValue(Value);
      return;
    }
    if (isEventSlot(M.Name)) {
      std::string Type = M.Name.substr(2);
      if (Base.Kind == BaseKind::Xhr) {
        // Remember the body so a later send() anchors the dispatch.
        PendingXhrHandler = callbackBody(Value);
        HavePendingXhrHandler = true;
        return;
      }
      emit(AccessKind::Write, AccessOrigin::HandlerInstall,
           {StaticLocKind::Handler, Target, Type});
      CallbackReg Reg;
      Reg.Kind = CallbackKind::EventHandler;
      Reg.TargetId = Target;
      Reg.EventType = Type;
      Reg.Guards = currentGuards();
      Reg.Body = callbackBody(Value);
      Out.Callbacks.push_back(std::move(Reg));
      return;
    }
    if (Base.Kind == BaseKind::Window) {
      // window.x = v writes the global x.
      evalValue(Value);
      if (CompoundRead)
        readVar(M.Name, AccessOrigin::Plain);
      writeVar(M.Name, AccessOrigin::Plain);
      return;
    }
    evalValue(Value);
  }

  // -- Call modeling ---------------------------------------------------------

  void handleTimerCall(const Call &C, bool Interval) {
    CallbackReg Reg;
    Reg.Kind = Interval ? CallbackKind::Interval : CallbackKind::Timeout;
    Reg.Guards = currentGuards();
    if (!C.Args.empty())
      Reg.Body = callbackBody(C.Args[0].get());
    for (size_t I = 1; I < C.Args.size(); ++I)
      walkExpr(C.Args[I].get());
    Out.Callbacks.push_back(std::move(Reg));
  }

  void handleCall(const Call &C) {
    // document.getElementById('lit') in expression position.
    if (const StringLit *IdLit = asGetElementByIdCall(&C)) {
      emit(AccessKind::Read, AccessOrigin::ElemLookup,
           {StaticLocKind::Elem, IdLit->V, ""});
      return;
    }
    if (const auto *M = dyn_cast<Member>(C.Callee.get())) {
      ResolvedBase Base = resolveBase(M->Base.get());
      // Name-keyed lookups collide with insertion writes too.
      if (M->Name == "getElementsByName" && !C.Args.empty()) {
        if (const auto *S = dyn_cast<StringLit>(C.Args[0].get())) {
          emit(AccessKind::Read, AccessOrigin::ElemLookup,
               {StaticLocKind::Elem, S->V, ""});
          return;
        }
      }
      if ((M->Name == "addEventListener" ||
           M->Name == "removeEventListener") &&
          !C.Args.empty()) {
        std::string Target;
        switch (Base.Kind) {
        case BaseKind::DomId:
          Target = Base.Id;
          break;
        case BaseKind::Window:
          Target = "window";
          break;
        case BaseKind::Document:
          Target = "document";
          break;
        default:
          Target = "";
          break;
        }
        const auto *TypeLit = dyn_cast<StringLit>(C.Args[0].get());
        std::string Type = TypeLit ? TypeLit->V : "";
        bool Add = M->Name == "addEventListener";
        emit(AccessKind::Write,
             Add ? AccessOrigin::HandlerInstall
                 : AccessOrigin::HandlerRemove,
             {StaticLocKind::Handler, Target, Type});
        if (Add) {
          CallbackReg Reg;
          Reg.Kind = CallbackKind::EventHandler;
          Reg.TargetId = Target;
          Reg.EventType = Type;
          Reg.Guards = currentGuards();
          if (C.Args.size() > 1)
            Reg.Body = callbackBody(C.Args[1].get());
          Out.Callbacks.push_back(std::move(Reg));
        }
        return;
      }
      if (M->Name == "send" && Base.Kind == BaseKind::Xhr) {
        CallbackReg Reg;
        Reg.Kind = CallbackKind::XhrDispatch;
        Reg.EventType = "readystatechange";
        Reg.Guards = currentGuards();
        if (HavePendingXhrHandler) {
          Reg.Body = PendingXhrHandler;
          HavePendingXhrHandler = false;
        }
        Out.Callbacks.push_back(std::move(Reg));
        return;
      }
      // Generic method call: walk base and arguments.
      evalValue(M->Base.get());
      for (const ExprPtr &A : C.Args)
        walkExpr(A.get());
      return;
    }
    if (const auto *I = dyn_cast<Ident>(C.Callee.get())) {
      if (I->Name == "setTimeout" || I->Name == "setInterval") {
        handleTimerCall(C, I->Name == "setInterval");
        return;
      }
      // Resolving the call target reads the name (the read side of a
      // function race).
      readVar(I->Name, AccessOrigin::FunctionCall);
      for (const ExprPtr &A : C.Args)
        walkExpr(A.get());
      if (const FunctionLiteral *Fn = lookupFunction(I->Name)) {
        // Flatten the callee's effects into this source (cycle-guarded).
        if (FlattenStack.insert(I->Name).second) {
          runFunction(*Fn);
          FlattenStack.erase(I->Name);
        }
      }
      return;
    }
    walkExpr(C.Callee.get());
    for (const ExprPtr &A : C.Args)
      walkExpr(A.get());
  }

  // -- Assignment modeling ---------------------------------------------------

  void handleAssign(const Assign &A) {
    bool Compound = A.Op != AssignOp::Assign;
    if (const auto *T = dyn_cast<Ident>(A.Target.get())) {
      ResolvedBase Value = evalValue(A.Value.get());
      if (Compound)
        readVar(T->Name, AccessOrigin::Plain);
      writeVar(T->Name, AccessOrigin::Plain);
      noteAliases(T->Name, Value, A.Value.get());
      return;
    }
    if (const auto *M = dyn_cast<Member>(A.Target.get())) {
      memberWrite(*M, A.Value.get(), Compound);
      return;
    }
    // Index targets: walk both sides for their reads.
    walkExpr(A.Target.get());
    walkExpr(A.Value.get());
  }

  void noteAliases(const std::string &Name, const ResolvedBase &Value,
                   const Expr *ValueExpr) {
    Scope &S = Scopes.back();
    if (Value.Kind == BaseKind::DomId)
      S.DomAliases[Name] = Value.Id;
    if (ValueExpr && isNewXhr(ValueExpr))
      S.XhrAliases.insert(Name);
    if (ValueExpr)
      if (const auto *FE = dyn_cast<FunctionExpr>(ValueExpr))
        S.FnAliases[Name] = &FE->Fn;
  }

  // -- Visitor hooks ---------------------------------------------------------

  bool beforeStmt(const Stmt &S) override {
    // The statement stack anchors emitted effects to their flow facts;
    // every false return below must pop (afterStmt won't be called).
    pushStmt(&S);
    switch (S.kind()) {
    case AstKind::VarDecl: {
      for (const VarDecl::Declarator &D :
           cast<VarDecl>(&S)->Decls) {
        declare(D.Name);
        if (!D.Init)
          continue; // Declaring without init is not an access.
        ResolvedBase Value = evalValue(D.Init.get());
        writeVar(D.Name, AccessOrigin::Plain);
        noteAliases(D.Name, Value, D.Init.get());
      }
      popStmt();
      return false;
    }
    case AstKind::FunctionDecl:
      // Hoisted at scope entry; the body runs only when called.
      popStmt();
      return false;
    case AstKind::ForIn: {
      const auto *F = cast<ForIn>(&S);
      if (F->DeclaresVar)
        declare(F->Var);
      writeVar(F->Var, AccessOrigin::Plain);
      return true; // Default traversal covers Object and Body.
    }
    // Conditions of control statements are walked as guard
    // expressions: their reads are the synchronization check itself.
    case AstKind::If: {
      const auto *I = cast<If>(&S);
      walkGuardExpr(I->Cond.get());
      walkStmt(I->Then.get());
      walkStmt(I->Else.get());
      popStmt();
      return false;
    }
    case AstKind::While: {
      const auto *W = cast<While>(&S);
      walkGuardExpr(W->Cond.get());
      walkStmt(W->Body.get());
      popStmt();
      return false;
    }
    case AstKind::DoWhile: {
      const auto *D = cast<DoWhile>(&S);
      walkStmt(D->Body.get());
      walkGuardExpr(D->Cond.get());
      popStmt();
      return false;
    }
    case AstKind::For: {
      const auto *F = cast<For>(&S);
      walkStmt(F->Init.get());
      walkGuardExpr(F->Cond.get());
      walkStmt(F->Body.get());
      walkExpr(F->Step.get());
      popStmt();
      return false;
    }
    default:
      return true;
    }
  }

  void afterStmt(const Stmt &S) override {
    (void)S;
    popStmt();
  }

  bool beforeExpr(const Expr &E) override {
    switch (E.kind()) {
    case AstKind::Ident:
      readVar(cast<Ident>(&E)->Name, AccessOrigin::Plain);
      return false;
    case AstKind::Member:
      memberRead(*cast<Member>(&E));
      return false;
    case AstKind::Call:
      handleCall(*cast<Call>(&E));
      return false;
    case AstKind::Assign:
      handleAssign(*cast<Assign>(&E));
      return false;
    case AstKind::Update: {
      const auto *U = cast<Update>(&E);
      if (const auto *T = dyn_cast<Ident>(U->Operand.get())) {
        readVar(T->Name, AccessOrigin::Plain);
        writeVar(T->Name, AccessOrigin::Plain);
        return false;
      }
      return true;
    }
    case AstKind::FunctionExpr:
      // A bare function literal has no effects until invoked.
      return false;
    // Conditional expressions guard their arms the same way `if`
    // guards its branches.
    case AstKind::Conditional: {
      const auto *C = cast<Conditional>(&E);
      walkGuardExpr(C->Cond.get());
      walkGuardedArm(C->Cond.get(), true, C->Then.get());
      walkGuardedArm(C->Cond.get(), false, C->Else.get());
      return false;
    }
    case AstKind::Logical: {
      // `a && b` runs b only when a held; `a || b` only when it did
      // not - the left operand guards the right.
      const auto *L = cast<Logical>(&E);
      walkGuardExpr(L->Lhs.get());
      walkGuardedArm(L->Lhs.get(), L->Op == LogicalOp::And, L->Rhs.get());
      return false;
    }
    default:
      return true;
    }
  }

  const FunctionTable &Fns;
  EffectSet &Out;
  std::unordered_set<std::string> &FlattenStack;
  std::vector<Scope> Scopes;
  EffectSet PendingXhrHandler;
  bool HavePendingXhrHandler = false;
  /// Flow contexts of the bodies currently being flattened (innermost
  /// last); see BodyCtx.
  std::vector<BodyCtx> Bodies;
  /// Guards inherited from the flattening call site.
  GuardSet Inherited;
  /// Guards of enclosing conditional-expression arms.
  std::vector<Guard> ExprGuardStack;
  /// Nonzero while walking a branch-condition expression.
  int GuardExprDepth = 0;
};

} // namespace

EffectSet wr::analysis::computeEffects(const Program &P,
                                       const FunctionTable &Fns) {
  EffectSet Out;
  std::unordered_set<std::string> FlattenStack;
  EffectVisitor V(Fns, Out, FlattenStack);
  V.run(P);
  return Out;
}

//===- analysis/Guards.cpp - Branch-condition guards for effects -----------===//

#include "analysis/Guards.h"

#include <algorithm>
#include <tuple>

using namespace wr;
using namespace wr::analysis;

const char *wr::analysis::toString(GuardKind Kind) {
  switch (Kind) {
  case GuardKind::Truthy:
    return "truthy";
  case GuardKind::Defined:
    return "defined";
  case GuardKind::TypeCheck:
    return "typecheck";
  case GuardKind::ConstFalse:
    return "const-false";
  case GuardKind::Opaque:
    return "opaque";
  }
  return "?";
}

bool Guard::operator==(const Guard &O) const {
  return Kind == O.Kind && Positive == O.Positive && Subject == O.Subject &&
         Text == O.Text;
}

bool Guard::operator<(const Guard &O) const {
  return std::tie(Kind, Subject, Positive, Text) <
         std::tie(O.Kind, O.Subject, O.Positive, O.Text);
}

std::string wr::analysis::toString(const Guard &G) { return G.Text; }

void GuardSet::add(Guard G) {
  auto It = std::lower_bound(Set.begin(), Set.end(), G);
  if (It != Set.end() && *It == G)
    return;
  Set.insert(It, std::move(G));
}

void GuardSet::addAll(const GuardSet &O) {
  for (const Guard &G : O.Set)
    add(G);
}

void GuardSet::intersectWith(const GuardSet &O) {
  std::vector<Guard> Kept;
  Kept.reserve(std::min(Set.size(), O.Set.size()));
  std::set_intersection(Set.begin(), Set.end(), O.Set.begin(), O.Set.end(),
                        std::back_inserter(Kept));
  Set = std::move(Kept);
}

void GuardSet::killSubject(const std::string &Name) {
  Set.erase(std::remove_if(Set.begin(), Set.end(),
                           [&](const Guard &G) {
                             return G.Kind != GuardKind::ConstFalse &&
                                    G.Kind != GuardKind::Opaque &&
                                    G.Subject == Name;
                           }),
            Set.end());
}

bool GuardSet::hasConstFalse() const {
  return std::any_of(Set.begin(), Set.end(), [](const Guard &G) {
    return G.Kind == GuardKind::ConstFalse;
  });
}

bool GuardSet::contains(const Guard &G) const {
  return std::binary_search(Set.begin(), Set.end(), G);
}

std::string GuardSet::toString() const {
  std::string Out;
  for (const Guard &G : Set) {
    if (!Out.empty())
      Out += " && ";
    Out += analysis::toString(G);
  }
  return Out;
}

namespace {

/// The guarded-variable name of \p E when it names one: an identifier,
/// or a `window.x` member. Other shapes return empty.
std::string subjectOf(const js::Expr *E) {
  if (const auto *I = js::dyn_cast<js::Ident>(E))
    return I->Name;
  if (const auto *M = js::dyn_cast<js::Member>(E)) {
    if (const auto *Base = js::dyn_cast<js::Ident>(M->Base.get()))
      if (Base->Name == "window")
        return M->Name;
  }
  return std::string();
}

/// Truthiness of a literal, or nullopt for non-literals.
std::optional<bool> literalTruthiness(const js::Expr *E) {
  switch (E->kind()) {
  case js::AstKind::NumberLit:
    return js::cast<js::NumberLit>(E)->V != 0;
  case js::AstKind::StringLit:
    return !js::cast<js::StringLit>(E)->V.empty();
  case js::AstKind::BoolLit:
    return js::cast<js::BoolLit>(E)->V;
  case js::AstKind::NullLit:
  case js::AstKind::UndefinedLit:
    return false;
  default:
    return std::nullopt;
  }
}

bool isEqualityOp(js::BinaryOp Op) {
  return Op == js::BinaryOp::Eq || Op == js::BinaryOp::StrictEq;
}

bool isInequalityOp(js::BinaryOp Op) {
  return Op == js::BinaryOp::Ne || Op == js::BinaryOp::StrictNe;
}

/// Classifies equality comparisons that encode definedness or type
/// tests: `typeof x ==/!= "undefined"`, `typeof x == "function"`,
/// `x ==/!= null`, `x !== undefined`. Returns nullopt when \p B is not
/// one of those shapes.
std::optional<Guard> classifyComparison(const js::Binary *B, bool EdgeTrue,
                                        const std::string &Text) {
  if (!isEqualityOp(B->Op) && !isInequalityOp(B->Op))
    return std::nullopt;
  // `==` holding is the same fact as `!=` failing.
  bool EqHolds = isEqualityOp(B->Op) ? EdgeTrue : !EdgeTrue;

  const js::Expr *Lhs = B->Lhs.get();
  const js::Expr *Rhs = B->Rhs.get();
  // Normalize literal-on-the-left (`"undefined" == typeof x`).
  if (js::isa<js::StringLit>(Lhs) || js::isa<js::NullLit>(Lhs) ||
      js::isa<js::UndefinedLit>(Lhs))
    std::swap(Lhs, Rhs);

  // typeof x == "<type>"
  if (const auto *U = js::dyn_cast<js::Unary>(Lhs)) {
    if (U->Op == js::UnaryOp::TypeOf) {
      if (const auto *S = js::dyn_cast<js::StringLit>(Rhs)) {
        std::string Subject = subjectOf(U->Operand.get());
        if (Subject.empty())
          return std::nullopt;
        if (S->V == "undefined")
          // `typeof x == "undefined"` holding means x is NOT defined.
          return Guard{GuardKind::Defined, !EqHolds, std::move(Subject),
                       Text};
        return Guard{GuardKind::TypeCheck, EqHolds, std::move(Subject),
                     Text};
      }
    }
  }

  // x == null / x === undefined
  if (js::isa<js::NullLit>(Rhs) || js::isa<js::UndefinedLit>(Rhs)) {
    std::string Subject = subjectOf(Lhs);
    if (Subject.empty())
      return std::nullopt;
    // `x == null` holding means x is NOT defined (loosely).
    return Guard{GuardKind::Defined, !EqHolds, std::move(Subject), Text};
  }
  return std::nullopt;
}

} // namespace

std::optional<Guard> wr::analysis::classifyGuard(const js::Expr *E,
                                                 bool EdgeTrue) {
  if (!E)
    return std::nullopt;

  // `!cond` taken-true is `cond` taken-false.
  if (const auto *U = js::dyn_cast<js::Unary>(E))
    if (U->Op == js::UnaryOp::Not)
      return classifyGuard(U->Operand.get(), !EdgeTrue);

  // Text records the condition as it held on the path, so the
  // false-edge of `if (loaded)` renders `!(loaded)`.
  auto PathText = [&] {
    std::string Rendered = js::renderExpr(*E);
    return EdgeTrue ? Rendered : "!(" + Rendered + ")";
  };

  if (std::optional<bool> Truth = literalTruthiness(E)) {
    if (*Truth == EdgeTrue)
      return std::nullopt; // Vacuous: `if (true)` guards nothing.
    return Guard{GuardKind::ConstFalse, true, std::string(), PathText()};
  }

  std::string Text = PathText();

  if (std::string Subject = subjectOf(E); !Subject.empty())
    return Guard{GuardKind::Truthy, EdgeTrue, std::move(Subject),
                 std::move(Text)};

  if (const auto *B = js::dyn_cast<js::Binary>(E))
    if (std::optional<Guard> G = classifyComparison(B, EdgeTrue, Text))
      return G;

  // Anything else is opaque: it still counts as "guarded by something",
  // keyed by its text, but no reassignment can kill it and no subject
  // can be reasoned about.
  return Guard{GuardKind::Opaque, EdgeTrue, Text, Text};
}

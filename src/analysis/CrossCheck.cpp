//===- analysis/CrossCheck.cpp - Static vs dynamic validation ---------------===//

#include "analysis/CrossCheck.h"

#include "obs/Reporter.h"
#include "support/StringUtils.h"

using namespace wr;
using namespace wr::analysis;

size_t CrossCheckResult::missedCount() const {
  size_t N = 0;
  for (const MappedDynamicRace &D : DynamicRaces)
    if (!D.Predicted)
      ++N;
  return N;
}

double CrossCheckResult::precision() const {
  size_t P = predictedCount();
  return P == 0 ? 1.0 : static_cast<double>(confirmedCount()) / P;
}

double CrossCheckResult::recall() const {
  size_t D = dynamicCount();
  return D == 0 ? 1.0
                : static_cast<double>(D - missedCount()) / D;
}

namespace {

/// Static name of a node as an event target / element key, mirroring the
/// analyzer's targetName().
std::string nodeStaticName(rt::Browser &B, NodeId Id) {
  Node *N = B.nodeById(Id);
  const auto *E = dyn_cast<Element>(N);
  if (!E)
    return std::string();
  std::string Name = E->idAttr();
  if (Name.empty())
    Name = E->getAttribute("name");
  if (Name.empty())
    Name = E->tagName();
  return Name;
}

/// Maps one dynamic race into static-location space. Unmappable
/// locations (timer-clear handlers, tag collections, anonymous nodes)
/// keep an empty/foreign name and simply never match a prediction - an
/// honest recall miss rather than a silent drop.
MappedDynamicRace mapDynamicRace(const detect::Race &R, rt::Browser &B) {
  MappedDynamicRace Out;
  Out.Kind = R.Kind;
  Out.Dynamic = toString(R.Loc);

  if (const auto *V = std::get_if<JSVarLoc>(&R.Loc)) {
    if (isDomContainer(V->Container) &&
        (V->Name == "value" || V->Name == "checked")) {
      Out.Loc.Kind = StaticLocKind::FormField;
      Node *N = B.nodeById(nodeOfContainer(V->Container));
      if (const auto *E = dyn_cast<Element>(N)) {
        Out.Loc.Name = E->idAttr();
        if (Out.Loc.Name.empty())
          Out.Loc.Name = E->getAttribute("name");
      }
      return Out;
    }
    Out.Loc.Kind = StaticLocKind::Var;
    // Timer-handle containers (clearTimeout instrumentation) and other
    // object properties are outside the static model; the name alone is
    // the best static counterpart.
    Out.Loc.Name = V->Name;
    return Out;
  }

  if (const auto *H = std::get_if<HtmlElemLoc>(&R.Loc)) {
    Out.Loc.Kind = StaticLocKind::Elem;
    switch (H->Kind) {
    case ElemKeyKind::ById:
    case ElemKeyKind::ByName:
      Out.Loc.Name = H->Key;
      break;
    case ElemKeyKind::ByNode: {
      Node *N = B.nodeById(H->Node);
      if (const auto *E = dyn_cast<Element>(N)) {
        Out.Loc.Name = E->idAttr();
        if (Out.Loc.Name.empty())
          Out.Loc.Name = E->getAttribute("name");
      }
      break;
    }
    case ElemKeyKind::ByTag:
      // The analyzer does not model tag collections.
      Out.Loc.Name = "tag:" + H->Key;
      break;
    }
    return Out;
  }

  const auto &E = std::get<EventHandlerLoc>(R.Loc);
  Out.Loc.Kind = StaticLocKind::Handler;
  Out.Loc.EventType = E.EventType;
  if (E.Target != InvalidNodeId) {
    Out.Loc.Name = nodeStaticName(B, E.Target);
    return Out;
  }
  if (E.TargetObject & rt::TimerContainerBit) {
    // Timer-clear locations; not in the static model.
    Out.Loc.Name = "timer";
    return Out;
  }
  for (const auto &W : B.windows()) {
    if (W->windowObject() &&
        W->windowObject()->containerId() == E.TargetObject) {
      Out.Loc.Name = "window";
      return Out;
    }
    if (W->documentObject() &&
        W->documentObject()->containerId() == E.TargetObject) {
      Out.Loc.Name = "document";
      return Out;
    }
  }
  // Non-window object targets (XHR): the analyzer uses the empty
  // wildcard target for these.
  Out.Loc.Name = "";
  return Out;
}

} // namespace

std::vector<MappedDynamicRace>
wr::analysis::mapDynamicRaces(const std::vector<detect::Race> &Races,
                              rt::Browser &B) {
  std::vector<MappedDynamicRace> Out;
  Out.reserve(Races.size());
  for (const detect::Race &R : Races)
    Out.push_back(mapDynamicRace(R, B));
  return Out;
}

void StaticPrecision::add(const PredictedRace &P, bool WasConfirmed) {
  ++Predicted;
  GuardClassCounts &C = ByClass[static_cast<size_t>(P.Class)];
  ++C.Predicted;
  if (WasConfirmed) {
    ++Confirmed;
    ++C.Confirmed;
    return;
  }
  ++Refuted;
  ++C.Refuted;
  if (P.Class == GuardClass::GuardedBothSides)
    ++RefutedByGuards;
}

void StaticPrecision::merge(const StaticPrecision &O) {
  Predicted += O.Predicted;
  Confirmed += O.Confirmed;
  Refuted += O.Refuted;
  RefutedByGuards += O.RefutedByGuards;
  for (size_t I = 0; I < 3; ++I) {
    ByClass[I].Predicted += O.ByClass[I].Predicted;
    ByClass[I].Confirmed += O.ByClass[I].Confirmed;
    ByClass[I].Refuted += O.ByClass[I].Refuted;
  }
}

obs::Json StaticPrecision::toJson() const {
  obs::Json Doc = obs::Json::object();
  Doc.set("predicted", Predicted);
  Doc.set("confirmed", Confirmed);
  Doc.set("refuted", Refuted);
  Doc.set("refuted_by_guards", RefutedByGuards);
  obs::Json Classes = obs::Json::object();
  static const char *const Keys[3] = {"unguarded", "guarded_one_side",
                                      "guarded_both_sides"};
  for (size_t I = 0; I < 3; ++I) {
    obs::Json C = obs::Json::object();
    C.set("predicted", ByClass[I].Predicted);
    C.set("confirmed", ByClass[I].Confirmed);
    C.set("refuted", ByClass[I].Refuted);
    Classes.set(Keys[I], std::move(C));
  }
  Doc.set("by_class", std::move(Classes));
  return Doc;
}

StaticPrecision
wr::analysis::tallyPrecision(const std::vector<PredictedRace> &Predictions,
                             std::vector<MappedDynamicRace> &Dynamic,
                             std::vector<PredictedRace> *Confirmed,
                             std::vector<PredictedRace> *Refuted) {
  std::vector<bool> PredConfirmed(Predictions.size(), false);
  for (MappedDynamicRace &D : Dynamic) {
    for (size_t I = 0; I < Predictions.size(); ++I) {
      const PredictedRace &P = Predictions[I];
      if (P.Kind != D.Kind || !locationsMayAlias(P.Loc, D.Loc))
        continue;
      D.Predicted = true;
      PredConfirmed[I] = true;
    }
  }
  StaticPrecision Totals;
  for (size_t I = 0; I < Predictions.size(); ++I) {
    Totals.add(Predictions[I], PredConfirmed[I]);
    if (PredConfirmed[I]) {
      if (Confirmed)
        Confirmed->push_back(Predictions[I]);
    } else if (Refuted) {
      Refuted->push_back(Predictions[I]);
    }
  }
  return Totals;
}

CrossCheckResult wr::analysis::crossCheck(const PageSpec &Page,
                                          const CrossCheckOptions &Opts) {
  CrossCheckResult Result;
  Result.Name = Page.Name;

  // Static side: pure source analysis, nothing executes.
  Result.Static = analyzePage(Page.Html, Page.resolver());

  // Dynamic side: one full session with exploration over the same bytes.
  webracer::Session S(Opts.Session);
  S.network().addResource(Page.EntryUrl, Page.Html, 10);
  for (const PageResource &R : Page.Resources)
    S.network().addResource(R.Url, R.Content, R.LatencyUs);
  Result.Dynamic = S.run(Page.EntryUrl);

  const std::vector<detect::Race> &Observed =
      Opts.UseFilteredRaces ? Result.Dynamic.FilteredRaces
                            : Result.Dynamic.RawRaces;
  Result.DynamicRaces = mapDynamicRaces(Observed, S.browser());
  Result.Precision = tallyPrecision(Result.Static.Races, Result.DynamicRaces,
                                    &Result.Confirmed, &Result.Refuted);
  return Result;
}

static std::string formatRatio(double V) {
  char Buf[16];
  std::snprintf(Buf, sizeof(Buf), "%.2f", V);
  return Buf;
}

std::string wr::analysis::formatReport(const CrossCheckResult &R) {
  std::string Out = "== " + R.Name + " ==\n";
  Out += "predicted " + std::to_string(R.predictedCount()) +
         ", dynamic " + std::to_string(R.dynamicCount()) + ", confirmed " +
         std::to_string(R.confirmedCount()) + ", missed " +
         std::to_string(R.missedCount()) + "\n";
  Out += "precision " + formatRatio(R.precision()) + ", recall " +
         formatRatio(R.recall()) + "\n";
  static const GuardClass Classes[3] = {GuardClass::Unguarded,
                                        GuardClass::GuardedOneSide,
                                        GuardClass::GuardedBothSides};
  Out += "guards:";
  for (GuardClass C : Classes) {
    const GuardClassCounts &N = R.Precision.ByClass[static_cast<size_t>(C)];
    Out += " " + std::string(toString(C)) + " " +
           std::to_string(N.Predicted) + "/" + std::to_string(N.Confirmed) +
           "/" + std::to_string(N.Refuted);
  }
  Out += " (predicted/confirmed/refuted), refuted-by-guards " +
         std::to_string(R.Precision.RefutedByGuards) + "\n";
  for (const PredictedRace &P : R.Confirmed)
    Out += "  [confirmed] " + toString(P) + "\n";
  for (const PredictedRace &P : R.Refuted)
    Out += "  [unconfirmed] " + toString(P) + "\n";
  for (const MappedDynamicRace &D : R.DynamicRaces)
    if (!D.Predicted)
      Out += "  [missed] " + std::string(detect::toString(D.Kind)) +
             " race on " + D.Dynamic + "\n";
  for (const std::string &Note : R.Static.Notes)
    Out += "  note: " + Note + "\n";
  return Out;
}

std::string
wr::analysis::formatTable(const std::vector<CrossCheckResult> &Results) {
  std::string Out;
  char Row[128];
  std::snprintf(Row, sizeof(Row), "%-16s %9s %8s %9s %7s %9s %7s\n",
                "page", "predicted", "dynamic", "confirmed", "missed",
                "precision", "recall");
  Out += Row;
  size_t TotalPred = 0, TotalDyn = 0, TotalConf = 0, TotalMiss = 0;
  for (const CrossCheckResult &R : Results) {
    std::snprintf(Row, sizeof(Row), "%-16s %9zu %8zu %9zu %7zu %9s %7s\n",
                  R.Name.c_str(), R.predictedCount(), R.dynamicCount(),
                  R.confirmedCount(), R.missedCount(),
                  formatRatio(R.precision()).c_str(),
                  formatRatio(R.recall()).c_str());
    Out += Row;
    TotalPred += R.predictedCount();
    TotalDyn += R.dynamicCount();
    TotalConf += R.confirmedCount();
    TotalMiss += R.missedCount();
  }
  double Precision =
      TotalPred == 0 ? 1.0 : static_cast<double>(TotalConf) / TotalPred;
  double Recall = TotalDyn == 0
                      ? 1.0
                      : static_cast<double>(TotalDyn - TotalMiss) /
                            TotalDyn;
  std::snprintf(Row, sizeof(Row), "%-16s %9zu %8zu %9zu %7zu %9s %7s\n",
                "total", TotalPred, TotalDyn, TotalConf, TotalMiss,
                formatRatio(Precision).c_str(),
                formatRatio(Recall).c_str());
  Out += Row;
  return Out;
}

obs::Json wr::analysis::buildCrossCheckReport(
    const std::vector<CrossCheckResult> &Results) {
  obs::Json Doc = obs::makeReportEnvelope("crosscheck",
                                          "static-vs-dynamic");
  obs::Json Pages = obs::Json::array();
  size_t TotalPred = 0, TotalDyn = 0, TotalConf = 0, TotalMiss = 0;
  StaticPrecision MergedPrecision;
  for (const CrossCheckResult &R : Results) {
    obs::Json Row = obs::Json::object();
    Row.set("name", R.Name);
    Row.set("predicted", static_cast<uint64_t>(R.predictedCount()));
    Row.set("dynamic", static_cast<uint64_t>(R.dynamicCount()));
    Row.set("confirmed", static_cast<uint64_t>(R.confirmedCount()));
    Row.set("missed", static_cast<uint64_t>(R.missedCount()));
    Row.set("precision", R.precision());
    Row.set("recall", R.recall());
    obs::Json Confirmed = obs::Json::array();
    for (const PredictedRace &P : R.Confirmed)
      Confirmed.push(toString(P));
    Row.set("confirmed_predictions", std::move(Confirmed));
    obs::Json Refuted = obs::Json::array();
    for (const PredictedRace &P : R.Refuted)
      Refuted.push(toString(P));
    Row.set("unconfirmed_predictions", std::move(Refuted));
    obs::Json Missed = obs::Json::array();
    for (const MappedDynamicRace &D : R.DynamicRaces)
      if (!D.Predicted)
        Missed.push(std::string(detect::toString(D.Kind)) + " race on " +
                    D.Dynamic);
    Row.set("missed_dynamic_races", std::move(Missed));
    Row.set("static_precision", R.Precision.toJson());
    Row.set("stats", R.Dynamic.Stats.toJson());
    Pages.push(std::move(Row));
    TotalPred += R.predictedCount();
    TotalDyn += R.dynamicCount();
    TotalConf += R.confirmedCount();
    TotalMiss += R.missedCount();
    MergedPrecision.merge(R.Precision);
  }
  Doc.set("pages", std::move(Pages));
  obs::Json Totals = obs::Json::object();
  Totals.set("predicted", static_cast<uint64_t>(TotalPred));
  Totals.set("dynamic", static_cast<uint64_t>(TotalDyn));
  Totals.set("confirmed", static_cast<uint64_t>(TotalConf));
  Totals.set("missed", static_cast<uint64_t>(TotalMiss));
  Totals.set("precision", TotalPred == 0
                              ? 1.0
                              : static_cast<double>(TotalConf) / TotalPred);
  Totals.set("recall", TotalDyn == 0
                           ? 1.0
                           : static_cast<double>(TotalDyn - TotalMiss) /
                                 TotalDyn);
  Doc.set("totals", std::move(Totals));
  Doc.set("static_precision", MergedPrecision.toJson());
  return Doc;
}

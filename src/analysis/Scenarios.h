//===- analysis/Scenarios.h - Shared figure pages for validation -*- C++ -*-===//
//
// Part of the WebRacer reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's Fig. 1-5 example pages as self-contained PageSpecs, shared
/// by the cross-validation harness, the analysis tests, and the
/// static_crosscheck bench so all three exercise the same HTML the
/// dynamic figure benches use. Also provides a deliberately imprecise
/// page whose statically predicted race never happens dynamically - the
/// false-positive case the cross-check must refute.
///
//===----------------------------------------------------------------------===//

#ifndef WEBRACER_ANALYSIS_SCENARIOS_H
#define WEBRACER_ANALYSIS_SCENARIOS_H

#include "analysis/StaticAnalyzer.h"

#include <cstdint>
#include <string>
#include <vector>

namespace wr::analysis {

/// One external resource of a page.
struct PageResource {
  std::string Url;
  std::string Content;
  uint64_t LatencyUs = 1000;
};

/// A page plus everything it needs: enough for both the static analyzer
/// (via resolver()) and a dynamic Session (via network registration).
struct PageSpec {
  std::string Name;     ///< Short label, e.g. "fig1".
  std::string EntryUrl; ///< Usually "index.html".
  std::string Html;     ///< Entry document markup.
  std::vector<PageResource> Resources;

  /// Resolves the page's resources by URL (entry document included).
  ResourceResolver resolver() const;
};

/// The five figure pages (fig1..fig5), byte-identical to the markup the
/// dynamic figure benches load.
std::vector<PageSpec> figurePages();

/// Two async scripts: one writes a global under a condition that is
/// never true, the other reads it. Statically unordered with
/// intersecting effect sets, so a Variable race is predicted; the write
/// never executes, so no dynamic run confirms it.
PageSpec falsePositivePage();

} // namespace wr::analysis

#endif // WEBRACER_ANALYSIS_SCENARIOS_H

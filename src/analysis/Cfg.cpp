//===- analysis/Cfg.cpp - MiniJS control-flow graph lowering ---------------===//

#include "analysis/Cfg.h"

#include "support/Format.h"

#include <algorithm>

using namespace wr;
using namespace wr::analysis;

namespace {

/// Stateful lowering walker. `Cur` is the block under construction;
/// statements that end control flow (break, return) replace it with a
/// fresh unreachable block so trailing statements still get anchored
/// somewhere without growing edges.
class CfgBuilder {
public:
  Cfg build(const std::vector<js::StmtPtr> &Body) {
    newBlock(); // Entry (id 0).
    newBlock(); // Exit (id 1).
    Cur = Cfg::EntryId;
    lowerStmts(Body);
    addEdge(Cur, Cfg::ExitId, nullptr, true);
    finish();
    return std::move(G);
  }

private:
  Cfg G;
  uint32_t Cur = 0;
  /// Jump targets of enclosing loops/switches. Loops push both; a
  /// switch pushes only a break target.
  std::vector<uint32_t> Breaks;
  std::vector<uint32_t> Continues;

  uint32_t newBlock() {
    uint32_t Id = static_cast<uint32_t>(G.Blocks.size());
    G.Blocks.push_back(CfgBlock{Id, {}, nullptr, {}, {}});
    return Id;
  }

  void addEdge(uint32_t From, uint32_t To, const js::Expr *Cond,
               bool WhenTrue) {
    G.Blocks[From].Succs.push_back(CfgEdge{To, Cond, WhenTrue});
    G.Blocks[To].Preds.push_back(From);
  }

  void anchor(const js::Stmt *S) {
    G.BlockOf.emplace(S, Cur);
    G.Blocks[Cur].Stmts.push_back(S);
  }

  void lowerStmts(const std::vector<js::StmtPtr> &Body) {
    for (const js::StmtPtr &S : Body)
      lowerStmt(S.get());
  }

  /// Decomposes the branch condition \p E, emitting conditional edges
  /// from `Cur` to \p TrueT / \p FalseT. Logical operators chain
  /// condition blocks; `!` swaps the targets; everything else becomes
  /// one (true, false) edge pair carrying the atomic condition.
  void lowerCond(const js::Expr *E, uint32_t TrueT, uint32_t FalseT) {
    if (const auto *L = js::dyn_cast<js::Logical>(E)) {
      uint32_t Rest = newBlock();
      if (L->Op == js::LogicalOp::And)
        lowerCond(L->Lhs.get(), Rest, FalseT);
      else
        lowerCond(L->Lhs.get(), TrueT, Rest);
      Cur = Rest;
      lowerCond(L->Rhs.get(), TrueT, FalseT);
      return;
    }
    if (const auto *U = js::dyn_cast<js::Unary>(E)) {
      if (U->Op == js::UnaryOp::Not) {
        lowerCond(U->Operand.get(), FalseT, TrueT);
        return;
      }
    }
    G.Blocks[Cur].Term = E;
    addEdge(Cur, TrueT, E, true);
    addEdge(Cur, FalseT, E, false);
  }

  /// Moves `Cur` to a fresh block reached unconditionally - the shape
  /// of every merge point.
  void fallTo(uint32_t Next) {
    addEdge(Cur, Next, nullptr, true);
    Cur = Next;
  }

  void lowerStmt(const js::Stmt *S) {
    switch (S->kind()) {
    case js::AstKind::ExprStmt:
    case js::AstKind::VarDecl:
    case js::AstKind::FunctionDecl:
    case js::AstKind::Empty:
      anchor(S);
      return;

    case js::AstKind::Block: {
      anchor(S);
      lowerStmts(js::cast<js::Block>(S)->Stmts);
      return;
    }

    case js::AstKind::If: {
      const auto *I = js::cast<js::If>(S);
      anchor(S); // Anchored where its condition evaluation begins.
      uint32_t ThenB = newBlock();
      uint32_t Merge = newBlock();
      uint32_t ElseB = I->Else ? newBlock() : Merge;
      lowerCond(I->Cond.get(), ThenB, ElseB);
      Cur = ThenB;
      lowerStmt(I->Then.get());
      addEdge(Cur, Merge, nullptr, true);
      if (I->Else) {
        Cur = ElseB;
        lowerStmt(I->Else.get());
        addEdge(Cur, Merge, nullptr, true);
      }
      Cur = Merge;
      return;
    }

    case js::AstKind::While: {
      const auto *W = js::cast<js::While>(S);
      uint32_t Header = newBlock();
      fallTo(Header);
      anchor(S);
      uint32_t BodyB = newBlock();
      uint32_t Merge = newBlock();
      lowerCond(W->Cond.get(), BodyB, Merge);
      Breaks.push_back(Merge);
      Continues.push_back(Header);
      Cur = BodyB;
      lowerStmt(W->Body.get());
      addEdge(Cur, Header, nullptr, true); // Loop back edge.
      Breaks.pop_back();
      Continues.pop_back();
      Cur = Merge;
      return;
    }

    case js::AstKind::DoWhile: {
      const auto *D = js::cast<js::DoWhile>(S);
      uint32_t BodyB = newBlock();
      uint32_t CondB = newBlock();
      uint32_t Merge = newBlock();
      fallTo(BodyB);
      anchor(S); // Anchored at the body, which runs first.
      Breaks.push_back(Merge);
      Continues.push_back(CondB);
      lowerStmt(D->Body.get());
      addEdge(Cur, CondB, nullptr, true);
      Breaks.pop_back();
      Continues.pop_back();
      Cur = CondB;
      lowerCond(D->Cond.get(), BodyB, Merge); // True edge is the back edge.
      Cur = Merge;
      return;
    }

    case js::AstKind::For: {
      const auto *F = js::cast<js::For>(S);
      if (F->Init)
        lowerStmt(F->Init.get());
      uint32_t Header = newBlock();
      fallTo(Header);
      anchor(S);
      uint32_t BodyB = newBlock();
      uint32_t Latch = newBlock();
      uint32_t Merge = newBlock();
      if (F->Cond)
        lowerCond(F->Cond.get(), BodyB, Merge);
      else
        addEdge(Cur, BodyB, nullptr, true);
      Breaks.push_back(Merge);
      Continues.push_back(Latch);
      Cur = BodyB;
      lowerStmt(F->Body.get());
      addEdge(Cur, Latch, nullptr, true);
      Breaks.pop_back();
      Continues.pop_back();
      G.Blocks[Latch].Term = F->Step.get(); // May be null.
      addEdge(Latch, Header, nullptr, true); // Loop back edge.
      Cur = Merge;
      return;
    }

    case js::AstKind::ForIn: {
      const auto *F = js::cast<js::ForIn>(S);
      uint32_t Header = newBlock();
      fallTo(Header);
      anchor(S);
      // The enumeration itself is not a guardable condition: both the
      // body and the exit are reached unconditionally (zero or more
      // iterations).
      G.Blocks[Header].Term = F->Object.get();
      uint32_t BodyB = newBlock();
      uint32_t Merge = newBlock();
      addEdge(Header, BodyB, nullptr, true);
      addEdge(Header, Merge, nullptr, true);
      Breaks.push_back(Merge);
      Continues.push_back(Header);
      Cur = BodyB;
      lowerStmt(F->Body.get());
      addEdge(Cur, Header, nullptr, true); // Loop back edge.
      Breaks.pop_back();
      Continues.pop_back();
      Cur = Merge;
      return;
    }

    case js::AstKind::Switch: {
      const auto *Sw = js::cast<js::Switch>(S);
      anchor(S);
      G.Blocks[Cur].Term = Sw->Disc.get();
      uint32_t Merge = newBlock();
      Breaks.push_back(Merge);

      // One body block per case, created upfront so fallthrough and
      // the test chain can both target them.
      std::vector<uint32_t> CaseB;
      CaseB.reserve(Sw->Cases.size());
      int DefaultIdx = -1;
      for (size_t I = 0; I < Sw->Cases.size(); ++I) {
        CaseB.push_back(newBlock());
        if (!Sw->Cases[I].Test)
          DefaultIdx = static_cast<int>(I);
      }

      // Test chain: each tested case gets a dispatch block whose Term
      // is the case test (for read attribution) but whose edges are
      // unconditional - `case 0:` must not become a ConstFalse guard.
      for (size_t I = 0; I < Sw->Cases.size(); ++I) {
        if (!Sw->Cases[I].Test)
          continue;
        if (G.Blocks[Cur].Term) // Don't clobber Disc / a previous test.
          fallTo(newBlock());
        uint32_t Next = newBlock();
        G.Blocks[Cur].Term = Sw->Cases[I].Test.get();
        addEdge(Cur, CaseB[I], nullptr, true);
        addEdge(Cur, Next, nullptr, true);
        Cur = Next;
      }
      // No test matched: fall to the default body, or past the switch.
      addEdge(Cur, DefaultIdx >= 0 ? CaseB[DefaultIdx] : Merge, nullptr,
              true);

      for (size_t I = 0; I < Sw->Cases.size(); ++I) {
        Cur = CaseB[I];
        for (const js::StmtPtr &Child : Sw->Cases[I].Body)
          lowerStmt(Child.get());
        // Fallthrough into the next case body, or out of the switch.
        addEdge(Cur, I + 1 < CaseB.size() ? CaseB[I + 1] : Merge, nullptr,
                true);
      }
      Breaks.pop_back();
      Cur = Merge;
      return;
    }

    case js::AstKind::Break: {
      anchor(S);
      addEdge(Cur, Breaks.empty() ? Cfg::ExitId : Breaks.back(), nullptr,
              true);
      Cur = newBlock(); // Unreachable continuation.
      return;
    }

    case js::AstKind::Continue: {
      anchor(S);
      addEdge(Cur, Continues.empty() ? Cfg::ExitId : Continues.back(),
              nullptr, true);
      Cur = newBlock();
      return;
    }

    case js::AstKind::Return:
    case js::AstKind::Throw: {
      anchor(S);
      addEdge(Cur, Cfg::ExitId, nullptr, true);
      Cur = newBlock();
      return;
    }

    case js::AstKind::Try: {
      const auto *T = js::cast<js::Try>(S);
      anchor(S);
      // Approximation: the body may throw at any point, so the catch
      // block joins from the state *before* the body - conservative
      // for guard intersection (catch inherits no body guards) and for
      // reaching entry definitions (no body kill is assumed).
      uint32_t PreB = Cur;
      lowerStmt(T->Body.get());
      uint32_t BodyEnd = Cur;
      uint32_t Join = newBlock();
      addEdge(BodyEnd, Join, nullptr, true);
      if (T->Catch) {
        uint32_t CatchB = newBlock();
        addEdge(PreB, CatchB, nullptr, true);
        Cur = CatchB;
        lowerStmt(T->Catch.get());
        addEdge(Cur, Join, nullptr, true);
      }
      Cur = Join;
      if (T->Finally)
        lowerStmt(T->Finally.get());
      return;
    }

    default:
      anchor(S); // Unknown statements: straight-line, no edges.
      return;
    }
  }

  /// Computes back edges by DFS gray-node detection and drops
  /// duplicate pred entries left by edge insertion order.
  void finish() {
    enum Color : uint8_t { White, Gray, Black };
    std::vector<Color> Colors(G.Blocks.size(), White);
    // Iterative DFS; the second stack entry marks post-visit.
    std::vector<std::pair<uint32_t, bool>> Stack{{Cfg::EntryId, false}};
    while (!Stack.empty()) {
      auto [B, Post] = Stack.back();
      Stack.pop_back();
      if (Post) {
        Colors[B] = Black;
        continue;
      }
      if (Colors[B] != White)
        continue;
      Colors[B] = Gray;
      Stack.push_back({B, true});
      for (const CfgEdge &E : G.Blocks[B].Succs) {
        if (Colors[E.To] == Gray)
          G.BackEdges.emplace_back(B, E.To);
        else if (Colors[E.To] == White)
          Stack.push_back({E.To, false});
      }
    }
    std::sort(G.BackEdges.begin(), G.BackEdges.end());
    G.BackEdges.erase(std::unique(G.BackEdges.begin(), G.BackEdges.end()),
                      G.BackEdges.end());
  }
};

} // namespace

Cfg Cfg::lowerBody(const std::vector<js::StmtPtr> &Body) {
  CfgBuilder Builder;
  return Builder.build(Body);
}

Cfg Cfg::lower(const js::Program &P) { return lowerBody(P.Body); }

Cfg Cfg::lower(const js::FunctionLiteral &Fn) {
  if (!Fn.Body)
    return lowerBody({});
  return lowerBody(Fn.Body->Stmts);
}

std::vector<uint32_t> Cfg::rpo() const {
  std::vector<uint32_t> Order;
  std::vector<uint8_t> Done(Blocks.size(), 0);
  std::vector<std::pair<uint32_t, size_t>> Stack{{EntryId, 0}};
  Done[EntryId] = 1;
  while (!Stack.empty()) {
    auto &[B, NextSucc] = Stack.back();
    if (NextSucc < Blocks[B].Succs.size()) {
      uint32_t To = Blocks[B].Succs[NextSucc++].To;
      if (!Done[To]) {
        Done[To] = 1;
        Stack.push_back({To, 0});
      }
      continue;
    }
    Order.push_back(B);
    Stack.pop_back();
  }
  std::reverse(Order.begin(), Order.end());
  return Order;
}

std::string Cfg::dump() const {
  std::string Out;
  for (const CfgBlock &B : Blocks) {
    Out += strFormat("b%u:", B.Id);
    if (B.Id == EntryId)
      Out += " [entry]";
    if (B.Id == ExitId)
      Out += " [exit]";
    for (const js::Stmt *S : B.Stmts)
      Out += strFormat(" %s", js::astKindName(S->kind()));
    Out += " ->";
    for (const CfgEdge &E : B.Succs) {
      if (E.Cond)
        Out += strFormat(" b%u(%s:%s)", E.To, E.WhenTrue ? "T" : "F",
                         js::renderExpr(*E.Cond).c_str());
      else
        Out += strFormat(" b%u", E.To);
    }
    Out += '\n';
  }
  return Out;
}

//===- analysis/Dataflow.h - Forward dataflow over the MiniJS CFG -*- C++ -*-=//
//
// Part of the WebRacer reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, lattice-generic forward fixed-point engine over the Cfg
/// (Cfg.h), plus the two analyses the static race analyzer runs on it:
///
///  * Guard analysis - which branch conditions (Guards.h) dominate each
///    statement. Lattice: sets of guards under *intersection* (a guard
///    survives a merge only if every incoming path established it);
///    conditional edges add the classified condition, assignments to a
///    guard's subject kill it.
///
///  * Reaching entry definitions - for each global variable defined
///    somewhere in the body, can the value it had *at operation entry*
///    still reach this statement? Lattice: sets of variable names
///    under union ("may reach"); a definite (unconditional) definition
///    kills the entry value. A read whose entry definition cannot
///    reach it is not exposed: within one atomic operation (scripts
///    and handlers run without interleaving) it can only observe the
///    local write, so the effect pass drops it and lets the write
///    carry the race.
///
/// The FlowInfo facade runs both analyses once per body and answers
/// per-statement queries by replaying the anchor block's statements up
/// to the query point. Statements in unreachable blocks conservatively
/// report no guards and no definite writes.
///
//===----------------------------------------------------------------------===//

#ifndef WEBRACER_ANALYSIS_DATAFLOW_H
#define WEBRACER_ANALYSIS_DATAFLOW_H

#include "analysis/Cfg.h"
#include "analysis/Guards.h"

#include <deque>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace wr::analysis {

/// Runs \p A to a fixed point over \p G and returns the state at each
/// block's entry; `nullopt` marks blocks no path reaches. An Analysis
/// provides:
///
///   using Domain = ...;
///   Domain boundary() const;                      // entry-block state
///   void transferBlock(const CfgBlock&, Domain&); // apply block body
///   void transferEdge(const CfgEdge&, Domain&);   // apply edge cond
///   static bool join(Domain &Into, const Domain&);// merge; true if changed
///
/// Termination requires join to be monotone on a finite lattice, which
/// both analyses here satisfy (guard sets only shrink under
/// intersection; def sets only grow toward a finite universe).
template <typename Analysis>
std::vector<std::optional<typename Analysis::Domain>>
solveForward(const Cfg &G, const Analysis &A) {
  using Domain = typename Analysis::Domain;
  std::vector<std::optional<Domain>> In(G.Blocks.size());
  In[Cfg::EntryId] = A.boundary();

  std::vector<uint32_t> Order = G.rpo();
  std::deque<uint32_t> Work(Order.begin(), Order.end());
  std::vector<uint8_t> Queued(G.Blocks.size(), 0);
  for (uint32_t B : Order)
    Queued[B] = 1;

  while (!Work.empty()) {
    uint32_t B = Work.front();
    Work.pop_front();
    Queued[B] = 0;
    if (!In[B])
      continue; // Not reached yet; re-queued if a pred produces state.
    Domain Out = *In[B];
    A.transferBlock(G.Blocks[B], Out);
    for (const CfgEdge &E : G.Blocks[B].Succs) {
      Domain Along = Out;
      A.transferEdge(E, Along);
      bool Changed;
      if (!In[E.To]) {
        In[E.To] = std::move(Along);
        Changed = true;
      } else {
        Changed = Analysis::join(*In[E.To], Along);
      }
      if (Changed && !Queued[E.To]) {
        Queued[E.To] = 1;
        Work.push_back(E.To);
      }
    }
  }
  return In;
}

/// Appends to \p Out the global variable names statement \p S itself
/// defines (assignments, `var` initializers, updates, the `for..in`
/// variable) - not those of nested statements, which anchor in their
/// own blocks, and not those of condition expressions, which live in
/// block terminators. With \p IncludeConditional false, definitions
/// under a conditional expression arm or a short-circuit right-hand
/// side are skipped (must-defs); with true they count (may-defs).
void collectStmtDefs(const js::Stmt *S, bool IncludeConditional,
                     std::vector<std::string> &Out);

/// Same for a bare expression (a block terminator such as a `for`
/// step). Never descends into function literals.
void collectExprDefs(const js::Expr *E, bool IncludeConditional,
                     std::vector<std::string> &Out);

/// Per-body flow facts: lowers the body once, solves both analyses,
/// and answers per-statement queries (see file comment).
class FlowInfo {
public:
  explicit FlowInfo(const js::Program &P);
  explicit FlowInfo(const js::FunctionLiteral &Fn);

  /// The guards dominating \p S. Empty for statements this body did
  /// not lower (including unreachable ones) - the conservative answer.
  GuardSet guardsAt(const js::Stmt *S) const;

  /// True if \p S sits on a path dominated by a literally-false
  /// condition: its effects cannot happen.
  bool deadAt(const js::Stmt *S) const { return guardsAt(S).hasConstFalse(); }

  /// True if every path from operation entry to \p S definitely wrote
  /// \p Var first, making a read at \p S unexposed (see file comment).
  bool definitelyWrittenBefore(const js::Stmt *S,
                               const std::string &Var) const;

  const Cfg &cfg() const { return G; }

private:
  explicit FlowInfo(Cfg Lowered);

  Cfg G;
  /// Block-entry states of the two analyses; nullopt = unreachable.
  std::vector<std::optional<GuardSet>> GuardIn;
  std::vector<std::optional<std::set<std::string>>> EntryIn;
  /// Variables with at least one definition in this body - the
  /// reaching-entry-defs universe.
  std::set<std::string> Tracked;
};

} // namespace wr::analysis

#endif // WEBRACER_ANALYSIS_DATAFLOW_H

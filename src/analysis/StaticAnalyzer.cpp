//===- analysis/StaticAnalyzer.cpp - Ahead-of-time race prediction ----------===//

#include "analysis/StaticAnalyzer.h"

#include "html/HtmlParser.h"
#include "js/Parser.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <tuple>
#include <unordered_map>
#include <unordered_set>

using namespace wr;
using namespace wr::analysis;

const char *wr::analysis::toString(GuardClass Class) {
  switch (Class) {
  case GuardClass::Unguarded:
    return "unguarded";
  case GuardClass::GuardedOneSide:
    return "guarded-one-side";
  case GuardClass::GuardedBothSides:
    return "guarded-both-sides";
  }
  return "?";
}

std::string wr::analysis::toString(const PredictedRace &R) {
  std::string Out = detect::toString(R.Kind);
  Out += " race on ";
  Out += toString(R.Loc);
  Out += ": ";
  Out += R.SourceALabel;
  Out += " <-> ";
  Out += R.SourceBLabel;
  Out += " [";
  Out += toString(R.Class);
  Out += "]";
  return Out;
}

size_t StaticAnalysis::countByKind(detect::RaceKind Kind) const {
  size_t N = 0;
  for (const PredictedRace &R : Races)
    if (R.Kind == Kind)
      ++N;
  return N;
}

namespace {

/// Builds an unconditional effect (parse writes, dispatch reads - the
/// browser's own accesses carry no script guards).
Effect makeEffect(AccessKind Kind, AccessOrigin Origin, StaticLoc Loc) {
  Effect E;
  E.Kind = Kind;
  E.Origin = Origin;
  E.Loc = std::move(Loc);
  return E;
}

/// One opened element or completed script, in parse order.
struct DocItem {
  Element *Elem = nullptr;
  bool IsScript = false;
  html::ScriptKind Script = html::ScriptKind::Inline;
  std::string ScriptLabel;
  std::unique_ptr<js::Program> ScriptAst; ///< Null if unresolved/invalid.
  /// Content-attribute handlers: event type -> parsed body.
  std::vector<std::pair<std::string, std::unique_ptr<js::Program>>>
      AttrHandlers;
  std::unique_ptr<js::Program> LinkAst; ///< javascript: href body.
  std::unique_ptr<struct ParsedDocument> Frame; ///< iframe subdocument.
};

/// One statically parsed document (the entry page or a frame).
struct ParsedDocument {
  std::unique_ptr<Document> Dom; ///< Keeps the Element pointers alive.
  std::string Url;
  std::vector<DocItem> Items;
};

/// A script-installed handler whose body must be merged into the
/// matching dispatch source once the whole page is built.
struct PendingInstall {
  std::string Target;
  std::string Type;
  EffectSet Body;
};

class PageBuilder {
public:
  PageBuilder(const ResourceResolver &Resolve, StaticAnalysis &Out)
      : Resolve(Resolve), Out(Out) {}

  void run(const std::string &Html) {
    std::unique_ptr<ParsedDocument> Root =
        parseDocument(Html, "page", /*Depth=*/0);
    collectFunctions(*Root);
    DocResult R = buildDoc(*Root, StaticHbGraph::InvalidSource);
    // The window load and DOMContentLoaded dispatches fire after the
    // whole synchronous pipeline; handlers installed by sync scripts are
    // therefore ordered before them (matching rules 7 and 12-14).
    uint32_t WinLoad = dispatchSource("window", "load", R.DocEnd);
    for (uint32_t FrameEnd : R.FrameEnds)
      Out.Graph.addEdge(FrameEnd, WinLoad);
    dispatchSource("document", "DOMContentLoaded", R.DocEnd);
    // Merge script-installed handler bodies into their dispatch sources.
    // Bodies can themselves install handlers, so drain by index.
    for (size_t I = 0; I < Pending.size(); ++I) {
      PendingInstall PI = std::move(Pending[I]);
      uint32_t Anchor = StaticHbGraph::InvalidSource;
      auto It = ParseSrcById.find(PI.Target);
      if (It != ParseSrcById.end())
        Anchor = It->second;
      uint32_t D = dispatchSource(PI.Target, PI.Type, Anchor);
      attachEffects(D, std::move(PI.Body));
    }
    predictRaces();
  }

private:
  struct DocResult {
    uint32_t DocEnd = StaticHbGraph::InvalidSource;
    std::vector<uint32_t> FrameEnds;
  };

  /// Preferred static name of an element as an event target.
  static std::string targetName(const Element *E) {
    std::string Id = E->idAttr();
    if (!Id.empty())
      return Id;
    std::string Name = E->getAttribute("name");
    if (!Name.empty())
      return Name;
    return E->tagName();
  }

  std::unique_ptr<ParsedDocument> parseDocument(std::string Html,
                                                std::string Url,
                                                int Depth) {
    auto D = std::make_unique<ParsedDocument>();
    D->Url = std::move(Url);
    D->Dom = std::make_unique<Document>(NextDocId++, NextNodeId);
    html::HtmlParser P(*D->Dom, std::move(Html));
    size_t InlineCount = 0;
    while (true) {
      html::ParseStep Step = P.pump();
      switch (Step.StepKind) {
      case html::ParseStep::Kind::ElementOpened: {
        DocItem Item;
        Item.Elem = Step.Elem;
        for (const Attribute &A : Step.Elem->attributes()) {
          if (A.Name.size() <= 2 || A.Name.compare(0, 2, "on") != 0)
            continue;
          js::ParseResult R = js::Parser::parseProgram(A.Value);
          if (R.Ast)
            Item.AttrHandlers.emplace_back(A.Name.substr(2),
                                           std::move(R.Ast));
          else
            Out.Notes.push_back("handler attribute " + A.Name + " on <" +
                                Step.Elem->tagName() +
                                "> failed to parse");
        }
        if (Step.Elem->tagName() == "a") {
          std::string Href = Step.Elem->getAttribute("href");
          if (startsWithIgnoreCase(Href, "javascript:")) {
            js::ParseResult R = js::Parser::parseProgram(
                Href.substr(std::string("javascript:").size()));
            if (R.Ast)
              Item.LinkAst = std::move(R.Ast);
            else
              Out.Notes.push_back("javascript: link on <a> failed to "
                                  "parse");
          }
        }
        if ((Step.Elem->tagName() == "iframe" ||
             Step.Elem->tagName() == "frame") &&
            Step.Elem->hasAttribute("src")) {
          std::string Src = Step.Elem->getAttribute("src");
          if (Depth >= 8)
            Out.Notes.push_back("frame nesting too deep; skipping " + Src);
          else if (std::optional<std::string> Content = Resolve(Src))
            Item.Frame = parseDocument(*Content, Src, Depth + 1);
          else
            Out.Notes.push_back("unresolved frame " + Src);
        }
        D->Items.push_back(std::move(Item));
        break;
      }
      case html::ParseStep::Kind::ScriptComplete: {
        DocItem Item;
        Item.Elem = Step.Elem;
        Item.IsScript = true;
        Item.Script = html::classifyScript(Step.Elem);
        std::string Source;
        bool Have = false;
        if (Item.Script == html::ScriptKind::Inline) {
          Source = Step.Text;
          Have = true;
          Item.ScriptLabel =
              D->Url + " inline #" + std::to_string(++InlineCount);
        } else {
          std::string Src = Step.Elem->getAttribute("src");
          Item.ScriptLabel = Src;
          if (std::optional<std::string> Content = Resolve(Src)) {
            Source = *Content;
            Have = true;
          } else {
            Out.Notes.push_back("unresolved script " + Src);
          }
        }
        if (Have) {
          js::ParseResult R = js::Parser::parseProgram(Source);
          if (R.Ast)
            Item.ScriptAst = std::move(R.Ast);
          else
            Out.Notes.push_back("script " + Item.ScriptLabel +
                                " failed to parse");
        }
        D->Items.push_back(std::move(Item));
        break;
      }
      case html::ParseStep::Kind::ElementClosed:
      case html::ParseStep::Kind::TextAdded:
        break;
      case html::ParseStep::Kind::Finished:
        return D;
      }
    }
  }

  /// Builds the page-wide function table: declarations anywhere on the
  /// page resolve in every body (the cross-script calls of Fig. 4).
  void collectFunctions(const ParsedDocument &D) {
    for (const DocItem &Item : D.Items) {
      if (Item.ScriptAst)
        collectDeclaredFunctions(*Item.ScriptAst, Fns);
      for (const auto &AH : Item.AttrHandlers)
        collectDeclaredFunctions(*AH.second, Fns);
      if (Item.LinkAst)
        collectDeclaredFunctions(*Item.LinkAst, Fns);
      if (Item.Frame)
        collectFunctions(*Item.Frame);
    }
  }

  DocResult buildDoc(ParsedDocument &D, uint32_t Anchor) {
    StaticHbGraph &G = Out.Graph;
    uint32_t Prev = Anchor;
    std::vector<uint32_t> Defers;
    DocResult Result;

    for (DocItem &Item : D.Items) {
      if (Item.IsScript) {
        EffectSet ES;
        if (Item.ScriptAst)
          ES = computeEffects(*Item.ScriptAst, Fns);
        switch (Item.Script) {
        case html::ScriptKind::Inline:
        case html::ScriptKind::SyncExternal: {
          // Rules 1a-1c: synchronous scripts extend the parse chain.
          uint32_t S = G.addSource(SourceKind::SyncScript,
                                   "script " + Item.ScriptLabel);
          G.addEdge(Prev, S);
          Prev = S;
          attachEffects(S, std::move(ES));
          break;
        }
        case html::ScriptKind::DeferredExternal: {
          // Rules 4-5: chained after parsing, in document order.
          uint32_t S = G.addSource(SourceKind::DeferScript,
                                   "defer " + Item.ScriptLabel);
          Defers.push_back(S);
          attachEffects(S, std::move(ES));
          break;
        }
        case html::ScriptKind::AsyncExternal: {
          // Only the download start is ordered; execution floats free.
          uint32_t S = G.addSource(SourceKind::AsyncScript,
                                   "async " + Item.ScriptLabel);
          G.addEdge(Prev, S);
          attachEffects(S, std::move(ES));
          break;
        }
        }
        continue;
      }

      Element *E = Item.Elem;
      const std::string &Tag = E->tagName();
      std::string Id = E->idAttr();
      std::string NameAttr = E->getAttribute("name");
      std::string TName = targetName(E);

      uint32_t P = G.addSource(
          SourceKind::Parse,
          "parse <" + Tag + (Id.empty() ? "" : "#" + Id) + ">");
      G.addEdge(Prev, P);
      Prev = P;
      if (!Id.empty()) {
        G.source(P).Effects.add(makeEffect(AccessKind::Write,
                                           AccessOrigin::ElemInsert,
                                           {StaticLocKind::Elem, Id, ""}));
        ParseSrcById.emplace(Id, P);
      }
      if (!NameAttr.empty())
        G.source(P).Effects.add(
            makeEffect(AccessKind::Write, AccessOrigin::ElemInsert,
                       {StaticLocKind::Elem, NameAttr, ""}));
      // Rule 8: in-tag handlers install at parse(E), so the install is
      // ordered before any dispatch anchored at P below.
      for (const auto &AH : Item.AttrHandlers)
        G.source(P).Effects.add(
            makeEffect(AccessKind::Write, AccessOrigin::HandlerInstall,
                       {StaticLocKind::Handler, TName, AH.first}));

      if (Item.Frame) {
        // Rule 6: the frame's chain hangs off parse(iframe); rule 7: its
        // load dispatch fires after the frame finishes.
        DocResult FR = buildDoc(*Item.Frame, P);
        Result.FrameEnds.push_back(FR.DocEnd);
        for (uint32_t Sub : FR.FrameEnds)
          Result.FrameEnds.push_back(Sub);
        uint32_t DL = dispatchSource(TName, "load", P);
        G.addEdge(FR.DocEnd, DL);
      }

      if (Tag == "img" && E->hasAttribute("src")) {
        // Images fire load once fetched; only the element's parse is
        // ordered before the dispatch, so installs from unordered
        // sources race with it.
        dispatchSource(TName, "load", P);
      }

      for (auto &AH : Item.AttrHandlers) {
        uint32_t DS = dispatchSource(TName, AH.first, P);
        attachEffects(DS, computeEffects(*AH.second, Fns));
      }

      if (Item.LinkAst) {
        // The explorer clicks javascript: links; the click is anchored
        // only at the parse of the link (rule 8), never at later
        // scripts - the Fig. 3 window.
        uint32_t DS = dispatchSource(TName, "click", P);
        attachEffects(DS, computeEffects(*Item.LinkAst, Fns));
      }

      bool TextBox = Tag == "textarea";
      if (Tag == "input") {
        std::string Type = toLower(E->getAttribute("type"));
        TextBox = Type.empty() || Type == "text" || Type == "search" ||
                  Type == "email" || Type == "password";
      }
      if (TextBox) {
        std::string FieldKey = !Id.empty() ? Id : NameAttr;
        if (FieldKey.empty()) {
          Out.Notes.push_back("text box without id or name; user input "
                              "not modeled");
        } else {
          // User typing is anchored only at the field's parse (rule 9);
          // it floats against every script - the Fig. 2 window.
          uint32_t U = G.addSource(SourceKind::UserInput,
                                   "type into #" + FieldKey);
          G.addEdge(P, U);
          G.source(U).Effects.add(
              makeEffect(AccessKind::Write, AccessOrigin::UserInput,
                         {StaticLocKind::FormField, FieldKey, ""}));
        }
      }
    }

    Result.DocEnd = Prev;
    for (uint32_t S : Defers) {
      G.addEdge(Result.DocEnd, S);
      Result.DocEnd = S;
    }
    return Result;
  }

  /// Finds or creates the dispatch source for (target, type), adding
  /// \p Anchor as a predecessor either way.
  uint32_t dispatchSource(const std::string &Target, const std::string &Type,
                          uint32_t Anchor) {
    std::string Key = Target + "\x1f" + Type;
    auto It = DispatchByKey.find(Key);
    if (It != DispatchByKey.end()) {
      Out.Graph.addEdge(Anchor, It->second);
      return It->second;
    }
    uint32_t D = Out.Graph.addSource(
        SourceKind::EventDispatch,
        "dispatch (" + (Target.empty() ? "?" : Target) + ", " + Type + ")");
    Out.Graph.addEdge(Anchor, D);
    Out.Graph.source(D).Effects.add(
        makeEffect(AccessKind::Read, AccessOrigin::HandlerFire,
                   {StaticLocKind::Handler, Target, Type}));
    DispatchByKey.emplace(std::move(Key), D);
    return D;
  }

  /// Merges \p ES into source \p Src and materializes its callback
  /// registrations as derived sources (rules 10, 16, 17). Guards from
  /// each registration site push down into the callback's body: the
  /// body only runs if the registering branch was taken.
  void attachEffects(uint32_t Src, EffectSet ES) {
    StaticHbGraph &G = Out.Graph;
    for (Effect &E : ES.Effects)
      G.source(Src).Effects.add(std::move(E));
    for (CallbackReg &Reg : ES.Callbacks) {
      if (Reg.Guards.hasConstFalse())
        continue; // Registered under `if (false)`: can never fire.
      Reg.Body.addGuards(Reg.Guards);
      switch (Reg.Kind) {
      case CallbackKind::Timeout:
      case CallbackKind::Interval: {
        uint32_t C = G.addSource(Reg.Kind == CallbackKind::Timeout
                                     ? SourceKind::TimerCallback
                                     : SourceKind::IntervalCallback,
                                 std::string(Reg.Kind ==
                                                     CallbackKind::Timeout
                                                 ? "timeout from "
                                                 : "interval from ") +
                                     G.source(Src).Label);
        G.addEdge(Src, C);
        attachEffects(C, std::move(Reg.Body));
        break;
      }
      case CallbackKind::XhrDispatch: {
        uint32_t C = G.addSource(SourceKind::XhrCallback,
                                 "xhr from " + G.source(Src).Label);
        G.addEdge(Src, C);
        G.source(C).Effects.add(
            makeEffect(AccessKind::Read, AccessOrigin::HandlerFire,
                       {StaticLocKind::Handler, "", "readystatechange"}));
        attachEffects(C, std::move(Reg.Body));
        break;
      }
      case CallbackKind::EventHandler:
        Pending.push_back(
            {std::move(Reg.TargetId), std::move(Reg.EventType),
             std::move(Reg.Body)});
        break;
      }
    }
  }

  /// Is \p S's side of a race on \p Canon statically defended? Every
  /// effect the source has on the location must either sit under a
  /// guard or be a condition read (the check itself). Returns the
  /// defended flag plus a witness guard text for reports.
  static std::pair<bool, std::string>
  sideGuarded(const EffectSource &S, const StaticLoc &Canon) {
    bool Any = false;
    std::string Witness;
    for (const Effect &E : S.Effects.Effects) {
      if (!locationsMayAlias(E.Loc, Canon))
        continue;
      Any = true;
      if (!E.SyncRead && E.Guards.empty())
        return {false, ""};
      if (Witness.empty())
        Witness =
            E.Guards.empty() ? "(condition read)" : E.Guards.toString();
    }
    return {Any, Witness};
  }

  void predictRaces() {
    const StaticHbGraph &G = Out.Graph;
    std::unordered_set<std::string> Seen;
    const auto &Srcs = G.sources();
    for (uint32_t A = 0; A < Srcs.size(); ++A) {
      for (uint32_t B = A + 1; B < Srcs.size(); ++B) {
        if (G.ordered(A, B))
          continue;
        for (const Effect &Ea : Srcs[A].Effects.Effects) {
          for (const Effect &Eb : Srcs[B].Effects.Effects) {
            if (!locationsMayAlias(Ea.Loc, Eb.Loc))
              continue;
            if (Ea.Kind == AccessKind::Read && Eb.Kind == AccessKind::Read)
              continue;
            detect::RaceKind Kind = classifyStaticRace(Ea, Eb);
            const StaticLoc &Canon =
                Ea.Loc.Name.empty() ? Eb.Loc : Ea.Loc;
            std::string Key = std::to_string(static_cast<int>(Kind)) +
                              "\x1f" +
                              std::to_string(
                                  static_cast<int>(Canon.Kind)) +
                              "\x1f" + Canon.Name + "\x1f" +
                              Canon.EventType;
            if (!Seen.insert(Key).second)
              continue;
            PredictedRace R;
            R.Kind = Kind;
            R.Loc = Canon;
            R.First = Ea;
            R.Second = Eb;
            R.SourceA = A;
            R.SourceB = B;
            R.SourceALabel = Srcs[A].Label;
            R.SourceBLabel = Srcs[B].Label;
            // Classify the reported pair's defenses (deduplicated
            // pairs on the same location share this verdict).
            auto [GA, WA] = sideGuarded(Srcs[A], Canon);
            auto [GB, WB] = sideGuarded(Srcs[B], Canon);
            R.GuardedA = GA;
            R.GuardedB = GB;
            R.GuardsA = std::move(WA);
            R.GuardsB = std::move(WB);
            R.Class = GA && GB  ? GuardClass::GuardedBothSides
                      : GA || GB ? GuardClass::GuardedOneSide
                                 : GuardClass::Unguarded;
            Out.Races.push_back(std::move(R));
          }
        }
      }
    }
    // Deterministic report order, independent of container iteration:
    // by (kind, location, source pair).
    std::stable_sort(
        Out.Races.begin(), Out.Races.end(),
        [](const PredictedRace &X, const PredictedRace &Y) {
          return std::tie(X.Kind, X.Loc.Kind, X.Loc.Name, X.Loc.EventType,
                          X.SourceA, X.SourceB) <
                 std::tie(Y.Kind, Y.Loc.Kind, Y.Loc.Name, Y.Loc.EventType,
                          Y.SourceA, Y.SourceB);
        });
  }

  const ResourceResolver &Resolve;
  StaticAnalysis &Out;
  uint32_t NextNodeId = 1;
  DocumentId NextDocId = 1;
  FunctionTable Fns;
  std::unordered_map<std::string, uint32_t> ParseSrcById;
  std::unordered_map<std::string, uint32_t> DispatchByKey;
  std::vector<PendingInstall> Pending;
};

} // namespace

StaticAnalysis wr::analysis::analyzePage(const std::string &Html,
                                         const ResourceResolver &Resolve) {
  StaticAnalysis Result;
  PageBuilder Builder(Resolve, Result);
  Builder.run(Html);
  return Result;
}

//===- analysis/StaticHb.h - Static must-happens-before graph ---*- C++ -*-===//
//
// Part of the WebRacer reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The static counterpart of the dynamic happens-before graph: a DAG of
/// *effect sources*, each an operation the page will (or may) run, with
/// edges only where the paper's HB rules guarantee an order from document
/// structure alone:
///
///  * the synchronous parse/execute chain of each document, in parse
///    order (rules 1a-1c, 2, 3);
///  * deferred scripts after parsing, chained in document order
///    (rules 4, 5);
///  * a frame's chain after the parse of its <iframe> (rule 6), and the
///    frame's load dispatch after the frame's chain (rule 7);
///  * in-tag handler content attributes ordered before their dispatch
///    (rule 8), because the install happens at parse(E);
///  * timer and XHR callbacks after their registering source
///    (rules 10, 16, 17).
///
/// Everything else - async scripts, user-driven dispatches, user input,
/// two sibling frames - stays unordered, which is exactly where the
/// paper's races live. This is a *must* approximation: an edge means the
/// order always holds; the absence of an edge means some schedule may
/// reverse the pair.
///
//===----------------------------------------------------------------------===//

#ifndef WEBRACER_ANALYSIS_STATICHB_H
#define WEBRACER_ANALYSIS_STATICHB_H

#include "analysis/EffectSet.h"

#include <cstdint>
#include <string>
#include <vector>

namespace wr::analysis {

/// What kind of operation an effect source stands for.
enum class SourceKind : uint8_t {
  Parse,            ///< parse(E) of one element (insertion writes).
  SyncScript,       ///< Inline or synchronous external script.
  DeferScript,      ///< Deferred external script.
  AsyncScript,      ///< Asynchronous external script.
  TimerCallback,    ///< setTimeout body.
  IntervalCallback, ///< setInterval body.
  XhrCallback,      ///< readystatechange handler after send().
  EventDispatch,    ///< An event dispatch plus its handler bodies.
  UserInput,        ///< Simulated user typing into a form field.
};

const char *toString(SourceKind Kind);

/// One static operation with its may-effects.
struct EffectSource {
  uint32_t Id = 0;
  SourceKind Kind = SourceKind::Parse;
  std::string Label; ///< Human-readable, e.g. `script hint.js`.
  EffectSet Effects;
};

/// The DAG of effect sources. Queries are by reachability: A is ordered
/// with B iff one reaches the other along must-HB edges.
class StaticHbGraph {
public:
  /// Sentinel for "no source".
  static constexpr uint32_t InvalidSource = ~0u;

  /// Adds a source and returns its id.
  uint32_t addSource(SourceKind Kind, std::string Label);

  EffectSource &source(uint32_t Id) { return Sources[Id]; }
  const EffectSource &source(uint32_t Id) const { return Sources[Id]; }
  const std::vector<EffectSource> &sources() const { return Sources; }

  /// Adds the must-HB edge From -> To. Ignores invalid endpoints so
  /// callers can pass optional anchors unconditionally.
  void addEdge(uint32_t From, uint32_t To);

  size_t numEdges() const { return Edges; }

  /// True if \p From reaches \p To along edges (reflexive).
  bool reaches(uint32_t From, uint32_t To) const;

  /// True if the two sources are ordered either way - the static
  /// equivalent of NOT Can-Happen-Concurrently.
  bool ordered(uint32_t A, uint32_t B) const {
    return reaches(A, B) || reaches(B, A);
  }

  /// Renders the graph (sources and edges) for debugging and the CLI's
  /// verbose mode.
  std::string toString() const;

private:
  std::vector<EffectSource> Sources;
  std::vector<std::vector<uint32_t>> Succ;
  size_t Edges = 0;
};

} // namespace wr::analysis

#endif // WEBRACER_ANALYSIS_STATICHB_H

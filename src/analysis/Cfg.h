//===- analysis/Cfg.h - MiniJS control-flow graph lowering ------*- C++ -*-===//
//
// Part of the WebRacer reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers a MiniJS AST (one script, handler, or function body) into a
/// control-flow graph of basic blocks so the dataflow engine
/// (Dataflow.h) can run flow-sensitive analyses over it. The lowering
/// covers the full MiniJS statement set:
///
///  * `if`/`else`, `while`, `do..while`, `for`, `for..in`, `switch`
///    (with fallthrough), `break`/`continue`, `return`/`throw`, and
///    `try`/`catch`/`finally` (approximated: the catch block is
///    reachable from the state *before* the try body, the conservative
///    direction for both analyses we run).
///  * Short-circuit conditions: `a && b` / `a || b` in branch position
///    decompose into chained condition blocks, and `!c` swaps the
///    branch targets, so each conditional edge carries one atomic
///    condition expression.
///
/// Invariants the lowering maintains (tested in tests/cfg_test.cpp):
///
///  * Block 0 is the entry, block 1 the exit; the exit has no
///    successors.
///  * Every AST statement (excluding those inside nested function
///    literals, which get their own Cfg) maps to exactly one block -
///    the block in which its execution, or the evaluation of its
///    condition, begins.
///  * Conditional edges come in (true, false) pairs leaving the same
///    block with the same condition expression; unconditional edges
///    have a null condition. Case tests of a `switch` are deliberately
///    NOT condition edges: `case 0:` is an equality dispatch, not a
///    guard.
///  * Loop back edges (computed by depth-first search) are exactly the
///    edges returning to a loop header.
///
/// Nested function bodies are not lowered into the enclosing graph;
/// the effect pass builds a separate Cfg per body.
///
//===----------------------------------------------------------------------===//

#ifndef WEBRACER_ANALYSIS_CFG_H
#define WEBRACER_ANALYSIS_CFG_H

#include "js/Ast.h"

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

namespace wr::analysis {

/// One control-flow edge. `Cond` is null for unconditional edges;
/// conditional edges record the atomic branch condition and the
/// polarity with which it holds along the edge.
struct CfgEdge {
  uint32_t To = 0;
  const js::Expr *Cond = nullptr;
  bool WhenTrue = true;
};

/// A basic block: the statements that start in it, an optional
/// terminator expression (branch condition, switch discriminant, or
/// `for`-step, recorded so expression reads/writes stay attributable
/// to a block), and the edge lists.
struct CfgBlock {
  uint32_t Id = 0;
  std::vector<const js::Stmt *> Stmts;
  const js::Expr *Term = nullptr;
  std::vector<CfgEdge> Succs;
  std::vector<uint32_t> Preds;
};

class Cfg {
public:
  static constexpr uint32_t EntryId = 0;
  static constexpr uint32_t ExitId = 1;

  std::vector<CfgBlock> Blocks;
  /// Anchor block of every lowered statement (see file comment).
  std::unordered_map<const js::Stmt *, uint32_t> BlockOf;
  /// (from, to) pairs of loop back edges, from a DFS over the graph.
  std::vector<std::pair<uint32_t, uint32_t>> BackEdges;

  /// Lowers a top-level program body.
  static Cfg lower(const js::Program &P);
  /// Lowers a function body (parameters play no control-flow role).
  static Cfg lower(const js::FunctionLiteral &Fn);

  const CfgBlock &entry() const { return Blocks[EntryId]; }
  const CfgBlock &exit() const { return Blocks[ExitId]; }

  /// Reverse postorder over the blocks reachable from the entry - the
  /// iteration order that makes forward dataflow converge fastest.
  std::vector<uint32_t> rpo() const;

  /// Debug rendering: one line per block with statement kinds and
  /// successor edges.
  std::string dump() const;

private:
  static Cfg lowerBody(const std::vector<js::StmtPtr> &Body);
};

} // namespace wr::analysis

#endif // WEBRACER_ANALYSIS_CFG_H

//===- analysis/StaticAnalyzer.h - Ahead-of-time race prediction -*- C++ -*-===//
//
// Part of the WebRacer reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The ahead-of-time static race analyzer: given a page's HTML (and a
/// resolver for its external resources), it parses the document structure
/// and every script, computes per-source effect sets (EffectSet.h),
/// builds the static must-happens-before DAG (StaticHb.h), and
/// intersects the effect sets of unordered source pairs to predict races
/// - before the event loop ever runs.
///
/// The effect sets are flow-sensitive: each body is lowered to a CFG
/// (Cfg.h) and a guard analysis (Dataflow.h) tags every effect with the
/// branch conditions dominating it. The analyzer uses the guards two
/// ways: effects dominated by a literally-false condition are dropped
/// outright, and every predicted race is classified Unguarded /
/// GuardedOneSide / GuardedBothSides - the static counterpart of the
/// paper's ad-hoc-synchronization filter, telling the cross-check which
/// predictions the code already defends against.
///
/// The prediction is still neither sound nor complete in general:
/// guard analysis does not evaluate conditions (a guarded race may
/// well fire dynamically), DOM ids are matched per page rather than
/// per document, and dynamically created elements/scripts are
/// invisible. The cross-validation harness (CrossCheck.h) measures
/// exactly this gap against the dynamic detector, per guard class.
///
//===----------------------------------------------------------------------===//

#ifndef WEBRACER_ANALYSIS_STATICANALYZER_H
#define WEBRACER_ANALYSIS_STATICANALYZER_H

#include "analysis/StaticHb.h"

#include <functional>
#include <optional>
#include <string>
#include <vector>

namespace wr::analysis {

/// Maps a resource URL to its content; nullopt when unknown. The
/// analyzer records a note for every resource it could not resolve.
using ResourceResolver =
    std::function<std::optional<std::string>(const std::string &Url)>;

/// How much of a predicted race the code statically defends against -
/// the static analogue of the paper's "covered by an ad-hoc
/// synchronization check" filter. A side counts as guarded when every
/// effect it has on the racing location either sits under a branch
/// condition or is itself a condition read.
enum class GuardClass : uint8_t {
  Unguarded,        ///< Neither side checks anything.
  GuardedOneSide,   ///< One side defends; the other can still lose.
  GuardedBothSides, ///< Both sides defend - the usual benign shape.
};

const char *toString(GuardClass Class);

/// One predicted race: two effects on the same static location from two
/// sources the must-HB graph leaves unordered, at least one a write.
struct PredictedRace {
  detect::RaceKind Kind = detect::RaceKind::Variable;
  StaticLoc Loc;
  Effect First;
  Effect Second;
  uint32_t SourceA = StaticHbGraph::InvalidSource;
  uint32_t SourceB = StaticHbGraph::InvalidSource;
  std::string SourceALabel;
  std::string SourceBLabel;
  /// Guard classification of the reported source pair (other unordered
  /// pairs hitting the same location deduplicate into this one).
  GuardClass Class = GuardClass::Unguarded;
  bool GuardedA = false;
  bool GuardedB = false;
  /// Witness guard texts per side, for reports ("(condition read)"
  /// when the side's defense is reading the location in a check).
  std::string GuardsA;
  std::string GuardsB;
};

/// Renders one line, e.g.
/// `variable race on var x: script a.html <-> script b.html`.
std::string toString(const PredictedRace &R);

/// Everything the analyzer produced for one page.
struct StaticAnalysis {
  StaticHbGraph Graph;
  /// Predicted races, one per (location, kind) - mirroring the dynamic
  /// detector's one-report-per-location policy.
  std::vector<PredictedRace> Races;
  /// Unresolved resources, scripts that failed to parse, skipped
  /// constructs.
  std::vector<std::string> Notes;

  size_t countByKind(detect::RaceKind Kind) const;
};

/// Analyzes \p Html (the entry document) without executing it.
/// \p Resolve supplies external scripts and frame documents.
StaticAnalysis analyzePage(const std::string &Html,
                           const ResourceResolver &Resolve);

} // namespace wr::analysis

#endif // WEBRACER_ANALYSIS_STATICANALYZER_H

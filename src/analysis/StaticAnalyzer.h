//===- analysis/StaticAnalyzer.h - Ahead-of-time race prediction -*- C++ -*-===//
//
// Part of the WebRacer reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The ahead-of-time static race analyzer: given a page's HTML (and a
/// resolver for its external resources), it parses the document structure
/// and every script, computes per-source effect sets (EffectSet.h),
/// builds the static must-happens-before DAG (StaticHb.h), and
/// intersects the effect sets of unordered source pairs to predict races
/// - before the event loop ever runs.
///
/// The prediction is neither sound nor complete in general: effect sets
/// are flow-insensitive (a write guarded by a condition that is never
/// true still counts), DOM ids are matched per page rather than per
/// document, and dynamically created elements/scripts are invisible. The
/// cross-validation harness (CrossCheck.h) measures exactly this gap
/// against the dynamic detector.
///
//===----------------------------------------------------------------------===//

#ifndef WEBRACER_ANALYSIS_STATICANALYZER_H
#define WEBRACER_ANALYSIS_STATICANALYZER_H

#include "analysis/StaticHb.h"

#include <functional>
#include <optional>
#include <string>
#include <vector>

namespace wr::analysis {

/// Maps a resource URL to its content; nullopt when unknown. The
/// analyzer records a note for every resource it could not resolve.
using ResourceResolver =
    std::function<std::optional<std::string>(const std::string &Url)>;

/// One predicted race: two effects on the same static location from two
/// sources the must-HB graph leaves unordered, at least one a write.
struct PredictedRace {
  detect::RaceKind Kind = detect::RaceKind::Variable;
  StaticLoc Loc;
  Effect First;
  Effect Second;
  uint32_t SourceA = StaticHbGraph::InvalidSource;
  uint32_t SourceB = StaticHbGraph::InvalidSource;
  std::string SourceALabel;
  std::string SourceBLabel;
};

/// Renders one line, e.g.
/// `variable race on var x: script a.html <-> script b.html`.
std::string toString(const PredictedRace &R);

/// Everything the analyzer produced for one page.
struct StaticAnalysis {
  StaticHbGraph Graph;
  /// Predicted races, one per (location, kind) - mirroring the dynamic
  /// detector's one-report-per-location policy.
  std::vector<PredictedRace> Races;
  /// Unresolved resources, scripts that failed to parse, skipped
  /// constructs.
  std::vector<std::string> Notes;

  size_t countByKind(detect::RaceKind Kind) const;
};

/// Analyzes \p Html (the entry document) without executing it.
/// \p Resolve supplies external scripts and frame documents.
StaticAnalysis analyzePage(const std::string &Html,
                           const ResourceResolver &Resolve);

} // namespace wr::analysis

#endif // WEBRACER_ANALYSIS_STATICANALYZER_H

//===- analysis/Dataflow.cpp - Forward dataflow over the MiniJS CFG --------===//

#include "analysis/Dataflow.h"

using namespace wr;
using namespace wr::analysis;

// --------------------------------------------------------------------------
// Definition collection
// --------------------------------------------------------------------------

namespace {

/// The defined name of an assignment/update target: an identifier or a
/// `window.x` member. Index targets and other member writes define DOM
/// state, not guard subjects or tracked variables.
std::string targetName(const js::Expr *Target) {
  if (const auto *I = js::dyn_cast<js::Ident>(Target))
    return I->Name;
  if (const auto *M = js::dyn_cast<js::Member>(Target))
    if (const auto *Base = js::dyn_cast<js::Ident>(M->Base.get()))
      if (Base->Name == "window")
        return M->Name;
  return std::string();
}

void walkExprDefs(const js::Expr *E, bool IncludeConditional,
                  std::vector<std::string> &Out) {
  if (!E)
    return;
  switch (E->kind()) {
  case js::AstKind::Assign: {
    const auto *A = js::cast<js::Assign>(E);
    if (std::string Name = targetName(A->Target.get()); !Name.empty())
      Out.push_back(std::move(Name));
    else
      walkExprDefs(A->Target.get(), IncludeConditional, Out);
    walkExprDefs(A->Value.get(), IncludeConditional, Out);
    return;
  }
  case js::AstKind::Update: {
    const auto *U = js::cast<js::Update>(E);
    if (std::string Name = targetName(U->Operand.get()); !Name.empty())
      Out.push_back(std::move(Name));
    return;
  }
  case js::AstKind::Conditional: {
    const auto *C = js::cast<js::Conditional>(E);
    walkExprDefs(C->Cond.get(), IncludeConditional, Out);
    if (IncludeConditional) {
      walkExprDefs(C->Then.get(), IncludeConditional, Out);
      walkExprDefs(C->Else.get(), IncludeConditional, Out);
    }
    return;
  }
  case js::AstKind::Logical: {
    const auto *L = js::cast<js::Logical>(E);
    walkExprDefs(L->Lhs.get(), IncludeConditional, Out);
    if (IncludeConditional)
      walkExprDefs(L->Rhs.get(), IncludeConditional, Out);
    return;
  }
  case js::AstKind::FunctionExpr:
    return; // Separate body, separate Cfg.
  case js::AstKind::Unary:
    walkExprDefs(js::cast<js::Unary>(E)->Operand.get(), IncludeConditional,
                 Out);
    return;
  case js::AstKind::Binary: {
    const auto *B = js::cast<js::Binary>(E);
    walkExprDefs(B->Lhs.get(), IncludeConditional, Out);
    walkExprDefs(B->Rhs.get(), IncludeConditional, Out);
    return;
  }
  case js::AstKind::Member:
    walkExprDefs(js::cast<js::Member>(E)->Base.get(), IncludeConditional,
                 Out);
    return;
  case js::AstKind::Index: {
    const auto *I = js::cast<js::Index>(E);
    walkExprDefs(I->Base.get(), IncludeConditional, Out);
    walkExprDefs(I->Key.get(), IncludeConditional, Out);
    return;
  }
  case js::AstKind::Call: {
    const auto *C = js::cast<js::Call>(E);
    walkExprDefs(C->Callee.get(), IncludeConditional, Out);
    for (const js::ExprPtr &Arg : C->Args)
      walkExprDefs(Arg.get(), IncludeConditional, Out);
    return;
  }
  case js::AstKind::New: {
    const auto *N = js::cast<js::New>(E);
    for (const js::ExprPtr &Arg : N->Args)
      walkExprDefs(Arg.get(), IncludeConditional, Out);
    return;
  }
  case js::AstKind::Sequence: {
    for (const js::ExprPtr &Sub : js::cast<js::Sequence>(E)->Exprs)
      walkExprDefs(Sub.get(), IncludeConditional, Out);
    return;
  }
  case js::AstKind::ArrayLit: {
    for (const js::ExprPtr &Elt : js::cast<js::ArrayLit>(E)->Elems)
      walkExprDefs(Elt.get(), IncludeConditional, Out);
    return;
  }
  case js::AstKind::ObjectLit: {
    for (const auto &Prop : js::cast<js::ObjectLit>(E)->Props)
      walkExprDefs(Prop.Value.get(), IncludeConditional, Out);
    return;
  }
  default:
    return; // Literals, identifiers, this: no definitions.
  }
}

} // namespace

void wr::analysis::collectExprDefs(const js::Expr *E, bool IncludeConditional,
                                   std::vector<std::string> &Out) {
  walkExprDefs(E, IncludeConditional, Out);
}

void wr::analysis::collectStmtDefs(const js::Stmt *S, bool IncludeConditional,
                                   std::vector<std::string> &Out) {
  switch (S->kind()) {
  case js::AstKind::ExprStmt:
    walkExprDefs(js::cast<js::ExprStmt>(S)->E.get(), IncludeConditional,
                 Out);
    return;
  case js::AstKind::VarDecl: {
    for (const js::VarDecl::Declarator &D :
         js::cast<js::VarDecl>(S)->Decls) {
      // `var x;` leaves x undefined - the entry value, not a write.
      if (!D.Init)
        continue;
      Out.push_back(D.Name);
      walkExprDefs(D.Init.get(), IncludeConditional, Out);
    }
    return;
  }
  case js::AstKind::FunctionDecl:
    // Hoisted, so in truth defined even earlier than this anchor -
    // counting the definition here is the conservative direction.
    Out.push_back(js::cast<js::FunctionDecl>(S)->Fn.Name);
    return;
  case js::AstKind::ForIn:
    Out.push_back(js::cast<js::ForIn>(S)->Var);
    return;
  case js::AstKind::Return:
    walkExprDefs(js::cast<js::Return>(S)->Value.get(), IncludeConditional,
                 Out);
    return;
  case js::AstKind::Throw:
    walkExprDefs(js::cast<js::Throw>(S)->Value.get(), IncludeConditional,
                 Out);
    return;
  default:
    // Control statements own no expressions: their conditions are
    // block terminators, their children anchor in other blocks.
    return;
  }
}

// --------------------------------------------------------------------------
// The two analyses
// --------------------------------------------------------------------------

namespace {

struct GuardAnalysis {
  using Domain = GuardSet;

  Domain boundary() const { return GuardSet(); }

  void transferBlock(const CfgBlock &B, Domain &D) const {
    std::vector<std::string> Defs;
    for (const js::Stmt *S : B.Stmts)
      collectStmtDefs(S, /*IncludeConditional=*/true, Defs);
    collectExprDefs(B.Term, /*IncludeConditional=*/true, Defs);
    // A may-write to the guarded variable invalidates the fact.
    for (const std::string &V : Defs)
      D.killSubject(V);
  }

  void transferEdge(const CfgEdge &E, Domain &D) const {
    if (!E.Cond)
      return;
    if (std::optional<Guard> G = classifyGuard(E.Cond, E.WhenTrue))
      D.add(*G);
  }

  static bool join(Domain &Into, const Domain &From) {
    size_t Before = Into.size();
    Into.intersectWith(From);
    return Into.size() != Before;
  }
};

struct EntryDefAnalysis {
  using Domain = std::set<std::string>;

  const std::set<std::string> &Universe;

  Domain boundary() const { return Universe; }

  void transferBlock(const CfgBlock &B, Domain &D) const {
    // Only definite (unconditional) definitions kill the entry value.
    std::vector<std::string> Defs;
    for (const js::Stmt *S : B.Stmts)
      collectStmtDefs(S, /*IncludeConditional=*/false, Defs);
    collectExprDefs(B.Term, /*IncludeConditional=*/false, Defs);
    for (const std::string &V : Defs)
      D.erase(V);
  }

  void transferEdge(const CfgEdge &, Domain &) const {}

  static bool join(Domain &Into, const Domain &From) {
    size_t Before = Into.size();
    Into.insert(From.begin(), From.end());
    return Into.size() != Before;
  }
};

} // namespace

// --------------------------------------------------------------------------
// FlowInfo
// --------------------------------------------------------------------------

FlowInfo::FlowInfo(Cfg Lowered) : G(std::move(Lowered)) {
  for (const CfgBlock &B : G.Blocks) {
    std::vector<std::string> Defs;
    for (const js::Stmt *S : B.Stmts)
      collectStmtDefs(S, /*IncludeConditional=*/true, Defs);
    collectExprDefs(B.Term, /*IncludeConditional=*/true, Defs);
    Tracked.insert(Defs.begin(), Defs.end());
  }
  GuardIn = solveForward(G, GuardAnalysis{});
  EntryIn = solveForward(G, EntryDefAnalysis{Tracked});
}

FlowInfo::FlowInfo(const js::Program &P) : FlowInfo(Cfg::lower(P)) {}

FlowInfo::FlowInfo(const js::FunctionLiteral &Fn) : FlowInfo(Cfg::lower(Fn)) {}

GuardSet FlowInfo::guardsAt(const js::Stmt *S) const {
  auto It = G.BlockOf.find(S);
  if (It == G.BlockOf.end() || !GuardIn[It->second])
    return GuardSet();
  const CfgBlock &B = G.Blocks[It->second];
  GuardSet State = *GuardIn[It->second];
  for (const js::Stmt *Prev : B.Stmts) {
    if (Prev == S)
      break;
    std::vector<std::string> Defs;
    collectStmtDefs(Prev, /*IncludeConditional=*/true, Defs);
    for (const std::string &V : Defs)
      State.killSubject(V);
  }
  return State;
}

bool FlowInfo::definitelyWrittenBefore(const js::Stmt *S,
                                       const std::string &Var) const {
  if (!Tracked.count(Var))
    return false; // Never written here, so the entry value reaches.
  auto It = G.BlockOf.find(S);
  if (It == G.BlockOf.end() || !EntryIn[It->second])
    return false; // Unknown or unreachable: keep the read.
  const CfgBlock &B = G.Blocks[It->second];
  std::set<std::string> State = *EntryIn[It->second];
  for (const js::Stmt *Prev : B.Stmts) {
    if (Prev == S)
      break;
    std::vector<std::string> Defs;
    collectStmtDefs(Prev, /*IncludeConditional=*/false, Defs);
    for (const std::string &V : Defs)
      State.erase(V);
  }
  return !State.count(Var);
}

//===- analysis/Guards.h - Branch-condition guards for effects --*- C++ -*-===//
//
// Part of the WebRacer reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Guards are the static analyzer's model of ad-hoc synchronization: a
/// branch condition that dominates an effect. The paper's Section 5
/// filters observe that most raw races are benign because the racing
/// code *defends* itself (`if (typeof fn != "undefined") fn()`); the
/// guard analysis recognizes those defenses ahead of execution and tags
/// each effect with the set of conditions that must have held for it to
/// run.
///
/// A Guard is a small semantic fact about one path:
///
///  * Truthy(x)     - `if (x)` / `if (window.x)` held (or, negated,
///                    `if (!x)` held).
///  * Defined(x)    - a definedness test held: `typeof x != "undefined"`,
///                    `x != null`, `x !== undefined`.
///  * TypeCheck(x)  - `typeof x == "function"` (or another type string).
///  * ConstFalse    - the path is dominated by a literally-false
///                    condition (`if (0)`): the effect is statically dead.
///  * Opaque        - any other condition; tracked by its rendered text
///                    so "both sides guarded by *something*" still
///                    classifies, but with no subject to reason about.
///
/// Guards carry a polarity (`Positive`): Defined(x, Positive=false)
/// means the path proved x *undefined*. Literally-true conditions are
/// vacuous and produce no guard at all.
///
//===----------------------------------------------------------------------===//

#ifndef WEBRACER_ANALYSIS_GUARDS_H
#define WEBRACER_ANALYSIS_GUARDS_H

#include "js/Ast.h"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace wr::analysis {

enum class GuardKind : uint8_t { Truthy, Defined, TypeCheck, ConstFalse,
                                 Opaque };

const char *toString(GuardKind Kind);

/// One branch-condition fact dominating an effect (see file comment).
struct Guard {
  GuardKind Kind = GuardKind::Opaque;
  /// True if the condition held as written; false if its negation held
  /// (e.g. the else-branch of `if (loaded)` yields Truthy with
  /// Positive=false).
  bool Positive = true;
  /// The guarded variable for Truthy/Defined/TypeCheck (`window.x`
  /// normalizes to `x`). Empty for ConstFalse; the rendered text for
  /// Opaque (so distinct opaque conditions stay distinct).
  std::string Subject;
  /// Rendered source of the condition as it held on the path (already
  /// `!(...)`-wrapped when the negation held), for reports.
  std::string Text;

  bool operator==(const Guard &O) const;
  bool operator<(const Guard &O) const;
};

/// Renders the guard's path text, e.g. `loaded`, `!(loaded)`,
/// `typeof fn != 'undefined'`.
std::string toString(const Guard &G);

/// A sorted, deduplicated set of guards. The dataflow lattice over
/// guard sets is intersection (a guard survives a merge point only if
/// it dominates via every incoming path), so the empty set is the
/// "unguarded" top for classification purposes.
class GuardSet {
public:
  void add(Guard G);
  void addAll(const GuardSet &O);
  /// Lattice meet: keep only guards present in both sets.
  void intersectWith(const GuardSet &O);
  /// Removes guards whose Subject is \p Name (the guarded variable was
  /// reassigned, so the fact no longer holds).
  void killSubject(const std::string &Name);

  bool empty() const { return Set.empty(); }
  size_t size() const { return Set.size(); }
  bool hasConstFalse() const;
  bool contains(const Guard &G) const;
  const std::vector<Guard> &guards() const { return Set; }

  /// Renders ` && `-joined guard texts (empty string when unguarded).
  std::string toString() const;

  bool operator==(const GuardSet &O) const = default;

private:
  std::vector<Guard> Set; ///< Sorted by Guard::operator<, unique.
};

/// Classifies the branch condition \p E taken with polarity
/// \p EdgeTrue (true = the condition held, false = its negation held)
/// into a Guard. Returns nullopt for vacuous conditions (a literal
/// whose truthiness matches the edge, e.g. the true-edge of
/// `while (true)`), which guard nothing.
std::optional<Guard> classifyGuard(const js::Expr *E, bool EdgeTrue);

} // namespace wr::analysis

#endif // WEBRACER_ANALYSIS_GUARDS_H

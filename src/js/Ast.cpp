//===- js/Ast.cpp - MiniJS abstract syntax tree ----------------------------===//

#include "js/Ast.h"

#include "support/Format.h"

using namespace wr;
using namespace wr::js;

AstNode::~AstNode() = default;

const char *wr::js::astKindName(AstKind Kind) {
  switch (Kind) {
  case AstKind::NumberLit:
    return "number";
  case AstKind::StringLit:
    return "string";
  case AstKind::BoolLit:
    return "bool";
  case AstKind::NullLit:
    return "null";
  case AstKind::UndefinedLit:
    return "undefined";
  case AstKind::ThisExpr:
    return "this";
  case AstKind::Ident:
    return "ident";
  case AstKind::ArrayLit:
    return "array";
  case AstKind::ObjectLit:
    return "object";
  case AstKind::FunctionExpr:
    return "function-expr";
  case AstKind::Member:
    return "member";
  case AstKind::Index:
    return "index";
  case AstKind::Call:
    return "call";
  case AstKind::New:
    return "new";
  case AstKind::Unary:
    return "unary";
  case AstKind::Update:
    return "update";
  case AstKind::Binary:
    return "binary";
  case AstKind::Logical:
    return "logical";
  case AstKind::Conditional:
    return "conditional";
  case AstKind::Assign:
    return "assign";
  case AstKind::Sequence:
    return "sequence";
  case AstKind::ExprStmt:
    return "expr-stmt";
  case AstKind::VarDecl:
    return "var";
  case AstKind::FunctionDecl:
    return "function-decl";
  case AstKind::Block:
    return "block";
  case AstKind::If:
    return "if";
  case AstKind::While:
    return "while";
  case AstKind::DoWhile:
    return "do-while";
  case AstKind::For:
    return "for";
  case AstKind::ForIn:
    return "for-in";
  case AstKind::Return:
    return "return";
  case AstKind::Break:
    return "break";
  case AstKind::Continue:
    return "continue";
  case AstKind::Switch:
    return "switch";
  case AstKind::Throw:
    return "throw";
  case AstKind::Try:
    return "try";
  case AstKind::Empty:
    return "empty";
  }
  return "unknown";
}

namespace {

/// Compact S-expression printer used by golden tests.
class AstPrinter {
public:
  std::string print(const Program &P) {
    Out.clear();
    Out += "(program";
    for (const StmtPtr &S : P.Body) {
      Out += ' ';
      printStmt(S.get());
    }
    Out += ')';
    return Out;
  }

private:
  void printStmt(const Stmt *S) {
    if (!S) {
      Out += "(null)";
      return;
    }
    switch (S->kind()) {
    case AstKind::ExprStmt:
      printExpr(cast<ExprStmt>(S)->E.get());
      return;
    case AstKind::VarDecl: {
      const auto *V = cast<VarDecl>(S);
      Out += "(var";
      for (const auto &D : V->Decls) {
        Out += " (";
        Out += D.Name;
        if (D.Init) {
          Out += ' ';
          printExpr(D.Init.get());
        }
        Out += ')';
      }
      Out += ')';
      return;
    }
    case AstKind::FunctionDecl: {
      const auto *F = cast<FunctionDecl>(S);
      printFunction("defun", F->Fn);
      return;
    }
    case AstKind::Block: {
      const auto *B = cast<Block>(S);
      Out += "(block";
      for (const StmtPtr &Child : B->Stmts) {
        Out += ' ';
        printStmt(Child.get());
      }
      Out += ')';
      return;
    }
    case AstKind::If: {
      const auto *I = cast<If>(S);
      Out += "(if ";
      printExpr(I->Cond.get());
      Out += ' ';
      printStmt(I->Then.get());
      if (I->Else) {
        Out += ' ';
        printStmt(I->Else.get());
      }
      Out += ')';
      return;
    }
    case AstKind::While: {
      const auto *W = cast<While>(S);
      Out += "(while ";
      printExpr(W->Cond.get());
      Out += ' ';
      printStmt(W->Body.get());
      Out += ')';
      return;
    }
    case AstKind::DoWhile: {
      const auto *W = cast<DoWhile>(S);
      Out += "(do-while ";
      printStmt(W->Body.get());
      Out += ' ';
      printExpr(W->Cond.get());
      Out += ')';
      return;
    }
    case AstKind::For: {
      const auto *F = cast<For>(S);
      Out += "(for ";
      if (F->Init)
        printStmt(F->Init.get());
      else
        Out += "()";
      Out += ' ';
      if (F->Cond)
        printExpr(F->Cond.get());
      else
        Out += "()";
      Out += ' ';
      if (F->Step)
        printExpr(F->Step.get());
      else
        Out += "()";
      Out += ' ';
      printStmt(F->Body.get());
      Out += ')';
      return;
    }
    case AstKind::ForIn: {
      const auto *F = cast<ForIn>(S);
      Out += strFormat("(for-in %s ", F->Var.c_str());
      printExpr(F->Object.get());
      Out += ' ';
      printStmt(F->Body.get());
      Out += ')';
      return;
    }
    case AstKind::Return: {
      const auto *R = cast<Return>(S);
      Out += "(return";
      if (R->Value) {
        Out += ' ';
        printExpr(R->Value.get());
      }
      Out += ')';
      return;
    }
    case AstKind::Break:
      Out += "(break)";
      return;
    case AstKind::Continue:
      Out += "(continue)";
      return;
    case AstKind::Switch: {
      const auto *Sw = cast<Switch>(S);
      Out += "(switch ";
      printExpr(Sw->Disc.get());
      for (const auto &Clause : Sw->Cases) {
        Out += " (case ";
        if (Clause.Test)
          printExpr(Clause.Test.get());
        else
          Out += "default";
        for (const StmtPtr &Child : Clause.Body) {
          Out += ' ';
          printStmt(Child.get());
        }
        Out += ')';
      }
      Out += ')';
      return;
    }
    case AstKind::Throw: {
      Out += "(throw ";
      printExpr(cast<Throw>(S)->Value.get());
      Out += ')';
      return;
    }
    case AstKind::Try: {
      const auto *T = cast<Try>(S);
      Out += "(try ";
      printStmt(T->Body.get());
      if (T->Catch) {
        Out += strFormat(" (catch %s ", T->CatchVar.c_str());
        printStmt(T->Catch.get());
        Out += ')';
      }
      if (T->Finally) {
        Out += " (finally ";
        printStmt(T->Finally.get());
        Out += ')';
      }
      Out += ')';
      return;
    }
    case AstKind::Empty:
      Out += "(empty)";
      return;
    default:
      Out += "(?stmt)";
      return;
    }
  }

  void printFunction(const char *Tag, const FunctionLiteral &Fn) {
    Out += '(';
    Out += Tag;
    Out += ' ';
    Out += Fn.Name.empty() ? "<anon>" : Fn.Name.c_str();
    Out += " (";
    for (size_t I = 0; I < Fn.Params.size(); ++I) {
      if (I != 0)
        Out += ' ';
      Out += Fn.Params[I];
    }
    Out += ") ";
    printStmt(Fn.Body.get());
    Out += ')';
  }

  void printExpr(const Expr *E) {
    if (!E) {
      Out += "(null)";
      return;
    }
    switch (E->kind()) {
    case AstKind::NumberLit: {
      double V = cast<NumberLit>(E)->V;
      if (V == static_cast<int64_t>(V))
        Out += strFormat("%lld", static_cast<long long>(V));
      else
        Out += strFormat("%g", V);
      return;
    }
    case AstKind::StringLit:
      Out += strFormat("\"%s\"", cast<StringLit>(E)->V.c_str());
      return;
    case AstKind::BoolLit:
      Out += cast<BoolLit>(E)->V ? "true" : "false";
      return;
    case AstKind::NullLit:
      Out += "null";
      return;
    case AstKind::UndefinedLit:
      Out += "undefined";
      return;
    case AstKind::ThisExpr:
      Out += "this";
      return;
    case AstKind::Ident:
      Out += cast<Ident>(E)->Name;
      return;
    case AstKind::ArrayLit: {
      Out += "(array";
      for (const ExprPtr &Elem : cast<ArrayLit>(E)->Elems) {
        Out += ' ';
        printExpr(Elem.get());
      }
      Out += ')';
      return;
    }
    case AstKind::ObjectLit: {
      Out += "(object";
      for (const auto &Prop : cast<ObjectLit>(E)->Props) {
        Out += strFormat(" (%s ", Prop.Key.c_str());
        printExpr(Prop.Value.get());
        Out += ')';
      }
      Out += ')';
      return;
    }
    case AstKind::FunctionExpr:
      printFunction("lambda", cast<FunctionExpr>(E)->Fn);
      return;
    case AstKind::Member: {
      const auto *M = cast<Member>(E);
      Out += "(. ";
      printExpr(M->Base.get());
      Out += ' ';
      Out += M->Name;
      Out += ')';
      return;
    }
    case AstKind::Index: {
      const auto *I = cast<Index>(E);
      Out += "([] ";
      printExpr(I->Base.get());
      Out += ' ';
      printExpr(I->Key.get());
      Out += ')';
      return;
    }
    case AstKind::Call: {
      const auto *C = cast<Call>(E);
      Out += "(call ";
      printExpr(C->Callee.get());
      for (const ExprPtr &Arg : C->Args) {
        Out += ' ';
        printExpr(Arg.get());
      }
      Out += ')';
      return;
    }
    case AstKind::New: {
      const auto *N = cast<New>(E);
      Out += "(new ";
      printExpr(N->Callee.get());
      for (const ExprPtr &Arg : N->Args) {
        Out += ' ';
        printExpr(Arg.get());
      }
      Out += ')';
      return;
    }
    case AstKind::Unary: {
      const auto *U = cast<Unary>(E);
      static const char *const Names[] = {"neg",    "plus", "not", "bitnot",
                                          "typeof", "void", "delete"};
      Out += strFormat("(%s ", Names[static_cast<int>(U->Op)]);
      printExpr(U->Operand.get());
      Out += ')';
      return;
    }
    case AstKind::Update: {
      const auto *U = cast<Update>(E);
      Out += strFormat("(%s%s ", U->IsPrefix ? "pre" : "post",
                       U->IsIncrement ? "++" : "--");
      printExpr(U->Operand.get());
      Out += ')';
      return;
    }
    case AstKind::Binary: {
      const auto *B = cast<Binary>(E);
      static const char *const Names[] = {
          "+",  "-",  "*",   "/",  "%",  "==", "!=", "===", "!==", "<", ">",
          "<=", ">=", "&",   "|",  "^",  "<<", ">>", ">>>", "instanceof",
          "in"};
      Out += strFormat("(%s ", Names[static_cast<int>(B->Op)]);
      printExpr(B->Lhs.get());
      Out += ' ';
      printExpr(B->Rhs.get());
      Out += ')';
      return;
    }
    case AstKind::Logical: {
      const auto *L = cast<Logical>(E);
      Out += (L->Op == LogicalOp::And) ? "(&& " : "(|| ";
      printExpr(L->Lhs.get());
      Out += ' ';
      printExpr(L->Rhs.get());
      Out += ')';
      return;
    }
    case AstKind::Conditional: {
      const auto *C = cast<Conditional>(E);
      Out += "(?: ";
      printExpr(C->Cond.get());
      Out += ' ';
      printExpr(C->Then.get());
      Out += ' ';
      printExpr(C->Else.get());
      Out += ')';
      return;
    }
    case AstKind::Assign: {
      const auto *A = cast<Assign>(E);
      static const char *const Names[] = {"=", "+=", "-=", "*=", "/=", "%="};
      Out += strFormat("(%s ", Names[static_cast<int>(A->Op)]);
      printExpr(A->Target.get());
      Out += ' ';
      printExpr(A->Value.get());
      Out += ')';
      return;
    }
    case AstKind::Sequence: {
      Out += "(seq";
      for (const ExprPtr &Sub : cast<Sequence>(E)->Exprs) {
        Out += ' ';
        printExpr(Sub.get());
      }
      Out += ')';
      return;
    }
    default:
      Out += "(?expr)";
      return;
    }
  }

  std::string Out;
};

} // namespace

std::string wr::js::dumpAst(const Program &P) {
  AstPrinter Printer;
  return Printer.print(P);
}

namespace {

/// Infix renderer behind renderExpr. Unlike AstPrinter this aims for
/// readable source text, not a round-trippable dump; precedence is
/// handled by parenthesizing every compound subexpression.
void renderInto(const Expr *E, std::string &Out) {
  if (!E) {
    Out += "?";
    return;
  }
  switch (E->kind()) {
  case AstKind::NumberLit: {
    double V = cast<NumberLit>(E)->V;
    if (V == static_cast<int64_t>(V))
      Out += strFormat("%lld", static_cast<long long>(V));
    else
      Out += strFormat("%g", V);
    return;
  }
  case AstKind::StringLit:
    Out += strFormat("'%s'", cast<StringLit>(E)->V.c_str());
    return;
  case AstKind::BoolLit:
    Out += cast<BoolLit>(E)->V ? "true" : "false";
    return;
  case AstKind::NullLit:
    Out += "null";
    return;
  case AstKind::UndefinedLit:
    Out += "undefined";
    return;
  case AstKind::ThisExpr:
    Out += "this";
    return;
  case AstKind::Ident:
    Out += cast<Ident>(E)->Name;
    return;
  case AstKind::Member: {
    const auto *M = cast<Member>(E);
    renderInto(M->Base.get(), Out);
    Out += '.';
    Out += M->Name;
    return;
  }
  case AstKind::Index: {
    const auto *I = cast<Index>(E);
    renderInto(I->Base.get(), Out);
    Out += '[';
    renderInto(I->Key.get(), Out);
    Out += ']';
    return;
  }
  case AstKind::Call: {
    const auto *C = cast<Call>(E);
    renderInto(C->Callee.get(), Out);
    Out += '(';
    for (size_t I = 0; I < C->Args.size(); ++I) {
      if (I)
        Out += ", ";
      renderInto(C->Args[I].get(), Out);
    }
    Out += ')';
    return;
  }
  case AstKind::New: {
    const auto *N = cast<New>(E);
    Out += "new ";
    renderInto(N->Callee.get(), Out);
    Out += "()";
    return;
  }
  case AstKind::Unary: {
    const auto *U = cast<Unary>(E);
    static const char *const Names[] = {"-", "+", "!", "~", "typeof ",
                                        "void ", "delete "};
    Out += Names[static_cast<int>(U->Op)];
    renderInto(U->Operand.get(), Out);
    return;
  }
  case AstKind::Update: {
    const auto *U = cast<Update>(E);
    if (U->IsPrefix)
      Out += U->IsIncrement ? "++" : "--";
    renderInto(U->Operand.get(), Out);
    if (!U->IsPrefix)
      Out += U->IsIncrement ? "++" : "--";
    return;
  }
  case AstKind::Binary: {
    const auto *B = cast<Binary>(E);
    static const char *const Names[] = {
        "+",  "-",  "*",   "/",  "%",  "==", "!=", "===", "!==", "<", ">",
        "<=", ">=", "&",   "|",  "^",  "<<", ">>", ">>>", "instanceof",
        "in"};
    Out += '(';
    renderInto(B->Lhs.get(), Out);
    Out += ' ';
    Out += Names[static_cast<int>(B->Op)];
    Out += ' ';
    renderInto(B->Rhs.get(), Out);
    Out += ')';
    return;
  }
  case AstKind::Logical: {
    const auto *L = cast<Logical>(E);
    Out += '(';
    renderInto(L->Lhs.get(), Out);
    Out += (L->Op == LogicalOp::And) ? " && " : " || ";
    renderInto(L->Rhs.get(), Out);
    Out += ')';
    return;
  }
  case AstKind::Conditional: {
    const auto *C = cast<Conditional>(E);
    Out += '(';
    renderInto(C->Cond.get(), Out);
    Out += " ? ";
    renderInto(C->Then.get(), Out);
    Out += " : ";
    renderInto(C->Else.get(), Out);
    Out += ')';
    return;
  }
  case AstKind::Assign: {
    const auto *A = cast<Assign>(E);
    static const char *const Names[] = {"=", "+=", "-=", "*=", "/=", "%="};
    Out += '(';
    renderInto(A->Target.get(), Out);
    Out += ' ';
    Out += Names[static_cast<int>(A->Op)];
    Out += ' ';
    renderInto(A->Value.get(), Out);
    Out += ')';
    return;
  }
  case AstKind::Sequence: {
    const auto *S = cast<Sequence>(E);
    Out += '(';
    for (size_t I = 0; I < S->Exprs.size(); ++I) {
      if (I)
        Out += ", ";
      renderInto(S->Exprs[I].get(), Out);
    }
    Out += ')';
    return;
  }
  case AstKind::ArrayLit:
    Out += "[...]";
    return;
  case AstKind::ObjectLit:
    Out += "{...}";
    return;
  case AstKind::FunctionExpr:
    Out += "function(...)";
    return;
  default:
    Out += "?";
    return;
  }
}

} // namespace

std::string wr::js::renderExpr(const Expr &E) {
  std::string Out;
  renderInto(&E, Out);
  return Out;
}

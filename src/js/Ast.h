//===- js/Ast.h - MiniJS abstract syntax tree -------------------*- C++ -*-===//
//
// Part of the WebRacer reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The MiniJS AST. Nodes use LLVM-style kind discriminators with classof,
/// and the tree is owned top-down through unique_ptr. The interpreter in
/// Interpreter.cpp walks this tree directly; scripts are small enough that
/// no lowering pass is needed, which also keeps every memory access
/// observable for instrumentation (the property the paper relies on by
/// instrumenting WebKit's interpreter rather than its JIT).
///
//===----------------------------------------------------------------------===//

#ifndef WEBRACER_JS_AST_H
#define WEBRACER_JS_AST_H

#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace wr::js {

class Expr;
class Stmt;
using ExprPtr = std::unique_ptr<Expr>;
using StmtPtr = std::unique_ptr<Stmt>;

/// Kinds for every AST node.
enum class AstKind : uint8_t {
  // Expressions.
  NumberLit,
  StringLit,
  BoolLit,
  NullLit,
  UndefinedLit,
  ThisExpr,
  Ident,
  ArrayLit,
  ObjectLit,
  FunctionExpr,
  Member,  // a.b
  Index,   // a[b]
  Call,
  New,
  Unary,
  Update,  // ++/--
  Binary,
  Logical,
  Conditional,
  Assign,
  Sequence,

  // Statements.
  ExprStmt,
  VarDecl,
  FunctionDecl,
  Block,
  If,
  While,
  DoWhile,
  For,
  ForIn,
  Return,
  Break,
  Continue,
  Switch,
  Throw,
  Try,
  Empty,
};

/// Common base: kind + source line for diagnostics.
class AstNode {
public:
  virtual ~AstNode();
  AstKind kind() const { return Kind; }
  uint32_t line() const { return Line; }

protected:
  AstNode(AstKind K, uint32_t Line) : Kind(K), Line(Line) {}

private:
  AstKind Kind;
  uint32_t Line;
};

/// Base of all expressions.
class Expr : public AstNode {
protected:
  using AstNode::AstNode;
};

/// Base of all statements.
class Stmt : public AstNode {
protected:
  using AstNode::AstNode;
};

// --------------------------------------------------------------------------
// Expressions
// --------------------------------------------------------------------------

class NumberLit final : public Expr {
public:
  NumberLit(double V, uint32_t Line) : Expr(AstKind::NumberLit, Line), V(V) {}
  static bool classof(const AstNode *N) {
    return N->kind() == AstKind::NumberLit;
  }
  double V;
};

class StringLit final : public Expr {
public:
  StringLit(std::string V, uint32_t Line)
      : Expr(AstKind::StringLit, Line), V(std::move(V)) {}
  static bool classof(const AstNode *N) {
    return N->kind() == AstKind::StringLit;
  }
  std::string V;
};

class BoolLit final : public Expr {
public:
  BoolLit(bool V, uint32_t Line) : Expr(AstKind::BoolLit, Line), V(V) {}
  static bool classof(const AstNode *N) {
    return N->kind() == AstKind::BoolLit;
  }
  bool V;
};

class NullLit final : public Expr {
public:
  explicit NullLit(uint32_t Line) : Expr(AstKind::NullLit, Line) {}
  static bool classof(const AstNode *N) {
    return N->kind() == AstKind::NullLit;
  }
};

class UndefinedLit final : public Expr {
public:
  explicit UndefinedLit(uint32_t Line) : Expr(AstKind::UndefinedLit, Line) {}
  static bool classof(const AstNode *N) {
    return N->kind() == AstKind::UndefinedLit;
  }
};

class ThisExpr final : public Expr {
public:
  explicit ThisExpr(uint32_t Line) : Expr(AstKind::ThisExpr, Line) {}
  static bool classof(const AstNode *N) {
    return N->kind() == AstKind::ThisExpr;
  }
};

class Ident final : public Expr {
public:
  Ident(std::string Name, uint32_t Line)
      : Expr(AstKind::Ident, Line), Name(std::move(Name)) {}
  static bool classof(const AstNode *N) {
    return N->kind() == AstKind::Ident;
  }
  std::string Name;
};

class ArrayLit final : public Expr {
public:
  ArrayLit(std::vector<ExprPtr> Elems, uint32_t Line)
      : Expr(AstKind::ArrayLit, Line), Elems(std::move(Elems)) {}
  static bool classof(const AstNode *N) {
    return N->kind() == AstKind::ArrayLit;
  }
  std::vector<ExprPtr> Elems;
};

class ObjectLit final : public Expr {
public:
  struct Property {
    std::string Key;
    ExprPtr Value;
  };
  ObjectLit(std::vector<Property> Props, uint32_t Line)
      : Expr(AstKind::ObjectLit, Line), Props(std::move(Props)) {}
  static bool classof(const AstNode *N) {
    return N->kind() == AstKind::ObjectLit;
  }
  std::vector<Property> Props;
};

class Block;

/// The shared shape of function declarations and expressions.
struct FunctionLiteral {
  std::string Name; ///< Empty for anonymous function expressions.
  std::vector<std::string> Params;
  std::unique_ptr<Block> Body;
};

class FunctionExpr final : public Expr {
public:
  FunctionExpr(FunctionLiteral Fn, uint32_t Line)
      : Expr(AstKind::FunctionExpr, Line), Fn(std::move(Fn)) {}
  static bool classof(const AstNode *N) {
    return N->kind() == AstKind::FunctionExpr;
  }
  FunctionLiteral Fn;
};

class Member final : public Expr {
public:
  Member(ExprPtr Base, std::string Name, uint32_t Line)
      : Expr(AstKind::Member, Line), Base(std::move(Base)),
        Name(std::move(Name)) {}
  static bool classof(const AstNode *N) {
    return N->kind() == AstKind::Member;
  }
  ExprPtr Base;
  std::string Name;
};

class Index final : public Expr {
public:
  Index(ExprPtr Base, ExprPtr Key, uint32_t Line)
      : Expr(AstKind::Index, Line), Base(std::move(Base)),
        Key(std::move(Key)) {}
  static bool classof(const AstNode *N) {
    return N->kind() == AstKind::Index;
  }
  ExprPtr Base;
  ExprPtr Key;
};

class Call final : public Expr {
public:
  Call(ExprPtr Callee, std::vector<ExprPtr> Args, uint32_t Line)
      : Expr(AstKind::Call, Line), Callee(std::move(Callee)),
        Args(std::move(Args)) {}
  static bool classof(const AstNode *N) { return N->kind() == AstKind::Call; }
  ExprPtr Callee;
  std::vector<ExprPtr> Args;
};

class New final : public Expr {
public:
  New(ExprPtr Callee, std::vector<ExprPtr> Args, uint32_t Line)
      : Expr(AstKind::New, Line), Callee(std::move(Callee)),
        Args(std::move(Args)) {}
  static bool classof(const AstNode *N) { return N->kind() == AstKind::New; }
  ExprPtr Callee;
  std::vector<ExprPtr> Args;
};

enum class UnaryOp : uint8_t { Neg, Plus, Not, BitNot, TypeOf, Void, Delete };

class Unary final : public Expr {
public:
  Unary(UnaryOp Op, ExprPtr Operand, uint32_t Line)
      : Expr(AstKind::Unary, Line), Op(Op), Operand(std::move(Operand)) {}
  static bool classof(const AstNode *N) {
    return N->kind() == AstKind::Unary;
  }
  UnaryOp Op;
  ExprPtr Operand;
};

class Update final : public Expr {
public:
  Update(bool IsIncrement, bool IsPrefix, ExprPtr Operand, uint32_t Line)
      : Expr(AstKind::Update, Line), IsIncrement(IsIncrement),
        IsPrefix(IsPrefix), Operand(std::move(Operand)) {}
  static bool classof(const AstNode *N) {
    return N->kind() == AstKind::Update;
  }
  bool IsIncrement;
  bool IsPrefix;
  ExprPtr Operand;
};

enum class BinaryOp : uint8_t {
  Add, Sub, Mul, Div, Mod,
  Eq, Ne, StrictEq, StrictNe,
  Lt, Gt, Le, Ge,
  BitAnd, BitOr, BitXor, Shl, Shr, UShr,
  InstanceOf, In,
};

class Binary final : public Expr {
public:
  Binary(BinaryOp Op, ExprPtr Lhs, ExprPtr Rhs, uint32_t Line)
      : Expr(AstKind::Binary, Line), Op(Op), Lhs(std::move(Lhs)),
        Rhs(std::move(Rhs)) {}
  static bool classof(const AstNode *N) {
    return N->kind() == AstKind::Binary;
  }
  BinaryOp Op;
  ExprPtr Lhs;
  ExprPtr Rhs;
};

enum class LogicalOp : uint8_t { And, Or };

class Logical final : public Expr {
public:
  Logical(LogicalOp Op, ExprPtr Lhs, ExprPtr Rhs, uint32_t Line)
      : Expr(AstKind::Logical, Line), Op(Op), Lhs(std::move(Lhs)),
        Rhs(std::move(Rhs)) {}
  static bool classof(const AstNode *N) {
    return N->kind() == AstKind::Logical;
  }
  LogicalOp Op;
  ExprPtr Lhs;
  ExprPtr Rhs;
};

class Conditional final : public Expr {
public:
  Conditional(ExprPtr Cond, ExprPtr Then, ExprPtr Else, uint32_t Line)
      : Expr(AstKind::Conditional, Line), Cond(std::move(Cond)),
        Then(std::move(Then)), Else(std::move(Else)) {}
  static bool classof(const AstNode *N) {
    return N->kind() == AstKind::Conditional;
  }
  ExprPtr Cond;
  ExprPtr Then;
  ExprPtr Else;
};

enum class AssignOp : uint8_t { Assign, Add, Sub, Mul, Div, Mod };

class Assign final : public Expr {
public:
  Assign(AssignOp Op, ExprPtr Target, ExprPtr Value, uint32_t Line)
      : Expr(AstKind::Assign, Line), Op(Op), Target(std::move(Target)),
        Value(std::move(Value)) {}
  static bool classof(const AstNode *N) {
    return N->kind() == AstKind::Assign;
  }
  AssignOp Op;
  ExprPtr Target; ///< Ident, Member, or Index.
  ExprPtr Value;
};

class Sequence final : public Expr {
public:
  Sequence(std::vector<ExprPtr> Exprs, uint32_t Line)
      : Expr(AstKind::Sequence, Line), Exprs(std::move(Exprs)) {}
  static bool classof(const AstNode *N) {
    return N->kind() == AstKind::Sequence;
  }
  std::vector<ExprPtr> Exprs;
};

// --------------------------------------------------------------------------
// Statements
// --------------------------------------------------------------------------

class ExprStmt final : public Stmt {
public:
  ExprStmt(ExprPtr E, uint32_t Line)
      : Stmt(AstKind::ExprStmt, Line), E(std::move(E)) {}
  static bool classof(const AstNode *N) {
    return N->kind() == AstKind::ExprStmt;
  }
  ExprPtr E;
};

class VarDecl final : public Stmt {
public:
  struct Declarator {
    std::string Name;
    ExprPtr Init; ///< May be null.
  };
  VarDecl(std::vector<Declarator> Decls, uint32_t Line)
      : Stmt(AstKind::VarDecl, Line), Decls(std::move(Decls)) {}
  static bool classof(const AstNode *N) {
    return N->kind() == AstKind::VarDecl;
  }
  std::vector<Declarator> Decls;
};

class FunctionDecl final : public Stmt {
public:
  FunctionDecl(FunctionLiteral Fn, uint32_t Line)
      : Stmt(AstKind::FunctionDecl, Line), Fn(std::move(Fn)) {}
  static bool classof(const AstNode *N) {
    return N->kind() == AstKind::FunctionDecl;
  }
  FunctionLiteral Fn;
};

class Block final : public Stmt {
public:
  Block(std::vector<StmtPtr> Stmts, uint32_t Line)
      : Stmt(AstKind::Block, Line), Stmts(std::move(Stmts)) {}
  static bool classof(const AstNode *N) {
    return N->kind() == AstKind::Block;
  }
  std::vector<StmtPtr> Stmts;
};

class If final : public Stmt {
public:
  If(ExprPtr Cond, StmtPtr Then, StmtPtr Else, uint32_t Line)
      : Stmt(AstKind::If, Line), Cond(std::move(Cond)),
        Then(std::move(Then)), Else(std::move(Else)) {}
  static bool classof(const AstNode *N) { return N->kind() == AstKind::If; }
  ExprPtr Cond;
  StmtPtr Then;
  StmtPtr Else; ///< May be null.
};

class While final : public Stmt {
public:
  While(ExprPtr Cond, StmtPtr Body, uint32_t Line)
      : Stmt(AstKind::While, Line), Cond(std::move(Cond)),
        Body(std::move(Body)) {}
  static bool classof(const AstNode *N) {
    return N->kind() == AstKind::While;
  }
  ExprPtr Cond;
  StmtPtr Body;
};

class DoWhile final : public Stmt {
public:
  DoWhile(StmtPtr Body, ExprPtr Cond, uint32_t Line)
      : Stmt(AstKind::DoWhile, Line), Body(std::move(Body)),
        Cond(std::move(Cond)) {}
  static bool classof(const AstNode *N) {
    return N->kind() == AstKind::DoWhile;
  }
  StmtPtr Body;
  ExprPtr Cond;
};

class For final : public Stmt {
public:
  For(StmtPtr Init, ExprPtr Cond, ExprPtr Step, StmtPtr Body, uint32_t Line)
      : Stmt(AstKind::For, Line), Init(std::move(Init)),
        Cond(std::move(Cond)), Step(std::move(Step)), Body(std::move(Body)) {}
  static bool classof(const AstNode *N) { return N->kind() == AstKind::For; }
  StmtPtr Init; ///< VarDecl or ExprStmt; may be null.
  ExprPtr Cond; ///< May be null (infinite loop).
  ExprPtr Step; ///< May be null.
  StmtPtr Body;
};

class ForIn final : public Stmt {
public:
  ForIn(std::string Var, bool DeclaresVar, ExprPtr Object, StmtPtr Body,
        uint32_t Line)
      : Stmt(AstKind::ForIn, Line), Var(std::move(Var)),
        DeclaresVar(DeclaresVar), Object(std::move(Object)),
        Body(std::move(Body)) {}
  static bool classof(const AstNode *N) {
    return N->kind() == AstKind::ForIn;
  }
  std::string Var;
  bool DeclaresVar;
  ExprPtr Object;
  StmtPtr Body;
};

class Return final : public Stmt {
public:
  Return(ExprPtr Value, uint32_t Line)
      : Stmt(AstKind::Return, Line), Value(std::move(Value)) {}
  static bool classof(const AstNode *N) {
    return N->kind() == AstKind::Return;
  }
  ExprPtr Value; ///< May be null.
};

class Break final : public Stmt {
public:
  explicit Break(uint32_t Line) : Stmt(AstKind::Break, Line) {}
  static bool classof(const AstNode *N) {
    return N->kind() == AstKind::Break;
  }
};

class Continue final : public Stmt {
public:
  explicit Continue(uint32_t Line) : Stmt(AstKind::Continue, Line) {}
  static bool classof(const AstNode *N) {
    return N->kind() == AstKind::Continue;
  }
};

class Switch final : public Stmt {
public:
  struct CaseClause {
    ExprPtr Test; ///< Null for default.
    std::vector<StmtPtr> Body;
  };
  Switch(ExprPtr Disc, std::vector<CaseClause> Cases, uint32_t Line)
      : Stmt(AstKind::Switch, Line), Disc(std::move(Disc)),
        Cases(std::move(Cases)) {}
  static bool classof(const AstNode *N) {
    return N->kind() == AstKind::Switch;
  }
  ExprPtr Disc;
  std::vector<CaseClause> Cases;
};

class Throw final : public Stmt {
public:
  Throw(ExprPtr Value, uint32_t Line)
      : Stmt(AstKind::Throw, Line), Value(std::move(Value)) {}
  static bool classof(const AstNode *N) {
    return N->kind() == AstKind::Throw;
  }
  ExprPtr Value;
};

class Try final : public Stmt {
public:
  Try(std::unique_ptr<Block> Body, std::string CatchVar,
      std::unique_ptr<Block> Catch, std::unique_ptr<Block> Finally,
      uint32_t Line)
      : Stmt(AstKind::Try, Line), Body(std::move(Body)),
        CatchVar(std::move(CatchVar)), Catch(std::move(Catch)),
        Finally(std::move(Finally)) {}
  static bool classof(const AstNode *N) { return N->kind() == AstKind::Try; }
  std::unique_ptr<Block> Body;
  std::string CatchVar;
  std::unique_ptr<Block> Catch;   ///< May be null.
  std::unique_ptr<Block> Finally; ///< May be null.
};

class Empty final : public Stmt {
public:
  explicit Empty(uint32_t Line) : Stmt(AstKind::Empty, Line) {}
  static bool classof(const AstNode *N) {
    return N->kind() == AstKind::Empty;
  }
};

/// A parsed program: a list of top-level statements.
struct Program {
  std::vector<StmtPtr> Body;
};

/// isa/cast helpers mirroring LLVM's for the AST hierarchy.
template <typename T> bool isa(const AstNode *N) { return T::classof(N); }

template <typename T> T *cast(AstNode *N) {
  assert(N && T::classof(N) && "cast to wrong AST kind");
  return static_cast<T *>(N);
}

template <typename T> const T *cast(const AstNode *N) {
  assert(N && T::classof(N) && "cast to wrong AST kind");
  return static_cast<const T *>(N);
}

template <typename T> T *dyn_cast(AstNode *N) {
  return (N && T::classof(N)) ? static_cast<T *>(N) : nullptr;
}

template <typename T> const T *dyn_cast(const AstNode *N) {
  return (N && T::classof(N)) ? static_cast<const T *>(N) : nullptr;
}

/// Renders a kind name for diagnostics and AST-dump tests.
const char *astKindName(AstKind Kind);

/// Renders \p E as one line of compact JS-like source, e.g.
/// `typeof cfg_0 != "undefined"` - used by the static analyzer to name
/// the branch conditions (guards) it attaches to effects. Best-effort:
/// function literals render as `function(...)`.
std::string renderExpr(const Expr &E);

/// Produces a compact S-expression-style dump of \p P, used by parser
/// golden tests.
std::string dumpAst(const Program &P);

} // namespace wr::js

#endif // WEBRACER_JS_AST_H

//===- js/Value.cpp - MiniJS values, objects, environments -----------------===//

#include "js/Value.h"

#include "support/Format.h"

#include <cmath>
#include <cstdlib>

using namespace wr;
using namespace wr::js;

GcObject::~GcObject() = default;
HostClass::~HostClass() = default;

bool Value::strictEquals(const Value &Other) const {
  if (Data.index() != Other.Data.index())
    return false;
  if (isUndefined() || isNull())
    return true;
  if (isBool())
    return asBool() == Other.asBool();
  if (isNumber())
    return asNumber() == Other.asNumber(); // NaN != NaN falls out.
  if (isString())
    return asString() == Other.asString();
  return asObject() == Other.asObject();
}

Value *Object::findOwnProperty(const std::string &Name) {
  for (Property &P : Props)
    if (P.Name == Name)
      return &P.V;
  return nullptr;
}

const Value *Object::findOwnProperty(const std::string &Name) const {
  for (const Property &P : Props)
    if (P.Name == Name)
      return &P.V;
  return nullptr;
}

void Object::setOwnProperty(const std::string &Name, Value V) {
  if (Value *Existing = findOwnProperty(Name)) {
    *Existing = std::move(V);
    return;
  }
  Props.push_back({Name, std::move(V)});
}

bool Object::deleteOwnProperty(const std::string &Name) {
  for (size_t I = 0; I < Props.size(); ++I) {
    if (Props[I].Name == Name) {
      Props.erase(Props.begin() + static_cast<ptrdiff_t>(I));
      return true;
    }
  }
  return false;
}

std::vector<std::string> Object::ownPropertyNames() const {
  std::vector<std::string> Names;
  for (size_t I = 0; I < Elems.size(); ++I)
    Names.push_back(numberToString(static_cast<double>(I)));
  for (const Property &P : Props)
    Names.push_back(P.Name);
  return Names;
}

Value *Object::findProperty(const std::string &Name) {
  for (Object *Walk = this; Walk; Walk = Walk->Proto)
    if (Value *V = Walk->findOwnProperty(Name))
      return V;
  return nullptr;
}

void Object::setHostFunction(HostFn F, std::string Name) {
  Native = std::make_unique<HostFn>(std::move(F));
  FnName = std::move(Name);
}

Value *Env::findOwn(const std::string &Name) {
  for (Object::Property &S : Slots)
    if (S.Name == Name)
      return &S.V;
  return nullptr;
}

void Env::define(const std::string &Name, Value V) {
  if (Value *Existing = findOwn(Name)) {
    *Existing = std::move(V);
    return;
  }
  Slots.push_back({Name, std::move(V)});
}

bool Env::hasOwn(const std::string &Name) const {
  for (const Object::Property &S : Slots)
    if (S.Name == Name)
      return true;
  return false;
}

Env *Env::resolve(const std::string &Name) {
  for (Env *Walk = this; Walk; Walk = Walk->Parent)
    if (Walk->hasOwn(Name))
      return Walk;
  return nullptr;
}

std::string wr::js::numberToString(double N) {
  if (std::isnan(N))
    return "NaN";
  if (std::isinf(N))
    return N > 0 ? "Infinity" : "-Infinity";
  if (N == 0)
    return std::signbit(N) ? "0" : "0";
  if (N == static_cast<double>(static_cast<int64_t>(N)) &&
      std::fabs(N) < 9.007199254740992e15)
    return strFormat("%lld", static_cast<long long>(N));
  std::string S = strFormat("%.17g", N);
  // Shorten when a lower precision round-trips.
  for (int Precision = 1; Precision < 17; ++Precision) {
    std::string Candidate = strFormat("%.*g", Precision, N);
    if (std::strtod(Candidate.c_str(), nullptr) == N)
      return Candidate;
  }
  return S;
}

std::string wr::js::toDisplayString(const Value &V) {
  if (V.isUndefined())
    return "undefined";
  if (V.isNull())
    return "null";
  if (V.isBool())
    return V.asBool() ? "true" : "false";
  if (V.isNumber())
    return numberToString(V.asNumber());
  if (V.isString())
    return V.asString();
  Object *O = V.asObject();
  if (O->isCallable())
    return strFormat("function %s() { ... }", O->functionName().c_str());
  if (O->isArray()) {
    std::string S;
    for (size_t I = 0; I < O->elements().size(); ++I) {
      if (I != 0)
        S += ',';
      const Value &Elem = O->elements()[I];
      if (!Elem.isNullish())
        S += toDisplayString(Elem);
    }
    return S;
  }
  // Error-like objects display as "Name: message".
  if (const Value *Name = O->findOwnProperty("name")) {
    if (const Value *Message = O->findOwnProperty("message"))
      return toDisplayString(*Name) + ": " + toDisplayString(*Message);
  }
  if (O->hostClass())
    return strFormat("[object %s]", O->hostClass()->name());
  return "[object Object]";
}

const char *wr::js::typeOf(const Value &V) {
  if (V.isUndefined())
    return "undefined";
  if (V.isNull())
    return "object";
  if (V.isBool())
    return "boolean";
  if (V.isNumber())
    return "number";
  if (V.isString())
    return "string";
  return V.asObject()->isCallable() ? "function" : "object";
}

//===- js/Lexer.h - MiniJS lexer --------------------------------*- C++ -*-===//
//
// Part of the WebRacer reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A hand-written lexer for MiniJS. Handles //- and /*-comments, decimal
/// and hex numeric literals, single- and double-quoted strings with escape
/// sequences, and all operators in Token.h. Invalid input produces an
/// Error token with a message rather than aborting, so the parser can
/// report diagnostics for obfuscated real-world-style code.
///
//===----------------------------------------------------------------------===//

#ifndef WEBRACER_JS_LEXER_H
#define WEBRACER_JS_LEXER_H

#include "js/Token.h"

#include <string>
#include <string_view>
#include <vector>

namespace wr::js {

/// Converts MiniJS source text into tokens.
class Lexer {
public:
  explicit Lexer(std::string_view Source);

  /// Lexes and returns the next token.
  Token next();

  /// Lexes the entire input. The last token is always Eof (or Error).
  static std::vector<Token> tokenize(std::string_view Source);

private:
  char peek(size_t Ahead = 0) const;
  char advance();
  bool match(char Expected);
  void skipTrivia();
  Token makeToken(TokenKind Kind);
  Token errorToken(std::string Message);
  Token lexNumber();
  Token lexString(char Quote);
  Token lexIdentifierOrKeyword();

  std::string_view Source;
  size_t Pos = 0;
  uint32_t Line = 1;
  uint32_t Column = 1;
  uint32_t TokLine = 1;
  uint32_t TokColumn = 1;
};

} // namespace wr::js

#endif // WEBRACER_JS_LEXER_H

//===- js/StdLib.cpp - MiniJS standard library ------------------------------===//

#include "js/StdLib.h"

#include "support/Rng.h"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <memory>

using namespace wr;
using namespace wr::js;

namespace {

/// Owns the deterministic RNG behind Math.random for one global scope.
/// Kept alive by the shared_ptr captured in the host function.
struct MathRandomState {
  explicit MathRandomState(uint64_t Seed) : Generator(Seed) {}
  Rng Generator;
};

Value arg(const std::vector<Value> &Args, size_t I) {
  return I < Args.size() ? Args[I] : Value();
}

void defineFn(Interpreter &I, Env *Scope, const char *Name, HostFn Fn) {
  Scope->define(Name, Value(I.heap().allocHostFunction(std::move(Fn), Name)));
}

void defineMethod(Interpreter &I, Object *O, const char *Name, HostFn Fn) {
  O->setOwnProperty(Name,
                    Value(I.heap().allocHostFunction(std::move(Fn), Name)));
}

std::string jsonStringify(Interpreter &I, const Value &V) {
  if (V.isUndefined())
    return "null";
  if (V.isNull())
    return "null";
  if (V.isBool())
    return V.asBool() ? "true" : "false";
  if (V.isNumber()) {
    double N = V.asNumber();
    if (std::isnan(N) || std::isinf(N))
      return "null";
    return numberToString(N);
  }
  if (V.isString()) {
    std::string Out = "\"";
    for (char C : V.asString()) {
      switch (C) {
      case '"':
        Out += "\\\"";
        break;
      case '\\':
        Out += "\\\\";
        break;
      case '\n':
        Out += "\\n";
        break;
      case '\t':
        Out += "\\t";
        break;
      case '\r':
        Out += "\\r";
        break;
      default:
        Out += C;
      }
    }
    return Out + "\"";
  }
  Object *O = V.asObject();
  if (O->isCallable())
    return "null";
  if (O->isArray()) {
    std::string Out = "[";
    for (size_t E = 0; E < O->elements().size(); ++E) {
      if (E)
        Out += ",";
      Out += jsonStringify(I, O->elements()[E]);
    }
    return Out + "]";
  }
  std::string Out = "{";
  bool First = true;
  for (const Object::Property &P : O->properties()) {
    if (!First)
      Out += ",";
    First = false;
    Out += jsonStringify(I, Value(P.Name)) + ":" + jsonStringify(I, P.V);
  }
  return Out + "}";
}

void jsonSkipSpace(const std::string &S, size_t &Pos) {
  while (Pos < S.size() &&
         (S[Pos] == ' ' || S[Pos] == '\t' || S[Pos] == '\n' ||
          S[Pos] == '\r'))
    ++Pos;
}

bool jsonParse(Interpreter &I, const std::string &S, size_t &Pos,
               Value &Out) {
  jsonSkipSpace(S, Pos);
  if (Pos >= S.size())
    return false;
  char C = S[Pos];
  if (C == 'n' && S.compare(Pos, 4, "null") == 0) {
    Pos += 4;
    Out = Value::null();
    return true;
  }
  if (C == 't' && S.compare(Pos, 4, "true") == 0) {
    Pos += 4;
    Out = Value(true);
    return true;
  }
  if (C == 'f' && S.compare(Pos, 5, "false") == 0) {
    Pos += 5;
    Out = Value(false);
    return true;
  }
  if (C == '"') {
    ++Pos;
    std::string Str;
    while (Pos < S.size() && S[Pos] != '"') {
      if (S[Pos] == '\\' && Pos + 1 < S.size()) {
        ++Pos;
        switch (S[Pos]) {
        case 'n':
          Str += '\n';
          break;
        case 't':
          Str += '\t';
          break;
        case 'r':
          Str += '\r';
          break;
        default:
          Str += S[Pos];
        }
      } else {
        Str += S[Pos];
      }
      ++Pos;
    }
    if (Pos >= S.size())
      return false;
    ++Pos; // Closing quote.
    Out = Value(std::move(Str));
    return true;
  }
  if (C == '[') {
    ++Pos;
    Object *Arr = I.heap().allocArray();
    jsonSkipSpace(S, Pos);
    if (Pos < S.size() && S[Pos] == ']') {
      ++Pos;
      Out = Value(Arr);
      return true;
    }
    for (;;) {
      Value Elem;
      if (!jsonParse(I, S, Pos, Elem))
        return false;
      Arr->elements().push_back(std::move(Elem));
      jsonSkipSpace(S, Pos);
      if (Pos >= S.size())
        return false;
      if (S[Pos] == ',') {
        ++Pos;
        continue;
      }
      if (S[Pos] == ']') {
        ++Pos;
        Out = Value(Arr);
        return true;
      }
      return false;
    }
  }
  if (C == '{') {
    ++Pos;
    Object *O = I.heap().allocObject();
    jsonSkipSpace(S, Pos);
    if (Pos < S.size() && S[Pos] == '}') {
      ++Pos;
      Out = Value(O);
      return true;
    }
    for (;;) {
      Value Key;
      jsonSkipSpace(S, Pos);
      if (!jsonParse(I, S, Pos, Key) || !Key.isString())
        return false;
      jsonSkipSpace(S, Pos);
      if (Pos >= S.size() || S[Pos] != ':')
        return false;
      ++Pos;
      Value Prop;
      if (!jsonParse(I, S, Pos, Prop))
        return false;
      O->setOwnProperty(Key.asString(), std::move(Prop));
      jsonSkipSpace(S, Pos);
      if (Pos >= S.size())
        return false;
      if (S[Pos] == ',') {
        ++Pos;
        continue;
      }
      if (S[Pos] == '}') {
        ++Pos;
        Out = Value(O);
        return true;
      }
      return false;
    }
  }
  // Number.
  size_t Start = Pos;
  if (Pos < S.size() && (S[Pos] == '-' || S[Pos] == '+'))
    ++Pos;
  while (Pos < S.size() &&
         (std::isdigit(static_cast<unsigned char>(S[Pos])) ||
          S[Pos] == '.' || S[Pos] == 'e' || S[Pos] == 'E' ||
          S[Pos] == '-' || S[Pos] == '+'))
    ++Pos;
  if (Pos == Start)
    return false;
  Out = Value(std::strtod(S.substr(Start, Pos - Start).c_str(), nullptr));
  return true;
}

} // namespace

void wr::js::installStdLib(Interpreter &I, uint64_t RandomSeed) {
  Env *G = I.globalEnv();
  Heap &H = I.heap();

  // Math.
  Object *Math = H.allocObject();
  defineMethod(I, Math, "floor",
               [](Interpreter &In, Value, std::vector<Value> &A) {
                 return Completion::normal(
                     Value(std::floor(In.toNumber(arg(A, 0)))));
               });
  defineMethod(I, Math, "ceil",
               [](Interpreter &In, Value, std::vector<Value> &A) {
                 return Completion::normal(
                     Value(std::ceil(In.toNumber(arg(A, 0)))));
               });
  defineMethod(I, Math, "round",
               [](Interpreter &In, Value, std::vector<Value> &A) {
                 return Completion::normal(
                     Value(std::floor(In.toNumber(arg(A, 0)) + 0.5)));
               });
  defineMethod(I, Math, "abs",
               [](Interpreter &In, Value, std::vector<Value> &A) {
                 return Completion::normal(
                     Value(std::fabs(In.toNumber(arg(A, 0)))));
               });
  defineMethod(I, Math, "sqrt",
               [](Interpreter &In, Value, std::vector<Value> &A) {
                 return Completion::normal(
                     Value(std::sqrt(In.toNumber(arg(A, 0)))));
               });
  defineMethod(I, Math, "pow",
               [](Interpreter &In, Value, std::vector<Value> &A) {
                 return Completion::normal(Value(std::pow(
                     In.toNumber(arg(A, 0)), In.toNumber(arg(A, 1)))));
               });
  defineMethod(I, Math, "sin",
               [](Interpreter &In, Value, std::vector<Value> &A) {
                 return Completion::normal(
                     Value(std::sin(In.toNumber(arg(A, 0)))));
               });
  defineMethod(I, Math, "cos",
               [](Interpreter &In, Value, std::vector<Value> &A) {
                 return Completion::normal(
                     Value(std::cos(In.toNumber(arg(A, 0)))));
               });
  defineMethod(I, Math, "max",
               [](Interpreter &In, Value, std::vector<Value> &A) {
                 double R = -HUGE_VAL;
                 for (Value &V : A)
                   R = std::max(R, In.toNumber(V));
                 return Completion::normal(Value(R));
               });
  defineMethod(I, Math, "min",
               [](Interpreter &In, Value, std::vector<Value> &A) {
                 double R = HUGE_VAL;
                 for (Value &V : A)
                   R = std::min(R, In.toNumber(V));
                 return Completion::normal(Value(R));
               });
  auto RandomState = std::make_shared<MathRandomState>(RandomSeed);
  defineMethod(I, Math, "random",
               [RandomState](Interpreter &, Value, std::vector<Value> &) {
                 return Completion::normal(
                     Value(RandomState->Generator.nextDouble()));
               });
  Math->setOwnProperty("PI", Value(3.141592653589793));
  Math->setOwnProperty("E", Value(2.718281828459045));
  G->define("Math", Value(Math));

  // Global functions.
  defineFn(I, G, "parseInt",
           [](Interpreter &In, Value, std::vector<Value> &A) {
             std::string S = In.toStringValue(arg(A, 0));
             double RadixNum = In.toNumber(arg(A, 1));
             int Radix = std::isnan(RadixNum) ? 10
                                              : static_cast<int>(RadixNum);
             if (Radix == 0)
               Radix = 10;
             if (Radix < 2 || Radix > 36)
               return Completion::normal(Value(std::nan("")));
             const char *C = S.c_str();
             while (*C == ' ' || *C == '\t')
               ++C;
             char *End = nullptr;
             long long V = std::strtoll(C, &End, Radix);
             if (End == C)
               return Completion::normal(Value(std::nan("")));
             return Completion::normal(Value(static_cast<double>(V)));
           });
  defineFn(I, G, "parseFloat",
           [](Interpreter &In, Value, std::vector<Value> &A) {
             std::string S = In.toStringValue(arg(A, 0));
             char *End = nullptr;
             double V = std::strtod(S.c_str(), &End);
             if (End == S.c_str())
               return Completion::normal(Value(std::nan("")));
             return Completion::normal(Value(V));
           });
  defineFn(I, G, "isNaN", [](Interpreter &In, Value, std::vector<Value> &A) {
    return Completion::normal(Value(std::isnan(In.toNumber(arg(A, 0)))));
  });
  defineFn(I, G, "String",
           [](Interpreter &In, Value, std::vector<Value> &A) {
             return Completion::normal(
                 Value(A.empty() ? std::string()
                                 : In.toStringValue(arg(A, 0))));
           });
  defineFn(I, G, "Number",
           [](Interpreter &In, Value, std::vector<Value> &A) {
             return Completion::normal(
                 Value(A.empty() ? 0.0 : In.toNumber(arg(A, 0))));
           });
  defineFn(I, G, "Boolean",
           [](Interpreter &, Value, std::vector<Value> &A) {
             return Completion::normal(
                 Value(Interpreter::toBoolean(arg(A, 0))));
           });
  defineFn(I, G, "Error", [](Interpreter &In, Value, std::vector<Value> &A) {
    return Completion::normal(Value(
        In.heap().allocError("Error", In.toStringValue(arg(A, 0)))));
  });
  defineFn(I, G, "TypeError",
           [](Interpreter &In, Value, std::vector<Value> &A) {
             return Completion::normal(Value(In.heap().allocError(
                 "TypeError", In.toStringValue(arg(A, 0)))));
           });
  defineFn(I, G, "Array", [](Interpreter &In, Value, std::vector<Value> &A) {
    Object *Arr = In.heap().allocArray();
    if (A.size() == 1 && A[0].isNumber()) {
      double N = A[0].asNumber();
      if (N >= 0 && N == std::trunc(N))
        Arr->elements().resize(static_cast<size_t>(N));
    } else {
      Arr->elements() = A;
    }
    return Completion::normal(Value(Arr));
  });
  defineFn(I, G, "Object", [](Interpreter &In, Value, std::vector<Value> &) {
    return Completion::normal(Value(In.heap().allocObject()));
  });
  // Minimal JSON: enough for the XHR response-handling patterns real
  // pages use (numbers, strings, bools, null, arrays, flat-ish objects).
  Object *Json = H.allocObject();
  defineMethod(I, Json, "stringify",
               [](Interpreter &In, Value, std::vector<Value> &A) {
                 return Completion::normal(
                     Value(jsonStringify(In, arg(A, 0))));
               });
  defineMethod(I, Json, "parse",
               [](Interpreter &In, Value, std::vector<Value> &A) {
                 std::string S = In.toStringValue(arg(A, 0));
                 size_t Pos = 0;
                 Value Result;
                 if (!jsonParse(In, S, Pos, Result))
                   return In.throwError("SyntaxError",
                                        "JSON.parse: invalid input");
                 return Completion::normal(std::move(Result));
               });
  G->define("JSON", Value(Json));

  G->define("NaN", Value(std::nan("")));
  G->define("Infinity", Value(HUGE_VAL));
}

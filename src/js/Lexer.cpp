//===- js/Lexer.cpp - MiniJS lexer -----------------------------------------===//

#include "js/Lexer.h"

#include <cctype>
#include <cstdlib>
#include <unordered_map>

using namespace wr;
using namespace wr::js;

const char *wr::js::tokenKindName(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::Eof:
    return "end of input";
  case TokenKind::Error:
    return "invalid token";
  case TokenKind::Identifier:
    return "identifier";
  case TokenKind::Number:
    return "number";
  case TokenKind::String:
    return "string";
  case TokenKind::KwVar:
    return "'var'";
  case TokenKind::KwFunction:
    return "'function'";
  case TokenKind::KwReturn:
    return "'return'";
  case TokenKind::KwIf:
    return "'if'";
  case TokenKind::KwElse:
    return "'else'";
  case TokenKind::KwWhile:
    return "'while'";
  case TokenKind::KwDo:
    return "'do'";
  case TokenKind::KwFor:
    return "'for'";
  case TokenKind::KwIn:
    return "'in'";
  case TokenKind::KwBreak:
    return "'break'";
  case TokenKind::KwContinue:
    return "'continue'";
  case TokenKind::KwNew:
    return "'new'";
  case TokenKind::KwDelete:
    return "'delete'";
  case TokenKind::KwTypeof:
    return "'typeof'";
  case TokenKind::KwVoid:
    return "'void'";
  case TokenKind::KwThis:
    return "'this'";
  case TokenKind::KwNull:
    return "'null'";
  case TokenKind::KwTrue:
    return "'true'";
  case TokenKind::KwFalse:
    return "'false'";
  case TokenKind::KwUndefined:
    return "'undefined'";
  case TokenKind::KwSwitch:
    return "'switch'";
  case TokenKind::KwCase:
    return "'case'";
  case TokenKind::KwDefault:
    return "'default'";
  case TokenKind::KwTry:
    return "'try'";
  case TokenKind::KwCatch:
    return "'catch'";
  case TokenKind::KwFinally:
    return "'finally'";
  case TokenKind::KwThrow:
    return "'throw'";
  case TokenKind::KwInstanceof:
    return "'instanceof'";
  case TokenKind::LParen:
    return "'('";
  case TokenKind::RParen:
    return "')'";
  case TokenKind::LBrace:
    return "'{'";
  case TokenKind::RBrace:
    return "'}'";
  case TokenKind::LBracket:
    return "'['";
  case TokenKind::RBracket:
    return "']'";
  case TokenKind::Semicolon:
    return "';'";
  case TokenKind::Comma:
    return "','";
  case TokenKind::Dot:
    return "'.'";
  case TokenKind::Question:
    return "'?'";
  case TokenKind::Colon:
    return "':'";
  case TokenKind::Assign:
    return "'='";
  case TokenKind::PlusAssign:
    return "'+='";
  case TokenKind::MinusAssign:
    return "'-='";
  case TokenKind::StarAssign:
    return "'*='";
  case TokenKind::SlashAssign:
    return "'/='";
  case TokenKind::PercentAssign:
    return "'%='";
  case TokenKind::Plus:
    return "'+'";
  case TokenKind::Minus:
    return "'-'";
  case TokenKind::Star:
    return "'*'";
  case TokenKind::Slash:
    return "'/'";
  case TokenKind::Percent:
    return "'%'";
  case TokenKind::PlusPlus:
    return "'++'";
  case TokenKind::MinusMinus:
    return "'--'";
  case TokenKind::EqEq:
    return "'=='";
  case TokenKind::NotEq:
    return "'!='";
  case TokenKind::EqEqEq:
    return "'==='";
  case TokenKind::NotEqEq:
    return "'!=='";
  case TokenKind::Less:
    return "'<'";
  case TokenKind::Greater:
    return "'>'";
  case TokenKind::LessEq:
    return "'<='";
  case TokenKind::GreaterEq:
    return "'>='";
  case TokenKind::AmpAmp:
    return "'&&'";
  case TokenKind::PipePipe:
    return "'||'";
  case TokenKind::Not:
    return "'!'";
  case TokenKind::Amp:
    return "'&'";
  case TokenKind::Pipe:
    return "'|'";
  case TokenKind::Caret:
    return "'^'";
  case TokenKind::Tilde:
    return "'~'";
  case TokenKind::Shl:
    return "'<<'";
  case TokenKind::Shr:
    return "'>>'";
  case TokenKind::UShr:
    return "'>>>'";
  }
  return "token";
}

Lexer::Lexer(std::string_view Source) : Source(Source) {}

char Lexer::peek(size_t Ahead) const {
  return Pos + Ahead < Source.size() ? Source[Pos + Ahead] : '\0';
}

char Lexer::advance() {
  char C = peek();
  if (C == '\0')
    return C;
  ++Pos;
  if (C == '\n') {
    ++Line;
    Column = 1;
  } else {
    ++Column;
  }
  return C;
}

bool Lexer::match(char Expected) {
  if (peek() != Expected)
    return false;
  advance();
  return true;
}

void Lexer::skipTrivia() {
  for (;;) {
    char C = peek();
    if (C == ' ' || C == '\t' || C == '\r' || C == '\n' || C == '\f' ||
        C == '\v') {
      advance();
      continue;
    }
    if (C == '/' && peek(1) == '/') {
      while (peek() != '\n' && peek() != '\0')
        advance();
      continue;
    }
    if (C == '/' && peek(1) == '*') {
      advance();
      advance();
      while (!(peek() == '*' && peek(1) == '/') && peek() != '\0')
        advance();
      if (peek() != '\0') {
        advance();
        advance();
      }
      continue;
    }
    return;
  }
}

Token Lexer::makeToken(TokenKind Kind) {
  Token T;
  T.Kind = Kind;
  T.Line = TokLine;
  T.Column = TokColumn;
  return T;
}

Token Lexer::errorToken(std::string Message) {
  Token T = makeToken(TokenKind::Error);
  T.Text = std::move(Message);
  return T;
}

Token Lexer::lexNumber() {
  size_t Start = Pos;
  if (peek() == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
    advance();
    advance();
    while (std::isxdigit(static_cast<unsigned char>(peek())))
      advance();
    Token T = makeToken(TokenKind::Number);
    T.NumValue = static_cast<double>(
        std::strtoull(std::string(Source.substr(Start, Pos - Start)).c_str(),
                      nullptr, 16));
    return T;
  }
  while (std::isdigit(static_cast<unsigned char>(peek())))
    advance();
  if (peek() == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))) {
    advance();
    while (std::isdigit(static_cast<unsigned char>(peek())))
      advance();
  }
  if (peek() == 'e' || peek() == 'E') {
    size_t Save = Pos;
    advance();
    if (peek() == '+' || peek() == '-')
      advance();
    if (std::isdigit(static_cast<unsigned char>(peek()))) {
      while (std::isdigit(static_cast<unsigned char>(peek())))
        advance();
    } else {
      Pos = Save; // Not an exponent after all.
    }
  }
  Token T = makeToken(TokenKind::Number);
  T.NumValue =
      std::strtod(std::string(Source.substr(Start, Pos - Start)).c_str(),
                  nullptr);
  return T;
}

Token Lexer::lexString(char Quote) {
  std::string Decoded;
  for (;;) {
    char C = peek();
    if (C == '\0' || C == '\n')
      return errorToken("unterminated string literal");
    advance();
    if (C == Quote)
      break;
    if (C != '\\') {
      Decoded.push_back(C);
      continue;
    }
    char Esc = advance();
    switch (Esc) {
    case 'n':
      Decoded.push_back('\n');
      break;
    case 't':
      Decoded.push_back('\t');
      break;
    case 'r':
      Decoded.push_back('\r');
      break;
    case 'b':
      Decoded.push_back('\b');
      break;
    case 'f':
      Decoded.push_back('\f');
      break;
    case 'v':
      Decoded.push_back('\v');
      break;
    case '0':
      Decoded.push_back('\0');
      break;
    case 'x': {
      char Hi = advance();
      char Lo = advance();
      if (!std::isxdigit(static_cast<unsigned char>(Hi)) ||
          !std::isxdigit(static_cast<unsigned char>(Lo)))
        return errorToken("invalid \\x escape");
      auto HexVal = [](char C) {
        if (C >= '0' && C <= '9')
          return C - '0';
        return std::tolower(static_cast<unsigned char>(C)) - 'a' + 10;
      };
      Decoded.push_back(
          static_cast<char>(HexVal(Hi) * 16 + HexVal(Lo)));
      break;
    }
    case 'u': {
      // Decode \uXXXX but keep only Latin-1 range; enough for test pages.
      unsigned Code = 0;
      for (int I = 0; I < 4; ++I) {
        char H = advance();
        if (!std::isxdigit(static_cast<unsigned char>(H)))
          return errorToken("invalid \\u escape");
        Code = Code * 16 +
               (std::isdigit(static_cast<unsigned char>(H))
                    ? static_cast<unsigned>(H - '0')
                    : static_cast<unsigned>(
                          std::tolower(static_cast<unsigned char>(H)) - 'a' +
                          10));
      }
      if (Code < 0x80) {
        Decoded.push_back(static_cast<char>(Code));
      } else {
        // UTF-8 encode.
        if (Code < 0x800) {
          Decoded.push_back(static_cast<char>(0xC0 | (Code >> 6)));
        } else {
          Decoded.push_back(static_cast<char>(0xE0 | (Code >> 12)));
          Decoded.push_back(static_cast<char>(0x80 | ((Code >> 6) & 0x3F)));
        }
        Decoded.push_back(static_cast<char>(0x80 | (Code & 0x3F)));
      }
      break;
    }
    default:
      Decoded.push_back(Esc); // \' \" \\ and unknown escapes.
      break;
    }
  }
  Token T = makeToken(TokenKind::String);
  T.Text = std::move(Decoded);
  return T;
}

Token Lexer::lexIdentifierOrKeyword() {
  size_t Start = Pos;
  while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_' ||
         peek() == '$')
    advance();
  std::string Word(Source.substr(Start, Pos - Start));
  static const std::unordered_map<std::string, TokenKind> Keywords = {
      {"var", TokenKind::KwVar},
      {"function", TokenKind::KwFunction},
      {"return", TokenKind::KwReturn},
      {"if", TokenKind::KwIf},
      {"else", TokenKind::KwElse},
      {"while", TokenKind::KwWhile},
      {"do", TokenKind::KwDo},
      {"for", TokenKind::KwFor},
      {"in", TokenKind::KwIn},
      {"break", TokenKind::KwBreak},
      {"continue", TokenKind::KwContinue},
      {"new", TokenKind::KwNew},
      {"delete", TokenKind::KwDelete},
      {"typeof", TokenKind::KwTypeof},
      {"void", TokenKind::KwVoid},
      {"this", TokenKind::KwThis},
      {"null", TokenKind::KwNull},
      {"true", TokenKind::KwTrue},
      {"false", TokenKind::KwFalse},
      {"undefined", TokenKind::KwUndefined},
      {"switch", TokenKind::KwSwitch},
      {"case", TokenKind::KwCase},
      {"default", TokenKind::KwDefault},
      {"try", TokenKind::KwTry},
      {"catch", TokenKind::KwCatch},
      {"finally", TokenKind::KwFinally},
      {"throw", TokenKind::KwThrow},
      {"instanceof", TokenKind::KwInstanceof},
  };
  auto It = Keywords.find(Word);
  if (It != Keywords.end())
    return makeToken(It->second);
  Token T = makeToken(TokenKind::Identifier);
  T.Text = std::move(Word);
  return T;
}

Token Lexer::next() {
  skipTrivia();
  TokLine = Line;
  TokColumn = Column;
  char C = peek();
  if (C == '\0')
    return makeToken(TokenKind::Eof);

  if (std::isdigit(static_cast<unsigned char>(C)))
    return lexNumber();
  if (std::isalpha(static_cast<unsigned char>(C)) || C == '_' || C == '$')
    return lexIdentifierOrKeyword();
  if (C == '"' || C == '\'') {
    advance();
    return lexString(C);
  }

  advance();
  switch (C) {
  case '(':
    return makeToken(TokenKind::LParen);
  case ')':
    return makeToken(TokenKind::RParen);
  case '{':
    return makeToken(TokenKind::LBrace);
  case '}':
    return makeToken(TokenKind::RBrace);
  case '[':
    return makeToken(TokenKind::LBracket);
  case ']':
    return makeToken(TokenKind::RBracket);
  case ';':
    return makeToken(TokenKind::Semicolon);
  case ',':
    return makeToken(TokenKind::Comma);
  case '.':
    return makeToken(TokenKind::Dot);
  case '?':
    return makeToken(TokenKind::Question);
  case ':':
    return makeToken(TokenKind::Colon);
  case '~':
    return makeToken(TokenKind::Tilde);
  case '+':
    if (match('+'))
      return makeToken(TokenKind::PlusPlus);
    if (match('='))
      return makeToken(TokenKind::PlusAssign);
    return makeToken(TokenKind::Plus);
  case '-':
    if (match('-'))
      return makeToken(TokenKind::MinusMinus);
    if (match('='))
      return makeToken(TokenKind::MinusAssign);
    return makeToken(TokenKind::Minus);
  case '*':
    if (match('='))
      return makeToken(TokenKind::StarAssign);
    return makeToken(TokenKind::Star);
  case '/':
    if (match('='))
      return makeToken(TokenKind::SlashAssign);
    return makeToken(TokenKind::Slash);
  case '%':
    if (match('='))
      return makeToken(TokenKind::PercentAssign);
    return makeToken(TokenKind::Percent);
  case '=':
    if (match('=')) {
      if (match('='))
        return makeToken(TokenKind::EqEqEq);
      return makeToken(TokenKind::EqEq);
    }
    return makeToken(TokenKind::Assign);
  case '!':
    if (match('=')) {
      if (match('='))
        return makeToken(TokenKind::NotEqEq);
      return makeToken(TokenKind::NotEq);
    }
    return makeToken(TokenKind::Not);
  case '<':
    if (match('='))
      return makeToken(TokenKind::LessEq);
    if (match('<'))
      return makeToken(TokenKind::Shl);
    return makeToken(TokenKind::Less);
  case '>':
    if (match('='))
      return makeToken(TokenKind::GreaterEq);
    if (match('>')) {
      if (match('>'))
        return makeToken(TokenKind::UShr);
      return makeToken(TokenKind::Shr);
    }
    return makeToken(TokenKind::Greater);
  case '&':
    if (match('&'))
      return makeToken(TokenKind::AmpAmp);
    return makeToken(TokenKind::Amp);
  case '|':
    if (match('|'))
      return makeToken(TokenKind::PipePipe);
    return makeToken(TokenKind::Pipe);
  case '^':
    return makeToken(TokenKind::Caret);
  default:
    break;
  }
  return errorToken(std::string("unexpected character '") + C + "'");
}

std::vector<Token> Lexer::tokenize(std::string_view Source) {
  Lexer L(Source);
  std::vector<Token> Tokens;
  for (;;) {
    Tokens.push_back(L.next());
    TokenKind Kind = Tokens.back().Kind;
    if (Kind == TokenKind::Eof || Kind == TokenKind::Error)
      break;
  }
  return Tokens;
}

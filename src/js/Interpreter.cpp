//===- js/Interpreter.cpp - MiniJS tree-walking interpreter ----------------===//

#include "js/Interpreter.h"

#include "support/Format.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <functional>

using namespace wr;
using namespace wr::js;

JsHooks::~JsHooks() = default;

Interpreter::Interpreter(Heap &H, Env *Global) : TheHeap(H), Global(Global) {
  assert(Global && "interpreter needs a global scope");
}

bool Interpreter::checkBudget(Completion &Out) {
  ++Steps;
  if (StepBudget != 0 && Steps > StepBudget) {
    Out = throwError("RangeError", "script step budget exceeded");
    return false;
  }
  return true;
}

Completion Interpreter::throwError(const char *Name, std::string Message) {
  return Completion::thrown(
      Value(TheHeap.allocError(Name, std::move(Message))));
}

// ---------------------------------------------------------------------------
// Conversions
// ---------------------------------------------------------------------------

bool Interpreter::toBoolean(const Value &V) {
  if (V.isUndefined() || V.isNull())
    return false;
  if (V.isBool())
    return V.asBool();
  if (V.isNumber())
    return V.asNumber() != 0 && !std::isnan(V.asNumber());
  if (V.isString())
    return !V.asString().empty();
  return true;
}

double Interpreter::toNumber(const Value &V) const {
  if (V.isNumber())
    return V.asNumber();
  if (V.isBool())
    return V.asBool() ? 1.0 : 0.0;
  if (V.isNull())
    return 0.0;
  if (V.isUndefined())
    return std::nan("");
  if (V.isString()) {
    const std::string &S = V.asString();
    size_t Begin = S.find_first_not_of(" \t\n\r\f\v");
    if (Begin == std::string::npos)
      return 0.0;
    size_t End = S.find_last_not_of(" \t\n\r\f\v");
    std::string Trimmed = S.substr(Begin, End - Begin + 1);
    const char *C = Trimmed.c_str();
    char *EndPtr = nullptr;
    double N = (Trimmed.size() > 2 && Trimmed[0] == '0' &&
                (Trimmed[1] == 'x' || Trimmed[1] == 'X'))
                   ? static_cast<double>(std::strtoull(C, &EndPtr, 16))
                   : std::strtod(C, &EndPtr);
    if (EndPtr != C + Trimmed.size())
      return std::nan("");
    return N;
  }
  return std::nan(""); // Objects: valueOf not modeled.
}

int32_t Interpreter::toInt32(const Value &V) const {
  double N = toNumber(V);
  if (std::isnan(N) || std::isinf(N))
    return 0;
  return static_cast<int32_t>(static_cast<uint32_t>(
      std::fmod(std::trunc(N), 4294967296.0)));
}

std::string Interpreter::toStringValue(const Value &V) const {
  return toDisplayString(V);
}

bool Interpreter::looseEquals(const Value &A, const Value &B) const {
  if (A.isNullish() && B.isNullish())
    return true;
  if (A.isNullish() || B.isNullish())
    return false;
  if (A.isObject() && B.isObject())
    return A.asObject() == B.asObject();
  if (A.isObject())
    return looseEquals(Value(toStringValue(A)), B);
  if (B.isObject())
    return looseEquals(A, Value(toStringValue(B)));
  if (A.isString() && B.isString())
    return A.asString() == B.asString();
  if (A.isBool() || B.isBool())
    return toNumber(A) == toNumber(B);
  if (A.isNumber() || B.isNumber())
    return toNumber(A) == toNumber(B);
  return false;
}

// ---------------------------------------------------------------------------
// Hoisting (Sec. 4.1: function declarations are writes of anonymous
// functions to scope-entry slots, in source order)
// ---------------------------------------------------------------------------

void Interpreter::collectVarNames(const Stmt *S,
                                  std::vector<std::string> &Names) {
  if (!S)
    return;
  switch (S->kind()) {
  case AstKind::VarDecl:
    for (const auto &D : cast<VarDecl>(S)->Decls)
      Names.push_back(D.Name);
    return;
  case AstKind::Block:
    for (const StmtPtr &Child : cast<Block>(S)->Stmts)
      collectVarNames(Child.get(), Names);
    return;
  case AstKind::If: {
    const auto *I = cast<If>(S);
    collectVarNames(I->Then.get(), Names);
    collectVarNames(I->Else.get(), Names);
    return;
  }
  case AstKind::While:
    collectVarNames(cast<While>(S)->Body.get(), Names);
    return;
  case AstKind::DoWhile:
    collectVarNames(cast<DoWhile>(S)->Body.get(), Names);
    return;
  case AstKind::For: {
    const auto *F = cast<For>(S);
    collectVarNames(F->Init.get(), Names);
    collectVarNames(F->Body.get(), Names);
    return;
  }
  case AstKind::ForIn: {
    const auto *F = cast<ForIn>(S);
    if (F->DeclaresVar)
      Names.push_back(F->Var);
    collectVarNames(F->Body.get(), Names);
    return;
  }
  case AstKind::Switch:
    for (const auto &Clause : cast<Switch>(S)->Cases)
      for (const StmtPtr &Child : Clause.Body)
        collectVarNames(Child.get(), Names);
    return;
  case AstKind::Try: {
    const auto *T = cast<Try>(S);
    collectVarNames(T->Body.get(), Names);
    collectVarNames(T->Catch.get(), Names);
    collectVarNames(T->Finally.get(), Names);
    return;
  }
  default:
    return; // Expressions and nested functions are not scanned.
  }
}

void Interpreter::hoistDeclarations(const std::vector<StmtPtr> &Body,
                                    Env *Scope) {
  // Pass 1: vars get a slot initialized to undefined (no write hook:
  // declaring is not an access; the initializer assignment is).
  std::vector<std::string> VarNames;
  for (const StmtPtr &S : Body)
    collectVarNames(S.get(), VarNames);
  for (const std::string &Name : VarNames)
    if (!Scope->hasOwn(Name))
      Scope->define(Name, Value());

  // Pass 2: function declarations, assigned at scope entry in source order.
  // These ARE writes (the paper's function-race write side).
  struct Collector {
    Interpreter &I;
    Env *Scope;
    void walk(const Stmt *S) {
      if (!S)
        return;
      switch (S->kind()) {
      case AstKind::FunctionDecl: {
        const auto *F = cast<FunctionDecl>(S);
        Object *Fn = I.TheHeap.allocFunction(&F->Fn, Scope);
        Fn->setFunctionName(F->Fn.Name);
        if (I.Hooks)
          I.Hooks->onVarWrite(Scope, F->Fn.Name, AccessOrigin::FunctionDecl);
        Scope->define(F->Fn.Name, Value(Fn));
        return;
      }
      case AstKind::Block:
        for (const StmtPtr &Child : cast<Block>(S)->Stmts)
          walk(Child.get());
        return;
      case AstKind::If: {
        const auto *If2 = cast<If>(S);
        walk(If2->Then.get());
        walk(If2->Else.get());
        return;
      }
      case AstKind::While:
        walk(cast<While>(S)->Body.get());
        return;
      case AstKind::DoWhile:
        walk(cast<DoWhile>(S)->Body.get());
        return;
      case AstKind::For:
        walk(cast<For>(S)->Body.get());
        return;
      case AstKind::ForIn:
        walk(cast<ForIn>(S)->Body.get());
        return;
      case AstKind::Switch:
        for (const auto &Clause : cast<Switch>(S)->Cases)
          for (const StmtPtr &Child : Clause.Body)
            walk(Child.get());
        return;
      case AstKind::Try: {
        const auto *T = cast<Try>(S);
        walk(T->Body.get());
        walk(T->Catch.get());
        walk(T->Finally.get());
        return;
      }
      default:
        return;
      }
    }
  };
  Collector C{*this, Scope};
  for (const StmtPtr &S : Body)
    C.walk(S.get());
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

Completion Interpreter::runProgram(const Program &P) {
  hoistDeclarations(P.Body, Global);
  Value Last; // Completion value of the program (eval semantics).
  for (const StmtPtr &S : P.Body) {
    Completion C = evalStmt(S.get(), Global);
    if (C.isThrow())
      return C;
    if (C.isAbrupt())
      return Completion::normal(std::move(Last));
    if (isa<ExprStmt>(S.get()))
      Last = std::move(C.V);
  }
  return Completion::normal(std::move(Last));
}

Completion Interpreter::runProgramWithThis(const Program &P, Value ThisV) {
  Value Saved = GlobalThis;
  if (!ThisV.isNullish())
    GlobalThis = std::move(ThisV);
  Completion C = runProgram(P);
  GlobalThis = Saved;
  return C;
}

Completion Interpreter::callFunction(Value Fn, Value ThisV,
                                     std::vector<Value> Args) {
  Object *F = Fn.objectOrNull();
  if (!F || !F->isCallable())
    return throwError("TypeError",
                      strFormat("%s is not a function",
                                toDisplayString(Fn).c_str()));
  if (CallDepth >= MaxCallDepth)
    return throwError("RangeError", "maximum call stack size exceeded");
  ++CallDepth;
  Completion Result;
  if (F->isHostFunction()) {
    Result = F->hostFunction()(*this, std::move(ThisV), Args);
    // Normalize: host functions return Normal or Throw.
    if (Result.Kind == CompletionKind::Return)
      Result.Kind = CompletionKind::Normal;
  } else {
    const FunctionLiteral *Lit = F->functionData().Lit;
    Env *Scope = TheHeap.allocEnv(F->functionData().Closure);
    for (size_t I = 0; I < Lit->Params.size(); ++I) {
      Value Arg = I < Args.size() ? Args[I] : Value();
      Scope->define(Lit->Params[I], std::move(Arg));
    }
    hoistDeclarations(Lit->Body->Stmts, Scope);
    Result = Completion::normal();
    Value SavedThis = GlobalThis;
    if (!ThisV.isNullish())
      GlobalThis = ThisV; // `this` inside the callee.
    for (const StmtPtr &S : Lit->Body->Stmts) {
      Completion C = evalStmt(S.get(), Scope);
      if (C.Kind == CompletionKind::Return) {
        Result = Completion::normal(std::move(C.V));
        break;
      }
      if (C.isThrow()) {
        Result = std::move(C);
        break;
      }
      if (C.isAbrupt())
        break;
    }
    GlobalThis = SavedThis;
  }
  --CallDepth;
  return Result;
}

Completion Interpreter::construct(Value Callee, std::vector<Value> Args) {
  Object *F = Callee.objectOrNull();
  if (!F || !F->isCallable())
    return throwError("TypeError",
                      strFormat("%s is not a constructor",
                                toDisplayString(Callee).c_str()));
  Object *Fresh = TheHeap.allocObject();
  if (F->isScriptFunction()) {
    // Uninstrumented internal read of F.prototype (engine bookkeeping).
    Value *Proto = F->findOwnProperty("prototype");
    if (!Proto) {
      F->setOwnProperty("prototype", Value(TheHeap.allocObject()));
      Proto = F->findOwnProperty("prototype");
    }
    if (Object *P = Proto->objectOrNull())
      Fresh->setProto(P);
  }
  Completion C = callFunction(Callee, Value(Fresh), std::move(Args));
  if (C.isThrow())
    return C;
  if (C.V.isObject())
    return Completion::normal(C.V);
  return Completion::normal(Value(Fresh));
}

// ---------------------------------------------------------------------------
// Property access
// ---------------------------------------------------------------------------

/// Parses \p Name as an array index; returns false for non-indices.
static bool parseArrayIndex(const std::string &Name, size_t &Index) {
  if (Name.empty() || Name.size() > 9)
    return false;
  size_t Result = 0;
  for (char C : Name) {
    if (C < '0' || C > '9')
      return false;
    Result = Result * 10 + static_cast<size_t>(C - '0');
  }
  if (Name.size() > 1 && Name[0] == '0')
    return false;
  Index = Result;
  return true;
}

Completion Interpreter::getProperty(const Value &Base,
                                    const std::string &Name,
                                    AccessOrigin Origin) {
  if (Base.isNullish())
    return throwError("TypeError",
                      strFormat("Cannot read properties of %s (reading "
                                "'%s')",
                                Base.isNull() ? "null" : "undefined",
                                Name.c_str()));
  if (Base.isString()) {
    const std::string &S = Base.asString();
    if (Name == "length")
      return Completion::normal(Value(static_cast<double>(S.size())));
    size_t Index;
    if (parseArrayIndex(Name, Index))
      return Completion::normal(Index < S.size()
                                    ? Value(std::string(1, S[Index]))
                                    : Value());
    return Completion::normal(Value());
  }
  if (!Base.isObject())
    return Completion::normal(Value()); // number/bool: no modeled props.

  Object *O = Base.asObject();
  if (const HostClass *HC = O->hostClass()) {
    Value Out;
    if (const_cast<HostClass *>(HC)->hostGet(*this, O, Name, Out))
      return Completion::normal(std::move(Out));
  }
  if (Hooks)
    Hooks->onPropRead(O, Name, Origin);
  // Function objects materialize their prototype object on first use.
  if (Name == "prototype" && O->isCallable() &&
      !O->findOwnProperty("prototype"))
    O->setOwnProperty("prototype", Value(TheHeap.allocObject()));
  if (O->isArray()) {
    if (Name == "length")
      return Completion::normal(
          Value(static_cast<double>(O->elements().size())));
    size_t Index;
    if (parseArrayIndex(Name, Index))
      return Completion::normal(Index < O->elements().size()
                                    ? O->elements()[Index]
                                    : Value());
  }
  if (Value *V = O->findProperty(Name))
    return Completion::normal(*V);
  return Completion::normal(Value());
}

Completion Interpreter::setProperty(const Value &Base,
                                    const std::string &Name, Value V,
                                    AccessOrigin Origin) {
  if (Base.isNullish())
    return throwError("TypeError",
                      strFormat("Cannot set properties of %s (setting "
                                "'%s')",
                                Base.isNull() ? "null" : "undefined",
                                Name.c_str()));
  if (!Base.isObject())
    return Completion::normal(std::move(V)); // Silently ignored.

  Object *O = Base.asObject();
  if (const HostClass *HC = O->hostClass())
    if (const_cast<HostClass *>(HC)->hostSet(*this, O, Name, V))
      return Completion::normal(std::move(V));
  if (Hooks)
    Hooks->onPropWrite(O, Name, Origin);
  if (O->isArray()) {
    if (Name == "length") {
      double N = toNumber(V);
      if (N >= 0 && N == std::trunc(N))
        O->elements().resize(static_cast<size_t>(N));
      return Completion::normal(std::move(V));
    }
    size_t Index;
    if (parseArrayIndex(Name, Index)) {
      if (Index >= O->elements().size())
        O->elements().resize(Index + 1);
      O->elements()[Index] = V;
      return Completion::normal(std::move(V));
    }
  }
  O->setOwnProperty(Name, V);
  return Completion::normal(std::move(V));
}

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

Completion Interpreter::evalStmt(const Stmt *S, Env *Scope) {
  Completion Budget;
  if (!checkBudget(Budget))
    return Budget;
  switch (S->kind()) {
  case AstKind::Empty:
  case AstKind::FunctionDecl: // Hoisted; nothing at execution time.
    return Completion::normal();
  case AstKind::ExprStmt:
    return evalExpr(cast<ExprStmt>(S)->E.get(), Scope);
  case AstKind::VarDecl:
    return evalVarDecl(cast<VarDecl>(S), Scope);
  case AstKind::Block:
    return evalBlock(cast<Block>(S), Scope);
  case AstKind::If:
    return evalIf(cast<If>(S), Scope);
  case AstKind::While:
    return evalWhile(cast<While>(S), Scope);
  case AstKind::DoWhile:
    return evalDoWhile(cast<DoWhile>(S), Scope);
  case AstKind::For:
    return evalFor(cast<For>(S), Scope);
  case AstKind::ForIn:
    return evalForIn(cast<ForIn>(S), Scope);
  case AstKind::Return: {
    const auto *R = cast<Return>(S);
    if (!R->Value)
      return Completion::ret(Value());
    Completion C = evalExpr(R->Value.get(), Scope);
    if (C.isThrow())
      return C;
    return Completion::ret(std::move(C.V));
  }
  case AstKind::Break:
    return Completion::brk();
  case AstKind::Continue:
    return Completion::cont();
  case AstKind::Switch:
    return evalSwitch(cast<Switch>(S), Scope);
  case AstKind::Throw: {
    Completion C = evalExpr(cast<Throw>(S)->Value.get(), Scope);
    if (C.isThrow())
      return C;
    return Completion::thrown(std::move(C.V));
  }
  case AstKind::Try:
    return evalTry(cast<Try>(S), Scope);
  default:
    assert(false && "expression kind reached evalStmt");
    return Completion::normal();
  }
}

Completion Interpreter::evalBlock(const Block *B, Env *Scope) {
  // `var` is function-scoped: blocks share the enclosing environment.
  for (const StmtPtr &S : B->Stmts) {
    Completion C = evalStmt(S.get(), Scope);
    if (C.isAbrupt())
      return C;
  }
  return Completion::normal();
}

Completion Interpreter::evalVarDecl(const VarDecl *V, Env *Scope) {
  for (const auto &D : V->Decls) {
    if (!D.Init)
      continue;
    Completion C = evalExpr(D.Init.get(), Scope);
    if (C.isThrow())
      return C;
    Env *Owner = Scope->resolve(D.Name);
    if (!Owner)
      Owner = Scope; // Hoisting guarantees a slot, but be safe.
    if (Hooks)
      Hooks->onVarWrite(Owner, D.Name, AccessOrigin::Plain);
    Owner->define(D.Name, std::move(C.V));
  }
  return Completion::normal();
}

Completion Interpreter::evalIf(const If *I, Env *Scope) {
  Completion C = evalExpr(I->Cond.get(), Scope);
  if (C.isThrow())
    return C;
  if (toBoolean(C.V))
    return I->Then ? evalStmt(I->Then.get(), Scope) : Completion::normal();
  if (I->Else)
    return evalStmt(I->Else.get(), Scope);
  return Completion::normal();
}

Completion Interpreter::evalWhile(const While *W, Env *Scope) {
  for (;;) {
    Completion Budget;
    if (!checkBudget(Budget))
      return Budget;
    Completion Cond = evalExpr(W->Cond.get(), Scope);
    if (Cond.isThrow())
      return Cond;
    if (!toBoolean(Cond.V))
      return Completion::normal();
    Completion Body = evalStmt(W->Body.get(), Scope);
    if (Body.Kind == CompletionKind::Break)
      return Completion::normal();
    if (Body.isThrow() || Body.Kind == CompletionKind::Return)
      return Body;
  }
}

Completion Interpreter::evalDoWhile(const DoWhile *W, Env *Scope) {
  for (;;) {
    Completion Budget;
    if (!checkBudget(Budget))
      return Budget;
    Completion Body = evalStmt(W->Body.get(), Scope);
    if (Body.Kind == CompletionKind::Break)
      return Completion::normal();
    if (Body.isThrow() || Body.Kind == CompletionKind::Return)
      return Body;
    Completion Cond = evalExpr(W->Cond.get(), Scope);
    if (Cond.isThrow())
      return Cond;
    if (!toBoolean(Cond.V))
      return Completion::normal();
  }
}

Completion Interpreter::evalFor(const For *F, Env *Scope) {
  if (F->Init) {
    Completion C = evalStmt(F->Init.get(), Scope);
    if (C.isAbrupt())
      return C;
  }
  for (;;) {
    Completion Budget;
    if (!checkBudget(Budget))
      return Budget;
    if (F->Cond) {
      Completion Cond = evalExpr(F->Cond.get(), Scope);
      if (Cond.isThrow())
        return Cond;
      if (!toBoolean(Cond.V))
        return Completion::normal();
    }
    Completion Body = evalStmt(F->Body.get(), Scope);
    if (Body.Kind == CompletionKind::Break)
      return Completion::normal();
    if (Body.isThrow() || Body.Kind == CompletionKind::Return)
      return Body;
    if (F->Step) {
      Completion Step = evalExpr(F->Step.get(), Scope);
      if (Step.isThrow())
        return Step;
    }
  }
}

Completion Interpreter::evalForIn(const ForIn *F, Env *Scope) {
  Completion ObjC = evalExpr(F->Object.get(), Scope);
  if (ObjC.isThrow())
    return ObjC;
  if (ObjC.V.isNullish())
    return Completion::normal();
  if (!ObjC.V.isObject())
    return Completion::normal();
  Object *O = ObjC.V.asObject();
  std::vector<std::string> Keys = O->ownPropertyNames();
  for (const std::string &Key : Keys) {
    Env *Owner = Scope->resolve(F->Var);
    if (!Owner)
      Owner = F->DeclaresVar ? Scope : Global;
    if (Hooks)
      Hooks->onVarWrite(Owner, F->Var, AccessOrigin::Plain);
    Owner->define(F->Var, Value(Key));
    Completion Body = evalStmt(F->Body.get(), Scope);
    if (Body.Kind == CompletionKind::Break)
      return Completion::normal();
    if (Body.isThrow() || Body.Kind == CompletionKind::Return)
      return Body;
  }
  return Completion::normal();
}

Completion Interpreter::evalSwitch(const Switch *S, Env *Scope) {
  Completion Disc = evalExpr(S->Disc.get(), Scope);
  if (Disc.isThrow())
    return Disc;
  // Find the matching clause (or default).
  size_t Match = S->Cases.size();
  size_t DefaultIndex = S->Cases.size();
  for (size_t I = 0; I < S->Cases.size(); ++I) {
    const auto &Clause = S->Cases[I];
    if (!Clause.Test) {
      DefaultIndex = I;
      continue;
    }
    Completion Test = evalExpr(Clause.Test.get(), Scope);
    if (Test.isThrow())
      return Test;
    if (Disc.V.strictEquals(Test.V)) {
      Match = I;
      break;
    }
  }
  if (Match == S->Cases.size())
    Match = DefaultIndex;
  for (size_t I = Match; I < S->Cases.size(); ++I) {
    for (const StmtPtr &Child : S->Cases[I].Body) {
      Completion C = evalStmt(Child.get(), Scope);
      if (C.Kind == CompletionKind::Break)
        return Completion::normal();
      if (C.isAbrupt())
        return C;
    }
  }
  return Completion::normal();
}

Completion Interpreter::evalTry(const Try *T, Env *Scope) {
  Completion Result = evalBlock(T->Body.get(), Scope);
  if (Result.isThrow() && T->Catch) {
    Env *CatchScope = TheHeap.allocEnv(Scope);
    CatchScope->define(T->CatchVar, std::move(Result.V));
    Result = evalBlock(T->Catch.get(), CatchScope);
  }
  if (T->Finally) {
    Completion Fin = evalBlock(T->Finally.get(), Scope);
    if (Fin.isAbrupt())
      return Fin; // Abrupt finally overrides.
  }
  return Result;
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

Completion Interpreter::evalIdent(const Ident *I, Env *Scope,
                                  AccessOrigin Origin) {
  if (Env *Owner = Scope->resolve(I->Name)) {
    if (Hooks)
      Hooks->onVarRead(Owner, I->Name, Origin);
    return Completion::normal(*Owner->findOwn(I->Name));
  }
  // Undeclared: the read still targets the global slot a later declaration
  // would write - this collision is exactly the function race of Sec. 2.4.
  if (Hooks)
    Hooks->onVarRead(Global, I->Name, Origin);
  return throwError("ReferenceError",
                    strFormat("%s is not defined", I->Name.c_str()));
}

Completion Interpreter::evalExpr(const Expr *E, Env *Scope) {
  Completion Budget;
  if (!checkBudget(Budget))
    return Budget;
  switch (E->kind()) {
  case AstKind::NumberLit:
    return Completion::normal(Value(cast<NumberLit>(E)->V));
  case AstKind::StringLit:
    return Completion::normal(Value(cast<StringLit>(E)->V));
  case AstKind::BoolLit:
    return Completion::normal(Value(cast<BoolLit>(E)->V));
  case AstKind::NullLit:
    return Completion::normal(Value::null());
  case AstKind::UndefinedLit:
    return Completion::normal(Value());
  case AstKind::ThisExpr:
    return Completion::normal(GlobalThis);
  case AstKind::Ident:
    return evalIdent(cast<Ident>(E), Scope, AccessOrigin::Plain);
  case AstKind::ArrayLit: {
    const auto *A = cast<ArrayLit>(E);
    Object *Arr = TheHeap.allocArray();
    for (const ExprPtr &Elem : A->Elems) {
      Completion C = evalExpr(Elem.get(), Scope);
      if (C.isThrow())
        return C;
      Arr->elements().push_back(std::move(C.V));
    }
    return Completion::normal(Value(Arr));
  }
  case AstKind::ObjectLit: {
    const auto *OL = cast<ObjectLit>(E);
    Object *O = TheHeap.allocObject();
    for (const auto &Prop : OL->Props) {
      Completion C = evalExpr(Prop.Value.get(), Scope);
      if (C.isThrow())
        return C;
      O->setOwnProperty(Prop.Key, std::move(C.V));
    }
    return Completion::normal(Value(O));
  }
  case AstKind::FunctionExpr: {
    const auto *F = cast<FunctionExpr>(E);
    Object *Fn = TheHeap.allocFunction(&F->Fn, Scope);
    Fn->setFunctionName(F->Fn.Name);
    return Completion::normal(Value(Fn));
  }
  case AstKind::Member: {
    const auto *M = cast<Member>(E);
    Completion Base = evalExpr(M->Base.get(), Scope);
    if (Base.isThrow())
      return Base;
    return getProperty(Base.V, M->Name, AccessOrigin::Plain);
  }
  case AstKind::Index: {
    const auto *I = cast<Index>(E);
    Completion Base = evalExpr(I->Base.get(), Scope);
    if (Base.isThrow())
      return Base;
    Completion Key = evalExpr(I->Key.get(), Scope);
    if (Key.isThrow())
      return Key;
    return getProperty(Base.V, toStringValue(Key.V), AccessOrigin::Plain);
  }
  case AstKind::Call:
    return evalCall(cast<Call>(E), Scope);
  case AstKind::New:
    return evalNew(cast<New>(E), Scope);
  case AstKind::Unary:
    return evalUnary(cast<Unary>(E), Scope);
  case AstKind::Update:
    return evalUpdate(cast<Update>(E), Scope);
  case AstKind::Binary:
    return evalBinary(cast<Binary>(E), Scope);
  case AstKind::Logical: {
    const auto *L = cast<Logical>(E);
    Completion Lhs = evalExpr(L->Lhs.get(), Scope);
    if (Lhs.isThrow())
      return Lhs;
    bool Truthy = toBoolean(Lhs.V);
    if ((L->Op == LogicalOp::And && !Truthy) ||
        (L->Op == LogicalOp::Or && Truthy))
      return Lhs;
    return evalExpr(L->Rhs.get(), Scope);
  }
  case AstKind::Conditional: {
    const auto *C = cast<Conditional>(E);
    Completion Cond = evalExpr(C->Cond.get(), Scope);
    if (Cond.isThrow())
      return Cond;
    return evalExpr(toBoolean(Cond.V) ? C->Then.get() : C->Else.get(),
                    Scope);
  }
  case AstKind::Assign:
    return evalAssign(cast<Assign>(E), Scope);
  case AstKind::Sequence: {
    const auto *S = cast<Sequence>(E);
    Completion Last = Completion::normal();
    for (const ExprPtr &Sub : S->Exprs) {
      Last = evalExpr(Sub.get(), Scope);
      if (Last.isThrow())
        return Last;
    }
    return Last;
  }
  default:
    assert(false && "statement kind reached evalExpr");
    return Completion::normal();
  }
}

Completion Interpreter::evalCall(const Call *C, Env *Scope) {
  // Resolve the callee reference.
  Value ThisV;
  Value Callee;
  const std::string *MethodName = nullptr;
  std::string MethodNameStorage;
  Value BaseV;

  if (const auto *M = dyn_cast<Member>(C->Callee.get())) {
    Completion Base = evalExpr(M->Base.get(), Scope);
    if (Base.isThrow())
      return Base;
    BaseV = Base.V;
    MethodNameStorage = M->Name;
    MethodName = &MethodNameStorage;
  } else if (const auto *I = dyn_cast<Index>(C->Callee.get())) {
    Completion Base = evalExpr(I->Base.get(), Scope);
    if (Base.isThrow())
      return Base;
    Completion Key = evalExpr(I->Key.get(), Scope);
    if (Key.isThrow())
      return Key;
    BaseV = Base.V;
    MethodNameStorage = toStringValue(Key.V);
    MethodName = &MethodNameStorage;
  } else if (const auto *Id = dyn_cast<Ident>(C->Callee.get())) {
    Completion Fn = evalIdent(Id, Scope, AccessOrigin::FunctionCall);
    if (Fn.isThrow())
      return Fn;
    Callee = Fn.V;
  } else {
    Completion Fn = evalExpr(C->Callee.get(), Scope);
    if (Fn.isThrow())
      return Fn;
    Callee = Fn.V;
  }

  // Evaluate arguments.
  std::vector<Value> Args;
  Args.reserve(C->Args.size());
  for (const ExprPtr &Arg : C->Args) {
    Completion A = evalExpr(Arg.get(), Scope);
    if (A.isThrow())
      return A;
    Args.push_back(std::move(A.V));
  }

  if (MethodName) {
    Completion Got = getProperty(BaseV, *MethodName,
                                 AccessOrigin::FunctionCall);
    if (Got.isThrow())
      return Got;
    Object *F = Got.V.objectOrNull();
    if (F && F->isCallable())
      return callFunction(Got.V, BaseV, std::move(Args));
    Completion Out;
    if (callBuiltinMethod(BaseV, *MethodName, Args, Out))
      return Out;
    return throwError("TypeError",
                      strFormat("%s is not a function",
                                MethodName->c_str()));
  }

  Object *F = Callee.objectOrNull();
  if (!F || !F->isCallable())
    return throwError("TypeError", "call target is not a function");
  return callFunction(Callee, GlobalThis, std::move(Args));
}

Completion Interpreter::evalNew(const New *N, Env *Scope) {
  Completion Callee = evalExpr(N->Callee.get(), Scope);
  if (Callee.isThrow())
    return Callee;
  std::vector<Value> Args;
  Args.reserve(N->Args.size());
  for (const ExprPtr &Arg : N->Args) {
    Completion A = evalExpr(Arg.get(), Scope);
    if (A.isThrow())
      return A;
    Args.push_back(std::move(A.V));
  }
  return construct(Callee.V, std::move(Args));
}

Completion Interpreter::evalAssign(const Assign *A, Env *Scope) {
  // Compound ops read the old value first.
  auto Apply = [&](const Value &Old, Value New,
                   uint32_t Line) -> Completion {
    if (A->Op == AssignOp::Assign)
      return Completion::normal(std::move(New));
    static const BinaryOp Map[] = {BinaryOp::Add, BinaryOp::Add,
                                   BinaryOp::Sub, BinaryOp::Mul,
                                   BinaryOp::Div, BinaryOp::Mod};
    return applyBinary(Map[static_cast<int>(A->Op)], Old, New, Line);
  };

  if (const auto *Id = dyn_cast<Ident>(A->Target.get())) {
    Value Old;
    if (A->Op != AssignOp::Assign) {
      Completion OldC = evalIdent(Id, Scope, AccessOrigin::Plain);
      if (OldC.isThrow())
        return OldC;
      Old = std::move(OldC.V);
    }
    Completion Rhs = evalExpr(A->Value.get(), Scope);
    if (Rhs.isThrow())
      return Rhs;
    Completion NewV = Apply(Old, std::move(Rhs.V), A->line());
    if (NewV.isThrow())
      return NewV;
    Env *Owner = Scope->resolve(Id->Name);
    if (!Owner)
      Owner = Global; // Implicit global creation.
    if (Hooks)
      Hooks->onVarWrite(Owner, Id->Name, AccessOrigin::Plain);
    Owner->define(Id->Name, NewV.V);
    return Completion::normal(std::move(NewV.V));
  }

  // Member / Index target.
  Value BaseV;
  std::string Name;
  if (const auto *M = dyn_cast<Member>(A->Target.get())) {
    Completion Base = evalExpr(M->Base.get(), Scope);
    if (Base.isThrow())
      return Base;
    BaseV = std::move(Base.V);
    Name = M->Name;
  } else {
    const auto *I = cast<Index>(A->Target.get());
    Completion Base = evalExpr(I->Base.get(), Scope);
    if (Base.isThrow())
      return Base;
    Completion Key = evalExpr(I->Key.get(), Scope);
    if (Key.isThrow())
      return Key;
    BaseV = std::move(Base.V);
    Name = toStringValue(Key.V);
  }

  Value Old;
  if (A->Op != AssignOp::Assign) {
    Completion OldC = getProperty(BaseV, Name, AccessOrigin::Plain);
    if (OldC.isThrow())
      return OldC;
    Old = std::move(OldC.V);
  }
  Completion Rhs = evalExpr(A->Value.get(), Scope);
  if (Rhs.isThrow())
    return Rhs;
  Completion NewV = Apply(Old, std::move(Rhs.V), A->line());
  if (NewV.isThrow())
    return NewV;
  Completion SetC = setProperty(BaseV, Name, NewV.V, AccessOrigin::Plain);
  if (SetC.isThrow())
    return SetC;
  return Completion::normal(std::move(NewV.V));
}

Completion Interpreter::evalUpdate(const Update *U, Env *Scope) {
  // Read old, compute new, write back.
  auto Finish = [&](const Value &OldV,
                    std::function<Completion(Value)> Write) -> Completion {
    double Old = toNumber(OldV);
    double New = U->IsIncrement ? Old + 1 : Old - 1;
    Completion W = Write(Value(New));
    if (W.isThrow())
      return W;
    return Completion::normal(Value(U->IsPrefix ? New : Old));
  };

  if (const auto *Id = dyn_cast<Ident>(U->Operand.get())) {
    Completion OldC = evalIdent(Id, Scope, AccessOrigin::Plain);
    if (OldC.isThrow())
      return OldC;
    return Finish(OldC.V, [&](Value NewV) -> Completion {
      Env *Owner = Scope->resolve(Id->Name);
      if (!Owner)
        Owner = Global;
      if (Hooks)
        Hooks->onVarWrite(Owner, Id->Name, AccessOrigin::Plain);
      Owner->define(Id->Name, std::move(NewV));
      return Completion::normal();
    });
  }

  Value BaseV;
  std::string Name;
  if (const auto *M = dyn_cast<Member>(U->Operand.get())) {
    Completion Base = evalExpr(M->Base.get(), Scope);
    if (Base.isThrow())
      return Base;
    BaseV = std::move(Base.V);
    Name = M->Name;
  } else if (const auto *I = dyn_cast<Index>(U->Operand.get())) {
    Completion Base = evalExpr(I->Base.get(), Scope);
    if (Base.isThrow())
      return Base;
    Completion Key = evalExpr(I->Key.get(), Scope);
    if (Key.isThrow())
      return Key;
    BaseV = std::move(Base.V);
    Name = toStringValue(Key.V);
  } else {
    return throwError("SyntaxError", "invalid update target");
  }
  Completion OldC = getProperty(BaseV, Name, AccessOrigin::Plain);
  if (OldC.isThrow())
    return OldC;
  return Finish(OldC.V, [&](Value NewV) -> Completion {
    return setProperty(BaseV, Name, std::move(NewV), AccessOrigin::Plain);
  });
}

Completion Interpreter::evalUnary(const Unary *U, Env *Scope) {
  // typeof tolerates undeclared identifiers (but the read is still an
  // access the detector sees).
  if (U->Op == UnaryOp::TypeOf) {
    if (const auto *Id = dyn_cast<Ident>(U->Operand.get())) {
      if (Env *Owner = Scope->resolve(Id->Name)) {
        if (Hooks)
          Hooks->onVarRead(Owner, Id->Name, AccessOrigin::Plain);
        return Completion::normal(Value(typeOf(*Owner->findOwn(Id->Name))));
      }
      if (Hooks)
        Hooks->onVarRead(Global, Id->Name, AccessOrigin::Plain);
      return Completion::normal(Value("undefined"));
    }
    Completion C = evalExpr(U->Operand.get(), Scope);
    if (C.isThrow())
      return C;
    return Completion::normal(Value(typeOf(C.V)));
  }

  if (U->Op == UnaryOp::Delete) {
    if (const auto *M = dyn_cast<Member>(U->Operand.get())) {
      Completion Base = evalExpr(M->Base.get(), Scope);
      if (Base.isThrow())
        return Base;
      if (Object *O = Base.V.objectOrNull()) {
        if (Hooks)
          Hooks->onPropWrite(O, M->Name, AccessOrigin::Plain);
        return Completion::normal(Value(O->deleteOwnProperty(M->Name)));
      }
      return Completion::normal(Value(true));
    }
    if (const auto *I = dyn_cast<Index>(U->Operand.get())) {
      Completion Base = evalExpr(I->Base.get(), Scope);
      if (Base.isThrow())
        return Base;
      Completion Key = evalExpr(I->Key.get(), Scope);
      if (Key.isThrow())
        return Key;
      if (Object *O = Base.V.objectOrNull()) {
        std::string Name = toStringValue(Key.V);
        if (Hooks)
          Hooks->onPropWrite(O, Name, AccessOrigin::Plain);
        return Completion::normal(Value(O->deleteOwnProperty(Name)));
      }
      return Completion::normal(Value(true));
    }
    return Completion::normal(Value(false));
  }

  Completion C = evalExpr(U->Operand.get(), Scope);
  if (C.isThrow())
    return C;
  switch (U->Op) {
  case UnaryOp::Neg:
    return Completion::normal(Value(-toNumber(C.V)));
  case UnaryOp::Plus:
    return Completion::normal(Value(toNumber(C.V)));
  case UnaryOp::Not:
    return Completion::normal(Value(!toBoolean(C.V)));
  case UnaryOp::BitNot:
    return Completion::normal(Value(static_cast<double>(~toInt32(C.V))));
  case UnaryOp::Void:
    return Completion::normal(Value());
  default:
    return Completion::normal(Value());
  }
}

Completion Interpreter::applyBinary(BinaryOp Op, const Value &L,
                                    const Value &R, uint32_t Line) {
  (void)Line;
  switch (Op) {
  case BinaryOp::Add:
    if (L.isString() || R.isString() || L.isObject() || R.isObject())
      return Completion::normal(
          Value(toStringValue(L) + toStringValue(R)));
    return Completion::normal(Value(toNumber(L) + toNumber(R)));
  case BinaryOp::Sub:
    return Completion::normal(Value(toNumber(L) - toNumber(R)));
  case BinaryOp::Mul:
    return Completion::normal(Value(toNumber(L) * toNumber(R)));
  case BinaryOp::Div:
    return Completion::normal(Value(toNumber(L) / toNumber(R)));
  case BinaryOp::Mod:
    return Completion::normal(Value(std::fmod(toNumber(L), toNumber(R))));
  case BinaryOp::Eq:
    return Completion::normal(Value(looseEquals(L, R)));
  case BinaryOp::Ne:
    return Completion::normal(Value(!looseEquals(L, R)));
  case BinaryOp::StrictEq:
    return Completion::normal(Value(L.strictEquals(R)));
  case BinaryOp::StrictNe:
    return Completion::normal(Value(!L.strictEquals(R)));
  case BinaryOp::Lt:
  case BinaryOp::Gt:
  case BinaryOp::Le:
  case BinaryOp::Ge: {
    bool Result;
    if (L.isString() && R.isString()) {
      int Cmp = L.asString().compare(R.asString());
      Result = Op == BinaryOp::Lt   ? Cmp < 0
               : Op == BinaryOp::Gt ? Cmp > 0
               : Op == BinaryOp::Le ? Cmp <= 0
                                    : Cmp >= 0;
    } else {
      double A = toNumber(L), B = toNumber(R);
      if (std::isnan(A) || std::isnan(B))
        return Completion::normal(Value(false));
      Result = Op == BinaryOp::Lt   ? A < B
               : Op == BinaryOp::Gt ? A > B
               : Op == BinaryOp::Le ? A <= B
                                    : A >= B;
    }
    return Completion::normal(Value(Result));
  }
  case BinaryOp::BitAnd:
    return Completion::normal(
        Value(static_cast<double>(toInt32(L) & toInt32(R))));
  case BinaryOp::BitOr:
    return Completion::normal(
        Value(static_cast<double>(toInt32(L) | toInt32(R))));
  case BinaryOp::BitXor:
    return Completion::normal(
        Value(static_cast<double>(toInt32(L) ^ toInt32(R))));
  case BinaryOp::Shl:
    return Completion::normal(Value(static_cast<double>(
        toInt32(L) << (toInt32(R) & 31))));
  case BinaryOp::Shr:
    return Completion::normal(Value(static_cast<double>(
        toInt32(L) >> (toInt32(R) & 31))));
  case BinaryOp::UShr:
    return Completion::normal(Value(static_cast<double>(
        static_cast<uint32_t>(toInt32(L)) >> (toInt32(R) & 31))));
  case BinaryOp::InstanceOf: {
    Object *F = R.objectOrNull();
    Object *O = L.objectOrNull();
    if (!F || !F->isCallable())
      return throwError("TypeError",
                        "right-hand side of instanceof is not callable");
    if (!O)
      return Completion::normal(Value(false));
    Value *ProtoV = F->findOwnProperty("prototype");
    Object *Proto = ProtoV ? ProtoV->objectOrNull() : nullptr;
    for (Object *Walk = O->proto(); Walk; Walk = Walk->proto())
      if (Walk == Proto)
        return Completion::normal(Value(true));
    return Completion::normal(Value(false));
  }
  case BinaryOp::In: {
    Object *O = R.objectOrNull();
    if (!O)
      return throwError("TypeError",
                        "cannot use 'in' operator on a non-object");
    std::string Name = toStringValue(L);
    if (Hooks)
      Hooks->onPropRead(O, Name, AccessOrigin::Plain);
    if (O->isArray()) {
      size_t Index;
      if (parseArrayIndex(Name, Index))
        return Completion::normal(Value(Index < O->elements().size()));
    }
    return Completion::normal(Value(O->findProperty(Name) != nullptr));
  }
  }
  return Completion::normal(Value());
}

Completion Interpreter::evalBinary(const Binary *B, Env *Scope) {
  Completion L = evalExpr(B->Lhs.get(), Scope);
  if (L.isThrow())
    return L;
  Completion R = evalExpr(B->Rhs.get(), Scope);
  if (R.isThrow())
    return R;
  return applyBinary(B->Op, L.V, R.V, B->line());
}

// ---------------------------------------------------------------------------
// Builtin methods
// ---------------------------------------------------------------------------

bool Interpreter::callBuiltinMethod(const Value &Base,
                                    const std::string &Name,
                                    std::vector<Value> &Args,
                                    Completion &Out) {
  auto Arg = [&](size_t I) { return I < Args.size() ? Args[I] : Value(); };

  if (Base.isString()) {
    const std::string &S = Base.asString();
    if (Name == "charAt") {
      double I = toNumber(Arg(0));
      size_t Index = (I >= 0 && I < static_cast<double>(S.size()))
                         ? static_cast<size_t>(I)
                         : S.size();
      Out = Completion::normal(Value(
          Index < S.size() ? std::string(1, S[Index]) : std::string()));
      return true;
    }
    if (Name == "charCodeAt") {
      double I = toNumber(Arg(0));
      if (I >= 0 && I < static_cast<double>(S.size()))
        Out = Completion::normal(Value(static_cast<double>(
            static_cast<unsigned char>(S[static_cast<size_t>(I)]))));
      else
        Out = Completion::normal(Value(std::nan("")));
      return true;
    }
    if (Name == "indexOf" || Name == "lastIndexOf") {
      std::string Needle = toStringValue(Arg(0));
      size_t Found = Name == "indexOf" ? S.find(Needle) : S.rfind(Needle);
      Out = Completion::normal(
          Value(Found == std::string::npos ? -1.0
                                           : static_cast<double>(Found)));
      return true;
    }
    if (Name == "substring" || Name == "slice" || Name == "substr") {
      double A = toNumber(Arg(0));
      if (std::isnan(A))
        A = 0;
      double Len = static_cast<double>(S.size());
      if (Name == "substr") {
        double Start = A < 0 ? std::max(0.0, Len + A) : std::min(A, Len);
        double Count = Args.size() > 1 ? toNumber(Arg(1)) : Len - Start;
        Count = std::max(0.0, std::min(Count, Len - Start));
        Out = Completion::normal(Value(S.substr(
            static_cast<size_t>(Start), static_cast<size_t>(Count))));
        return true;
      }
      double B = Args.size() > 1 ? toNumber(Arg(1)) : Len;
      if (Name == "slice") {
        if (A < 0)
          A = std::max(0.0, Len + A);
        if (B < 0)
          B = std::max(0.0, Len + B);
      }
      A = std::max(0.0, std::min(A, Len));
      B = std::max(0.0, std::min(B, Len));
      if (Name == "substring" && A > B)
        std::swap(A, B);
      if (A > B)
        B = A;
      Out = Completion::normal(Value(S.substr(
          static_cast<size_t>(A), static_cast<size_t>(B - A))));
      return true;
    }
    if (Name == "toLowerCase" || Name == "toUpperCase") {
      std::string R = S;
      for (char &C : R)
        C = static_cast<char>(
            Name == "toLowerCase"
                ? std::tolower(static_cast<unsigned char>(C))
                : std::toupper(static_cast<unsigned char>(C)));
      Out = Completion::normal(Value(std::move(R)));
      return true;
    }
    if (Name == "split") {
      Object *Arr = TheHeap.allocArray();
      if (Args.empty() || Arg(0).isUndefined()) {
        Arr->elements().push_back(Value(S));
      } else {
        std::string Sep = toStringValue(Arg(0));
        if (Sep.empty()) {
          for (char C : S)
            Arr->elements().push_back(Value(std::string(1, C)));
        } else {
          size_t Start = 0;
          for (;;) {
            size_t Hit = S.find(Sep, Start);
            if (Hit == std::string::npos) {
              Arr->elements().push_back(Value(S.substr(Start)));
              break;
            }
            Arr->elements().push_back(Value(S.substr(Start, Hit - Start)));
            Start = Hit + Sep.size();
          }
        }
      }
      Out = Completion::normal(Value(Arr));
      return true;
    }
    if (Name == "replace") {
      std::string Find = toStringValue(Arg(0));
      std::string Repl = toStringValue(Arg(1));
      std::string R = S;
      size_t Hit = R.find(Find);
      if (Hit != std::string::npos && !Find.empty())
        R = R.substr(0, Hit) + Repl + R.substr(Hit + Find.size());
      Out = Completion::normal(Value(std::move(R)));
      return true;
    }
    if (Name == "concat") {
      std::string R = S;
      for (Value &A : Args)
        R += toStringValue(A);
      Out = Completion::normal(Value(std::move(R)));
      return true;
    }
    if (Name == "trim") {
      size_t Begin = S.find_first_not_of(" \t\n\r\f\v");
      if (Begin == std::string::npos) {
        Out = Completion::normal(Value(std::string()));
        return true;
      }
      size_t End = S.find_last_not_of(" \t\n\r\f\v");
      Out = Completion::normal(Value(S.substr(Begin, End - Begin + 1)));
      return true;
    }
    if (Name == "toString") {
      Out = Completion::normal(Base);
      return true;
    }
    return false;
  }

  if (Base.isNumber()) {
    if (Name == "toFixed") {
      int Digits = static_cast<int>(toNumber(Arg(0)));
      if (Digits < 0 || Digits > 20)
        Digits = 0;
      Out = Completion::normal(
          Value(strFormat("%.*f", Digits, Base.asNumber())));
      return true;
    }
    if (Name == "toString") {
      Out = Completion::normal(Value(numberToString(Base.asNumber())));
      return true;
    }
    return false;
  }

  Object *O = Base.objectOrNull();
  if (!O)
    return false;

  if (O->isArray()) {
    std::vector<Value> &Elems = O->elements();
    if (Name == "push") {
      if (Hooks)
        Hooks->onPropWrite(O, "length", AccessOrigin::Plain);
      for (Value &A : Args)
        Elems.push_back(A);
      Out = Completion::normal(Value(static_cast<double>(Elems.size())));
      return true;
    }
    if (Name == "pop") {
      if (Hooks)
        Hooks->onPropWrite(O, "length", AccessOrigin::Plain);
      if (Elems.empty()) {
        Out = Completion::normal(Value());
        return true;
      }
      Value Last = Elems.back();
      Elems.pop_back();
      Out = Completion::normal(std::move(Last));
      return true;
    }
    if (Name == "shift") {
      if (Hooks)
        Hooks->onPropWrite(O, "length", AccessOrigin::Plain);
      if (Elems.empty()) {
        Out = Completion::normal(Value());
        return true;
      }
      Value First = Elems.front();
      Elems.erase(Elems.begin());
      Out = Completion::normal(std::move(First));
      return true;
    }
    if (Name == "unshift") {
      if (Hooks)
        Hooks->onPropWrite(O, "length", AccessOrigin::Plain);
      Elems.insert(Elems.begin(), Args.begin(), Args.end());
      Out = Completion::normal(Value(static_cast<double>(Elems.size())));
      return true;
    }
    if (Name == "join") {
      std::string Sep = Args.empty() ? "," : toStringValue(Arg(0));
      std::string R;
      for (size_t I = 0; I < Elems.size(); ++I) {
        if (I != 0)
          R += Sep;
        if (!Elems[I].isNullish())
          R += toStringValue(Elems[I]);
      }
      Out = Completion::normal(Value(std::move(R)));
      return true;
    }
    if (Name == "indexOf") {
      for (size_t I = 0; I < Elems.size(); ++I) {
        if (Elems[I].strictEquals(Arg(0))) {
          Out = Completion::normal(Value(static_cast<double>(I)));
          return true;
        }
      }
      Out = Completion::normal(Value(-1.0));
      return true;
    }
    if (Name == "slice") {
      double Len = static_cast<double>(Elems.size());
      double A = Args.empty() ? 0 : toNumber(Arg(0));
      double B = Args.size() > 1 ? toNumber(Arg(1)) : Len;
      if (A < 0)
        A = std::max(0.0, Len + A);
      if (B < 0)
        B = std::max(0.0, Len + B);
      A = std::min(A, Len);
      B = std::min(B, Len);
      Object *R = TheHeap.allocArray();
      for (double I = A; I < B; ++I)
        R->elements().push_back(Elems[static_cast<size_t>(I)]);
      Out = Completion::normal(Value(R));
      return true;
    }
    if (Name == "splice") {
      if (Hooks)
        Hooks->onPropWrite(O, "length", AccessOrigin::Plain);
      double Len = static_cast<double>(Elems.size());
      double Start = toNumber(Arg(0));
      if (Start < 0)
        Start = std::max(0.0, Len + Start);
      Start = std::min(Start, Len);
      double Count = Args.size() > 1 ? toNumber(Arg(1)) : Len - Start;
      Count = std::max(0.0, std::min(Count, Len - Start));
      Object *Removed = TheHeap.allocArray();
      auto First = Elems.begin() + static_cast<ptrdiff_t>(Start);
      auto Last = First + static_cast<ptrdiff_t>(Count);
      Removed->elements().assign(First, Last);
      std::vector<Value> Insert(Args.begin() + std::min<size_t>(2,
                                                               Args.size()),
                                Args.end());
      Elems.erase(First, Last);
      Elems.insert(Elems.begin() + static_cast<ptrdiff_t>(Start),
                   Insert.begin(), Insert.end());
      Out = Completion::normal(Value(Removed));
      return true;
    }
    if (Name == "concat") {
      Object *R = TheHeap.allocArray();
      R->elements() = Elems;
      for (Value &A : Args) {
        if (Object *AO = A.objectOrNull(); AO && AO->isArray())
          R->elements().insert(R->elements().end(), AO->elements().begin(),
                               AO->elements().end());
        else
          R->elements().push_back(A);
      }
      Out = Completion::normal(Value(R));
      return true;
    }
    if (Name == "reverse") {
      std::reverse(Elems.begin(), Elems.end());
      Out = Completion::normal(Base);
      return true;
    }
  }

  if (O->isCallable()) {
    if (Name == "call") {
      Value ThisV = Arg(0);
      std::vector<Value> Rest(Args.begin() + std::min<size_t>(1,
                                                              Args.size()),
                              Args.end());
      Out = callFunction(Base, std::move(ThisV), std::move(Rest));
      return true;
    }
    if (Name == "apply") {
      Value ThisV = Arg(0);
      std::vector<Value> Rest;
      if (Object *ArgsArr = Arg(1).objectOrNull();
          ArgsArr && ArgsArr->isArray())
        Rest = ArgsArr->elements();
      Out = callFunction(Base, std::move(ThisV), std::move(Rest));
      return true;
    }
  }

  if (Name == "hasOwnProperty") {
    std::string Prop = toStringValue(Arg(0));
    if (Hooks)
      Hooks->onPropRead(O, Prop, AccessOrigin::Plain);
    bool Has = O->findOwnProperty(Prop) != nullptr;
    if (!Has && O->isArray()) {
      size_t Index;
      Has = parseArrayIndex(Prop, Index) && Index < O->elements().size();
    }
    Out = Completion::normal(Value(Has));
    return true;
  }
  if (Name == "toString") {
    Out = Completion::normal(Value(toDisplayString(Base)));
    return true;
  }
  return false;
}

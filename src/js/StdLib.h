//===- js/StdLib.h - MiniJS standard library --------------------*- C++ -*-===//
//
// Part of the WebRacer reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Installs the browser-independent pieces of the JS standard library into
/// a global scope: Math (with a deterministic, seeded Math.random),
/// parseInt/parseFloat/isNaN, the String/Number/Boolean converters, and
/// Error/Array/Object constructors. Browser APIs (document, window,
/// setTimeout, ...) live in the runtime's bindings instead.
///
//===----------------------------------------------------------------------===//

#ifndef WEBRACER_JS_STDLIB_H
#define WEBRACER_JS_STDLIB_H

#include "js/Interpreter.h"

#include <cstdint>

namespace wr::js {

/// Installs the standard library into \p I's global environment.
/// \p RandomSeed seeds Math.random so whole-browser runs are replayable.
void installStdLib(Interpreter &I, uint64_t RandomSeed);

} // namespace wr::js

#endif // WEBRACER_JS_STDLIB_H

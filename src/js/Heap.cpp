//===- js/Heap.cpp - Mark/sweep GC heap for MiniJS --------------------------===//

#include "js/Heap.h"

#include <algorithm>

using namespace wr;
using namespace wr::js;

RootProvider::~RootProvider() = default;

void GcTracer::trace(GcObject *O) {
  if (!O || O->Marked)
    return;
  O->Marked = true;
  Worklist.push_back(O);
}

Heap::Heap() = default;
Heap::~Heap() = default;

template <typename T> T *Heap::track(T *Obj) {
  Objects.emplace_back(Obj);
  ++AllocsSinceGc;
  ++TotalAllocs;
  return Obj;
}

Object *Heap::allocObject() { return track(new Object(NextContainer++)); }

Object *Heap::allocArray() {
  Object *O = allocObject();
  O->makeArray();
  return O;
}

Object *Heap::allocFunction(const FunctionLiteral *Lit, Env *Closure) {
  Object *O = allocObject();
  Object::FunctionData Data;
  Data.Lit = Lit;
  Data.Closure = Closure;
  Data.FunctionId = ++FunctionCounter;
  O->setFunctionData(Data);
  return O;
}

Object *Heap::allocHostFunction(HostFn Fn, std::string Name) {
  Object *O = allocObject();
  O->setHostFunction(std::move(Fn), std::move(Name));
  return O;
}

Object *Heap::allocError(const char *Name, std::string Message) {
  Object *O = allocObject();
  O->setOwnProperty("name", Value(Name));
  O->setOwnProperty("message", Value(std::move(Message)));
  return O;
}

Env *Heap::allocEnv(Env *Parent) { return track(new Env(NextContainer++, Parent)); }

void Heap::addRootProvider(RootProvider *P) { Roots.push_back(P); }

void Heap::removeRootProvider(RootProvider *P) {
  Roots.erase(std::remove(Roots.begin(), Roots.end(), P), Roots.end());
}

void Heap::traceChildren(GcObject *O, GcTracer &T) {
  if (O->gcKind() == GcObject::Kind::Env) {
    auto *E = static_cast<Env *>(O);
    T.trace(E->parent());
    for (const Object::Property &S : E->slots())
      T.trace(S.V);
    return;
  }
  auto *Obj = static_cast<Object *>(O);
  T.trace(Obj->proto());
  for (const Object::Property &P : Obj->properties())
    T.trace(P.V);
  for (const Value &Elem : Obj->elements())
    T.trace(Elem);
  if (Obj->isScriptFunction())
    T.trace(Obj->functionData().Closure);
}

size_t Heap::collect() {
  // Mark.
  std::vector<GcObject *> Worklist;
  GcTracer Tracer(Worklist);
  for (RootProvider *P : Roots)
    P->traceRoots(Tracer);
  while (!Worklist.empty()) {
    GcObject *O = Worklist.back();
    Worklist.pop_back();
    traceChildren(O, Tracer);
  }
  // Sweep.
  size_t Before = Objects.size();
  Objects.erase(std::remove_if(Objects.begin(), Objects.end(),
                               [](const std::unique_ptr<GcObject> &O) {
                                 return !O->Marked;
                               }),
                Objects.end());
  for (const std::unique_ptr<GcObject> &O : Objects)
    O->Marked = false;
  AllocsSinceGc = 0;
  ++Collections;
  return Before - Objects.size();
}

void Heap::maybeCollect() {
  if (AllocsSinceGc >= Threshold)
    collect();
}

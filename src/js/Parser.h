//===- js/Parser.h - MiniJS recursive-descent parser ------------*- C++ -*-===//
//
// Part of the WebRacer reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A recursive-descent parser with precedence climbing for MiniJS. Errors
/// are collected as diagnostics and never abort the process; the page
/// loader treats a script that fails to parse like a browser does (the
/// script is skipped, the rest of the page continues).
///
//===----------------------------------------------------------------------===//

#ifndef WEBRACER_JS_PARSER_H
#define WEBRACER_JS_PARSER_H

#include "js/Ast.h"
#include "js/Lexer.h"

#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace wr::js {

/// A parse diagnostic.
struct Diag {
  std::string Message;
  uint32_t Line = 0;
  uint32_t Column = 0;
};

/// Result of parsing a program. \c Ast is null when parsing failed.
struct ParseResult {
  std::unique_ptr<Program> Ast;
  std::vector<Diag> Diags;

  bool ok() const { return Ast != nullptr && Diags.empty(); }
};

/// Parses MiniJS source text into an AST.
class Parser {
public:
  /// Parses a full program.
  static ParseResult parseProgram(std::string_view Source);

private:
  explicit Parser(std::string_view Source);

  // Token plumbing.
  const Token &cur() const { return Current; }
  const Token &ahead() const { return Next; }
  void bump();
  bool at(TokenKind Kind) const { return Current.Kind == Kind; }
  bool eat(TokenKind Kind);
  bool expect(TokenKind Kind, const char *Context);
  void error(std::string Message);
  void synchronize();

  // Statements.
  StmtPtr parseStatement();
  StmtPtr parseVarStatement();
  StmtPtr parseFunctionDeclaration();
  std::unique_ptr<Block> parseBlock();
  StmtPtr parseIf();
  StmtPtr parseWhile();
  StmtPtr parseDoWhile();
  StmtPtr parseFor();
  StmtPtr parseReturn();
  StmtPtr parseSwitch();
  StmtPtr parseThrow();
  StmtPtr parseTry();

  bool parseFunctionRest(FunctionLiteral &Fn, bool RequireName);

  // Expressions (precedence climbing).
  ExprPtr parseExpression();          // Comma sequences.
  ExprPtr parseAssignment();
  ExprPtr parseConditional();
  ExprPtr parseBinary(int MinPrec);
  ExprPtr parseUnary();
  ExprPtr parsePostfix();
  ExprPtr parseCallOrMember(ExprPtr Base, bool AllowCall);
  ExprPtr parseNew();
  ExprPtr parsePrimary();
  std::vector<ExprPtr> parseArguments();

  Lexer Lex;
  Token Current;
  Token Next;
  std::vector<Diag> Diags;
  int LoopDepth = 0;
  int FunctionDepth = 0;
};

} // namespace wr::js

#endif // WEBRACER_JS_PARSER_H

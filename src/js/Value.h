//===- js/Value.h - MiniJS values, objects, environments --------*- C++ -*-===//
//
// Part of the WebRacer reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The MiniJS runtime value model: tagged values, heap objects with
/// prototype chains, function objects (closures and host functions), and
/// scope environments. Objects and environments are garbage collected by
/// js/Heap.h.
///
/// Host integration: an Object may carry a HostClass pointer whose get/set
/// hooks intercept property access (how the runtime implements
/// element.value, document.getElementById, xhr.send, ...). This mirrors
/// the paper's need to observe accesses that "may access JavaScript heap
/// locations, browser-specific native data structures, or both" (Sec. 1).
///
//===----------------------------------------------------------------------===//

#ifndef WEBRACER_JS_VALUE_H
#define WEBRACER_JS_VALUE_H

#include "mem/Location.h"

#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <variant>
#include <vector>

namespace wr::js {

class Object;
class Env;
class Interpreter;
struct FunctionLiteral;

/// Tag types for the two nullish values.
struct JsUndefined {
  bool operator==(const JsUndefined &) const = default;
};
struct JsNull {
  bool operator==(const JsNull &) const = default;
};

/// A MiniJS value.
class Value {
public:
  Value() : Data(JsUndefined{}) {}
  Value(JsUndefined) : Data(JsUndefined{}) {}
  Value(JsNull) : Data(JsNull{}) {}
  Value(bool B) : Data(B) {}
  Value(double N) : Data(N) {}
  Value(int N) : Data(static_cast<double>(N)) {}
  Value(std::string S) : Data(std::move(S)) {}
  Value(const char *S) : Data(std::string(S)) {}
  Value(Object *O) : Data(O) { assert(O && "null Object*; use JsNull"); }

  static Value undefined() { return Value(); }
  static Value null() { return Value(JsNull{}); }

  bool isUndefined() const {
    return std::holds_alternative<JsUndefined>(Data);
  }
  bool isNull() const { return std::holds_alternative<JsNull>(Data); }
  bool isNullish() const { return isUndefined() || isNull(); }
  bool isBool() const { return std::holds_alternative<bool>(Data); }
  bool isNumber() const { return std::holds_alternative<double>(Data); }
  bool isString() const { return std::holds_alternative<std::string>(Data); }
  bool isObject() const { return std::holds_alternative<Object *>(Data); }

  bool asBool() const { return std::get<bool>(Data); }
  double asNumber() const { return std::get<double>(Data); }
  const std::string &asString() const { return std::get<std::string>(Data); }
  Object *asObject() const { return std::get<Object *>(Data); }

  /// Object pointer or null for every other kind.
  Object *objectOrNull() const {
    return isObject() ? std::get<Object *>(Data) : nullptr;
  }

  /// Strict (===) equality.
  bool strictEquals(const Value &Other) const;

private:
  std::variant<JsUndefined, JsNull, bool, double, std::string, Object *> Data;
};

/// Completion records replace C++ exceptions inside the interpreter
/// (uncaught Throw completions terminate the current *operation* only,
/// modeling the paper's "hidden crashes", Sec. 2.3).
enum class CompletionKind : uint8_t {
  Normal,
  Return,
  Break,
  Continue,
  Throw,
};

struct Completion {
  CompletionKind Kind = CompletionKind::Normal;
  Value V;

  static Completion normal(Value V = Value()) {
    return {CompletionKind::Normal, std::move(V)};
  }
  static Completion ret(Value V) {
    return {CompletionKind::Return, std::move(V)};
  }
  static Completion brk() { return {CompletionKind::Break, Value()}; }
  static Completion cont() { return {CompletionKind::Continue, Value()}; }
  static Completion thrown(Value V) {
    return {CompletionKind::Throw, std::move(V)};
  }

  bool isNormal() const { return Kind == CompletionKind::Normal; }
  bool isThrow() const { return Kind == CompletionKind::Throw; }
  bool isAbrupt() const { return Kind != CompletionKind::Normal; }
};

/// Base class for everything the GC manages.
class GcObject {
public:
  enum class Kind : uint8_t { Object, Env };

  virtual ~GcObject();
  Kind gcKind() const { return GKind; }
  ContainerId containerId() const { return CId; }

protected:
  GcObject(Kind K, ContainerId Id) : GKind(K), CId(Id) {}

private:
  friend class Heap;
  friend class GcTracer;
  Kind GKind;
  ContainerId CId;
  bool Marked = false;
};

/// Signature of a native (host) function.
using HostFn =
    std::function<Completion(Interpreter &, Value ThisV, std::vector<Value> &)>;

/// Property-access interception for host-backed objects (DOM wrappers,
/// document, window, XHR). A single static instance per binding type.
class HostClass {
public:
  virtual ~HostClass();

  /// The class name reported by typeof-ish diagnostics.
  virtual const char *name() const = 0;

  /// Intercepts a property read. Returns true if handled.
  virtual bool hostGet(Interpreter &I, Object *Self, const std::string &Name,
                       Value &Out) {
    (void)I;
    (void)Self;
    (void)Name;
    (void)Out;
    return false;
  }

  /// Intercepts a property write. Returns true if handled.
  virtual bool hostSet(Interpreter &I, Object *Self, const std::string &Name,
                       const Value &V) {
    (void)I;
    (void)Self;
    (void)Name;
    (void)V;
    return false;
  }
};

/// A heap object: property table, optional prototype, optional array
/// storage, optional callability, optional host backing.
class Object final : public GcObject {
public:
  struct Property {
    std::string Name;
    Value V;
  };

  /// Closure data for script functions. The FunctionLiteral is owned by a
  /// Program AST kept alive by the script registry.
  struct FunctionData {
    const FunctionLiteral *Lit = nullptr;
    Env *Closure = nullptr;
    uint64_t FunctionId = 0; ///< Stable identity for EventHandlerLoc.
  };

  // -- Plain properties ----------------------------------------------------

  /// Looks up an own property; null if absent.
  Value *findOwnProperty(const std::string &Name);
  const Value *findOwnProperty(const std::string &Name) const;

  /// Sets (creating if needed) an own property.
  void setOwnProperty(const std::string &Name, Value V);

  /// Removes an own property; true if it existed.
  bool deleteOwnProperty(const std::string &Name);

  /// Own property names in insertion order (array indices first).
  std::vector<std::string> ownPropertyNames() const;

  const std::vector<Property> &properties() const { return Props; }

  // -- Prototype chain -----------------------------------------------------

  Object *proto() const { return Proto; }
  void setProto(Object *P) { Proto = P; }

  /// Walks the prototype chain. Null if not found anywhere.
  Value *findProperty(const std::string &Name);

  // -- Arrays ----------------------------------------------------------------

  bool isArray() const { return IsArray; }
  void makeArray() { IsArray = true; }
  std::vector<Value> &elements() { return Elems; }
  const std::vector<Value> &elements() const { return Elems; }

  // -- Functions -------------------------------------------------------------

  bool isCallable() const { return Fn.Lit != nullptr || Native != nullptr; }
  bool isScriptFunction() const { return Fn.Lit != nullptr; }
  bool isHostFunction() const { return Native != nullptr; }

  const FunctionData &functionData() const { return Fn; }
  void setFunctionData(FunctionData Data) { Fn = Data; }
  const HostFn &hostFunction() const { return *Native; }
  void setHostFunction(HostFn F, std::string Name = "");
  const std::string &functionName() const { return FnName; }
  void setFunctionName(std::string Name) { FnName = std::move(Name); }

  /// A stable identity for handler locations: FunctionId for script
  /// functions, containerId() otherwise.
  uint64_t handlerIdentity() const {
    return Fn.FunctionId ? Fn.FunctionId : containerId();
  }

  // -- Host backing ----------------------------------------------------------

  const HostClass *hostClass() const { return Class; }
  void setHostClass(const HostClass *C) { Class = C; }
  NodeId domNode() const { return Dom; }
  void setDomNode(NodeId N) { Dom = N; }
  uint64_t hostInt() const { return HostInt; }
  void setHostInt(uint64_t V) { HostInt = V; }
  void *hostPtr() const { return HostPtr; }
  void setHostPtr(void *P) { HostPtr = P; }

private:
  friend class Heap;
  explicit Object(ContainerId Id) : GcObject(Kind::Object, Id) {}

  std::vector<Property> Props;
  Object *Proto = nullptr;
  std::vector<Value> Elems;
  bool IsArray = false;
  FunctionData Fn;
  std::unique_ptr<HostFn> Native;
  std::string FnName;
  const HostClass *Class = nullptr;
  NodeId Dom = InvalidNodeId;
  uint64_t HostInt = 0;
  void *HostPtr = nullptr;
};

/// A lexical scope: named slots plus a parent pointer. Environments are GC
/// objects because closures capture them; a captured environment accessed
/// from two operations is exactly the paper's "local variables shared
/// between operations via a closure" (Sec. 4.1).
class Env final : public GcObject {
public:
  Env *parent() const { return Parent; }

  /// Own slot lookup; null if absent.
  Value *findOwn(const std::string &Name);

  /// Defines (or overwrites) an own slot.
  void define(const std::string &Name, Value V);

  bool hasOwn(const std::string &Name) const;

  /// Walks the scope chain to the environment owning \p Name; null if
  /// undeclared everywhere.
  Env *resolve(const std::string &Name);

  const std::vector<Object::Property> &slots() const { return Slots; }

private:
  friend class Heap;
  Env(ContainerId Id, Env *Parent) : GcObject(Kind::Env, Id), Parent(Parent) {}

  Env *Parent;
  std::vector<Object::Property> Slots;
};

/// Converts a value to a display string (used by reports, alert, and
/// string concatenation).
std::string toDisplayString(const Value &V);

/// Converts a number to its JS string form (integers print without ".0").
std::string numberToString(double N);

/// typeof semantics.
const char *typeOf(const Value &V);

} // namespace wr::js

#endif // WEBRACER_JS_VALUE_H

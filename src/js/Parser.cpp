//===- js/Parser.cpp - MiniJS recursive-descent parser ---------------------===//

#include "js/Parser.h"

#include "support/Format.h"

using namespace wr;
using namespace wr::js;

Parser::Parser(std::string_view Source) : Lex(Source) {
  Current = Lex.next();
  Next = Lex.next();
}

void Parser::bump() {
  Current = Next;
  if (Current.Kind != TokenKind::Eof && Current.Kind != TokenKind::Error)
    Next = Lex.next();
  else
    Next = Current;
}

bool Parser::eat(TokenKind Kind) {
  if (!at(Kind))
    return false;
  bump();
  return true;
}

bool Parser::expect(TokenKind Kind, const char *Context) {
  if (eat(Kind))
    return true;
  error(strFormat("expected %s %s, found %s", tokenKindName(Kind), Context,
                  tokenKindName(cur().Kind)));
  return false;
}

void Parser::error(std::string Message) {
  // Cap diagnostics so a badly broken script cannot flood reports.
  if (Diags.size() < 32)
    Diags.push_back({std::move(Message), cur().Line, cur().Column});
}

void Parser::synchronize() {
  // Skip to a statement boundary.
  while (!at(TokenKind::Eof) && !at(TokenKind::Error)) {
    if (eat(TokenKind::Semicolon))
      return;
    if (at(TokenKind::RBrace))
      return;
    bump();
  }
}

ParseResult Parser::parseProgram(std::string_view Source) {
  Parser P(Source);
  auto Prog = std::make_unique<Program>();
  while (!P.at(TokenKind::Eof)) {
    if (P.at(TokenKind::Error)) {
      P.error(P.cur().Text);
      break;
    }
    size_t DiagsBefore = P.Diags.size();
    StmtPtr S = P.parseStatement();
    if (S)
      Prog->Body.push_back(std::move(S));
    if (P.Diags.size() > DiagsBefore)
      P.synchronize();
  }
  ParseResult Result;
  Result.Diags = std::move(P.Diags);
  if (Result.Diags.empty())
    Result.Ast = std::move(Prog);
  return Result;
}

// --------------------------------------------------------------------------
// Statements
// --------------------------------------------------------------------------

StmtPtr Parser::parseStatement() {
  uint32_t Line = cur().Line;
  switch (cur().Kind) {
  case TokenKind::Semicolon:
    bump();
    return std::make_unique<Empty>(Line);
  case TokenKind::LBrace:
    return parseBlock();
  case TokenKind::KwVar:
    return parseVarStatement();
  case TokenKind::KwFunction:
    return parseFunctionDeclaration();
  case TokenKind::KwIf:
    return parseIf();
  case TokenKind::KwWhile:
    return parseWhile();
  case TokenKind::KwDo:
    return parseDoWhile();
  case TokenKind::KwFor:
    return parseFor();
  case TokenKind::KwReturn:
    return parseReturn();
  case TokenKind::KwBreak:
    bump();
    if (LoopDepth == 0)
      error("'break' outside of a loop or switch");
    eat(TokenKind::Semicolon);
    return std::make_unique<Break>(Line);
  case TokenKind::KwContinue:
    bump();
    if (LoopDepth == 0)
      error("'continue' outside of a loop");
    eat(TokenKind::Semicolon);
    return std::make_unique<Continue>(Line);
  case TokenKind::KwSwitch:
    return parseSwitch();
  case TokenKind::KwThrow:
    return parseThrow();
  case TokenKind::KwTry:
    return parseTry();
  default: {
    ExprPtr E = parseExpression();
    if (!E)
      return nullptr;
    eat(TokenKind::Semicolon);
    return std::make_unique<ExprStmt>(std::move(E), Line);
  }
  }
}

StmtPtr Parser::parseVarStatement() {
  uint32_t Line = cur().Line;
  bump(); // var
  std::vector<VarDecl::Declarator> Decls;
  do {
    if (!at(TokenKind::Identifier)) {
      error("expected variable name after 'var'");
      break;
    }
    VarDecl::Declarator D;
    D.Name = cur().Text;
    bump();
    if (eat(TokenKind::Assign))
      D.Init = parseAssignment();
    Decls.push_back(std::move(D));
  } while (eat(TokenKind::Comma));
  eat(TokenKind::Semicolon);
  return std::make_unique<VarDecl>(std::move(Decls), Line);
}

bool Parser::parseFunctionRest(FunctionLiteral &Fn, bool RequireName) {
  if (at(TokenKind::Identifier)) {
    Fn.Name = cur().Text;
    bump();
  } else if (RequireName) {
    error("expected function name");
    return false;
  }
  if (!expect(TokenKind::LParen, "after function name"))
    return false;
  if (!at(TokenKind::RParen)) {
    do {
      if (!at(TokenKind::Identifier)) {
        error("expected parameter name");
        return false;
      }
      Fn.Params.push_back(cur().Text);
      bump();
    } while (eat(TokenKind::Comma));
  }
  if (!expect(TokenKind::RParen, "after parameters"))
    return false;
  if (!at(TokenKind::LBrace)) {
    error("expected '{' to begin function body");
    return false;
  }
  ++FunctionDepth;
  int SavedLoopDepth = LoopDepth;
  LoopDepth = 0;
  Fn.Body = parseBlock();
  LoopDepth = SavedLoopDepth;
  --FunctionDepth;
  return Fn.Body != nullptr;
}

StmtPtr Parser::parseFunctionDeclaration() {
  uint32_t Line = cur().Line;
  bump(); // function
  FunctionLiteral Fn;
  if (!parseFunctionRest(Fn, /*RequireName=*/true))
    return nullptr;
  return std::make_unique<FunctionDecl>(std::move(Fn), Line);
}

std::unique_ptr<Block> Parser::parseBlock() {
  uint32_t Line = cur().Line;
  if (!expect(TokenKind::LBrace, "to begin block"))
    return nullptr;
  std::vector<StmtPtr> Stmts;
  while (!at(TokenKind::RBrace) && !at(TokenKind::Eof) &&
         !at(TokenKind::Error)) {
    size_t DiagsBefore = Diags.size();
    StmtPtr S = parseStatement();
    if (S)
      Stmts.push_back(std::move(S));
    if (Diags.size() > DiagsBefore)
      synchronize();
  }
  expect(TokenKind::RBrace, "to end block");
  return std::make_unique<Block>(std::move(Stmts), Line);
}

StmtPtr Parser::parseIf() {
  uint32_t Line = cur().Line;
  bump(); // if
  if (!expect(TokenKind::LParen, "after 'if'"))
    return nullptr;
  ExprPtr Cond = parseExpression();
  expect(TokenKind::RParen, "after if condition");
  StmtPtr Then = parseStatement();
  StmtPtr Else;
  if (eat(TokenKind::KwElse))
    Else = parseStatement();
  return std::make_unique<If>(std::move(Cond), std::move(Then),
                              std::move(Else), Line);
}

StmtPtr Parser::parseWhile() {
  uint32_t Line = cur().Line;
  bump(); // while
  if (!expect(TokenKind::LParen, "after 'while'"))
    return nullptr;
  ExprPtr Cond = parseExpression();
  expect(TokenKind::RParen, "after while condition");
  ++LoopDepth;
  StmtPtr Body = parseStatement();
  --LoopDepth;
  return std::make_unique<While>(std::move(Cond), std::move(Body), Line);
}

StmtPtr Parser::parseDoWhile() {
  uint32_t Line = cur().Line;
  bump(); // do
  ++LoopDepth;
  StmtPtr Body = parseStatement();
  --LoopDepth;
  expect(TokenKind::KwWhile, "after do-while body");
  expect(TokenKind::LParen, "after 'while'");
  ExprPtr Cond = parseExpression();
  expect(TokenKind::RParen, "after do-while condition");
  eat(TokenKind::Semicolon);
  return std::make_unique<DoWhile>(std::move(Body), std::move(Cond), Line);
}

StmtPtr Parser::parseFor() {
  uint32_t Line = cur().Line;
  bump(); // for
  if (!expect(TokenKind::LParen, "after 'for'"))
    return nullptr;

  // Disambiguate for-in from the classic three-clause for.
  if (at(TokenKind::KwVar) && ahead().Kind == TokenKind::Identifier) {
    // Could be `for (var x in e)` - peek requires a third token; parse the
    // var declarator and check for `in`.
    uint32_t VarLine = cur().Line;
    bump(); // var
    std::string Name = cur().Text;
    bump(); // identifier
    if (eat(TokenKind::KwIn)) {
      ExprPtr Object = parseExpression();
      expect(TokenKind::RParen, "after for-in object");
      ++LoopDepth;
      StmtPtr Body = parseStatement();
      --LoopDepth;
      return std::make_unique<ForIn>(std::move(Name), /*DeclaresVar=*/true,
                                     std::move(Object), std::move(Body),
                                     Line);
    }
    // Classic for with a var init: finish the declarator list.
    std::vector<VarDecl::Declarator> Decls;
    VarDecl::Declarator First;
    First.Name = std::move(Name);
    if (eat(TokenKind::Assign))
      First.Init = parseAssignment();
    Decls.push_back(std::move(First));
    while (eat(TokenKind::Comma)) {
      if (!at(TokenKind::Identifier)) {
        error("expected variable name in for initializer");
        break;
      }
      VarDecl::Declarator D;
      D.Name = cur().Text;
      bump();
      if (eat(TokenKind::Assign))
        D.Init = parseAssignment();
      Decls.push_back(std::move(D));
    }
    expect(TokenKind::Semicolon, "after for initializer");
    StmtPtr Init = std::make_unique<VarDecl>(std::move(Decls), VarLine);
    ExprPtr Cond;
    if (!at(TokenKind::Semicolon))
      Cond = parseExpression();
    expect(TokenKind::Semicolon, "after for condition");
    ExprPtr Step;
    if (!at(TokenKind::RParen))
      Step = parseExpression();
    expect(TokenKind::RParen, "after for clauses");
    ++LoopDepth;
    StmtPtr Body = parseStatement();
    --LoopDepth;
    return std::make_unique<For>(std::move(Init), std::move(Cond),
                                 std::move(Step), std::move(Body), Line);
  }

  if (at(TokenKind::Identifier) && ahead().Kind == TokenKind::KwIn) {
    std::string Name = cur().Text;
    bump(); // identifier
    bump(); // in
    ExprPtr Object = parseExpression();
    expect(TokenKind::RParen, "after for-in object");
    ++LoopDepth;
    StmtPtr Body = parseStatement();
    --LoopDepth;
    return std::make_unique<ForIn>(std::move(Name), /*DeclaresVar=*/false,
                                   std::move(Object), std::move(Body), Line);
  }

  StmtPtr Init;
  if (!at(TokenKind::Semicolon)) {
    uint32_t InitLine = cur().Line;
    ExprPtr E = parseExpression();
    Init = std::make_unique<ExprStmt>(std::move(E), InitLine);
  }
  expect(TokenKind::Semicolon, "after for initializer");
  ExprPtr Cond;
  if (!at(TokenKind::Semicolon))
    Cond = parseExpression();
  expect(TokenKind::Semicolon, "after for condition");
  ExprPtr Step;
  if (!at(TokenKind::RParen))
    Step = parseExpression();
  expect(TokenKind::RParen, "after for clauses");
  ++LoopDepth;
  StmtPtr Body = parseStatement();
  --LoopDepth;
  return std::make_unique<For>(std::move(Init), std::move(Cond),
                               std::move(Step), std::move(Body), Line);
}

StmtPtr Parser::parseReturn() {
  uint32_t Line = cur().Line;
  bump(); // return
  if (FunctionDepth == 0)
    error("'return' outside of a function");
  ExprPtr Value;
  if (!at(TokenKind::Semicolon) && !at(TokenKind::RBrace) &&
      !at(TokenKind::Eof))
    Value = parseExpression();
  eat(TokenKind::Semicolon);
  return std::make_unique<Return>(std::move(Value), Line);
}

StmtPtr Parser::parseSwitch() {
  uint32_t Line = cur().Line;
  bump(); // switch
  expect(TokenKind::LParen, "after 'switch'");
  ExprPtr Disc = parseExpression();
  expect(TokenKind::RParen, "after switch discriminant");
  expect(TokenKind::LBrace, "to begin switch body");
  std::vector<Switch::CaseClause> Cases;
  bool SawDefault = false;
  ++LoopDepth; // break is legal inside switch.
  while (!at(TokenKind::RBrace) && !at(TokenKind::Eof) &&
         !at(TokenKind::Error)) {
    Switch::CaseClause Clause;
    if (eat(TokenKind::KwCase)) {
      Clause.Test = parseExpression();
    } else if (eat(TokenKind::KwDefault)) {
      if (SawDefault)
        error("multiple 'default' clauses in switch");
      SawDefault = true;
    } else {
      error("expected 'case' or 'default' in switch body");
      break;
    }
    expect(TokenKind::Colon, "after case label");
    while (!at(TokenKind::KwCase) && !at(TokenKind::KwDefault) &&
           !at(TokenKind::RBrace) && !at(TokenKind::Eof) &&
           !at(TokenKind::Error)) {
      StmtPtr S = parseStatement();
      if (S)
        Clause.Body.push_back(std::move(S));
      else
        break;
    }
    Cases.push_back(std::move(Clause));
  }
  --LoopDepth;
  expect(TokenKind::RBrace, "to end switch body");
  return std::make_unique<Switch>(std::move(Disc), std::move(Cases), Line);
}

StmtPtr Parser::parseThrow() {
  uint32_t Line = cur().Line;
  bump(); // throw
  ExprPtr Value = parseExpression();
  eat(TokenKind::Semicolon);
  return std::make_unique<Throw>(std::move(Value), Line);
}

StmtPtr Parser::parseTry() {
  uint32_t Line = cur().Line;
  bump(); // try
  std::unique_ptr<Block> Body = parseBlock();
  std::string CatchVar;
  std::unique_ptr<Block> Catch;
  std::unique_ptr<Block> Finally;
  if (eat(TokenKind::KwCatch)) {
    expect(TokenKind::LParen, "after 'catch'");
    if (at(TokenKind::Identifier)) {
      CatchVar = cur().Text;
      bump();
    } else {
      error("expected catch parameter name");
    }
    expect(TokenKind::RParen, "after catch parameter");
    Catch = parseBlock();
  }
  if (eat(TokenKind::KwFinally))
    Finally = parseBlock();
  if (!Catch && !Finally)
    error("'try' requires 'catch' or 'finally'");
  return std::make_unique<Try>(std::move(Body), std::move(CatchVar),
                               std::move(Catch), std::move(Finally), Line);
}

// --------------------------------------------------------------------------
// Expressions
// --------------------------------------------------------------------------

ExprPtr Parser::parseExpression() {
  uint32_t Line = cur().Line;
  ExprPtr First = parseAssignment();
  if (!First || !at(TokenKind::Comma))
    return First;
  std::vector<ExprPtr> Exprs;
  Exprs.push_back(std::move(First));
  while (eat(TokenKind::Comma)) {
    ExprPtr E = parseAssignment();
    if (!E)
      break;
    Exprs.push_back(std::move(E));
  }
  return std::make_unique<Sequence>(std::move(Exprs), Line);
}

static bool isAssignableTarget(const Expr *E) {
  return isa<Ident>(E) || isa<Member>(E) || isa<Index>(E);
}

ExprPtr Parser::parseAssignment() {
  uint32_t Line = cur().Line;
  ExprPtr Lhs = parseConditional();
  if (!Lhs)
    return nullptr;
  AssignOp Op;
  switch (cur().Kind) {
  case TokenKind::Assign:
    Op = AssignOp::Assign;
    break;
  case TokenKind::PlusAssign:
    Op = AssignOp::Add;
    break;
  case TokenKind::MinusAssign:
    Op = AssignOp::Sub;
    break;
  case TokenKind::StarAssign:
    Op = AssignOp::Mul;
    break;
  case TokenKind::SlashAssign:
    Op = AssignOp::Div;
    break;
  case TokenKind::PercentAssign:
    Op = AssignOp::Mod;
    break;
  default:
    return Lhs;
  }
  if (!isAssignableTarget(Lhs.get()))
    error("invalid assignment target");
  bump();
  ExprPtr Rhs = parseAssignment();
  return std::make_unique<Assign>(Op, std::move(Lhs), std::move(Rhs), Line);
}

ExprPtr Parser::parseConditional() {
  uint32_t Line = cur().Line;
  ExprPtr Cond = parseBinary(0);
  if (!Cond || !eat(TokenKind::Question))
    return Cond;
  ExprPtr Then = parseAssignment();
  expect(TokenKind::Colon, "in conditional expression");
  ExprPtr Else = parseAssignment();
  return std::make_unique<Conditional>(std::move(Cond), std::move(Then),
                                       std::move(Else), Line);
}

namespace {
struct BinOpInfo {
  int Prec; ///< Higher binds tighter; -1 = not a binary operator.
  BinaryOp Op;
  bool IsLogical;
  LogicalOp LOp;
};
} // namespace

static BinOpInfo binOpInfo(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::PipePipe:
    return {1, BinaryOp::Add, true, LogicalOp::Or};
  case TokenKind::AmpAmp:
    return {2, BinaryOp::Add, true, LogicalOp::And};
  case TokenKind::Pipe:
    return {3, BinaryOp::BitOr, false, LogicalOp::Or};
  case TokenKind::Caret:
    return {4, BinaryOp::BitXor, false, LogicalOp::Or};
  case TokenKind::Amp:
    return {5, BinaryOp::BitAnd, false, LogicalOp::Or};
  case TokenKind::EqEq:
    return {6, BinaryOp::Eq, false, LogicalOp::Or};
  case TokenKind::NotEq:
    return {6, BinaryOp::Ne, false, LogicalOp::Or};
  case TokenKind::EqEqEq:
    return {6, BinaryOp::StrictEq, false, LogicalOp::Or};
  case TokenKind::NotEqEq:
    return {6, BinaryOp::StrictNe, false, LogicalOp::Or};
  case TokenKind::Less:
    return {7, BinaryOp::Lt, false, LogicalOp::Or};
  case TokenKind::Greater:
    return {7, BinaryOp::Gt, false, LogicalOp::Or};
  case TokenKind::LessEq:
    return {7, BinaryOp::Le, false, LogicalOp::Or};
  case TokenKind::GreaterEq:
    return {7, BinaryOp::Ge, false, LogicalOp::Or};
  case TokenKind::KwInstanceof:
    return {7, BinaryOp::InstanceOf, false, LogicalOp::Or};
  case TokenKind::KwIn:
    return {7, BinaryOp::In, false, LogicalOp::Or};
  case TokenKind::Shl:
    return {8, BinaryOp::Shl, false, LogicalOp::Or};
  case TokenKind::Shr:
    return {8, BinaryOp::Shr, false, LogicalOp::Or};
  case TokenKind::UShr:
    return {8, BinaryOp::UShr, false, LogicalOp::Or};
  case TokenKind::Plus:
    return {9, BinaryOp::Add, false, LogicalOp::Or};
  case TokenKind::Minus:
    return {9, BinaryOp::Sub, false, LogicalOp::Or};
  case TokenKind::Star:
    return {10, BinaryOp::Mul, false, LogicalOp::Or};
  case TokenKind::Slash:
    return {10, BinaryOp::Div, false, LogicalOp::Or};
  case TokenKind::Percent:
    return {10, BinaryOp::Mod, false, LogicalOp::Or};
  default:
    return {-1, BinaryOp::Add, false, LogicalOp::Or};
  }
}

ExprPtr Parser::parseBinary(int MinPrec) {
  ExprPtr Lhs = parseUnary();
  if (!Lhs)
    return nullptr;
  for (;;) {
    BinOpInfo Info = binOpInfo(cur().Kind);
    if (Info.Prec < 0 || Info.Prec < MinPrec)
      return Lhs;
    uint32_t Line = cur().Line;
    bump();
    ExprPtr Rhs = parseBinary(Info.Prec + 1);
    if (!Rhs)
      return Lhs;
    if (Info.IsLogical)
      Lhs = std::make_unique<Logical>(Info.LOp, std::move(Lhs),
                                      std::move(Rhs), Line);
    else
      Lhs = std::make_unique<Binary>(Info.Op, std::move(Lhs), std::move(Rhs),
                                     Line);
  }
}

ExprPtr Parser::parseUnary() {
  uint32_t Line = cur().Line;
  switch (cur().Kind) {
  case TokenKind::Minus:
    bump();
    return std::make_unique<Unary>(UnaryOp::Neg, parseUnary(), Line);
  case TokenKind::Plus:
    bump();
    return std::make_unique<Unary>(UnaryOp::Plus, parseUnary(), Line);
  case TokenKind::Not:
    bump();
    return std::make_unique<Unary>(UnaryOp::Not, parseUnary(), Line);
  case TokenKind::Tilde:
    bump();
    return std::make_unique<Unary>(UnaryOp::BitNot, parseUnary(), Line);
  case TokenKind::KwTypeof:
    bump();
    return std::make_unique<Unary>(UnaryOp::TypeOf, parseUnary(), Line);
  case TokenKind::KwVoid:
    bump();
    return std::make_unique<Unary>(UnaryOp::Void, parseUnary(), Line);
  case TokenKind::KwDelete:
    bump();
    return std::make_unique<Unary>(UnaryOp::Delete, parseUnary(), Line);
  case TokenKind::PlusPlus:
    bump();
    return std::make_unique<Update>(/*IsIncrement=*/true, /*IsPrefix=*/true,
                                    parseUnary(), Line);
  case TokenKind::MinusMinus:
    bump();
    return std::make_unique<Update>(/*IsIncrement=*/false, /*IsPrefix=*/true,
                                    parseUnary(), Line);
  default:
    return parsePostfix();
  }
}

ExprPtr Parser::parsePostfix() {
  uint32_t Line = cur().Line;
  ExprPtr E;
  if (at(TokenKind::KwNew))
    E = parseNew();
  else
    E = parseCallOrMember(parsePrimary(), /*AllowCall=*/true);
  if (!E)
    return nullptr;
  if (at(TokenKind::PlusPlus) || at(TokenKind::MinusMinus)) {
    bool IsIncrement = at(TokenKind::PlusPlus);
    if (!isAssignableTarget(E.get()))
      error("invalid increment/decrement target");
    bump();
    return std::make_unique<Update>(IsIncrement, /*IsPrefix=*/false,
                                    std::move(E), Line);
  }
  return E;
}

ExprPtr Parser::parseNew() {
  uint32_t Line = cur().Line;
  bump(); // new
  // `new` binds to a member expression (no calls) then optional arguments.
  ExprPtr Callee;
  if (at(TokenKind::KwNew))
    Callee = parseNew();
  else
    Callee = parseCallOrMember(parsePrimary(), /*AllowCall=*/false);
  if (!Callee)
    return nullptr;
  std::vector<ExprPtr> Args;
  if (at(TokenKind::LParen))
    Args = parseArguments();
  ExprPtr Result =
      std::make_unique<New>(std::move(Callee), std::move(Args), Line);
  // Member/call chains may continue after `new X()`.
  return parseCallOrMember(std::move(Result), /*AllowCall=*/true);
}

std::vector<ExprPtr> Parser::parseArguments() {
  std::vector<ExprPtr> Args;
  expect(TokenKind::LParen, "to begin arguments");
  if (!at(TokenKind::RParen)) {
    do {
      ExprPtr Arg = parseAssignment();
      if (!Arg)
        break;
      Args.push_back(std::move(Arg));
    } while (eat(TokenKind::Comma));
  }
  expect(TokenKind::RParen, "to end arguments");
  return Args;
}

ExprPtr Parser::parseCallOrMember(ExprPtr Base, bool AllowCall) {
  if (!Base)
    return nullptr;
  for (;;) {
    uint32_t Line = cur().Line;
    if (eat(TokenKind::Dot)) {
      // Allow a few keywords as property names (obj.in, obj.delete).
      std::string Name;
      if (at(TokenKind::Identifier))
        Name = cur().Text;
      else if (at(TokenKind::KwIn))
        Name = "in";
      else if (at(TokenKind::KwDelete))
        Name = "delete";
      else if (at(TokenKind::KwDefault))
        Name = "default";
      else {
        error("expected property name after '.'");
        return Base;
      }
      bump();
      Base = std::make_unique<Member>(std::move(Base), std::move(Name), Line);
      continue;
    }
    if (eat(TokenKind::LBracket)) {
      ExprPtr Key = parseExpression();
      expect(TokenKind::RBracket, "after index expression");
      Base = std::make_unique<Index>(std::move(Base), std::move(Key), Line);
      continue;
    }
    if (AllowCall && at(TokenKind::LParen)) {
      std::vector<ExprPtr> Args = parseArguments();
      Base = std::make_unique<Call>(std::move(Base), std::move(Args), Line);
      continue;
    }
    return Base;
  }
}

ExprPtr Parser::parsePrimary() {
  uint32_t Line = cur().Line;
  switch (cur().Kind) {
  case TokenKind::Number: {
    double V = cur().NumValue;
    bump();
    return std::make_unique<NumberLit>(V, Line);
  }
  case TokenKind::String: {
    std::string V = cur().Text;
    bump();
    return std::make_unique<StringLit>(std::move(V), Line);
  }
  case TokenKind::KwTrue:
    bump();
    return std::make_unique<BoolLit>(true, Line);
  case TokenKind::KwFalse:
    bump();
    return std::make_unique<BoolLit>(false, Line);
  case TokenKind::KwNull:
    bump();
    return std::make_unique<NullLit>(Line);
  case TokenKind::KwUndefined:
    bump();
    return std::make_unique<UndefinedLit>(Line);
  case TokenKind::KwThis:
    bump();
    return std::make_unique<ThisExpr>(Line);
  case TokenKind::Identifier: {
    std::string Name = cur().Text;
    bump();
    return std::make_unique<Ident>(std::move(Name), Line);
  }
  case TokenKind::LParen: {
    bump();
    ExprPtr E = parseExpression();
    expect(TokenKind::RParen, "to close parenthesized expression");
    return E;
  }
  case TokenKind::LBracket: {
    bump();
    std::vector<ExprPtr> Elems;
    if (!at(TokenKind::RBracket)) {
      do {
        if (at(TokenKind::RBracket))
          break; // Trailing comma.
        ExprPtr Elem = parseAssignment();
        if (!Elem)
          break;
        Elems.push_back(std::move(Elem));
      } while (eat(TokenKind::Comma));
    }
    expect(TokenKind::RBracket, "to close array literal");
    return std::make_unique<ArrayLit>(std::move(Elems), Line);
  }
  case TokenKind::LBrace: {
    bump();
    std::vector<ObjectLit::Property> Props;
    if (!at(TokenKind::RBrace)) {
      do {
        if (at(TokenKind::RBrace))
          break; // Trailing comma.
        ObjectLit::Property Prop;
        if (at(TokenKind::Identifier) || at(TokenKind::String)) {
          Prop.Key = cur().Text;
          bump();
        } else if (at(TokenKind::Number)) {
          Prop.Key = strFormat("%g", cur().NumValue);
          bump();
        } else {
          error("expected property key in object literal");
          break;
        }
        expect(TokenKind::Colon, "after property key");
        Prop.Value = parseAssignment();
        Props.push_back(std::move(Prop));
      } while (eat(TokenKind::Comma));
    }
    expect(TokenKind::RBrace, "to close object literal");
    return std::make_unique<ObjectLit>(std::move(Props), Line);
  }
  case TokenKind::KwFunction: {
    bump();
    FunctionLiteral Fn;
    if (!parseFunctionRest(Fn, /*RequireName=*/false))
      return nullptr;
    return std::make_unique<FunctionExpr>(std::move(Fn), Line);
  }
  case TokenKind::Error:
    error(cur().Text);
    return nullptr;
  default:
    error(strFormat("unexpected %s in expression",
                    tokenKindName(cur().Kind)));
    bump();
    return nullptr;
  }
}

//===- js/AstVisitor.h - Const walker over the MiniJS AST -------*- C++ -*-===//
//
// Part of the WebRacer reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A reusable, read-only recursive walker over the MiniJS AST. The
/// traversal order is pre-order, left to right, matching source order,
/// with the recursion owned entirely by the base class: subclasses
/// override the before/after hooks and never reimplement child walking.
/// Returning false from a before-hook skips the node's children, which
/// lets a pass take over a subtree manually (the effect-set pass uses
/// this to give assignment targets write semantics).
///
/// This is shared infrastructure: the static race analyzer's effect-set
/// pass (src/analysis) is the first client; lint or instrumentation
/// passes can build on the same walker.
///
//===----------------------------------------------------------------------===//

#ifndef WEBRACER_JS_ASTVISITOR_H
#define WEBRACER_JS_ASTVISITOR_H

#include "js/Ast.h"

namespace wr::js {

/// Read-only recursive AST walker. See file comment for the contract.
class ConstAstVisitor {
public:
  virtual ~ConstAstVisitor();

  /// Walks every top-level statement of \p P in order.
  void walk(const Program &P);

  /// Walks one statement subtree. Null-safe (no-op on null).
  void walkStmt(const Stmt *S);

  /// Walks one expression subtree. Null-safe (no-op on null).
  void walkExpr(const Expr *E);

  /// Walks a function literal: enter/leave hooks around the body. Used
  /// both for FunctionDecl and FunctionExpr, and callable directly for
  /// detached function literals (event-handler bodies).
  void walkFunction(const FunctionLiteral &Fn);

protected:
  /// Called before a statement's children are walked; return false to
  /// skip them.
  virtual bool beforeStmt(const Stmt &S) {
    (void)S;
    return true;
  }

  /// Called after a statement's children were walked (not called when
  /// beforeStmt returned false).
  virtual void afterStmt(const Stmt &S) { (void)S; }

  /// Called before an expression's children are walked; return false to
  /// skip them.
  virtual bool beforeExpr(const Expr &E) {
    (void)E;
    return true;
  }

  /// Called after an expression's children were walked.
  virtual void afterExpr(const Expr &E) { (void)E; }

  /// Called when entering a function literal (decl, expr, or detached
  /// body); return false to skip walking the body.
  virtual bool enterFunction(const FunctionLiteral &Fn) {
    (void)Fn;
    return true;
  }

  /// Called when leaving a function literal whose body was walked.
  virtual void leaveFunction(const FunctionLiteral &Fn) { (void)Fn; }
};

} // namespace wr::js

#endif // WEBRACER_JS_ASTVISITOR_H

//===- js/Token.h - MiniJS token definitions --------------------*- C++ -*-===//
//
// Part of the WebRacer reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Token kinds for MiniJS, the JavaScript subset interpreted by the
/// simulated browser. The subset covers the constructs real pages in the
/// paper's evaluation rely on: functions/closures, objects/arrays,
/// prototypes, hoisting, the full expression grammar, and control flow.
///
//===----------------------------------------------------------------------===//

#ifndef WEBRACER_JS_TOKEN_H
#define WEBRACER_JS_TOKEN_H

#include <cstdint>
#include <string>

namespace wr::js {

enum class TokenKind : uint8_t {
  Eof,
  Error,

  Identifier,
  Number,
  String,

  // Keywords.
  KwVar,
  KwFunction,
  KwReturn,
  KwIf,
  KwElse,
  KwWhile,
  KwDo,
  KwFor,
  KwIn,
  KwBreak,
  KwContinue,
  KwNew,
  KwDelete,
  KwTypeof,
  KwVoid,
  KwThis,
  KwNull,
  KwTrue,
  KwFalse,
  KwUndefined,
  KwSwitch,
  KwCase,
  KwDefault,
  KwTry,
  KwCatch,
  KwFinally,
  KwThrow,
  KwInstanceof,

  // Punctuation and operators.
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Semicolon,
  Comma,
  Dot,
  Question,
  Colon,

  Assign,        // =
  PlusAssign,    // +=
  MinusAssign,   // -=
  StarAssign,    // *=
  SlashAssign,   // /=
  PercentAssign, // %=

  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  PlusPlus,
  MinusMinus,

  EqEq,       // ==
  NotEq,      // !=
  EqEqEq,     // ===
  NotEqEq,    // !==
  Less,
  Greater,
  LessEq,
  GreaterEq,

  AmpAmp,     // &&
  PipePipe,   // ||
  Not,        // !

  Amp,        // &
  Pipe,       // |
  Caret,      // ^
  Tilde,      // ~
  Shl,        // <<
  Shr,        // >>
  UShr,       // >>>
};

/// One lexed token. Literals carry their decoded payload.
struct Token {
  TokenKind Kind = TokenKind::Eof;
  std::string Text;    ///< Identifier spelling or decoded string literal.
  double NumValue = 0; ///< For Number tokens.
  uint32_t Line = 1;
  uint32_t Column = 1;
};

/// Spelling of a token kind for diagnostics.
const char *tokenKindName(TokenKind Kind);

} // namespace wr::js

#endif // WEBRACER_JS_TOKEN_H

//===- js/Heap.h - Mark/sweep GC heap for MiniJS ----------------*- C++ -*-===//
//
// Part of the WebRacer reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The MiniJS garbage-collected heap. Objects and environments are
/// allocated here and reclaimed by a stop-the-world mark/sweep collector.
///
/// Collection only runs at operation boundaries (the event loop calls
/// maybeCollect() between tasks), so the interpreter never needs to root
/// its evaluation temporaries. Long-lived references held by the browser
/// (the global scope, pending timer callbacks, event listeners, DOM
/// wrappers) are reported through RootProvider.
///
//===----------------------------------------------------------------------===//

#ifndef WEBRACER_JS_HEAP_H
#define WEBRACER_JS_HEAP_H

#include "js/Value.h"

#include <memory>
#include <vector>

namespace wr::js {

/// Marking interface handed to root providers and object tracers.
class GcTracer {
public:
  explicit GcTracer(std::vector<GcObject *> &Worklist)
      : Worklist(Worklist) {}

  /// Marks a heap object (null-safe).
  void trace(GcObject *O);

  /// Marks the object inside \p V, if any.
  void trace(const Value &V) { trace(V.objectOrNull()); }

private:
  friend class Heap;
  std::vector<GcObject *> &Worklist;
};

/// Anything that keeps JS values alive across operations registers one of
/// these with the heap.
class RootProvider {
public:
  virtual ~RootProvider();
  virtual void traceRoots(GcTracer &T) = 0;
};

/// The MiniJS heap.
class Heap {
public:
  Heap();
  ~Heap();

  Heap(const Heap &) = delete;
  Heap &operator=(const Heap &) = delete;

  /// Allocates a plain object.
  Object *allocObject();

  /// Allocates an array object.
  Object *allocArray();

  /// Allocates a script function closing over \p Closure.
  Object *allocFunction(const FunctionLiteral *Lit, Env *Closure);

  /// Allocates a host (native) function.
  Object *allocHostFunction(HostFn Fn, std::string Name);

  /// Allocates an Error-like object {name, message}.
  Object *allocError(const char *Name, std::string Message);

  /// Allocates a scope environment. The first environment ever allocated
  /// is the global scope and receives ContainerId 0 so race reports print
  /// `global.x`.
  Env *allocEnv(Env *Parent);

  /// Registers/unregisters a root provider.
  void addRootProvider(RootProvider *P);
  void removeRootProvider(RootProvider *P);

  /// Runs a full mark/sweep collection. Must only be called at operation
  /// boundaries. Returns the number of objects reclaimed.
  size_t collect();

  /// Runs a collection if enough allocation happened since the last one.
  void maybeCollect();

  /// Number of live (allocated, unreclaimed) GC objects.
  size_t numLive() const { return Objects.size(); }

  /// Total allocations over the heap's lifetime.
  uint64_t totalAllocated() const { return TotalAllocs; }

  /// Number of collections run.
  uint64_t numCollections() const { return Collections; }

  /// Collection trigger threshold (allocations since last GC).
  void setGcThreshold(size_t N) { Threshold = N; }

private:
  template <typename T> T *track(T *Obj);
  static void traceChildren(GcObject *O, GcTracer &T);

  std::vector<std::unique_ptr<GcObject>> Objects;
  std::vector<RootProvider *> Roots;
  ContainerId NextContainer = 0;
  uint64_t FunctionCounter = 0;
  size_t AllocsSinceGc = 0;
  size_t Threshold = 1 << 14;
  uint64_t TotalAllocs = 0;
  uint64_t Collections = 0;
};

} // namespace wr::js

#endif // WEBRACER_JS_HEAP_H

//===- js/Interpreter.h - MiniJS tree-walking interpreter -------*- C++ -*-===//
//
// Part of the WebRacer reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The MiniJS interpreter: a tree-walking evaluator with completion
/// records (no C++ exceptions), JS var/function hoisting, closures,
/// prototype chains, and full access instrumentation via JsHooks.
///
/// Every variable and property access flows through a hook, mirroring how
/// WebRacer instruments WebKit's JavaScript interpreter (Sec. 5.2.1). The
/// hooks can be disabled (null) to measure instrumentation overhead, which
/// is the paper's Sec. 6 performance experiment.
///
//===----------------------------------------------------------------------===//

#ifndef WEBRACER_JS_INTERPRETER_H
#define WEBRACER_JS_INTERPRETER_H

#include "js/Ast.h"
#include "js/Heap.h"
#include "js/Value.h"
#include "mem/Location.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace wr::js {

/// Access-instrumentation callbacks. The browser runtime implements these
/// to feed the race detector; they are the JS half of the paper's logical
/// memory model (Sec. 4.1).
class JsHooks {
public:
  virtual ~JsHooks();

  /// A read of variable \p Name resolved to environment \p Scope. Name is
  /// a view into interpreter-owned storage, valid for the duration of the
  /// call; implementations interning into a LocationInterner need no copy.
  virtual void onVarRead(Env *Scope, std::string_view Name,
                         AccessOrigin Origin) = 0;

  /// A write of variable \p Name in environment \p Scope.
  virtual void onVarWrite(Env *Scope, std::string_view Name,
                          AccessOrigin Origin) = 0;

  /// A read of property \p Name on \p Obj.
  virtual void onPropRead(Object *Obj, std::string_view Name,
                          AccessOrigin Origin) = 0;

  /// A write of property \p Name on \p Obj.
  virtual void onPropWrite(Object *Obj, std::string_view Name,
                           AccessOrigin Origin) = 0;
};

/// The MiniJS evaluator.
class Interpreter {
public:
  /// \p Global is the global scope environment (ContainerId 0 when it is
  /// the first environment allocated from \p H).
  Interpreter(Heap &H, Env *Global);

  Heap &heap() { return TheHeap; }
  Env *globalEnv() { return Global; }

  /// The value of `this` at top level (the window object, once the
  /// runtime installs it).
  void setGlobalThis(Value V) { GlobalThis = std::move(V); }
  const Value &globalThis() const { return GlobalThis; }

  /// Installs (or clears, with null) the instrumentation hooks.
  void setHooks(JsHooks *H) { Hooks = H; }
  JsHooks *hooks() const { return Hooks; }

  /// Runs a program in the global scope. A Throw completion means the
  /// script died with an uncaught exception.
  Completion runProgram(const Program &P);

  /// Runs a program in the global scope with `this` temporarily bound to
  /// \p ThisV (used for content-attribute event handlers, where `this` is
  /// the target element).
  Completion runProgramWithThis(const Program &P, Value ThisV);

  /// Calls a function value with explicit this and arguments. Used by the
  /// runtime to invoke event handlers and timer callbacks.
  Completion callFunction(Value Fn, Value ThisV, std::vector<Value> Args);

  /// Constructs via `new` semantics. Used by host code.
  Completion construct(Value Callee, std::vector<Value> Args);

  // -- Services for host classes -------------------------------------------

  /// Creates a Throw completion carrying an Error-like object.
  Completion throwError(const char *Name, std::string Message);

  /// Property read/write with full instrumentation and host dispatch.
  Completion getProperty(const Value &Base, const std::string &Name,
                         AccessOrigin Origin = AccessOrigin::Plain);
  Completion setProperty(const Value &Base, const std::string &Name,
                         Value V, AccessOrigin Origin = AccessOrigin::Plain);

  // -- Conversions (public: host bindings need them) -------------------------

  static bool toBoolean(const Value &V);
  double toNumber(const Value &V) const;
  int32_t toInt32(const Value &V) const;
  std::string toStringValue(const Value &V) const;
  bool looseEquals(const Value &A, const Value &B) const;

  // -- Resource limits --------------------------------------------------------

  /// Resets the per-operation step counter. The event loop calls this at
  /// each operation boundary.
  void resetSteps() { Steps = 0; }

  /// Sets the per-operation step budget (0 = unlimited). Exceeding it
  /// throws a RangeError, terminating the operation like a runaway-script
  /// watchdog would.
  void setStepBudget(uint64_t N) { StepBudget = N; }

  /// Steps executed since the last reset.
  uint64_t steps() const { return Steps; }

private:
  // Statement evaluation.
  Completion evalStmt(const Stmt *S, Env *Scope);
  Completion evalBlock(const Block *B, Env *Scope);
  Completion evalVarDecl(const VarDecl *V, Env *Scope);
  Completion evalIf(const If *I, Env *Scope);
  Completion evalWhile(const While *W, Env *Scope);
  Completion evalDoWhile(const DoWhile *W, Env *Scope);
  Completion evalFor(const For *F, Env *Scope);
  Completion evalForIn(const ForIn *F, Env *Scope);
  Completion evalSwitch(const Switch *S, Env *Scope);
  Completion evalTry(const Try *T, Env *Scope);

  // Expression evaluation.
  Completion evalExpr(const Expr *E, Env *Scope);
  Completion evalIdent(const Ident *I, Env *Scope, AccessOrigin Origin);
  Completion evalCall(const Call *C, Env *Scope);
  Completion evalNew(const New *N, Env *Scope);
  Completion evalAssign(const Assign *A, Env *Scope);
  Completion evalUpdate(const Update *U, Env *Scope);
  Completion evalUnary(const Unary *U, Env *Scope);
  Completion evalBinary(const Binary *B, Env *Scope);
  Completion applyBinary(BinaryOp Op, const Value &L, const Value &R,
                         uint32_t Line);

  /// Hoists var and function declarations into \p Scope (Sec. 4.1:
  /// function declarations are writes at the beginning of the scope).
  void hoistDeclarations(const std::vector<StmtPtr> &Body, Env *Scope);
  void collectVarNames(const Stmt *S, std::vector<std::string> &Names);

  /// Calls a builtin method (string/array/object/function helpers) when
  /// plain property lookup cannot produce a callee. Returns true if the
  /// method exists; the result is placed in \p Out.
  bool callBuiltinMethod(const Value &Base, const std::string &Name,
                         std::vector<Value> &Args, Completion &Out);

  /// Bumps the step counter; returns a Throw completion when over budget.
  bool checkBudget(Completion &Out);

  Heap &TheHeap;
  Env *Global;
  Value GlobalThis;
  JsHooks *Hooks = nullptr;
  uint64_t Steps = 0;
  uint64_t StepBudget = 50'000'000;
  uint32_t CallDepth = 0;
  uint32_t MaxCallDepth = 256;
};

} // namespace wr::js

#endif // WEBRACER_JS_INTERPRETER_H

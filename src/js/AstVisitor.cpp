//===- js/AstVisitor.cpp - Const walker over the MiniJS AST -----------------===//

#include "js/AstVisitor.h"

using namespace wr;
using namespace wr::js;

ConstAstVisitor::~ConstAstVisitor() = default;

void ConstAstVisitor::walk(const Program &P) {
  for (const StmtPtr &S : P.Body)
    walkStmt(S.get());
}

void ConstAstVisitor::walkFunction(const FunctionLiteral &Fn) {
  if (!enterFunction(Fn))
    return;
  if (Fn.Body)
    for (const StmtPtr &S : Fn.Body->Stmts)
      walkStmt(S.get());
  leaveFunction(Fn);
}

void ConstAstVisitor::walkStmt(const Stmt *S) {
  if (!S)
    return;
  if (!beforeStmt(*S))
    return;
  switch (S->kind()) {
  case AstKind::ExprStmt:
    walkExpr(cast<ExprStmt>(S)->E.get());
    break;
  case AstKind::VarDecl:
    for (const VarDecl::Declarator &D : cast<VarDecl>(S)->Decls)
      walkExpr(D.Init.get());
    break;
  case AstKind::FunctionDecl:
    walkFunction(cast<FunctionDecl>(S)->Fn);
    break;
  case AstKind::Block:
    for (const StmtPtr &Child : cast<Block>(S)->Stmts)
      walkStmt(Child.get());
    break;
  case AstKind::If: {
    const auto *I = cast<If>(S);
    walkExpr(I->Cond.get());
    walkStmt(I->Then.get());
    walkStmt(I->Else.get());
    break;
  }
  case AstKind::While: {
    const auto *W = cast<While>(S);
    walkExpr(W->Cond.get());
    walkStmt(W->Body.get());
    break;
  }
  case AstKind::DoWhile: {
    const auto *D = cast<DoWhile>(S);
    walkStmt(D->Body.get());
    walkExpr(D->Cond.get());
    break;
  }
  case AstKind::For: {
    const auto *F = cast<For>(S);
    walkStmt(F->Init.get());
    walkExpr(F->Cond.get());
    walkExpr(F->Step.get());
    walkStmt(F->Body.get());
    break;
  }
  case AstKind::ForIn: {
    const auto *F = cast<ForIn>(S);
    walkExpr(F->Object.get());
    walkStmt(F->Body.get());
    break;
  }
  case AstKind::Return:
    walkExpr(cast<Return>(S)->Value.get());
    break;
  case AstKind::Break:
  case AstKind::Continue:
  case AstKind::Empty:
    break;
  case AstKind::Switch: {
    const auto *Sw = cast<Switch>(S);
    walkExpr(Sw->Disc.get());
    for (const Switch::CaseClause &C : Sw->Cases) {
      walkExpr(C.Test.get());
      for (const StmtPtr &Child : C.Body)
        walkStmt(Child.get());
    }
    break;
  }
  case AstKind::Throw:
    walkExpr(cast<Throw>(S)->Value.get());
    break;
  case AstKind::Try: {
    const auto *T = cast<Try>(S);
    walkStmt(T->Body.get());
    walkStmt(T->Catch.get());
    walkStmt(T->Finally.get());
    break;
  }
  default:
    assert(false && "expression kind reached walkStmt");
    break;
  }
  afterStmt(*S);
}

void ConstAstVisitor::walkExpr(const Expr *E) {
  if (!E)
    return;
  if (!beforeExpr(*E))
    return;
  switch (E->kind()) {
  case AstKind::NumberLit:
  case AstKind::StringLit:
  case AstKind::BoolLit:
  case AstKind::NullLit:
  case AstKind::UndefinedLit:
  case AstKind::ThisExpr:
  case AstKind::Ident:
    break;
  case AstKind::ArrayLit:
    for (const ExprPtr &Elem : cast<ArrayLit>(E)->Elems)
      walkExpr(Elem.get());
    break;
  case AstKind::ObjectLit:
    for (const ObjectLit::Property &P : cast<ObjectLit>(E)->Props)
      walkExpr(P.Value.get());
    break;
  case AstKind::FunctionExpr:
    walkFunction(cast<FunctionExpr>(E)->Fn);
    break;
  case AstKind::Member:
    walkExpr(cast<Member>(E)->Base.get());
    break;
  case AstKind::Index: {
    const auto *I = cast<Index>(E);
    walkExpr(I->Base.get());
    walkExpr(I->Key.get());
    break;
  }
  case AstKind::Call: {
    const auto *C = cast<Call>(E);
    walkExpr(C->Callee.get());
    for (const ExprPtr &A : C->Args)
      walkExpr(A.get());
    break;
  }
  case AstKind::New: {
    const auto *N = cast<New>(E);
    walkExpr(N->Callee.get());
    for (const ExprPtr &A : N->Args)
      walkExpr(A.get());
    break;
  }
  case AstKind::Unary:
    walkExpr(cast<Unary>(E)->Operand.get());
    break;
  case AstKind::Update:
    walkExpr(cast<Update>(E)->Operand.get());
    break;
  case AstKind::Binary: {
    const auto *B = cast<Binary>(E);
    walkExpr(B->Lhs.get());
    walkExpr(B->Rhs.get());
    break;
  }
  case AstKind::Logical: {
    const auto *L = cast<Logical>(E);
    walkExpr(L->Lhs.get());
    walkExpr(L->Rhs.get());
    break;
  }
  case AstKind::Conditional: {
    const auto *C = cast<Conditional>(E);
    walkExpr(C->Cond.get());
    walkExpr(C->Then.get());
    walkExpr(C->Else.get());
    break;
  }
  case AstKind::Assign: {
    const auto *A = cast<Assign>(E);
    walkExpr(A->Target.get());
    walkExpr(A->Value.get());
    break;
  }
  case AstKind::Sequence:
    for (const ExprPtr &Sub : cast<Sequence>(E)->Exprs)
      walkExpr(Sub.get());
    break;
  default:
    assert(false && "statement kind reached walkExpr");
    break;
  }
  afterExpr(*E);
}

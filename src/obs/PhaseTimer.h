//===- obs/PhaseTimer.h - Per-phase wall and virtual time -------*- C++ -*-===//
//
// Part of the WebRacer reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Phase accounting for a detection run. A run decomposes into six
/// phases - parse, script, dispatch, detect, filter, explore - and each
/// accumulates three measures:
///
///  * WallNanos  - host CPU wall time (nondeterministic; excluded from
///                 byte-stable report sections).
///  * VirtualUs  - simulated virtual time attributed to the phase
///                 (deterministic; safe for golden files).
///  * Entries    - how many timed intervals / operations contributed.
///
/// PhaseTimer is the RAII handle: constructed against a PhaseStats (or
/// nullptr, making it a no-op) it adds the elapsed wall time on scope
/// exit. Layers that already sit on a single choke point (the browser's
/// operation begin/end) attribute self-time directly via addWall.
///
//===----------------------------------------------------------------------===//

#ifndef WEBRACER_OBS_PHASETIMER_H
#define WEBRACER_OBS_PHASETIMER_H

#include "obs/Json.h"

#include <array>
#include <chrono>
#include <cstdint>

namespace wr::obs {

/// The phases of one detection run.
enum class Phase : uint8_t {
  Parse,    ///< HTML parsing (parse-element operations).
  Script,   ///< Script and timer-callback execution.
  Dispatch, ///< Event dispatch and handler execution.
  Detect,   ///< Race detector access processing and CHC queries.
  Filter,   ///< Sec. 5.3 report filters.
  Explore,  ///< Automatic exploration (Sec. 5.2.2).
};

inline constexpr size_t NumPhases = 6;

/// Stable lower-case phase name ("parse", "script", ...).
const char *toString(Phase P);

/// Accumulated measures for one phase.
struct PhaseStat {
  uint64_t WallNanos = 0;
  uint64_t VirtualUs = 0;
  uint64_t Entries = 0;
};

/// Per-phase accumulator.
class PhaseStats {
public:
  void addWall(Phase P, uint64_t Nanos, uint64_t Entries = 1) {
    auto &S = Stats[static_cast<size_t>(P)];
    S.WallNanos += Nanos;
    S.Entries += Entries;
  }

  void addVirtual(Phase P, uint64_t Us) {
    Stats[static_cast<size_t>(P)].VirtualUs += Us;
  }

  const PhaseStat &operator[](Phase P) const {
    return Stats[static_cast<size_t>(P)];
  }

  void merge(const PhaseStats &O) {
    for (size_t I = 0; I < NumPhases; ++I) {
      Stats[I].WallNanos += O.Stats[I].WallNanos;
      Stats[I].VirtualUs += O.Stats[I].VirtualUs;
      Stats[I].Entries += O.Stats[I].Entries;
    }
  }

  /// Deterministic portion only (virtual_us + entries per phase).
  Json toJson() const;

  /// Wall-clock portion (phase -> milliseconds), for timing sections.
  Json wallJson() const;

private:
  std::array<PhaseStat, NumPhases> Stats{};
};

/// RAII wall-clock timer; a null target makes every operation free.
class PhaseTimer {
public:
  PhaseTimer(PhaseStats *Target, Phase P)
      : Target(Target), P(P),
        Start(Target ? std::chrono::steady_clock::now()
                     : std::chrono::steady_clock::time_point()) {}

  PhaseTimer(const PhaseTimer &) = delete;
  PhaseTimer &operator=(const PhaseTimer &) = delete;

  ~PhaseTimer() {
    if (!Target)
      return;
    auto Elapsed = std::chrono::steady_clock::now() - Start;
    Target->addWall(
        P, static_cast<uint64_t>(
               std::chrono::duration_cast<std::chrono::nanoseconds>(Elapsed)
                   .count()));
  }

private:
  PhaseStats *Target;
  Phase P;
  std::chrono::steady_clock::time_point Start;
};

} // namespace wr::obs

#endif // WEBRACER_OBS_PHASETIMER_H

//===- obs/RunStats.cpp - Structured statistics of one run ---------------------===//

#include "obs/RunStats.h"

using namespace wr::obs;

Json RaceCounts::toJson() const {
  Json J = Json::object();
  J.set("html", Html);
  J.set("function", Function);
  J.set("variable", Variable);
  J.set("event_dispatch", EventDispatch);
  J.set("total", total());
  return J;
}

Json FilterAttrition::toJson() const {
  Json J = Json::object();
  J.set("input", Input);
  J.set("not_form_field", NotFormField);
  J.set("prior_read_guard", PriorReadGuard);
  J.set("multi_dispatch", MultiDispatch);
  // Present only when a suppression file dropped something, so reports
  // produced without suppressions keep the pre-triage byte layout.
  if (Suppressed)
    J.set("suppressed", Suppressed);
  J.set("kept", Kept);
  return J;
}

Json SamplingStats::toJson() const {
  Json J = Json::object();
  J.set("strategy", Strategy);
  J.set("rate_ppm", RatePpm);
  Json Seen = Json::object();
  Seen.set("reads", SeenReads);
  Seen.set("writes", SeenWrites);
  Seen.set("total", SeenReads + SeenWrites);
  J.set("seen", std::move(Seen));
  Json Sampled = Json::object();
  Sampled.set("reads", SampledReads);
  Sampled.set("writes", SampledWrites);
  Sampled.set("total", SampledReads + SampledWrites);
  J.set("sampled", std::move(Sampled));
  Json Dropped = Json::object();
  Dropped.set("reads", DroppedReads);
  Dropped.set("writes", DroppedWrites);
  Dropped.set("total", DroppedReads + DroppedWrites);
  J.set("dropped", std::move(Dropped));
  Json Passes = Json::object();
  Passes.set("location", LocationPass);
  Passes.set("pair", PairPass);
  Passes.set("cold", ColdPass);
  Passes.set("hot", HotPass);
  Passes.set("rng", RngPass);
  J.set("passes", std::move(Passes));
  J.set("hot_locations", HotLocations);
  return J;
}

Json PredictionRow::toJson() const {
  Json J = Json::object();
  J.set("pairs_checked", PairsChecked);
  J.set("dropped_edges", DroppedEdges);
  J.set("candidates", Candidates);
  J.set("observed_matched", Observed);
  J.set("predicted", Predicted.toJson());
  return J;
}

void RunStats::merge(const RunStats &O) {
  Operations += O.Operations;
  HbEdges += O.HbEdges;
  for (const NamedCount &Theirs : O.HbEdgesByRule) {
    bool Found = false;
    for (NamedCount &Ours : HbEdgesByRule) {
      if (Ours.Name == Theirs.Name) {
        Ours.Count += Theirs.Count;
        Found = true;
        break;
      }
    }
    if (!Found)
      HbEdgesByRule.push_back(Theirs);
  }
  ChcQueries += O.ChcQueries;
  DfsVisits += O.DfsVisits;
  DfsMemoHits += O.DfsMemoHits;
  VcChains += O.VcChains;
  ClockBytes += O.ClockBytes;
  ClockMerges += O.ClockMerges;
  SharedClocks += O.SharedClocks;
  AccessesSeen += O.AccessesSeen;
  TrackedLocations += O.TrackedLocations;
  InternedLocations += O.InternedLocations;
  InternHits += O.InternHits;
  EpochHits += O.EpochHits;
  ReadsSeen += O.ReadsSeen;
  EpochReads += O.EpochReads;
  ReadInflations += O.ReadInflations;
  ReadDeflations += O.ReadDeflations;
  ReadVectorLocations += O.ReadVectorLocations;
  DetectorBytes += O.DetectorBytes;
  Sampling.merge(O.Sampling);
  Raw.merge(O.Raw);
  Filtered.merge(O.Filtered);
  Attrition.merge(O.Attrition);
  for (const PredictionRow &Theirs : O.Prediction) {
    bool Found = false;
    for (PredictionRow &Ours : Prediction) {
      if (Ours.Engine == Theirs.Engine) {
        Ours.merge(Theirs);
        Found = true;
        break;
      }
    }
    if (!Found)
      Prediction.push_back(Theirs);
  }
  TasksRun += O.TasksRun;
  VirtualTimeUs += O.VirtualTimeUs;
  Crashes += O.Crashes;
  Alerts += O.Alerts;
  ParseErrors += O.ParseErrors;
  EventsDispatched += O.EventsDispatched;
  LinksClicked += O.LinksClicked;
  BoxesTyped += O.BoxesTyped;
  Phases.merge(O.Phases);
}

Json RunStats::toJson() const {
  Json J = Json::object();
  J.set("operations", Operations);
  J.set("hb_edges", HbEdges);
  Json Rules = Json::object();
  for (const NamedCount &R : HbEdgesByRule)
    Rules.set(R.Name, R.Count);
  J.set("hb_edges_by_rule", std::move(Rules));
  J.set("chc_queries", ChcQueries);
  J.set("dfs_visits", DfsVisits);
  J.set("dfs_memo_hits", DfsMemoHits);
  J.set("vc_chains", VcChains);
  J.set("clock_bytes", ClockBytes);
  J.set("clock_merges", ClockMerges);
  J.set("shared_clocks", SharedClocks);
  J.set("accesses", AccessesSeen);
  J.set("tracked_locations", TrackedLocations);
  J.set("interned_locations", InternedLocations);
  J.set("intern_hits", InternHits);
  J.set("epoch_hits", EpochHits);
  Json Epochs = Json::object();
  Epochs.set("reads", ReadsSeen);
  Epochs.set("epoch_reads", EpochReads);
  Epochs.set("read_inflations", ReadInflations);
  Epochs.set("read_deflations", ReadDeflations);
  Epochs.set("read_vector_locations", ReadVectorLocations);
  Epochs.set("detector_bytes", DetectorBytes);
  J.set("wr_epochs", std::move(Epochs));
  // Present only when the sampling layer ran, so unsampled reports stay
  // byte-identical to the pre-sampling schema (the rate-1.0 identity
  // gate in bench/sampling_recall and tests/report_schema_test).
  if (Sampling.enabled())
    J.set("wr_sampling", Sampling.toJson());
  J.set("races_raw", Raw.toJson());
  J.set("races_filtered", Filtered.toJson());
  J.set("filter_attrition", Attrition.toJson());
  // Present only when a predictive pass ran, so reports without
  // prediction stay byte-identical to the pre-engine schema.
  if (!Prediction.empty()) {
    Json Pred = Json::object();
    for (const PredictionRow &Row : Prediction)
      Pred.set(Row.Engine, Row.toJson());
    J.set("wr_prediction", std::move(Pred));
  }
  J.set("tasks", TasksRun);
  J.set("virtual_time_us", VirtualTimeUs);
  J.set("crashes", Crashes);
  J.set("alerts", Alerts);
  J.set("parse_errors", ParseErrors);
  Json Explore = Json::object();
  Explore.set("events_dispatched", EventsDispatched);
  Explore.set("links_clicked", LinksClicked);
  Explore.set("boxes_typed", BoxesTyped);
  J.set("explore", std::move(Explore));
  J.set("phases", Phases.toJson());
  return J;
}

void RunStats::exportTo(MetricsRegistry &Registry,
                        const std::string &Prefix) const {
  auto C = [&](const char *Name, uint64_t Value) {
    Registry.counter(Prefix + "." + Name).inc(Value);
  };
  C("operations", Operations);
  C("hb_edges", HbEdges);
  for (const NamedCount &R : HbEdgesByRule)
    Registry.counter(Prefix + ".hb_edges_by_rule." + R.Name).inc(R.Count);
  C("chc_queries", ChcQueries);
  C("dfs_visits", DfsVisits);
  C("dfs_memo_hits", DfsMemoHits);
  C("vc_chains", VcChains);
  C("clock_bytes", ClockBytes);
  C("clock_merges", ClockMerges);
  C("shared_clocks", SharedClocks);
  C("accesses", AccessesSeen);
  C("tracked_locations", TrackedLocations);
  C("interned_locations", InternedLocations);
  C("intern_hits", InternHits);
  C("epoch_hits", EpochHits);
  C("wr_epochs.reads", ReadsSeen);
  C("wr_epochs.epoch_reads", EpochReads);
  C("wr_epochs.read_inflations", ReadInflations);
  C("wr_epochs.read_deflations", ReadDeflations);
  C("wr_epochs.read_vector_locations", ReadVectorLocations);
  C("wr_epochs.detector_bytes", DetectorBytes);
  if (Sampling.enabled()) {
    C("wr_sampling.rate_ppm", Sampling.RatePpm);
    C("wr_sampling.seen.reads", Sampling.SeenReads);
    C("wr_sampling.seen.writes", Sampling.SeenWrites);
    C("wr_sampling.sampled.reads", Sampling.SampledReads);
    C("wr_sampling.sampled.writes", Sampling.SampledWrites);
    C("wr_sampling.dropped.reads", Sampling.DroppedReads);
    C("wr_sampling.dropped.writes", Sampling.DroppedWrites);
    C("wr_sampling.passes.location", Sampling.LocationPass);
    C("wr_sampling.passes.pair", Sampling.PairPass);
    C("wr_sampling.passes.cold", Sampling.ColdPass);
    C("wr_sampling.passes.hot", Sampling.HotPass);
    C("wr_sampling.passes.rng", Sampling.RngPass);
    C("wr_sampling.hot_locations", Sampling.HotLocations);
  }
  C("races_raw.total", Raw.total());
  C("races_raw.variable", Raw.Variable);
  C("races_raw.html", Raw.Html);
  C("races_raw.function", Raw.Function);
  C("races_raw.event_dispatch", Raw.EventDispatch);
  C("races_filtered.total", Filtered.total());
  C("races_filtered.variable", Filtered.Variable);
  C("races_filtered.html", Filtered.Html);
  C("races_filtered.function", Filtered.Function);
  C("races_filtered.event_dispatch", Filtered.EventDispatch);
  C("filter.input", Attrition.Input);
  C("filter.not_form_field", Attrition.NotFormField);
  C("filter.prior_read_guard", Attrition.PriorReadGuard);
  C("filter.multi_dispatch", Attrition.MultiDispatch);
  C("filter.suppressed", Attrition.Suppressed);
  C("filter.kept", Attrition.Kept);
  for (const PredictionRow &Row : Prediction) {
    std::string Base = Prefix + ".wr_prediction." + Row.Engine;
    Registry.counter(Base + ".pairs_checked").inc(Row.PairsChecked);
    Registry.counter(Base + ".dropped_edges").inc(Row.DroppedEdges);
    Registry.counter(Base + ".candidates").inc(Row.Candidates);
    Registry.counter(Base + ".observed_matched").inc(Row.Observed);
    Registry.counter(Base + ".predicted.total").inc(Row.Predicted.total());
  }
  C("tasks", TasksRun);
  C("virtual_time_us", VirtualTimeUs);
  C("crashes", Crashes);
  C("alerts", Alerts);
  C("parse_errors", ParseErrors);
  C("explore.events_dispatched", EventsDispatched);
  C("explore.links_clicked", LinksClicked);
  C("explore.boxes_typed", BoxesTyped);
  for (size_t I = 0; I < NumPhases; ++I) {
    Phase P = static_cast<Phase>(I);
    const PhaseStat &S = Phases[P];
    std::string Base = Prefix + ".phase." + toString(P);
    Registry.counter(Base + ".virtual_us").inc(S.VirtualUs);
    Registry.counter(Base + ".entries").inc(S.Entries);
    Registry.counter(Base + ".wall_ns").inc(S.WallNanos);
  }
}

//===- obs/Metrics.cpp - Named counters, gauges, and histograms ----------------===//

#include "obs/Metrics.h"

#include "support/Format.h"

#include <bit>

using namespace wr;
using namespace wr::obs;

void Histogram::observe(uint64_t Sample) {
  ++Count;
  Sum += Sample;
  if (Sample < Min)
    Min = Sample;
  if (Sample > Max)
    Max = Sample;
  size_t Bucket = Sample == 0 ? 0 : static_cast<size_t>(std::bit_width(Sample));
  if (Bucket >= NumBuckets)
    Bucket = NumBuckets - 1;
  ++Buckets[Bucket];
}

Json Histogram::toJson() const {
  Json J = Json::object();
  J.set("count", count());
  J.set("sum", sum());
  J.set("min", min());
  J.set("max", max());
  J.set("mean", mean());
  Json B = Json::array();
  // Trailing empty buckets are trimmed so small distributions stay small.
  size_t Last = NumBuckets;
  while (Last > 0 && Buckets[Last - 1] == 0)
    --Last;
  for (size_t I = 0; I < Last; ++I)
    B.push(Buckets[I]);
  J.set("buckets", std::move(B));
  return J;
}

Json MetricsRegistry::toJson() const {
  Json J = Json::object();
  if (!Counters.empty()) {
    Json C = Json::object();
    for (const auto &[Name, Metric] : Counters)
      C.set(Name, Metric.value());
    J.set("counters", std::move(C));
  }
  if (!Gauges.empty()) {
    Json G = Json::object();
    for (const auto &[Name, Metric] : Gauges)
      G.set(Name, Metric.value());
    J.set("gauges", std::move(G));
  }
  if (!Histograms.empty()) {
    Json H = Json::object();
    for (const auto &[Name, Metric] : Histograms)
      H.set(Name, Metric.toJson());
    J.set("histograms", std::move(H));
  }
  return J;
}

std::string MetricsRegistry::toText() const {
  std::string Out;
  for (const auto &[Name, Metric] : Counters)
    Out += strFormat("%s %llu\n", Name.c_str(),
                     static_cast<unsigned long long>(Metric.value()));
  for (const auto &[Name, Metric] : Gauges)
    Out += strFormat("%s %g\n", Name.c_str(), Metric.value());
  for (const auto &[Name, Metric] : Histograms)
    Out += strFormat("%s count=%llu sum=%llu min=%llu max=%llu mean=%.3f\n",
                     Name.c_str(),
                     static_cast<unsigned long long>(Metric.count()),
                     static_cast<unsigned long long>(Metric.sum()),
                     static_cast<unsigned long long>(Metric.min()),
                     static_cast<unsigned long long>(Metric.max()),
                     Metric.mean());
  return Out;
}

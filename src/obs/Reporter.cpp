//===- obs/Reporter.cpp - Report emission backends -----------------------------===//

#include "obs/Reporter.h"

#include <charconv>
#include <cmath>

using namespace wr::obs;

Reporter::~Reporter() = default;

Json wr::obs::makeReportEnvelope(const std::string &Kind,
                                 const std::string &Name) {
  Json J = Json::object();
  J.set("schema", ReportSchemaVersion);
  J.set("tool", "webracer");
  J.set("kind", Kind);
  J.set("name", Name);
  return J;
}

void JsonReporter::emit(const Json &Report) { Out += writeJson(Report); }

namespace {

bool isScalar(const Json &V) {
  return !V.isObject() && !V.isArray();
}

void renderScalar(std::string &Out, const Json &V) {
  switch (V.kind()) {
  case Json::Kind::String:
    Out += V.asString();
    break;
  case Json::Kind::Double: {
    char Buf[32];
    double D = V.asDouble();
    if (!std::isfinite(D)) {
      Out += "nan";
      break;
    }
    auto [End, Ec] = std::to_chars(Buf, Buf + sizeof(Buf), D);
    (void)Ec;
    Out.append(Buf, End);
    break;
  }
  default:
    Out += writeJson(V, /*Pretty=*/false);
  }
}

void renderValue(std::string &Out, const std::string &Key, const Json &V,
                 int Depth) {
  std::string Pad(static_cast<size_t>(Depth) * 2, ' ');
  if (isScalar(V)) {
    Out += Pad + Key + ": ";
    renderScalar(Out, V);
    Out += '\n';
    return;
  }
  if (V.isArray()) {
    bool AllScalar = true;
    for (const Json &E : V.elements())
      AllScalar &= isScalar(E);
    if (V.elements().empty()) {
      Out += Pad + Key + ": (none)\n";
      return;
    }
    if (AllScalar) {
      Out += Pad + Key + ": ";
      for (size_t I = 0; I < V.elements().size(); ++I) {
        if (I)
          Out += ", ";
        renderScalar(Out, V.elements()[I]);
      }
      Out += '\n';
      return;
    }
    Out += Pad + Key + ":\n";
    for (const Json &E : V.elements()) {
      if (isScalar(E)) {
        Out += Pad + "  - ";
        renderScalar(Out, E);
        Out += '\n';
        continue;
      }
      Out += Pad + "  -\n";
      for (const auto &[K, Member] : E.members())
        renderValue(Out, K, Member, Depth + 2);
    }
    return;
  }
  // Object.
  if (V.members().empty()) {
    Out += Pad + Key + ": {}\n";
    return;
  }
  Out += Pad + Key + ":\n";
  for (const auto &[K, Member] : V.members())
    renderValue(Out, K, Member, Depth + 1);
}

} // namespace

void TextReporter::emit(const Json &Report) {
  if (!Report.isObject()) {
    renderValue(Out, "report", Report, 0);
    return;
  }
  for (const auto &[Key, Member] : Report.members()) {
    if (Key == "schema" || Key == "tool")
      continue; // Machine-facing envelope members.
    renderValue(Out, Key, Member, 0);
  }
}

//===- obs/PhaseTimer.cpp - Per-phase wall and virtual time --------------------===//

#include "obs/PhaseTimer.h"

using namespace wr::obs;

const char *wr::obs::toString(Phase P) {
  switch (P) {
  case Phase::Parse:
    return "parse";
  case Phase::Script:
    return "script";
  case Phase::Dispatch:
    return "dispatch";
  case Phase::Detect:
    return "detect";
  case Phase::Filter:
    return "filter";
  case Phase::Explore:
    return "explore";
  }
  return "unknown";
}

Json PhaseStats::toJson() const {
  Json J = Json::object();
  for (size_t I = 0; I < NumPhases; ++I) {
    const PhaseStat &S = Stats[I];
    Json P = Json::object();
    P.set("virtual_us", S.VirtualUs);
    P.set("entries", S.Entries);
    J.set(toString(static_cast<Phase>(I)), std::move(P));
  }
  return J;
}

Json PhaseStats::wallJson() const {
  Json J = Json::object();
  for (size_t I = 0; I < NumPhases; ++I)
    J.set(toString(static_cast<Phase>(I)),
          static_cast<double>(Stats[I].WallNanos) / 1e6);
  return J;
}

//===- obs/RunStats.h - Structured statistics of one run --------*- C++ -*-===//
//
// Part of the WebRacer reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The structured statistics record of one detection run - the paper's
/// per-site evaluation columns (operations, HB edges, races per category,
/// filter attrition, detection overhead) as one mergeable value. This is
/// what SessionResult carries instead of loose counters, what the corpus
/// runner aggregates across sites, and what serializes into the stable
/// "stats" JSON object of every report.
///
/// Everything in RunStats is deterministic for a fixed seed except the
/// wall-clock portion of the phase timers, which toJson() therefore
/// excludes (reports surface wall time in a separate timing section).
///
//===----------------------------------------------------------------------===//

#ifndef WEBRACER_OBS_RUNSTATS_H
#define WEBRACER_OBS_RUNSTATS_H

#include "obs/Json.h"
#include "obs/Metrics.h"
#include "obs/PhaseTimer.h"

#include <cstdint>
#include <string>
#include <vector>

namespace wr::obs {

/// Counts by race kind (the paper's four categories, Sec. 2).
struct RaceCounts {
  uint64_t Variable = 0;
  uint64_t Html = 0;
  uint64_t Function = 0;
  uint64_t EventDispatch = 0;

  uint64_t total() const { return Variable + Html + Function + EventDispatch; }

  void merge(const RaceCounts &O) {
    Variable += O.Variable;
    Html += O.Html;
    Function += O.Function;
    EventDispatch += O.EventDispatch;
  }

  bool operator==(const RaceCounts &O) const = default;

  Json toJson() const;
};

/// Where the Sec. 5.3 filter pipeline dropped reports.
struct FilterAttrition {
  uint64_t Input = 0;          ///< Raw races entering the pipeline.
  uint64_t NotFormField = 0;   ///< Variable races off form fields.
  uint64_t PriorReadGuard = 0; ///< Write guarded by a read (refinement).
  uint64_t MultiDispatch = 0;  ///< Event races on multi-dispatch events.
  uint64_t Suppressed = 0;     ///< Matched a user suppression (triage).
  uint64_t Kept = 0;           ///< Races surviving every filter.

  void merge(const FilterAttrition &O) {
    Input += O.Input;
    NotFormField += O.NotFormField;
    PriorReadGuard += O.PriorReadGuard;
    MultiDispatch += O.MultiDispatch;
    Suppressed += O.Suppressed;
    Kept += O.Kept;
  }

  bool operator==(const FilterAttrition &O) const = default;

  Json toJson() const;
};

/// What the sampling layer admitted and dropped (the wr_sampling report
/// group; see sample/Sampling.h). Strategy holds the CLI spelling; an
/// empty strategy means the layer was off, and toJson() then renders
/// nothing so unsampled reports keep the pre-sampling byte layout.
/// Invariants the sampler maintains (and bench/sampling_recall gates):
/// seen == sampled + dropped per kind, and the pass-reason counters sum
/// to the sampled total.
struct SamplingStats {
  std::string Strategy; ///< CLI spelling; empty == sampling off.
  uint64_t RatePpm = 0; ///< Sampling rate in parts-per-million.
  uint64_t SeenReads = 0;
  uint64_t SeenWrites = 0;
  uint64_t SampledReads = 0;
  uint64_t SampledWrites = 0;
  uint64_t DroppedReads = 0;
  uint64_t DroppedWrites = 0;
  // Pass reasons (which rule admitted a sampled access).
  uint64_t LocationPass = 0;
  uint64_t PairPass = 0;
  uint64_t ColdPass = 0;
  uint64_t HotPass = 0;
  uint64_t RngPass = 0;
  uint64_t HotLocations = 0;

  bool enabled() const { return !Strategy.empty(); }

  void merge(const SamplingStats &O) {
    // Corpus sites share one configuration; adopt it from the first
    // enabled record and sum the counters.
    if (Strategy.empty()) {
      Strategy = O.Strategy;
      RatePpm = O.RatePpm;
    }
    SeenReads += O.SeenReads;
    SeenWrites += O.SeenWrites;
    SampledReads += O.SampledReads;
    SampledWrites += O.SampledWrites;
    DroppedReads += O.DroppedReads;
    DroppedWrites += O.DroppedWrites;
    LocationPass += O.LocationPass;
    PairPass += O.PairPass;
    ColdPass += O.ColdPass;
    HotPass += O.HotPass;
    RngPass += O.RngPass;
    HotLocations += O.HotLocations;
  }

  bool operator==(const SamplingStats &O) const = default;

  Json toJson() const;
};

/// A (name, count) pair; used for per-HB-rule edge counts so obs stays
/// independent of the hb layer's enum.
struct NamedCount {
  std::string Name;
  uint64_t Count = 0;

  bool operator==(const NamedCount &O) const = default;
};

/// Predicted-vs-observed race deltas of one partial-order engine's pass
/// over a recorded trace (detect/Prediction.h). Engine is the engine's
/// CLI spelling so obs stays independent of the hb layer's enum.
struct PredictionRow {
  std::string Engine;
  uint64_t PairsChecked = 0; ///< Conflicting pairs posed to the engine.
  uint64_t DroppedEdges = 0; ///< HB edges the engine's order dropped.
  uint64_t Candidates = 0;   ///< Deduplicated races the pass flagged.
  uint64_t Observed = 0;     ///< ... of which the observed run also saw.
  RaceCounts Predicted;      ///< Predicted-only races, by kind.

  void merge(const PredictionRow &O) {
    PairsChecked += O.PairsChecked;
    DroppedEdges += O.DroppedEdges;
    Candidates += O.Candidates;
    Observed += O.Observed;
    Predicted.merge(O.Predicted);
  }

  bool operator==(const PredictionRow &O) const = default;

  Json toJson() const;
};

/// The full statistics record of one run (or a merged aggregate of many).
struct RunStats {
  // Happens-before graph.
  uint64_t Operations = 0;
  uint64_t HbEdges = 0;
  std::vector<NamedCount> HbEdgesByRule; ///< Nonzero rules, enum order.

  // Reachability machinery.
  uint64_t ChcQueries = 0;
  uint64_t DfsVisits = 0;
  uint64_t DfsMemoHits = 0;
  uint64_t VcChains = 0;
  uint64_t ClockBytes = 0;   ///< Bytes held by the vector-clock arena.
  uint64_t ClockMerges = 0;  ///< Merges that materialized a clock slab.
  uint64_t SharedClocks = 0; ///< Ops whose clock aliases a predecessor's.

  // Detector.
  uint64_t AccessesSeen = 0;
  uint64_t TrackedLocations = 0;
  uint64_t InternedLocations = 0; ///< Distinct locations in the interner.
  uint64_t InternHits = 0;        ///< Intern lookups that found an id.
  uint64_t EpochHits = 0;         ///< HB questions answered without a CHC query.
  // Adaptive read-epoch representation (the "wr_epochs" report group).
  uint64_t ReadsSeen = 0;           ///< Read accesses among AccessesSeen.
  uint64_t EpochReads = 0;          ///< Reads whose CHC check stayed O(1).
  uint64_t ReadInflations = 0;      ///< Read-state epoch -> vector inflations.
  uint64_t ReadDeflations = 0;      ///< Read-state vector -> empty deflations.
  uint64_t ReadVectorLocations = 0; ///< Locations whose read state ever inflated.
  uint64_t DetectorBytes = 0;       ///< Structural bytes of detector state.
  /// The sampling layer's attrition record (the "wr_sampling" report
  /// group; omitted from toJson() when sampling was off).
  SamplingStats Sampling;
  RaceCounts Raw;
  RaceCounts Filtered;
  FilterAttrition Attrition;
  /// One row per predictive engine that ran (empty when prediction was
  /// off; toJson() then omits the wr_prediction key so existing reports
  /// stay byte-identical). Rows merge by engine name.
  std::vector<PredictionRow> Prediction;

  // Runtime / event loop.
  uint64_t TasksRun = 0;
  uint64_t VirtualTimeUs = 0;
  uint64_t Crashes = 0;
  uint64_t Alerts = 0;
  uint64_t ParseErrors = 0;

  // Exploration.
  uint64_t EventsDispatched = 0;
  uint64_t LinksClicked = 0;
  uint64_t BoxesTyped = 0;

  // Phase accounting (wall portion excluded from toJson()).
  PhaseStats Phases;

  /// Sums \p O into this record. Per-rule counts merge by name; the
  /// result keeps this record's order with unseen names appended, so
  /// merging site records in corpus order is order-insensitive as long
  /// as every site enumerates rules in enum order (they do).
  void merge(const RunStats &O);

  /// The deterministic "stats" object of the report schema.
  Json toJson() const;

  /// Snapshots every field into \p Registry under "<Prefix>.".
  void exportTo(MetricsRegistry &Registry, const std::string &Prefix) const;
};

} // namespace wr::obs

#endif // WEBRACER_OBS_RUNSTATS_H

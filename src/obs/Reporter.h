//===- obs/Reporter.h - Report emission backends ----------------*- C++ -*-===//
//
// Part of the WebRacer reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The machine-readable reporting API. Every producer (a single session,
/// the corpus runner, the static/dynamic cross-check, a replay, a bench)
/// builds one obs::Json report tree under a shared versioned envelope and
/// hands it to a Reporter backend:
///
///  * JsonReporter - byte-stable JSON (schema version 1), for --json
///    files, build artifacts, and cross-PR diffs.
///  * TextReporter - a generic human rendering of the same tree, so no
///    front end hand-formats its own output.
///
/// Envelope:  {"schema": 1, "tool": "webracer", "kind": ..., "name": ...}
/// followed by producer-specific sections ("stats", "races", "sites",
/// "aggregate", "timing", ...). The "timing" section is the only place
/// wall-clock values live; everything else is deterministic for a fixed
/// seed, which is what makes reports diffable across job counts and PRs.
///
//===----------------------------------------------------------------------===//

#ifndef WEBRACER_OBS_REPORTER_H
#define WEBRACER_OBS_REPORTER_H

#include "obs/Json.h"

#include <string>

namespace wr::obs {

/// The version of the report JSON schema this tree conforms to. Bump on
/// any incompatible change to section names or member meanings.
inline constexpr int ReportSchemaVersion = 1;

/// Starts a report tree: sets schema, tool, kind, and name members.
Json makeReportEnvelope(const std::string &Kind, const std::string &Name);

/// A sink for finished report trees.
class Reporter {
public:
  virtual ~Reporter();

  /// Emits one complete report.
  virtual void emit(const Json &Report) = 0;
};

/// Renders the report as stable, pretty-printed JSON appended to \p Out.
class JsonReporter final : public Reporter {
public:
  explicit JsonReporter(std::string &Out) : Out(Out) {}
  void emit(const Json &Report) override;

private:
  std::string &Out;
};

/// Renders the report as indented "key: value" text appended to \p Out.
/// Scalar arrays render inline; object arrays render as "- " blocks. The
/// envelope members (schema/tool) are skipped - they are for machines.
class TextReporter final : public Reporter {
public:
  explicit TextReporter(std::string &Out) : Out(Out) {}
  void emit(const Json &Report) override;

private:
  std::string &Out;
};

} // namespace wr::obs

#endif // WEBRACER_OBS_REPORTER_H

//===- obs/Json.cpp - Ordered JSON document model ------------------------------===//

#include "obs/Json.h"

#include <cassert>
#include <charconv>
#include <cmath>
#include <cstdio>

using namespace wr::obs;

Json &Json::push(Json V) {
  assert(K == Kind::Array && "push on a non-array");
  Arr.push_back(std::move(V));
  return *this;
}

Json &Json::set(std::string Key, Json V) {
  assert(K == Kind::Object && "set on a non-object");
  for (auto &[Name, Value] : Obj) {
    if (Name == Key) {
      Value = std::move(V);
      return *this;
    }
  }
  Obj.emplace_back(std::move(Key), std::move(V));
  return *this;
}

const Json *Json::find(const std::string &Key) const {
  if (K != Kind::Object)
    return nullptr;
  for (const auto &[Name, Value] : Obj)
    if (Name == Key)
      return &Value;
  return nullptr;
}

std::string wr::obs::jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

namespace {

/// Shortest-round-trip double rendering; NaN/Inf (not valid JSON) become
/// null so a bad statistic cannot corrupt the document.
void writeDouble(std::string &Out, double D) {
  if (!std::isfinite(D)) {
    Out += "null";
    return;
  }
  char Buf[32];
  auto [End, Ec] = std::to_chars(Buf, Buf + sizeof(Buf), D);
  (void)Ec;
  Out.append(Buf, End);
}

void writeValue(std::string &Out, const Json &V, bool Pretty, int Depth) {
  auto Indent = [&](int N) {
    if (Pretty)
      Out.append(static_cast<size_t>(N) * 2, ' ');
  };
  auto Newline = [&] {
    if (Pretty)
      Out += '\n';
  };
  switch (V.kind()) {
  case Json::Kind::Null:
    Out += "null";
    break;
  case Json::Kind::Bool:
    Out += V.asBool() ? "true" : "false";
    break;
  case Json::Kind::Int: {
    char Buf[24];
    auto [End, Ec] = std::to_chars(Buf, Buf + sizeof(Buf), V.asInt());
    (void)Ec;
    Out.append(Buf, End);
    break;
  }
  case Json::Kind::Uint: {
    char Buf[24];
    auto [End, Ec] = std::to_chars(Buf, Buf + sizeof(Buf), V.asUint());
    (void)Ec;
    Out.append(Buf, End);
    break;
  }
  case Json::Kind::Double:
    writeDouble(Out, V.asDouble());
    break;
  case Json::Kind::String:
    Out += '"';
    Out += jsonEscape(V.asString());
    Out += '"';
    break;
  case Json::Kind::Array: {
    if (V.elements().empty()) {
      Out += "[]";
      break;
    }
    Out += '[';
    Newline();
    for (size_t I = 0; I < V.elements().size(); ++I) {
      Indent(Depth + 1);
      writeValue(Out, V.elements()[I], Pretty, Depth + 1);
      if (I + 1 < V.elements().size())
        Out += ',';
      Newline();
    }
    Indent(Depth);
    Out += ']';
    break;
  }
  case Json::Kind::Object: {
    if (V.members().empty()) {
      Out += "{}";
      break;
    }
    Out += '{';
    Newline();
    for (size_t I = 0; I < V.members().size(); ++I) {
      const auto &[Key, Value] = V.members()[I];
      Indent(Depth + 1);
      Out += '"';
      Out += jsonEscape(Key);
      Out += Pretty ? "\": " : "\":";
      writeValue(Out, Value, Pretty, Depth + 1);
      if (I + 1 < V.members().size())
        Out += ',';
      Newline();
    }
    Indent(Depth);
    Out += '}';
    break;
  }
  }
}

} // namespace

std::string wr::obs::writeJson(const Json &V, bool Pretty) {
  std::string Out;
  writeValue(Out, V, Pretty, 0);
  if (Pretty)
    Out += '\n';
  return Out;
}

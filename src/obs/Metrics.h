//===- obs/Metrics.h - Named counters, gauges, and histograms ---*- C++ -*-===//
//
// Part of the WebRacer reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The metrics registry of the observability layer. A MetricsRegistry
/// hands out stable references to named Counter / Gauge / Histogram
/// cells; the reference is the near-zero-cost handle instrumented code
/// holds on to (an increment is one add on a plain integer, with no name
/// lookup on the hot path). Registry iteration is name-sorted, so dumps
/// are deterministic and diffable.
///
//===----------------------------------------------------------------------===//

#ifndef WEBRACER_OBS_METRICS_H
#define WEBRACER_OBS_METRICS_H

#include "obs/Json.h"

#include <array>
#include <cstdint>
#include <map>
#include <string>

namespace wr::obs {

/// A monotonically increasing integer metric.
class Counter {
public:
  void inc(uint64_t N = 1) { V += N; }
  uint64_t value() const { return V; }

private:
  uint64_t V = 0;
};

/// A point-in-time numeric metric.
class Gauge {
public:
  void set(double Value) { V = Value; }
  double value() const { return V; }

private:
  double V = 0;
};

/// A power-of-two-bucketed distribution of non-negative integer samples.
/// Bucket i counts samples in [2^(i-1), 2^i); bucket 0 counts zeros.
class Histogram {
public:
  static constexpr size_t NumBuckets = 33;

  void observe(uint64_t Sample);

  uint64_t count() const { return Count; }
  uint64_t sum() const { return Sum; }
  uint64_t min() const { return Count ? Min : 0; }
  uint64_t max() const { return Max; }
  double mean() const {
    return Count ? static_cast<double>(Sum) / static_cast<double>(Count) : 0;
  }
  const std::array<uint64_t, NumBuckets> &buckets() const { return Buckets; }

  Json toJson() const;

private:
  uint64_t Count = 0;
  uint64_t Sum = 0;
  uint64_t Min = ~static_cast<uint64_t>(0);
  uint64_t Max = 0;
  std::array<uint64_t, NumBuckets> Buckets{};
};

/// A registry of named metrics. References returned by counter() /
/// gauge() / histogram() stay valid for the registry's lifetime.
class MetricsRegistry {
public:
  Counter &counter(const std::string &Name) { return Counters[Name]; }
  Gauge &gauge(const std::string &Name) { return Gauges[Name]; }
  Histogram &histogram(const std::string &Name) { return Histograms[Name]; }

  size_t size() const {
    return Counters.size() + Gauges.size() + Histograms.size();
  }

  /// Name-sorted JSON object: {"counters": {...}, "gauges": {...},
  /// "histograms": {...}} with empty families omitted.
  Json toJson() const;

  /// Name-sorted "name value" lines (histograms render count/sum/min/
  /// max/mean), for a --metrics style terminal dump.
  std::string toText() const;

private:
  // std::map gives reference stability and sorted iteration in one go;
  // registration is cold, so the tree lookup cost is irrelevant.
  std::map<std::string, Counter> Counters;
  std::map<std::string, Gauge> Gauges;
  std::map<std::string, Histogram> Histograms;
};

} // namespace wr::obs

#endif // WEBRACER_OBS_METRICS_H

//===- obs/Json.h - Ordered JSON document model -----------------*- C++ -*-===//
//
// Part of the WebRacer reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small ordered JSON value used as the report document model of the
/// observability layer. Object members keep insertion order, numbers are
/// rendered with shortest-round-trip formatting, and the writer's output
/// is byte-stable: the same tree always serializes to the same bytes, so
/// reports can be golden-file tested and diffed across runs, job counts,
/// and PRs.
///
/// This is a writer-only model (reports are produced, not consumed, by
/// the tool); parsing stays out of scope.
///
//===----------------------------------------------------------------------===//

#ifndef WEBRACER_OBS_JSON_H
#define WEBRACER_OBS_JSON_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace wr::obs {

/// One JSON value. Cheap enough for report trees; not meant for bulk data.
class Json {
public:
  enum class Kind : uint8_t {
    Null,
    Bool,
    Int,
    Uint,
    Double,
    String,
    Array,
    Object,
  };

  Json() : K(Kind::Null) {}
  Json(bool V) : K(Kind::Bool), B(V) {}
  Json(int V) : K(Kind::Int), I(V) {}
  Json(int64_t V) : K(Kind::Int), I(V) {}
  Json(unsigned V) : K(Kind::Uint), U(V) {}
  Json(uint64_t V) : K(Kind::Uint), U(V) {}
  Json(double V) : K(Kind::Double), D(V) {}
  Json(const char *V) : K(Kind::String), S(V) {}
  Json(std::string V) : K(Kind::String), S(std::move(V)) {}

  /// An empty array / object (distinct from Null).
  static Json array() {
    Json J;
    J.K = Kind::Array;
    return J;
  }
  static Json object() {
    Json J;
    J.K = Kind::Object;
    return J;
  }

  Kind kind() const { return K; }
  bool isObject() const { return K == Kind::Object; }
  bool isArray() const { return K == Kind::Array; }

  /// Appends an array element. The value must be an array.
  Json &push(Json V);

  /// Appends (or replaces) an object member, preserving first-insertion
  /// order. The value must be an object. Returns *this for chaining.
  Json &set(std::string Key, Json V);

  /// Object member lookup; null when absent or not an object.
  const Json *find(const std::string &Key) const;

  const std::vector<Json> &elements() const { return Arr; }
  const std::vector<std::pair<std::string, Json>> &members() const {
    return Obj;
  }

  bool asBool() const { return B; }
  int64_t asInt() const { return K == Kind::Uint ? static_cast<int64_t>(U) : I; }
  uint64_t asUint() const { return K == Kind::Int ? static_cast<uint64_t>(I) : U; }
  double asDouble() const { return D; }
  const std::string &asString() const { return S; }

private:
  Kind K;
  bool B = false;
  int64_t I = 0;
  uint64_t U = 0;
  double D = 0;
  std::string S;
  std::vector<Json> Arr;
  std::vector<std::pair<std::string, Json>> Obj;
};

/// Serializes \p V. \p Pretty uses two-space indentation and a trailing
/// newline; compact mode emits no whitespace at all. Both are byte-stable.
std::string writeJson(const Json &V, bool Pretty = true);

/// Escapes \p S for embedding between double quotes in JSON output.
std::string jsonEscape(const std::string &S);

} // namespace wr::obs

#endif // WEBRACER_OBS_JSON_H

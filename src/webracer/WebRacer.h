//===- webracer/WebRacer.h - Umbrella header --------------------*- C++ -*-===//
//
// Part of the WebRacer reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Umbrella header: everything a WebRacer user needs.
///
///  * webracer::Session / SessionOptions / SessionResult - run detection
///    over a page (webracer/Session.h).
///  * rt::Browser - the simulated engine, for fine-grained driving
///    (runtime/Browser.h).
///  * detect::RaceDetector, detect::Race, filters, reports
///    (detect/*.h).
///  * explore::Explorer - automatic user-interaction exploration
///    (explore/Explorer.h).
///  * TraceLog / detect::replayTrace - record an execution once, replay
///    detectors and filters offline (instr/TraceLog.h,
///    detect/TraceReplay.h).
///  * sites:: - the synthetic Fortune-100 corpus used by the benchmarks,
///    with serial and thread-pool corpus drivers (sites/*.h).
///  * analysis:: - the ahead-of-time static race analyzer and the
///    static-vs-dynamic cross-validation harness (analysis/*.h).
///  * triage:: - stable race signatures, suppression files, and the
///    deduplicating batch-ingest mode over trace directories
///    (triage/*.h).
///  * obs:: - the observability layer: metrics registry, phase timers,
///    RunStats, and the schema-versioned report builders
///    (obs/*.h, webracer/RunReport.h, sites/CorpusReport.h).
///
//===----------------------------------------------------------------------===//

#ifndef WEBRACER_WEBRACER_WEBRACER_H
#define WEBRACER_WEBRACER_WEBRACER_H

#include "analysis/CrossCheck.h"
#include "analysis/Scenarios.h"
#include "analysis/StaticAnalyzer.h"
#include "detect/Filters.h"
#include "detect/RaceDetector.h"
#include "detect/Report.h"
#include "detect/TraceReplay.h"
#include "explore/Explorer.h"
#include "hb/HbGraph.h"
#include "instr/TraceLog.h"
#include "obs/Metrics.h"
#include "obs/Reporter.h"
#include "obs/RunStats.h"
#include "runtime/Browser.h"
#include "sites/Corpus.h"
#include "sites/CorpusReport.h"
#include "sites/CorpusRunner.h"
#include "triage/Batch.h"
#include "triage/Signature.h"
#include "triage/Suppression.h"
#include "webracer/Harm.h"
#include "webracer/RunReport.h"
#include "webracer/Session.h"

#endif // WEBRACER_WEBRACER_WEBRACER_H

//===- webracer/Session.h - One detection run over one page -----*- C++ -*-===//
//
// Part of the WebRacer reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The top-level API: a Session wires a simulated browser, the race
/// detector, and automatic exploration into one run over one page, and
/// returns raw and filtered race reports with run statistics. This is the
/// WEBRACER tool of the paper's Section 5 as a library.
///
/// Typical use:
/// \code
///   webracer::SessionOptions Opts;
///   webracer::Session S(Opts);
///   S.network().addResource("index.html", Html, 10);
///   webracer::SessionResult R = S.run("index.html");
///   for (const auto &Race : R.FilteredRaces) ...
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef WEBRACER_WEBRACER_SESSION_H
#define WEBRACER_WEBRACER_SESSION_H

#include "detect/Filters.h"
#include "detect/Prediction.h"
#include "detect/RaceDetector.h"
#include "detect/Report.h"
#include "explore/Explorer.h"
#include "instr/TraceLog.h"
#include "obs/RunStats.h"
#include "runtime/Browser.h"

#include <memory>
#include <string>
#include <vector>

namespace wr::triage {
class SuppressionFile;
} // namespace wr::triage

namespace wr::webracer {

/// Options for a full detection run.
struct SessionOptions {
  rt::BrowserOptions Browser;
  detect::DetectorOptions Detector;
  explore::ExploreOptions Explore;
  /// Run automatic exploration after load (Sec. 5.2.2).
  bool AutoExplore = true;
  /// Run the predictive passes (detect/Prediction.h) after the observed
  /// run, even when Detector.Engine is an HB engine (then both SHB and
  /// WCP run). Implies trace recording for the session's own use.
  bool Predict = false;

  /// Prediction runs when asked for, or implied by a predictive engine
  /// (the partial order itself lives in Detector.Engine).
  bool predictEffective() const {
    EngineKind K = Detector.Engine;
    return Predict || K == EngineKind::Shb || K == EngineKind::Wcp;
  }
  /// Optional suppression file (triage/Suppression.h); matched races are
  /// dropped from FilteredRaces after the Sec. 5.3 filters, counted in
  /// Stats.Attrition.Suppressed, and tallied per entry in
  /// SessionResult::SuppressionHits. Must outlive the session.
  const triage::SuppressionFile *Suppressions = nullptr;
  /// Record the full instrumentation trace (replayable via
  /// detect::replayTrace; costs memory).
  bool RecordTrace = false;
  /// Expected operation count for this run (0 = unknown). When set, the
  /// happens-before graph pre-sizes its per-operation tables so large
  /// pages do not pay repeated vector growth while streaming operations
  /// in; purely a capacity hint, never a limit.
  size_t ExpectedOperations = 0;
};

/// Everything a run produced.
struct SessionResult {
  std::vector<detect::Race> RawRaces;
  std::vector<detect::Race> FilteredRaces; ///< After Sec. 5.3 filters.
  explore::ExploreStats Explore;
  /// The full statistics record: HB graph sizes (total and per rule),
  /// reachability counters, detector and filter attrition figures, event
  /// loop totals, and phase timings.
  obs::RunStats Stats;
  /// Predictive passes' findings, one entry per engine run (empty when
  /// prediction was off). Mirrored into Stats.Prediction.
  std::vector<detect::PredictionResult> Predictions;
  /// Per-suppression-entry hit counts (parallel to the suppression
  /// file's entries; empty when no file was supplied). Zero-hit entries
  /// are the caller's unmatched-suppression warnings.
  std::vector<uint64_t> SuppressionHits;
  std::vector<std::string> Crashes;
  std::vector<std::string> Alerts;
  std::vector<std::string> ParseErrors;
};

/// One detection run over one page. Construct, register resources on
/// network(), then run().
class Session {
public:
  explicit Session(SessionOptions Opts = SessionOptions());
  ~Session();

  rt::NetworkSimulator &network() { return B->network(); }
  rt::Browser &browser() { return *B; }
  detect::RaceDetector &detector() { return *D; }
  const TraceLog *trace() const { return Trace.get(); }

  /// Loads \p Url, explores (if configured), and collects results.
  SessionResult run(const std::string &Url);

  /// The dispatch-count callback for the single-dispatch filter, bound to
  /// this session's browser.
  detect::DispatchCountFn dispatchCounts();

private:
  SessionOptions Opts;
  std::unique_ptr<rt::Browser> B;
  std::unique_ptr<detect::RaceDetector> D;
  std::unique_ptr<TraceLog> Trace;
};

} // namespace wr::webracer

#endif // WEBRACER_WEBRACER_SESSION_H

//===- webracer/Harm.cpp - Replay-based harmfulness classification -------------===//

#include "webracer/Harm.h"

#include "detect/TraceReplay.h"
#include "support/Format.h"

using namespace wr;
using namespace wr::webracer;
using detect::Race;
using detect::RaceKind;

const char *wr::webracer::toString(HarmVerdict V) {
  switch (V) {
  case HarmVerdict::Harmful:
    return "harmful";
  case HarmVerdict::Benign:
    return "benign";
  case HarmVerdict::Inconclusive:
    return "inconclusive";
  }
  return "?";
}

HarmAnalyzer::HarmAnalyzer(SetupFn Setup, std::string IndexUrl,
                           SessionOptions Opts)
    : Setup(std::move(Setup)), IndexUrl(std::move(IndexUrl)),
      Opts(std::move(Opts)) {}

HarmAnalyzer::ReplayOutcome
HarmAnalyzer::replay(const ReplayPlan &Plan, const Race &R) {
  SessionOptions SOpts = Opts;
  SOpts.AutoExplore = false; // The plan controls interaction precisely.
  if (Plan.ParseStepCost != 0)
    SOpts.Browser.ParseStepCost = Plan.ParseStepCost;
  Session S(SOpts);
  Setup(S.network());
  for (const auto &[Url, Latency] : Plan.Overrides)
    S.network().overrideLatency(Url, Latency);

  rt::Browser &B = S.browser();
  B.loadPage(IndexUrl);
  ++Replays;

  ReplayOutcome Out;
  auto Act = [&] {
    Node *N = B.nodeById(Plan.ActOnNode);
    Element *E = N ? dyn_cast<Element>(N) : nullptr;
    if (!E || !E->inDocument())
      return false;
    if (!Plan.TypeText.empty())
      B.userType(E, Plan.TypeText);
    else if (!Plan.UserEventType.empty())
      B.userEvent(E, Plan.UserEventType);
    else
      return false;
    return true;
  };

  if (Plan.ActOnNode != InvalidNodeId && !Plan.ActAfterLoad) {
    // Act at the earliest moment the target exists: the adversarial
    // "user beats the page" schedule.
    while (B.loop().pendingTasks() > 0) {
      if ((Out.ActionPerformed = Act()))
        break;
      B.loop().runOne();
    }
  }
  B.runToQuiescence();
  if (Plan.ActOnNode != InvalidNodeId && Plan.ActAfterLoad) {
    Out.ActionPerformed = Act();
    B.runToQuiescence();
  }
  if (Plan.Explore) {
    explore::Explorer E(B, Opts.Explore);
    E.run();
  }

  Out.Crashes = B.crashLog().size();
  if (const auto *Var = std::get_if<JSVarLoc>(&R.Loc)) {
    if (isDomContainer(Var->Container)) {
      Node *N = B.nodeById(nodeOfContainer(Var->Container));
      if (Element *E = N ? dyn_cast<Element>(N) : nullptr) {
        Out.FinalFormValue = E->formValue();
        Out.FormValueValid = true;
      }
    }
  }
  if (const auto *Handler = std::get_if<EventHandlerLoc>(&R.Loc)) {
    rt::TargetKey Key{Handler->Target, Handler->TargetObject};
    Out.HandlerInstalled =
        B.hasRegisteredHandler(Key, Handler->EventType);
    Out.HandlerExecuted = B.anyHandlerExecuted(Key, Handler->EventType);
  }
  return Out;
}

/// Finds the access performed by a user/timer/network-triggered
/// operation, preferring the given kind.
static const Access *pickAccess(const Race &R, AccessKind Kind) {
  if (R.First.Kind == Kind)
    return &R.First;
  if (R.Second.Kind == Kind)
    return &R.Second;
  return nullptr;
}

HarmEvidence HarmAnalyzer::analyzeFormRace(const Race &R,
                                           const HbGraph &Hb) {
  const auto *Var = std::get_if<JSVarLoc>(&R.Loc);
  if (!Var || !isDomContainer(Var->Container))
    return {HarmVerdict::Inconclusive, "not a form-field location"};
  NodeId Box = nodeOfContainer(Var->Container);

  // Delay any network-triggered script side so the probe input lands
  // first; then see whether the page destroys it (Sec. 6.3's "user input
  // would be deleted by a script executing later").
  ReplayPlan Plan;
  Plan.ActOnNode = Box;
  Plan.TypeText = "HARMPROBE";
  for (const Access *A : {&R.First, &R.Second}) {
    const Operation &Op = Hb.operation(A->Op);
    if (Op.Trigger == TriggerKind::Network &&
        A->Origin != AccessOrigin::UserInput)
      Plan.Overrides.push_back({Op.TriggerKey, 50'000});
  }
  ReplayOutcome Out = replay(Plan, R);
  if (!Out.ActionPerformed || !Out.FormValueValid)
    return {HarmVerdict::Inconclusive,
            "could not type into the field during replay"};
  if (Out.FinalFormValue != "HARMPROBE")
    return {HarmVerdict::Harmful,
            strFormat("typed input was overwritten with \"%s\"",
                      Out.FinalFormValue.c_str())};
  return {HarmVerdict::Benign, "typed input survived the race"};
}

HarmEvidence HarmAnalyzer::analyzeCrashRace(const Race &R,
                                            const HbGraph &Hb) {
  // Identify the reading side (the potential crasher) and the writing
  // side (the creation/declaration it may miss).
  const Access *Read = pickAccess(R, AccessKind::Read);
  const Access *Write = pickAccess(R, AccessKind::Write);
  if (!Read || !Write)
    return {HarmVerdict::Inconclusive, "no read/write pair"};
  const Operation &ReadOp = Hb.operation(Read->Op);
  const Operation &WriteOp = Hb.operation(Write->Op);

  if (ReadOp.Trigger == TriggerKind::User &&
      ReadOp.Subject != InvalidNodeId && !ReadOp.EventType.empty()) {
    // Fire the same user event as early as possible, delaying a
    // network-triggered writer; compare crashes against acting after
    // load.
    ReplayPlan Early;
    Early.ActOnNode = ReadOp.Subject;
    Early.UserEventType = ReadOp.EventType;
    if (WriteOp.Trigger == TriggerKind::Network)
      Early.Overrides.push_back({WriteOp.TriggerKey, 200'000});
    ReplayPlan Late = Early;
    Late.ActAfterLoad = true;
    Late.Overrides.clear();
    ReplayOutcome EarlyOut = replay(Early, R);
    ReplayOutcome LateOut = replay(Late, R);
    if (!EarlyOut.ActionPerformed)
      return {HarmVerdict::Inconclusive,
              "could not trigger the reading operation early"};
    if (EarlyOut.Crashes > LateOut.Crashes)
      return {HarmVerdict::Harmful,
              strFormat("early %s caused an uncaught exception (%zu vs "
                        "%zu crashes)",
                        ReadOp.EventType.c_str(), EarlyOut.Crashes,
                        LateOut.Crashes)};
    return {HarmVerdict::Benign,
            "reading operation tolerates running first"};
  }

  if (ReadOp.Trigger == TriggerKind::Timer) {
    // Slow parsing down so timer callbacks interleave with it; a reader
    // that dereferences missing nodes will crash, a guarded poller will
    // not (the Ford pattern).
    ReplayPlan Slowed;
    Slowed.ParseStepCost = 30'000;
    ReplayPlan Natural;
    ReplayOutcome SlowedOut = replay(Slowed, R);
    ReplayOutcome NaturalOut = replay(Natural, R);
    if (SlowedOut.Crashes > NaturalOut.Crashes)
      return {HarmVerdict::Harmful,
              strFormat("timer callback crashed when parsing was slow "
                        "(%zu vs %zu crashes)",
                        SlowedOut.Crashes, NaturalOut.Crashes)};
    return {HarmVerdict::Benign,
            "timer callback tolerates incomplete parsing (guarded "
            "polling)"};
  }

  return {HarmVerdict::Inconclusive,
          strFormat("cannot construct the adverse schedule for a %s-"
                    "triggered reader",
                    ReadOp.Trigger == TriggerKind::Network ? "network"
                                                           : "parser")};
}

HarmEvidence HarmAnalyzer::analyzeDispatchRace(const Race &R,
                                               const HbGraph &Hb) {
  const Access *Read = pickAccess(R, AccessKind::Read);
  const Access *Write = pickAccess(R, AccessKind::Write);
  if (!Read || !Write)
    return {HarmVerdict::Inconclusive, "no read/write pair"};
  const Operation &DispatchOp = Hb.operation(Read->Op);
  const Operation &InstallOp = Hb.operation(Write->Op);

  // Force the dispatch before the installation: hasten the dispatch's
  // network trigger, delay the installer's.
  ReplayPlan Plan;
  bool CanFlip = false;
  if (DispatchOp.Trigger == TriggerKind::Network) {
    Plan.Overrides.push_back({DispatchOp.TriggerKey, 1});
    CanFlip = true;
  }
  if (InstallOp.Trigger == TriggerKind::Network) {
    Plan.Overrides.push_back({InstallOp.TriggerKey, 200'000});
    CanFlip = true;
  }
  if (InstallOp.Trigger == TriggerKind::Timer &&
      DispatchOp.Trigger == TriggerKind::Network)
    CanFlip = true; // Fast network beats the first timer tick.
  if (!CanFlip)
    return {HarmVerdict::Inconclusive,
            "neither side of the dispatch race is network-triggered"};

  ReplayOutcome Out = replay(Plan, R);
  if (Out.HandlerInstalled && !Out.HandlerExecuted)
    return {HarmVerdict::Harmful,
            "handler was installed but its event had already dispatched; "
            "the handler never ran"};
  if (Out.HandlerExecuted)
    return {HarmVerdict::Benign,
            "handler still executed under the adverse schedule"};
  return {HarmVerdict::Inconclusive,
          "handler was never installed during replay"};
}

HarmEvidence HarmAnalyzer::analyze(const Race &R, const HbGraph &Hb) {
  switch (R.Kind) {
  case RaceKind::Variable:
    return analyzeFormRace(R, Hb);
  case RaceKind::Html:
  case RaceKind::Function:
    return analyzeCrashRace(R, Hb);
  case RaceKind::EventDispatch:
    return analyzeDispatchRace(R, Hb);
  }
  return {HarmVerdict::Inconclusive, "unknown race kind"};
}

HarmEvidence HarmAnalyzer::analyze(const Race &R, const TraceLog &Trace) {
  HbGraph Hb = detect::buildHbGraphFromTrace(Trace);
  return analyze(R, Hb);
}

//===- webracer/RunReport.cpp - Machine-readable run reports -----------------===//

#include "webracer/RunReport.h"

using namespace wr;
using namespace wr::webracer;

static obs::Json accessToJson(const Access &A, const HbGraph &Hb) {
  obs::Json O = obs::Json::object();
  O.set("access", toString(A.Kind));
  O.set("origin", toString(A.Origin));
  O.set("op", static_cast<uint64_t>(A.Op));
  const Operation &Op = Hb.operation(A.Op);
  O.set("op_kind", toString(Op.Kind));
  O.set("op_label", Op.Label);
  if (!A.Detail.empty())
    O.set("detail", A.Detail);
  return O;
}

obs::Json wr::webracer::raceToJson(const detect::Race &R,
                                   const HbGraph &Hb) {
  obs::Json O = obs::Json::object();
  O.set("kind", detect::toString(R.Kind));
  O.set("location", toString(R.Loc));
  O.set("first", accessToJson(R.First, Hb));
  O.set("second", accessToJson(R.Second, Hb));
  if (R.WriteHadPriorReadInOp)
    O.set("write_had_prior_read", true);
  return O;
}

obs::Json wr::webracer::predictionsToJson(
    const std::vector<detect::PredictionResult> &Predictions,
    const HbGraph &Hb) {
  obs::Json O = obs::Json::object();
  for (const detect::PredictionResult &P : Predictions) {
    obs::Json Arr = obs::Json::array();
    for (const detect::PredictedRace &PR : P.Races) {
      obs::Json R = raceToJson(PR.R, Hb);
      R.set("verdict", detect::toString(PR.Verdict));
      Arr.push(std::move(R));
    }
    O.set(toString(P.Engine), std::move(Arr));
  }
  return O;
}

obs::Json wr::webracer::buildRunReport(const std::string &Name,
                                       const SessionResult &R,
                                       const HbGraph &Hb,
                                       bool IncludeTiming) {
  obs::Json Doc = obs::makeReportEnvelope("run", Name);
  Doc.set("stats", R.Stats.toJson());
  if (IncludeTiming) {
    obs::Json Timing = obs::Json::object();
    Timing.set("phases_wall_ms", R.Stats.Phases.wallJson());
    Doc.set("timing", std::move(Timing));
  }
  obs::Json Races = obs::Json::object();
  obs::Json Raw = obs::Json::array();
  for (const detect::Race &Race : R.RawRaces)
    Raw.push(raceToJson(Race, Hb));
  Races.set("raw", std::move(Raw));
  obs::Json Filtered = obs::Json::array();
  for (const detect::Race &Race : R.FilteredRaces)
    Filtered.push(raceToJson(Race, Hb));
  Races.set("filtered", std::move(Filtered));
  if (!R.Predictions.empty())
    Races.set("predicted", predictionsToJson(R.Predictions, Hb));
  Doc.set("races", std::move(Races));
  return Doc;
}

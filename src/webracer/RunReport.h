//===- webracer/RunReport.h - Machine-readable run reports ------*- C++ -*-===//
//
// Part of the WebRacer reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builds the stable JSON report for one detection run: the schema-1
/// envelope, the deterministic "stats" object (obs::RunStats), every raw
/// and filtered race, and - optionally - the nondeterministic wall-clock
/// timing section. Render with obs::JsonReporter for machines or
/// obs::TextReporter for terminals; both backends consume the same
/// document, so the two outputs can never drift apart.
///
//===----------------------------------------------------------------------===//

#ifndef WEBRACER_WEBRACER_RUNREPORT_H
#define WEBRACER_WEBRACER_RUNREPORT_H

#include "obs/Json.h"
#include "obs/Reporter.h"
#include "webracer/Session.h"

#include <string>

namespace wr::webracer {

/// One race as a JSON object (kind, location, both accesses, guard note).
obs::Json raceToJson(const detect::Race &R, const HbGraph &Hb);

/// The predictive passes' findings as one object keyed by engine name;
/// each engine maps to its candidate races, tagged with the
/// observed-vs-predicted verdict. Emitted under races."predicted" only
/// when prediction ran, so non-predicting reports stay byte-identical.
obs::Json predictionsToJson(
    const std::vector<detect::PredictionResult> &Predictions,
    const HbGraph &Hb);

/// The full report document for one run. \p IncludeTiming adds the
/// wall-clock section; leave it off when the report must be byte-stable
/// (golden tests, cross-job comparison). "races" is the last key so text
/// renderings end with the race listing.
obs::Json buildRunReport(const std::string &Name, const SessionResult &R,
                         const HbGraph &Hb, bool IncludeTiming = false);

} // namespace wr::webracer

#endif // WEBRACER_WEBRACER_RUNREPORT_H

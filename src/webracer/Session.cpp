//===- webracer/Session.cpp - One detection run over one page -----------------===//

#include "webracer/Session.h"

using namespace wr;
using namespace wr::webracer;

Session::Session(SessionOptions Options) : Opts(Options) {
  B = std::make_unique<rt::Browser>(Opts.Browser);
  B->hb().setUseVectorClocks(Opts.UseVectorClocks);
  D = std::make_unique<detect::RaceDetector>(B->hb(), Opts.Detector);
  B->addSink(D.get());
  if (Opts.RecordTrace) {
    Trace = std::make_unique<TraceLog>();
    B->addSink(Trace.get());
  }
}

Session::~Session() = default;

detect::DispatchCountFn Session::dispatchCounts() {
  rt::Browser *Browser = B.get();
  return [Browser](const EventHandlerLoc &Loc) {
    return Browser->dispatchCount(
        rt::TargetKey{Loc.Target, Loc.TargetObject}, Loc.EventType);
  };
}

SessionResult Session::run(const std::string &Url) {
  B->loadPage(Url);
  B->runToQuiescence();

  SessionResult Result;
  if (Opts.AutoExplore) {
    explore::Explorer E(*B, Opts.Explore);
    Result.Explore = E.run();
  }

  Result.RawRaces = D->races();
  Result.FilteredRaces =
      detect::applyPaperFilters(Result.RawRaces, dispatchCounts());
  Result.Operations = B->hb().numOperations();
  Result.HbEdges = B->hb().numEdges();
  Result.ChcQueries = D->chcQueries();
  Result.Crashes = B->crashLog();
  Result.Alerts = B->alerts();
  Result.ParseErrors = B->parseErrorLog();
  return Result;
}

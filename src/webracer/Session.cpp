//===- webracer/Session.cpp - One detection run over one page -----------------===//

#include "webracer/Session.h"

#include "triage/Suppression.h"

using namespace wr;
using namespace wr::webracer;

Session::Session(SessionOptions Options) : Opts(Options) {
  B = std::make_unique<rt::Browser>(Opts.Browser);
  // The live detector always runs under observed happens-before; the
  // engine choice selects the graph strategy here and the predictive
  // passes (which need the recorded trace) in run().
  B->hb().setUseVectorClocks(Opts.Detector.Engine != EngineKind::HbDfs);
  if (Opts.ExpectedOperations)
    B->hb().reserveOperations(Opts.ExpectedOperations);
  D = std::make_unique<detect::RaceDetector>(B->hb(), B->interner(),
                                             Opts.Detector);
  D->setPhaseStats(&B->phaseStats());
  B->addSink(D.get());
  if (Opts.RecordTrace || Opts.predictEffective()) {
    Trace = std::make_unique<TraceLog>();
    B->addSink(Trace.get());
  }
}

Session::~Session() = default;

detect::DispatchCountFn Session::dispatchCounts() {
  rt::Browser *Browser = B.get();
  return [Browser](const EventHandlerLoc &Loc) {
    return Browser->dispatchCount(
        rt::TargetKey{Loc.Target, Loc.TargetObject}, Loc.EventType);
  };
}

SessionResult Session::run(const std::string &Url) {
  B->loadPage(Url);
  B->runToQuiescence();

  SessionResult Result;
  if (Opts.AutoExplore) {
    obs::PhaseTimer Timer(&B->phaseStats(), obs::Phase::Explore);
    explore::Explorer E(*B, Opts.Explore);
    Result.Explore = E.run();
  }

  Result.RawRaces = D->races();
  detect::FilterCounts Attrition;
  {
    obs::PhaseTimer Timer(&B->phaseStats(), obs::Phase::Filter);
    Result.FilteredRaces = detect::applyPaperFilters(
        Result.RawRaces, dispatchCounts(), &Attrition);
    // User suppressions run as the last filter stage: drops land in the
    // attrition record (never silent) and hit counts go back per entry.
    if (Opts.Suppressions && !Opts.Suppressions->empty())
      Result.FilteredRaces = triage::applySuppressions(
          Result.FilteredRaces, B->hb(), *Opts.Suppressions, &Attrition,
          &Result.SuppressionHits);
  }
  Result.Crashes = B->crashLog();
  Result.Alerts = B->alerts();
  Result.ParseErrors = B->parseErrorLog();

  const HbGraph &Hb = B->hb();
  obs::RunStats &S = Result.Stats;
  S.Operations = Hb.numOperations();
  S.HbEdges = Hb.numEdges();
  for (size_t I = 0; I < NumHbRules; ++I)
    if (uint64_t N = Hb.edgesByRule()[I])
      S.HbEdgesByRule.push_back(
          {wr::toString(static_cast<HbRule>(I)), N});
  S.ChcQueries = D->chcQueries();
  S.DfsVisits = Hb.dfsVisitCount();
  S.DfsMemoHits = Hb.memoHits();
  S.VcChains = Hb.numChains();
  S.ClockBytes = Hb.clockBytes();
  S.ClockMerges = Hb.clockMerges();
  S.SharedClocks = Hb.sharedClocks();
  S.AccessesSeen = D->accessesSeen();
  S.TrackedLocations = D->trackedLocations();
  S.InternedLocations = B->interner().size();
  S.InternHits = B->interner().hits();
  S.EpochHits = D->epochHits();
  S.ReadsSeen = D->readsSeen();
  S.EpochReads = D->epochReads();
  S.ReadInflations = D->readInflations();
  S.ReadDeflations = D->readDeflations();
  S.ReadVectorLocations = D->readVectorLocations();
  S.DetectorBytes = D->detectorBytes();
  S.Sampling = D->samplingStats();
  S.Raw = detect::tally(Result.RawRaces);
  S.Filtered = detect::tally(Result.FilteredRaces);
  S.Attrition = detect::toAttrition(Attrition);
  S.TasksRun = B->loop().executedTasks();
  S.VirtualTimeUs = B->loop().now();
  S.Crashes = Result.Crashes.size();
  S.Alerts = Result.Alerts.size();
  S.ParseErrors = Result.ParseErrors.size();
  S.EventsDispatched = Result.Explore.EventsDispatched;
  S.LinksClicked = Result.Explore.LinksClicked;
  S.BoxesTyped = Result.Explore.BoxesTyped;

  if (Opts.predictEffective() && Trace) {
    obs::PhaseTimer Timer(&B->phaseStats(), obs::Phase::Detect);
    for (EngineKind K : detect::enginesToPredict(Opts.Detector.Engine)) {
      Result.Predictions.push_back(
          detect::predictRaces(*Trace, K, Result.RawRaces));
      S.Prediction.push_back(detect::toStatsRow(Result.Predictions.back()));
    }
  }
  S.Phases = B->phaseStats();
  return Result;
}

//===- webracer/Harm.h - Replay-based harmfulness classification -*- C++ -*-===//
//
// Part of the WebRacer reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Mechanizes the paper's harmfulness criteria (Sec. 6.1/6.3), which the
/// authors applied by manual inspection:
///
///  * HTML race: harmful if it can cause an attempted access to a
///    yet-to-be-created DOM node (a runtime exception).
///  * Function race: harmful if it can cause an invocation of a
///    yet-to-be-parsed function.
///  * Variable (form) race: harmful if user input can be erased.
///  * Event-dispatch race: harmful if a handler attached to the event
///    might never execute.
///
/// Because every source of nondeterminism in the simulated browser is a
/// schedulable input (network latencies, user-action timing), the
/// analyzer can *replay* the page under an adversarial schedule aimed at
/// the specific race - hasten the reader, delay the writer - and then
/// observe the criterion directly: a fresh crash, a destroyed form value,
/// or an installed-but-never-executed handler. When it cannot construct
/// the flip (e.g. a timer racing with same-document parsing, where our
/// engine cannot move the timer before the parse), it reports
/// Inconclusive rather than guessing - mirroring the paper's conservative
/// "harmful only when clearly so" stance.
///
//===----------------------------------------------------------------------===//

#ifndef WEBRACER_WEBRACER_HARM_H
#define WEBRACER_WEBRACER_HARM_H

#include "webracer/Session.h"

#include <functional>
#include <string>

namespace wr::webracer {

/// Classification outcome.
enum class HarmVerdict : uint8_t { Harmful, Benign, Inconclusive };

const char *toString(HarmVerdict V);

/// A verdict plus the observation supporting it.
struct HarmEvidence {
  HarmVerdict Verdict = HarmVerdict::Inconclusive;
  std::string Reason;
};

/// Replays a page under race-targeted schedules and applies the paper's
/// per-type criteria.
class HarmAnalyzer {
public:
  /// \p Setup registers the page's resources into a fresh session's
  /// network; \p IndexUrl is the page to load. The analyzer constructs as
  /// many fresh sessions as it needs (the engine is deterministic modulo
  /// the perturbations it applies).
  using SetupFn = std::function<void(rt::NetworkSimulator &)>;

  HarmAnalyzer(SetupFn Setup, std::string IndexUrl,
               SessionOptions Opts = SessionOptions());

  /// Classifies one race found in a prior run over the same page.
  /// \p Hb is that run's happens-before graph (for operation metadata).
  HarmEvidence analyze(const detect::Race &R, const HbGraph &Hb);

  /// Offline variant: takes the race and the recorded trace of the run
  /// that found it, reconstructing the happens-before graph from the
  /// trace. The prior run's session does not need to be alive - races
  /// recorded in one process can be classified in another.
  HarmEvidence analyze(const detect::Race &R, const TraceLog &Trace);

  /// Number of replays executed so far.
  size_t replaysRun() const { return Replays; }

private:
  struct ReplayPlan {
    /// Latency overrides applied before the run.
    std::vector<std::pair<std::string, rt::VirtualTime>> Overrides;
    /// Dispatch this user event on this node as soon as the node exists
    /// ("" = none). For typing, Text is non-empty.
    NodeId ActOnNode = InvalidNodeId;
    std::string UserEventType;
    std::string TypeText;
    /// Act after window load instead of as early as possible (baseline).
    bool ActAfterLoad = false;
    /// Parser slowdown (µs per step; 0 = default).
    rt::VirtualTime ParseStepCost = 0;
    /// Run automatic exploration after load.
    bool Explore = false;
  };

  struct ReplayOutcome {
    size_t Crashes = 0;
    std::string FinalFormValue;
    bool FormValueValid = false;
    bool HandlerExecuted = false;
    bool HandlerInstalled = false;
    bool ActionPerformed = false;
  };

  /// Runs the page under \p Plan; observes the state relevant to \p R.
  ReplayOutcome replay(const ReplayPlan &Plan, const detect::Race &R);

  HarmEvidence analyzeFormRace(const detect::Race &R, const HbGraph &Hb);
  HarmEvidence analyzeCrashRace(const detect::Race &R, const HbGraph &Hb);
  HarmEvidence analyzeDispatchRace(const detect::Race &R,
                                   const HbGraph &Hb);

  SetupFn Setup;
  std::string IndexUrl;
  SessionOptions Opts;
  size_t Replays = 0;
};

} // namespace wr::webracer

#endif // WEBRACER_WEBRACER_HARM_H

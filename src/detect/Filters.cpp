//===- detect/Filters.cpp - Race report post-processing filters -------------===//

#include "detect/Filters.h"

using namespace wr;
using namespace wr::detect;

bool wr::detect::involvesFormField(const Race &R) {
  auto FormOrigin = [](AccessOrigin O) {
    return O == AccessOrigin::FormFieldRead ||
           O == AccessOrigin::FormFieldWrite ||
           O == AccessOrigin::UserInput;
  };
  return FormOrigin(R.First.Origin) || FormOrigin(R.Second.Origin);
}

std::vector<Race>
wr::detect::filterFormRaces(const std::vector<Race> &Races,
                            FilterCounts *Counts) {
  std::vector<Race> Kept;
  for (const Race &R : Races) {
    if (R.Kind != RaceKind::Variable) {
      Kept.push_back(R);
      continue;
    }
    if (!involvesFormField(R)) {
      if (Counts)
        ++Counts->NotFormField;
      continue;
    }
    // Refinement: a write preceded by a read of the same field in the
    // same operation usually checks that the user has not modified the
    // field, making the race harmless.
    if (R.WriteHadPriorReadInOp) {
      if (Counts)
        ++Counts->PriorReadGuard;
      continue;
    }
    Kept.push_back(R);
  }
  return Kept;
}

std::vector<Race>
wr::detect::filterSingleDispatch(const std::vector<Race> &Races,
                                 const DispatchCountFn &Counts,
                                 FilterCounts *Attrition) {
  std::vector<Race> Kept;
  for (const Race &R : Races) {
    if (R.Kind != RaceKind::EventDispatch) {
      Kept.push_back(R);
      continue;
    }
    const auto *Loc = std::get_if<EventHandlerLoc>(&R.Loc);
    if (!Loc)
      continue;
    if (Counts && Counts(*Loc) > 1) {
      // Multi-dispatch events: missing one is less serious.
      if (Attrition)
        ++Attrition->MultiDispatch;
      continue;
    }
    Kept.push_back(R);
  }
  return Kept;
}

std::vector<Race>
wr::detect::applyPaperFilters(const std::vector<Race> &Races,
                              const DispatchCountFn &Counts,
                              FilterCounts *Attrition) {
  if (Attrition)
    Attrition->Input += Races.size();
  std::vector<Race> Kept =
      filterSingleDispatch(filterFormRaces(Races, Attrition), Counts,
                           Attrition);
  if (Attrition)
    Attrition->Kept += Kept.size();
  return Kept;
}

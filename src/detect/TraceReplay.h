//===- detect/TraceReplay.h - Offline detection over a trace ----*- C++ -*-===//
//
// Part of the WebRacer reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs the race-detection pipeline offline over a recorded TraceLog: the
/// happens-before graph is reconstructed event by event, the detector
/// consumes the access stream in recorded order, and the Sec. 5.3 filters
/// draw their dispatch counts from the trace's dispatch records. Because
/// replay processes events in exactly the order the engine emitted them,
/// an offline run is observationally identical to the online run that
/// recorded the trace - same races, same filtered set, same CHC query
/// count - so detector-mode and filter ablations can compare
/// configurations against one recorded execution instead of re-running
/// the browser per configuration.
///
/// Replay defaults to the vector-clock happens-before representation: a
/// trace consumer issues the same CHC queries as the online detector but
/// pays no instrumentation cost, so the O(1) clock lookup dominates DFS
/// even more clearly than online.
///
//===----------------------------------------------------------------------===//

#ifndef WEBRACER_DETECT_TRACEREPLAY_H
#define WEBRACER_DETECT_TRACEREPLAY_H

#include "detect/Filters.h"
#include "detect/Prediction.h"
#include "detect/RaceDetector.h"
#include "detect/Report.h"
#include "instr/TraceLog.h"
#include "obs/RunStats.h"

#include <vector>

namespace wr::detect {

/// Configuration for one offline detection run. The partial order lives
/// in Detector.Engine (hb | hb-dfs | shb | wcp); the observed-race pass
/// always replays under happens-before (byte-identical to the online
/// run), and selecting a predictive engine - or setting Predict - adds
/// detect/Prediction.h passes whose results land in
/// ReplayResult::Predictions and the stats' wr_prediction rows.
struct ReplayOptions {
  DetectorOptions Detector;
  /// Run the predictive passes even when Detector.Engine is an HB
  /// engine (then both SHB and WCP run, for the side-by-side delta).
  bool Predict = false;

  /// Prediction runs when asked for, or implied by a predictive engine
  /// (the partial order itself lives in Detector.Engine).
  bool predictEffective() const {
    EngineKind K = Detector.Engine;
    return Predict || K == EngineKind::Shb || K == EngineKind::Wcp;
  }
};

/// Everything an offline run produces. Mirrors the detection-relevant
/// fields of webracer::SessionResult.
struct ReplayResult {
  std::vector<Race> RawRaces;
  std::vector<Race> FilteredRaces; ///< After the Sec. 5.3 filters.
  /// The detection-relevant statistics (operations, HB edges, CHC
  /// queries, intern/epoch counters, crashes, ...) as a structured
  /// record; the browser-side figures - tasks, virtual time, exploration
  /// - stay zero offline.
  obs::RunStats Stats;
  /// The reconstructed happens-before graph, for report rendering
  /// (describeRaces) and offline harm analysis.
  HbGraph Hb;
  /// Predictive passes' findings, one entry per engine run (empty when
  /// prediction was off). Mirrored into Stats.Prediction.
  std::vector<PredictionResult> Predictions;
};

/// Reconstructs the happens-before graph alone (operations with their full
/// metadata plus rule-tagged edges) from \p Log.
HbGraph buildHbGraphFromTrace(const TraceLog &Log,
                              bool UseVectorClocks = true);

/// A DispatchCountFn backed by the trace's dispatch records; keys counts
/// by (target node, target object, event type) exactly like the engine.
DispatchCountFn dispatchCountsFromTrace(const TraceLog &Log);

/// Replays \p Log through a fresh detector and the paper filters.
ReplayResult replayTrace(const TraceLog &Log,
                         const ReplayOptions &Opts = ReplayOptions());

} // namespace wr::detect

#endif // WEBRACER_DETECT_TRACEREPLAY_H

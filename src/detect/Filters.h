//===- detect/Filters.h - Race report post-processing filters ---*- C++ -*-===//
//
// Part of the WebRacer reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The post-processing filters of the paper's Section 5.3, used in the
/// evaluation to focus attention on races likely to be harmful:
///
///  * Form-race filter: keeps only variable races that involve the value
///    of an HTML form field, and additionally drops races where the
///    writing operation read the field before writing it (such reads
///    typically guard against clobbering user input).
///
///  * Single-dispatch filter: keeps only event-dispatch races on events
///    that dispatched at most once in the run (e.g. load); a handler
///    missing one of many clicks is rarely serious, a handler missing the
///    only load event never runs at all.
///
/// HTML and function races pass through both filters unchanged (Table 2
/// reports them alongside the filtered variable/event-dispatch counts).
///
//===----------------------------------------------------------------------===//

#ifndef WEBRACER_DETECT_FILTERS_H
#define WEBRACER_DETECT_FILTERS_H

#include "detect/RaceDetector.h"
#include "obs/RunStats.h"

#include <functional>
#include <vector>

namespace wr::detect {

/// Returns the count of dispatches observed for the event-handler
/// location's (target, event) pair during the run.
using DispatchCountFn = std::function<int(const EventHandlerLoc &)>;

/// Where the filter pipeline dropped reports (the Table 2 attrition
/// columns). Counts accumulate, so one record can span several calls.
struct FilterCounts {
  size_t Input = 0;          ///< Races entering the pipeline.
  size_t NotFormField = 0;   ///< Variable races not on a form field.
  size_t PriorReadGuard = 0; ///< Write guarded by a prior read.
  size_t MultiDispatch = 0;  ///< Event races on multi-dispatch events.
  size_t Suppressed = 0;     ///< Matched a user suppression (triage).
  size_t Kept = 0;           ///< Races surviving every filter.
};

/// Applies the form-race filter to \p Races (variable races only).
/// \p Counts, when non-null, accumulates the per-reason attrition.
std::vector<Race> filterFormRaces(const std::vector<Race> &Races,
                                  FilterCounts *Counts = nullptr);

/// Applies the single-dispatch filter (event-dispatch races only).
std::vector<Race> filterSingleDispatch(const std::vector<Race> &Races,
                                       const DispatchCountFn &Counts,
                                       FilterCounts *Attrition = nullptr);

/// Applies both Sec. 5.3 filters. With \p Attrition non-null, fills
/// Input/Kept and the per-reason drop counts for the whole pipeline.
std::vector<Race> applyPaperFilters(const std::vector<Race> &Races,
                                    const DispatchCountFn &Counts,
                                    FilterCounts *Attrition = nullptr);

/// True if \p R involves a form-field value (the form filter predicate).
bool involvesFormField(const Race &R);

/// The attrition record as the obs-layer value RunStats carries.
inline obs::FilterAttrition toAttrition(const FilterCounts &C) {
  obs::FilterAttrition A;
  A.Input = C.Input;
  A.NotFormField = C.NotFormField;
  A.PriorReadGuard = C.PriorReadGuard;
  A.MultiDispatch = C.MultiDispatch;
  A.Suppressed = C.Suppressed;
  A.Kept = C.Kept;
  return A;
}

} // namespace wr::detect

#endif // WEBRACER_DETECT_FILTERS_H

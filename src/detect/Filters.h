//===- detect/Filters.h - Race report post-processing filters ---*- C++ -*-===//
//
// Part of the WebRacer reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The post-processing filters of the paper's Section 5.3, used in the
/// evaluation to focus attention on races likely to be harmful:
///
///  * Form-race filter: keeps only variable races that involve the value
///    of an HTML form field, and additionally drops races where the
///    writing operation read the field before writing it (such reads
///    typically guard against clobbering user input).
///
///  * Single-dispatch filter: keeps only event-dispatch races on events
///    that dispatched at most once in the run (e.g. load); a handler
///    missing one of many clicks is rarely serious, a handler missing the
///    only load event never runs at all.
///
/// HTML and function races pass through both filters unchanged (Table 2
/// reports them alongside the filtered variable/event-dispatch counts).
///
//===----------------------------------------------------------------------===//

#ifndef WEBRACER_DETECT_FILTERS_H
#define WEBRACER_DETECT_FILTERS_H

#include "detect/RaceDetector.h"

#include <functional>
#include <vector>

namespace wr::detect {

/// Returns the count of dispatches observed for the event-handler
/// location's (target, event) pair during the run.
using DispatchCountFn = std::function<int(const EventHandlerLoc &)>;

/// Applies the form-race filter to \p Races (variable races only).
std::vector<Race> filterFormRaces(const std::vector<Race> &Races);

/// Applies the single-dispatch filter (event-dispatch races only).
std::vector<Race> filterSingleDispatch(const std::vector<Race> &Races,
                                       const DispatchCountFn &Counts);

/// Applies both Sec. 5.3 filters.
std::vector<Race> applyPaperFilters(const std::vector<Race> &Races,
                                    const DispatchCountFn &Counts);

/// True if \p R involves a form-field value (the form filter predicate).
bool involvesFormField(const Race &R);

} // namespace wr::detect

#endif // WEBRACER_DETECT_FILTERS_H

//===- detect/Report.cpp - Race report rendering ------------------------------===//

#include "detect/Report.h"

#include "support/Format.h"

using namespace wr;
using namespace wr::detect;

uint64_t &RaceTally::operator[](RaceKind Kind) {
  switch (Kind) {
  case RaceKind::Variable:
    return Variable;
  case RaceKind::Html:
    return Html;
  case RaceKind::Function:
    return Function;
  case RaceKind::EventDispatch:
    return EventDispatch;
  }
  return Variable;
}

uint64_t RaceTally::operator[](RaceKind Kind) const {
  return const_cast<RaceTally *>(this)->operator[](Kind);
}

RaceTally wr::detect::tally(const std::vector<Race> &Races) {
  RaceTally T;
  for (const Race &R : Races)
    ++T[R.Kind];
  return T;
}

std::string wr::detect::describeRace(const Race &R, const HbGraph &Hb) {
  std::string Out;
  Out += strFormat("%s race on %s\n", toString(R.Kind),
                   wr::toString(R.Loc).c_str());
  auto DescribeAccess = [&](const char *Tag, const Access &A) {
    const Operation &Op = Hb.operation(A.Op);
    Out += strFormat("  %s: %s by op %u [%s %s]%s%s\n", Tag,
                     wr::toString(A.Kind), A.Op, wr::toString(Op.Kind),
                     Op.Label.c_str(),
                     A.Detail.empty() ? "" : " - ",
                     A.Detail.c_str());
  };
  DescribeAccess("first ", R.First);
  DescribeAccess("second", R.Second);
  if (R.WriteHadPriorReadInOp)
    Out += "  note: writing operation read the location first (likely a "
           "guard)\n";
  return Out;
}

std::string wr::detect::describeRaces(const std::vector<Race> &Races,
                                      const HbGraph &Hb) {
  std::string Out;
  for (size_t I = 0; I < Races.size(); ++I) {
    Out += strFormat("[%zu] ", I);
    Out += describeRace(Races[I], Hb);
  }
  return Out;
}

std::string wr::detect::summaryLine(const std::vector<Race> &Races) {
  RaceTally T = tally(Races);
  return strFormat("html=%zu function=%zu variable=%zu event-dispatch=%zu "
                   "total=%zu",
                   T.Html, T.Function, T.Variable, T.EventDispatch,
                   T.total());
}

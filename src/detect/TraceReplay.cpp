//===- detect/TraceReplay.cpp - Offline detection over a trace -------------===//

#include "detect/TraceReplay.h"

#include "support/Format.h"

#include <cassert>
#include <memory>
#include <unordered_map>

using namespace wr;
using namespace wr::detect;

/// Exact operation count of a recorded trace, so graph reconstruction can
/// pre-size its per-operation tables in one step.
static size_t countOperations(const TraceLog &Log) {
  size_t N = 0;
  for (const TraceEvent &E : Log.events())
    N += E.K == TraceEvent::Kind::OpCreated;
  return N;
}

HbGraph wr::detect::buildHbGraphFromTrace(const TraceLog &Log,
                                          bool UseVectorClocks) {
  HbGraph Hb;
  Hb.setUseVectorClocks(UseVectorClocks);
  Hb.reserveOperations(countOperations(Log));
  for (const TraceEvent &E : Log.events()) {
    switch (E.K) {
    case TraceEvent::Kind::OpCreated: {
      OpId Id = Hb.addOperation(E.Meta);
      (void)Id;
      assert(Id == E.Op && "trace must be recorded from session start");
      break;
    }
    case TraceEvent::Kind::HbEdge:
      Hb.addEdge(E.Op, E.Op2, E.Rule);
      break;
    default:
      break;
    }
  }
  return Hb;
}

DispatchCountFn wr::detect::dispatchCountsFromTrace(const TraceLog &Log) {
  // Same key the engine uses (Browser::dispatchKeyOf), so filtered results
  // replay byte-identically.
  auto Counts = std::make_shared<std::unordered_map<std::string, int>>();
  for (const TraceEvent &E : Log.events()) {
    if (E.K != TraceEvent::Kind::Dispatch)
      continue;
    std::string Key =
        strFormat("%u/%llu/%s", E.Target,
                  static_cast<unsigned long long>(E.TargetObject),
                  E.EventType.c_str());
    ++(*Counts)[Key];
  }
  return [Counts](const EventHandlerLoc &Loc) {
    std::string Key =
        strFormat("%u/%llu/%s", Loc.Target,
                  static_cast<unsigned long long>(Loc.TargetObject),
                  Loc.EventType.c_str());
    auto It = Counts->find(Key);
    return It == Counts->end() ? 0 : It->second;
  };
}

ReplayResult wr::detect::replayTrace(const TraceLog &Log,
                                     const ReplayOptions &Opts) {
  ReplayResult Result;
  // The observed pass always replays under happens-before; the engine
  // choice only selects the graph strategy (HbDfs) or adds predictive
  // passes below - race output stays byte-identical to the online run.
  Result.Hb.setUseVectorClocks(Opts.Detector.Engine != EngineKind::HbDfs);
  Result.Hb.reserveOperations(countOperations(Log));
  // The trace's interner resolves the access stream's LocIds; it was
  // either mirrored from the online engine or rebuilt by deserialize.
  RaceDetector Detector(Result.Hb, Log.interner(), Opts.Detector);
  size_t Crashes = 0;
  // One in-order pass: graph construction and detection interleave exactly
  // as they did online, so the detector sees each access against the same
  // graph prefix (and issues the same CHC queries) as the recording run.
  for (const TraceEvent &E : Log.events()) {
    switch (E.K) {
    case TraceEvent::Kind::OpCreated: {
      OpId Id = Result.Hb.addOperation(E.Meta);
      (void)Id;
      assert(Id == E.Op && "trace must be recorded from session start");
      break;
    }
    case TraceEvent::Kind::HbEdge:
      Result.Hb.addEdge(E.Op, E.Op2, E.Rule);
      break;
    case TraceEvent::Kind::MemAccess:
      Detector.onMemoryAccess(E.Mem);
      break;
    case TraceEvent::Kind::OpEnd:
      if (E.Crashed)
        ++Crashes;
      break;
    default:
      break;
    }
  }
  Result.RawRaces = Detector.races();
  FilterCounts Attrition;
  Result.FilteredRaces = applyPaperFilters(
      Result.RawRaces, dispatchCountsFromTrace(Log), &Attrition);

  obs::RunStats &S = Result.Stats;
  S.Operations = Result.Hb.numOperations();
  S.HbEdges = Result.Hb.numEdges();
  for (size_t I = 0; I < NumHbRules; ++I)
    if (uint64_t N = Result.Hb.edgesByRule()[I])
      S.HbEdgesByRule.push_back(
          {wr::toString(static_cast<HbRule>(I)), N});
  S.ChcQueries = Detector.chcQueries();
  S.DfsVisits = Result.Hb.dfsVisitCount();
  S.DfsMemoHits = Result.Hb.memoHits();
  S.VcChains = Result.Hb.numChains();
  S.ClockBytes = Result.Hb.clockBytes();
  S.ClockMerges = Result.Hb.clockMerges();
  S.SharedClocks = Result.Hb.sharedClocks();
  S.AccessesSeen = Detector.accessesSeen();
  S.TrackedLocations = Detector.trackedLocations();
  S.InternedLocations = Log.interner().size();
  // Online, the engine interns exactly once per recorded access, so hits
  // are accesses minus distinct locations; compute the same figure here
  // (the trace's interner is prepopulated, not probed per access).
  S.InternHits = S.AccessesSeen >= S.InternedLocations
                     ? S.AccessesSeen - S.InternedLocations
                     : 0;
  S.EpochHits = Detector.epochHits();
  S.ReadsSeen = Detector.readsSeen();
  S.EpochReads = Detector.epochReads();
  S.ReadInflations = Detector.readInflations();
  S.ReadDeflations = Detector.readDeflations();
  S.ReadVectorLocations = Detector.readVectorLocations();
  S.DetectorBytes = Detector.detectorBytes();
  S.Sampling = Detector.samplingStats();
  S.Raw = tally(Result.RawRaces);
  S.Filtered = tally(Result.FilteredRaces);
  S.Attrition = toAttrition(Attrition);
  S.Crashes = Crashes;

  if (Opts.predictEffective()) {
    for (EngineKind K : enginesToPredict(Opts.Detector.Engine)) {
      Result.Predictions.push_back(predictRaces(Log, K, Result.RawRaces));
      S.Prediction.push_back(toStatsRow(Result.Predictions.back()));
    }
  }
  return Result;
}

//===- detect/RaceDetector.h - The WebRacer race detector -------*- C++ -*-===//
//
// Part of the WebRacer reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The dynamic race detector of the paper's Section 5.1: per logical
/// location, LastRead and LastWrite slots hold the identifier of the most
/// recent reading/writing operation; an access races with the stored
/// operation when Can-Happen-Concurrently (CHC) holds, i.e., neither is
/// ⊥ and the operations are unordered in happens-before.
///
/// Two modes:
///  * SingleSlot - the paper's constant-space-per-location algorithm,
///    including its known miss (Sec. 5.1 "Limitation": the sequence
///    3·1·2 with 1 -> 2 hides the 2-3 race).
///  * FullHistory - keeps every access per location (a FastTrack-style
///    upper bound); `bench/ablation_detectors` measures what SingleSlot
///    misses and what FullHistory costs.
///
/// Accesses arrive keyed by interned LocId (mem/LocationInterner.h), so
/// all per-location state lives in one dense vector indexed by id - a
/// single LocState slot struct replaces the four string-keyed hash maps
/// the detector used to probe per access. On top of the dense table sits
/// a FastTrack-inspired epoch fast path: each slot caches the verdict of
/// its last CHC question per current operation ("same epoch" checks), a
/// global pair cache memoizes (prior op, current op) verdicts across
/// locations, and a location whose one-per-location race is already
/// reported skips ordering questions entirely (their answers cannot
/// change any output). Only cache misses escalate to the HB graph
/// oracle (vector clocks or DFS); the soundness of caching rests on the
/// graph's documented edge monotonicity - once both operations exist,
/// their ordering verdict is immutable. Race output is byte-identical to
/// the uncached detector; only chc_queries drops and epoch_hits counts
/// the avoided work.
///
//===----------------------------------------------------------------------===//

#ifndef WEBRACER_DETECT_RACEDETECTOR_H
#define WEBRACER_DETECT_RACEDETECTOR_H

#include "hb/HbGraph.h"
#include "hb/PartialOrderEngine.h"
#include "instr/Instrumentation.h"
#include "mem/Location.h"
#include "mem/LocationInterner.h"
#include "obs/PhaseTimer.h"

#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace wr::detect {

/// The four race types of the paper's Section 2.
enum class RaceKind : uint8_t { Variable, Html, Function, EventDispatch };

const char *toString(RaceKind Kind);

/// One reported race. Loc is resolved from the interner at report time,
/// so reports stay self-contained (filters, harm analysis, and JSON
/// rendering never need the interner).
struct Race {
  RaceKind Kind = RaceKind::Variable;
  Location Loc;
  Access First;  ///< The access stored in LastRead/LastWrite.
  Access Second; ///< The access that triggered the report.
  /// True when the racing write's operation read the location before
  /// writing it (the form-filter refinement of Sec. 5.3: such reads often
  /// guard against clobbering user input, making the race harmless).
  bool WriteHadPriorReadInOp = false;
};

/// Detector configuration.
struct DetectorOptions {
  enum class Mode : uint8_t { SingleSlot, FullHistory };
  Mode HistoryMode = Mode::SingleSlot;
  /// Report at most one race per location per run (paper footnote 13).
  bool OnePerLocation = true;
  /// Which partial order the analysis runs over. The observed-race pass
  /// always consults the happens-before oracle it was constructed with
  /// (Hb selects vector clocks, HbDfs the memoized DFS); Shb/Wcp select
  /// the predictive engine used when replaying or predicting over a
  /// recorded trace (detect/Prediction.h).
  EngineKind Engine = EngineKind::Hb;
};

/// Classifies a racing access pair into the paper's Section 2 taxonomy
/// (shared by the observed detector and the predictive pass).
RaceKind classifyRace(const Access &First, const Access &Second,
                      const Location &Loc);

/// The dynamic race detector; attach to a Browser as an instrumentation
/// sink. \p Interner must be the interner that assigned the LocIds the
/// sink will observe (the browser's online, the trace's offline) and must
/// outlive the detector. The detector poses every ordering question to a
/// PartialOrderEngine oracle; the HbGraph convenience constructor wraps
/// the graph in an owned HbEngine, preserving the original behavior.
class RaceDetector final : public InstrumentationSink {
public:
  RaceDetector(const HbGraph &Hb, const LocationInterner &Interner,
               DetectorOptions Opts = DetectorOptions())
      : OwnedHb(std::make_unique<HbEngine>(Hb)), Oracle(OwnedHb.get()),
        Interner(Interner), Opts(Opts) {}

  /// Runs over an externally owned engine (which must outlive the
  /// detector). Caches are enabled only when the engine's verdicts are
  /// immutable (cacheableVerdicts()).
  RaceDetector(const PartialOrderEngine &Engine,
               const LocationInterner &Interner,
               DetectorOptions Opts = DetectorOptions())
      : Oracle(&Engine), Interner(Interner), Opts(Opts) {}

  const std::vector<Race> &races() const { return Races; }

  /// Races of one kind.
  size_t countByKind(RaceKind Kind) const;

  /// Number of CHC queries that reached the HB oracle (overhead
  /// accounting; epoch/cache hits never get here).
  uint64_t chcQueries() const { return ChcQueries; }

  /// CHC questions answered by the epoch fast path without consulting
  /// the HB graph: ⊥-slot answers, same-operation checks, per-slot
  /// same-epoch verdicts, pair-cache hits, and reported-location skips.
  /// Every question posed by the access stream lands in exactly one of
  /// epochHits() or chcQueries(), so hits / (hits + queries) is the
  /// fast-path hit rate.
  uint64_t epochHits() const { return EpochHits; }

  /// Number of instrumented accesses processed.
  uint64_t accessesSeen() const { return AccessesSeen; }

  /// Attaches a phase accumulator; access processing then bills its wall
  /// time to obs::Phase::Detect. Null (the default) disables timing.
  void setPhaseStats(obs::PhaseStats *Stats) { Phases = Stats; }

  /// Number of distinct locations tracked (== locations with at least one
  /// access seen).
  size_t trackedLocations() const { return Tracked; }

  void onMemoryAccess(const Access &A) override;

private:
  struct Slot {
    OpId Op = InvalidOpId;
    Access A;
    /// For writes: had the writing op read this location first?
    bool HadPriorRead = false;
    /// Epoch cache: verdict of the last CHC question against this slot,
    /// valid while the current operation is CheckedVs.
    OpId CheckedVs = InvalidOpId;
    bool Concurrent = false;
  };

  /// All per-location detector state, one vector element per LocId
  /// (replaces the former LastRead/LastWrite/History/ReportedLocations/
  /// ReadsByOp hash probes).
  struct LocState {
    Slot LastRead;
    Slot LastWrite;
    bool Touched = false;  ///< Any access seen (tracked-locations count).
    bool Reported = false; ///< One-per-location race already emitted.
    /// Operations that read this location (form-filter refinement
    /// metadata; exact, because inline dispatch nests operations).
    std::unordered_set<OpId> ReaderOps;
    /// FullHistory mode keeps every access.
    std::vector<Slot> History;
  };

  LocState &state(LocId Id);
  /// CHC with the per-slot epoch cache (single-slot mode).
  bool slotConcurrent(Slot &S, OpId Current);
  /// CHC with the global pair cache; escalates to the HB oracle on miss.
  bool pairConcurrent(OpId Prior, OpId Current);
  void report(LocState &St, const Slot &Prior, const Access &Current);

  std::unique_ptr<HbEngine> OwnedHb; ///< Backs the HbGraph constructor.
  const PartialOrderEngine *Oracle;
  const LocationInterner &Interner;
  DetectorOptions Opts;

  std::vector<LocState> Locs;
  size_t Tracked = 0;
  /// Memoized CHC verdicts keyed (Prior << 32) | Current. Sound because
  /// HB edges only ever point at the operation being created (see
  /// HbGraph), so a verdict between two existing operations never
  /// changes.
  std::unordered_map<uint64_t, bool> PairCache;

  std::vector<Race> Races;
  uint64_t ChcQueries = 0;
  uint64_t EpochHits = 0;
  uint64_t AccessesSeen = 0;
  obs::PhaseStats *Phases = nullptr;
};

} // namespace wr::detect

#endif // WEBRACER_DETECT_RACEDETECTOR_H

//===- detect/RaceDetector.h - The WebRacer race detector -------*- C++ -*-===//
//
// Part of the WebRacer reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The dynamic race detector of the paper's Section 5.1: per logical
/// location, LastRead and LastWrite slots hold the identifier of the most
/// recent reading/writing operation; an access races with the stored
/// operation when Can-Happen-Concurrently (CHC) holds, i.e., neither is
/// ⊥ and the operations are unordered in happens-before.
///
/// Two modes:
///  * SingleSlot - the paper's constant-space-per-location algorithm,
///    including its known miss (Sec. 5.1 "Limitation": the sequence
///    3·1·2 with 1 -> 2 hides the 2-3 race).
///  * FullHistory - keeps every access per location (a FastTrack-style
///    upper bound); `bench/ablation_detectors` measures what SingleSlot
///    misses and what FullHistory costs.
///
/// Accesses arrive keyed by interned LocId (mem/LocationInterner.h), so
/// all per-location state lives in one dense vector indexed by id. Per
/// location the detector keeps the adaptive VerifiedFT-v2-style epoch
/// representation (see DESIGN.md "Adaptive epochs"): each slot stores the
/// operation's (chain, position) clock epoch, so against an epoch-capable
/// oracle (the vector-clock HbGraph) every CHC question is one O(1)
/// clock probe - no pair-cache entry, no generic oracle call - and the
/// active-read state is a single read epoch in the common case, inflated
/// to a compact sorted read vector only when a concurrent read arrives
/// and deflated back to the epoch form by a dominating write. The former
/// per-location std::unordered_set<OpId> reader set is a sorted InlineVec
/// (exact same membership, deterministic iteration, no heap in the
/// common case), so per-tracked-location memory is O(1) unless a
/// location actually sees concurrent readers.
///
/// Oracles that cannot answer epoch probes (the DFS graph strategy and
/// the predictive SHB/WCP engines) keep the legacy escalation path: the
/// per-slot epoch verdict cache, the global (prior, current) pair cache
/// when verdicts are immutable, and a generic oracle query otherwise.
/// Race output is byte-identical across all of these paths; only the
/// counters show which path answered (epoch_hits vs chc_queries, plus
/// the wr_epochs group).
///
//===----------------------------------------------------------------------===//

#ifndef WEBRACER_DETECT_RACEDETECTOR_H
#define WEBRACER_DETECT_RACEDETECTOR_H

#include "hb/HbGraph.h"
#include "hb/PartialOrderEngine.h"
#include "instr/Instrumentation.h"
#include "mem/Location.h"
#include "mem/LocationInterner.h"
#include "obs/PhaseTimer.h"
#include "obs/RunStats.h"
#include "sample/Sampling.h"
#include "support/InlineVec.h"

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace wr::detect {

/// The four race types of the paper's Section 2.
enum class RaceKind : uint8_t { Variable, Html, Function, EventDispatch };

const char *toString(RaceKind Kind);

/// One reported race. Loc is resolved from the interner at report time,
/// so reports stay self-contained (filters, harm analysis, and JSON
/// rendering never need the interner).
struct Race {
  RaceKind Kind = RaceKind::Variable;
  Location Loc;
  Access First;  ///< The access stored in LastRead/LastWrite.
  Access Second; ///< The access that triggered the report.
  /// True when the racing write's operation read the location before
  /// writing it (the form-filter refinement of Sec. 5.3: such reads often
  /// guard against clobbering user input, making the race harmless).
  bool WriteHadPriorReadInOp = false;
};

/// Detector configuration.
struct DetectorOptions {
  enum class Mode : uint8_t { SingleSlot, FullHistory };
  Mode HistoryMode = Mode::SingleSlot;
  /// Report at most one race per location per run (paper footnote 13).
  bool OnePerLocation = true;
  /// Which partial order the analysis runs over. The observed-race pass
  /// always consults the happens-before oracle it was constructed with
  /// (Hb selects vector clocks, HbDfs the memoized DFS); Shb/Wcp select
  /// the predictive engine used when replaying or predicting over a
  /// recorded trace (detect/Prediction.h).
  EngineKind Engine = EngineKind::Hb;
  /// Debug option: inflate every location's read state to the vector
  /// form on its first read and never deflate. Race output and filter
  /// attrition must be byte-identical to the adaptive default (gated by
  /// bench/hb_scaling's parity sweep); only the wr_epochs counters and
  /// detector bytes differ.
  bool ForceReadVectors = false;
  /// The production-overhead sampling layer (sample/Sampling.h). At the
  /// default rate 1.0 no sampler is constructed and every access reaches
  /// the detector - output is byte-identical to a build without the
  /// layer. Below 1.0 the detector consults the sampler before any
  /// per-access work; dropped accesses cost one strategy decision and
  /// are counted in the wr_sampling report group.
  sample::SamplingOptions Sampling;
};

/// Classifies a racing access pair into the paper's Section 2 taxonomy
/// (shared by the observed detector and the predictive pass).
RaceKind classifyRace(const Access &First, const Access &Second,
                      const Location &Loc);

/// The dynamic race detector; attach to a Browser as an instrumentation
/// sink. \p Interner must be the interner that assigned the LocIds the
/// sink will observe (the browser's online, the trace's offline) and must
/// outlive the detector. The detector poses every ordering question to a
/// PartialOrderEngine oracle; the HbGraph convenience constructor wraps
/// the graph in an owned HbEngine, preserving the original behavior.
class RaceDetector final : public InstrumentationSink {
public:
  RaceDetector(const HbGraph &Hb, const LocationInterner &Interner,
               DetectorOptions Opts = DetectorOptions())
      : OwnedHb(std::make_unique<HbEngine>(Hb)), Oracle(OwnedHb.get()),
        Interner(Interner), Opts(Opts) {
    initSampler();
  }

  /// Runs over an externally owned engine (which must outlive the
  /// detector). Caches are enabled only when the engine's verdicts are
  /// immutable (cacheableVerdicts()).
  RaceDetector(const PartialOrderEngine &Engine,
               const LocationInterner &Interner,
               DetectorOptions Opts = DetectorOptions())
      : Oracle(&Engine), Interner(Interner), Opts(Opts) {
    initSampler();
  }

  const std::vector<Race> &races() const { return Races; }

  /// Races of one kind.
  size_t countByKind(RaceKind Kind) const;

  /// Number of CHC questions that escalated to a generic oracle
  /// concurrent() call (overhead accounting). Under an epoch-capable
  /// oracle this is 0: every question is answered by an O(1) epoch probe
  /// and counts as an epoch hit instead.
  uint64_t chcQueries() const { return ChcQueries; }

  /// CHC questions answered on the O(1) fast path without a generic
  /// oracle call: ⊥-slot answers, same-operation checks, muted
  /// locations, per-slot cached verdicts, pair-cache hits, single-probe
  /// epoch verdicts, and deflation-covered read checks. Every question
  /// posed by the access stream lands in exactly one of epochHits() or
  /// chcQueries(), so hits / (hits + queries) is the fast-path hit rate.
  uint64_t epochHits() const { return EpochHits; }

  /// Number of instrumented accesses processed (accesses the sampling
  /// layer dropped are excluded - they count in samplingStats() only).
  uint64_t accessesSeen() const { return AccessesSeen; }

  /// The sampling layer, or null when Sampling.Rate is 1.0.
  const sample::AccessSampler *sampler() const { return Sampler.get(); }

  /// The wr_sampling report group: strategy, rate, and every seen /
  /// sampled / dropped count. Disabled (empty strategy, omitted from
  /// reports) when no sampler exists, so unsampled runs keep the
  /// pre-sampling byte layout.
  obs::SamplingStats samplingStats() const;

  /// Read accesses among accessesSeen().
  uint64_t readsSeen() const { return ReadsSeen; }

  /// Read accesses whose CHC question (vs the last write) was answered
  /// on the fast path; the epoch-path read rate is
  /// epochReads() / readsSeen(), gated >= 90% by bench/hb_scaling.
  uint64_t epochReads() const { return EpochReads; }

  /// Epoch -> vector transitions of the per-location read state (a read
  /// concurrent with the stored read epoch arrived).
  uint64_t readInflations() const { return ReadInflations; }

  /// Vector -> empty collapses of an inflated read state (a write
  /// dominated every stored read epoch).
  uint64_t readDeflations() const { return ReadDeflations; }

  /// Locations whose read state ever inflated to the vector form; the
  /// O(1)-common-case memory claim is this staying a small fraction of
  /// trackedLocations() (bench/hb_scaling gates < 10% on the corpus).
  size_t readVectorLocations() const;

  /// Structural bytes the detector currently holds: the dense per-location
  /// table plus all reader/read-vector/history heap storage and the pair
  /// cache (estimated node cost). Access Detail strings are excluded -
  /// this measures the representation, not the payload.
  uint64_t detectorBytes() const;

  /// Attaches a phase accumulator; access processing then bills its wall
  /// time to obs::Phase::Detect. Null (the default) disables timing.
  void setPhaseStats(obs::PhaseStats *Stats) { Phases = Stats; }

  /// Number of distinct locations tracked (== locations with at least one
  /// access seen).
  size_t trackedLocations() const { return Tracked; }

  void onMemoryAccess(const Access &A) override;

private:
  struct Slot {
    OpId Op = InvalidOpId;
    /// The op's clock epoch, recorded at store time when the oracle
    /// supports epoch queries (Pos == 0 otherwise).
    ClockEpoch E;
    Access A;
    /// For writes: had the writing op read this location first?
    bool HadPriorRead = false;
    /// Epoch cache: verdict of the last CHC question against this slot,
    /// valid while the current operation is CheckedVs.
    OpId CheckedVs = InvalidOpId;
    bool Concurrent = false;
  };

  /// One entry of the active-read state: a reading op and its epoch.
  struct ReadEntry {
    OpId Op = InvalidOpId;
    ClockEpoch E;
  };

  /// Shape of the active-read state (the VerifiedFT-v2 adaptive
  /// representation). Maintained only under an epoch-capable oracle in
  /// single-slot mode; race checks never read it - it drives the
  /// deflation fast path and the memory accounting.
  enum class ReadRep : uint8_t {
    Empty,  ///< No undominated read (initial, or after deflation).
    Epoch,  ///< One read epoch (ReadVec holds exactly one entry).
    Vector, ///< Concurrent reads: sorted epoch vector (inflated).
  };

  /// All per-location detector state, one vector element per LocId.
  struct LocState {
    Slot LastRead;
    Slot LastWrite;
    /// Active-read state: the entries whose epochs are not yet dominated
    /// by a write, sorted by OpId. Inline room for two - inflation
    /// itself needs no heap until a third concurrent reader shows up.
    InlineVec<ReadEntry, 2> ReadVec;
    /// Operations that read this location, sorted (form-filter
    /// refinement metadata; exact, because inline dispatch nests
    /// operations - see DESIGN.md "Adaptive epochs" for why this set
    /// never deflates).
    InlineVec<OpId, 2> Readers;
    ReadRep Rep = ReadRep::Empty;
    bool Touched = false;  ///< Any access seen (tracked-locations count).
    bool Reported = false; ///< One-per-location race already emitted.
    /// Read state ever reached the vector form (readVectorLocations()).
    bool EverInflated = false;
    /// Rep == Empty because a write dominated every active read, and
    /// every write stored since was ordered after that write - so all
    /// reads are ordered before LastWrite and a write ordered after
    /// LastWrite needs no read probe at all.
    bool ReadsCovered = false;
    /// FullHistory mode keeps every access (allocated on first use so
    /// single-slot locations pay one pointer).
    std::unique_ptr<std::vector<Slot>> History;
  };

  void initSampler() {
    if (Opts.Sampling.enabled())
      Sampler = std::make_unique<sample::AccessSampler>(Opts.Sampling);
  }
  /// True when the sampling layer admits \p A (always, without a
  /// sampler). Fetches the current op's epoch first when the per-pair
  /// strategy needs epoch keys.
  bool sampleAccess(const Access &A, bool UseEpochs);
  LocState &state(LocId Id);
  /// CHC between a stored prior slot and the current operation: one
  /// epoch probe under an epoch-capable oracle, else the legacy
  /// pair-cache/oracle path.
  bool priorConcurrent(const Slot &S, OpId Current);
  /// priorConcurrent with the per-slot verdict cache (single-slot mode).
  bool slotConcurrent(Slot &S, OpId Current);
  /// CHC with the global pair cache; escalates to the HB oracle on miss.
  bool pairConcurrent(OpId Prior, OpId Current);
  void report(LocState &St, const Slot &Prior, const Access &Current);
  /// Read-side maintenance of the adaptive read state (slide / inflate).
  void noteRead(LocState &St, const Access &A);
  /// Write-side maintenance: deflate when the write dominates every
  /// active read epoch; propagate the ReadsCovered invariant.
  void noteWrite(LocState &St, const Access &A, bool OrderedAfterLastWrite);
  /// True iff \p Op is in the sorted reader set.
  static bool isReader(const LocState &St, OpId Op);

  std::unique_ptr<HbEngine> OwnedHb; ///< Backs the HbGraph constructor.
  const PartialOrderEngine *Oracle;
  const LocationInterner &Interner;
  DetectorOptions Opts;
  /// Non-null iff Opts.Sampling.enabled(): the per-access gate.
  std::unique_ptr<sample::AccessSampler> Sampler;

  std::vector<LocState> Locs;
  size_t Tracked = 0;
  /// Memoized CHC verdicts keyed (Prior << 32) | Current, used only when
  /// the oracle cannot answer epoch probes. Sound because HB edges only
  /// ever point at the operation being created (see HbGraph), so a
  /// verdict between two existing operations never changes.
  std::unordered_map<uint64_t, bool> PairCache;

  /// The current access's operation and epoch, fetched once per op under
  /// an epoch-capable oracle (ops stream their accesses contiguously
  /// except across inline-dispatch splits, which re-fetch).
  OpId CurOp = InvalidOpId;
  ClockEpoch CurEpoch;

  std::vector<Race> Races;
  uint64_t ChcQueries = 0;
  uint64_t EpochHits = 0;
  uint64_t AccessesSeen = 0;
  uint64_t ReadsSeen = 0;
  uint64_t EpochReads = 0;
  uint64_t ReadInflations = 0;
  uint64_t ReadDeflations = 0;
  obs::PhaseStats *Phases = nullptr;
};

} // namespace wr::detect

#endif // WEBRACER_DETECT_RACEDETECTOR_H

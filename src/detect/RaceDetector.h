//===- detect/RaceDetector.h - The WebRacer race detector -------*- C++ -*-===//
//
// Part of the WebRacer reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The dynamic race detector of the paper's Section 5.1: per logical
/// location, LastRead and LastWrite slots hold the identifier of the most
/// recent reading/writing operation; an access races with the stored
/// operation when Can-Happen-Concurrently (CHC) holds, i.e., neither is
/// ⊥ and the operations are unordered in happens-before.
///
/// Two modes:
///  * SingleSlot - the paper's constant-space-per-location algorithm,
///    including its known miss (Sec. 5.1 "Limitation": the sequence
///    3·1·2 with 1 -> 2 hides the 2-3 race).
///  * FullHistory - keeps every access per location (a FastTrack-style
///    upper bound); `bench/ablation_detectors` measures what SingleSlot
///    misses and what FullHistory costs.
///
//===----------------------------------------------------------------------===//

#ifndef WEBRACER_DETECT_RACEDETECTOR_H
#define WEBRACER_DETECT_RACEDETECTOR_H

#include "hb/HbGraph.h"
#include "instr/Instrumentation.h"
#include "mem/Location.h"
#include "obs/PhaseTimer.h"

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace wr::detect {

/// The four race types of the paper's Section 2.
enum class RaceKind : uint8_t { Variable, Html, Function, EventDispatch };

const char *toString(RaceKind Kind);

/// One reported race.
struct Race {
  RaceKind Kind = RaceKind::Variable;
  Location Loc;
  Access First;  ///< The access stored in LastRead/LastWrite.
  Access Second; ///< The access that triggered the report.
  /// True when the racing write's operation read the location before
  /// writing it (the form-filter refinement of Sec. 5.3: such reads often
  /// guard against clobbering user input, making the race harmless).
  bool WriteHadPriorReadInOp = false;
};

/// Detector configuration.
struct DetectorOptions {
  enum class Mode : uint8_t { SingleSlot, FullHistory };
  Mode HistoryMode = Mode::SingleSlot;
  /// Report at most one race per location per run (paper footnote 13).
  bool OnePerLocation = true;
};

/// The dynamic race detector; attach to a Browser as an instrumentation
/// sink.
class RaceDetector final : public InstrumentationSink {
public:
  RaceDetector(const HbGraph &Hb, DetectorOptions Opts = DetectorOptions())
      : Hb(Hb), Opts(Opts) {}

  const std::vector<Race> &races() const { return Races; }

  /// Races of one kind.
  size_t countByKind(RaceKind Kind) const;

  /// Number of CHC queries issued (overhead accounting).
  uint64_t chcQueries() const { return ChcQueries; }

  /// Number of instrumented accesses processed.
  uint64_t accessesSeen() const { return AccessesSeen; }

  /// Attaches a phase accumulator; access processing then bills its wall
  /// time to obs::Phase::Detect. Null (the default) disables timing.
  void setPhaseStats(obs::PhaseStats *Stats) { Phases = Stats; }

  /// Number of distinct locations tracked (the union of the read and
  /// write slots, plus the full-history map when that mode is active -
  /// a location present in both slots is one location, not two).
  size_t trackedLocations() const;

  void onMemoryAccess(const Access &A) override;

private:
  struct Slot {
    OpId Op = InvalidOpId;
    Access A;
    /// For writes: had the writing op read this location first?
    bool HadPriorRead = false;
  };

  bool canHappenConcurrently(OpId A, OpId B);
  void report(const Slot &Prior, const Access &Current);
  static RaceKind classify(const Access &First, const Access &Second,
                           const Location &Loc);

  const HbGraph &Hb;
  DetectorOptions Opts;

  std::unordered_map<Location, Slot, LocationHash> LastRead;
  std::unordered_map<Location, Slot, LocationHash> LastWrite;
  // FullHistory mode keeps every access.
  std::unordered_map<Location, std::vector<Slot>, LocationHash> History;

  std::unordered_set<Location, LocationHash> ReportedLocations;
  // Locations read per operation (form-filter refinement metadata).
  std::unordered_map<OpId, std::unordered_set<Location, LocationHash>>
      ReadsByOp;

  std::vector<Race> Races;
  uint64_t ChcQueries = 0;
  uint64_t AccessesSeen = 0;
  obs::PhaseStats *Phases = nullptr;
};

} // namespace wr::detect

#endif // WEBRACER_DETECT_RACEDETECTOR_H

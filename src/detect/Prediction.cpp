//===- detect/Prediction.cpp - Predictive races over a trace ---------------===//

#include "detect/Prediction.h"

#include "detect/TraceReplay.h"
#include "hb/PredictiveEngine.h"

#include <algorithm>
#include <memory>
#include <unordered_map>
#include <unordered_set>

using namespace wr;
using namespace wr::detect;

const char *wr::detect::toString(PredictionVerdict Verdict) {
  switch (Verdict) {
  case PredictionVerdict::Observed:
    return "observed";
  case PredictionVerdict::Predicted:
    return "predicted";
  }
  return "unknown";
}

size_t PredictionResult::observedMatched() const {
  return static_cast<size_t>(
      std::count_if(Races.begin(), Races.end(), [](const PredictedRace &P) {
        return P.Verdict == PredictionVerdict::Observed;
      }));
}

size_t PredictionResult::predictedCount() const {
  return Races.size() - observedMatched();
}

std::vector<EngineKind> wr::detect::enginesToPredict(EngineKind Effective) {
  if (Effective == EngineKind::Shb || Effective == EngineKind::Wcp)
    return {Effective};
  return {EngineKind::Shb, EngineKind::Wcp};
}

obs::PredictionRow wr::detect::toStatsRow(const PredictionResult &Result) {
  obs::PredictionRow Row;
  Row.Engine = wr::toString(Result.Engine);
  Row.PairsChecked = Result.PairsChecked;
  Row.DroppedEdges = Result.DroppedEdges;
  Row.Candidates = Result.Races.size();
  Row.Observed = Result.observedMatched();
  for (const PredictedRace &P : Result.Races) {
    if (P.Verdict != PredictionVerdict::Predicted)
      continue;
    switch (P.R.Kind) {
    case RaceKind::Variable:
      ++Row.Predicted.Variable;
      break;
    case RaceKind::Html:
      ++Row.Predicted.Html;
      break;
    case RaceKind::Function:
      ++Row.Predicted.Function;
      break;
    case RaceKind::EventDispatch:
      ++Row.Predicted.EventDispatch;
      break;
    }
  }
  return Row;
}

namespace {

/// Key of one deduplicated finding: the location and the unordered
/// operation pair. Ops are 32-bit (HbGraph static_assert), so the pair
/// packs into one uint64_t.
struct PairKey {
  LocId Loc;
  uint64_t Ops;

  bool operator==(const PairKey &Other) const = default;
};

struct PairKeyHash {
  size_t operator()(const PairKey &K) const {
    uint64_t H = K.Ops * 0x9e3779b97f4a7c15ull;
    return std::hash<uint64_t>()(H ^ K.Loc);
  }
};

uint64_t packPair(OpId A, OpId B) {
  OpId Lo = std::min(A, B);
  OpId Hi = std::max(A, B);
  return (static_cast<uint64_t>(Lo) << 32) | Hi;
}

/// Per-location history of the pass (mirrors the detector's FullHistory
/// bookkeeping, including the form-filter metadata).
struct LocHistory {
  struct Entry {
    Access A;
    bool HadPriorRead = false;
  };
  std::vector<Entry> Entries;
  std::unordered_set<OpId> ReaderOps;
};

} // namespace

PredictionResult wr::detect::predictRaces(const TraceLog &Log,
                                          EngineKind Engine,
                                          const std::vector<Race> &ObservedRaw) {
  PredictionResult Result;
  Result.Engine = Engine;

  // The Hb/HbDfs baseline answers from the fully reconstructed observed
  // graph; the predictive engines build their own clocks from the stream.
  HbGraph ObservedHb;
  std::unique_ptr<PartialOrderEngine> Owned;
  if (Engine == EngineKind::Hb || Engine == EngineKind::HbDfs) {
    ObservedHb = buildHbGraphFromTrace(Log, Engine == EngineKind::Hb);
    Owned = std::make_unique<HbEngine>(ObservedHb);
  } else if (Engine == EngineKind::Shb) {
    Owned = std::make_unique<ShbEngine>();
  } else {
    Owned = std::make_unique<WcpEngine>();
  }
  PartialOrderEngine &PO = *Owned;

  // WCP classifies dispatch-order edges by whether the endpoints
  // conflict, which needs both operations' access footprints before the
  // edge streams by - hence the pre-pass.
  if (Engine == EngineKind::Wcp)
    for (const TraceEvent &E : Log.events())
      if (E.K == TraceEvent::Kind::MemAccess)
        PO.primeAccess(E.Mem.Op, E.Mem.Loc, E.Mem.Kind);

  // Index the observed raw races for verdict labeling.
  std::unordered_set<PairKey, PairKeyHash> Observed;
  for (const Race &R : ObservedRaw)
    Observed.insert({R.First.Loc, packPair(R.First.Op, R.Second.Op)});

  std::unordered_map<LocId, LocHistory> Histories;
  std::unordered_set<PairKey, PairKeyHash> Seen;

  for (const TraceEvent &E : Log.events()) {
    switch (E.K) {
    case TraceEvent::Kind::OpCreated:
      PO.onOperationCreated(E.Op, E.Meta);
      break;
    case TraceEvent::Kind::HbEdge:
      PO.onHbEdge(E.Op, E.Op2, E.Rule);
      break;
    case TraceEvent::Kind::MemAccess: {
      const Access &A = E.Mem;
      LocHistory &H = Histories[A.Loc];
      // Check against the whole history *before* this access updates the
      // engine: under SHB the reader's write-read join must not order
      // away the very pair being asked about.
      for (const LocHistory::Entry &Prior : H.Entries) {
        bool OneIsWrite = Prior.A.Kind == AccessKind::Write ||
                          A.Kind == AccessKind::Write;
        if (Prior.A.Op == A.Op || !OneIsWrite)
          continue;
        ++Result.PairsChecked;
        if (!PO.concurrent(Prior.A.Op, A.Op))
          continue;
        PairKey Key{A.Loc, packPair(Prior.A.Op, A.Op)};
        if (!Seen.insert(Key).second)
          continue;
        PredictedRace P;
        P.R.Loc = Log.interner().resolve(A.Loc);
        P.R.First = Prior.A;
        P.R.Second = A;
        P.R.Kind = classifyRace(Prior.A, A, P.R.Loc);
        if (Prior.A.Kind == AccessKind::Write && Prior.HadPriorRead)
          P.R.WriteHadPriorReadInOp = true;
        if (A.Kind == AccessKind::Write && H.ReaderOps.count(A.Op) != 0)
          P.R.WriteHadPriorReadInOp = true;
        P.Verdict = Observed.count(Key) != 0 ? PredictionVerdict::Observed
                                             : PredictionVerdict::Predicted;
        Result.Races.push_back(std::move(P));
      }
      PO.onMemoryAccess(A);
      LocHistory::Entry Entry;
      Entry.A = A;
      if (A.Kind == AccessKind::Write)
        Entry.HadPriorRead = H.ReaderOps.count(A.Op) != 0;
      H.Entries.push_back(std::move(Entry));
      if (A.Kind == AccessKind::Read)
        H.ReaderOps.insert(A.Op);
      break;
    }
    case TraceEvent::Kind::OpBegin:
    case TraceEvent::Kind::OpEnd:
    case TraceEvent::Kind::Dispatch:
      break;
    }
  }

  if (Engine == EngineKind::Shb || Engine == EngineKind::Wcp)
    Result.DroppedEdges = static_cast<PredictiveEngine &>(PO).droppedEdges();
  return Result;
}

//===- detect/Report.h - Race report rendering ------------------*- C++ -*-===//
//
// Part of the WebRacer reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders race reports: per-race explanations (which operations, which
/// location, which accesses) and per-kind summary tables like the paper's
/// Tables 1 and 2.
///
//===----------------------------------------------------------------------===//

#ifndef WEBRACER_DETECT_REPORT_H
#define WEBRACER_DETECT_REPORT_H

#include "detect/RaceDetector.h"
#include "hb/HbGraph.h"
#include "obs/RunStats.h"

#include <string>
#include <vector>

namespace wr::detect {

/// Counts by race kind. The storage is obs::RaceCounts, so a tally slots
/// directly into obs::RunStats; this type adds RaceKind indexing.
struct RaceTally : obs::RaceCounts {
  uint64_t &operator[](RaceKind Kind);
  uint64_t operator[](RaceKind Kind) const;
};

/// Tallies \p Races by kind.
RaceTally tally(const std::vector<Race> &Races);

/// Renders one race with its accesses and operations.
std::string describeRace(const Race &R, const HbGraph &Hb);

/// Renders all races, one block each.
std::string describeRaces(const std::vector<Race> &Races, const HbGraph &Hb);

/// Renders a one-line summary ("html=2 function=0 variable=5 ...").
std::string summaryLine(const std::vector<Race> &Races);

} // namespace wr::detect

#endif // WEBRACER_DETECT_REPORT_H

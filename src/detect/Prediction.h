//===- detect/Prediction.h - Predictive races over a trace ------*- C++ -*-===//
//
// Part of the WebRacer reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The predictive race pass: replays a recorded trace's event stream
/// through a pluggable PartialOrderEngine and reports every conflicting
/// access pair the engine leaves unordered - including races *after* the
/// first one per location, which the paper's single-slot online detector
/// never sees. Each access is checked against the location's full history
/// *before* the engine applies the access's own update (SHB's
/// check-then-update discipline), so under the SHB order every reported
/// pair is a race in some feasible schedule of the recorded execution.
///
/// Findings are deduplicated per (location, operation pair) and labeled:
/// a pair the observed run also reported is Observed; everything else is
/// Predicted - the per-trace value the engine adds over the single
/// observed schedule.
///
//===----------------------------------------------------------------------===//

#ifndef WEBRACER_DETECT_PREDICTION_H
#define WEBRACER_DETECT_PREDICTION_H

#include "detect/RaceDetector.h"
#include "hb/PartialOrderEngine.h"
#include "instr/TraceLog.h"
#include "obs/RunStats.h"

#include <vector>

namespace wr::detect {

/// Whether a race found by the predictive pass was also in the observed
/// run's report or is new information.
enum class PredictionVerdict : uint8_t {
  Observed,  ///< The observed run reported this (location, pair) too.
  Predicted, ///< New: only visible under the predictive order.
};

const char *toString(PredictionVerdict Verdict);

/// One race found by the predictive pass.
struct PredictedRace {
  Race R;
  PredictionVerdict Verdict = PredictionVerdict::Predicted;
};

/// Everything one engine's pass over one trace produced.
struct PredictionResult {
  EngineKind Engine = EngineKind::Shb;
  /// Deduplicated races in trace order (first flagged occurrence wins).
  std::vector<PredictedRace> Races;
  /// Conflicting cross-operation pairs the pass posed to the engine.
  uint64_t PairsChecked = 0;
  /// HB edges the engine's order dropped (WCP weakening; 0 otherwise).
  uint64_t DroppedEdges = 0;

  size_t observedMatched() const;
  size_t predictedCount() const;
};

/// Runs the predictive pass over \p Log under \p Engine. \p ObservedRaw
/// is the observed run's raw race list (online or replayed); it only
/// labels verdicts, it never adds races. Hb/HbDfs reconstruct the
/// observed graph and run the same full-history check - the prediction
/// baseline an SHB/WCP pass must dominate on feasible schedules.
PredictionResult predictRaces(const TraceLog &Log, EngineKind Engine,
                              const std::vector<Race> &ObservedRaw);

/// The engines a run with effective engine \p Effective predicts with:
/// a selected predictive engine predicts with itself; the HB engines
/// (prediction requested via --predict) run both predictive orders so
/// the report carries the SHB/WCP delta side by side.
std::vector<EngineKind> enginesToPredict(EngineKind Effective);

/// Folds one pass's findings into the report schema's wr_prediction row.
obs::PredictionRow toStatsRow(const PredictionResult &Result);

} // namespace wr::detect

#endif // WEBRACER_DETECT_PREDICTION_H

//===- detect/RaceDetector.cpp - The WebRacer race detector -----------------===//

#include "detect/RaceDetector.h"

#include <cassert>

using namespace wr;
using namespace wr::detect;

const char *wr::detect::toString(RaceKind Kind) {
  switch (Kind) {
  case RaceKind::Variable:
    return "variable";
  case RaceKind::Html:
    return "html";
  case RaceKind::Function:
    return "function";
  case RaceKind::EventDispatch:
    return "event-dispatch";
  }
  return "unknown";
}

size_t RaceDetector::countByKind(RaceKind Kind) const {
  size_t N = 0;
  for (const Race &R : Races)
    if (R.Kind == Kind)
      ++N;
  return N;
}

RaceDetector::LocState &RaceDetector::state(LocId Id) {
  assert(Id != InvalidLocId && "access without an interned location");
  if (Id >= Locs.size())
    Locs.resize(Id + 1);
  LocState &St = Locs[Id];
  if (!St.Touched) {
    St.Touched = true;
    ++Tracked;
  }
  return St;
}

bool RaceDetector::pairConcurrent(OpId Prior, OpId Current) {
  // The pair cache is sound only when the oracle's verdicts are
  // immutable (the HB engines); predictive engines grow their clocks as
  // accesses stream by, so every question goes straight to the oracle.
  if (!Oracle->cacheableVerdicts()) {
    ++ChcQueries;
    return Oracle->concurrent(Prior, Current);
  }
  uint64_t Key = (static_cast<uint64_t>(Prior) << 32) | Current;
  auto It = PairCache.find(Key);
  if (It != PairCache.end()) {
    ++EpochHits;
    return It->second;
  }
  ++ChcQueries;
  bool Concurrent = Oracle->concurrent(Prior, Current);
  PairCache.emplace(Key, Concurrent);
  return Concurrent;
}

bool RaceDetector::slotConcurrent(Slot &S, OpId Current) {
  if (Oracle->cacheableVerdicts() && S.CheckedVs == Current) {
    ++EpochHits;
    return S.Concurrent;
  }
  bool Concurrent = pairConcurrent(S.Op, Current);
  S.CheckedVs = Current;
  S.Concurrent = Concurrent;
  return Concurrent;
}

RaceKind wr::detect::classifyRace(const Access &First, const Access &Second,
                                  const Location &Loc) {
  if (std::holds_alternative<EventHandlerLoc>(Loc))
    return RaceKind::EventDispatch;
  if (std::holds_alternative<HtmlElemLoc>(Loc))
    return RaceKind::Html;
  // A variable race where the write side is a hoisted function
  // declaration (or the read resolves a call target racing with one) is a
  // *function race* (Sec. 2.4).
  if (First.Origin == AccessOrigin::FunctionDecl ||
      Second.Origin == AccessOrigin::FunctionDecl)
    return RaceKind::Function;
  return RaceKind::Variable;
}

void RaceDetector::report(LocState &St, const Slot &Prior,
                          const Access &Current) {
  if (Opts.OnePerLocation) {
    if (St.Reported)
      return;
    St.Reported = true;
  }
  Race R;
  R.Loc = Interner.resolve(Current.Loc);
  R.First = Prior.A;
  R.Second = Current;
  R.Kind = classifyRace(Prior.A, Current, R.Loc);
  // The Sec. 5.3 refinement looks at whichever side is a write: if the
  // writing operation read the location before writing, the write is
  // probably guarded ("has the user modified the field?").
  if (Prior.A.Kind == AccessKind::Write && Prior.HadPriorRead)
    R.WriteHadPriorReadInOp = true;
  if (Current.Kind == AccessKind::Write &&
      St.ReaderOps.count(Current.Op) != 0)
    R.WriteHadPriorReadInOp = true;
  Races.push_back(std::move(R));
}

void RaceDetector::onMemoryAccess(const Access &A) {
  obs::PhaseTimer Timer(Phases, obs::Phase::Detect);
  ++AccessesSeen;
  LocState &St = state(A.Loc);
  // Once the one-per-location race is out, no ordering verdict on this
  // location can change any output - skip the HB questions wholesale.
  bool Muted = Opts.OnePerLocation && St.Reported;

  if (Opts.HistoryMode == DetectorOptions::Mode::FullHistory) {
    if (Muted) {
      EpochHits += St.History.size();
    } else {
      // Check against every recorded access (read-write and write-write).
      // Every prior poses one CHC question; each is answered by exactly
      // one of the fast paths (read-read, same-op, epoch/pair cache) or
      // the oracle, so EpochHits + ChcQueries == questions asked.
      for (const Slot &Prior : St.History) {
        bool OneIsWrite = Prior.A.Kind == AccessKind::Write ||
                          A.Kind == AccessKind::Write;
        if (Prior.Op == A.Op || !OneIsWrite) {
          ++EpochHits;
          continue;
        }
        if (pairConcurrent(Prior.Op, A.Op)) {
          report(St, Prior, A);
          if (Opts.OnePerLocation)
            break;
        }
      }
    }
    Slot S;
    S.Op = A.Op;
    S.A = A;
    if (A.Kind == AccessKind::Write)
      S.HadPriorRead = St.ReaderOps.count(A.Op) != 0;
    St.History.push_back(std::move(S));
    if (A.Kind == AccessKind::Read)
      St.ReaderOps.insert(A.Op);
    return;
  }

  // The paper's single-slot algorithm (Sec. 5.1). A read poses one CHC
  // question (vs LastWrite), a write poses two (vs LastWrite, then vs
  // LastRead unless the write check already reported); every question is
  // answered by exactly one of the fast paths - ⊥ slot (the paper's
  // CHC(⊥, b) = false case), same operation, muted location, the slot's
  // epoch verdict, the pair cache - or by one oracle query, so
  // EpochHits + ChcQueries is the total question count.
  if (A.Kind == AccessKind::Read) {
    Slot &W = St.LastWrite;
    if (Muted || W.Op == InvalidOpId || W.Op == A.Op)
      ++EpochHits;
    else if (slotConcurrent(W, A.Op))
      report(St, W, A);
    Slot S;
    S.Op = A.Op;
    S.A = A;
    St.LastRead = std::move(S);
    St.ReaderOps.insert(A.Op);
    return;
  }

  // Write: race against the last write and the last read.
  Slot &W = St.LastWrite;
  Slot &R = St.LastRead;
  if (Muted) {
    EpochHits += 2;
  } else {
    bool RacedWithWrite = false;
    if (W.Op == InvalidOpId || W.Op == A.Op)
      ++EpochHits;
    else if (slotConcurrent(W, A.Op)) {
      RacedWithWrite = true;
      report(St, W, A);
    }
    if (!RacedWithWrite) {
      if (R.Op == InvalidOpId || R.Op == A.Op)
        ++EpochHits;
      else if (slotConcurrent(R, A.Op))
        report(St, R, A);
    }
  }
  Slot S;
  S.Op = A.Op;
  S.A = A;
  S.HadPriorRead = St.ReaderOps.count(A.Op) != 0;
  St.LastWrite = std::move(S);
}

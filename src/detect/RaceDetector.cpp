//===- detect/RaceDetector.cpp - The WebRacer race detector -----------------===//

#include "detect/RaceDetector.h"

using namespace wr;
using namespace wr::detect;

const char *wr::detect::toString(RaceKind Kind) {
  switch (Kind) {
  case RaceKind::Variable:
    return "variable";
  case RaceKind::Html:
    return "html";
  case RaceKind::Function:
    return "function";
  case RaceKind::EventDispatch:
    return "event-dispatch";
  }
  return "unknown";
}

size_t RaceDetector::trackedLocations() const {
  std::unordered_set<Location, LocationHash> Distinct;
  for (const auto &[Loc, Slot] : LastRead)
    Distinct.insert(Loc);
  for (const auto &[Loc, Slot] : LastWrite)
    Distinct.insert(Loc);
  for (const auto &[Loc, Slots] : History)
    Distinct.insert(Loc);
  return Distinct.size();
}

size_t RaceDetector::countByKind(RaceKind Kind) const {
  size_t N = 0;
  for (const Race &R : Races)
    if (R.Kind == Kind)
      ++N;
  return N;
}

bool RaceDetector::canHappenConcurrently(OpId A, OpId B) {
  ++ChcQueries;
  return Hb.canHappenConcurrently(A, B);
}

RaceKind RaceDetector::classify(const Access &First, const Access &Second,
                                const Location &Loc) {
  if (std::holds_alternative<EventHandlerLoc>(Loc))
    return RaceKind::EventDispatch;
  if (std::holds_alternative<HtmlElemLoc>(Loc))
    return RaceKind::Html;
  // A variable race where the write side is a hoisted function
  // declaration (or the read resolves a call target racing with one) is a
  // *function race* (Sec. 2.4).
  if (First.Origin == AccessOrigin::FunctionDecl ||
      Second.Origin == AccessOrigin::FunctionDecl)
    return RaceKind::Function;
  return RaceKind::Variable;
}

void RaceDetector::report(const Slot &Prior, const Access &Current) {
  if (Opts.OnePerLocation) {
    if (ReportedLocations.count(Current.Loc))
      return;
    ReportedLocations.insert(Current.Loc);
  }
  Race R;
  R.Loc = Current.Loc;
  R.First = Prior.A;
  R.Second = Current;
  R.Kind = classify(Prior.A, Current, Current.Loc);
  // The Sec. 5.3 refinement looks at whichever side is a write: if the
  // writing operation read the location before writing, the write is
  // probably guarded ("has the user modified the field?").
  if (Prior.A.Kind == AccessKind::Write && Prior.HadPriorRead)
    R.WriteHadPriorReadInOp = true;
  if (Current.Kind == AccessKind::Write) {
    auto It = ReadsByOp.find(Current.Op);
    if (It != ReadsByOp.end() && It->second.count(Current.Loc) != 0)
      R.WriteHadPriorReadInOp = true;
  }
  Races.push_back(std::move(R));
}

void RaceDetector::onMemoryAccess(const Access &A) {
  obs::PhaseTimer Timer(Phases, obs::Phase::Detect);
  ++AccessesSeen;
  if (Opts.HistoryMode == DetectorOptions::Mode::FullHistory) {
    // Check against every recorded access (read-write and write-write).
    auto &Accesses = History[A.Loc];
    for (const Slot &Prior : Accesses) {
      if (Prior.Op == A.Op)
        continue;
      bool OneIsWrite = Prior.A.Kind == AccessKind::Write ||
                        A.Kind == AccessKind::Write;
      if (!OneIsWrite)
        continue;
      if (canHappenConcurrently(Prior.Op, A.Op)) {
        report(Prior, A);
        if (Opts.OnePerLocation)
          break;
      }
    }
    Slot S{A.Op, A, false};
    if (A.Kind == AccessKind::Write) {
      auto It = ReadsByOp.find(A.Op);
      S.HadPriorRead =
          It != ReadsByOp.end() && It->second.count(A.Loc) != 0;
    }
    Accesses.push_back(std::move(S));
    if (A.Kind == AccessKind::Read)
      ReadsByOp[A.Op].insert(A.Loc);
    return;
  }

  // The paper's single-slot algorithm (Sec. 5.1).
  if (A.Kind == AccessKind::Read) {
    auto W = LastWrite.find(A.Loc);
    if (W != LastWrite.end() && W->second.Op != A.Op &&
        canHappenConcurrently(W->second.Op, A.Op))
      report(W->second, A);
    LastRead[A.Loc] = {A.Op, A, false};
    ReadsByOp[A.Op].insert(A.Loc);
    return;
  }

  // Write: race against the last write and the last read.
  auto W = LastWrite.find(A.Loc);
  if (W != LastWrite.end() && W->second.Op != A.Op &&
      canHappenConcurrently(W->second.Op, A.Op)) {
    report(W->second, A);
  } else {
    auto R = LastRead.find(A.Loc);
    if (R != LastRead.end() && R->second.Op != A.Op &&
        canHappenConcurrently(R->second.Op, A.Op))
      report(R->second, A);
  }
  Slot S{A.Op, A, false};
  auto Reads = ReadsByOp.find(A.Op);
  S.HadPriorRead =
      Reads != ReadsByOp.end() && Reads->second.count(A.Loc) != 0;
  LastWrite[A.Loc] = std::move(S);
}

//===- detect/RaceDetector.cpp - The WebRacer race detector -----------------===//

#include "detect/RaceDetector.h"

#include <algorithm>
#include <cassert>

using namespace wr;
using namespace wr::detect;

const char *wr::detect::toString(RaceKind Kind) {
  switch (Kind) {
  case RaceKind::Variable:
    return "variable";
  case RaceKind::Html:
    return "html";
  case RaceKind::Function:
    return "function";
  case RaceKind::EventDispatch:
    return "event-dispatch";
  }
  return "unknown";
}

size_t RaceDetector::countByKind(RaceKind Kind) const {
  size_t N = 0;
  for (const Race &R : Races)
    if (R.Kind == Kind)
      ++N;
  return N;
}

RaceDetector::LocState &RaceDetector::state(LocId Id) {
  assert(Id != InvalidLocId && "access without an interned location");
  if (Id >= Locs.size())
    Locs.resize(Id + 1);
  LocState &St = Locs[Id];
  if (!St.Touched) {
    St.Touched = true;
    ++Tracked;
  }
  return St;
}

namespace {

/// Sorted insert into an InlineVec, deduplicating; Proj extracts the sort
/// key (new entries usually carry the largest op id, so the scan walks
/// from the back).
template <typename Vec, typename T, typename Proj>
void insertSorted(Vec &V, const T &E, Proj Key) {
  uint32_t I = V.size();
  while (I > 0 && Key(V[I - 1]) > Key(E))
    --I;
  if (I > 0 && Key(V[I - 1]) == Key(E))
    return;
  V.push_back(E); // Grows if needed; then shift the tail up one.
  for (uint32_t J = V.size() - 1; J > I; --J)
    V[J] = V[J - 1];
  V[I] = E;
}

} // namespace

bool RaceDetector::isReader(const LocState &St, OpId Op) {
  const OpId *Begin = St.Readers.begin();
  const OpId *End = St.Readers.end();
  const OpId *It = std::lower_bound(Begin, End, Op);
  return It != End && *It == Op;
}

bool RaceDetector::pairConcurrent(OpId Prior, OpId Current) {
  // The pair cache is sound only when the oracle's verdicts are
  // immutable (the HB engines); predictive engines grow their clocks as
  // accesses stream by, so every question goes straight to the oracle.
  if (!Oracle->cacheableVerdicts()) {
    ++ChcQueries;
    return Oracle->concurrent(Prior, Current);
  }
  uint64_t Key = (static_cast<uint64_t>(Prior) << 32) | Current;
  auto It = PairCache.find(Key);
  if (It != PairCache.end()) {
    ++EpochHits;
    return It->second;
  }
  ++ChcQueries;
  bool Concurrent = Oracle->concurrent(Prior, Current);
  PairCache.emplace(Key, Concurrent);
  return Concurrent;
}

bool RaceDetector::priorConcurrent(const Slot &S, OpId Current) {
  // The VerifiedFT fast path: under an epoch-capable oracle the stored
  // slot carries its op's (chain, pos) epoch, so CHC is one O(1) clock
  // probe - no pair-cache entry. Only the lower-id side can be ordered
  // before the higher one (HB edges strictly ascend), mirroring
  // HbGraph::ordering's single-probe discipline; CurEpoch is the current
  // op's epoch, fetched once per operation in onMemoryAccess.
  if (S.E.Pos != 0 && Oracle->supportsEpochQueries()) {
    ++EpochHits;
    return S.Op < Current
               ? !Oracle->epochOrdered(S.E.Chain, S.E.Pos, Current)
               : !Oracle->epochOrdered(CurEpoch.Chain, CurEpoch.Pos, S.Op);
  }
  return pairConcurrent(S.Op, Current);
}

bool RaceDetector::slotConcurrent(Slot &S, OpId Current) {
  if (Oracle->cacheableVerdicts() && S.CheckedVs == Current) {
    ++EpochHits;
    return S.Concurrent;
  }
  bool Concurrent = priorConcurrent(S, Current);
  S.CheckedVs = Current;
  S.Concurrent = Concurrent;
  return Concurrent;
}

RaceKind wr::detect::classifyRace(const Access &First, const Access &Second,
                                  const Location &Loc) {
  if (std::holds_alternative<EventHandlerLoc>(Loc))
    return RaceKind::EventDispatch;
  if (std::holds_alternative<HtmlElemLoc>(Loc))
    return RaceKind::Html;
  // A variable race where the write side is a hoisted function
  // declaration (or the read resolves a call target racing with one) is a
  // *function race* (Sec. 2.4).
  if (First.Origin == AccessOrigin::FunctionDecl ||
      Second.Origin == AccessOrigin::FunctionDecl)
    return RaceKind::Function;
  return RaceKind::Variable;
}

void RaceDetector::report(LocState &St, const Slot &Prior,
                          const Access &Current) {
  if (Opts.OnePerLocation) {
    if (St.Reported)
      return;
    St.Reported = true;
  }
  Race R;
  R.Loc = Interner.resolve(Current.Loc);
  R.First = Prior.A;
  R.Second = Current;
  R.Kind = classifyRace(Prior.A, Current, R.Loc);
  // The Sec. 5.3 refinement looks at whichever side is a write: if the
  // writing operation read the location before writing, the write is
  // probably guarded ("has the user modified the field?").
  if (Prior.A.Kind == AccessKind::Write && Prior.HadPriorRead)
    R.WriteHadPriorReadInOp = true;
  if (Current.Kind == AccessKind::Write && isReader(St, Current.Op))
    R.WriteHadPriorReadInOp = true;
  // Heat feedback: a racing location is exactly the region the adaptive
  // strategy must keep watching.
  if (Sampler)
    Sampler->noteRace(Current.Loc);
  Races.push_back(std::move(R));
}

void RaceDetector::noteRead(LocState &St, const Access &A) {
  // Maintenance of the adaptive read state; probes here are internal
  // bookkeeping, not CHC questions, so no counter moves except the
  // inflation tally. Called after the read landed in LastRead.
  St.ReadsCovered = false;
  ReadEntry E{A.Op, CurEpoch};
  switch (St.Rep) {
  case ReadRep::Empty:
    St.ReadVec.clear();
    St.ReadVec.push_back(E);
    if (Opts.ForceReadVectors) {
      St.Rep = ReadRep::Vector;
      St.EverInflated = true;
      ++ReadInflations;
      if (Sampler)
        Sampler->noteInflation(A.Loc);
    } else {
      St.Rep = ReadRep::Epoch;
    }
    return;
  case ReadRep::Epoch: {
    ReadEntry &Cur = St.ReadVec[0];
    if (Cur.Op == A.Op)
      return; // Same-epoch re-read: the common case, no probe at all.
    if (Cur.Op < A.Op &&
        Oracle->epochOrdered(Cur.E.Chain, Cur.E.Pos, A.Op)) {
      Cur = E; // Slide: the stored epoch is ordered before this reader.
      return;
    }
    if (Cur.Op > A.Op &&
        Oracle->epochOrdered(CurEpoch.Chain, CurEpoch.Pos, Cur.Op))
      return; // An inline-dispatch split: the stored (newer) read is
              // ordered after this one and subsumes it.
    // A read concurrent with the stored epoch: inflate to the vector.
    insertSorted(St.ReadVec, E, [](const ReadEntry &R) { return R.Op; });
    St.Rep = ReadRep::Vector;
    St.EverInflated = true;
    ++ReadInflations;
    // Heat feedback: concurrent readers mean concurrent operations are
    // active here - the PR 9 adaptive-epoch state doubling as the
    // sampling layer's cold/hot signal.
    if (Sampler)
      Sampler->noteInflation(A.Loc);
    return;
  }
  case ReadRep::Vector:
    insertSorted(St.ReadVec, E, [](const ReadEntry &R) { return R.Op; });
    return;
  }
}

void RaceDetector::noteWrite(LocState &St, const Access &A,
                             bool OrderedAfterLastWrite) {
  if (St.Rep == ReadRep::Empty) {
    // Propagate the covered invariant: all reads were ordered before the
    // previous LastWrite; they stay covered only if this write is
    // ordered after it.
    St.ReadsCovered = St.ReadsCovered && OrderedAfterLastWrite;
    return;
  }
  if (Opts.ForceReadVectors)
    return; // The debug option pins every inflated state.
  // VerifiedFT deflation: when this write dominates every active read
  // epoch, collapse back to the empty state. Entries by newer ops can
  // never be dominated (edges ascend), so the probe answers false and
  // the loop exits early. A same-op entry probes its own clock (its own
  // delta slot) and counts as dominated - program order within an op.
  for (const ReadEntry &E : St.ReadVec)
    if (!Oracle->epochOrdered(E.E.Chain, E.E.Pos, A.Op))
      return;
  if (St.Rep == ReadRep::Vector)
    ++ReadDeflations;
  St.ReadVec.clear();
  St.Rep = ReadRep::Empty;
  St.ReadsCovered = true;
}

obs::SamplingStats RaceDetector::samplingStats() const {
  obs::SamplingStats S;
  if (!Sampler)
    return S; // Disabled: empty strategy, omitted from reports.
  S.Strategy = sample::toString(Opts.Sampling.Strategy);
  S.RatePpm = static_cast<uint64_t>(Opts.Sampling.Rate * 1e6 + 0.5);
  const sample::SamplerCounters &C = Sampler->counters();
  S.SeenReads = C.SeenReads;
  S.SeenWrites = C.SeenWrites;
  S.SampledReads = C.SampledReads;
  S.SampledWrites = C.SampledWrites;
  S.DroppedReads = C.DroppedReads;
  S.DroppedWrites = C.DroppedWrites;
  S.LocationPass = C.LocationPass;
  S.PairPass = C.PairPass;
  S.ColdPass = C.ColdPass;
  S.HotPass = C.HotPass;
  S.RngPass = C.RngPass;
  S.HotLocations = C.HotLocations;
  return S;
}

size_t RaceDetector::readVectorLocations() const {
  size_t N = 0;
  for (const LocState &St : Locs)
    N += St.EverInflated;
  return N;
}

uint64_t RaceDetector::detectorBytes() const {
  uint64_t Bytes = Locs.capacity() * sizeof(LocState);
  for (const LocState &St : Locs) {
    Bytes += St.ReadVec.heapBytes() + St.Readers.heapBytes();
    if (St.History)
      Bytes += sizeof(std::vector<Slot>) +
               St.History->capacity() * sizeof(Slot);
  }
  // Rough pair-cache node cost (key + value padded + next link) plus the
  // bucket array; exact layout is library-specific, the point is that an
  // epoch-capable run keeps this at zero.
  Bytes += PairCache.size() * (sizeof(uint64_t) + 2 * sizeof(void *)) +
           PairCache.bucket_count() * sizeof(void *);
  return Bytes;
}

bool RaceDetector::sampleAccess(const Access &A, bool UseEpochs) {
  // The per-pair strategy keys on clock epochs, so the current op's
  // epoch must be fetched before the decision; the other strategies
  // leave the fetch to the processing path (a dropped access then never
  // touches the clock index at all - the access-path saving).
  ClockEpoch PairCur;
  if (UseEpochs && Opts.Sampling.Strategy == sample::SamplingStrategy::PerPair) {
    if (A.Op != CurOp) {
      CurOp = A.Op;
      CurEpoch = Oracle->epochOf(A.Op);
    }
    PairCur = CurEpoch;
  }
  OpId PriorOp = InvalidOpId;
  ClockEpoch PriorE;
  if (A.Loc < Locs.size()) {
    PriorOp = Locs[A.Loc].LastWrite.Op;
    PriorE = Locs[A.Loc].LastWrite.E;
  }
  return Sampler->shouldSample(A, PriorOp, PriorE, PairCur);
}

void RaceDetector::onMemoryAccess(const Access &A) {
  obs::PhaseTimer Timer(Phases, obs::Phase::Detect);
  // The sampling gate runs before any per-access work: a dropped access
  // is invisible to the detector (no counters, no slot state, no epoch
  // fetch) and is tallied by the sampler so attrition is never silent.
  if (Sampler && !sampleAccess(A, Oracle->supportsEpochQueries()))
    return;
  ++AccessesSeen;
  if (A.Kind == AccessKind::Read)
    ++ReadsSeen;
  bool UseEpochs = Oracle->supportsEpochQueries();
  if (UseEpochs && A.Op != CurOp) {
    // One epoch fetch per operation (accesses stream contiguously per op
    // except across inline-dispatch splits); this also builds the clock
    // index up to the op, which every probe below relies on.
    CurOp = A.Op;
    CurEpoch = Oracle->epochOf(A.Op);
  }
  LocState &St = state(A.Loc);
  // Once the one-per-location race is out, no ordering verdict on this
  // location can change any output - skip the HB questions wholesale
  // (and freeze the adaptive read state; its transitions are unobservable
  // once the location is muted).
  bool Muted = Opts.OnePerLocation && St.Reported;

  if (Opts.HistoryMode == DetectorOptions::Mode::FullHistory) {
    if (!St.History)
      St.History = std::make_unique<std::vector<Slot>>();
    std::vector<Slot> &Hist = *St.History;
    if (Muted) {
      EpochHits += Hist.size();
    } else {
      // Check against every recorded access (read-write and write-write).
      // Every prior poses one CHC question; each is answered by exactly
      // one of the fast paths (read-read, same-op, epoch probe, pair
      // cache) or the oracle, so EpochHits + ChcQueries == questions.
      for (const Slot &Prior : Hist) {
        bool OneIsWrite = Prior.A.Kind == AccessKind::Write ||
                          A.Kind == AccessKind::Write;
        if (Prior.Op == A.Op || !OneIsWrite) {
          ++EpochHits;
          continue;
        }
        if (priorConcurrent(Prior, A.Op)) {
          report(St, Prior, A);
          if (Opts.OnePerLocation)
            break;
        }
      }
    }
    Slot S;
    S.Op = A.Op;
    if (UseEpochs)
      S.E = CurEpoch;
    S.A = A;
    if (A.Kind == AccessKind::Write)
      S.HadPriorRead = isReader(St, A.Op);
    Hist.push_back(std::move(S));
    if (A.Kind == AccessKind::Read)
      insertSorted(St.Readers, A.Op, [](OpId Op) { return Op; });
    return;
  }

  // The paper's single-slot algorithm (Sec. 5.1). A read poses one CHC
  // question (vs LastWrite), a write poses two (vs LastWrite, then vs
  // LastRead unless the write check already reported); every question is
  // answered by exactly one of the fast paths - ⊥ slot (the paper's
  // CHC(⊥, b) = false case), same operation, muted location, the slot's
  // cached verdict, a single epoch probe, the deflation-covered
  // shortcut, the pair cache - or by one generic oracle query, so
  // EpochHits + ChcQueries is the total question count.
  if (A.Kind == AccessKind::Read) {
    Slot &W = St.LastWrite;
    if (Muted || W.Op == InvalidOpId || W.Op == A.Op) {
      ++EpochHits;
      ++EpochReads;
    } else {
      uint64_t QueriesBefore = ChcQueries;
      if (slotConcurrent(W, A.Op))
        report(St, W, A);
      if (ChcQueries == QueriesBefore)
        ++EpochReads; // Answered without a generic oracle call.
    }
    Slot S;
    S.Op = A.Op;
    if (UseEpochs)
      S.E = CurEpoch;
    S.A = A;
    St.LastRead = std::move(S);
    insertSorted(St.Readers, A.Op, [](OpId Op) { return Op; });
    if (UseEpochs && !Muted)
      noteRead(St, A);
    return;
  }

  // Write: race against the last write and the last read.
  Slot &W = St.LastWrite;
  Slot &R = St.LastRead;
  // Whether this write is ordered after the previous LastWrite (known
  // from the write check's verdict plus the id direction; same-op and
  // no-prior-write count as vacuously ordered). Drives the ReadsCovered
  // invariant in noteWrite.
  bool OrderedAfterLastWrite = false;
  if (Muted) {
    EpochHits += 2;
  } else {
    bool RacedWithWrite = false;
    if (W.Op == InvalidOpId || W.Op == A.Op) {
      ++EpochHits;
      OrderedAfterLastWrite = true;
    } else if (slotConcurrent(W, A.Op)) {
      RacedWithWrite = true;
      report(St, W, A);
    } else {
      OrderedAfterLastWrite = W.Op < A.Op;
    }
    if (!RacedWithWrite) {
      if (R.Op == InvalidOpId || R.Op == A.Op) {
        ++EpochHits;
      } else if (St.Rep == ReadRep::Empty && St.ReadsCovered &&
                 OrderedAfterLastWrite) {
        // Deflation shortcut (the FastTrack write-after-ordered-reads
        // O(1) case): every read is ordered before LastWrite and this
        // write is ordered after LastWrite, so transitively the read
        // check's verdict is "not concurrent" - cache it without a
        // probe. See DESIGN.md "Adaptive epochs" for the soundness
        // argument.
        ++EpochHits;
        R.CheckedVs = A.Op;
        R.Concurrent = false;
      } else if (slotConcurrent(R, A.Op)) {
        report(St, R, A);
      }
    }
  }
  if (UseEpochs && !Muted)
    noteWrite(St, A, OrderedAfterLastWrite);
  Slot S;
  S.Op = A.Op;
  if (UseEpochs)
    S.E = CurEpoch;
  S.A = A;
  S.HadPriorRead = isReader(St, A.Op);
  St.LastWrite = std::move(S);
}

//===- mem/Location.cpp - Logical memory locations ------------------------===//

#include "mem/Location.h"

#include "support/Format.h"

using namespace wr;

std::string wr::toString(const Location &Loc) {
  if (const auto *Var = std::get_if<JSVarLoc>(&Loc)) {
    if (Var->Container == 0)
      return strFormat("var global.%s", Var->Name.c_str());
    if (isDomContainer(Var->Container))
      return strFormat("var node%u.%s", nodeOfContainer(Var->Container),
                       Var->Name.c_str());
    return strFormat("var obj%llu.%s",
                     static_cast<unsigned long long>(Var->Container),
                     Var->Name.c_str());
  }
  if (const auto *Elem = std::get_if<HtmlElemLoc>(&Loc)) {
    switch (Elem->Kind) {
    case ElemKeyKind::ByNode:
      return strFormat("elem doc%u node%u", Elem->Doc, Elem->Node);
    case ElemKeyKind::ById:
      return strFormat("elem doc%u #%s", Elem->Doc, Elem->Key.c_str());
    case ElemKeyKind::ByName:
      return strFormat("elem doc%u name=%s", Elem->Doc, Elem->Key.c_str());
    case ElemKeyKind::ByTag:
      return strFormat("elem doc%u <%s>", Elem->Doc, Elem->Key.c_str());
    }
    return "elem ?";
  }
  const auto &Handler = std::get<EventHandlerLoc>(Loc);
  if (Handler.Target != InvalidNodeId)
    return strFormat("handler (node%u, %s, h%llu)", Handler.Target,
                     Handler.EventType.c_str(),
                     static_cast<unsigned long long>(Handler.HandlerId));
  return strFormat("handler (obj%llu, %s, h%llu)",
                   static_cast<unsigned long long>(Handler.TargetObject),
                   Handler.EventType.c_str(),
                   static_cast<unsigned long long>(Handler.HandlerId));
}

const char *wr::toString(AccessKind Kind) {
  return Kind == AccessKind::Read ? "read" : "write";
}

const char *wr::toString(AccessOrigin Origin) {
  switch (Origin) {
  case AccessOrigin::Plain:
    return "plain";
  case AccessOrigin::FunctionDecl:
    return "function-decl";
  case AccessOrigin::FunctionCall:
    return "function-call";
  case AccessOrigin::FormFieldWrite:
    return "form-field-write";
  case AccessOrigin::FormFieldRead:
    return "form-field-read";
  case AccessOrigin::UserInput:
    return "user-input";
  case AccessOrigin::ElemInsert:
    return "elem-insert";
  case AccessOrigin::ElemRemove:
    return "elem-remove";
  case AccessOrigin::ElemLookup:
    return "elem-lookup";
  case AccessOrigin::HandlerInstall:
    return "handler-install";
  case AccessOrigin::HandlerRemove:
    return "handler-remove";
  case AccessOrigin::HandlerFire:
    return "handler-fire";
  }
  return "unknown";
}

static size_t hashCombine(size_t Seed, size_t Value) {
  return Seed ^ (Value + 0x9e3779b97f4a7c15ull + (Seed << 6) + (Seed >> 2));
}

size_t wr::LocationHash::operator()(const Location &Loc) const {
  std::hash<std::string> HashStr;
  std::hash<uint64_t> HashInt;
  size_t Seed = Loc.index();
  if (const auto *Var = std::get_if<JSVarLoc>(&Loc)) {
    Seed = hashCombine(Seed, HashInt(Var->Container));
    Seed = hashCombine(Seed, HashStr(Var->Name));
    return Seed;
  }
  if (const auto *Elem = std::get_if<HtmlElemLoc>(&Loc)) {
    Seed = hashCombine(Seed, HashInt(Elem->Doc));
    Seed = hashCombine(Seed, HashInt(static_cast<uint64_t>(Elem->Kind)));
    Seed = hashCombine(Seed, HashInt(Elem->Node));
    Seed = hashCombine(Seed, HashStr(Elem->Key));
    return Seed;
  }
  const auto &Handler = std::get<EventHandlerLoc>(Loc);
  Seed = hashCombine(Seed, HashInt(Handler.Target));
  Seed = hashCombine(Seed, HashInt(Handler.TargetObject));
  Seed = hashCombine(Seed, HashStr(Handler.EventType));
  Seed = hashCombine(Seed, HashInt(Handler.HandlerId));
  return Seed;
}

//===- mem/LocationInterner.cpp - Dense ids for logical locations ---------===//
//
// Part of the WebRacer reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "mem/LocationInterner.h"

#include <functional>

namespace wr {

namespace {

uint64_t hashCombine(uint64_t Seed, uint64_t Value) {
  return Seed ^ (Value + 0x9e3779b97f4a7c15ull + (Seed << 6) + (Seed >> 2));
}

// Bucket hashes mirror the structural fields of each variant. They use
// std::hash<std::string_view>, which C++17 guarantees agrees with
// std::hash<std::string> over the same characters, so the string_view
// fast paths and the generic intern() land in the same bucket.
uint64_t hashVar(ContainerId Container, std::string_view Name) {
  uint64_t H = hashCombine(0x11, Container);
  return hashCombine(H, std::hash<std::string_view>{}(Name));
}

uint64_t hashElem(DocumentId Doc, ElemKeyKind Kind, NodeId Node,
                  std::string_view Key) {
  uint64_t H = hashCombine(0x22, Doc);
  H = hashCombine(H, static_cast<uint64_t>(Kind));
  H = hashCombine(H, Node);
  return hashCombine(H, std::hash<std::string_view>{}(Key));
}

uint64_t hashHandler(NodeId Target, ContainerId TargetObject,
                     std::string_view EventType, uint64_t HandlerId) {
  uint64_t H = hashCombine(0x33, Target);
  H = hashCombine(H, TargetObject);
  H = hashCombine(H, std::hash<std::string_view>{}(EventType));
  return hashCombine(H, HandlerId);
}

} // namespace

template <typename EqFn, typename MakeFn>
LocId LocationInterner::findOrAdd(size_t Hash, EqFn Eq, MakeFn Make) {
  std::vector<LocId> &Bucket = Buckets[Hash];
  for (LocId Id : Bucket) {
    if (Eq(Pool[Id])) {
      ++Hits;
      return Id;
    }
  }
  assert(Pool.size() < InvalidLocId && "LocId space exhausted");
  LocId Id = static_cast<LocId>(Pool.size());
  Pool.push_back(Make());
  Bucket.push_back(Id);
  return Id;
}

LocId LocationInterner::internVar(ContainerId Container, std::string_view Name) {
  return findOrAdd(
      hashVar(Container, Name),
      [&](const Location &L) {
        const auto *V = std::get_if<JSVarLoc>(&L);
        return V && V->Container == Container && V->Name == Name;
      },
      [&] { return Location(JSVarLoc{Container, std::string(Name)}); });
}

LocId LocationInterner::internElem(DocumentId Doc, ElemKeyKind Kind,
                                   NodeId Node, std::string_view Key) {
  return findOrAdd(
      hashElem(Doc, Kind, Node, Key),
      [&](const Location &L) {
        const auto *E = std::get_if<HtmlElemLoc>(&L);
        return E && E->Doc == Doc && E->Kind == Kind && E->Node == Node &&
               E->Key == Key;
      },
      [&] { return Location(HtmlElemLoc{Doc, Kind, Node, std::string(Key)}); });
}

LocId LocationInterner::internHandler(NodeId Target, ContainerId TargetObject,
                                      std::string_view EventType,
                                      uint64_t HandlerId) {
  return findOrAdd(
      hashHandler(Target, TargetObject, EventType, HandlerId),
      [&](const Location &L) {
        const auto *H = std::get_if<EventHandlerLoc>(&L);
        return H && H->Target == Target && H->TargetObject == TargetObject &&
               H->EventType == EventType && H->HandlerId == HandlerId;
      },
      [&] {
        return Location(
            EventHandlerLoc{Target, TargetObject, std::string(EventType),
                            HandlerId});
      });
}

LocId LocationInterner::intern(const Location &Loc) {
  if (const auto *V = std::get_if<JSVarLoc>(&Loc))
    return internVar(V->Container, V->Name);
  if (const auto *E = std::get_if<HtmlElemLoc>(&Loc))
    return internElem(E->Doc, E->Kind, E->Node, E->Key);
  const auto &H = std::get<EventHandlerLoc>(Loc);
  return internHandler(H.Target, H.TargetObject, H.EventType, H.HandlerId);
}

void LocationInterner::clear() {
  Pool.clear();
  Buckets.clear();
  Hits = 0;
}

} // namespace wr

//===- mem/Location.h - Logical memory locations ----------------*- C++ -*-===//
//
// Part of the WebRacer reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The logical memory-access model of the paper's Section 4.
///
/// The web platform has no natural notion of machine-level accesses:
/// operations touch JavaScript heap slots, browser-internal DOM structures,
/// or both. The paper therefore defines three families of *logical*
/// locations, reproduced here:
///
///  * JSVarLoc        - JavaScript variables: globals, closure-captured
///                      locals, and object properties (Sec. 4.1).
///  * HtmlElemLoc     - HTML elements in a document (Sec. 4.2). Insertion
///                      and removal write the element; lookups
///                      (getElementById & friends) read it. Lookups are
///                      keyed by the *query* (id, name, or tag) so that a
///                      failed lookup still produces a read of the element
///                      it names - this is what exposes HTML races like the
///                      paper's Fig. 3.
///  * EventHandlerLoc - (target element, event type, handler) triples
///                      (Sec. 4.3). Installing/removing a handler writes the
///                      location; dispatching the event reads it.
///
//===----------------------------------------------------------------------===//

#ifndef WEBRACER_MEM_LOCATION_H
#define WEBRACER_MEM_LOCATION_H

#include <cstdint>
#include <functional>
#include <string>
#include <variant>

namespace wr {

/// Identifies a JS scope or heap object that can own variables/properties.
/// The runtime assigns these; 0 is reserved for "the global scope".
using ContainerId = uint64_t;

/// Host-modeled DOM node properties (value, parentNode, ...) live in a
/// dedicated container namespace keyed by node id, stable across wrapper
/// lifetimes: bit 62 set, low bits the node id.
inline constexpr ContainerId DomContainerBit = 1ull << 62;

/// Container id for DOM node \p N's host-modeled properties.
constexpr ContainerId domContainerId(uint32_t N) {
  return DomContainerBit | static_cast<ContainerId>(N);
}

/// True if \p C is a DOM-node container.
constexpr bool isDomContainer(ContainerId C) {
  return (C & DomContainerBit) != 0;
}

/// The node id behind a DOM-node container.
constexpr uint32_t nodeOfContainer(ContainerId C) {
  return static_cast<uint32_t>(C & ~DomContainerBit);
}

/// Stable identity of a DOM node, assigned by the DOM arena.
using NodeId = uint32_t;

/// Sentinel for "no node".
inline constexpr NodeId InvalidNodeId = 0;

/// Stable identity of a document (root HTML page = 1, iframes > 1).
using DocumentId = uint32_t;

/// A JavaScript variable: a (container, name) pair where the container is a
/// scope (for variables) or an object (for properties). Per Sec. 4.1 this
/// covers globals, closure-shared locals, and instance fields alike.
struct JSVarLoc {
  ContainerId Container = 0;
  std::string Name;

  bool operator==(const JSVarLoc &Other) const = default;
};

/// How an HTML-element access names the element. Direct node references
/// (e.g. `someVar.parentNode`) use the node identity; string-based lookups
/// use the query key so that lookups racing with element creation collide
/// on the same logical location even when the lookup fails.
enum class ElemKeyKind : uint8_t {
  ByNode, ///< Concrete node identity.
  ById,   ///< document.getElementById("...") and id-keyed insertion.
  ByName, ///< document.getElementsByName("...") / form element name.
  ByTag,  ///< Tag collections: getElementsByTagName, document.images, ...
};

/// An HTML element location (Sec. 4.2).
struct HtmlElemLoc {
  DocumentId Doc = 0;
  ElemKeyKind Kind = ElemKeyKind::ByNode;
  NodeId Node = InvalidNodeId; ///< Valid iff Kind == ByNode.
  std::string Key;             ///< Valid iff Kind != ByNode.

  bool operator==(const HtmlElemLoc &Other) const = default;
};

/// An event-handler location (el, e, h) per Sec. 4.3. Keeping the handler
/// identity in the location lets accesses that manipulate disjoint handlers
/// for the same event not interfere.
struct EventHandlerLoc {
  NodeId Target = InvalidNodeId; ///< 0 is allowed for window-level targets.
  ContainerId TargetObject = 0;  ///< JS identity when Target is not a node
                                 ///< (window, XHR objects).
  std::string EventType;
  uint64_t HandlerId = 0; ///< Identity of the handler function/slot. The
                          ///< content-attribute / on-property slot uses 0 so
                          ///< that overwrites of the same slot collide.

  bool operator==(const EventHandlerLoc &Other) const = default;
};

/// A logical shared-memory location: Loc = JSVar ∪ HElem ∪ Eloc.
using Location = std::variant<JSVarLoc, HtmlElemLoc, EventHandlerLoc>;

/// Dense id of an interned logical location (see mem/LocationInterner.h).
/// Assigned sequentially from 0 in first-touch order; the access hot path
/// carries this id instead of a Location value.
using LocId = uint32_t;

/// Sentinel for "no location".
inline constexpr LocId InvalidLocId = 0xffffffffu;

/// Read or write, per the classic race definition.
enum class AccessKind : uint8_t { Read, Write };

/// Why the access happened; drives race classification (Sec. 2's four race
/// types) and the report filters (Sec. 5.3).
enum class AccessOrigin : uint8_t {
  Plain,          ///< Ordinary variable/property access.
  FunctionDecl,   ///< Write performed by hoisting a function declaration.
  FunctionCall,   ///< Read performed to resolve a call target.
  FormFieldWrite, ///< Script write to a form field's value/checked.
  FormFieldRead,  ///< Script read of a form field's value/checked.
  UserInput,      ///< Simulated user typing/clicking wrote a form field.
  ElemInsert,     ///< Element inserted into a document.
  ElemRemove,     ///< Element removed from a document.
  ElemLookup,     ///< getElementById & friends.
  HandlerInstall, ///< Event handler installed (attr, property, listener).
  HandlerRemove,  ///< removeEventListener or property overwrite.
  HandlerFire,    ///< Event dispatch read the handler location.
};

/// One instrumented memory access. Carries the interned location id; the
/// owning LocationInterner (browser- or trace-side) resolves it back to a
/// full Location when a report needs one.
struct Access {
  AccessKind Kind = AccessKind::Read;
  AccessOrigin Origin = AccessOrigin::Plain;
  uint32_t Op = 0; ///< OpId of the performing operation (see hb/OpId.h).
  LocId Loc = InvalidLocId;
  std::string Detail; ///< Human-readable context for reports.
};

/// Returns a stable human-readable rendering, e.g. `var global.x`,
/// `elem #dw`, `handler (node 5, load, slot)`.
std::string toString(const Location &Loc);

/// Renders an access kind as "read"/"write".
const char *toString(AccessKind Kind);

/// Renders an access origin tag.
const char *toString(AccessOrigin Origin);

/// Hash functor so Location can key unordered maps.
struct LocationHash {
  size_t operator()(const Location &Loc) const;
};

} // namespace wr

#endif // WEBRACER_MEM_LOCATION_H

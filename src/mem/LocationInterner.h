//===- mem/LocationInterner.h - Dense ids for logical locations -*- C++ -*-===//
//
// Part of the WebRacer reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interning for the logical memory locations of Sec. 4. Every distinct
/// Location is assigned a dense 32-bit LocId the first time it is seen;
/// the access hot path then carries the id instead of a
/// variant-of-strings value, so the detector can key its per-location
/// state by vector index and producers stop allocating a string per
/// access. Ids are assigned sequentially in first-touch order, which
/// makes them deterministic for a fixed seed (and identical between an
/// online run and a replay of its trace, because the trace preserves the
/// interning order).
///
/// The interner provides:
///  * stable ids - a Location's id never changes for the interner's
///    lifetime, and resolve() references stay valid (deque storage);
///  * reverse lookup - resolve(id) returns the full Location for report
///    rendering;
///  * pooled string storage - each distinct location's strings are
///    stored exactly once, and the typed intern fast paths
///    (internVar/internElem/internHandler) take string_views so a hit
///    performs no allocation at all.
///
//===----------------------------------------------------------------------===//

#ifndef WEBRACER_MEM_LOCATIONINTERNER_H
#define WEBRACER_MEM_LOCATIONINTERNER_H

#include "mem/Location.h"

#include <cassert>
#include <deque>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace wr {

/// Assigns dense ids to logical locations and resolves them back.
/// LocId itself is declared next to Location in mem/Location.h so that
/// the access structs do not need this header.
class LocationInterner {
public:
  /// Interns \p Loc (generic path; copies the value on first touch).
  LocId intern(const Location &Loc);

  /// Typed fast paths: no Location (and no std::string) is constructed
  /// when the location is already interned.
  LocId internVar(ContainerId Container, std::string_view Name);
  LocId internElem(DocumentId Doc, ElemKeyKind Kind, NodeId Node,
                   std::string_view Key);
  LocId internHandler(NodeId Target, ContainerId TargetObject,
                      std::string_view EventType, uint64_t HandlerId);

  /// Reverse lookup. \p Id must be a live id from this interner; the
  /// reference stays valid for the interner's lifetime.
  const Location &resolve(LocId Id) const {
    assert(contains(Id) && "resolve of unknown LocId");
    return Pool[Id];
  }

  /// True if \p Id names an interned location.
  bool contains(LocId Id) const { return Id < Pool.size(); }

  /// Number of distinct locations interned (== the next id assigned).
  size_t size() const { return Pool.size(); }
  bool empty() const { return Pool.empty(); }

  /// Intern calls that found an existing id (hot-path effectiveness;
  /// misses == size()).
  uint64_t hits() const { return Hits; }

  /// Drops every id and string. Outstanding LocIds become invalid.
  void clear();

private:
  template <typename EqFn, typename MakeFn>
  LocId findOrAdd(size_t Hash, EqFn Eq, MakeFn Make);

  /// Id-indexed storage; deque keeps resolve() references stable.
  std::deque<Location> Pool;
  /// Component-hash buckets (chained ids; structural compare on probe).
  std::unordered_map<uint64_t, std::vector<LocId>> Buckets;
  uint64_t Hits = 0;
};

} // namespace wr

#endif // WEBRACER_MEM_LOCATIONINTERNER_H

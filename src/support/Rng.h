//===- support/Rng.h - Deterministic random number generator ---*- C++ -*-===//
//
// Part of the WebRacer reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, deterministic, seedable PRNG (splitmix64 + xoshiro256**).
///
/// Every source of nondeterminism in the simulated browser (network latency,
/// event timing, corpus generation) is derived from one of these generators,
/// so that every race report is replayable from a seed.
///
//===----------------------------------------------------------------------===//

#ifndef WEBRACER_SUPPORT_RNG_H
#define WEBRACER_SUPPORT_RNG_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace wr {

/// Deterministic xoshiro256** generator seeded via splitmix64.
class Rng {
public:
  explicit Rng(uint64_t Seed = 0x9e3779b97f4a7c15ull) { reseed(Seed); }

  /// Re-initializes the state from \p Seed.
  void reseed(uint64_t Seed);

  /// Returns the next raw 64-bit value.
  uint64_t next();

  /// Returns a uniformly distributed integer in [0, Bound). \p Bound must be
  /// nonzero.
  uint64_t nextBelow(uint64_t Bound);

  /// Returns a uniformly distributed integer in [Lo, Hi] inclusive.
  int64_t nextInRange(int64_t Lo, int64_t Hi);

  /// Returns a double in [0, 1).
  double nextDouble();

  /// Returns true with probability \p P (clamped to [0,1]).
  bool nextBool(double P = 0.5);

  /// Fisher-Yates shuffle of \p Items.
  template <typename T> void shuffle(std::vector<T> &Items) {
    if (Items.size() < 2)
      return;
    for (size_t I = Items.size() - 1; I > 0; --I) {
      size_t J = static_cast<size_t>(nextBelow(I + 1));
      using std::swap;
      swap(Items[I], Items[J]);
    }
  }

  /// Picks a uniformly random element of \p Items, which must be non-empty.
  template <typename T> const T &pick(const std::vector<T> &Items) {
    assert(!Items.empty() && "pick() from empty vector");
    return Items[static_cast<size_t>(nextBelow(Items.size()))];
  }

  /// Derives an independent child generator; useful for giving each
  /// subsystem its own stream while keeping global determinism.
  Rng fork();

private:
  uint64_t State[4];
};

} // namespace wr

#endif // WEBRACER_SUPPORT_RNG_H

//===- support/StringUtils.h - Small string helpers -------------*- C++ -*-===//
//
// Part of the WebRacer reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// String helpers shared across the HTML tokenizer, MiniJS lexer, and report
/// printers. All functions are pure and allocation is explicit.
///
//===----------------------------------------------------------------------===//

#ifndef WEBRACER_SUPPORT_STRINGUTILS_H
#define WEBRACER_SUPPORT_STRINGUTILS_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace wr {

/// Returns \p S converted to ASCII lowercase.
std::string toLower(std::string_view S);

/// Returns \p S with ASCII whitespace removed from both ends.
std::string_view trim(std::string_view S);

/// Splits \p S on \p Sep, keeping empty pieces.
std::vector<std::string> split(std::string_view S, char Sep);

/// Joins \p Parts with \p Sep between consecutive elements.
std::string join(const std::vector<std::string> &Parts, std::string_view Sep);

/// True if \p S starts with \p Prefix (case-sensitive).
bool startsWith(std::string_view S, std::string_view Prefix);

/// True if \p S starts with \p Prefix, compared ASCII-case-insensitively.
bool startsWithIgnoreCase(std::string_view S, std::string_view Prefix);

/// True if \p A equals \p B, compared ASCII-case-insensitively.
bool equalsIgnoreCase(std::string_view A, std::string_view B);

/// True for ' ', '\\t', '\\n', '\\r', '\\f'.
bool isHtmlSpace(char C);

/// Escapes ", \\, and control characters so \p S can be embedded in a JSON
/// or report string.
std::string escapeForReport(std::string_view S);

/// Replaces every occurrence of \p From in \p S with \p To.
std::string replaceAll(std::string_view S, std::string_view From,
                       std::string_view To);

/// Strict base-10 unsigned parse: the whole string must be digits (no
/// sign, no whitespace, no trailing junk, not empty, no overflow).
/// Returns false without touching \p Out on any violation - unlike
/// strtoull, which silently accepts "12abc" and negatives.
bool parseUint64(std::string_view S, uint64_t &Out);

} // namespace wr

#endif // WEBRACER_SUPPORT_STRINGUTILS_H

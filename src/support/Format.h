//===- support/Format.h - printf-style std::string formatting --*- C++ -*-===//
//
// Part of the WebRacer reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A printf-style formatter that returns std::string, used by report
/// printers and diagnostics so library code never touches <iostream>.
///
//===----------------------------------------------------------------------===//

#ifndef WEBRACER_SUPPORT_FORMAT_H
#define WEBRACER_SUPPORT_FORMAT_H

#include <string>

namespace wr {

/// Formats like printf and returns the result as a std::string.
std::string strFormat(const char *Fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace wr

#endif // WEBRACER_SUPPORT_FORMAT_H

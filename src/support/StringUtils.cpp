//===- support/StringUtils.cpp - Small string helpers --------------------===//

#include "support/StringUtils.h"

#include <cctype>

using namespace wr;

std::string wr::toLower(std::string_view S) {
  std::string Result;
  Result.reserve(S.size());
  for (char C : S)
    Result.push_back(static_cast<char>(
        std::tolower(static_cast<unsigned char>(C))));
  return Result;
}

std::string_view wr::trim(std::string_view S) {
  size_t Begin = 0;
  while (Begin < S.size() && isHtmlSpace(S[Begin]))
    ++Begin;
  size_t End = S.size();
  while (End > Begin && isHtmlSpace(S[End - 1]))
    --End;
  return S.substr(Begin, End - Begin);
}

std::vector<std::string> wr::split(std::string_view S, char Sep) {
  std::vector<std::string> Parts;
  size_t Start = 0;
  for (size_t I = 0; I <= S.size(); ++I) {
    if (I == S.size() || S[I] == Sep) {
      Parts.emplace_back(S.substr(Start, I - Start));
      Start = I + 1;
    }
  }
  return Parts;
}

std::string wr::join(const std::vector<std::string> &Parts,
                     std::string_view Sep) {
  std::string Result;
  for (size_t I = 0; I < Parts.size(); ++I) {
    if (I != 0)
      Result += Sep;
    Result += Parts[I];
  }
  return Result;
}

bool wr::startsWith(std::string_view S, std::string_view Prefix) {
  return S.size() >= Prefix.size() && S.substr(0, Prefix.size()) == Prefix;
}

bool wr::startsWithIgnoreCase(std::string_view S, std::string_view Prefix) {
  if (S.size() < Prefix.size())
    return false;
  return equalsIgnoreCase(S.substr(0, Prefix.size()), Prefix);
}

bool wr::equalsIgnoreCase(std::string_view A, std::string_view B) {
  if (A.size() != B.size())
    return false;
  for (size_t I = 0; I < A.size(); ++I) {
    char CA = static_cast<char>(
        std::tolower(static_cast<unsigned char>(A[I])));
    char CB = static_cast<char>(
        std::tolower(static_cast<unsigned char>(B[I])));
    if (CA != CB)
      return false;
  }
  return true;
}

bool wr::isHtmlSpace(char C) {
  return C == ' ' || C == '\t' || C == '\n' || C == '\r' || C == '\f';
}

std::string wr::escapeForReport(std::string_view S) {
  std::string Result;
  Result.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Result += "\\\"";
      break;
    case '\\':
      Result += "\\\\";
      break;
    case '\n':
      Result += "\\n";
      break;
    case '\r':
      Result += "\\r";
      break;
    case '\t':
      Result += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        static const char Hex[] = "0123456789abcdef";
        Result += "\\u00";
        Result += Hex[(C >> 4) & 0xf];
        Result += Hex[C & 0xf];
      } else {
        Result += C;
      }
    }
  }
  return Result;
}

std::string wr::replaceAll(std::string_view S, std::string_view From,
                           std::string_view To) {
  if (From.empty())
    return std::string(S);
  std::string Result;
  size_t Pos = 0;
  for (;;) {
    size_t Hit = S.find(From, Pos);
    if (Hit == std::string_view::npos)
      break;
    Result.append(S.substr(Pos, Hit - Pos));
    Result.append(To);
    Pos = Hit + From.size();
  }
  Result.append(S.substr(Pos));
  return Result;
}

bool wr::parseUint64(std::string_view S, uint64_t &Out) {
  if (S.empty())
    return false;
  uint64_t Value = 0;
  for (char C : S) {
    if (C < '0' || C > '9')
      return false;
    uint64_t Digit = static_cast<uint64_t>(C - '0');
    if (Value > (UINT64_MAX - Digit) / 10)
      return false; // Overflow.
    Value = Value * 10 + Digit;
  }
  Out = Value;
  return true;
}

//===- support/Format.cpp - printf-style std::string formatting ----------===//

#include "support/Format.h"

#include <cstdarg>
#include <cstdio>

using namespace wr;

std::string wr::strFormat(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  va_list ArgsCopy;
  va_copy(ArgsCopy, Args);
  int Needed = std::vsnprintf(nullptr, 0, Fmt, Args);
  va_end(Args);
  if (Needed < 0) {
    va_end(ArgsCopy);
    return std::string();
  }
  std::string Result(static_cast<size_t>(Needed), '\0');
  std::vsnprintf(Result.data(), Result.size() + 1, Fmt, ArgsCopy);
  va_end(ArgsCopy);
  return Result;
}

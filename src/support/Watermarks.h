//===- support/Watermarks.h - Wide watermark-array primitives ---*- C++ -*-===//
//
// Part of the WebRacer reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The three inner loops every vector-clock representation in the system
/// shares - domination (is clock A pointwise <= clock B?), max-join
/// (B |= A), and all-zero - over contiguous uint32_t watermark arrays,
/// widened to process two packed watermarks per uint64_t step with a
/// scalar tail. The uint64_t words are assembled with memcpy, so the
/// helpers carry no alignment requirement and stay free of strict-aliasing
/// UB; the bodies are straight-line enough for compilers to autovectorize
/// (SSE/NEON compare and pmax patterns). Used by HbGraph's copy-on-write
/// alias check and slab merge and by the SHB/WCP PredictiveEngine clock
/// mirror, so the three call sites cannot drift apart.
///
//===----------------------------------------------------------------------===//

#ifndef WEBRACER_SUPPORT_WATERMARKS_H
#define WEBRACER_SUPPORT_WATERMARKS_H

#include <cstdint>
#include <cstring>

namespace wr::support {

/// True iff A[I] <= B[I] for every I in [0, Len). The wide step compares
/// both packed halves of one uint64_t load; equal words (the common case
/// under copy-on-write slabs, which share long identical prefixes) pass
/// without unpacking.
inline bool watermarksDominated(const uint32_t *A, const uint32_t *B,
                                size_t Len) {
  size_t I = 0;
  for (; I + 2 <= Len; I += 2) {
    uint64_t Wa, Wb;
    std::memcpy(&Wa, A + I, sizeof(Wa));
    std::memcpy(&Wb, B + I, sizeof(Wb));
    if (Wa == Wb)
      continue;
    if (static_cast<uint32_t>(Wa) > static_cast<uint32_t>(Wb) ||
        static_cast<uint32_t>(Wa >> 32) > static_cast<uint32_t>(Wb >> 32))
      return false;
  }
  for (; I < Len; ++I) // Scalar tail (odd Len).
    if (A[I] > B[I])
      return false;
  return true;
}

/// Dst[I] = max(Dst[I], Src[I]) for every I in [0, Len). Dst and Src must
/// not overlap. The wide step skips zero and already-dominated source
/// words without unpacking.
inline void watermarksJoinMax(uint32_t *Dst, const uint32_t *Src,
                              size_t Len) {
  size_t I = 0;
  for (; I + 2 <= Len; I += 2) {
    uint64_t Wd, Ws;
    std::memcpy(&Wd, Dst + I, sizeof(Wd));
    std::memcpy(&Ws, Src + I, sizeof(Ws));
    if (Ws == 0 || Wd == Ws)
      continue;
    uint32_t D0 = static_cast<uint32_t>(Wd);
    uint32_t D1 = static_cast<uint32_t>(Wd >> 32);
    uint32_t S0 = static_cast<uint32_t>(Ws);
    uint32_t S1 = static_cast<uint32_t>(Ws >> 32);
    if (S0 > D0)
      D0 = S0;
    if (S1 > D1)
      D1 = S1;
    uint64_t Out =
        static_cast<uint64_t>(D0) | (static_cast<uint64_t>(D1) << 32);
    std::memcpy(Dst + I, &Out, sizeof(Out));
  }
  for (; I < Len; ++I) // Scalar tail.
    if (Src[I] > Dst[I])
      Dst[I] = Src[I];
}

/// True iff every entry of A[0, Len) is zero (two watermarks per
/// uint64_t OR step).
inline bool watermarksAllZero(const uint32_t *A, size_t Len) {
  size_t I = 0;
  for (; I + 2 <= Len; I += 2) {
    uint64_t W;
    std::memcpy(&W, A + I, sizeof(W));
    if (W != 0)
      return false;
  }
  for (; I < Len; ++I)
    if (A[I] != 0)
      return false;
  return true;
}

} // namespace wr::support

#endif // WEBRACER_SUPPORT_WATERMARKS_H

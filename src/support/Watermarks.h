//===- support/Watermarks.h - Wide watermark-array primitives ---*- C++ -*-===//
//
// Part of the WebRacer reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The three inner loops every vector-clock representation in the system
/// shares - domination (is clock A pointwise <= clock B?), max-join
/// (B |= A), and all-zero - over contiguous uint32_t watermark arrays.
///
/// Each primitive has up to three tiers selected at compile time:
///
///  - AVX2 (x86-64 with -mavx2, see the WR_ENABLE_AVX2 CMake option):
///    8 watermarks per 256-bit step via unaligned loads, epu32 max and
///    compare, and movemask/testz reductions.
///  - NEON (aarch64, always available there): 4 watermarks per 128-bit
///    step via vld1q_u32, vcleq/vmaxq, and the vminv/vmaxv horizontal
///    reductions.
///  - SWAR fallback (detail::*Swar below): two packed watermarks per
///    uint64_t assembled with memcpy - no alignment requirement, no
///    strict-aliasing UB - with a scalar tail. The vector tiers delegate
///    their sub-width tails here, so the SWAR bodies are always compiled
///    and stay the reference semantics (support_test checks the public
///    entry points against them lane-for-lane on randomized inputs).
///
/// Used by HbGraph's copy-on-write alias check and slab merge and by the
/// SHB/WCP PredictiveEngine clock mirror, so the three call sites cannot
/// drift apart. bench/hb_scaling prints the measured bytes/ns per join
/// for whichever tier this build selected.
///
//===----------------------------------------------------------------------===//

#ifndef WEBRACER_SUPPORT_WATERMARKS_H
#define WEBRACER_SUPPORT_WATERMARKS_H

#include <cstdint>
#include <cstring>

#if defined(__AVX2__)
#include <immintrin.h>
#define WEBRACER_WATERMARKS_AVX2 1
#elif defined(__aarch64__) && defined(__ARM_NEON)
#include <arm_neon.h>
#define WEBRACER_WATERMARKS_NEON 1
#endif

namespace wr::support {

/// Human-readable name of the vector tier this translation unit compiled
/// in; surfaced by bench/hb_scaling so saved tables say what they measured.
inline const char *watermarksIsa() {
#if defined(WEBRACER_WATERMARKS_AVX2)
  return "avx2";
#elif defined(WEBRACER_WATERMARKS_NEON)
  return "neon";
#else
  return "swar";
#endif
}

namespace detail {

/// True iff A[I] <= B[I] for every I in [0, Len). The wide step compares
/// both packed halves of one uint64_t load; equal words (the common case
/// under copy-on-write slabs, which share long identical prefixes) pass
/// without unpacking.
inline bool watermarksDominatedSwar(const uint32_t *A, const uint32_t *B,
                                    size_t Len) {
  size_t I = 0;
  for (; I + 2 <= Len; I += 2) {
    uint64_t Wa, Wb;
    std::memcpy(&Wa, A + I, sizeof(Wa));
    std::memcpy(&Wb, B + I, sizeof(Wb));
    if (Wa == Wb)
      continue;
    if (static_cast<uint32_t>(Wa) > static_cast<uint32_t>(Wb) ||
        static_cast<uint32_t>(Wa >> 32) > static_cast<uint32_t>(Wb >> 32))
      return false;
  }
  for (; I < Len; ++I) // Scalar tail (odd Len).
    if (A[I] > B[I])
      return false;
  return true;
}

/// Dst[I] = max(Dst[I], Src[I]) for every I in [0, Len). Dst and Src must
/// not overlap. The wide step skips zero and already-dominated source
/// words without unpacking.
inline void watermarksJoinMaxSwar(uint32_t *Dst, const uint32_t *Src,
                                  size_t Len) {
  size_t I = 0;
  for (; I + 2 <= Len; I += 2) {
    uint64_t Wd, Ws;
    std::memcpy(&Wd, Dst + I, sizeof(Wd));
    std::memcpy(&Ws, Src + I, sizeof(Ws));
    if (Ws == 0 || Wd == Ws)
      continue;
    uint32_t D0 = static_cast<uint32_t>(Wd);
    uint32_t D1 = static_cast<uint32_t>(Wd >> 32);
    uint32_t S0 = static_cast<uint32_t>(Ws);
    uint32_t S1 = static_cast<uint32_t>(Ws >> 32);
    if (S0 > D0)
      D0 = S0;
    if (S1 > D1)
      D1 = S1;
    uint64_t Out =
        static_cast<uint64_t>(D0) | (static_cast<uint64_t>(D1) << 32);
    std::memcpy(Dst + I, &Out, sizeof(Out));
  }
  for (; I < Len; ++I) // Scalar tail.
    if (Src[I] > Dst[I])
      Dst[I] = Src[I];
}

/// True iff every entry of A[0, Len) is zero (two watermarks per
/// uint64_t OR step).
inline bool watermarksAllZeroSwar(const uint32_t *A, size_t Len) {
  size_t I = 0;
  for (; I + 2 <= Len; I += 2) {
    uint64_t W;
    std::memcpy(&W, A + I, sizeof(W));
    if (W != 0)
      return false;
  }
  for (; I < Len; ++I)
    if (A[I] != 0)
      return false;
  return true;
}

} // namespace detail

/// True iff A[I] <= B[I] for every I in [0, Len).
inline bool watermarksDominated(const uint32_t *A, const uint32_t *B,
                                size_t Len) {
#if defined(WEBRACER_WATERMARKS_AVX2)
  size_t I = 0;
  for (; I + 8 <= Len; I += 8) {
    __m256i Va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i *>(A + I));
    __m256i Vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i *>(B + I));
    // Unsigned A <= B per lane as max(A, B) == B; any lane where the
    // compare misses breaks domination.
    __m256i Le = _mm256_cmpeq_epi32(_mm256_max_epu32(Va, Vb), Vb);
    if (_mm256_movemask_epi8(Le) != -1)
      return false;
  }
  return detail::watermarksDominatedSwar(A + I, B + I, Len - I);
#elif defined(WEBRACER_WATERMARKS_NEON)
  size_t I = 0;
  for (; I + 4 <= Len; I += 4) {
    uint32x4_t Va = vld1q_u32(A + I);
    uint32x4_t Vb = vld1q_u32(B + I);
    // vcleq yields all-ones lanes where A <= B; a zero minimum means some
    // lane failed.
    if (vminvq_u32(vcleq_u32(Va, Vb)) == 0)
      return false;
  }
  return detail::watermarksDominatedSwar(A + I, B + I, Len - I);
#else
  return detail::watermarksDominatedSwar(A, B, Len);
#endif
}

/// Dst[I] = max(Dst[I], Src[I]) for every I in [0, Len). Dst and Src must
/// not overlap.
inline void watermarksJoinMax(uint32_t *Dst, const uint32_t *Src,
                              size_t Len) {
#if defined(WEBRACER_WATERMARKS_AVX2)
  size_t I = 0;
  for (; I + 8 <= Len; I += 8) {
    __m256i Vd =
        _mm256_loadu_si256(reinterpret_cast<const __m256i *>(Dst + I));
    __m256i Vs =
        _mm256_loadu_si256(reinterpret_cast<const __m256i *>(Src + I));
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(Dst + I),
                        _mm256_max_epu32(Vd, Vs));
  }
  detail::watermarksJoinMaxSwar(Dst + I, Src + I, Len - I);
#elif defined(WEBRACER_WATERMARKS_NEON)
  size_t I = 0;
  for (; I + 4 <= Len; I += 4)
    vst1q_u32(Dst + I, vmaxq_u32(vld1q_u32(Dst + I), vld1q_u32(Src + I)));
  detail::watermarksJoinMaxSwar(Dst + I, Src + I, Len - I);
#else
  detail::watermarksJoinMaxSwar(Dst, Src, Len);
#endif
}

/// True iff every entry of A[0, Len) is zero.
inline bool watermarksAllZero(const uint32_t *A, size_t Len) {
#if defined(WEBRACER_WATERMARKS_AVX2)
  size_t I = 0;
  for (; I + 8 <= Len; I += 8) {
    __m256i V =
        _mm256_loadu_si256(reinterpret_cast<const __m256i *>(A + I));
    if (!_mm256_testz_si256(V, V))
      return false;
  }
  return detail::watermarksAllZeroSwar(A + I, Len - I);
#elif defined(WEBRACER_WATERMARKS_NEON)
  size_t I = 0;
  for (; I + 4 <= Len; I += 4)
    if (vmaxvq_u32(vld1q_u32(A + I)) != 0)
      return false;
  return detail::watermarksAllZeroSwar(A + I, Len - I);
#else
  return detail::watermarksAllZeroSwar(A, Len);
#endif
}

} // namespace wr::support

#endif // WEBRACER_SUPPORT_WATERMARKS_H

//===- support/InlineVec.h - Small-size-optimized vector --------*- C++ -*-===//
//
// Part of the WebRacer reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A vector with inline storage for the first N elements, for per-node
/// adjacency lists where the common degree is 1-2: most happens-before
/// operations have one predecessor (their chain) and at most a couple of
/// successors, so a heap allocation per operation is pure overhead. The
/// element type must be trivially copyable (adjacency lists hold OpIds
/// and (OpId, rule) pairs), which keeps growth a memcpy.
///
//===----------------------------------------------------------------------===//

#ifndef WEBRACER_SUPPORT_INLINEVEC_H
#define WEBRACER_SUPPORT_INLINEVEC_H

#include <cassert>
#include <cstdint>
#include <cstring>
#include <type_traits>
#include <utility>

namespace wr {

template <typename T, unsigned N> class InlineVec {
  static_assert(N > 0, "inline capacity must be nonzero");
  static_assert(std::is_trivially_copyable_v<T>,
                "InlineVec is for trivially copyable payloads");

public:
  InlineVec() = default;

  InlineVec(const InlineVec &O) { copyFrom(O); }

  InlineVec(InlineVec &&O) noexcept { stealFrom(O); }

  InlineVec &operator=(const InlineVec &O) {
    if (this != &O) {
      releaseHeap();
      copyFrom(O);
    }
    return *this;
  }

  InlineVec &operator=(InlineVec &&O) noexcept {
    if (this != &O) {
      releaseHeap();
      stealFrom(O);
    }
    return *this;
  }

  ~InlineVec() { releaseHeap(); }

  void push_back(const T &V) {
    T Copy = V; // By value first: V may alias our storage across a grow.
    if (Count == Capacity)
      grow(Capacity * 2);
    data()[Count++] = Copy;
  }

  template <typename... Args> void emplace_back(Args &&...A) {
    push_back(T(std::forward<Args>(A)...));
  }

  /// Ensures room for \p NewCap elements without changing size.
  void reserve(uint32_t NewCap) {
    if (NewCap > Capacity)
      grow(NewCap);
  }

  void clear() { Count = 0; }

  uint32_t size() const { return Count; }
  bool empty() const { return Count == 0; }
  uint32_t capacity() const { return Capacity; }

  const T *data() const { return Heap ? Heap : Inline; }
  T *data() { return Heap ? Heap : Inline; }

  const T *begin() const { return data(); }
  const T *end() const { return data() + Count; }
  T *begin() { return data(); }
  T *end() { return data() + Count; }

  const T &operator[](uint32_t I) const {
    assert(I < Count && "index out of range");
    return data()[I];
  }
  T &operator[](uint32_t I) {
    assert(I < Count && "index out of range");
    return data()[I];
  }

  const T &front() const { return (*this)[0]; }
  const T &back() const { return (*this)[Count - 1]; }

  /// Bytes of heap the list owns (0 while it fits inline); for memory
  /// accounting.
  uint64_t heapBytes() const {
    return Heap ? static_cast<uint64_t>(Capacity) * sizeof(T) : 0;
  }

private:
  void grow(uint32_t NewCap) {
    if (NewCap < Count)
      NewCap = Count;
    T *NewHeap = new T[NewCap];
    std::memcpy(static_cast<void *>(NewHeap), data(), Count * sizeof(T));
    releaseHeap();
    Heap = NewHeap;
    Capacity = NewCap;
  }

  void copyFrom(const InlineVec &O) {
    Count = O.Count;
    if (Count <= N) {
      Heap = nullptr;
      Capacity = N;
      std::memcpy(static_cast<void *>(Inline), O.data(), Count * sizeof(T));
    } else {
      Heap = new T[O.Capacity];
      Capacity = O.Capacity;
      std::memcpy(static_cast<void *>(Heap), O.Heap, Count * sizeof(T));
    }
  }

  void stealFrom(InlineVec &O) noexcept {
    Count = O.Count;
    Capacity = O.Capacity;
    Heap = O.Heap;
    if (!Heap)
      std::memcpy(static_cast<void *>(Inline), O.Inline, Count * sizeof(T));
    O.Heap = nullptr;
    O.Count = 0;
    O.Capacity = N;
  }

  void releaseHeap() {
    delete[] Heap;
    Heap = nullptr;
    Capacity = N;
  }

  T *Heap = nullptr;
  uint32_t Count = 0;
  uint32_t Capacity = N;
  T Inline[N];
};

} // namespace wr

#endif // WEBRACER_SUPPORT_INLINEVEC_H

//===- tests/support_test.cpp - support library tests ----------------------===//

#include "support/Format.h"
#include "support/InlineVec.h"
#include "support/Rng.h"
#include "support/StringUtils.h"
#include "support/Watermarks.h"

#include <gtest/gtest.h>

#include <set>

using namespace wr;

TEST(RngTest, Deterministic) {
  Rng A(42), B(42);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng A(1), B(2);
  int Same = 0;
  for (int I = 0; I < 64; ++I)
    if (A.next() == B.next())
      ++Same;
  EXPECT_LT(Same, 2);
}

TEST(RngTest, NextBelowInRange) {
  Rng R(7);
  for (int I = 0; I < 1000; ++I) {
    uint64_t V = R.nextBelow(17);
    EXPECT_LT(V, 17u);
  }
}

TEST(RngTest, NextBelowCoversAllValues) {
  Rng R(9);
  std::set<uint64_t> Seen;
  for (int I = 0; I < 500; ++I)
    Seen.insert(R.nextBelow(5));
  EXPECT_EQ(Seen.size(), 5u);
}

TEST(RngTest, NextInRangeInclusive) {
  Rng R(3);
  bool SawLo = false, SawHi = false;
  for (int I = 0; I < 2000; ++I) {
    int64_t V = R.nextInRange(-2, 2);
    EXPECT_GE(V, -2);
    EXPECT_LE(V, 2);
    SawLo |= V == -2;
    SawHi |= V == 2;
  }
  EXPECT_TRUE(SawLo);
  EXPECT_TRUE(SawHi);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng R(11);
  for (int I = 0; I < 1000; ++I) {
    double D = R.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
  }
}

TEST(RngTest, BoolProbabilityExtremes) {
  Rng R(5);
  for (int I = 0; I < 50; ++I) {
    EXPECT_FALSE(R.nextBool(0.0));
    EXPECT_TRUE(R.nextBool(1.0));
  }
}

TEST(RngTest, ShuffleKeepsElements) {
  Rng R(13);
  std::vector<int> V = {1, 2, 3, 4, 5, 6, 7};
  auto Orig = V;
  R.shuffle(V);
  std::sort(V.begin(), V.end());
  EXPECT_EQ(V, Orig);
}

TEST(RngTest, ForkIndependent) {
  Rng A(1);
  Rng Child = A.fork();
  EXPECT_NE(A.next(), Child.next());
}

TEST(StringUtilsTest, ToLower) {
  EXPECT_EQ(toLower("AbC dEf"), "abc def");
  EXPECT_EQ(toLower(""), "");
}

TEST(StringUtilsTest, Trim) {
  EXPECT_EQ(trim("  hi \t\n"), "hi");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(StringUtilsTest, Split) {
  auto Parts = split("a,b,,c", ',');
  ASSERT_EQ(Parts.size(), 4u);
  EXPECT_EQ(Parts[0], "a");
  EXPECT_EQ(Parts[2], "");
  EXPECT_EQ(Parts[3], "c");
}

TEST(StringUtilsTest, SplitEmpty) {
  auto Parts = split("", ',');
  ASSERT_EQ(Parts.size(), 1u);
  EXPECT_EQ(Parts[0], "");
}

TEST(StringUtilsTest, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ", "), "");
}

TEST(StringUtilsTest, StartsWith) {
  EXPECT_TRUE(startsWith("javascript:foo()", "javascript:"));
  EXPECT_FALSE(startsWith("java", "javascript"));
  EXPECT_TRUE(startsWithIgnoreCase("JavaScript:foo", "javascript:"));
}

TEST(StringUtilsTest, EqualsIgnoreCase) {
  EXPECT_TRUE(equalsIgnoreCase("DIV", "div"));
  EXPECT_FALSE(equalsIgnoreCase("div", "span"));
  EXPECT_FALSE(equalsIgnoreCase("div", "divx"));
}

TEST(StringUtilsTest, EscapeForReport) {
  EXPECT_EQ(escapeForReport("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(escapeForReport(std::string_view("\x01", 1)), "\\u0001");
}

TEST(StringUtilsTest, ReplaceAll) {
  EXPECT_EQ(replaceAll("a-b-c", "-", "+"), "a+b+c");
  EXPECT_EQ(replaceAll("aaa", "aa", "b"), "ba");
  EXPECT_EQ(replaceAll("abc", "", "x"), "abc");
}

TEST(FormatTest, Basic) {
  EXPECT_EQ(strFormat("x=%d y=%s", 42, "hi"), "x=42 y=hi");
  EXPECT_EQ(strFormat("%.2f", 1.234), "1.23");
  EXPECT_EQ(strFormat("empty"), "empty");
}

TEST(FormatTest, LongOutput) {
  std::string Long(500, 'a');
  EXPECT_EQ(strFormat("%s!", Long.c_str()).size(), 501u);
}

TEST(StringUtilsTest, ParseUint64Accepts) {
  uint64_t V = 0;
  EXPECT_TRUE(parseUint64("0", V));
  EXPECT_EQ(V, 0u);
  EXPECT_TRUE(parseUint64("42", V));
  EXPECT_EQ(V, 42u);
  EXPECT_TRUE(parseUint64("18446744073709551615", V)); // UINT64_MAX.
  EXPECT_EQ(V, ~static_cast<uint64_t>(0));
  EXPECT_TRUE(parseUint64("007", V)); // Leading zeros are still digits.
  EXPECT_EQ(V, 7u);
}

TEST(StringUtilsTest, ParseUint64Rejects) {
  uint64_t V = 123;
  EXPECT_FALSE(parseUint64("", V));
  EXPECT_FALSE(parseUint64("-1", V));
  EXPECT_FALSE(parseUint64("+1", V));
  EXPECT_FALSE(parseUint64(" 1", V));
  EXPECT_FALSE(parseUint64("1 ", V));
  EXPECT_FALSE(parseUint64("12abc", V));
  EXPECT_FALSE(parseUint64("abc", V));
  EXPECT_FALSE(parseUint64("1.5", V));
  EXPECT_FALSE(parseUint64("0x10", V));
  EXPECT_FALSE(parseUint64("18446744073709551616", V)); // UINT64_MAX + 1.
  EXPECT_FALSE(parseUint64("99999999999999999999", V));
  EXPECT_EQ(V, 123u) << "failed parses must not touch the out-param";
}

TEST(InlineVecTest, StaysInlineUpToN) {
  InlineVec<uint32_t, 2> V;
  EXPECT_TRUE(V.empty());
  EXPECT_EQ(V.capacity(), 2u);
  V.push_back(10);
  V.push_back(20);
  EXPECT_EQ(V.size(), 2u);
  EXPECT_EQ(V.heapBytes(), 0u) << "within inline capacity, no heap";
  EXPECT_EQ(V[0], 10u);
  EXPECT_EQ(V.front(), 10u);
  EXPECT_EQ(V.back(), 20u);
}

TEST(InlineVecTest, SpillsToHeapAndPreservesContents) {
  InlineVec<uint32_t, 2> V;
  for (uint32_t I = 0; I < 100; ++I)
    V.push_back(I * 3);
  EXPECT_EQ(V.size(), 100u);
  EXPECT_GT(V.heapBytes(), 0u);
  for (uint32_t I = 0; I < 100; ++I)
    EXPECT_EQ(V[I], I * 3);
  // Range-for works over both storage modes.
  uint32_t Sum = 0;
  for (uint32_t X : V)
    Sum += X;
  EXPECT_EQ(Sum, 3 * (99 * 100 / 2));
}

TEST(InlineVecTest, PushBackAliasingOwnStorageSurvivesGrowth) {
  // Pushing an element of the vector itself must not read freed memory
  // when the push triggers reallocation.
  InlineVec<uint32_t, 2> V;
  V.push_back(7);
  V.push_back(8);             // Now exactly full.
  V.push_back(V[0]);          // Grows; argument aliases old storage.
  ASSERT_EQ(V.size(), 3u);
  EXPECT_EQ(V[2], 7u);
  while (V.size() < V.capacity())
    V.push_back(1);
  V.push_back(V.back());      // Heap-to-heap growth, same hazard.
  EXPECT_EQ(V.back(), 1u);
}

TEST(InlineVecTest, CopyAndMoveSemantics) {
  InlineVec<uint32_t, 2> Small;
  Small.push_back(1);
  InlineVec<uint32_t, 2> Big;
  for (uint32_t I = 0; I < 10; ++I)
    Big.push_back(I);

  InlineVec<uint32_t, 2> CopySmall(Small);
  InlineVec<uint32_t, 2> CopyBig(Big);
  EXPECT_EQ(CopySmall.size(), 1u);
  EXPECT_EQ(CopySmall[0], 1u);
  ASSERT_EQ(CopyBig.size(), 10u);
  EXPECT_EQ(CopyBig[9], 9u);
  EXPECT_EQ(Big.size(), 10u) << "copy must not disturb the source";

  InlineVec<uint32_t, 2> MovedBig(std::move(Big));
  ASSERT_EQ(MovedBig.size(), 10u);
  EXPECT_EQ(MovedBig[5], 5u);
  EXPECT_TRUE(Big.empty()) << "moved-from is empty and reusable";
  Big.push_back(42);
  EXPECT_EQ(Big[0], 42u);

  CopySmall = CopyBig; // Inline -> heap copy assignment.
  ASSERT_EQ(CopySmall.size(), 10u);
  EXPECT_EQ(CopySmall[7], 7u);
  CopyBig = InlineVec<uint32_t, 2>(); // Shrink by move assignment.
  EXPECT_TRUE(CopyBig.empty());
}

TEST(InlineVecTest, ClearKeepsCapacity) {
  InlineVec<uint32_t, 2> V;
  for (uint32_t I = 0; I < 50; ++I)
    V.push_back(I);
  uint32_t Cap = V.capacity();
  V.clear();
  EXPECT_TRUE(V.empty());
  EXPECT_EQ(V.capacity(), Cap) << "clear() must not release storage";
  V.reserve(Cap + 100);
  EXPECT_GE(V.capacity(), Cap + 100);
  EXPECT_TRUE(V.empty());
}

TEST(WatermarksTest, DominatedBasics) {
  using wr::support::watermarksDominated;
  uint32_t A[] = {1, 2, 3, 4, 5};
  uint32_t B[] = {1, 2, 3, 4, 5};
  EXPECT_TRUE(watermarksDominated(A, B, 5)); // Equal arrays dominate.
  B[4] = 6;
  EXPECT_TRUE(watermarksDominated(A, B, 5));
  EXPECT_FALSE(watermarksDominated(B, A, 5)); // Tail entry decides.
  B[4] = 5;
  B[0] = 0;
  EXPECT_FALSE(watermarksDominated(A, B, 5)); // Wide-word low half.
  B[0] = 1;
  B[1] = 0;
  EXPECT_FALSE(watermarksDominated(A, B, 5)); // Wide-word high half.
  EXPECT_TRUE(watermarksDominated(A, A, 0));  // Empty range.
}

TEST(WatermarksTest, DominatedMatchesScalarReference) {
  // Randomized cross-check over every length 0..9 and unaligned offsets
  // (the helpers take raw pointers into slab arenas, so odd starting
  // offsets must behave identically to aligned ones).
  wr::Rng Rng(7);
  std::vector<uint32_t> A(16), B(16);
  for (int Iter = 0; Iter < 500; ++Iter) {
    for (size_t I = 0; I < A.size(); ++I) {
      A[I] = static_cast<uint32_t>(Rng.next()) % 4;
      B[I] = static_cast<uint32_t>(Rng.next()) % 4;
    }
    size_t Off = Rng.next() % 3;
    size_t Len = Rng.next() % 10;
    bool Ref = true;
    for (size_t I = 0; I < Len; ++I)
      Ref = Ref && A[Off + I] <= B[Off + I];
    EXPECT_EQ(wr::support::watermarksDominated(A.data() + Off,
                                               B.data() + Off, Len),
              Ref);
  }
}

TEST(WatermarksTest, JoinMaxMatchesScalarReference) {
  wr::Rng Rng(11);
  std::vector<uint32_t> Dst(16), Src(16), Ref(16);
  for (int Iter = 0; Iter < 500; ++Iter) {
    for (size_t I = 0; I < Dst.size(); ++I) {
      Dst[I] = static_cast<uint32_t>(Rng.next()) % 5;
      Src[I] = static_cast<uint32_t>(Rng.next()) % 5;
    }
    Ref = Dst;
    size_t Off = Rng.next() % 3;
    size_t Len = Rng.next() % 10;
    for (size_t I = 0; I < Len; ++I)
      Ref[Off + I] = std::max(Ref[Off + I], Src[Off + I]);
    wr::support::watermarksJoinMax(Dst.data() + Off, Src.data() + Off, Len);
    EXPECT_EQ(Dst, Ref);
  }
}

TEST(WatermarksTest, AllZero) {
  uint32_t A[] = {0, 0, 0, 0, 0};
  EXPECT_TRUE(wr::support::watermarksAllZero(A, 5));
  EXPECT_TRUE(wr::support::watermarksAllZero(A, 0));
  A[4] = 1; // Scalar tail.
  EXPECT_FALSE(wr::support::watermarksAllZero(A, 5));
  EXPECT_TRUE(wr::support::watermarksAllZero(A, 4));
  A[4] = 0;
  A[1] = 1; // Wide-word high half.
  EXPECT_FALSE(wr::support::watermarksAllZero(A, 5));
}

TEST(WatermarksTest, VectorTierMatchesSwarReference) {
  // Lane-for-lane parity between the public entry points (AVX2, NEON, or
  // SWAR depending on the build) and the always-compiled SWAR reference,
  // over lengths past several vector widths, unaligned offsets, and
  // values up to UINT32_MAX - the epu32 max/compare path is unsigned, so
  // high-bit watermarks must not flip comparisons.
  wr::Rng Rng(23);
  std::vector<uint32_t> A(48), B(48), Dst(48), RefDst(48);
  for (int Iter = 0; Iter < 800; ++Iter) {
    bool Extreme = Iter % 3 == 0; // Exercise the 2^31.. range often.
    for (size_t I = 0; I < A.size(); ++I) {
      A[I] = Extreme ? static_cast<uint32_t>(Rng.next())
                     : static_cast<uint32_t>(Rng.next()) % 6;
      B[I] = Extreme ? static_cast<uint32_t>(Rng.next())
                     : static_cast<uint32_t>(Rng.next()) % 6;
    }
    // Equal runs hit the dominated/join fast paths; zero runs hit allzero.
    if (Iter % 5 == 0)
      std::copy(A.begin(), A.begin() + 20, B.begin());
    if (Iter % 7 == 0)
      std::fill(A.begin(), A.begin() + 24, 0u);
    size_t Off = Rng.next() % 5;
    size_t Len = Rng.next() % 41;
    EXPECT_EQ(wr::support::watermarksDominated(A.data() + Off,
                                               B.data() + Off, Len),
              wr::support::detail::watermarksDominatedSwar(
                  A.data() + Off, B.data() + Off, Len));
    EXPECT_EQ(wr::support::watermarksAllZero(A.data() + Off, Len),
              wr::support::detail::watermarksAllZeroSwar(A.data() + Off,
                                                         Len));
    for (size_t I = 0; I < B.size(); ++I)
      Dst[I] = RefDst[I] = B[I];
    wr::support::watermarksJoinMax(Dst.data() + Off, A.data() + Off, Len);
    wr::support::detail::watermarksJoinMaxSwar(RefDst.data() + Off,
                                               A.data() + Off, Len);
    EXPECT_EQ(Dst, RefDst);
  }
}

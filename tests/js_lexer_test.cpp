//===- tests/js_lexer_test.cpp - MiniJS lexer tests ------------------------===//

#include "js/Lexer.h"

#include <gtest/gtest.h>

using namespace wr::js;

namespace {

std::vector<TokenKind> kindsOf(std::string_view Src) {
  std::vector<TokenKind> Kinds;
  for (const Token &T : Lexer::tokenize(Src))
    Kinds.push_back(T.Kind);
  return Kinds;
}

TEST(LexerTest, Empty) {
  auto Tokens = Lexer::tokenize("");
  ASSERT_EQ(Tokens.size(), 1u);
  EXPECT_EQ(Tokens[0].Kind, TokenKind::Eof);
}

TEST(LexerTest, Numbers) {
  auto Tokens = Lexer::tokenize("0 42 3.25 1e3 2.5e-2 0xff");
  ASSERT_EQ(Tokens.size(), 7u);
  EXPECT_DOUBLE_EQ(Tokens[0].NumValue, 0);
  EXPECT_DOUBLE_EQ(Tokens[1].NumValue, 42);
  EXPECT_DOUBLE_EQ(Tokens[2].NumValue, 3.25);
  EXPECT_DOUBLE_EQ(Tokens[3].NumValue, 1000);
  EXPECT_DOUBLE_EQ(Tokens[4].NumValue, 0.025);
  EXPECT_DOUBLE_EQ(Tokens[5].NumValue, 255);
}

TEST(LexerTest, NumberFollowedByDotCall) {
  // `1.toString` is not valid but `x.e` after number must not eat 'e'.
  auto Tokens = Lexer::tokenize("3e x");
  // '3e' with no exponent digits lexes as 3 then identifier e.
  ASSERT_GE(Tokens.size(), 3u);
  EXPECT_EQ(Tokens[0].Kind, TokenKind::Number);
  EXPECT_DOUBLE_EQ(Tokens[0].NumValue, 3);
  EXPECT_EQ(Tokens[1].Kind, TokenKind::Identifier);
  EXPECT_EQ(Tokens[1].Text, "e");
}

TEST(LexerTest, Strings) {
  auto Tokens = Lexer::tokenize(R"('a' "b\n" 'it\'s' "\x41" "B")");
  ASSERT_EQ(Tokens.size(), 6u);
  EXPECT_EQ(Tokens[0].Text, "a");
  EXPECT_EQ(Tokens[1].Text, "b\n");
  EXPECT_EQ(Tokens[2].Text, "it's");
  EXPECT_EQ(Tokens[3].Text, "A");
  EXPECT_EQ(Tokens[4].Text, "B");
}

TEST(LexerTest, UnterminatedString) {
  auto Tokens = Lexer::tokenize("'abc");
  EXPECT_EQ(Tokens.back().Kind, TokenKind::Error);
}

TEST(LexerTest, Keywords) {
  auto Kinds = kindsOf("var function if else while return new typeof");
  std::vector<TokenKind> Expected = {
      TokenKind::KwVar,    TokenKind::KwFunction, TokenKind::KwIf,
      TokenKind::KwElse,   TokenKind::KwWhile,    TokenKind::KwReturn,
      TokenKind::KwNew,    TokenKind::KwTypeof,   TokenKind::Eof};
  EXPECT_EQ(Kinds, Expected);
}

TEST(LexerTest, IdentifiersWithDollarAndUnderscore) {
  auto Tokens = Lexer::tokenize("$get _x var1");
  EXPECT_EQ(Tokens[0].Text, "$get");
  EXPECT_EQ(Tokens[1].Text, "_x");
  EXPECT_EQ(Tokens[2].Text, "var1");
}

TEST(LexerTest, Operators) {
  auto Kinds = kindsOf("== === != !== <= >= && || ++ -- += -= << >> >>>");
  std::vector<TokenKind> Expected = {
      TokenKind::EqEq,      TokenKind::EqEqEq,     TokenKind::NotEq,
      TokenKind::NotEqEq,   TokenKind::LessEq,     TokenKind::GreaterEq,
      TokenKind::AmpAmp,    TokenKind::PipePipe,   TokenKind::PlusPlus,
      TokenKind::MinusMinus, TokenKind::PlusAssign, TokenKind::MinusAssign,
      TokenKind::Shl,       TokenKind::Shr,        TokenKind::UShr,
      TokenKind::Eof};
  EXPECT_EQ(Kinds, Expected);
}

TEST(LexerTest, Comments) {
  auto Kinds = kindsOf("a // line comment\n b /* block\n comment */ c");
  std::vector<TokenKind> Expected = {TokenKind::Identifier,
                                     TokenKind::Identifier,
                                     TokenKind::Identifier, TokenKind::Eof};
  EXPECT_EQ(Kinds, Expected);
}

TEST(LexerTest, LineNumbers) {
  auto Tokens = Lexer::tokenize("a\nb\n  c");
  EXPECT_EQ(Tokens[0].Line, 1u);
  EXPECT_EQ(Tokens[1].Line, 2u);
  EXPECT_EQ(Tokens[2].Line, 3u);
  EXPECT_EQ(Tokens[2].Column, 3u);
}

TEST(LexerTest, UnexpectedCharacter) {
  auto Tokens = Lexer::tokenize("a # b");
  EXPECT_EQ(Tokens[1].Kind, TokenKind::Error);
}

} // namespace

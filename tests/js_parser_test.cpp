//===- tests/js_parser_test.cpp - MiniJS parser tests ----------------------===//

#include "js/Parser.h"

#include <gtest/gtest.h>

using namespace wr::js;

namespace {

std::string parseDump(std::string_view Src) {
  ParseResult R = Parser::parseProgram(Src);
  if (!R.ok())
    return "ERROR: " + (R.Diags.empty() ? "?" : R.Diags[0].Message);
  return dumpAst(*R.Ast);
}

TEST(ParserTest, EmptyProgram) {
  EXPECT_EQ(parseDump(""), "(program)");
}

TEST(ParserTest, VarDecl) {
  EXPECT_EQ(parseDump("var x = 1, y;"), "(program (var (x 1) (y)))");
}

TEST(ParserTest, Precedence) {
  EXPECT_EQ(parseDump("x = 1 + 2 * 3;"),
            "(program (= x (+ 1 (* 2 3))))");
  EXPECT_EQ(parseDump("x = (1 + 2) * 3;"),
            "(program (= x (* (+ 1 2) 3)))");
  EXPECT_EQ(parseDump("x = 1 < 2 && 3 > 4 || 5 == 6;"),
            "(program (= x (|| (&& (< 1 2) (> 3 4)) (== 5 6))))");
}

TEST(ParserTest, AssignmentRightAssociative) {
  EXPECT_EQ(parseDump("a = b = 1;"), "(program (= a (= b 1)))");
}

TEST(ParserTest, ConditionalExpr) {
  EXPECT_EQ(parseDump("x = a ? 1 : 2;"), "(program (= x (?: a 1 2)))");
}

TEST(ParserTest, MemberAndCallChains) {
  EXPECT_EQ(parseDump("document.getElementById('x').style.display = 'n';"),
            "(program (= (. (. (call (. document getElementById) \"x\") "
            "style) display) \"n\"))");
}

TEST(ParserTest, IndexAccess) {
  EXPECT_EQ(parseDump("a[i + 1] = a[0];"),
            "(program (= ([] a (+ i 1)) ([] a 0)))");
}

TEST(ParserTest, FunctionDeclAndExpr) {
  EXPECT_EQ(parseDump("function f(a, b) { return a + b; }"),
            "(program (defun f (a b) (block (return (+ a b)))))");
  EXPECT_EQ(parseDump("var f = function(x) { return x; };"),
            "(program (var (f (lambda <anon> (x) (block (return x))))))");
  EXPECT_EQ(parseDump("var f = function g() {};"),
            "(program (var (f (lambda g () (block)))))");
}

TEST(ParserTest, IfElseChain) {
  EXPECT_EQ(parseDump("if (a) b(); else if (c) d(); else e();"),
            "(program (if a (call b) (if c (call d) (call e))))");
}

TEST(ParserTest, Loops) {
  EXPECT_EQ(parseDump("while (x) { x--; }"),
            "(program (while x (block (post-- x))))");
  EXPECT_EQ(parseDump("do x++; while (x < 10);"),
            "(program (do-while (post++ x) (< x 10)))");
  EXPECT_EQ(parseDump("for (var i = 0; i < n; i++) f(i);"),
            "(program (for (var (i 0)) (< i n) (post++ i) (call f i)))");
  EXPECT_EQ(parseDump("for (;;) break;"),
            "(program (for () () () (break)))");
  EXPECT_EQ(parseDump("break;"),
            "ERROR: 'break' outside of a loop or switch");
  EXPECT_EQ(parseDump("while (1) for (;;) break;"),
            "(program (while 1 (for () () () (break))))");
}

TEST(ParserTest, ForIn) {
  EXPECT_EQ(parseDump("for (var k in obj) f(k);"),
            "(program (for-in k obj (call f k)))");
  EXPECT_EQ(parseDump("for (k in obj) {}"),
            "(program (for-in k obj (block)))");
}

TEST(ParserTest, ObjectAndArrayLiterals) {
  EXPECT_EQ(parseDump("x = {a: 1, 'b c': 2};"),
            "(program (= x (object (a 1) (b c 2))))");
  EXPECT_EQ(parseDump("x = [1, 2, [3]];"),
            "(program (= x (array 1 2 (array 3))))");
}

TEST(ParserTest, NewExpressions) {
  EXPECT_EQ(parseDump("x = new XMLHttpRequest();"),
            "(program (= x (new XMLHttpRequest)))");
  EXPECT_EQ(parseDump("x = new Image(1, 2).src;"),
            "(program (= x (. (new Image 1 2) src)))");
}

TEST(ParserTest, UnaryOperators) {
  EXPECT_EQ(parseDump("x = typeof f == 'function';"),
            "(program (= x (== (typeof f) \"function\")))");
  EXPECT_EQ(parseDump("x = !a && -b;"),
            "(program (= x (&& (not a) (neg b))))");
  EXPECT_EQ(parseDump("delete obj.p;"), "(program (delete (. obj p)))");
}

TEST(ParserTest, SwitchStatement) {
  EXPECT_EQ(parseDump("switch (x) { case 1: f(); break; default: g(); }"),
            "(program (switch x (case 1 (call f) (break)) "
            "(case default (call g))))");
}

TEST(ParserTest, TryCatchFinally) {
  EXPECT_EQ(parseDump("try { f(); } catch (e) { g(e); } finally { h(); }"),
            "(program (try (block (call f)) (catch e (block (call g e))) "
            "(finally (block (call h)))))");
}

TEST(ParserTest, ThrowStatement) {
  EXPECT_EQ(parseDump("throw new Error('x');"),
            "(program (throw (new Error \"x\")))");
}

TEST(ParserTest, CommaSequence) {
  EXPECT_EQ(parseDump("a = 1, b = 2;"),
            "(program (seq (= a 1) (= b 2)))");
}

TEST(ParserTest, CompoundAssign) {
  EXPECT_EQ(parseDump("x += 2; y *= 3;"),
            "(program (+= x 2) (*= y 3))");
}

TEST(ParserTest, Errors) {
  ParseResult R = Parser::parseProgram("var = 3;");
  EXPECT_FALSE(R.ok());
  ASSERT_FALSE(R.Diags.empty());

  R = Parser::parseProgram("f(;");
  EXPECT_FALSE(R.ok());

  R = Parser::parseProgram("return 1;");
  EXPECT_FALSE(R.ok()); // return outside function
}

TEST(ParserTest, ErrorsDoNotCascadeInfinitely) {
  ParseResult R = Parser::parseProgram("@@@ ### !!!");
  EXPECT_FALSE(R.ok());
  EXPECT_LE(R.Diags.size(), 32u);
}

TEST(ParserTest, FunctionCallThisValue) {
  EXPECT_EQ(parseDump("f.call(this, 1);"),
            "(program (call (. f call) this 1))");
}

TEST(ParserTest, NestedClosures) {
  EXPECT_EQ(
      parseDump("var f = function() { return function() { return x; }; };"),
      "(program (var (f (lambda <anon> () (block (return (lambda <anon> () "
      "(block (return x)))))))))");
}

TEST(ParserTest, TrailingCommaInArray) {
  EXPECT_EQ(parseDump("x = [1, 2, ];"), "(program (= x (array 1 2)))");
}

TEST(ParserTest, BitwiseOps) {
  EXPECT_EQ(parseDump("x = a | b & c ^ d;"),
            "(program (= x (| a (^ (& b c) d))))");
}

} // namespace

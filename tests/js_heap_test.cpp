//===- tests/js_heap_test.cpp - MiniJS GC heap tests -----------------------===//

#include "js/Heap.h"
#include "js/Interpreter.h"
#include "js/Parser.h"
#include "js/StdLib.h"

#include <gtest/gtest.h>

using namespace wr;
using namespace wr::js;

namespace {

/// Roots a fixed set of values for tests.
class FixedRoots final : public RootProvider {
public:
  std::vector<Value> Values;
  std::vector<GcObject *> Objects;

  void traceRoots(GcTracer &T) override {
    for (const Value &V : Values)
      T.trace(V);
    for (GcObject *O : Objects)
      T.trace(O);
  }
};

TEST(HeapTest, CollectReclaimsUnreachable) {
  Heap H;
  FixedRoots Roots;
  H.addRootProvider(&Roots);
  Object *Kept = H.allocObject();
  Roots.Values.push_back(Value(Kept));
  for (int I = 0; I < 100; ++I)
    H.allocObject(); // Garbage.
  EXPECT_EQ(H.numLive(), 101u);
  size_t Freed = H.collect();
  EXPECT_EQ(Freed, 100u);
  EXPECT_EQ(H.numLive(), 1u);
}

TEST(HeapTest, PropertiesKeepObjectsAlive) {
  Heap H;
  FixedRoots Roots;
  H.addRootProvider(&Roots);
  Object *Outer = H.allocObject();
  Object *Inner = H.allocObject();
  Outer->setOwnProperty("child", Value(Inner));
  Roots.Values.push_back(Value(Outer));
  H.collect();
  EXPECT_EQ(H.numLive(), 2u);
  Outer->deleteOwnProperty("child");
  H.collect();
  EXPECT_EQ(H.numLive(), 1u);
}

TEST(HeapTest, ArrayElementsKeepObjectsAlive) {
  Heap H;
  FixedRoots Roots;
  H.addRootProvider(&Roots);
  Object *Arr = H.allocArray();
  Arr->elements().push_back(Value(H.allocObject()));
  Roots.Values.push_back(Value(Arr));
  H.collect();
  EXPECT_EQ(H.numLive(), 2u);
}

TEST(HeapTest, PrototypeKeptAlive) {
  Heap H;
  FixedRoots Roots;
  H.addRootProvider(&Roots);
  Object *Proto = H.allocObject();
  Object *O = H.allocObject();
  O->setProto(Proto);
  Roots.Values.push_back(Value(O));
  H.collect();
  EXPECT_EQ(H.numLive(), 2u);
}

TEST(HeapTest, EnvChainKeptAlive) {
  Heap H;
  FixedRoots Roots;
  H.addRootProvider(&Roots);
  Env *G = H.allocEnv(nullptr);
  Env *Child = H.allocEnv(G);
  Object *Held = H.allocObject();
  Child->define("x", Value(Held));
  Roots.Objects.push_back(Child);
  H.collect();
  EXPECT_EQ(H.numLive(), 3u); // Child + parent + held object.
}

TEST(HeapTest, CyclesAreCollected) {
  Heap H;
  FixedRoots Roots;
  H.addRootProvider(&Roots);
  Object *A = H.allocObject();
  Object *B = H.allocObject();
  A->setOwnProperty("next", Value(B));
  B->setOwnProperty("next", Value(A));
  // No roots: both should go despite the cycle (mark/sweep, not refcount).
  size_t Freed = H.collect();
  EXPECT_EQ(Freed, 2u);
  EXPECT_EQ(H.numLive(), 0u);
}

TEST(HeapTest, GlobalEnvGetsContainerIdZero) {
  Heap H;
  Env *G = H.allocEnv(nullptr);
  EXPECT_EQ(G->containerId(), 0u);
  Object *O = H.allocObject();
  EXPECT_GT(O->containerId(), 0u);
}

TEST(HeapTest, ClosureSurvivesCollection) {
  Heap H;
  FixedRoots Roots;
  H.addRootProvider(&Roots);
  Env *G = H.allocEnv(nullptr);
  Roots.Objects.push_back(G);
  Interpreter I(H, G);
  installStdLib(I, 1);
  ParseResult R = Parser::parseProgram(R"(
    function make() { var n = 41; return function() { return n + 1; }; }
    var f = make();
  )");
  ASSERT_TRUE(R.ok());
  I.runProgram(*R.Ast);
  H.collect();
  // Call the closure after GC: its captured environment must be intact.
  Value *F = G->findOwn("f");
  ASSERT_NE(F, nullptr);
  Completion C = I.callFunction(*F, Value(), {});
  ASSERT_FALSE(C.isThrow());
  EXPECT_DOUBLE_EQ(C.V.asNumber(), 42);
}

TEST(HeapTest, MaybeCollectHonorsThreshold) {
  Heap H;
  FixedRoots Roots;
  H.addRootProvider(&Roots);
  H.setGcThreshold(10);
  for (int I = 0; I < 9; ++I)
    H.allocObject();
  H.maybeCollect();
  EXPECT_EQ(H.numCollections(), 0u);
  H.allocObject();
  H.maybeCollect();
  EXPECT_EQ(H.numCollections(), 1u);
  EXPECT_EQ(H.numLive(), 0u);
}

TEST(HeapTest, InterpreterStressWithGc) {
  Heap H;
  FixedRoots Roots;
  H.addRootProvider(&Roots);
  Env *G = H.allocEnv(nullptr);
  Roots.Objects.push_back(G);
  Interpreter I(H, G);
  installStdLib(I, 1);
  ParseResult R = Parser::parseProgram(R"(
    var keep = [];
    for (var i = 0; i < 200; i++) {
      var tmp = {idx: i, arr: [i, i + 1, i + 2]};
      if (i % 50 == 0) keep.push(tmp);
    }
    var result = keep.length;
  )");
  ASSERT_TRUE(R.ok());
  Completion C = I.runProgram(*R.Ast);
  ASSERT_FALSE(C.isThrow()) << toDisplayString(C.V);
  size_t LiveBefore = H.numLive();
  H.collect();
  EXPECT_LT(H.numLive(), LiveBefore); // Temporaries reclaimed.
  EXPECT_DOUBLE_EQ(G->findOwn("result")->asNumber(), 4);
  // Kept objects still reachable and intact.
  ParseResult R2 = Parser::parseProgram("var result = keep[2].idx;");
  ASSERT_TRUE(R2.ok());
  C = I.runProgram(*R2.Ast);
  ASSERT_FALSE(C.isThrow());
  EXPECT_DOUBLE_EQ(G->findOwn("result")->asNumber(), 100);
}

} // namespace

//===- tests/mem_test.cpp - logical memory location tests ----------------------===//

#include "mem/Location.h"

#include <gtest/gtest.h>

#include <unordered_set>

using namespace wr;

namespace {

TEST(LocationTest, JsVarToString) {
  EXPECT_EQ(toString(Location(JSVarLoc{0, "x"})), "var global.x");
  EXPECT_EQ(toString(Location(JSVarLoc{42, "f"})), "var obj42.f");
  EXPECT_EQ(toString(Location(JSVarLoc{domContainerId(7), "value"})),
            "var node7.value");
}

TEST(LocationTest, HtmlElemToString) {
  EXPECT_EQ(toString(Location(
                HtmlElemLoc{1, ElemKeyKind::ById, InvalidNodeId, "dw"})),
            "elem doc1 #dw");
  EXPECT_EQ(toString(Location(HtmlElemLoc{2, ElemKeyKind::ByNode, 9, ""})),
            "elem doc2 node9");
  EXPECT_EQ(toString(Location(
                HtmlElemLoc{1, ElemKeyKind::ByTag, InvalidNodeId, "img"})),
            "elem doc1 <img>");
  EXPECT_EQ(toString(Location(HtmlElemLoc{1, ElemKeyKind::ByName,
                                          InvalidNodeId, "q"})),
            "elem doc1 name=q");
}

TEST(LocationTest, EventHandlerToString) {
  EXPECT_EQ(toString(Location(EventHandlerLoc{5, 0, "load", 0})),
            "handler (node5, load, h0)");
  EXPECT_EQ(toString(Location(EventHandlerLoc{InvalidNodeId, 33,
                                              "readystatechange", 2})),
            "handler (obj33, readystatechange, h2)");
}

TEST(LocationTest, EqualityAndHashAgree) {
  Location A = JSVarLoc{0, "x"};
  Location B = JSVarLoc{0, "x"};
  Location C = JSVarLoc{0, "y"};
  Location D = JSVarLoc{1, "x"};
  LocationHash H;
  EXPECT_EQ(A, B);
  EXPECT_EQ(H(A), H(B));
  EXPECT_NE(A, C);
  EXPECT_NE(A, D);
}

TEST(LocationTest, CrossKindNeverEqual) {
  Location Var = JSVarLoc{0, "x"};
  Location Elem = HtmlElemLoc{1, ElemKeyKind::ById, InvalidNodeId, "x"};
  Location Handler = EventHandlerLoc{0, 0, "x", 0};
  EXPECT_NE(Var, Elem);
  EXPECT_NE(Var, Handler);
  EXPECT_NE(Elem, Handler);
}

TEST(LocationTest, UnorderedSetUsage) {
  std::unordered_set<Location, LocationHash> Set;
  Set.insert(JSVarLoc{0, "x"});
  Set.insert(JSVarLoc{0, "x"});
  Set.insert(JSVarLoc{0, "y"});
  Set.insert(HtmlElemLoc{1, ElemKeyKind::ById, InvalidNodeId, "x"});
  Set.insert(EventHandlerLoc{1, 0, "load", 0});
  Set.insert(EventHandlerLoc{1, 0, "load", 1}); // Distinct handler.
  EXPECT_EQ(Set.size(), 5u);
}

TEST(LocationTest, HandlerIdentityDistinguishesHandlers) {
  // (el, e, h) with h in the location: disjoint handlers do not
  // interfere (Sec. 4.3).
  Location A = EventHandlerLoc{5, 0, "click", 100};
  Location B = EventHandlerLoc{5, 0, "click", 200};
  EXPECT_NE(A, B);
}

TEST(LocationTest, DomContainerHelpers) {
  ContainerId C = domContainerId(1234);
  EXPECT_TRUE(isDomContainer(C));
  EXPECT_EQ(nodeOfContainer(C), 1234u);
  EXPECT_FALSE(isDomContainer(1234));
  EXPECT_NE(domContainerId(1), domContainerId(2));
}

TEST(LocationTest, ElemKeyKindsDistinct) {
  Location ById = HtmlElemLoc{1, ElemKeyKind::ById, InvalidNodeId, "x"};
  Location ByName = HtmlElemLoc{1, ElemKeyKind::ByName, InvalidNodeId,
                                "x"};
  Location ByTag = HtmlElemLoc{1, ElemKeyKind::ByTag, InvalidNodeId, "x"};
  EXPECT_NE(ById, ByName);
  EXPECT_NE(ById, ByTag);
  LocationHash H;
  EXPECT_FALSE(H(ById) == H(ByName) && H(ById) == H(ByTag));
}

TEST(LocationTest, DocumentsSeparateLocations) {
  Location D1 = HtmlElemLoc{1, ElemKeyKind::ById, InvalidNodeId, "x"};
  Location D2 = HtmlElemLoc{2, ElemKeyKind::ById, InvalidNodeId, "x"};
  EXPECT_NE(D1, D2);
}

TEST(LocationTest, AccessKindAndOriginNames) {
  EXPECT_STREQ(toString(AccessKind::Read), "read");
  EXPECT_STREQ(toString(AccessKind::Write), "write");
  EXPECT_STREQ(toString(AccessOrigin::FunctionDecl), "function-decl");
  EXPECT_STREQ(toString(AccessOrigin::UserInput), "user-input");
  EXPECT_STREQ(toString(AccessOrigin::ElemLookup), "elem-lookup");
  EXPECT_STREQ(toString(AccessOrigin::HandlerInstall), "handler-install");
}

} // namespace

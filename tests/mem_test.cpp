//===- tests/mem_test.cpp - logical memory location tests ----------------------===//

#include "mem/Location.h"
#include "mem/LocationInterner.h"

#include <gtest/gtest.h>

#include <unordered_set>
#include <vector>

using namespace wr;

namespace {

TEST(LocationTest, JsVarToString) {
  EXPECT_EQ(toString(Location(JSVarLoc{0, "x"})), "var global.x");
  EXPECT_EQ(toString(Location(JSVarLoc{42, "f"})), "var obj42.f");
  EXPECT_EQ(toString(Location(JSVarLoc{domContainerId(7), "value"})),
            "var node7.value");
}

TEST(LocationTest, HtmlElemToString) {
  EXPECT_EQ(toString(Location(
                HtmlElemLoc{1, ElemKeyKind::ById, InvalidNodeId, "dw"})),
            "elem doc1 #dw");
  EXPECT_EQ(toString(Location(HtmlElemLoc{2, ElemKeyKind::ByNode, 9, ""})),
            "elem doc2 node9");
  EXPECT_EQ(toString(Location(
                HtmlElemLoc{1, ElemKeyKind::ByTag, InvalidNodeId, "img"})),
            "elem doc1 <img>");
  EXPECT_EQ(toString(Location(HtmlElemLoc{1, ElemKeyKind::ByName,
                                          InvalidNodeId, "q"})),
            "elem doc1 name=q");
}

TEST(LocationTest, EventHandlerToString) {
  EXPECT_EQ(toString(Location(EventHandlerLoc{5, 0, "load", 0})),
            "handler (node5, load, h0)");
  EXPECT_EQ(toString(Location(EventHandlerLoc{InvalidNodeId, 33,
                                              "readystatechange", 2})),
            "handler (obj33, readystatechange, h2)");
}

TEST(LocationTest, EqualityAndHashAgree) {
  Location A = JSVarLoc{0, "x"};
  Location B = JSVarLoc{0, "x"};
  Location C = JSVarLoc{0, "y"};
  Location D = JSVarLoc{1, "x"};
  LocationHash H;
  EXPECT_EQ(A, B);
  EXPECT_EQ(H(A), H(B));
  EXPECT_NE(A, C);
  EXPECT_NE(A, D);
}

TEST(LocationTest, CrossKindNeverEqual) {
  Location Var = JSVarLoc{0, "x"};
  Location Elem = HtmlElemLoc{1, ElemKeyKind::ById, InvalidNodeId, "x"};
  Location Handler = EventHandlerLoc{0, 0, "x", 0};
  EXPECT_NE(Var, Elem);
  EXPECT_NE(Var, Handler);
  EXPECT_NE(Elem, Handler);
}

TEST(LocationTest, UnorderedSetUsage) {
  std::unordered_set<Location, LocationHash> Set;
  Set.insert(JSVarLoc{0, "x"});
  Set.insert(JSVarLoc{0, "x"});
  Set.insert(JSVarLoc{0, "y"});
  Set.insert(HtmlElemLoc{1, ElemKeyKind::ById, InvalidNodeId, "x"});
  Set.insert(EventHandlerLoc{1, 0, "load", 0});
  Set.insert(EventHandlerLoc{1, 0, "load", 1}); // Distinct handler.
  EXPECT_EQ(Set.size(), 5u);
}

TEST(LocationTest, HandlerIdentityDistinguishesHandlers) {
  // (el, e, h) with h in the location: disjoint handlers do not
  // interfere (Sec. 4.3).
  Location A = EventHandlerLoc{5, 0, "click", 100};
  Location B = EventHandlerLoc{5, 0, "click", 200};
  EXPECT_NE(A, B);
}

TEST(LocationTest, DomContainerHelpers) {
  ContainerId C = domContainerId(1234);
  EXPECT_TRUE(isDomContainer(C));
  EXPECT_EQ(nodeOfContainer(C), 1234u);
  EXPECT_FALSE(isDomContainer(1234));
  EXPECT_NE(domContainerId(1), domContainerId(2));
}

TEST(LocationTest, ElemKeyKindsDistinct) {
  Location ById = HtmlElemLoc{1, ElemKeyKind::ById, InvalidNodeId, "x"};
  Location ByName = HtmlElemLoc{1, ElemKeyKind::ByName, InvalidNodeId,
                                "x"};
  Location ByTag = HtmlElemLoc{1, ElemKeyKind::ByTag, InvalidNodeId, "x"};
  EXPECT_NE(ById, ByName);
  EXPECT_NE(ById, ByTag);
  LocationHash H;
  EXPECT_FALSE(H(ById) == H(ByName) && H(ById) == H(ByTag));
}

TEST(LocationTest, DocumentsSeparateLocations) {
  Location D1 = HtmlElemLoc{1, ElemKeyKind::ById, InvalidNodeId, "x"};
  Location D2 = HtmlElemLoc{2, ElemKeyKind::ById, InvalidNodeId, "x"};
  EXPECT_NE(D1, D2);
}

TEST(LocationInternerTest, IdsAreStableAndDense) {
  LocationInterner I;
  LocId X = I.intern(JSVarLoc{0, "x"});
  LocId Y = I.intern(JSVarLoc{0, "y"});
  LocId E = I.intern(HtmlElemLoc{1, ElemKeyKind::ById, InvalidNodeId, "x"});
  EXPECT_EQ(X, 0u);
  EXPECT_EQ(Y, 1u);
  EXPECT_EQ(E, 2u);
  EXPECT_EQ(I.size(), 3u);
  // Re-interning an existing location returns the original id and counts
  // as a hit, never a new entry.
  EXPECT_EQ(I.intern(JSVarLoc{0, "x"}), X);
  EXPECT_EQ(I.intern(JSVarLoc{0, "y"}), Y);
  EXPECT_EQ(I.size(), 3u);
  EXPECT_EQ(I.hits(), 2u);
}

TEST(LocationInternerTest, ResolveRoundTrips) {
  LocationInterner I;
  std::vector<Location> Locs = {
      JSVarLoc{0, "x"},
      JSVarLoc{domContainerId(7), "value"},
      HtmlElemLoc{1, ElemKeyKind::ById, InvalidNodeId, "dw"},
      HtmlElemLoc{2, ElemKeyKind::ByNode, 9, ""},
      EventHandlerLoc{5, 0, "load", 0},
      EventHandlerLoc{InvalidNodeId, 33, "readystatechange", 2},
  };
  std::vector<LocId> Ids;
  for (const Location &L : Locs)
    Ids.push_back(I.intern(L));
  for (size_t K = 0; K < Locs.size(); ++K) {
    ASSERT_TRUE(I.contains(Ids[K]));
    EXPECT_EQ(I.resolve(Ids[K]), Locs[K]);
  }
  EXPECT_FALSE(I.contains(static_cast<LocId>(Locs.size())));
  EXPECT_FALSE(I.contains(InvalidLocId));
}

TEST(LocationInternerTest, TypedFastPathsAgreeWithGenericIntern) {
  LocationInterner A, B;
  EXPECT_EQ(A.internVar(42, "f"), B.intern(JSVarLoc{42, "f"}));
  EXPECT_EQ(A.internElem(1, ElemKeyKind::ByTag, InvalidNodeId, "img"),
            B.intern(HtmlElemLoc{1, ElemKeyKind::ByTag, InvalidNodeId,
                                 "img"}));
  EXPECT_EQ(A.internHandler(5, 0, "click", 9),
            B.intern(EventHandlerLoc{5, 0, "click", 9}));
  // Cross-probing: the typed path finds entries the generic path added.
  EXPECT_EQ(B.internVar(42, "f"), 0u);
  EXPECT_EQ(B.hits(), 1u);
}

TEST(LocationInternerTest, SameSequenceSameIdsAcrossInstances) {
  // Determinism across sessions: ids are a pure function of first-touch
  // order, so two interners fed the same sequence agree exactly.
  auto Feed = [](LocationInterner &I) {
    std::vector<LocId> Ids;
    Ids.push_back(I.internVar(0, "a"));
    Ids.push_back(I.internElem(1, ElemKeyKind::ById, InvalidNodeId, "x"));
    Ids.push_back(I.internVar(0, "a")); // Repeat.
    Ids.push_back(I.internHandler(3, 0, "load", 1));
    Ids.push_back(I.internVar(0, "b"));
    return Ids;
  };
  LocationInterner I1, I2;
  EXPECT_EQ(Feed(I1), Feed(I2));
  EXPECT_EQ(I1.size(), I2.size());
  EXPECT_EQ(I1.hits(), I2.hits());
}

TEST(LocationInternerTest, ClearResetsEverything) {
  LocationInterner I;
  I.internVar(0, "x");
  I.internVar(0, "x");
  I.clear();
  EXPECT_EQ(I.size(), 0u);
  EXPECT_TRUE(I.empty());
  EXPECT_EQ(I.hits(), 0u);
  EXPECT_EQ(I.internVar(0, "z"), 0u); // Ids restart from zero.
}

TEST(LocationTest, AccessKindAndOriginNames) {
  EXPECT_STREQ(toString(AccessKind::Read), "read");
  EXPECT_STREQ(toString(AccessKind::Write), "write");
  EXPECT_STREQ(toString(AccessOrigin::FunctionDecl), "function-decl");
  EXPECT_STREQ(toString(AccessOrigin::UserInput), "user-input");
  EXPECT_STREQ(toString(AccessOrigin::ElemLookup), "elem-lookup");
  EXPECT_STREQ(toString(AccessOrigin::HandlerInstall), "handler-install");
}

} // namespace

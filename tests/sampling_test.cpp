//===- tests/sampling_test.cpp - Sampling-layer behavior ----------------------===//
//
// The src/sample contract, from the unit up:
//
//  * AccessSampler strategy behavior: per-location decisions are a pure
//    function of the location, per-pair always admits first-writer
//    pairs, adaptive always admits a location's first K accesses and
//    heat-marked locations, and the counters partition exactly.
//  * Detector integration: rate 1.0 constructs no sampler and changes no
//    bytes (the fig golden file stays byte-identical); below 1.0 the
//    detector processes exactly the admitted accesses.
//  * Determinism: sampled corpus reports are byte-identical at --jobs
//    1/2/4/8.
//
//===----------------------------------------------------------------------===//

#include "analysis/Scenarios.h"
#include "detect/RaceDetector.h"
#include "hb/HbGraph.h"
#include "mem/LocationInterner.h"
#include "sample/Sampling.h"
#include "sites/CorpusReport.h"
#include "sites/CorpusRunner.h"
#include "webracer/RunReport.h"
#include "webracer/Session.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

using namespace wr;
using sample::AccessSampler;
using sample::SamplingOptions;
using sample::SamplingStrategy;

namespace {

Access makeAccess(OpId Op, LocId Loc, AccessKind Kind) {
  Access A;
  A.Op = Op;
  A.Loc = Loc;
  A.Kind = Kind;
  return A;
}

TEST(AccessSamplerTest, PerLocationDecisionIsAFunctionOfTheLocation) {
  SamplingOptions Opts;
  Opts.Strategy = SamplingStrategy::PerLocation;
  Opts.Rate = 0.5;
  Opts.Seed = 42;
  AccessSampler S(Opts);
  // Whatever the verdict for a location is, it never changes across
  // repeated accesses, operations, or access kinds.
  for (LocId Loc = 0; Loc < 64; ++Loc) {
    bool First = S.shouldSample(makeAccess(1, Loc, AccessKind::Read),
                                InvalidOpId, {}, {});
    for (OpId Op = 2; Op < 6; ++Op)
      EXPECT_EQ(S.shouldSample(makeAccess(Op, Loc, AccessKind::Write),
                               InvalidOpId, {}, {}),
                First);
  }
  // Rate 0.5 over 64 locations keeps a nontrivial subset of both sides.
  const sample::SamplerCounters &C = S.counters();
  EXPECT_GT(C.LocationPass, 0u);
  EXPECT_GT(C.DroppedReads + C.DroppedWrites, 0u);
}

TEST(AccessSamplerTest, RateZeroPerLocationDropsEverything) {
  SamplingOptions Opts;
  Opts.Strategy = SamplingStrategy::PerLocation;
  Opts.Rate = 0.0;
  AccessSampler S(Opts);
  for (LocId Loc = 0; Loc < 32; ++Loc)
    EXPECT_FALSE(S.shouldSample(makeAccess(1, Loc, AccessKind::Read),
                                InvalidOpId, {}, {}));
  EXPECT_EQ(S.counters().SeenReads, 32u);
  EXPECT_EQ(S.counters().DroppedReads, 32u);
  EXPECT_EQ(S.counters().SampledReads, 0u);
}

TEST(AccessSamplerTest, PerPairAlwaysAdmitsFirstWriterPairs) {
  SamplingOptions Opts;
  Opts.Strategy = SamplingStrategy::PerPair;
  Opts.Rate = 0.0; // Only the forced first-pair admissions survive.
  AccessSampler S(Opts);
  // No prior writer recorded: the pair does not exist yet, so the access
  // must reach the detector (otherwise no pair could ever form).
  EXPECT_TRUE(S.shouldSample(makeAccess(3, 7, AccessKind::Write),
                             InvalidOpId, {}, {}));
  EXPECT_EQ(S.counters().PairPass, 1u);
  // With a prior writer and rate 0, the pair hash can never pass.
  EXPECT_FALSE(S.shouldSample(makeAccess(4, 7, AccessKind::Read),
                              /*PriorWriteOp=*/3, {}, {}));
  EXPECT_EQ(S.counters().SampledWrites, 1u);
  EXPECT_EQ(S.counters().DroppedReads, 1u);
}

TEST(AccessSamplerTest, AdaptiveColdStartAndHeatFeedback) {
  SamplingOptions Opts;
  Opts.Strategy = SamplingStrategy::Adaptive;
  Opts.Rate = 0.0; // Only cold/hot admissions survive.
  Opts.ColdAccesses = 3;
  Opts.HotBudget = 2;
  AccessSampler S(Opts);
  LocId Loc = 11;
  // First ColdAccesses accesses always admitted.
  for (int I = 0; I < 3; ++I)
    EXPECT_TRUE(S.shouldSample(makeAccess(1, Loc, AccessKind::Read),
                               InvalidOpId, {}, {}));
  EXPECT_EQ(S.counters().ColdPass, 3u);
  // Past the cold window at rate 0: dropped.
  EXPECT_FALSE(S.shouldSample(makeAccess(2, Loc, AccessKind::Read),
                              InvalidOpId, {}, {}));
  // A race on the location re-arms it for HotBudget accesses.
  S.noteRace(Loc);
  EXPECT_TRUE(S.shouldSample(makeAccess(3, Loc, AccessKind::Write),
                             InvalidOpId, {}, {}));
  EXPECT_TRUE(S.shouldSample(makeAccess(4, Loc, AccessKind::Read),
                             InvalidOpId, {}, {}));
  EXPECT_FALSE(S.shouldSample(makeAccess(5, Loc, AccessKind::Read),
                              InvalidOpId, {}, {}));
  EXPECT_EQ(S.counters().HotPass, 2u);
  EXPECT_EQ(S.counters().HotLocations, 1u);
  // Inflation heat marks a different location the same way, counted once
  // even when marked repeatedly.
  S.noteInflation(Loc + 1);
  S.noteInflation(Loc + 1);
  EXPECT_EQ(S.counters().HotLocations, 2u);
}

TEST(AccessSamplerTest, CountersPartitionExactly) {
  SamplingOptions Opts;
  Opts.Strategy = SamplingStrategy::Adaptive;
  Opts.Rate = 0.3;
  Opts.Seed = 9;
  AccessSampler S(Opts);
  for (int I = 0; I < 500; ++I)
    S.shouldSample(makeAccess(1 + static_cast<OpId>(I % 7),
                              static_cast<LocId>(I % 23),
                              I % 3 ? AccessKind::Read : AccessKind::Write),
                   InvalidOpId, {}, {});
  const sample::SamplerCounters &C = S.counters();
  EXPECT_EQ(C.SeenReads + C.SeenWrites, 500u);
  EXPECT_EQ(C.SeenReads, C.SampledReads + C.DroppedReads);
  EXPECT_EQ(C.SeenWrites, C.SampledWrites + C.DroppedWrites);
  // Every admission was attributed to exactly one pass counter.
  EXPECT_EQ(C.SampledReads + C.SampledWrites,
            C.LocationPass + C.PairPass + C.ColdPass + C.HotPass +
                C.RngPass);
}

TEST(RaceDetectorSamplingTest, RateOneConstructsNoSampler) {
  HbGraph Hb;
  LocationInterner Interner;
  detect::DetectorOptions Opts;
  Opts.Sampling.Rate = 1.0;
  detect::RaceDetector D(Hb, Interner, Opts);
  EXPECT_EQ(D.sampler(), nullptr);
  EXPECT_FALSE(D.samplingStats().enabled());
}

TEST(RaceDetectorSamplingTest, DetectorProcessesExactlyAdmittedAccesses) {
  HbGraph Hb;
  LocationInterner Interner;
  OpId A = Hb.addOperation(Operation());
  OpId B = Hb.addOperation(Operation());
  Hb.addEdge(A, B, HbRule::RProgram);
  detect::DetectorOptions Opts;
  Opts.Sampling.Strategy = SamplingStrategy::PerLocation;
  Opts.Sampling.Rate = 0.4;
  Opts.Sampling.Seed = 5;
  detect::RaceDetector D(Hb, Interner, Opts);
  ASSERT_NE(D.sampler(), nullptr);
  for (int I = 0; I < 400; ++I) {
    char Name[16];
    std::snprintf(Name, sizeof(Name), "x%d", I % 31);
    Access Acc = makeAccess(I % 2 ? A : B, Interner.internVar(0, Name),
                            I % 3 ? AccessKind::Read : AccessKind::Write);
    D.onMemoryAccess(Acc);
  }
  obs::SamplingStats S = D.samplingStats();
  ASSERT_TRUE(S.enabled());
  EXPECT_EQ(S.SeenReads + S.SeenWrites, 400u);
  EXPECT_EQ(S.SeenReads + S.SeenWrites,
            S.SampledReads + S.SampledWrites + S.DroppedReads +
                S.DroppedWrites);
  // AccessesSeen counts only what the sampler admitted - attrition is
  // visible in the report, never silently folded into detector counters.
  EXPECT_EQ(D.accessesSeen(), S.SampledReads + S.SampledWrites);
  EXPECT_GT(S.DroppedReads + S.DroppedWrites, 0u);
}

/// One array document holding the five figure run reports, mirroring
/// tests/report_schema_test.cpp but with the given sampling options.
std::string figureReportsDocument(const SamplingOptions &Sampling) {
  obs::Json All = obs::Json::array();
  for (const analysis::PageSpec &Page : analysis::figurePages()) {
    webracer::SessionOptions Opts;
    Opts.Browser.Seed = 7;
    Opts.Detector.Sampling = Sampling;
    webracer::Session S(Opts);
    S.network().addResource(Page.EntryUrl, Page.Html, 10);
    for (const analysis::PageResource &R : Page.Resources)
      S.network().addResource(R.Url, R.Content, R.LatencyUs);
    webracer::SessionResult Result = S.run(Page.EntryUrl);
    All.push(webracer::buildRunReport(Page.Name, Result, S.browser().hb()));
  }
  return obs::writeJson(All);
}

TEST(RaceDetectorSamplingTest, RateOneReportsMatchGoldenFile) {
  // Rate 1.0 must be indistinguishable from the pre-sampling detector:
  // the same golden bytes report_schema_test locks down, no wr_sampling
  // section, regardless of the configured strategy.
  SamplingOptions Sampling;
  Sampling.Strategy = SamplingStrategy::PerPair;
  Sampling.Rate = 1.0;
  Sampling.Seed = 99;
  std::string Actual = figureReportsDocument(Sampling);
  std::ifstream In(WR_GOLDEN_FILE, std::ios::binary);
  ASSERT_TRUE(In) << "missing golden file " << WR_GOLDEN_FILE;
  std::ostringstream Expected;
  Expected << In.rdbuf();
  EXPECT_EQ(Actual, Expected.str());
}

TEST(RaceDetectorSamplingTest, SampledFigureReportsAreDeterministic) {
  SamplingOptions Sampling;
  Sampling.Strategy = SamplingStrategy::Adaptive;
  Sampling.Rate = 0.2;
  Sampling.Seed = 13;
  EXPECT_EQ(figureReportsDocument(Sampling),
            figureReportsDocument(Sampling));
}

TEST(CorpusSamplingTest, SampledReportsAreJobCountInvariant) {
  std::vector<sites::GeneratedSite> Corpus =
      sites::buildFortune100Corpus(2012);
  Corpus.resize(12);
  webracer::SessionOptions Opts;
  Opts.Detector.Sampling.Strategy = SamplingStrategy::Adaptive;
  Opts.Detector.Sampling.Rate = 0.1;
  Opts.Detector.Sampling.Seed = 2012;
  std::string Reference;
  for (unsigned Jobs : {1u, 2u, 4u, 8u}) {
    sites::CorpusStats Stats = sites::runCorpus(Corpus, Opts, 2012, Jobs);
    std::string Bytes =
        obs::writeJson(sites::buildCorpusReport("fortune100", Stats));
    if (Reference.empty())
      Reference = Bytes;
    EXPECT_EQ(Bytes, Reference) << "report drifted at --jobs " << Jobs;
  }
}

} // namespace

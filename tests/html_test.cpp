//===- tests/html_test.cpp - HTML tokenizer/parser tests --------------------===//

#include "html/HtmlParser.h"
#include "html/Tokenizer.h"

#include <gtest/gtest.h>

using namespace wr;
using namespace wr::html;

namespace {

TEST(TokenizerTest, SimpleTags) {
  auto Tokens = Tokenizer::tokenizeAll("<div id=\"a\">hi</div>");
  ASSERT_EQ(Tokens.size(), 4u);
  EXPECT_EQ(Tokens[0].TokKind, HtmlToken::Kind::StartTag);
  EXPECT_EQ(Tokens[0].Name, "div");
  EXPECT_EQ(Tokens[0].attr("id"), "a");
  EXPECT_EQ(Tokens[1].TokKind, HtmlToken::Kind::Text);
  EXPECT_EQ(Tokens[1].Text, "hi");
  EXPECT_EQ(Tokens[2].TokKind, HtmlToken::Kind::EndTag);
  EXPECT_EQ(Tokens[3].TokKind, HtmlToken::Kind::Eof);
}

TEST(TokenizerTest, AttributeStyles) {
  auto Tokens = Tokenizer::tokenizeAll(
      "<input type=text CHECKED value='a b' data-x=\"q\" />");
  ASSERT_GE(Tokens.size(), 1u);
  const HtmlToken &T = Tokens[0];
  EXPECT_EQ(T.attr("type"), "text");
  EXPECT_TRUE(T.hasAttr("checked"));
  EXPECT_EQ(T.attr("checked"), "");
  EXPECT_EQ(T.attr("value"), "a b");
  EXPECT_EQ(T.attr("data-x"), "q");
  EXPECT_TRUE(T.SelfClosing);
}

TEST(TokenizerTest, ScriptRawText) {
  auto Tokens = Tokenizer::tokenizeAll(
      "<script>if (a < b) { x = '</div>'; }</script><p>");
  ASSERT_GE(Tokens.size(), 4u);
  EXPECT_EQ(Tokens[0].Name, "script");
  EXPECT_EQ(Tokens[1].TokKind, HtmlToken::Kind::Text);
  // Raw text swallows everything up to </script>, including fake tags...
  EXPECT_NE(Tokens[1].Text.find("a < b"), std::string::npos);
  EXPECT_NE(Tokens[1].Text.find("</div>"), std::string::npos);
  EXPECT_EQ(Tokens[2].TokKind, HtmlToken::Kind::EndTag);
  EXPECT_EQ(Tokens[2].Name, "script");
  EXPECT_EQ(Tokens[3].Name, "p");
}

TEST(TokenizerTest, CommentsAndDoctype) {
  auto Tokens = Tokenizer::tokenizeAll(
      "<!DOCTYPE html><!-- a <div> inside --><b></b>");
  EXPECT_EQ(Tokens[0].TokKind, HtmlToken::Kind::Doctype);
  EXPECT_EQ(Tokens[1].TokKind, HtmlToken::Kind::Comment);
  EXPECT_EQ(Tokens[2].Name, "b");
}

TEST(TokenizerTest, LiteralLessThanInText) {
  auto Tokens = Tokenizer::tokenizeAll("a < b <em>c</em>");
  EXPECT_EQ(Tokens[0].TokKind, HtmlToken::Kind::Text);
  EXPECT_EQ(Tokens[0].Text, "a < b ");
  EXPECT_EQ(Tokens[1].Name, "em");
}

TEST(ScriptClassifyTest, Kinds) {
  uint32_t NextId = 1;
  Document Doc(1, NextId);
  Element *S = Doc.createElement("script");
  EXPECT_EQ(classifyScript(S), ScriptKind::Inline);
  S->setAttribute("src", "a.js");
  EXPECT_EQ(classifyScript(S), ScriptKind::SyncExternal);
  S->setAttribute("async", "true");
  EXPECT_EQ(classifyScript(S), ScriptKind::AsyncExternal);
  S->removeAttribute("async");
  S->setAttribute("defer", "defer");
  EXPECT_EQ(classifyScript(S), ScriptKind::DeferredExternal);
  S->setAttribute("async", "false"); // Explicit false: not async.
  EXPECT_EQ(classifyScript(S), ScriptKind::DeferredExternal);
  // Async/defer require a src.
  Element *S2 = Doc.createElement("script");
  S2->setAttribute("async", "true");
  EXPECT_EQ(classifyScript(S2), ScriptKind::Inline);
}

class ParserTest : public ::testing::Test {
protected:
  ParserTest() : Doc(1, NextNodeId) {}

  std::vector<ParseStep> parseAll(std::string Src) {
    HtmlParser P(Doc, std::move(Src));
    std::vector<ParseStep> Steps;
    for (;;) {
      ParseStep S = P.pump();
      Steps.push_back(S);
      if (S.StepKind == ParseStep::Kind::Finished)
        break;
    }
    return Steps;
  }

  uint32_t NextNodeId = 1;
  Document Doc;
};

TEST_F(ParserTest, ElementsOpenInSyntacticOrder) {
  auto Steps = parseAll("<div id=a><span id=b></span></div><p id=c></p>");
  std::vector<std::string> Opened;
  for (const ParseStep &S : Steps)
    if (S.StepKind == ParseStep::Kind::ElementOpened)
      Opened.push_back(S.Elem->idAttr());
  // Paper Sec. 3.1: a precedes b precedes c (opening-tag order).
  EXPECT_EQ(Opened, (std::vector<std::string>{"a", "b", "c"}));
}

TEST_F(ParserTest, TreeStructure) {
  parseAll("<div id=outer><em id=inner></em></div>");
  Element *Outer = Doc.getElementById("outer");
  Element *Inner = Doc.getElementById("inner");
  ASSERT_NE(Outer, nullptr);
  ASSERT_NE(Inner, nullptr);
  EXPECT_EQ(Inner->parent(), Outer);
  EXPECT_EQ(Outer->parent(), Doc.body());
}

TEST_F(ParserTest, ElementsInsertedAtOpeningTag) {
  HtmlParser P(Doc, "<div id=x><p></p></div>");
  ParseStep S = P.pump();
  ASSERT_EQ(S.StepKind, ParseStep::Kind::ElementOpened);
  // Visible in the document before its subtree finishes parsing.
  EXPECT_TRUE(S.Elem->inDocument());
  EXPECT_EQ(Doc.getElementById("x"), S.Elem);
}

TEST_F(ParserTest, InlineScriptContent) {
  auto Steps = parseAll("<script>x = 1 < 2;</script>");
  ASSERT_GE(Steps.size(), 3u);
  EXPECT_EQ(Steps[0].StepKind, ParseStep::Kind::ElementOpened);
  EXPECT_EQ(Steps[0].Elem->tagName(), "script");
  EXPECT_EQ(Steps[1].StepKind, ParseStep::Kind::ScriptComplete);
  EXPECT_EQ(Steps[1].Text, "x = 1 < 2;");
}

TEST_F(ParserTest, ExternalScript) {
  auto Steps = parseAll("<script src=\"a.js\"></script>");
  EXPECT_EQ(Steps[1].StepKind, ParseStep::Kind::ScriptComplete);
  EXPECT_EQ(Steps[1].Text, "");
  EXPECT_EQ(Steps[1].Elem->getAttribute("src"), "a.js");
}

TEST_F(ParserTest, VoidElements) {
  auto Steps = parseAll("<img src=a.png><input type=text><br><div></div>");
  size_t Opens = 0;
  for (const ParseStep &S : Steps)
    if (S.StepKind == ParseStep::Kind::ElementOpened)
      ++Opens;
  EXPECT_EQ(Opens, 4u);
  // img has no children despite no closing tag.
  Element *Img = Doc.getElementsByTagName("img")[0];
  EXPECT_TRUE(Img->children().empty());
  Element *Div = Doc.getElementsByTagName("div")[0];
  EXPECT_EQ(Div->parent(), Doc.body());
}

TEST_F(ParserTest, HeadAndBodySections) {
  parseAll("<html><head><meta charset=utf8><title>t</title></head>"
           "<body><p id=p1></p></body></html>");
  Element *Meta = Doc.getElementsByTagName("meta")[0];
  EXPECT_EQ(Meta->parent(), Doc.head());
  Element *P1 = Doc.getElementById("p1");
  ASSERT_NE(P1, nullptr);
  EXPECT_EQ(P1->parent(), Doc.body());
}

TEST_F(ParserTest, MismatchedTagsRecover) {
  auto Steps = parseAll("<div><p>text</div><em></em>");
  (void)Steps;
  Element *Em = Doc.getElementsByTagName("em")[0];
  EXPECT_EQ(Em->parent(), Doc.body());
}

TEST_F(ParserTest, UnterminatedScriptCompletesAtEof) {
  auto Steps = parseAll("<script>x = 1;");
  bool SawComplete = false;
  for (const ParseStep &S : Steps)
    if (S.StepKind == ParseStep::Kind::ScriptComplete) {
      SawComplete = true;
      EXPECT_EQ(S.Text, "x = 1;");
    }
  EXPECT_TRUE(SawComplete);
}

TEST_F(ParserTest, StaticFlag) {
  parseAll("<div id=s></div>");
  EXPECT_TRUE(Doc.getElementById("s")->isStatic());
  auto Dynamic = HtmlParser::parseFragment(Doc, Doc.body(), "<p id=d></p>");
  ASSERT_EQ(Dynamic.size(), 1u);
  EXPECT_FALSE(Dynamic[0]->isStatic());
  EXPECT_TRUE(Dynamic[0]->inDocument());
}

TEST_F(ParserTest, WhitespaceOnlyTextSkipped) {
  auto Steps = parseAll("<div>   \n  </div>");
  for (const ParseStep &S : Steps)
    EXPECT_NE(S.StepKind, ParseStep::Kind::TextAdded);
}

TEST_F(ParserTest, IframeAttrs) {
  parseAll("<iframe id=i src=\"nested.html\" onload=\"go()\"></iframe>");
  Element *Frame = Doc.getElementById("i");
  ASSERT_NE(Frame, nullptr);
  EXPECT_EQ(Frame->getAttribute("src"), "nested.html");
  EXPECT_EQ(Frame->getAttribute("onload"), "go()");
}

} // namespace

//===- tests/prediction_test.cpp - Predictive partial-order engines -----------===//
//
// Part of the WebRacer reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
//
// Covers the pluggable partial-order stack end to end:
//
//  * ShbEngine / WcpEngine unit tests over hand-fed event streams - the
//    write-read join that orders a later-created operation before an
//    earlier one, WCP's dispatch-atomicity edge dropping, and the
//    creation-edge substitution that keeps every interval callback
//    anchored to its registration.
//  * Engine-selection plumbing: enginesToPredict and the deprecated
//    UseVectorClocks forwarders in ReplayOptions/SessionOptions.
//  * Replay equivalence: a recorded session trace (round-tripped through
//    the legacy WRT1 encoding) replays to byte-identical observed races
//    under every engine - prediction never perturbs observation.
//  * Session-level gates over the seeded corpus patterns: SHB dominates
//    the first-race-only observed run on PostFirstRaceBenign, and WCP's
//    predictions are a strict superset of SHB's on IntervalSkipBenign.
//
//===----------------------------------------------------------------------===//

#include "detect/Prediction.h"
#include "detect/TraceReplay.h"
#include "hb/PredictiveEngine.h"
#include "sites/Corpus.h"
#include "webracer/RunReport.h"
#include "webracer/Session.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <tuple>
#include <vector>

using namespace wr;
using namespace wr::detect;

namespace {

//===----------------------------------------------------------------------===//
// Engine unit tests: hand-fed event streams.
//===----------------------------------------------------------------------===//

Operation op(OperationKind Kind) {
  Operation O;
  O.Kind = Kind;
  return O;
}

void addOps(PartialOrderEngine &E, std::initializer_list<OperationKind> Kinds) {
  OpId Id = 1;
  for (OperationKind K : Kinds)
    E.onOperationCreated(Id++, op(K));
}

Access access(OpId Op, LocId Loc, AccessKind Kind) {
  Access A;
  A.Kind = Kind;
  A.Origin = AccessOrigin::Plain;
  A.Op = Op;
  A.Loc = Loc;
  return A;
}

TEST(ShbEngineTest, KeptEdgesOrderLikeHappensBefore) {
  ShbEngine E;
  addOps(E, {OperationKind::ExecuteScript, OperationKind::TimeoutCallback,
             OperationKind::TimeoutCallback});
  E.onHbEdge(1, 2, HbRule::R16_SetTimeout);
  E.onHbEdge(1, 3, HbRule::R16_SetTimeout);
  EXPECT_EQ(E.ordering(1, 2), Ordering::Before);
  EXPECT_EQ(E.ordering(2, 1), Ordering::After);
  EXPECT_EQ(E.ordering(1, 3), Ordering::Before);
  // Sibling timeouts have no rule ordering them (rule 16 is creator ->
  // callback only); they are concurrent until a write-read edge appears.
  EXPECT_EQ(E.ordering(2, 3), Ordering::Concurrent);
  EXPECT_TRUE(E.concurrent(2, 3));
  EXPECT_TRUE(E.happensBefore(1, 3));
  EXPECT_EQ(E.droppedEdges(), 0u);
  EXPECT_FALSE(E.cacheableVerdicts());
}

TEST(ShbEngineTest, WriteReadJoinOrdersLaterIdBeforeEarlier) {
  // Operation 3 (created later) runs first and writes L; operation 2
  // then reads L. The write-read edge orders 3 before 2 even though
  // 3 > 2 - the case HbGraph's id-ordered index can never produce.
  ShbEngine E;
  addOps(E, {OperationKind::ExecuteScript, OperationKind::TimeoutCallback,
             OperationKind::TimeoutCallback});
  E.onHbEdge(1, 2, HbRule::R16_SetTimeout);
  E.onHbEdge(1, 3, HbRule::R16_SetTimeout);
  EXPECT_EQ(E.ordering(2, 3), Ordering::Concurrent);
  const LocId L = 7;
  E.onMemoryAccess(access(3, L, AccessKind::Write));
  E.onMemoryAccess(access(2, L, AccessKind::Read));
  EXPECT_EQ(E.ordering(3, 2), Ordering::Before);
  EXPECT_EQ(E.ordering(2, 3), Ordering::After);
}

TEST(ShbEngineTest, QueriesFinalizeLazilyBeforeFirstAccess) {
  // The driver checks a candidate pair before delivering the second
  // access (check-then-update); ordering() must not require a prior
  // onMemoryAccess to have finalized the clocks.
  ShbEngine E;
  addOps(E, {OperationKind::ExecuteScript, OperationKind::TimeoutCallback});
  E.onHbEdge(1, 2, HbRule::R16_SetTimeout);
  EXPECT_EQ(E.ordering(1, 2), Ordering::Before);
}

TEST(WcpEngineTest, DropsNonConflictingChainEdgesAndSubstitutesCreation) {
  // Creator 1 registers an interval; callbacks 2, 3, 4 touch pairwise
  // disjoint locations. Both chain edges (2->3, 3->4) drop, but the
  // substituted creation edges keep every callback after its
  // registration.
  WcpEngine E;
  addOps(E, {OperationKind::ExecuteScript, OperationKind::IntervalCallback,
             OperationKind::IntervalCallback, OperationKind::IntervalCallback});
  E.primeAccess(2, 10, AccessKind::Write);
  E.primeAccess(3, 11, AccessKind::Write);
  E.primeAccess(4, 12, AccessKind::Write);
  E.onHbEdge(1, 2, HbRule::R17_SetInterval);
  E.onHbEdge(2, 3, HbRule::R17_SetInterval);
  E.onHbEdge(3, 4, HbRule::R17_SetInterval);
  EXPECT_EQ(E.droppedEdges(), 2u);
  EXPECT_EQ(E.ordering(2, 3), Ordering::Concurrent);
  EXPECT_EQ(E.ordering(2, 4), Ordering::Concurrent);
  EXPECT_EQ(E.ordering(3, 4), Ordering::Concurrent);
  EXPECT_EQ(E.ordering(1, 2), Ordering::Before);
  EXPECT_EQ(E.ordering(1, 3), Ordering::Before);
  EXPECT_EQ(E.ordering(1, 4), Ordering::Before);

  // SHB keeps the whole chain on the same stream.
  ShbEngine S;
  addOps(S, {OperationKind::ExecuteScript, OperationKind::IntervalCallback,
             OperationKind::IntervalCallback, OperationKind::IntervalCallback});
  S.onHbEdge(1, 2, HbRule::R17_SetInterval);
  S.onHbEdge(2, 3, HbRule::R17_SetInterval);
  S.onHbEdge(3, 4, HbRule::R17_SetInterval);
  EXPECT_EQ(S.droppedEdges(), 0u);
  EXPECT_EQ(S.ordering(2, 4), Ordering::Before);
}

TEST(WcpEngineTest, KeepsConflictingChainEdges) {
  // Callbacks 2 and 3 both write L: reordering them changes the final
  // value, so the chain edge is load-bearing and stays.
  WcpEngine E;
  addOps(E, {OperationKind::ExecuteScript, OperationKind::IntervalCallback,
             OperationKind::IntervalCallback, OperationKind::IntervalCallback});
  E.primeAccess(2, 10, AccessKind::Write);
  E.primeAccess(3, 10, AccessKind::Read);
  E.primeAccess(4, 12, AccessKind::Write);
  E.onHbEdge(1, 2, HbRule::R17_SetInterval);
  E.onHbEdge(2, 3, HbRule::R17_SetInterval);
  E.onHbEdge(3, 4, HbRule::R17_SetInterval);
  EXPECT_EQ(E.droppedEdges(), 1u);
  EXPECT_EQ(E.ordering(2, 3), Ordering::Before);
  EXPECT_EQ(E.ordering(3, 4), Ordering::Concurrent);
  EXPECT_EQ(E.ordering(1, 4), Ordering::Before);
}

TEST(WcpEngineTest, DropsNonConflictingDispatchOrderEdges) {
  WcpEngine E;
  addOps(E, {OperationKind::EventHandler, OperationKind::EventHandler,
             OperationKind::EventHandler});
  E.primeAccess(1, 20, AccessKind::Write);
  E.primeAccess(2, 21, AccessKind::Write);
  E.primeAccess(3, 21, AccessKind::Read);
  // 1->2 disjoint: drops. 2->3 share a written location: kept.
  E.onHbEdge(1, 2, HbRule::R9_DispatchOrder);
  E.onHbEdge(2, 3, HbRule::R9_DispatchOrder);
  EXPECT_EQ(E.droppedEdges(), 1u);
  EXPECT_EQ(E.ordering(1, 2), Ordering::Concurrent);
  EXPECT_EQ(E.ordering(2, 3), Ordering::Before);
}

TEST(WcpEngineTest, OnlyDispatchRulesWeaken) {
  // A non-dispatch rule between disjoint operations survives: WCP only
  // relaxes the dispatch-atomicity rules (9 and 17's chain edges).
  WcpEngine E;
  addOps(E, {OperationKind::ExecuteScript, OperationKind::TimeoutCallback});
  E.primeAccess(1, 20, AccessKind::Write);
  E.primeAccess(2, 21, AccessKind::Write);
  E.onHbEdge(1, 2, HbRule::R16_SetTimeout);
  EXPECT_EQ(E.droppedEdges(), 0u);
  EXPECT_EQ(E.ordering(1, 2), Ordering::Before);
}

//===----------------------------------------------------------------------===//
// Engine-selection plumbing.
//===----------------------------------------------------------------------===//

TEST(EngineSelectionTest, EnginesToPredict) {
  EXPECT_EQ(enginesToPredict(EngineKind::Hb),
            (std::vector<EngineKind>{EngineKind::Shb, EngineKind::Wcp}));
  EXPECT_EQ(enginesToPredict(EngineKind::HbDfs),
            (std::vector<EngineKind>{EngineKind::Shb, EngineKind::Wcp}));
  EXPECT_EQ(enginesToPredict(EngineKind::Shb),
            (std::vector<EngineKind>{EngineKind::Shb}));
  EXPECT_EQ(enginesToPredict(EngineKind::Wcp),
            (std::vector<EngineKind>{EngineKind::Wcp}));
}

TEST(EngineSelectionTest, EngineDrivesPredictionAndStrategy) {
  // Detector.Engine is the single source of truth (the UseVectorClocks
  // forwarders are gone): predictive engines imply prediction, HB
  // engines predict only when asked.
  ReplayOptions R;
  EXPECT_EQ(R.Detector.Engine, EngineKind::Hb);
  EXPECT_FALSE(R.predictEffective());
  R.Detector.Engine = EngineKind::HbDfs;
  EXPECT_FALSE(R.predictEffective());
  R.Detector.Engine = EngineKind::Shb;
  EXPECT_TRUE(R.predictEffective());
  R.Detector.Engine = EngineKind::Hb;
  R.Predict = true;
  EXPECT_TRUE(R.predictEffective());

  webracer::SessionOptions S;
  EXPECT_EQ(S.Detector.Engine, EngineKind::Hb);
  EXPECT_FALSE(S.predictEffective());
  S.Detector.Engine = EngineKind::Wcp;
  EXPECT_TRUE(S.predictEffective());
  S.Detector.Engine = EngineKind::Hb;
  S.Predict = true;
  EXPECT_TRUE(S.predictEffective());
}

//===----------------------------------------------------------------------===//
// Session-level gates over the seeded corpus patterns.
//===----------------------------------------------------------------------===//

webracer::SessionResult runPattern(sites::PatternKind Kind,
                                   webracer::SessionOptions Opts) {
  sites::SiteSpec Spec;
  Spec.Name = "prediction";
  Spec.Patterns.push_back({Kind, 1});
  sites::GeneratedSite Site = sites::buildSite(Spec);
  webracer::Session S(Opts);
  S.network().addResource(Site.IndexUrl, Site.Html, 10);
  for (const sites::SiteResource &R : Site.Resources)
    S.network().addResourceWithJitter(R.Url, R.Body, R.MinLatencyUs,
                                      R.MaxLatencyUs);
  return S.run(Site.IndexUrl);
}

const PredictionResult *findEngine(const webracer::SessionResult &R,
                                   EngineKind Kind) {
  for (const PredictionResult &P : R.Predictions)
    if (P.Engine == Kind)
      return &P;
  return nullptr;
}

/// A location-and-pair key for comparing findings across engines.
using RaceKey = std::tuple<std::string, OpId, OpId>;

RaceKey keyOf(const Race &R) {
  return {toString(R.Loc), std::min(R.First.Op, R.Second.Op),
          std::max(R.First.Op, R.Second.Op)};
}

std::set<RaceKey> keysOf(const PredictionResult &P, bool PredictedOnly) {
  std::set<RaceKey> Keys;
  for (const PredictedRace &PR : P.Races)
    if (!PredictedOnly || PR.Verdict == PredictionVerdict::Predicted)
      Keys.insert(keyOf(PR.R));
  return Keys;
}

TEST(PredictionSessionTest, ShbDominatesFirstRaceOnlyOnPostFirstRace) {
  webracer::SessionOptions Opts;
  Opts.Predict = true;
  webracer::SessionResult R =
      runPattern(sites::PatternKind::PostFirstRaceBenign, Opts);
  // The observed run's single-slot detector reports one race per
  // location: the hidden write is only caught against the most recent
  // reader.
  ASSERT_EQ(R.RawRaces.size(), 1u);
  ASSERT_EQ(R.Predictions.size(), 2u);

  const PredictionResult *Shb = findEngine(R, EngineKind::Shb);
  ASSERT_NE(Shb, nullptr);
  // Dominance: every observed race is re-found...
  EXPECT_EQ(Shb->observedMatched(), R.RawRaces.size());
  // ...plus the earlier reader's race against the same write, which the
  // single LastRead slot had already evicted.
  EXPECT_GE(Shb->predictedCount(), 1u);
  EXPECT_EQ(Shb->DroppedEdges, 0u);

  // WCP's order is weaker, so its findings contain SHB's.
  const PredictionResult *Wcp = findEngine(R, EngineKind::Wcp);
  ASSERT_NE(Wcp, nullptr);
  std::set<RaceKey> ShbKeys = keysOf(*Shb, false);
  std::set<RaceKey> WcpKeys = keysOf(*Wcp, false);
  EXPECT_TRUE(std::includes(WcpKeys.begin(), WcpKeys.end(), ShbKeys.begin(),
                            ShbKeys.end()));
}

TEST(PredictionSessionTest, WcpStrictSupersetOfShbOnIntervalSkip) {
  webracer::SessionOptions Opts;
  Opts.Predict = true;
  webracer::SessionResult R =
      runPattern(sites::PatternKind::IntervalSkipBenign, Opts);
  ASSERT_EQ(R.Predictions.size(), 2u);

  const PredictionResult *Shb = findEngine(R, EngineKind::Shb);
  const PredictionResult *Wcp = findEngine(R, EngineKind::Wcp);
  ASSERT_NE(Shb, nullptr);
  ASSERT_NE(Wcp, nullptr);

  // Both dominate the observed run.
  EXPECT_EQ(Shb->observedMatched(), R.RawRaces.size());
  EXPECT_EQ(Wcp->observedMatched(), R.RawRaces.size());

  // The interval's skipped middle tick only races with the first tick
  // when the chain edge between them is relaxed - a WCP-only finding.
  std::set<RaceKey> ShbKeys = keysOf(*Shb, false);
  std::set<RaceKey> WcpKeys = keysOf(*Wcp, false);
  EXPECT_TRUE(std::includes(WcpKeys.begin(), WcpKeys.end(), ShbKeys.begin(),
                            ShbKeys.end()));
  EXPECT_GT(Wcp->predictedCount(), Shb->predictedCount());
  EXPECT_GT(Wcp->DroppedEdges, 0u);
}

TEST(PredictionSessionTest, SelectingPredictiveEngineImpliesPrediction) {
  webracer::SessionOptions Opts;
  Opts.Detector.Engine = EngineKind::Shb;
  webracer::SessionResult R =
      runPattern(sites::PatternKind::PostFirstRaceBenign, Opts);
  // No --predict, but the engine choice implies the pass - and only for
  // the selected engine.
  ASSERT_EQ(R.Predictions.size(), 1u);
  EXPECT_EQ(R.Predictions[0].Engine, EngineKind::Shb);
  // Mirrored into the stats record that the report schema renders.
  ASSERT_EQ(R.Stats.Prediction.size(), 1u);
}

//===----------------------------------------------------------------------===//
// Replay equivalence: observed races are engine-invariant (satellite of
// the WRT1 compatibility guarantee).
//===----------------------------------------------------------------------===//

std::string racesJson(const std::vector<Race> &Races, const HbGraph &Hb) {
  obs::Json Arr = obs::Json::array();
  for (const Race &R : Races)
    Arr.push(webracer::raceToJson(R, Hb));
  return obs::writeJson(Arr);
}

TEST(PredictionReplayTest, LegacyTraceObservedRacesAgreeAcrossEngines) {
  // Record a session over both prediction seeds, round-trip the trace
  // through the legacy WRT1 encoding, then replay under every engine:
  // the observed race report must be byte-identical - engines only add
  // predictions, they never change what was observed.
  sites::SiteSpec Spec;
  Spec.Name = "prediction";
  Spec.Patterns.push_back({sites::PatternKind::PostFirstRaceBenign, 1});
  Spec.Patterns.push_back({sites::PatternKind::IntervalSkipBenign, 1});
  sites::GeneratedSite Site = sites::buildSite(Spec);

  webracer::SessionOptions Opts;
  Opts.RecordTrace = true;
  webracer::Session S(Opts);
  S.network().addResource(Site.IndexUrl, Site.Html, 10);
  webracer::SessionResult Online = S.run(Site.IndexUrl);
  ASSERT_NE(S.trace(), nullptr);
  ASSERT_FALSE(Online.RawRaces.empty());

  std::string Bytes = S.trace()->serializeLegacyWrt1();
  TraceLog Log;
  std::string Error;
  ASSERT_TRUE(TraceLog::deserialize(Bytes, Log, &Error)) << Error;

  std::string RawGolden, FilteredGolden;
  for (EngineKind Kind : {EngineKind::Hb, EngineKind::HbDfs, EngineKind::Shb,
                          EngineKind::Wcp}) {
    ReplayOptions RO;
    RO.Detector.Engine = Kind;
    ReplayResult R = replayTrace(Log, RO);
    std::string Raw = racesJson(R.RawRaces, R.Hb);
    std::string Filtered = racesJson(R.FilteredRaces, R.Hb);
    if (Kind == EngineKind::Hb) {
      RawGolden = Raw;
      FilteredGolden = Filtered;
      // The HB replay reproduces the online run.
      EXPECT_EQ(R.RawRaces.size(), Online.RawRaces.size());
      EXPECT_EQ(R.FilteredRaces.size(), Online.FilteredRaces.size());
      EXPECT_TRUE(R.Predictions.empty());
    } else {
      EXPECT_EQ(Raw, RawGolden) << "engine " << toString(Kind);
      EXPECT_EQ(Filtered, FilteredGolden) << "engine " << toString(Kind);
    }
    if (Kind == EngineKind::Shb || Kind == EngineKind::Wcp) {
      ASSERT_EQ(R.Predictions.size(), 1u) << "engine " << toString(Kind);
      EXPECT_EQ(R.Predictions[0].Engine, Kind);
      // Offline prediction dominates the observed replay too.
      EXPECT_EQ(R.Predictions[0].observedMatched(), R.RawRaces.size());
    }
  }
}

} // namespace

//===- tests/obs_test.cpp - Observability layer unit tests ------------------===//

#include "obs/Json.h"
#include "obs/Metrics.h"
#include "obs/PhaseTimer.h"
#include "obs/Reporter.h"
#include "obs/RunStats.h"

#include <gtest/gtest.h>

using namespace wr;
using namespace wr::obs;

namespace {

//===----------------------------------------------------------------------===//
// Json
//===----------------------------------------------------------------------===//

TEST(JsonTest, Scalars) {
  EXPECT_EQ(writeJson(Json(), false), "null");
  EXPECT_EQ(writeJson(Json(true), false), "true");
  EXPECT_EQ(writeJson(Json(false), false), "false");
  EXPECT_EQ(writeJson(Json(42), false), "42");
  EXPECT_EQ(writeJson(Json(static_cast<int64_t>(-7)), false), "-7");
  EXPECT_EQ(writeJson(Json(~static_cast<uint64_t>(0)), false),
            "18446744073709551615");
  EXPECT_EQ(writeJson(Json("hi"), false), "\"hi\"");
  EXPECT_EQ(writeJson(Json(1.5), false), "1.5");
}

TEST(JsonTest, ObjectsKeepInsertionOrder) {
  Json O = Json::object();
  O.set("zebra", 1).set("apple", 2).set("mango", 3);
  EXPECT_EQ(writeJson(O, false), "{\"zebra\":1,\"apple\":2,\"mango\":3}");
}

TEST(JsonTest, SetReplacesInPlace) {
  Json O = Json::object();
  O.set("a", 1).set("b", 2);
  O.set("a", 9); // Replacement must not move "a" to the back.
  EXPECT_EQ(writeJson(O, false), "{\"a\":9,\"b\":2}");
}

TEST(JsonTest, ArraysAndNesting) {
  Json A = Json::array();
  A.push(1).push("two");
  Json Inner = Json::object();
  Inner.set("k", Json::array());
  A.push(std::move(Inner));
  EXPECT_EQ(writeJson(A, false), "[1,\"two\",{\"k\":[]}]");
}

TEST(JsonTest, PrettyOutputIsStable) {
  Json O = Json::object();
  O.set("n", 1);
  O.set("arr", Json::array());
  std::string First = writeJson(O);
  EXPECT_EQ(First, writeJson(O)) << "same tree, same bytes";
  EXPECT_EQ(First.back(), '\n');
}

TEST(JsonTest, Escaping) {
  EXPECT_EQ(jsonEscape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(jsonEscape("\n\t"), "\\n\\t");
  EXPECT_EQ(jsonEscape(std::string(1, '\x02')), "\\u0002");
  EXPECT_EQ(writeJson(Json("say \"hi\"\n"), false), "\"say \\\"hi\\\"\\n\"");
}

TEST(JsonTest, Find) {
  Json O = Json::object();
  O.set("present", 5);
  ASSERT_NE(O.find("present"), nullptr);
  EXPECT_EQ(O.find("present")->asUint(), 5u);
  EXPECT_EQ(O.find("absent"), nullptr);
  EXPECT_EQ(Json(1).find("x"), nullptr) << "non-objects have no members";
}

//===----------------------------------------------------------------------===//
// Metrics
//===----------------------------------------------------------------------===//

TEST(MetricsTest, CounterAndGauge) {
  MetricsRegistry Reg;
  Counter &C = Reg.counter("ops");
  C.inc();
  C.inc(9);
  EXPECT_EQ(C.value(), 10u);
  EXPECT_EQ(&Reg.counter("ops"), &C) << "same name, same cell";
  Reg.gauge("ratio").set(0.5);
  EXPECT_EQ(Reg.gauge("ratio").value(), 0.5);
  EXPECT_EQ(Reg.size(), 2u);
}

TEST(MetricsTest, HistogramBucketsAndSummary) {
  Histogram H;
  H.observe(0);
  H.observe(1);
  H.observe(2);
  H.observe(1000);
  EXPECT_EQ(H.count(), 4u);
  EXPECT_EQ(H.sum(), 1003u);
  EXPECT_EQ(H.min(), 0u);
  EXPECT_EQ(H.max(), 1000u);
  EXPECT_DOUBLE_EQ(H.mean(), 1003.0 / 4.0);
  EXPECT_EQ(H.buckets()[0], 1u) << "bucket 0 counts zeros";
}

TEST(MetricsTest, TextDumpIsNameSorted) {
  MetricsRegistry Reg;
  Reg.counter("b");
  Reg.counter("a");
  std::string Text = Reg.toText();
  EXPECT_LT(Text.find("a 0"), Text.find("b 0"));
}

//===----------------------------------------------------------------------===//
// PhaseStats / PhaseTimer
//===----------------------------------------------------------------------===//

TEST(PhaseStatsTest, AccumulateAndMerge) {
  PhaseStats A;
  A.addWall(Phase::Parse, 100);
  A.addVirtual(Phase::Parse, 7);
  PhaseStats B;
  B.addWall(Phase::Parse, 50, 2);
  B.addVirtual(Phase::Detect, 3);
  A.merge(B);
  EXPECT_EQ(A[Phase::Parse].WallNanos, 150u);
  EXPECT_EQ(A[Phase::Parse].Entries, 3u);
  EXPECT_EQ(A[Phase::Parse].VirtualUs, 7u);
  EXPECT_EQ(A[Phase::Detect].VirtualUs, 3u);
}

TEST(PhaseStatsTest, JsonExcludesWallClock) {
  PhaseStats S;
  S.addWall(Phase::Script, 123456);
  std::string Deterministic = writeJson(S.toJson(), false);
  EXPECT_EQ(Deterministic.find("wall"), std::string::npos);
  std::string Wall = writeJson(S.wallJson(), false);
  EXPECT_NE(Wall.find("script"), std::string::npos);
}

TEST(PhaseTimerTest, NullTargetIsNoOp) {
  PhaseTimer T(nullptr, Phase::Detect); // Must not crash or dereference.
}

TEST(PhaseTimerTest, RecordsElapsedOnScopeExit) {
  PhaseStats S;
  { PhaseTimer T(&S, Phase::Filter); }
  EXPECT_EQ(S[Phase::Filter].Entries, 1u);
}

TEST(PhaseTest, NamesAreStable) {
  EXPECT_STREQ(toString(Phase::Parse), "parse");
  EXPECT_STREQ(toString(Phase::Explore), "explore");
}

//===----------------------------------------------------------------------===//
// RunStats
//===----------------------------------------------------------------------===//

RunStats sampleStats(uint64_t Scale) {
  RunStats S;
  S.Operations = 10 * Scale;
  S.HbEdges = 20 * Scale;
  S.HbEdgesByRule = {{"rule A", 2 * Scale}, {"rule B", 3 * Scale}};
  S.ChcQueries = 5 * Scale;
  S.AccessesSeen = 7 * Scale;
  S.TrackedLocations = 4 * Scale;
  S.InternedLocations = 6 * Scale;
  S.InternHits = 8 * Scale;
  S.EpochHits = 9 * Scale;
  S.ReadsSeen = 12 * Scale;
  S.EpochReads = 13 * Scale;
  S.ReadInflations = 14 * Scale;
  S.ReadDeflations = 15 * Scale;
  S.ReadVectorLocations = 16 * Scale;
  S.DetectorBytes = 17 * Scale;
  S.Raw.Variable = Scale;
  S.Filtered.Html = Scale;
  S.Attrition.Input = Scale;
  S.Attrition.Kept = Scale;
  S.Crashes = Scale;
  S.Phases.addVirtual(Phase::Script, 11 * Scale);
  return S;
}

TEST(RunStatsTest, MergeSumsEveryField) {
  RunStats A = sampleStats(1);
  A.merge(sampleStats(2));
  EXPECT_EQ(A.Operations, 30u);
  EXPECT_EQ(A.HbEdges, 60u);
  EXPECT_EQ(A.ChcQueries, 15u);
  EXPECT_EQ(A.AccessesSeen, 21u);
  EXPECT_EQ(A.TrackedLocations, 12u);
  EXPECT_EQ(A.InternedLocations, 18u);
  EXPECT_EQ(A.InternHits, 24u);
  EXPECT_EQ(A.EpochHits, 27u);
  EXPECT_EQ(A.ReadsSeen, 36u);
  EXPECT_EQ(A.EpochReads, 39u);
  EXPECT_EQ(A.ReadInflations, 42u);
  EXPECT_EQ(A.ReadDeflations, 45u);
  EXPECT_EQ(A.ReadVectorLocations, 48u);
  EXPECT_EQ(A.DetectorBytes, 51u);
  EXPECT_EQ(A.Raw.Variable, 3u);
  EXPECT_EQ(A.Filtered.Html, 3u);
  EXPECT_EQ(A.Attrition.Input, 3u);
  EXPECT_EQ(A.Crashes, 3u);
  EXPECT_EQ(A.Phases[Phase::Script].VirtualUs, 33u);
  ASSERT_EQ(A.HbEdgesByRule.size(), 2u);
  EXPECT_EQ(A.HbEdgesByRule[0].Name, "rule A");
  EXPECT_EQ(A.HbEdgesByRule[0].Count, 6u);
  EXPECT_EQ(A.HbEdgesByRule[1].Count, 9u);
}

TEST(RunStatsTest, MergeByRuleNameHandlesDisjointSets) {
  RunStats A;
  A.HbEdgesByRule = {{"rule A", 1}};
  RunStats B;
  B.HbEdgesByRule = {{"rule B", 2}};
  A.merge(B);
  ASSERT_EQ(A.HbEdgesByRule.size(), 2u);
  EXPECT_EQ(A.HbEdgesByRule[1].Name, "rule B");
  EXPECT_EQ(A.HbEdgesByRule[1].Count, 2u);
}

TEST(RunStatsTest, MergeOrderInsensitiveTotals) {
  RunStats AB = sampleStats(1);
  AB.merge(sampleStats(4));
  RunStats BA = sampleStats(4);
  BA.merge(sampleStats(1));
  EXPECT_EQ(writeJson(AB.toJson()), writeJson(BA.toJson()));
}

TEST(RunStatsTest, JsonIsDeterministicAndWallFree) {
  RunStats S = sampleStats(3);
  S.Phases.addWall(Phase::Detect, 987654); // Wall noise must not leak.
  std::string Doc = writeJson(S.toJson(), false);
  EXPECT_EQ(Doc, writeJson(S.toJson(), false));
  EXPECT_EQ(Doc.find("wall"), std::string::npos);
  EXPECT_NE(Doc.find("\"operations\":30"), std::string::npos);
  EXPECT_NE(Doc.find("\"rule A\":6"), std::string::npos);
}

TEST(RunStatsTest, ExportToRegistry) {
  RunStats S = sampleStats(2);
  MetricsRegistry Reg;
  S.exportTo(Reg, "wr");
  EXPECT_EQ(Reg.counter("wr.operations").value(), 20u);
  EXPECT_EQ(Reg.counter("wr.races_raw.variable").value(), 2u);
  EXPECT_EQ(Reg.counter("wr.interned_locations").value(), 12u);
  EXPECT_EQ(Reg.counter("wr.intern_hits").value(), 16u);
  EXPECT_EQ(Reg.counter("wr.epoch_hits").value(), 18u);
}

//===----------------------------------------------------------------------===//
// Reporter
//===----------------------------------------------------------------------===//

TEST(ReporterTest, EnvelopeLeadsWithSchema) {
  Json Doc = makeReportEnvelope("run", "fig1");
  std::string Out;
  JsonReporter R(Out);
  R.emit(Doc);
  EXPECT_EQ(Out.find("{\n  \"schema\": 1,\n  \"tool\": \"webracer\""), 0u);
  EXPECT_NE(Out.find("\"kind\": \"run\""), std::string::npos);
  EXPECT_NE(Out.find("\"name\": \"fig1\""), std::string::npos);
}

TEST(ReporterTest, TextBackendSkipsMachineKeys) {
  Json Doc = makeReportEnvelope("run", "fig1");
  Doc.set("stats", Json::object());
  std::string Out;
  TextReporter R(Out);
  R.emit(Doc);
  EXPECT_EQ(Out.find("schema"), std::string::npos);
  EXPECT_EQ(Out.find("tool"), std::string::npos);
  EXPECT_NE(Out.find("kind: run"), std::string::npos);
  EXPECT_NE(Out.find("name: fig1"), std::string::npos);
}

TEST(ReporterTest, BothBackendsConsumeOneDocument) {
  Json Doc = makeReportEnvelope("corpus", "c");
  Json Arr = Json::array();
  Json Row = Json::object();
  Row.set("name", "s1");
  Row.set("n", 2);
  Arr.push(std::move(Row));
  Doc.set("sites", std::move(Arr));
  std::string JsonOut, TextOut;
  JsonReporter(JsonOut).emit(Doc);
  TextReporter(TextOut).emit(Doc);
  EXPECT_NE(JsonOut.find("\"sites\""), std::string::npos);
  EXPECT_NE(TextOut.find("sites:"), std::string::npos);
  EXPECT_NE(TextOut.find("name: s1"), std::string::npos);
}

} // namespace

//===- tests/sites_test.cpp - corpus generator & pattern calibration ----------===//
//
// Each race pattern must produce exactly the filtered races its manifest
// promises - this is the calibration that makes the Table 1/2 benches
// meaningful.
//
//===----------------------------------------------------------------------===//

#include "sites/Corpus.h"
#include "sites/CorpusRunner.h"

#include <gtest/gtest.h>

using namespace wr;
using namespace wr::sites;
using namespace wr::detect;

namespace {

SiteRunStats runOnePattern(PatternKind Kind, int Count,
                           uint64_t Seed = 1234) {
  SiteSpec Spec;
  Spec.Name = "TestSite";
  Spec.Patterns.push_back({Kind, Count});
  GeneratedSite Site = buildSite(Spec);
  webracer::SessionOptions Opts;
  return runSite(Site, Opts, Seed);
}

void expectMatches(const SiteRunStats &S) {
  EXPECT_EQ(S.Filtered.Html, static_cast<size_t>(S.Expected.Html))
      << S.Name << " html";
  EXPECT_EQ(S.Filtered.Function, static_cast<size_t>(S.Expected.Function))
      << S.Name << " function";
  EXPECT_EQ(S.Filtered.Variable, static_cast<size_t>(S.Expected.Variable))
      << S.Name << " variable";
  EXPECT_EQ(S.Filtered.EventDispatch,
            static_cast<size_t>(S.Expected.EventDispatch))
      << S.Name << " event-dispatch";
}

TEST(PatternTest, HtmlLookupHarmful) {
  SiteRunStats S = runOnePattern(PatternKind::HtmlLookupHarmful, 3);
  expectMatches(S);
  EXPECT_EQ(S.Filtered.Html, 3u);
  EXPECT_EQ(S.Raw.Html, 3u);
}

TEST(PatternTest, HtmlPollingBenign) {
  SiteRunStats S = runOnePattern(PatternKind::HtmlPollingBenign, 5);
  expectMatches(S);
  EXPECT_EQ(S.Filtered.Html, 5u);
  EXPECT_EQ(S.Stats.Crashes, 0u); // Benign: the guard prevents crashes.
}

TEST(PatternTest, HtmlPollingBenignSingleton) {
  SiteRunStats S = runOnePattern(PatternKind::HtmlPollingBenign, 1);
  expectMatches(S);
  EXPECT_EQ(S.Filtered.Html, 1u);
}

TEST(PatternTest, FunctionCallHarmful) {
  SiteRunStats S = runOnePattern(PatternKind::FunctionCallHarmful, 2);
  expectMatches(S);
  EXPECT_EQ(S.Filtered.Function, 2u);
}

TEST(PatternTest, FunctionCallGuarded) {
  SiteRunStats S = runOnePattern(PatternKind::FunctionCallGuarded, 2);
  expectMatches(S);
  EXPECT_EQ(S.Filtered.Function, 2u);
  EXPECT_EQ(S.Stats.Crashes, 0u);
}

TEST(PatternTest, FormValueHarmful) {
  SiteRunStats S = runOnePattern(PatternKind::FormValueHarmful, 1);
  expectMatches(S);
  EXPECT_EQ(S.Filtered.Variable, 1u);
}

TEST(PatternTest, FormValueGuardedFilteredOut) {
  SiteRunStats S = runOnePattern(PatternKind::FormValueGuarded, 1);
  expectMatches(S);
  EXPECT_EQ(S.Filtered.Variable, 0u);
  EXPECT_GE(S.Raw.Variable, 1u); // Raw race exists; the filter removes it.
}

TEST(PatternTest, FormValueReadBenign) {
  SiteRunStats S = runOnePattern(PatternKind::FormValueReadBenign, 1);
  expectMatches(S);
  EXPECT_EQ(S.Filtered.Variable, 1u);
}

TEST(PatternTest, GomezMonitorHarmful) {
  SiteRunStats S = runOnePattern(PatternKind::GomezMonitorHarmful, 4);
  expectMatches(S);
  EXPECT_EQ(S.Filtered.EventDispatch, 4u);
}

TEST(PatternTest, DelayedSingleBenign) {
  SiteRunStats S = runOnePattern(PatternKind::DelayedSingleBenign, 2);
  expectMatches(S);
  EXPECT_EQ(S.Filtered.EventDispatch, 2u);
}

TEST(PatternTest, VariableNoiseFilteredOut) {
  SiteRunStats S = runOnePattern(PatternKind::VariableNoiseBenign, 7);
  expectMatches(S);
  EXPECT_EQ(S.Raw.Variable, 7u);
  EXPECT_EQ(S.Filtered.Variable, 0u);
}

TEST(PatternTest, HoverMenuNoiseFilteredOut) {
  SiteRunStats S = runOnePattern(PatternKind::HoverMenuNoiseBenign, 6);
  expectMatches(S);
  EXPECT_EQ(S.Raw.EventDispatch, 6u);
  EXPECT_EQ(S.Filtered.EventDispatch, 0u);
}

TEST(PatternTest, DeadGuardBenignNeverRacesDynamically) {
  SiteRunStats S = runOnePattern(PatternKind::DeadGuardBenign, 1);
  expectMatches(S);
  // The feature flag is never set, so neither timer body runs: no
  // dynamic races at all, raw or filtered.
  EXPECT_EQ(S.Raw.total(), 0u);
  EXPECT_EQ(S.Filtered.total(), 0u);
  EXPECT_EQ(S.Stats.Crashes, 0u);
  // Statically the shared global IS a predicted variable race - but one
  // guarded on both sides, which the cross-check refutes: the
  // guard-analysis precision win bench/static_precision gates on.
  EXPECT_EQ(S.Static.Predicted, 1u);
  EXPECT_EQ(S.Static.Confirmed, 0u);
  EXPECT_EQ(S.Static.RefutedByGuards, 1u);
  EXPECT_EQ(S.Static
                .ByClass[static_cast<size_t>(
                    analysis::GuardClass::GuardedBothSides)]
                .Refuted,
            1u);
}

TEST(PatternTest, PatternsComposeWithoutInterference) {
  SiteSpec Spec;
  Spec.Name = "Composite";
  Spec.Patterns = {
      {PatternKind::HtmlLookupHarmful, 2},
      {PatternKind::FunctionCallHarmful, 1},
      {PatternKind::FormValueHarmful, 1},
      {PatternKind::GomezMonitorHarmful, 3},
      {PatternKind::VariableNoiseBenign, 5},
      {PatternKind::HoverMenuNoiseBenign, 4},
  };
  GeneratedSite Site = buildSite(Spec);
  webracer::SessionOptions Opts;
  SiteRunStats S = runSite(Site, Opts, 99);
  expectMatches(S);
}

TEST(CorpusTest, Table2RowTotalsMatchPaper) {
  int Html = 0, HtmlH = 0, Func = 0, FuncH = 0, Var = 0, VarH = 0,
      Disp = 0, DispH = 0;
  for (const Table2Row &R : table2Rows()) {
    Html += R.Html;
    HtmlH += R.HtmlHarmful;
    Func += R.Function;
    FuncH += R.FunctionHarmful;
    Var += R.Variable;
    VarH += R.VariableHarmful;
    Disp += R.Dispatch;
    DispH += R.DispatchHarmful;
  }
  // The paper's Table 2 totals row: 219 (32), 37 (7), 8 (5), 91 (83).
  EXPECT_EQ(Html, 219);
  EXPECT_EQ(HtmlH, 32);
  EXPECT_EQ(Func, 37);
  EXPECT_EQ(FuncH, 7);
  EXPECT_EQ(Var, 8);
  EXPECT_EQ(VarH, 5);
  EXPECT_EQ(Disp, 91);
  EXPECT_EQ(DispH, 83);
}

TEST(CorpusTest, CorpusHas100Sites) {
  auto Corpus = buildFortune100Corpus(7);
  EXPECT_EQ(Corpus.size(), 100u);
  // Names are unique.
  std::set<std::string> Names;
  for (const GeneratedSite &S : Corpus)
    Names.insert(S.Name);
  EXPECT_EQ(Names.size(), 100u);
}

TEST(CorpusTest, CorpusDeterministicPerSeed) {
  auto A = buildFortune100Corpus(7);
  auto B = buildFortune100Corpus(7);
  ASSERT_EQ(A.size(), B.size());
  for (size_t I = 0; I < A.size(); ++I)
    EXPECT_EQ(A[I].Html, B[I].Html);
  auto C = buildFortune100Corpus(8);
  bool AnyDiffers = false;
  for (size_t I = 0; I < A.size(); ++I)
    if (A[I].Html != C[I].Html)
      AnyDiffers = true;
  EXPECT_TRUE(AnyDiffers);
}

class CorpusSeedTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CorpusSeedTest, EveryTable2SiteReproducesExactly) {
  // The full Table 2 reproduction as a test, for several corpus seeds:
  // every named site's filtered counts must equal the paper's row
  // regardless of the background-noise draw, and filler sites must be
  // clean.
  auto Corpus = buildFortune100Corpus(GetParam());
  webracer::SessionOptions Opts;
  std::map<std::string, const Table2Row *> Rows;
  for (const Table2Row &R : table2Rows())
    Rows[R.Name] = &R;
  Rng SeedGen(GetParam());
  for (const GeneratedSite &Site : Corpus) {
    SiteRunStats S = runSite(Site, Opts, SeedGen.next());
    auto It = Rows.find(Site.Name);
    if (It == Rows.end()) {
      EXPECT_EQ(S.Filtered.total(), 0u) << "filler site " << Site.Name;
      continue;
    }
    const Table2Row &Row = *It->second;
    EXPECT_EQ(S.Filtered.Html, static_cast<size_t>(Row.Html))
        << Site.Name;
    EXPECT_EQ(S.Filtered.Function, static_cast<size_t>(Row.Function))
        << Site.Name;
    EXPECT_EQ(S.Filtered.Variable, static_cast<size_t>(Row.Variable))
        << Site.Name;
    EXPECT_EQ(S.Filtered.EventDispatch, static_cast<size_t>(Row.Dispatch))
        << Site.Name;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CorpusSeedTest,
                         ::testing::Values(2012, 7, 424242));

TEST(CorpusTest, FordSiteReproduces112BenignHtmlRaces) {
  auto Corpus = buildFortune100Corpus(7);
  const GeneratedSite *Ford = nullptr;
  for (const GeneratedSite &S : Corpus)
    if (S.Name == "Ford")
      Ford = &S;
  ASSERT_NE(Ford, nullptr);
  EXPECT_EQ(Ford->Expected.Html, 112);
  EXPECT_EQ(Ford->Expected.HtmlHarmful, 0);
  webracer::SessionOptions Opts;
  SiteRunStats Stats = runSite(*Ford, Opts, 42);
  EXPECT_EQ(Stats.Filtered.Html, 112u);
  EXPECT_EQ(Stats.Stats.Crashes, 0u);
}

TEST(CorpusTest, MetLifeReproduces35HarmfulDispatchRaces) {
  auto Corpus = buildFortune100Corpus(7);
  const GeneratedSite *Site = nullptr;
  for (const GeneratedSite &S : Corpus)
    if (S.Name == "MetLife")
      Site = &S;
  ASSERT_NE(Site, nullptr);
  webracer::SessionOptions Opts;
  SiteRunStats Stats = runSite(*Site, Opts, 42);
  EXPECT_EQ(Stats.Filtered.EventDispatch, 35u);
}

} // namespace

//===- tests/hb_rules_test.cpp - per-rule happens-before conformance -----------===//
//
// One test per rule of the paper's Section 3.3: build a minimal page that
// exercises the rule, locate the two operations it relates, and assert
// the happens-before edge (transitively) holds - and that the reverse
// does not.
//
//===----------------------------------------------------------------------===//

#include "runtime/Browser.h"

#include <gtest/gtest.h>

using namespace wr;
using namespace wr::rt;

namespace {

class HbRulesTest : public ::testing::Test {
protected:
  HbRulesTest() : B(BrowserOptions()) {}

  void load(const std::string &Html,
            std::vector<std::pair<std::string, std::string>> Resources =
                {},
            VirtualTime AuxLatency = 500) {
    B.network().addResource("index.html", Html, 10);
    for (auto &[Url, Body] : Resources)
      B.network().addResource(Url, Body, AuxLatency);
    B.loadPage("index.html");
    B.runToQuiescence();
  }

  /// First operation whose kind matches and whose label contains \p Tag.
  OpId find(OperationKind Kind, const std::string &Tag,
            int Skip = 0) {
    for (OpId Op = 1; Op <= B.hb().numOperations(); ++Op) {
      const Operation &Meta = B.hb().operation(Op);
      if (Meta.Kind != Kind)
        continue;
      if (!Tag.empty() && Meta.Label.find(Tag) == std::string::npos)
        continue;
      if (Skip-- > 0)
        continue;
      return Op;
    }
    return InvalidOpId;
  }

  /// Dispatch anchor for (event type substring, kind) - Begin or End.
  OpId findDispatch(const std::string &Type, bool End,
                    int Skip = 0) {
    for (OpId Op = 1; Op <= B.hb().numOperations(); ++Op) {
      const Operation &Meta = B.hb().operation(Op);
      if (Meta.Kind != (End ? OperationKind::DispatchEnd
                            : OperationKind::DispatchBegin))
        continue;
      if (Meta.EventType != Type)
        continue;
      if (Skip-- > 0)
        continue;
      return Op;
    }
    return InvalidOpId;
  }

  void expectOrdered(OpId A, OpId B2, const char *Why) {
    ASSERT_NE(A, InvalidOpId) << Why;
    ASSERT_NE(B2, InvalidOpId) << Why;
    EXPECT_TRUE(B.hb().happensBefore(A, B2)) << Why;
    EXPECT_FALSE(B.hb().happensBefore(B2, A)) << Why;
  }

  Browser B;
};

TEST_F(HbRulesTest, Rule1aParseOrder) {
  load("<div id=\"a\"></div><p id=\"b\"></p>");
  expectOrdered(find(OperationKind::ParseElement, "div#a"),
                find(OperationKind::ParseElement, "p#b"),
                "rule 1a: parse(E1) -> parse(E2)");
}

TEST_F(HbRulesTest, Rule1bInlineScriptBeforeNextParse) {
  load("<script>var x = 1;</script><div id=\"after\"></div>");
  expectOrdered(find(OperationKind::ExecuteScript, "exe <script>"),
                find(OperationKind::ParseElement, "div#after"),
                "rule 1b: exe(inline) -> parse(next)");
}

TEST_F(HbRulesTest, Rule1cSyncScriptLoadBeforeNextParse) {
  load("<script src=\"s.js\"></script><div id=\"after\"></div>",
       {{"s.js", "var y = 1;"}});
  expectOrdered(findDispatch("load", /*End=*/true),
                find(OperationKind::ParseElement, "div#after"),
                "rule 1c: ld(sync script) -> parse(next)");
}

TEST_F(HbRulesTest, Rule2CreateBeforeExe) {
  load("<script src=\"s.js\" async=\"true\"></script>",
       {{"s.js", "var y = 1;"}});
  expectOrdered(find(OperationKind::ParseElement, "script"),
                find(OperationKind::ExecuteScript, "s.js"),
                "rule 2: create(E) -> exe(E)");
}

TEST_F(HbRulesTest, Rule3ExeBeforeLoad) {
  load("<script src=\"s.js\"></script>", {{"s.js", "var y = 1;"}});
  expectOrdered(find(OperationKind::ExecuteScript, "s.js"),
                findDispatch("load", /*End=*/false),
                "rule 3: exe(E) -> ld(E)");
}

TEST_F(HbRulesTest, Rules4And5DeferredScripts) {
  load("<div id=\"static\"></div>"
       "<script src=\"d1.js\" defer=\"true\"></script>"
       "<script src=\"d2.js\" defer=\"true\"></script>",
       {{"d1.js", "var a = 1;"}, {"d2.js", "var b = 2;"}});
  // Rule 4: static element creation precedes deferred execution.
  expectOrdered(find(OperationKind::ParseElement, "div#static"),
                find(OperationKind::ExecuteScript, "d1.js"),
                "rule 4: create(E) -> exe(deferred)");
  // Rule 5: deferred scripts execute in order (via ld(E1) -> exe(E2)).
  expectOrdered(find(OperationKind::ExecuteScript, "d1.js"),
                find(OperationKind::ExecuteScript, "d2.js"),
                "rule 5: defer order");
}

TEST_F(HbRulesTest, Rule6FrameCreateBeforeNestedCreate) {
  load("<iframe id=\"f\" src=\"n.html\"></iframe>",
       {{"n.html", "<div id=\"inner\"></div>"}});
  expectOrdered(find(OperationKind::ParseElement, "iframe#f"),
                find(OperationKind::ParseElement, "div#inner"),
                "rule 6: create(I) -> create(nested E)");
}

TEST_F(HbRulesTest, Rule7NestedWindowLoadBeforeFrameLoad) {
  load("<iframe id=\"f\" src=\"n.html\"></iframe>",
       {{"n.html", "<p>x</p>"}});
  // The nested window's load dispatch precedes the iframe element's.
  OpId NestedLoadEnd = findDispatch("load", /*End=*/true, 0);
  OpId FrameLoadBegin = findDispatch("load", /*End=*/false, 1);
  expectOrdered(NestedLoadEnd, FrameLoadBegin,
                "rule 7: ld(nested window) -> ld(iframe)");
}

TEST_F(HbRulesTest, Rule8TargetCreatedBeforeDispatch) {
  load("<button id=\"b\" onclick=\"1;\"></button>");
  Element *Btn = B.mainWindow()->document().getElementById("b");
  B.userClick(Btn);
  B.runToQuiescence();
  expectOrdered(find(OperationKind::ParseElement, "button#b"),
                findDispatch("click", /*End=*/false),
                "rule 8: create(T) -> disp(e, T)");
}

TEST_F(HbRulesTest, Rule9DispatchOrder) {
  load("<button id=\"b\" onclick=\"1;\"></button>");
  Element *Btn = B.mainWindow()->document().getElementById("b");
  B.userClick(Btn);
  B.userClick(Btn);
  B.runToQuiescence();
  expectOrdered(findDispatch("click", /*End=*/true, 0),
                findDispatch("click", /*End=*/false, 1),
                "rule 9: disp_j -> disp_i, j < i");
}

TEST_F(HbRulesTest, Rule10SendBeforeReadyStateChange) {
  load("<script>"
       "var xhr = new XMLHttpRequest();"
       "xhr.open('GET', 'd.json');"
       "xhr.onreadystatechange = function() {};"
       "xhr.send();"
       "</script>",
       {{"d.json", "{}"}});
  expectOrdered(find(OperationKind::ExecuteScript, "exe <script>"),
                findDispatch("readystatechange", /*End=*/false),
                "rule 10: send() -> disp(readystatechange)");
}

TEST_F(HbRulesTest, Rule11DclBeforeWindowLoad) {
  load("<p>content</p>");
  expectOrdered(findDispatch("DOMContentLoaded", /*End=*/true),
                findDispatch("load", /*End=*/false),
                "rule 11: dcl(D) -> ld(W)");
}

TEST_F(HbRulesTest, Rule12ParseBeforeDcl) {
  load("<div id=\"last\"></div>");
  expectOrdered(find(OperationKind::ParseElement, "div#last"),
                findDispatch("DOMContentLoaded", /*End=*/false),
                "rule 12: parse(E) -> dcl(D)");
}

TEST_F(HbRulesTest, Rule13InlineExeBeforeDcl) {
  load("<script>var z = 3;</script>");
  expectOrdered(find(OperationKind::ExecuteScript, "exe <script>"),
                findDispatch("DOMContentLoaded", /*End=*/false),
                "rule 13: exe(inline) -> dcl(D)");
}

TEST_F(HbRulesTest, Rule14ScriptLoadBeforeDcl) {
  load("<script src=\"d.js\" defer=\"true\"></script>",
       {{"d.js", "var q = 1;"}});
  // The deferred script's element-load dispatch precedes DCL.
  expectOrdered(findDispatch("load", /*End=*/true),
                findDispatch("DOMContentLoaded", /*End=*/false),
                "rule 14: ld(defer script) -> dcl(D)");
}

TEST_F(HbRulesTest, Rule15ElementLoadBeforeWindowLoad) {
  load("<img id=\"i\" src=\"p.png\" />", {{"p.png", "PNG"}});
  OpId ImgLoadEnd = findDispatch("load", /*End=*/true, 0);
  OpId WindowLoadBegin = findDispatch("load", /*End=*/false, 1);
  expectOrdered(ImgLoadEnd, WindowLoadBegin,
                "rule 15: ld(E) -> ld(W)");
}

TEST_F(HbRulesTest, Rule16SetTimeout) {
  load("<script>setTimeout(function() {}, 10);</script>");
  expectOrdered(find(OperationKind::ExecuteScript, "exe <script>"),
                find(OperationKind::TimeoutCallback, ""),
                "rule 16: caller -> cb(B)");
}

TEST_F(HbRulesTest, Rule17SetIntervalChain) {
  load("<script>"
       "var n = 0;"
       "var iv = setInterval(function() {"
       "  n++; if (n >= 3) clearInterval(iv); }, 10);"
       "</script>");
  OpId Creator = find(OperationKind::ExecuteScript, "exe <script>");
  OpId Cb0 = find(OperationKind::IntervalCallback, "cb0");
  OpId Cb1 = find(OperationKind::IntervalCallback, "cb1");
  OpId Cb2 = find(OperationKind::IntervalCallback, "cb2");
  expectOrdered(Creator, Cb0, "rule 17: creator -> cb0");
  expectOrdered(Cb0, Cb1, "rule 17: cb0 -> cb1");
  expectOrdered(Cb1, Cb2, "rule 17: cb1 -> cb2");
}

TEST_F(HbRulesTest, AppendixInlineDispatchSplit) {
  load("<button id=\"b\" onclick=\"window.hit = 1;\"></button>"
       "<script>document.getElementById('b').click(); var post = 2;"
       "</script>");
  OpId Caller = find(OperationKind::ExecuteScript, "exe <script>");
  OpId Handler = find(OperationKind::EventHandler, "click");
  OpId Slice = find(OperationKind::ScriptSlice, "");
  expectOrdered(Caller, Handler, "appendix: A[0:k) -> B");
  expectOrdered(Handler, Slice, "appendix: B -> A[k+1:)");
}

TEST_F(HbRulesTest, AppendixHandlerChainWithinDispatch) {
  load("<button id=\"b\"></button>"
       "<script>"
       "var b = document.getElementById('b');"
       "b.addEventListener('click', function() {});"
       "b.addEventListener('click', function() {});"
       "</script>");
  B.userClick(B.mainWindow()->document().getElementById("b"));
  B.runToQuiescence();
  OpId H1 = find(OperationKind::EventHandler, "click", 0);
  OpId H2 = find(OperationKind::EventHandler, "click", 1);
  expectOrdered(H1, H2, "appendix: handlers of one dispatch are chained");
}

TEST_F(HbRulesTest, AsyncScriptsUnordered) {
  // Negative case: two async scripts have no mutual ordering (Sec. 3.3:
  // "asynchronous scripts ... may execute in any order").
  load("<script src=\"a.js\" async=\"true\"></script>"
       "<script src=\"b.js\" async=\"true\"></script>",
       {{"a.js", "var a = 1;"}, {"b.js", "var b = 2;"}});
  OpId ExeA = find(OperationKind::ExecuteScript, "a.js");
  OpId ExeB = find(OperationKind::ExecuteScript, "b.js");
  ASSERT_NE(ExeA, InvalidOpId);
  ASSERT_NE(ExeB, InvalidOpId);
  EXPECT_TRUE(B.hb().canHappenConcurrently(ExeA, ExeB));
}

TEST_F(HbRulesTest, UserActionsUnorderedWithParsing) {
  // Negative case: a user op has no HB edges to parsing except rule 8.
  load("<button id=\"b\" onclick=\"1;\"></button><div id=\"late\"></div>");
  B.userClick(B.mainWindow()->document().getElementById("b"));
  B.runToQuiescence();
  OpId LateParse = find(OperationKind::ParseElement, "div#late");
  OpId Click = findDispatch("click", /*End=*/false);
  ASSERT_NE(LateParse, InvalidOpId);
  ASSERT_NE(Click, InvalidOpId);
  EXPECT_TRUE(B.hb().canHappenConcurrently(LateParse, Click));
}

} // namespace
